package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func span(job string, i int) SpanRecord {
	return SpanRecord{
		TraceID: "trace-" + job,
		SpanID:  fmt.Sprintf("span-%04d", i),
		Name:    "chunk",
		JobID:   job,
		Start:   time.Unix(0, int64(i)),
		End:     time.Unix(0, int64(i+1)),
	}
}

func TestCollectorRingEviction(t *testing.T) {
	c := NewCollector(4)
	if c.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", c.Cap())
	}
	for i := 0; i < 6; i++ {
		c.Add(span("job-a", i))
	}
	if c.Len() != 4 || c.Total() != 6 || c.Evicted() != 2 {
		t.Fatalf("Len/Total/Evicted = %d/%d/%d, want 4/6/2", c.Len(), c.Total(), c.Evicted())
	}
	got := c.JobSpans("job-a")
	if len(got) != 4 {
		t.Fatalf("JobSpans kept %d spans, want the 4 newest", len(got))
	}
	// The two oldest were overwritten; what survives is 2..5 in start
	// order.
	for k, rec := range got {
		want := fmt.Sprintf("span-%04d", k+2)
		if rec.SpanID != want {
			t.Fatalf("JobSpans[%d] = %s, want %s", k, rec.SpanID, want)
		}
	}
	if trace := c.TraceSpans("trace-job-a"); len(trace) != 4 {
		t.Fatalf("TraceSpans returned %d spans, want 4", len(trace))
	}
	if stray := c.JobSpans("job-b"); stray != nil {
		t.Fatalf("JobSpans for an unknown job = %v, want nil", stray)
	}
}

func TestCollectorDefaultCap(t *testing.T) {
	if got := NewCollector(0).Cap(); got != DefaultCollectorCap {
		t.Fatalf("NewCollector(0).Cap() = %d, want %d", got, DefaultCollectorCap)
	}
}

// TestCollectorConcurrentAppend hammers the ring from many goroutines
// while readers snapshot it — the -race proof that a fleet of worker
// completions and trace scrapes can share one collector.
func TestCollectorConcurrentAppend(t *testing.T) {
	const (
		writers = 8
		perW    = 200
	)
	c := NewCollector(64)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			job := fmt.Sprintf("job-%d", w%2)
			for i := 0; i < perW; i++ {
				c.Add(span(job, w*perW+i))
				if i%32 == 0 {
					c.JobSpans(job)
					c.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Total() != writers*perW {
		t.Fatalf("Total = %d, want %d", c.Total(), writers*perW)
	}
	if c.Len() != 64 {
		t.Fatalf("Len = %d, want the full ring (64)", c.Len())
	}
	both := len(c.JobSpans("job-0")) + len(c.JobSpans("job-1"))
	if both != 64 {
		t.Fatalf("job-0 + job-1 spans = %d, want 64", both)
	}
}

// TestNilCollectorZeroAlloc pins the disabled hot path: with tracing
// off (a nil collector) every call must be a free no-op — the
// dispatcher completes thousands of chunks through this path.
func TestNilCollectorZeroAlloc(t *testing.T) {
	var c *Collector
	rec := span("job-a", 1)
	allocs := testing.AllocsPerRun(1000, func() {
		if c.Enabled() {
			t.Error("nil collector claims to be enabled")
		}
		c.Add(rec)
		if c.JobSpans("job-a") != nil || c.TraceSpans("t") != nil {
			t.Error("nil collector returned spans")
		}
		if c.Len() != 0 || c.Cap() != 0 || c.Total() != 0 || c.Evicted() != 0 {
			t.Error("nil collector reports retained spans")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path costs %.1f allocs/op, want 0", allocs)
	}
}
