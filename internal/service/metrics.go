package service

import (
	"log/slog"
	"time"

	"repro/internal/obs"
)

// serviceMetrics bundles the manager's and dispatcher's metric
// families. One instance per Manager, registered on the Manager's
// registry (Options.Metrics, or a private one), so tests and embedded
// managers never collide.
//
// Family naming follows the conventions documented in ARCHITECTURE.md:
// sweepd_job_* for the job manager, sweepd_lease_* / sweepd_worker_*
// for the dispatcher, sweepd_http_* for the middleware (see
// obs.NewHTTPMetrics), sweep_store_* for the storage engine.
type serviceMetrics struct {
	reg *obs.Registry

	jobsSubmitted *obs.CounterVec   // kind
	jobsFinished  *obs.CounterVec   // kind, state
	jobDuration   *obs.HistogramVec // kind
	// The two fates of sweepd_job_points_total, resolved once: point
	// runs per design point, so the hot path must not rebuild label
	// keys.
	pointsComputed obs.Counter
	pointsCached   obs.Counter
	jobPanics      obs.Counter

	leases          *obs.CounterVec // event: issued|completed|expired|failed
	leaseTurnaround obs.Histogram
	stragglers      obs.Counter
	workerPoints    *obs.CounterVec // worker
	workerChunks    *obs.CounterVec // worker
}

// jobDurationBuckets spans the realistic job range: a warm analytic
// sweep finishes in milliseconds, a cold Monte-Carlo run takes minutes.
var jobDurationBuckets = []float64{
	0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60, 300, 1800,
}

func newServiceMetrics(reg *obs.Registry) *serviceMetrics {
	jobPoints := reg.Counter("sweepd_job_points_total",
		"Design points resolved across all jobs, by fate.", "fate")
	return &serviceMetrics{
		reg: reg,
		jobsSubmitted: reg.Counter("sweepd_jobs_submitted_total",
			"Jobs accepted into the queue, by kind.", "kind"),
		jobsFinished: reg.Counter("sweepd_jobs_finished_total",
			"Jobs reaching a terminal state, by kind and state.", "kind", "state"),
		jobDuration: reg.Histogram("sweepd_job_duration_seconds",
			"Wall time from job start to terminal state, by kind.", jobDurationBuckets, "kind"),
		pointsComputed: jobPoints.With("computed"),
		pointsCached:   jobPoints.With("cached"),
		jobPanics: reg.Counter("sweepd_job_panics_total",
			"Jobs failed by a panicking point evaluation.").With(),
		leases: reg.Counter("sweepd_leases_total",
			"Lease lifecycle events in the chunk dispatcher.", "event"),
		leaseTurnaround: reg.Histogram("sweepd_lease_turnaround_seconds",
			"Time from lease issue to accepted completion.", nil).With(),
		stragglers: reg.Counter("sweepd_lease_straggler_total",
			"Chunk completions slower than the straggler threshold (k x the fleet-median turnaround).").With(),
		workerPoints: reg.Counter("sweepd_worker_points_total",
			"Design points completed per worker — the fleet throughput input for heterogeneity-aware scheduling.", "worker"),
		workerChunks: reg.Counter("sweepd_worker_chunks_total",
			"Chunks completed per worker.", "worker"),
	}
}

// point books one resolved design point. Counting happens exactly where
// job progress counters are bumped, so the metric and the JobView
// progress can never drift apart.
func (sm *serviceMetrics) point(cached bool) {
	if cached {
		sm.pointsCached.Inc()
	} else {
		sm.pointsComputed.Inc()
	}
}

// points books n resolved design points at once — the chunk-completion
// and cache-pre-pass bulk form of point.
func (sm *serviceMetrics) points(cached bool, n int) {
	if n <= 0 {
		return
	}
	if cached {
		sm.pointsCached.Add(float64(n))
	} else {
		sm.pointsComputed.Add(float64(n))
	}
}

// lease books one dispatcher lifecycle event.
func (sm *serviceMetrics) lease(event string) { sm.leases.With(event).Inc() }

// jobFinished books a job's terminal transition: the state counter and,
// when the job actually ran, the duration histogram.
func (sm *serviceMetrics) jobFinished(kind string, state State, started, finished time.Time) {
	sm.jobsFinished.With(kind, string(state)).Inc()
	if !started.IsZero() && !finished.Before(started) {
		sm.jobDuration.With(kind).Observe(finished.Sub(started).Seconds())
	}
}

// Metrics returns the manager's metric registry — the one NewHandler
// serves at GET /metrics and cmd/sweepd shares with the result store.
func (m *Manager) Metrics() *obs.Registry { return m.met.reg }

// logger returns the manager's structured logger (never nil).
func (m *Manager) logger() *slog.Logger { return m.log }
