package ldpc

import (
	"encoding/json"
	"os"
	"testing"
)

// goldenBERCase mirrors one entry of testdata/ber_golden.json: the
// SimulateBER parameters and the exact counters the scalar per-codeword
// decoder produced for them before the batch rewrite.
type goldenBERCase struct {
	Name         string    `json:"name"`
	Alg          int       `json:"alg"`
	Sched        int       `json:"sched"`
	MaxIter      int       `json:"max_iter"`
	Window       int       `json:"window"`
	EbN0DB       float64   `json:"ebn0_db"`
	MaxCodewords int       `json:"max_codewords"`
	Seed         uint64    `json:"seed"`
	RelCI        float64   `json:"rel_ci"`
	L            int       `json:"l"`
	N            int       `json:"n"`
	Result       BERResult `json:"result"`
}

func loadGoldenBER(t *testing.T) []goldenBERCase {
	t.Helper()
	raw, err := os.ReadFile("testdata/ber_golden.json")
	if err != nil {
		t.Fatalf("read golden file: %v", err)
	}
	var cases []goldenBERCase
	if err := json.Unmarshal(raw, &cases); err != nil {
		t.Fatalf("parse golden file: %v", err)
	}
	if len(cases) == 0 {
		t.Fatal("golden file is empty")
	}
	return cases
}

func (g goldenBERCase) params(code *Code, workers int) BERParams {
	return BERParams{
		Code:    code,
		Alg:     Algorithm(g.Alg),
		Sched:   Schedule(g.Sched),
		MaxIter: g.MaxIter,
		Window:  g.Window,
		EbN0DB:  g.EbN0DB,
		// The capture ran with unreachable error targets so every
		// non-adaptive case spends its full codeword budget — the
		// golden then exercises a fixed, known number of decodes.
		TargetBitErrors:   1 << 30,
		TargetFrameErrors: 1 << 30,
		MaxCodewords:      g.MaxCodewords,
		Seed:              g.Seed,
		RelCI:             g.RelCI,
		Workers:           workers,
	}
}

// TestBERGoldenRecords pins SimulateBER to byte-identical results
// captured from the scalar per-codeword decoder immediately before the
// batch rewrite. The BER records every sweep persists are a pure
// function of these counters, so equality here is the old-vs-new
// record-identity proof: any decoder change that alters a single bit
// decision on any simulated codeword changes BitErrors and fails.
func TestBERGoldenRecords(t *testing.T) {
	for _, g := range loadGoldenBER(t) {
		t.Run(g.Name, func(t *testing.T) {
			t.Parallel()
			code := LiftConvolutional(PaperSpreading(), g.L, g.N, 3)
			got := SimulateBER(g.params(code, 2))
			if got != g.Result {
				t.Fatalf("SimulateBER diverged from scalar-era golden:\n got  %+v\n want %+v", got, g.Result)
			}
		})
	}
}

// TestBERGoldenWorkerInvariance re-runs two golden points with
// different worker counts: the batch partitioning must not leak into
// the results (the determinism contract says records depend only on
// (seed, point), never on parallelism).
func TestBERGoldenWorkerInvariance(t *testing.T) {
	cases := loadGoldenBER(t)
	for _, g := range cases {
		if g.Name != "paper-window-sp" && g.Name != "block-sp" {
			continue
		}
		t.Run(g.Name, func(t *testing.T) {
			t.Parallel()
			code := LiftConvolutional(PaperSpreading(), g.L, g.N, 3)
			for _, workers := range []int{1, 3, 7} {
				if got := SimulateBER(g.params(code, workers)); got != g.Result {
					t.Fatalf("workers=%d diverged:\n got  %+v\n want %+v", workers, got, g.Result)
				}
			}
		})
	}
}
