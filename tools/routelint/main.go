// Command routelint fails (exit 1) if any HTTP route in
// internal/service is registered without the metrics middleware. It is
// the CI observability gate for the API surface: internal/service
// funnels every registration through the instrument helper (which wraps
// the handler in obs.HTTPMetrics under its route pattern), and this
// tool keeps that invariant from rotting — a mux.Handle or
// mux.HandleFunc call anywhere else in the package would register a
// route invisible to the per-route latency histograms, status-class
// counters and access log, and fails the build.
//
// Usage:
//
//	go run ./tools/routelint [dir]
//
// dir defaults to "internal/service". The check is purely syntactic —
// any call expression whose selector is named Handle or HandleFunc,
// outside the function declaration named "instrument", is a violation —
// so it cannot be fooled by aliasing the mux, and it never needs type
// information or a build cache. Test files are ignored: tests may wire
// throwaway muxes however they like.
//
// The helper itself is held to its contract too: a Handle/HandleFunc
// call inside instrument must pass its handler through a .Wrap(...)
// call (the obs.HTTPMetrics middleware), so hollowing out the helper —
// registering the raw handler and leaving the middleware behind — is
// caught the same way as bypassing it.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// allowedFunc is the one function allowed to register routes directly.
const allowedFunc = "instrument"

func main() {
	root := "internal/service"
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations, err := lint(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routelint:", err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "routelint: %d route registration(s) bypass the metrics middleware (use the %s helper):\n",
			len(violations), allowedFunc)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("routelint: every route in %s goes through %s\n", root, allowedFunc)
}

// lint walks root's non-test Go files and returns every Handle or
// HandleFunc call outside the allowed helper, as "file:line: call"
// strings in sorted order.
func lint(root string) ([]string, error) {
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		violations = append(violations, lintFile(fset, f)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(violations)
	return violations, nil
}

// lintFile reports the offending registration calls in one parsed file.
// Each top-level declaration is walked separately so a call can be
// attributed to (and excused by) the function declaration it lives in.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if ok && fd.Name.Name == allowedFunc {
			out = append(out, lintHelper(fset, fd)...)
			continue
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Handle" && sel.Sel.Name != "HandleFunc" {
				return true
			}
			pos := fset.Position(call.Pos())
			out = append(out, fmt.Sprintf("%s:%d: %s call outside %s",
				pos.Filename, pos.Line, sel.Sel.Name, allowedFunc))
			return true
		})
	}
	return out
}

// lintHelper checks the allowed helper's own registrations: every
// Handle/HandleFunc call inside it must pass its handler through a
// .Wrap(...) call, or the middleware is silently gone from every route
// while the chokepoint still looks intact.
func lintHelper(fset *token.FileSet, fd *ast.FuncDecl) []string {
	var out []string
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Handle" && sel.Sel.Name != "HandleFunc") {
			return true
		}
		wrapped := false
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if inner, ok := a.(*ast.CallExpr); ok {
					if s, ok := inner.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "Wrap" {
						wrapped = true
					}
				}
				return !wrapped
			})
		}
		if !wrapped {
			pos := fset.Position(call.Pos())
			out = append(out, fmt.Sprintf("%s:%d: %s call inside %s does not route the handler through .Wrap(...)",
				pos.Filename, pos.Line, sel.Sel.Name, allowedFunc))
		}
		return true
	})
	return out
}
