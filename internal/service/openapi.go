package service

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/sweep"
)

// routeTable collects every pattern that passes through instrument, in
// registration order. It is the single source of truth behind
// GET /api/v1/openapi.json: a route cannot reach the mux without also
// entering the machine-readable contract, and the drift test in
// openapi_test.go holds docs/api.md to the same table.
type routeTable struct {
	patterns []string
}

func (rt *routeTable) add(pattern string) { rt.patterns = append(rt.patterns, pattern) }

// routeDocs maps each route pattern to its one-line summary in the
// OpenAPI document. A registered pattern missing here still appears in
// the doc (with an empty summary); the drift test flags it so the docs
// keep pace with the surface.
var routeDocs = map[string]string{
	"GET /metrics":                               "Prometheus text exposition of every metric family.",
	"GET /healthz":                               "Liveness probe with engine version, uptime and cache hit rate.",
	"GET /api/v1/openapi.json":                   "This machine-readable API contract.",
	"GET /api/v1/store":                          "Result-store counters, aggregate and per shard.",
	"GET /api/v1/scenarios":                      "Registered sweep scenarios with grid sizes.",
	"GET /api/v1/spaces":                         "Registered search spaces with their parameters.",
	"GET /api/v1/knobs":                          "Spec knob catalog: every base/axis parameter name with its kind, plus constraint metrics and objectives.",
	"POST /api/v1/jobs":                          "Submit a job: a registered scenario/space by name, or an inline declarative spec.",
	"GET /api/v1/jobs":                           "List jobs in submission order, filtered and paginated (limit, cursor, state, kind).",
	"GET /api/v1/jobs/{id}":                      "One job snapshot; poll for progress.",
	"DELETE /api/v1/jobs/{id}":                   "Cancel a queued or running job.",
	"GET /api/v1/jobs/{id}/records":              "Completed records as NDJSON, one per line.",
	"GET /api/v1/jobs/{id}/pareto":               "The job's Pareto-front records.",
	"GET /api/v1/jobs/{id}/generations":          "Per-generation optimizer fronts as a live NDJSON stream.",
	"GET /api/v1/jobs/{id}/trace":                "The job's retained trace spans as NDJSON.",
	"GET /api/v1/jobs/{id}/timeline":             "Derived phase timeline with per-chunk turnarounds.",
	"GET /api/v1/fleet/stats":                    "Per-worker throughput profiles and the straggler baseline.",
	"GET /api/v1/workers":                        "Fleet view: per-worker lease counters.",
	"POST /api/v1/workers/lease":                 "Lease one chunk of distributed work.",
	"POST /api/v1/workers/leases/{id}/heartbeat": "Extend a lease before its TTL expires.",
	"POST /api/v1/workers/leases/{id}/complete":  "Post a leased chunk's evaluated records.",
	"POST /api/v1/workers/leases/{id}/fail":      "Report an unevaluable chunk, failing its job.",
}

// openAPIDoc renders a minimal OpenAPI 3.0 document from the collected
// route table: one path item per pattern, the error envelope declared
// once as the default response of every operation. Go 1.22 mux wildcards
// ({id}) are already OpenAPI path-parameter syntax, so patterns map
// verbatim.
func openAPIDoc(rt *routeTable) map[string]any {
	paths := map[string]any{}
	for _, pattern := range rt.patterns {
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			continue
		}
		op := map[string]any{
			"summary": routeDocs[pattern],
			"responses": map[string]any{
				"default": map[string]any{
					"description": "Error envelope",
					"content": map[string]any{
						"application/json": map[string]any{
							"schema": map[string]any{"$ref": "#/components/schemas/Error"},
						},
					},
				},
			},
		}
		var params []any
		for _, seg := range strings.Split(path, "/") {
			if strings.HasPrefix(seg, "{") && strings.HasSuffix(seg, "}") {
				params = append(params, map[string]any{
					"name":     strings.Trim(seg, "{}"),
					"in":       "path",
					"required": true,
					"schema":   map[string]any{"type": "string"},
				})
			}
		}
		if path == "/api/v1/jobs" && method == "GET" {
			for _, q := range []string{"limit", "cursor", "state", "kind"} {
				params = append(params, map[string]any{
					"name":   q,
					"in":     "query",
					"schema": map[string]any{"type": "string"},
				})
			}
		}
		if len(params) > 0 {
			op["parameters"] = params
		}
		item, _ := paths[path].(map[string]any)
		if item == nil {
			item = map[string]any{}
			paths[path] = item
		}
		item[strings.ToLower(method)] = op
	}
	codes := []string{
		CodeBadRequest, CodeSpecInvalid, CodeNotFound, CodeNotDone,
		CodeLeaseGone, CodeBadRecords, CodeShutdown, CodeInternal,
	}
	sort.Strings(codes)
	codesAny := make([]any, len(codes))
	for i, c := range codes {
		codesAny[i] = c
	}
	return map[string]any{
		"openapi": "3.0.3",
		"info": map[string]any{
			"title":       "sweepd API",
			"version":     "v1",
			"description": "Job service over the wireless-interconnect design-space engine (engine version " + strconv.Itoa(sweep.EngineVersion) + "). Full prose reference: docs/api.md.",
		},
		"paths": paths,
		"components": map[string]any{
			"schemas": map[string]any{
				"Error": map[string]any{
					"type":        "object",
					"description": "Unified error envelope carried by every non-2xx response.",
					"properties": map[string]any{
						"error": map[string]any{
							"type":     "object",
							"required": []any{"code", "message"},
							"properties": map[string]any{
								"code":    map[string]any{"type": "string", "enum": codesAny},
								"message": map[string]any{"type": "string"},
								"details": map[string]any{
									"type":                 "object",
									"additionalProperties": map[string]any{"type": "string"},
								},
							},
						},
					},
				},
			},
		},
	}
}
