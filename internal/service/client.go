package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// Client implements WorkerAPI over sweepd's HTTP worker endpoints, so a
// cmd/sweepworker process anywhere on the network runs the same
// RunWorker loop as the daemon's in-process fallback workers.
//
// Every lease-scoped request (heartbeat, complete, fail) is stamped
// with the trace headers of the lease it belongs to, and reuses the
// job's trace ID as its X-Request-ID — so a retried completion carries
// the same identity as the original attempt and the daemon's access
// log joins all of a chunk's RPCs under one ID instead of fragmenting
// the trace across minted request IDs.
type Client struct {
	base string
	hc   *http.Client

	mu sync.Mutex
	// traces maps lease ID to the span context stamped on the lease.
	traces map[string]obs.SpanContext
}

// maxTrackedLeases bounds the trace map: leases the daemon never
// resolved (worker crashed mid-chunk, daemon restarted) would otherwise
// accumulate forever in a long-lived worker. Past the cap the map is
// reset — in-flight chunks lose their headers, nothing else.
const maxTrackedLeases = 4096

// NewClient returns a worker client for the daemon at base
// (e.g. "http://sweepd:8080").
func NewClient(base string) *Client {
	return &Client{
		base:   strings.TrimRight(base, "/"),
		hc:     &http.Client{Timeout: 30 * time.Second},
		traces: make(map[string]obs.SpanContext),
	}
}

// remember records the lease's span context for header stamping.
func (c *Client) remember(leaseID string, sc obs.SpanContext) {
	if leaseID == "" || sc.TraceID == "" {
		return
	}
	c.mu.Lock()
	if len(c.traces) >= maxTrackedLeases {
		c.traces = make(map[string]obs.SpanContext)
	}
	c.traces[leaseID] = sc
	c.mu.Unlock()
}

// traceOf returns the span context remembered for the lease.
func (c *Client) traceOf(leaseID string) obs.SpanContext {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traces[leaseID]
}

// forget drops a lease whose lifecycle ended (completed, failed, or
// gone) from the trace map.
func (c *Client) forget(leaseID string) {
	c.mu.Lock()
	delete(c.traces, leaseID)
	c.mu.Unlock()
}

// post sends one JSON request. A non-empty leaseID stamps the request
// with the lease's trace headers; retries of the same RPC rebuild the
// identical headers, so the daemon sees one request identity per chunk.
func (c *Client) post(path, leaseID string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(http.MethodPost, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if leaseID != "" {
		if sc := c.traceOf(leaseID); sc.TraceID != "" {
			req.Header.Set(obs.RequestIDHeader, sc.TraceID)
			req.Header.Set(obs.TraceIDHeader, sc.TraceID)
			if sc.SpanID != "" {
				req.Header.Set(obs.ParentSpanHeader, sc.SpanID)
			}
		}
	}
	return c.hc.Do(req)
}

// Lease implements WorkerAPI.
func (c *Client) Lease(worker string) (Lease, bool, error) {
	body, _ := json.Marshal(map[string]string{"worker": worker})
	resp, err := c.post("/api/v1/workers/lease", "", body)
	if err != nil {
		return Lease{}, false, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var l Lease
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			return Lease{}, false, fmt.Errorf("service: lease response: %w", err)
		}
		c.remember(l.ID, obs.SpanContext{TraceID: l.TraceID, SpanID: l.SpanID})
		return l, true, nil
	case http.StatusNoContent:
		return Lease{}, false, nil
	default:
		return Lease{}, false, httpError("lease", resp)
	}
}

// Heartbeat implements WorkerAPI.
func (c *Client) Heartbeat(leaseID string) (time.Duration, error) {
	resp, err := c.post("/api/v1/workers/leases/"+leaseID+"/heartbeat", leaseID, nil)
	if err != nil {
		return 0, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var v struct {
			TTLSeconds float64 `json:"ttl_seconds"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return 0, fmt.Errorf("service: heartbeat response: %w", err)
		}
		return time.Duration(v.TTLSeconds * float64(time.Second)), nil
	case http.StatusGone:
		c.forget(leaseID)
		return 0, ErrLeaseGone
	default:
		return 0, httpError("heartbeat", resp)
	}
}

// Complete implements WorkerAPI.
func (c *Client) Complete(leaseID string, recs []sweep.Record) error {
	return c.complete(leaseID, recs, nil)
}

// CompleteTraced implements TracedCompleter: the records plus the
// worker-side spans of this chunk, in one request.
func (c *Client) CompleteTraced(leaseID string, recs []sweep.Record, spans []obs.SpanRecord) error {
	return c.complete(leaseID, recs, spans)
}

func (c *Client) complete(leaseID string, recs []sweep.Record, spans []obs.SpanRecord) error {
	// Chunk completions are the fattest bodies on the worker wire; the
	// columnar block encoder builds one in a single buffer, emitting the
	// same bytes json.Marshal would per record.
	body := make([]byte, 0, 128+256*len(recs))
	body = append(body, `{"records":`...)
	body, err := sweep.BlockRecords(recs).AppendRecordsJSON(body)
	if err != nil {
		return fmt.Errorf("service: encode records: %w", err)
	}
	if len(spans) > 0 {
		sp, err := json.Marshal(spans)
		if err != nil {
			return fmt.Errorf("service: encode spans: %w", err)
		}
		body = append(body, `,"spans":`...)
		body = append(body, sp...)
	}
	body = append(body, '}')
	resp, err := c.post("/api/v1/workers/leases/"+leaseID+"/complete", leaseID, body)
	if err != nil {
		return err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		c.forget(leaseID)
		return nil
	case http.StatusGone:
		c.forget(leaseID)
		return ErrLeaseGone
	case http.StatusUnprocessableEntity:
		return fmt.Errorf("%w: %s", ErrBadRecords, bodyError(resp).Message)
	default:
		return httpError("complete", resp)
	}
}

// FailLease implements WorkerAPI.
func (c *Client) FailLease(leaseID, reason string) error {
	body, _ := json.Marshal(map[string]string{"error": reason})
	resp, err := c.post("/api/v1/workers/leases/"+leaseID+"/fail", leaseID, body)
	if err != nil {
		return err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		c.forget(leaseID)
		return nil
	case http.StatusGone:
		c.forget(leaseID)
		return ErrLeaseGone
	default:
		return httpError("fail", resp)
	}
}

// drain finishes and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// bodyError decodes the response's error envelope into a typed
// *APIError (tolerating legacy and bare bodies).
func bodyError(resp *http.Response) *APIError {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	return decodeAPIError(resp, raw)
}

// httpError wraps the decoded envelope with the failing operation, so
// callers can errors.As for the *APIError and switch on its Code.
func httpError(op string, resp *http.Response) error {
	return fmt.Errorf("service: %s: %w", op, bodyError(resp))
}
