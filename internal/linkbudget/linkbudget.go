// Package linkbudget implements the board-to-board link budget of the
// paper's Sec. II-B: Table I's parameter set and the required-transmit-
// power-versus-SNR curves of Fig. 4.
//
// The budget composes the thermal noise floor kTB at the receiver
// temperature, the receiver noise figure, the log-distance pathloss of
// the measured channel model, the antenna array gains, and the fixed
// loss terms (Butler-matrix inaccuracy, polarisation mismatch,
// implementation loss).
package linkbudget

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/channel"
	"repro/internal/units"
)

// Budget holds the link-budget parameters. TableI returns the paper's
// values; individual fields may be overridden before use.
type Budget struct {
	// FreqHz is the carrier frequency (232.5 GHz, band centre).
	FreqHz float64
	// BandwidthHz is the signal bandwidth (25 GHz for 100 Gbit/s with
	// dual polarisation).
	BandwidthHz float64
	// RXNoiseFigureDB is the receiver noise figure (10 dB).
	RXNoiseFigureDB float64
	// RXTempK is the receiver temperature (323 K).
	RXTempK float64
	// TXArrayGainDB, RXArrayGainDB are the antenna array gains
	// (12 dB each for 4x4 arrays).
	TXArrayGainDB, RXArrayGainDB float64
	// ButlerInaccuracyDB is the fixed-beam direction-mismatch penalty of
	// the Butler-matrix realisation (5 dB); applied only to links flagged
	// as Butler-served worst cases.
	ButlerInaccuracyDB float64
	// PolarizationMismatchDB is the dual-polarisation cross-talk penalty
	// (3 dB).
	PolarizationMismatchDB float64
	// ImplementationLossDB covers filters, synchronisation and other
	// real-world hardware impairments (5 dB).
	ImplementationLossDB float64
	// Pathloss is the propagation model (measured: n = 2 at 232.5 GHz).
	Pathloss channel.Pathloss
	// ShortestLinkM, LongestLinkM are the extreme node-to-node distances:
	// the ahead link (100 mm) and the diagonal link (300 mm).
	ShortestLinkM, LongestLinkM float64
}

// TableI returns the paper's link-budget parameters (Table I).
func TableI() Budget {
	const freq = 232.5e9
	return Budget{
		FreqHz:                 freq,
		BandwidthHz:            25e9,
		RXNoiseFigureDB:        10,
		RXTempK:                323,
		TXArrayGainDB:          12,
		RXArrayGainDB:          12,
		ButlerInaccuracyDB:     5,
		PolarizationMismatchDB: 3,
		ImplementationLossDB:   5,
		Pathloss:               channel.NewFreespacePathloss(freq, 0.1),
		ShortestLinkM:          0.1,
		LongestLinkM:           0.3,
	}
}

// NoiseFloorDBm returns the thermal noise power kTB in dBm at the
// receiver temperature and bandwidth.
func (b Budget) NoiseFloorDBm() float64 {
	return units.ThermalNoiseDBm(b.RXTempK, b.BandwidthHz)
}

// EffectiveNoiseDBm returns the receiver's effective noise level:
// kTB plus the noise figure.
func (b Budget) EffectiveNoiseDBm() float64 {
	return b.NoiseFloorDBm() + b.RXNoiseFigureDB
}

// FixedLossesDB returns the loss terms applied to every link:
// polarisation mismatch plus implementation loss. The Butler term is
// handled separately because only worst-case directions suffer it.
func (b Budget) FixedLossesDB() float64 {
	return b.PolarizationMismatchDB + b.ImplementationLossDB
}

// RequiredTxPowerDBm returns the transmit power needed to reach the
// target SNR at the receiver over distance distM. butler adds the
// Butler-matrix direction-mismatch penalty (the paper assumes only
// worst-case links suffer it). This is the quantity plotted in Fig. 4.
func (b Budget) RequiredTxPowerDBm(distM, targetSNRdB float64, butler bool) float64 {
	p := targetSNRdB +
		b.EffectiveNoiseDBm() +
		b.Pathloss.LossDB(distM) -
		b.TXArrayGainDB - b.RXArrayGainDB +
		b.FixedLossesDB()
	if butler {
		p += b.ButlerInaccuracyDB
	}
	return p
}

// ReceivedSNRdB inverts RequiredTxPowerDBm: the SNR achieved at the
// receiver for a given transmit power.
func (b Budget) ReceivedSNRdB(distM, txPowerDBm float64, butler bool) float64 {
	return txPowerDBm - b.RequiredTxPowerDBm(distM, 0, butler)
}

// LinkMarginDB returns the SNR margin of a link closed with txPowerDBm
// against a target SNR.
func (b Budget) LinkMarginDB(distM, txPowerDBm, targetSNRdB float64, butler bool) float64 {
	return b.ReceivedSNRdB(distM, txPowerDBm, butler) - targetSNRdB
}

// ShannonRateBps returns the Shannon capacity of the link in bit/s for
// the given received SNR (dB), counting both polarisations.
func (b Budget) ShannonRateBps(snrDB float64) float64 {
	snr := units.FromDB(snrDB)
	perPol := b.BandwidthHz * math.Log2(1+snr)
	return 2 * perPol
}

// SNRFor100GbpsDB returns the per-polarisation SNR (dB) needed to carry
// 100 Gbit/s in the configured bandwidth with dual polarisation, i.e.
// 2 bit/s/Hz per polarisation at 25 GHz.
func (b Budget) SNRFor100GbpsDB() float64 {
	perPolRate := 100e9 / 2 / b.BandwidthHz // bit/s/Hz
	return units.DB(math.Pow(2, perPolRate) - 1)
}

// Row is one line of the Table I report.
type Row struct {
	Name  string
	Unit  string
	Value float64
}

// TableRows reproduces Table I as data, in the paper's row order.
func (b Budget) TableRows() []Row {
	return []Row{
		{"RX noise figure", "dB", b.RXNoiseFigureDB},
		{"Path loss exponent", "-", b.Pathloss.Exponent},
		{fmt.Sprintf("Path loss for shortest link %gm (%.1f GHz)", b.ShortestLinkM, b.FreqHz/1e9), "dB", b.Pathloss.LossDB(b.ShortestLinkM)},
		{fmt.Sprintf("Path loss for largest link %gm (%.1f GHz)", b.LongestLinkM, b.FreqHz/1e9), "dB", b.Pathloss.LossDB(b.LongestLinkM)},
		{"Array gain", "dB", b.TXArrayGainDB},
		{"Butler matrix inaccuracy", "dB", b.ButlerInaccuracyDB},
		{"Polarization mismatch", "dB", b.PolarizationMismatchDB},
		{"Implementation loss", "dB", b.ImplementationLossDB},
		{"RX temperature", "K", b.RXTempK},
	}
}

// String renders the Table I report.
func (b Budget) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-48s %-5s %8s\n", "Link budget parameter", "Unit", "Value")
	for _, r := range b.TableRows() {
		fmt.Fprintf(&sb, "%-48s %-5s %8.1f\n", r.Name, r.Unit, r.Value)
	}
	return sb.String()
}

// Fig4Point is one sample of the required-transmit-power curves.
type Fig4Point struct {
	SNRdB                float64
	ShortestDBm          float64 // 100 mm ahead link
	LongestDBm           float64 // 300 mm diagonal link
	LongestButlerDBm     float64 // 300 mm with Butler mismatch
	ShortestWattsMilli   float64
	LongestButlerWattsMW float64
}

// Fig4Curve samples the three curves of Fig. 4 over [snrLo, snrHi] dB.
func (b Budget) Fig4Curve(snrLo, snrHi float64, n int) []Fig4Point {
	if n < 2 {
		n = 2
	}
	out := make([]Fig4Point, n)
	for i := range out {
		snr := snrLo + (snrHi-snrLo)*float64(i)/float64(n-1)
		s := b.RequiredTxPowerDBm(b.ShortestLinkM, snr, false)
		l := b.RequiredTxPowerDBm(b.LongestLinkM, snr, false)
		lb := b.RequiredTxPowerDBm(b.LongestLinkM, snr, true)
		out[i] = Fig4Point{
			SNRdB:                snr,
			ShortestDBm:          s,
			LongestDBm:           l,
			LongestButlerDBm:     lb,
			ShortestWattsMilli:   units.FromDBm(s) * 1e3,
			LongestButlerWattsMW: units.FromDBm(lb) * 1e3,
		}
	}
	return out
}
