// Package experiments regenerates every table and figure of the paper's
// evaluation. Each function returns the experiment output as a printable
// report; cmd/wiboc exposes them on the command line and the repository's
// top-level benchmarks time them.
//
// Monte-Carlo fidelity is controlled by Quality: Smoke keeps everything
// in CI-friendly seconds, Standard is the EXPERIMENTS.md recording
// fidelity, Full runs at paper fidelity (BER 1e-5 targets).
package experiments

import (
	"fmt"
	"strings"
)

// Quality selects the Monte-Carlo fidelity of the experiments.
type Quality int

const (
	// Smoke targets seconds per experiment (tests and benchmarks).
	Smoke Quality = iota
	// Standard targets minutes overall (EXPERIMENTS.md numbers).
	Standard
	// Full reproduces the paper's operating points (BER 1e-5).
	Full
)

// ParseQuality maps a CLI string to a Quality.
func ParseQuality(s string) (Quality, error) {
	switch strings.ToLower(s) {
	case "smoke":
		return Smoke, nil
	case "standard":
		return Standard, nil
	case "full":
		return Full, nil
	default:
		return Smoke, fmt.Errorf("experiments: unknown quality %q (smoke|standard|full)", s)
	}
}

// String implements fmt.Stringer.
func (q Quality) String() string {
	switch q {
	case Smoke:
		return "smoke"
	case Standard:
		return "standard"
	case Full:
		return "full"
	default:
		return "unknown"
	}
}

// table is a small helper for aligned text reports.
type table struct {
	sb strings.Builder
}

func (t *table) title(format string, args ...any) {
	fmt.Fprintf(&t.sb, format+"\n", args...)
}

func (t *table) row(format string, args ...any) {
	fmt.Fprintf(&t.sb, format+"\n", args...)
}

func (t *table) blank() { t.sb.WriteByte('\n') }

func (t *table) String() string { return t.sb.String() }
