package analytic

import (
	"fmt"
	"math"
)

// routeClass aggregates every source/destination module pair that shares
// one router-to-router route: the traffic share is summed so the latency
// average visits each distinct route once instead of once per module
// pair.
type routeClass struct {
	chans []int
	share float64
}

// Compiled is a Model whose all-pairs routes and per-unit channel loads
// have been computed once. Evaluating a latency-versus-injection curve
// through a Compiled model costs O(channels + route classes) per point
// instead of O(modules^2 x hops), which is what makes wide design-space
// sweeps over large meshes practical.
//
// A Compiled value is immutable after construction and safe for
// concurrent use by multiple goroutines.
type Compiled struct {
	m              Model
	loadsPerUnit   []float64
	capacity       []float64 // per-channel relative capacity
	classes        []routeClass
	colocatedShare float64 // traffic that never leaves its router
	totalShare     float64
}

// Compile freezes the model's routing into a reusable evaluator.
func (m Model) Compile() *Compiled {
	topo := m.Topo
	n := topo.NumModules()
	c := &Compiled{
		m:            m,
		loadsPerUnit: make([]float64, topo.NumChannels()),
		capacity:     make([]float64, topo.NumChannels()),
	}
	for i := range c.capacity {
		c.capacity[i] = m.channelCapacity(i)
	}

	// Aggregate module pairs by router pair; routes depend only on the
	// router endpoints. Accumulation walks router pairs in a fixed order
	// so the floating-point sums are bit-identical run to run.
	routers := topo.NumRouters()
	byPair := make([]float64, routers*routers)
	for s := 0; s < n; s++ {
		rs := topo.RouterOf(s)
		for d := 0; d < n; d++ {
			share := m.Traffic.Share(s, d, n)
			if share == 0 {
				continue
			}
			c.totalShare += share
			rd := topo.RouterOf(d)
			if rs == rd {
				c.colocatedShare += share
				continue
			}
			byPair[rs*routers+rd] += share
		}
	}
	for key, share := range byPair {
		if share == 0 {
			continue
		}
		chans := topo.RouteChannels(key/routers, key%routers)
		c.classes = append(c.classes, routeClass{chans: chans, share: share})
		for _, ch := range chans {
			c.loadsPerUnit[ch] += share
		}
	}

	// Re-slice every class's channel list out of one contiguous arena:
	// the latency loop streams the classes in order, so packing their
	// channel indices back to back keeps its cache behaviour uniform
	// instead of depending on where RouteChannels' per-route allocations
	// happened to land on the heap.
	total := 0
	for _, rc := range c.classes {
		total += len(rc.chans)
	}
	arena := make([]int, 0, total)
	for i := range c.classes {
		arena = append(arena, c.classes[i].chans...)
		c.classes[i].chans = arena[len(arena)-len(c.classes[i].chans):]
	}
	return c
}

// Model returns the configuration the evaluator was compiled from.
func (c *Compiled) Model() Model { return c.m }

// WithService returns an evaluator that shares this one's compiled
// routes and channel loads (which do not depend on the service model)
// but applies a different queueing formula.
func (c *Compiled) WithService(s ServiceModel) *Compiled {
	cc := *c
	cc.m.Service = s
	return &cc
}

// ChannelLoadsPerUnit returns the cached per-unit channel loads. The
// slice is shared; callers must not modify it.
func (c *Compiled) ChannelLoadsPerUnit() []float64 { return c.loadsPerUnit }

// SaturationRate returns the injection rate at which the most loaded
// channel reaches unit utilisation.
func (c *Compiled) SaturationRate() float64 {
	maxLoad := 0.0
	for i, l := range c.loadsPerUnit {
		if scaled := l / c.capacity[i]; scaled > maxLoad {
			maxLoad = scaled
		}
	}
	if maxLoad == 0 {
		return math.Inf(1)
	}
	return c.m.efficiency() / maxLoad
}

// AvgLatency returns the mean packet latency in clock cycles at the
// given injection rate; the second result is false at saturation.
func (c *Compiled) AvgLatency(injectionRate float64) (float64, bool) {
	return c.avgLatency(injectionRate, make([]float64, len(c.loadsPerUnit)))
}

// avgLatency is AvgLatency with a caller-owned per-channel scratch
// buffer (len(loadsPerUnit)), so curve evaluation does not allocate
// per point; Compiled itself stays immutable and concurrency-safe.
func (c *Compiled) avgLatency(injectionRate float64, wait []float64) (float64, bool) {
	if injectionRate < 0 {
		panic(fmt.Sprintf("analytic: negative injection rate %g", injectionRate))
	}
	eff := c.m.efficiency()
	for i, l := range c.loadsPerUnit {
		rho := l * injectionRate / (eff * c.capacity[i])
		if rho >= 1 {
			return math.Inf(1), false
		}
		wait[i] = c.m.waiting(rho)
	}

	rd := c.m.routerDelay()
	sum := c.colocatedShare * rd
	for _, rc := range c.classes {
		lat := float64(len(rc.chans)+1) * rd
		for _, ch := range rc.chans {
			lat += wait[ch]
		}
		sum += rc.share * lat
	}
	if c.totalShare == 0 {
		return 0, true
	}
	return sum / c.totalShare, true
}

// ZeroLoadLatency returns the latency floor (no queueing).
func (c *Compiled) ZeroLoadLatency() float64 {
	lat, _ := c.AvgLatency(0)
	return lat
}

// LatencyCurve samples AvgLatency over the given injection rates.
func (c *Compiled) LatencyCurve(rates []float64) []CurvePoint {
	out := make([]CurvePoint, len(rates))
	wait := make([]float64, len(c.loadsPerUnit))
	for i, r := range rates {
		lat, ok := c.avgLatency(r, wait)
		out[i] = CurvePoint{InjectionRate: r, LatencyCycles: lat, Saturated: !ok}
	}
	return out
}
