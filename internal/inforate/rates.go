package inforate

import (
	"math"

	"repro/internal/modem"
	"repro/internal/numeric"
	"repro/internal/rng"
)

// SequenceRate estimates the information rate I(X;Y) in bits per channel
// use achievable with sequence estimation over the 1-bit oversampled ISI
// channel, using the simulation-based method of Arnold & Loeliger:
//
//	I = (1/n) [ log2 p(y|x) - log2 p(y) ],
//
// with p(y) computed by the forward recursion of the joint input/state
// trellis over a simulated sequence of nSymbols channel uses. The result
// is clamped to [0, log2 M]. Deterministic for a fixed seed.
func SequenceRate(t *Trellis, snrDB float64, nSymbols int, seed uint64) float64 {
	if nSymbols < 1 {
		panic("inforate: SequenceRate needs nSymbols >= 1")
	}
	sigma := modem.NoiseSigmaForSNR(snrDB)
	stream := rng.New(seed)

	m, osf, states := t.m, t.osf, t.numStates
	branches := states * m

	// Per-branch, per-sample log-likelihood lookup tables:
	// lp[b*osf+k][bit] where bit 1 encodes y=+1.
	// P(y=+1 | v) = Q(-v/sigma); P(y=-1 | v) = Q(v/sigma).
	lpPlus := make([]float64, branches*osf)
	lpMinus := make([]float64, branches*osf)
	for b := 0; b < branches; b++ {
		for k := 0; k < osf; k++ {
			v := t.amps[b*osf+k]
			lpPlus[b*osf+k] = numeric.LogQ(-v / sigma)
			lpMinus[b*osf+k] = numeric.LogQ(v / sigma)
		}
	}

	// Simulate the true symbol/state path and the quantised observation.
	state := stream.Intn(states)
	alpha := make([]float64, states)
	alphaNext := make([]float64, states)
	for s := range alpha {
		alpha[s] = 1 / float64(states)
	}

	ybits := make([]bool, osf) // true = +1
	branchLL := make([]float64, branches)

	var logPyGivenX, logPy float64
	logPrior := -math.Log(float64(m))

	for n := 0; n < nSymbols; n++ {
		u := stream.Intn(m)
		b := state*m + u
		// Generate the quantised noisy observation of the true branch.
		for k := 0; k < osf; k++ {
			ybits[k] = t.amps[b*osf+k]+sigma*stream.Norm() >= 0
		}

		// log p(y_t | true branch).
		var llTrue float64
		for k := 0; k < osf; k++ {
			if ybits[k] {
				llTrue += lpPlus[b*osf+k]
			} else {
				llTrue += lpMinus[b*osf+k]
			}
		}
		logPyGivenX += llTrue

		// Branch log-likelihoods for the forward recursion.
		maxLL := math.Inf(-1)
		for bb := 0; bb < branches; bb++ {
			var ll float64
			off := bb * osf
			for k := 0; k < osf; k++ {
				if ybits[k] {
					ll += lpPlus[off+k]
				} else {
					ll += lpMinus[off+k]
				}
			}
			branchLL[bb] = ll
			if ll > maxLL {
				maxLL = ll
			}
		}

		// alpha'(s') = sum_{s,u -> s'} alpha(s) P(u) p(y|s,u).
		for s := range alphaNext {
			alphaNext[s] = 0
		}
		for s := 0; s < states; s++ {
			a := alpha[s]
			if a == 0 {
				continue
			}
			for uu := 0; uu < m; uu++ {
				bb := s*m + uu
				alphaNext[t.next[bb]] += a * math.Exp(branchLL[bb]-maxLL)
			}
		}
		var norm float64
		for _, a := range alphaNext {
			norm += a
		}
		if norm <= 0 {
			// All weighted paths vanished numerically (possible only when
			// the forward distribution sits entirely on states whose
			// branches all underflow). Restart the recursion uniformly and
			// skip this step's contribution.
			for s := range alphaNext {
				alphaNext[s] = 1 / float64(states)
			}
			logPyGivenX -= llTrue
			alpha, alphaNext = alphaNext, alpha
			state = t.next[b]
			continue
		}
		logPy += math.Log(norm) + maxLL + logPrior
		inv := 1 / norm
		for s := range alphaNext {
			alphaNext[s] *= inv
		}
		alpha, alphaNext = alphaNext, alpha

		state = t.next[b]
	}

	rate := (logPyGivenX - logPy) / (float64(nSymbols) * math.Ln2)
	return numeric.Clamp(rate, 0, math.Log2(float64(m)))
}

// SymbolwiseRate returns the exact mutual information I(X_t; Y_t) of the
// marginal per-symbol channel: the receiver observes only the OSF
// quantised samples of one symbol period and treats the interfering
// neighbour symbols as i.i.d. dithering. This is the rate of the
// symbol-by-symbol detector of Fig. 5(b)/Fig. 6.
func SymbolwiseRate(t *Trellis, snrDB float64) float64 {
	sigma := modem.NoiseSigmaForSNR(snrDB)
	m, osf, states := t.m, t.osf, t.numStates
	ny := 1 << osf

	// q(y|x) = E_states P(y | state, x); exact enumeration.
	qyx := make([]float64, m*ny)
	for u := 0; u < m; u++ {
		for s := 0; s < states; s++ {
			amps := t.BranchAmps(s, u)
			for y := 0; y < ny; y++ {
				p := 1.0
				for k := 0; k < osf; k++ {
					v := amps[k]
					if y&(1<<k) != 0 {
						p *= numeric.QFunc(-v / sigma)
					} else {
						p *= numeric.QFunc(v / sigma)
					}
				}
				qyx[u*ny+y] += p
			}
		}
	}
	invStates := 1 / float64(states)
	for i := range qyx {
		qyx[i] *= invStates
	}

	// Marginal q(y) with uniform inputs.
	qy := make([]float64, ny)
	for u := 0; u < m; u++ {
		for y := 0; y < ny; y++ {
			qy[y] += qyx[u*ny+y] / float64(m)
		}
	}

	var info float64
	for u := 0; u < m; u++ {
		for y := 0; y < ny; y++ {
			p := qyx[u*ny+y]
			if p <= 0 {
				continue
			}
			info += p / float64(m) * math.Log2(p/qy[y])
		}
	}
	return numeric.Clamp(info, 0, math.Log2(float64(m)))
}

// RectOversampledRate returns the exact rate of the ISI-free rectangular
// pulse with osf-fold oversampling and 1-bit quantisation ("Rect 1Bit-OS"
// in Fig. 6). The channel is memoryless, so the symbolwise rate is the
// full information rate.
func RectOversampledRate(c modem.Constellation, osf int, snrDB float64) float64 {
	t := NewTrellis(c, modem.NewRect(osf))
	return SymbolwiseRate(t, snrDB)
}

// NoOversamplingRate returns the exact rate with one 1-bit sample per
// symbol ("1Bit No-OS" in Fig. 6). It is bounded by 1 bit regardless of
// the constellation size.
func NoOversamplingRate(c modem.Constellation, snrDB float64) float64 {
	return RectOversampledRate(c, 1, snrDB)
}

// UnquantizedRate returns the mutual information of the constellation
// over the AWGN channel without quantisation ("No Quantization" in
// Fig. 6), computed with Gauss-Hermite quadrature:
//
//	I = h(Y) - h(Y|X),  h(Y|X) = 0.5 log2(2 pi e sigma^2).
func UnquantizedRate(c modem.Constellation, snrDB float64) float64 {
	sigma := modem.NoiseSigmaForSNR(snrDB)
	m := c.Size()
	gh := numeric.NewGaussHermite(64)

	// p(y) = (1/m) sum_x N(y; x, sigma^2).
	py := func(y float64) float64 {
		var p float64
		for i := 0; i < m; i++ {
			d := (y - c.Level(i)) / sigma
			p += math.Exp(-0.5*d*d) / (sigma * math.Sqrt(2*math.Pi))
		}
		return p / float64(m)
	}

	// h(Y) = E[-log2 p(Y)], with Y = x + noise, averaged over x.
	var hY float64
	for i := 0; i < m; i++ {
		x := c.Level(i)
		hY += gh.ExpectGaussian(func(y float64) float64 {
			p := py(y)
			if p <= 0 {
				return 0
			}
			return -math.Log2(p)
		}, x, sigma) / float64(m)
	}
	hYgivenX := 0.5 * math.Log2(2*math.Pi*math.E*sigma*sigma)
	return numeric.Clamp(hY-hYgivenX, 0, math.Log2(float64(m)))
}
