package spec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/sweep"
)

// Compiled is a spec materialised for execution: the dynamic scenario
// (grid), the parsed budget and the constraint predicate. It carries
// everything a daemon or worker needs to run the study without the
// spec's scenario ever entering the compiled-in registry.
type Compiled struct {
	// Spec is the validated source document.
	Spec *Spec
	// Scenario is the dynamic grid under the spec's content-addressed
	// name; its Points func returns the precomputed grid.
	Scenario sweep.Scenario
	// Points is the enumerated grid (the same slice Scenario.Points
	// returns).
	Points []sweep.Point
	// Budget is the parsed evaluation budget.
	Budget sweep.Budget
	// Feasible is the conjunction of the spec's constraints, nil when
	// it has none.
	Feasible func(sweep.Record) bool
}

// Compile validates the spec and materialises its grid. Every grid
// point's SystemSpec is checked, so a spec that compiles never produces
// a point the evaluator rejects for structural reasons (points can
// still be infeasible on physics, e.g. interference-limited links —
// those evaluate to records with Err set).
func (s *Spec) Compile() (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pts, err := s.points()
	if err != nil {
		return nil, err
	}
	feasible, err := s.FeasibleFunc()
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		Spec:     s,
		Points:   pts,
		Budget:   s.SweepBudget(),
		Feasible: feasible,
	}
	c.Scenario = sweep.Scenario{
		Name:        s.ScenarioName(),
		Description: s.describe(),
		Points:      func() []sweep.Point { return pts },
	}
	return c, nil
}

// describe renders the registry-style description line.
func (s *Spec) describe() string {
	if s.Description != "" {
		return fmt.Sprintf("user spec %q: %s", s.Name, s.Description)
	}
	return fmt.Sprintf("user spec %q", s.Name)
}

// cloneSpec deep-copies the optional sections so applying knobs to one
// point (or one optimizer individual) never mutates another's spec.
func cloneSpec(sp core.SystemSpec) core.SystemSpec {
	if sp.Traffic != nil {
		t := *sp.Traffic
		sp.Traffic = &t
	}
	if sp.Interference != nil {
		i := *sp.Interference
		sp.Interference = &i
	}
	if sp.Power != nil {
		p := *sp.Power
		sp.Power = &p
	}
	return sp
}

// baseSpec builds the paper default with the spec's base overrides
// applied in sorted knob order (deterministic regardless of map
// iteration).
func (s *Spec) baseSpec() core.SystemSpec {
	base := core.DefaultSpec()
	names := make([]string, 0, len(s.Base))
	for n := range s.Base {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		knobs[n].set(&base, s.Base[n])
	}
	return base
}

// points enumerates the grid in axis-major order: the first axis is the
// slowest-varying dimension. Point indices — and with them every
// RNG sub-stream and cache key — follow from this order, which is why
// axis order is part of the spec's canonical identity.
func (s *Spec) points() ([]sweep.Point, error) {
	base := s.baseSpec()
	values := make([][]any, len(s.Axes))
	total := 1
	for i := range s.Axes {
		values[i] = s.Axes[i].values()
		total *= len(values[i])
	}
	pts := make([]sweep.Point, 0, total)
	idx := make([]int, len(s.Axes))
	var label strings.Builder
	for n := 0; n < total; n++ {
		sp := cloneSpec(base)
		label.Reset()
		for a := range s.Axes {
			v := values[a][idx[a]]
			knobs[s.Axes[a].Name].set(&sp, v)
			if a > 0 {
				label.WriteByte(' ')
			}
			label.WriteString(s.Axes[a].Name)
			label.WriteByte('=')
			label.WriteString(formatValue(v))
		}
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("spec: point %q is invalid: %w (tighten the axis bounds or base)", label.String(), err)
		}
		pts = append(pts, sweep.Point{Index: n, Label: label.String(), Spec: sp})
		for a := len(s.Axes) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(values[a]) {
				break
			}
			idx[a] = 0
		}
	}
	return pts, nil
}

// Space compiles the spec to a search.Space for optimize jobs: each
// axis becomes one searchable parameter over the same bounds (enum axes
// search over the value index), and the grid's base spec is the
// space's base. The space's name is the spec's content address, so
// optimizer cache keys ("optimize/spec/<hash>") are shared between
// equivalent specs exactly like grid keys.
func (s *Spec) Space() (search.Space, error) {
	if err := s.Validate(); err != nil {
		return search.Space{}, err
	}
	base := s.baseSpec()
	params := make([]search.Param, 0, len(s.Axes))
	for i := range s.Axes {
		ax := s.Axes[i]
		k := knobs[ax.Name]
		var p search.Param
		switch ax.Kind {
		case "continuous":
			p = search.NewParam(ax.Name, search.Continuous, *ax.Min, *ax.Max,
				func(sp *core.SystemSpec, v float64) { k.set(sp, v) })
		case "integer":
			p = search.NewParam(ax.Name, search.Integer, *ax.Min, *ax.Max,
				func(sp *core.SystemSpec, v float64) { k.set(sp, v) })
		case "bool":
			p = search.NewParam(ax.Name, search.Bool, 0, 1,
				func(sp *core.SystemSpec, v float64) { k.set(sp, v != 0) })
		case "enum":
			vals := ax.Values
			if len(vals) < 2 {
				return search.Space{}, fmt.Errorf(
					"spec: axis %q: a single-value enum cannot be searched; set it in \"base\" instead", ax.Name)
			}
			p = search.NewParam(ax.Name, search.Integer, 0, float64(len(vals)-1),
				func(sp *core.SystemSpec, v float64) { k.set(sp, vals[int(v)]) })
		}
		if !(p.Min < p.Max) {
			return search.Space{}, fmt.Errorf(
				"spec: axis %q: zero-extent bounds [%g, %g] cannot be searched; set the knob in \"base\" instead",
				ax.Name, p.Min, p.Max)
		}
		params = append(params, p)
	}
	sp := search.Space{
		Name:        s.ScenarioName(),
		Description: s.describe(),
		Base:        func() core.SystemSpec { return cloneSpec(base) },
		Params:      params,
	}
	if err := sp.Validate(); err != nil {
		return search.Space{}, fmt.Errorf("spec: %w", err)
	}
	return sp, nil
}

// SearchObjectives returns the spec's objectives parsed against the
// search catalog, or the catalog defaults when the spec names none.
func (s *Spec) SearchObjectives() ([]search.Objective, error) {
	if len(s.Objectives) == 0 {
		return search.DefaultObjectives(), nil
	}
	objs, err := search.ParseObjectives(s.Objectives)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return objs, nil
}
