package numeric

import (
	"math"
	"sort"
)

// GoldenSection maximises a unimodal function f on [a, b] and returns the
// maximising argument. tol is the absolute tolerance on the argument.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	const invPhi = 0.6180339887498949 // 1/phi
	if a > b {
		a, b = b, a
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		}
	}
	return 0.5 * (a + b)
}

// Bisect finds a root of f on [a, b] assuming f(a) and f(b) bracket zero.
// It returns the midpoint of the final bracket after the interval shrinks
// below tol. If the endpoints do not bracket a sign change, it returns NaN.
func Bisect(f func(float64) float64, a, b, tol float64) float64 {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a
	}
	if fb == 0 {
		return b
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return math.NaN()
	}
	for b-a > tol {
		mid := 0.5 * (a + b)
		fm := f(mid)
		if fm == 0 {
			return mid
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = mid, fm
		} else {
			b = mid
		}
	}
	return 0.5 * (a + b)
}

// NelderMeadOptions configures the downhill-simplex maximiser.
type NelderMeadOptions struct {
	// MaxEvals bounds the number of objective evaluations. Zero means 500·dim.
	MaxEvals int
	// Tol is the convergence tolerance on the simplex function spread.
	// Zero means 1e-9.
	Tol float64
	// Step is the initial simplex edge length. Zero means 0.1.
	Step float64
}

// NelderMead maximises f starting from x0 using the downhill simplex
// method (on -f). It returns the best point found and its objective value.
// The input slice is not modified.
func NelderMead(f func([]float64) float64, x0 []float64, opt NelderMeadOptions) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}
	if opt.MaxEvals == 0 {
		opt.MaxEvals = 500 * n
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-9
	}
	if opt.Step == 0 {
		opt.Step = 0.1
	}

	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	// Initial simplex: x0 plus one perturbed vertex per dimension.
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{append([]float64(nil), x0...), eval(x0)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		x[i] += opt.Step
		simplex[i+1] = vertex{x, eval(x)}
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	centroid := make([]float64, n)
	xr := make([]float64, n)
	xe := make([]float64, n)
	xc := make([]float64, n)

	for evals < opt.MaxEvals {
		// Sort descending: best (largest f) first.
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f > simplex[j].f })
		if simplex[0].f-simplex[n].f < opt.Tol {
			break
		}
		// Centroid of all but worst.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := range centroid {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		worst := &simplex[n]

		// Reflection.
		for j := range xr {
			xr[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := eval(xr)
		switch {
		case fr > simplex[0].f:
			// Expansion.
			for j := range xe {
				xe[j] = centroid[j] + gamma*(xr[j]-centroid[j])
			}
			if fe := eval(xe); fe > fr {
				copy(worst.x, xe)
				worst.f = fe
			} else {
				copy(worst.x, xr)
				worst.f = fr
			}
		case fr > simplex[n-1].f:
			copy(worst.x, xr)
			worst.f = fr
		default:
			// Contraction toward the better of worst/reflected.
			ref := worst.x
			refF := worst.f
			if fr > worst.f {
				ref, refF = xr, fr
			}
			for j := range xc {
				xc[j] = centroid[j] + rho*(ref[j]-centroid[j])
			}
			if fc := eval(xc); fc > refF {
				copy(worst.x, xc)
				worst.f = fc
			} else {
				// Shrink toward best.
				for i := 1; i <= n; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f > simplex[j].f })
	return simplex[0].x, simplex[0].f
}

// CoordinateAscentOptions configures CoordinateAscent.
type CoordinateAscentOptions struct {
	// Sweeps is the number of full passes over the coordinates (default 10).
	Sweeps int
	// InitialStep is the starting probe step per coordinate (default 0.25).
	InitialStep float64
	// MinStep terminates refinement once the probe shrinks below it
	// (default 1e-4).
	MinStep float64
	// Lo and Hi optionally clamp every coordinate; ignored when Lo >= Hi.
	Lo, Hi float64
}

// CoordinateAscent maximises f by cyclic line probes along each coordinate,
// halving the step whenever a full sweep yields no improvement. It is
// robust for noisy objectives such as Monte-Carlo information rates where
// gradient methods fail. Returns the best point and objective value.
func CoordinateAscent(f func([]float64) float64, x0 []float64, opt CoordinateAscentOptions) ([]float64, float64) {
	if opt.Sweeps == 0 {
		opt.Sweeps = 10
	}
	if opt.InitialStep == 0 {
		opt.InitialStep = 0.25
	}
	if opt.MinStep == 0 {
		opt.MinStep = 1e-4
	}
	clamp := opt.Lo < opt.Hi

	x := append([]float64(nil), x0...)
	best := f(x)
	step := opt.InitialStep
	for s := 0; s < opt.Sweeps && step >= opt.MinStep; s++ {
		improved := false
		for i := range x {
			orig := x[i]
			for _, cand := range [2]float64{orig + step, orig - step} {
				if clamp {
					cand = Clamp(cand, opt.Lo, opt.Hi)
				}
				if cand == orig {
					continue
				}
				x[i] = cand
				if v := f(x); v > best {
					best = v
					orig = cand
					improved = true
				} else {
					x[i] = orig
				}
			}
			x[i] = orig
		}
		if !improved {
			step /= 2
		}
	}
	return x, best
}
