package spec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// validDoc is a spec exercising every axis kind and both optional
// sections' knobs.
const validDoc = `{
	"name": "bursty-noc",
	"description": "hotspot traffic against injection load",
	"base": {"stack-modules": 64, "traffic-pattern": "hotspot", "traffic-hotspot-module": 3},
	"axes": [
		{"name": "traffic-hotspot-fraction", "kind": "continuous", "min": 0, "max": 0.4, "step": 0.2},
		{"name": "stack-injection-rate", "kind": "enum", "values": [0.05, 0.1]},
		{"name": "butler", "kind": "bool"},
		{"name": "latency-budget-bits", "kind": "integer", "min": 100, "max": 300, "step": 100}
	],
	"objectives": ["tx-power", "noc-latency"],
	"constraints": ["tx_power_dbm <= 20", "noc_saturation >= 0.05"],
	"budget": "analytic",
	"max_points": 100
}`

func TestParseValid(t *testing.T) {
	s, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if want := 3 * 2 * 2 * 3; len(c.Points) != want {
		t.Fatalf("grid has %d points, want %d", len(c.Points), want)
	}
	// Axis-major order: the first axis varies slowest.
	if got := c.Points[0].Label; !strings.HasPrefix(got, "traffic-hotspot-fraction=0 ") {
		t.Errorf("point 0 label %q", got)
	}
	last := c.Points[len(c.Points)-1]
	if !strings.Contains(last.Label, "traffic-hotspot-fraction=0.4") ||
		!strings.Contains(last.Label, "latency-budget-bits=300") {
		t.Errorf("last point label %q", last.Label)
	}
	for i, pt := range c.Points {
		if pt.Index != i {
			t.Fatalf("point %d carries index %d", i, pt.Index)
		}
		if pt.Spec.Traffic == nil || pt.Spec.Traffic.Pattern != "hotspot" {
			t.Fatalf("point %d lost the base traffic section: %+v", i, pt.Spec.Traffic)
		}
	}
	// Base sections must not be shared between points.
	if &c.Points[0].Spec.Traffic == &c.Points[1].Spec.Traffic ||
		c.Points[0].Spec.Traffic == c.Points[1].Spec.Traffic {
		t.Error("points share one traffic section")
	}
	if c.Feasible == nil {
		t.Fatal("constraints did not produce a predicate")
	}
	if c.Feasible(sweep.Record{TxPowerDBm: 25, NoCSaturation: 0.2}) {
		t.Error("tx_power_dbm 25 passed a <= 20 constraint")
	}
	if !c.Feasible(sweep.Record{TxPowerDBm: 10, NoCSaturation: 0.2}) {
		t.Error("feasible record rejected")
	}
	if c.Feasible(sweep.Record{TxPowerDBm: 10, NoCSaturation: 0.2, Err: "boom"}) {
		t.Error("errored record counted feasible")
	}
}

// TestParseRejects is the table of malformed documents; every message
// must carry the offending detail so users can act on it.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown top-level field", `{"name":"x","axes":[{"name":"butler","kind":"bool"}],"surprise":1}`, "surprise"},
		{"unknown axis field", `{"name":"x","axes":[{"name":"butler","kind":"bool","stride":2}]}`, "stride"},
		{"trailing data", `{"name":"x","axes":[{"name":"butler","kind":"bool"}]} {}`, "trailing"},
		{"missing name", `{"axes":[{"name":"butler","kind":"bool"}]}`, `"name"`},
		{"no axes", `{"name":"x"}`, "at least one axis"},
		{"unknown knob", `{"name":"x","axes":[{"name":"warp-factor","kind":"integer","min":1,"max":9}]}`, "warp-factor"},
		{"duplicate axis", `{"name":"x","axes":[{"name":"butler","kind":"bool"},{"name":"butler","kind":"bool"}]}`, "twice"},
		{"missing kind", `{"name":"x","axes":[{"name":"boards"}]}`, "kind"},
		{"unknown kind", `{"name":"x","axes":[{"name":"boards","kind":"log"}]}`, "log"},
		{"inverted bounds", `{"name":"x","axes":[{"name":"boards","kind":"integer","min":8,"max":2}]}`, "inverted bounds"},
		{"zero step", `{"name":"x","axes":[{"name":"link-rate-gbps","kind":"continuous","min":10,"max":100,"step":0}]}`, "step 0 must be positive"},
		{"negative step", `{"name":"x","axes":[{"name":"link-rate-gbps","kind":"continuous","min":10,"max":100,"step":-5}]}`, "must be positive"},
		{"missing step", `{"name":"x","axes":[{"name":"link-rate-gbps","kind":"continuous","min":10,"max":100}]}`, `"step"`},
		{"fractional integer axis", `{"name":"x","axes":[{"name":"boards","kind":"integer","min":1.5,"max":4}]}`, "whole"},
		{"continuous on integer knob", `{"name":"x","axes":[{"name":"boards","kind":"continuous","min":1,"max":4,"step":0.5}]}`, "integer-valued"},
		{"bool knob numeric axis", `{"name":"x","axes":[{"name":"butler","kind":"integer","min":0,"max":1}]}`, "bool-valued"},
		{"bool axis with bounds", `{"name":"x","axes":[{"name":"butler","kind":"bool","min":0}]}`, "no bounds"},
		{"enum without values", `{"name":"x","axes":[{"name":"traffic-pattern","kind":"enum"}]}`, "at least one value"},
		{"enum duplicate value", `{"name":"x","axes":[{"name":"traffic-pattern","kind":"enum","values":["uniform","uniform"]}]}`, "duplicate"},
		{"enum bad member", `{"name":"x","axes":[{"name":"traffic-pattern","kind":"enum","values":["uniform","bursty"]}]}`, "bursty"},
		{"enum wrong type", `{"name":"x","axes":[{"name":"traffic-pattern","kind":"enum","values":[3]}]}`, "want one of"},
		{"grid over axis cap", `{"name":"x","axes":[{"name":"link-rate-gbps","kind":"continuous","min":0.001,"max":1000000,"step":0.001}]}`, "cap"},
		{"grid over combined cap", `{"name":"x","axes":[
			{"name":"boards","kind":"integer","min":1,"max":1000},
			{"name":"nodes-per-board","kind":"integer","min":1,"max":1000}]}`, "cap"},
		{"grid over max_points", `{"name":"x","max_points":3,"axes":[{"name":"boards","kind":"integer","min":1,"max":8}]}`, "max_points"},
		{"max_points over cap", `{"name":"x","max_points":1000000,"axes":[{"name":"butler","kind":"bool"}]}`, "hard"},
		{"unknown base knob", `{"name":"x","base":{"warp":1},"axes":[{"name":"butler","kind":"bool"}]}`, "warp"},
		{"base type mismatch", `{"name":"x","base":{"boards":true},"axes":[{"name":"butler","kind":"bool"}]}`, "number"},
		{"base domain", `{"name":"x","base":{"latency-budget-bits":10},"axes":[{"name":"butler","kind":"bool"}]}`, ">= 75"},
		{"base fractional int", `{"name":"x","base":{"boards":2.5},"axes":[{"name":"butler","kind":"bool"}]}`, "whole"},
		{"hotspot fraction range", `{"name":"x","base":{"traffic-hotspot-fraction":1.5},"axes":[{"name":"butler","kind":"bool"}]}`, "[0, 1]"},
		{"unknown objective", `{"name":"x","objectives":["tx-power","steam-pressure"],"axes":[{"name":"butler","kind":"bool"}]}`, "steam-pressure"},
		{"one objective", `{"name":"x","objectives":["tx-power"],"axes":[{"name":"butler","kind":"bool"}]}`, "at least 2"},
		{"bad constraint shape", `{"name":"x","constraints":["tx_power_dbm<=20"],"axes":[{"name":"butler","kind":"bool"}]}`, "metric op value"},
		{"unknown constraint metric", `{"name":"x","constraints":["zing <= 20"],"axes":[{"name":"butler","kind":"bool"}]}`, "zing"},
		{"bad constraint op", `{"name":"x","constraints":["ber != 0"],"axes":[{"name":"butler","kind":"bool"}]}`, "operator"},
		{"bad constraint bound", `{"name":"x","constraints":["ber <= lots"],"axes":[{"name":"butler","kind":"bool"}]}`, "finite number"},
		{"unknown budget", `{"name":"x","budget":"lavish","axes":[{"name":"butler","kind":"bool"}]}`, "lavish"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCanonicalKeyOrderInsensitive: the acceptance property — two
// semantically equal documents with different key order and number
// spellings canonicalise identically and mint identical PointKeys.
func TestCanonicalKeyOrderInsensitive(t *testing.T) {
	reordered := `{
		"budget": "analytic",
		"max_points": 100,
		"constraints": ["noc_saturation >= 5e-2", "tx_power_dbm <= 2e1"],
		"objectives": ["tx-power", "noc-latency"],
		"axes": [
			{"kind": "continuous", "step": 2e-1, "max": 4e-1, "min": 0, "name": "traffic-hotspot-fraction"},
			{"values": [5e-2, 1e-1], "kind": "enum", "name": "stack-injection-rate"},
			{"kind": "bool", "name": "butler"},
			{"step": 100, "max": 3e2, "min": 1e2, "kind": "integer", "name": "latency-budget-bits"}
		],
		"base": {"traffic-hotspot-module": 3, "traffic-pattern": "hotspot", "stack-modules": 64},
		"description": "hotspot traffic against injection load",
		"name": "bursty-noc"
	}`
	a, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(reordered))
	if err != nil {
		t.Fatal(err)
	}
	// Constraint order differs above on purpose: constraint ORDER is
	// semantic in the full document but absent from the grid identity.
	if a.Hash() != b.Hash() {
		t.Fatalf("grid hashes differ:\n%s\n%s", a.GridCanonical(), b.GridCanonical())
	}
	if a.ScenarioName() != b.ScenarioName() {
		t.Fatalf("scenario names differ: %s vs %s", a.ScenarioName(), b.ScenarioName())
	}
	ca, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Points) != len(cb.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(ca.Points), len(cb.Points))
	}
	for i := range ca.Points {
		ka := sweep.PointKey(ca.Scenario.Name, ca.Points[i], ca.Budget, 42)
		kb := sweep.PointKey(cb.Scenario.Name, cb.Points[i], cb.Budget, 42)
		if ka != kb {
			t.Fatalf("point %d: keys differ: %s vs %s", i, ka, kb)
		}
	}
}

// TestCanonicalFixedPoint: Canonical(Parse(Canonical(s))) == Canonical(s).
func TestCanonicalFixedPoint(t *testing.T) {
	s, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	canon := s.Canonical()
	s2, err := Parse(canon)
	if err != nil {
		t.Fatalf("canonical form does not reparse: %v\n%s", err, canon)
	}
	if again := s2.Canonical(); !bytes.Equal(canon, again) {
		t.Fatalf("canonicalisation is not a fixed point:\n%s\n%s", canon, again)
	}
	if s.Hash() != s2.Hash() {
		t.Fatal("hash changed across canonical round trip")
	}
}

// TestGridIdentityIgnoresPresentation: name, description, objectives,
// constraints, budget and max_points do not move the grid hash; base
// and axes do.
func TestGridIdentityIgnoresPresentation(t *testing.T) {
	base, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	variant := *base
	variant.Name = "other-name"
	variant.Description = ""
	variant.Objectives = nil
	variant.Constraints = nil
	variant.Budget = "smoke"
	variant.MaxPoints = 0
	if base.Hash() != variant.Hash() {
		t.Error("presentation fields moved the grid hash")
	}
	moved := *base
	moved.Base = map[string]any{"stack-modules": float64(128)}
	if base.Hash() == moved.Hash() {
		t.Error("base change did not move the grid hash")
	}
}

// TestSpaceCompile checks the optimize-side compilation.
func TestSpaceCompile(t *testing.T) {
	s, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	space, err := s.Space()
	if err != nil {
		t.Fatal(err)
	}
	if space.ScenarioName() != "optimize/"+s.ScenarioName() {
		t.Fatalf("space scenario %q", space.ScenarioName())
	}
	if len(space.Params) != len(s.Axes) {
		t.Fatalf("space has %d params for %d axes", len(space.Params), len(s.Axes))
	}
	// Genome: fraction 0.4, enum index 1 (0.1), butler true, budget 300.
	spec := space.Decode([]float64{0.4, 1, 1, 300})
	if spec.Traffic == nil || spec.Traffic.HotspotFraction != 0.4 {
		t.Fatalf("traffic section %+v", spec.Traffic)
	}
	if spec.StackInjectionRate != 0.1 || !spec.Butler || spec.LatencyBudgetBits != 300 {
		t.Fatalf("decoded spec %+v", spec)
	}
	// Decoding must not leak sections between individuals.
	other := space.Decode([]float64{0.2, 0, 0, 100})
	if other.Traffic == spec.Traffic {
		t.Fatal("individuals share a traffic section")
	}
	if spec.Traffic.HotspotFraction != 0.4 {
		t.Fatal("second decode mutated the first individual")
	}

	single := &Spec{Name: "x", Axes: []Axis{{Name: "traffic-pattern", Kind: "enum", Values: []any{"uniform"}}}}
	if _, err := single.Space(); err == nil || !strings.Contains(err.Error(), "base") {
		t.Fatalf("single-value enum space error: %v", err)
	}
}

// FuzzSpecCanonicalRoundTrip drives arbitrary documents through Parse;
// whenever one is accepted, its canonical form must reparse to the same
// canonical bytes and the same grid hash (fixed point), and a
// syntactically shuffled equivalent — produced by reparsing the
// canonical form itself — must share the hash (key-order
// insensitivity comes from parsing into structs, which this locks in).
func FuzzSpecCanonicalRoundTrip(f *testing.F) {
	f.Add([]byte(validDoc))
	f.Add([]byte(`{"name":"n","axes":[{"name":"butler","kind":"bool"}]}`))
	f.Add([]byte(`{"name":"n","budget":"smoke","base":{"boards":2},"axes":[
		{"name":"boards","kind":"integer","min":2,"max":5},
		{"name":"board-spacing-m","kind":"continuous","min":0.05,"max":0.2,"step":0.05}]}`))
	f.Add([]byte(`{"name":"n","constraints":["ber < 1e-3"],"axes":[
		{"name":"traffic-pattern","kind":"enum","values":["uniform","hotspot","bit-complement"]}]}`))
	f.Fuzz(func(t *testing.T, doc []byte) {
		s, err := Parse(doc)
		if err != nil {
			return
		}
		canon := s.Canonical()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		if again := s2.Canonical(); !bytes.Equal(canon, again) {
			t.Fatalf("not a fixed point:\n%s\n%s", canon, again)
		}
		if s.Hash() != s2.Hash() {
			t.Fatalf("hash drifted across canonicalisation")
		}
	})
}
