package core

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultSpecValid(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	mutations := map[string]func(*SystemSpec){
		"boards":    func(s *SystemSpec) { s.Boards = 0 },
		"spacing":   func(s *SystemSpec) { s.BoardSpacingM = 0 },
		"edge":      func(s *SystemSpec) { s.BoardEdgeM = -1 },
		"nodes":     func(s *SystemSpec) { s.NodesPerBoard = 0 },
		"rate":      func(s *SystemSpec) { s.LinkRateGbps = 0 },
		"latency":   func(s *SystemSpec) { s.LatencyBudgetBits = 10 },
		"modules":   func(s *SystemSpec) { s.StackModules = 1 },
		"injection": func(s *SystemSpec) { s.StackInjectionRate = 0 },
	}
	for name, mutate := range mutations {
		spec := DefaultSpec()
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: bad spec accepted", name)
		}
		if _, err := DesignSystem(spec); err == nil {
			t.Errorf("%s: DesignSystem accepted bad spec", name)
		}
	}
}

func TestDesignSystemDefault(t *testing.T) {
	d, err := DesignSystem(DefaultSpec())
	if err != nil {
		t.Fatalf("design failed: %v", err)
	}
	// Links: ahead at board spacing, diagonal across spacing + board
	// diagonal.
	if len(d.Links) != 2 {
		t.Fatalf("links = %d, want 2", len(d.Links))
	}
	if d.Links[0].DistanceM != 0.1 {
		t.Errorf("ahead distance = %g", d.Links[0].DistanceM)
	}
	wantDiag := math.Sqrt(0.1*0.1 + 2*0.1*0.1)
	if math.Abs(d.Links[1].DistanceM-wantDiag) > 1e-12 {
		t.Errorf("diagonal distance = %g, want %g", d.Links[1].DistanceM, wantDiag)
	}
	// 100 Gbit/s in 25 GHz dual-pol: 2 bit/s/Hz per polarisation.
	if math.Abs(d.SpectralEfficiency-2) > 1e-12 {
		t.Errorf("spectral efficiency = %g, want 2", d.SpectralEfficiency)
	}
	// Target SNR = Shannon (4.77 dB) + 3 dB margin.
	if math.Abs(d.Links[0].TargetSNRdB-7.77) > 0.05 {
		t.Errorf("target SNR = %g, want ~7.77", d.Links[0].TargetSNRdB)
	}
	// The diagonal+butler link dominates the power budget and stays
	// within a plausible PA range (Fig. 4 scale).
	if d.WorstTxPowerDBm() != d.Links[1].TxPowerDBm {
		t.Error("worst link is not the diagonal")
	}
	if d.WorstTxPowerDBm() < -10 || d.WorstTxPowerDBm() > 20 {
		t.Errorf("worst PTX = %.1f dBm, outside plausible range", d.WorstTxPowerDBm())
	}
}

func TestChooseCodeRespectsBudget(t *testing.T) {
	d, err := DesignSystem(DefaultSpec()) // budget 200
	if err != nil {
		t.Fatal(err)
	}
	if d.Code.LatencyBits > 200 {
		t.Errorf("code latency %.0f exceeds budget 200", d.Code.LatencyBits)
	}
	// Best fit for 200 bits: N=40, W=5 (prefers the larger lifting).
	if d.Code.Lifting != 40 || d.Code.Window != 5 {
		t.Errorf("code = N=%d W=%d, want N=40 W=5", d.Code.Lifting, d.Code.Window)
	}

	// A huge budget buys N=60 with a big window.
	spec := DefaultSpec()
	spec.LatencyBudgetBits = 1000
	d2, err := DesignSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Code.Lifting != 60 || d2.Code.Window != 8 {
		t.Errorf("large budget code = N=%d W=%d, want N=60 W=8", d2.Code.Lifting, d2.Code.Window)
	}

	// The minimum viable budget picks the smallest code.
	spec.LatencyBudgetBits = 75
	d3, err := DesignSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Code.Lifting != 25 || d3.Code.Window != 3 {
		t.Errorf("tight budget code = N=%d W=%d, want N=25 W=3", d3.Code.Lifting, d3.Code.Window)
	}
}

func TestChooseStackPrefers3DAtHighLoad(t *testing.T) {
	spec := DefaultSpec()
	spec.StackInjectionRate = 0.3 // beyond star-mesh saturation (0.19)
	d, err := DesignSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Stack.Topology.Name(), "3D mesh") {
		t.Errorf("high-load winner = %s, want a 3D mesh", d.Stack.Topology.Name())
	}
	// The star-mesh alternative must be flagged saturated.
	foundSaturatedStar := false
	for _, a := range d.Stack.Alternatives {
		if strings.Contains(a.Name, "star") && !a.Feasible {
			foundSaturatedStar = true
		}
	}
	if !foundSaturatedStar {
		t.Error("star-mesh not flagged as saturated at 0.3 load")
	}
}

func TestChooseStackPrefersStarAtLowLoad(t *testing.T) {
	spec := DefaultSpec()
	spec.StackInjectionRate = 0.05
	d, err := DesignSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	// At light load the star-mesh's 7-cycle floor wins (Fig. 8a).
	if !strings.Contains(d.Stack.Topology.Name(), "star-mesh") {
		t.Errorf("low-load winner = %s, want star-mesh", d.Stack.Topology.Name())
	}
}

func TestDesignFailsWhenNoTopologySustainsLoad(t *testing.T) {
	spec := DefaultSpec()
	spec.StackInjectionRate = 0.95
	if _, err := DesignSystem(spec); err == nil {
		t.Error("design accepted an unsustainable load")
	}
}

func TestButlerFlagChangesDiagonalPower(t *testing.T) {
	with := DefaultSpec()
	without := DefaultSpec()
	without.Butler = false
	dWith, err := DesignSystem(with)
	if err != nil {
		t.Fatal(err)
	}
	dWithout, err := DesignSystem(without)
	if err != nil {
		t.Fatal(err)
	}
	diff := dWith.Links[1].TxPowerDBm - dWithout.Links[1].TxPowerDBm
	if math.Abs(diff-5) > 1e-9 {
		t.Errorf("butler penalty = %g dB, want 5", diff)
	}
}

func TestHigherRateNeedsMorePower(t *testing.T) {
	lo := DefaultSpec()
	hi := DefaultSpec()
	hi.LinkRateGbps = 400
	dLo, err := DesignSystem(lo)
	if err != nil {
		t.Fatal(err)
	}
	dHi, err := DesignSystem(hi)
	if err != nil {
		t.Fatal(err)
	}
	if dHi.WorstTxPowerDBm() <= dLo.WorstTxPowerDBm() {
		t.Error("400 Gbit/s does not need more power than 100 Gbit/s")
	}
}

func TestReportContainsKeyFacts(t *testing.T) {
	d, err := DesignSystem(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	r := d.Report()
	for _, want := range []string{
		"232.5 GHz", "25 GHz", "ahead", "diagonal", "LDPC-CC",
		"N=40 W=5", "candidate", "flits/cycle/module",
	} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestTotalNodes(t *testing.T) {
	d, err := DesignSystem(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalNodes() != 36 {
		t.Errorf("total nodes = %d, want 36", d.TotalNodes())
	}
}

func TestPathlossModelForSpec(t *testing.T) {
	pl := PathlossModelForSpec(DefaultSpec())
	if math.Abs(pl.LossDB(0.1)-59.8) > 0.1 {
		t.Errorf("pathloss anchor = %g, want 59.8", pl.LossDB(0.1))
	}
}
