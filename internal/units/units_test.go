package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDBRoundTrip(t *testing.T) {
	for _, ratio := range []float64{1e-9, 0.5, 1, 2, 10, 1e6} {
		if got := FromDB(DB(ratio)); !almostEqual(got, ratio, 1e-12*ratio) {
			t.Errorf("FromDB(DB(%g)) = %g, want %g", ratio, got, ratio)
		}
	}
}

func TestDBKnownValues(t *testing.T) {
	cases := []struct {
		ratio, db float64
	}{
		{1, 0},
		{10, 10},
		{100, 20},
		{0.1, -10},
		{2, 3.0103},
	}
	for _, c := range cases {
		if got := DB(c.ratio); !almostEqual(got, c.db, 1e-3) {
			t.Errorf("DB(%g) = %g, want %g", c.ratio, got, c.db)
		}
	}
}

func TestDBZeroIsNegInf(t *testing.T) {
	if got := DB(0); !math.IsInf(got, -1) {
		t.Errorf("DB(0) = %g, want -Inf", got)
	}
}

func TestAmpDB(t *testing.T) {
	if got := AmpDB(10); !almostEqual(got, 20, 1e-12) {
		t.Errorf("AmpDB(10) = %g, want 20", got)
	}
	if got := FromAmpDB(20); !almostEqual(got, 10, 1e-12) {
		t.Errorf("FromAmpDB(20) = %g, want 10", got)
	}
	// Amplitude dB of a negative ratio uses magnitude.
	if got := AmpDB(-10); !almostEqual(got, 20, 1e-12) {
		t.Errorf("AmpDB(-10) = %g, want 20", got)
	}
}

func TestDBmKnownValues(t *testing.T) {
	if got := DBm(1e-3); !almostEqual(got, 0, 1e-12) {
		t.Errorf("DBm(1 mW) = %g, want 0", got)
	}
	if got := DBm(1); !almostEqual(got, 30, 1e-12) {
		t.Errorf("DBm(1 W) = %g, want 30", got)
	}
	if got := FromDBm(30); !almostEqual(got, 1, 1e-12) {
		t.Errorf("FromDBm(30) = %g, want 1 W", got)
	}
}

func TestWavelengthAt232GHz(t *testing.T) {
	// The paper's carrier: 232.5 GHz -> lambda ~ 1.289 mm.
	lambda := Wavelength(232.5 * GHz)
	if !almostEqual(lambda, 1.2894e-3, 1e-6) {
		t.Errorf("Wavelength(232.5 GHz) = %g m, want ~1.2894 mm", lambda)
	}
	if got := Frequency(lambda); !almostEqual(got, 232.5*GHz, 1) {
		t.Errorf("Frequency(Wavelength(f)) = %g, want %g", got, 232.5*GHz)
	}
}

func TestWavelengthPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wavelength(0) did not panic")
		}
	}()
	Wavelength(0)
}

func TestFrequencyPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Frequency(-1) did not panic")
		}
	}()
	Frequency(-1)
}

func TestThermalNoiseFloor(t *testing.T) {
	// Classic sanity value: kTB at 290 K in 1 Hz = -174 dBm/Hz.
	got := ThermalNoiseDBm(290, 1)
	if !almostEqual(got, -173.98, 0.05) {
		t.Errorf("noise floor at 290 K / 1 Hz = %g dBm, want ~-174", got)
	}
	// Paper's receiver: 323 K, 25 GHz bandwidth -> about -65.5 dBm.
	got = ThermalNoiseDBm(323, 25*GHz)
	if !almostEqual(got, -69.5, 1.0) {
		t.Errorf("noise floor at 323 K / 25 GHz = %g dBm, want ~-69.5", got)
	}
}

func TestEbN0Conversions(t *testing.T) {
	// Rate 2 bit/s/Hz: SNR = Eb/N0 + 3.01 dB.
	snr := SNRFromEbN0(3.0, 2)
	if !almostEqual(snr, 6.0103, 1e-3) {
		t.Errorf("SNRFromEbN0(3, 2) = %g, want ~6.01", snr)
	}
	back := EbN0FromSNR(snr, 2)
	if !almostEqual(back, 3.0, 1e-9) {
		t.Errorf("EbN0FromSNR round-trip = %g, want 3", back)
	}
}

func TestEbN0PanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EbN0FromSNR with rate 0 did not panic")
		}
	}()
	EbN0FromSNR(3, 0)
}

func TestFormatHz(t *testing.T) {
	cases := []struct {
		f    float64
		want string
	}{
		{232.5 * GHz, "232.5 GHz"},
		{25 * GHz, "25 GHz"},
		{1.5 * THz, "1.5 THz"},
		{100 * MHz, "100 MHz"},
		{10 * KHz, "10 kHz"},
		{5, "5 Hz"},
	}
	for _, c := range cases {
		if got := FormatHz(c.f); got != c.want {
			t.Errorf("FormatHz(%g) = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestFormatDBAndDBm(t *testing.T) {
	if got := FormatDB(59.8); got != "59.80 dB" {
		t.Errorf("FormatDB = %q", got)
	}
	if got := FormatDBm(-15.7); !strings.HasSuffix(got, "dBm") {
		t.Errorf("FormatDBm = %q, want dBm suffix", got)
	}
}

// Property: DB and FromDB are inverse bijections on positive ratios.
func TestPropertyDBInverse(t *testing.T) {
	f := func(x float64) bool {
		ratio := math.Abs(x)
		if ratio == 0 || math.IsInf(ratio, 0) || math.IsNaN(ratio) {
			return true
		}
		rt := FromDB(DB(ratio))
		return almostEqual(rt, ratio, 1e-9*ratio)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DB of a product is the sum of DBs (decibels are logarithmic).
func TestPropertyDBAdditive(t *testing.T) {
	f := func(a, b float64) bool {
		x, y := math.Abs(a)+1e-6, math.Abs(b)+1e-6
		if math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(x*y, 0) {
			return true
		}
		return almostEqual(DB(x*y), DB(x)+DB(y), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: thermal noise is linear in bandwidth.
func TestPropertyNoiseLinearInBandwidth(t *testing.T) {
	f := func(bw float64) bool {
		b := math.Mod(math.Abs(bw), 1e12) + 1
		n1 := ThermalNoiseW(300, b)
		n2 := ThermalNoiseW(300, 2*b)
		return almostEqual(n2, 2*n1, 1e-12*n2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
