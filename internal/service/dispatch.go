package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/sweep"
)

// Sentinel errors of the worker-facing dispatch API.
var (
	// ErrLeaseGone means the lease id is unknown or belongs to a
	// cancelled job: the worker should drop the chunk and lease again.
	ErrLeaseGone = errors.New("service: lease gone")
	// ErrBadRecords means a completion's records do not match the leased
	// chunk (wrong count, index or scenario).
	ErrBadRecords = errors.New("service: records do not match lease")
)

// Lease is one unit of distributed work: a contiguous chunk of a job's
// scenario grid, plus everything a stateless worker needs to evaluate it
// deterministically — the scenario and budget by name (both registries
// are compiled into every binary), the sweep seed, and the engine
// version so a mismatched worker can refuse instead of silently
// producing different records.
type Lease struct {
	ID       string `json:"id"`
	JobID    string `json:"job_id"`
	Scenario string `json:"scenario"`
	Budget   string `json:"budget"`
	Seed     uint64 `json:"seed"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	// Points carries the chunk's design points explicitly when they are
	// not reconstructible from a scenario registry — optimizer
	// generations, whose specs are bred at run time. Empty for grid
	// sweeps: there Scenario + [Start, End) identify the points and the
	// worker regenerates them locally. Each point's Index is the global
	// evaluation index that keys its random sub-stream and cache
	// address.
	Points []sweep.Point `json:"points,omitempty"`
	// Spec carries the canonical JSON of a spec-defined grid — a
	// scenario no worker's registry knows — so the worker compiles the
	// grid locally and regenerates its [Start, End) slice exactly like a
	// registered scenario's. Empty for registry sweeps and for optimizer
	// chunks (those ship explicit Points).
	Spec string `json:"spec,omitempty"`
	// Engine is the daemon's sweep.EngineVersion; a worker built at a
	// different version must not evaluate the chunk.
	Engine int `json:"engine"`
	// TTLSeconds is how long the lease lives without a heartbeat.
	TTLSeconds float64 `json:"ttl_seconds"`
	// TraceID and SpanID tie the lease into its job's distributed
	// trace: TraceID is the job's root trace, SpanID the chunk span the
	// dispatcher minted at lease issue — the parent for every span the
	// worker emits about this chunk, and the X-Trace-ID/X-Parent-Span
	// header pair on its RPCs. Both are empty when the daemon runs
	// without a trace collector; workers then skip span emission.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// WorkerView is one row of the fleet listing.
type WorkerView struct {
	Name         string    `json:"name"`
	LastSeen     time.Time `json:"last_seen"`
	ActiveLeases int       `json:"active_leases"`
	ChunksDone   int       `json:"chunks_done"`
	PointsDone   int       `json:"points_done"`
}

// distRun is the assembly state of one distributed job: records filled
// in by chunk completions, a countdown of outstanding points, and a
// channel closed exactly once when the job finishes or fails.
type distRun struct {
	recs      []sweep.Record
	remaining int
	failure   string
	finished  chan struct{}
	closeOnce sync.Once
}

func (dr *distRun) finish() { dr.closeOnce.Do(func() { close(dr.finished) }) }

// chunkTask is the dispatcher's bookkeeping for one chunk: pending (no
// lease), leased (current leaseID set, expiry ticking), done or
// cancelled. Stale lease ids keep pointing at their task until the job
// is cleaned up, so a late completion from an expired lease is still
// accepted — determinism makes its records identical to any re-run.
type chunkTask struct {
	job   *job
	dr    *distRun
	chunk sweep.Chunk
	// pts are the chunk's design points (pts[k] is slot chunk.Start+k of
	// the assembly buffer): a grid sub-slice for sweep jobs, bred
	// individuals for optimizer generations.
	pts []sweep.Point

	leaseID   string // current lease ("" while pending)
	worker    string // current lease's worker
	expires   time.Time
	done      bool
	cancelled bool
}

// leaseRef is one entry of the lease table. It remembers which worker
// took this particular lease, which the task alone cannot: after a
// re-lease, task.worker is the new holder, but a late completion under
// the old id must still credit the worker that actually did the work.
// issuedAt anchors the lease-turnaround histogram to THIS lease's mint
// time, so a late completion under an expired lease books its own
// turnaround, not the re-lease's.
type leaseRef struct {
	t        *chunkTask
	worker   string
	issuedAt time.Time
	// spanID is the chunk span minted for this lease when tracing is
	// on: recorded (issuedAt -> completion) on the trace collector, and
	// the parent of every worker-emitted span about the chunk.
	spanID string
}

// Fleet-analytics tuning. The straggler rule is deliberately coarse —
// a chunk is flagged when its turnaround exceeds stragglerFactor times
// the median of the last fleetTurnSamples completions fleet-wide, and
// only once stragglerMinSamples completions have established that
// median — so one slow worker stands out against a stable fleet
// without a warm-up fleet flagging itself.
const (
	workerTurnSamples   = 64
	fleetTurnSamples    = 256
	stragglerFactor     = 4.0
	stragglerMinSamples = 8
	// throughputAlpha weights the newest chunk's points/s in the
	// per-worker EWMA: high enough to track a worker that degrades,
	// low enough that one odd chunk doesn't swing the profile.
	throughputAlpha = 0.3
)

// workerStats accumulates one worker's fleet-view counters and its
// throughput profile — the per-worker heterogeneity signal the
// adaptive scheduler (ROADMAP item 4) will consume.
type workerStats struct {
	lastSeen   time.Time
	chunksDone int
	pointsDone int
	failures   int
	stragglers int
	// ewmaRate is the exponentially-weighted moving average of the
	// worker's points/s across its completed chunks (0 until the first
	// completion with measurable turnaround).
	ewmaRate float64
	// turns is a bounded ring of the worker's recent chunk turnaround
	// seconds, the sample set behind its p50/p95.
	turns    []float64
	turnNext int
}

// noteCompletion folds one completed chunk into the worker's profile.
func (ws *workerStats) noteCompletion(points int, seconds float64) {
	ws.chunksDone++
	ws.pointsDone += points
	if len(ws.turns) < workerTurnSamples {
		ws.turns = append(ws.turns, seconds)
	} else {
		ws.turns[ws.turnNext] = seconds
		ws.turnNext = (ws.turnNext + 1) % workerTurnSamples
	}
	if seconds > 0 {
		rate := float64(points) / seconds
		if ws.ewmaRate == 0 {
			ws.ewmaRate = rate
		} else {
			ws.ewmaRate = throughputAlpha*rate + (1-throughputAlpha)*ws.ewmaRate
		}
	}
}

// fleetRetention is how long a silent worker stays in the fleet view
// before its stats are evicted. Long enough that an operator inspecting
// a stuck fleet still sees recently dead workers, short enough that a
// daemon outliving thousands of worker restarts stays bounded.
const fleetRetention = time.Hour

// dispatcher owns the pending-chunk queue and the lease table. All
// fields are guarded by mu; it never takes a job's mutex, so lock order
// against the manager is trivial.
type dispatcher struct {
	ttl   time.Duration
	clock func() time.Time
	met   *serviceMetrics
	log   *slog.Logger
	// trace retains span records when tracing is on; nil disables span
	// minting and recording at zero cost.
	trace *obs.Collector

	mu      sync.Mutex
	pending []*chunkTask
	leases  map[string]leaseRef
	fleet   map[string]*workerStats
	seq     uint64
	// fleetTurns is a bounded ring of recent chunk turnaround seconds
	// across the whole fleet — the straggler rule's median base.
	fleetTurns    []float64
	fleetTurnNext int
}

func newDispatcher(ttl time.Duration, clock func() time.Time, met *serviceMetrics, log *slog.Logger, trace *obs.Collector) *dispatcher {
	return &dispatcher{
		ttl:    ttl,
		clock:  clock,
		met:    met,
		log:    log,
		trace:  trace,
		leases: make(map[string]leaseRef),
		fleet:  make(map[string]*workerStats),
	}
}

// noteFleetTurnLocked pushes one completion's turnaround into the
// fleet-wide ring and reports whether it is a straggler against the
// median of the samples that preceded it: strictly slower than
// stragglerFactor times that median, judged only once
// stragglerMinSamples prior completions exist. Returns the median it
// was judged against.
func (d *dispatcher) noteFleetTurnLocked(seconds float64) (straggler bool, median float64) {
	if len(d.fleetTurns) >= stragglerMinSamples {
		median = medianOf(d.fleetTurns)
		straggler = median > 0 && seconds > stragglerFactor*median
	}
	if len(d.fleetTurns) < fleetTurnSamples {
		d.fleetTurns = append(d.fleetTurns, seconds)
	} else {
		d.fleetTurns[d.fleetTurnNext] = seconds
		d.fleetTurnNext = (d.fleetTurnNext + 1) % fleetTurnSamples
	}
	return straggler, median
}

// enqueue adds a job's chunks to the pending queue. pts is the full
// point list the chunks index into (the scenario grid, or one
// optimizer generation).
func (d *dispatcher) enqueue(j *job, dr *distRun, chunks []sweep.Chunk, pts []sweep.Point) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range chunks {
		d.pending = append(d.pending, &chunkTask{job: j, dr: dr, chunk: c, pts: pts[c.Start:c.End]})
	}
}

// requeueExpiredLocked moves every chunk whose lease outlived its TTL
// back to the pending queue. The expired lease id stays in the table so
// a slow worker's late completion is still accepted (see chunkTask).
func (d *dispatcher) requeueExpiredLocked(now time.Time) {
	for id, ref := range d.leases {
		t := ref.t
		if t.leaseID == id && !t.done && !t.cancelled && now.After(t.expires) {
			t.leaseID = ""
			d.pending = append(d.pending, t)
			d.met.lease("expired")
			d.log.Warn("lease expired, chunk re-queued",
				"lease_id", id, "job_id", t.job.id, "worker", ref.worker,
				"chunk_start", t.chunk.Start, "chunk_end", t.chunk.End)
		}
	}
	// Piggyback fleet eviction on the same sweep: workers that have not
	// been heard from in a long while are dropped from the stats table.
	// Default sweepworker names embed the PID, so a crash-looping or
	// autoscaled fleet mints new names forever; without eviction the
	// daemon's memory and GET /api/v1/workers would grow for life.
	for name, ws := range d.fleet {
		if now.Sub(ws.lastSeen) > fleetRetention {
			delete(d.fleet, name)
		}
	}
}

func (d *dispatcher) touchLocked(worker string, now time.Time) *workerStats {
	ws := d.fleet[worker]
	if ws == nil {
		ws = &workerStats{}
		d.fleet[worker] = ws
	}
	ws.lastSeen = now
	return ws
}

// endJob drops every task of the job — pending chunks are removed and
// its lease ids are forgotten, so later heartbeats and completions for
// them return ErrLeaseGone. Called once the job reaches any terminal
// state (done, failed or cancelled).
func (d *dispatcher) endJob(j *job) {
	d.mu.Lock()
	defer d.mu.Unlock()
	kept := d.pending[:0]
	for _, t := range d.pending {
		if t.job == j {
			t.cancelled = true
			continue
		}
		kept = append(kept, t)
	}
	for i := len(kept); i < len(d.pending); i++ {
		d.pending[i] = nil
	}
	d.pending = kept
	for id, ref := range d.leases {
		if ref.t.job == j {
			ref.t.cancelled = true
			delete(d.leases, id)
		}
	}
}

// Lease hands the oldest pending chunk to the named worker, first
// re-queueing any chunks whose leases expired. ok is false when no work
// is pending — the worker should poll again later. It is the in-process
// implementation of WorkerAPI; cmd/sweepworker reaches it through the
// HTTP API.
func (m *Manager) Lease(worker string) (Lease, bool, error) {
	d := m.dispatch
	if d == nil {
		return Lease{}, false, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clock()
	d.touchLocked(worker, now)
	d.requeueExpiredLocked(now)
	for len(d.pending) > 0 {
		t := d.pending[0]
		d.pending = d.pending[1:]
		if t.done || t.cancelled {
			continue
		}
		d.seq++
		id := fmt.Sprintf("lease-%06d", d.seq)
		t.leaseID, t.worker, t.expires = id, worker, now.Add(d.ttl)
		ref := leaseRef{t: t, worker: worker, issuedAt: now}
		j := t.job
		if d.trace.Enabled() && j.traceID != "" {
			// The chunk span is minted here and recorded at completion:
			// the worker parents its own spans under it, so the trace
			// stays one tree across the process boundary.
			ref.spanID = obs.NewSpanID()
		}
		d.leases[id] = ref
		d.met.lease("issued")
		d.log.Debug("lease issued",
			"lease_id", id, "job_id", j.id, "worker", worker,
			"chunk_start", t.chunk.Start, "chunk_end", t.chunk.End)
		l := Lease{
			ID:         id,
			JobID:      j.id,
			Scenario:   j.scenarioName,
			Budget:     j.budget.Name,
			Seed:       j.req.Seed,
			Start:      t.chunk.Start,
			End:        t.chunk.End,
			Spec:       j.specJSON,
			Engine:     sweep.EngineVersion,
			TTLSeconds: d.ttl.Seconds(),
			TraceID:    j.traceID,
			SpanID:     ref.spanID,
		}
		if j.kind == KindOptimize {
			// Optimizer individuals exist only in this run; ship them
			// with the lease.
			l.Points = t.pts
		}
		return l, true, nil
	}
	return Lease{}, false, nil
}

// Heartbeat extends a live lease by the TTL and returns the new
// remaining lifetime. A lease that is unknown, expired, superseded by a
// re-lease, or whose job was cancelled gets ErrLeaseGone — the worker
// should stop evaluating the chunk.
func (m *Manager) Heartbeat(leaseID string) (time.Duration, error) {
	d := m.dispatch
	if d == nil {
		return 0, ErrLeaseGone
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clock()
	ref, ok := d.leases[leaseID]
	t := ref.t
	if !ok || t.cancelled || t.done || t.leaseID != leaseID || now.After(t.expires) {
		return 0, ErrLeaseGone
	}
	d.touchLocked(ref.worker, now)
	t.expires = now.Add(d.ttl)
	return d.ttl, nil
}

// Complete accepts a worker's evaluated records for a leased chunk,
// folds them into the job and persists them in the shared store. It is
// idempotent: completing an already-completed chunk is a no-op, and a
// late completion under an expired lease is accepted as long as the
// chunk is still wanted — the determinism contract guarantees the
// records are identical to whatever a re-lease would produce.
func (m *Manager) Complete(leaseID string, recs []sweep.Record) error {
	return m.complete(leaseID, recs, nil)
}

// CompleteTraced is Complete plus the spans the worker emitted while
// serving the chunk. The worker-supplied fields an operator could join
// wrongly on are forced server-side — trace, job and worker identity
// always come from the lease, never from the completion body — and the
// span count is capped so a buggy worker cannot flush the ring.
func (m *Manager) CompleteTraced(leaseID string, recs []sweep.Record, spans []obs.SpanRecord) error {
	return m.complete(leaseID, recs, spans)
}

// maxWorkerSpans bounds how many spans one completion may add to the
// collector: enough for the worker's lease/evaluate breakdown, far too
// few to evict other jobs' traces.
const maxWorkerSpans = 16

func (m *Manager) complete(leaseID string, recs []sweep.Record, spans []obs.SpanRecord) error {
	d := m.dispatch
	if d == nil {
		return ErrLeaseGone
	}
	d.mu.Lock()
	ref, ok := d.leases[leaseID]
	if !ok || ref.t.cancelled {
		d.mu.Unlock()
		return ErrLeaseGone
	}
	t := ref.t
	// Credit the worker that held THIS lease, not the chunk's current
	// holder: a late completion under an expired lease must not book
	// work onto whoever the chunk was re-leased to.
	now := d.clock()
	ws := d.touchLocked(ref.worker, now)
	if t.done {
		d.mu.Unlock()
		return nil // duplicate completion: idempotent
	}
	if err := validateChunk(t, recs); err != nil {
		d.mu.Unlock()
		return err
	}
	t.done = true
	copy(t.dr.recs[t.chunk.Start:t.chunk.End], recs)
	t.dr.remaining -= t.chunk.Len()
	turnaround := now.Sub(ref.issuedAt).Seconds()
	ws.noteCompletion(t.chunk.Len(), turnaround)
	straggler, median := d.noteFleetTurnLocked(turnaround)
	if straggler {
		ws.stragglers++
	}
	finished := t.dr.remaining == 0
	d.mu.Unlock()

	d.met.lease("completed")
	d.met.leaseTurnaround.Observe(turnaround)
	d.met.points(false, t.chunk.Len())
	d.met.workerChunks.With(ref.worker).Inc()
	d.met.workerPoints.With(ref.worker).Add(float64(t.chunk.Len()))
	d.log.Debug("lease completed",
		"lease_id", leaseID, "job_id", t.job.id, "worker", ref.worker,
		"points", t.chunk.Len(), "turnaround", now.Sub(ref.issuedAt))
	if straggler {
		// The structured event and the counter are the signal store
		// ROADMAP item 4's speculative re-lease will act on; today they
		// make a slow node visible the moment it lags the fleet.
		d.met.stragglers.Inc()
		d.log.Warn("straggler chunk",
			"lease_id", leaseID, "job_id", t.job.id, "worker", ref.worker,
			"turnaround_seconds", turnaround, "fleet_median_seconds", median,
			"factor", stragglerFactor,
			"chunk_start", t.chunk.Start, "chunk_end", t.chunk.End)
	}
	d.recordChunkSpans(t, ref, now, spans)

	j := t.job
	j.done.Add(int64(t.chunk.Len()))
	// Persist outside the dispatcher lock: Put hits the disk, and the
	// store's own dedup makes a racing duplicate completion harmless.
	if m.opts.Cache != nil {
		for k, rec := range recs {
			m.opts.Cache.Put(j.keyer.Key(t.pts[k]), rec)
		}
	}
	if finished {
		t.dr.finish()
	}
	return nil
}

// recordChunkSpans books the daemon-side chunk span (lease issue to
// accepted completion) and the worker's own spans for a completed
// chunk. No-op when tracing is off or the job predates the collector.
func (d *dispatcher) recordChunkSpans(t *chunkTask, ref leaseRef, now time.Time, spans []obs.SpanRecord) {
	if !d.trace.Enabled() || ref.spanID == "" {
		return
	}
	j := t.job
	d.trace.Add(obs.SpanRecord{
		TraceID:  j.traceID,
		SpanID:   ref.spanID,
		ParentID: j.rootSpanID,
		Name:     "chunk",
		JobID:    j.id,
		Worker:   ref.worker,
		Start:    ref.issuedAt,
		End:      now,
		Attrs: map[string]string{
			"chunk_start": strconv.Itoa(t.chunk.Start),
			"chunk_end":   strconv.Itoa(t.chunk.End),
			"points":      strconv.Itoa(t.chunk.Len()),
		},
	})
	if len(spans) > maxWorkerSpans {
		spans = spans[:maxWorkerSpans]
	}
	for _, s := range spans {
		// Identity comes from the lease, not the body: a worker cannot
		// attach spans to someone else's trace or impersonate a peer.
		s.TraceID = j.traceID
		s.JobID = j.id
		s.Worker = ref.worker
		if s.ParentID == "" {
			s.ParentID = ref.spanID
		}
		if s.SpanID == "" {
			s.SpanID = obs.NewSpanID()
		}
		d.trace.Add(s)
	}
}

// validateChunk rejects records that cannot be the leased chunk's:
// wrong count, wrong point index, or wrong scenario. The expected
// index is the chunk point's own Index — identical to the assembly
// slot for grid sweeps, the global evaluation index for optimizer
// generations.
func validateChunk(t *chunkTask, recs []sweep.Record) error {
	if len(recs) != t.chunk.Len() {
		return fmt.Errorf("%w: got %d records for chunk %v", ErrBadRecords, len(recs), t.chunk)
	}
	for k, rec := range recs {
		if rec.Index != t.pts[k].Index || rec.Scenario != t.job.scenarioName {
			return fmt.Errorf("%w: record %d is (%s, #%d), want (%s, #%d)",
				ErrBadRecords, k, rec.Scenario, rec.Index, t.job.scenarioName, t.pts[k].Index)
		}
	}
	return nil
}

// FailLease reports that a worker could not evaluate its chunk (for
// example a panicking point). The whole job fails — mirroring the
// in-process path, where a panicking evaluation fails the job — and its
// other chunks are withdrawn.
func (m *Manager) FailLease(leaseID, reason string) error {
	d := m.dispatch
	if d == nil {
		return ErrLeaseGone
	}
	d.mu.Lock()
	ref, ok := d.leases[leaseID]
	if !ok || ref.t.cancelled || ref.t.done {
		d.mu.Unlock()
		return ErrLeaseGone
	}
	t := ref.t
	d.touchLocked(ref.worker, d.clock()).failures++
	if t.dr.failure == "" {
		t.dr.failure = fmt.Sprintf("worker %s failed chunk %v: %s", ref.worker, t.chunk, reason)
	}
	dr := t.dr
	d.mu.Unlock()
	d.met.lease("failed")
	d.log.Warn("lease failed",
		"lease_id", leaseID, "job_id", t.job.id, "worker", ref.worker,
		"reason", reason)
	dr.finish()
	return nil
}

// WorkerFleet lists every worker that ever leased from this manager,
// sorted by name.
func (m *Manager) WorkerFleet() []WorkerView {
	d := m.dispatch
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clock()
	active := make(map[string]int)
	for id, ref := range d.leases {
		t := ref.t
		if t.leaseID == id && !t.done && !t.cancelled && !now.After(t.expires) {
			active[ref.worker]++
		}
	}
	out := make([]WorkerView, 0, len(d.fleet))
	for name, ws := range d.fleet {
		out = append(out, WorkerView{
			Name:         name,
			LastSeen:     ws.lastSeen,
			ActiveLeases: active[name],
			ChunksDone:   ws.chunksDone,
			PointsDone:   ws.pointsDone,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// chunkRuns groups a sorted list of still-to-compute grid indices into
// contiguous chunks of at most size points. Cache hits punch holes in
// the grid, so each run between holes is partitioned independently by
// sweep.Chunks and shifted to its grid offset.
func chunkRuns(todo []int, size int) []sweep.Chunk {
	var out []sweep.Chunk
	for i := 0; i < len(todo); {
		k := i + 1
		for k < len(todo) && todo[k] == todo[k-1]+1 {
			k++
		}
		for _, c := range sweep.Chunks(k-i, size) {
			out = append(out, sweep.Chunk{Start: todo[i] + c.Start, End: todo[i] + c.End})
		}
		i = k
	}
	return out
}

// runDistributed executes one job by serving its chunks to workers
// instead of evaluating in-process. Cached points are filled daemon-side
// and never travel; the rest are chunked, dispatched, and assembled in
// grid order, so the final Result is byte-identical to a single-node
// sweep.Run of the same scenario, budget and seed. The whole grid is
// one dispatchBatch call — the same path an optimization job walks once
// per generation.
func (m *Manager) runDistributed(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting in the queue.
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.ctx)
	j.cancel = cancel
	j.state = StateRunning
	j.started = m.opts.Clock()
	started, submitted := j.started, j.submitted
	j.mu.Unlock()
	defer cancel()
	m.log.Info("job started", "job_id", j.id, "kind", j.kind, "scenario", j.scenarioName)
	m.recordPhase(j, "queued", submitted, started, nil)

	recs, cached, err := m.dispatchBatch(ctx, j, j.pts)
	m.dispatch.endJob(j)
	asmStart := m.opts.Clock()

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = m.opts.Clock()
	switch {
	case err == nil:
		res := &sweep.Result{
			Scenario:       j.scenarioName,
			Description:    j.scenario.Description,
			Seed:           j.req.Seed,
			Budget:         j.budget.Name,
			Records:        recs,
			CachedPoints:   cached,
			ComputedPoints: len(recs) - cached,
		}
		res.ParetoIndices = sweep.MarkParetoFeasible(res.Records, j.feasible)
		j.state = StateDone
		j.result = res
		m.recordPhase(j, "assemble", asmStart, j.finished, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
		j.errMsg = "cancelled: " + err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	m.noteFinishedLocked(j)
}

// dispatchBatch evaluates one batch of points over the worker fleet: a
// daemon-side cache pre-pass so stored points never travel, the rest
// chunked and enqueued, records assembled in batch order. It blocks
// until the batch completes, a worker fails a chunk (the error is the
// failure report), or ctx is cancelled (the error is ctx's; the caller
// is responsible for withdrawing the job's chunks via endJob). A batch
// whose last chunk lands in the same instant ctx fires still counts as
// completed, like the in-process path's `case err == nil` — the
// finished channel is closed before any state read off dr, so the
// recheck is race-free.
func (m *Manager) dispatchBatch(ctx context.Context, j *job, pts []sweep.Point) ([]sweep.Record, int, error) {
	batchStart := m.opts.Clock()
	var cachedCount int
	if j.traceID != "" {
		// One dispatch span per batch: the whole grid for a sweep, one
		// generation for an optimization — leased-and-evaluating wall
		// time, cache pre-pass included.
		defer func() {
			m.recordPhase(j, "dispatch", batchStart, m.opts.Clock(), map[string]string{
				"points": strconv.Itoa(len(pts)),
				"cached": strconv.Itoa(cachedCount),
			})
		}()
	}
	dr := &distRun{recs: make([]sweep.Record, len(pts)), finished: make(chan struct{})}
	var todo []int
	for i, pt := range pts {
		if m.opts.Cache != nil {
			if rec, ok := m.opts.Cache.Get(j.keyer.Key(pt)); ok {
				rec.Pareto = false
				dr.recs[i] = rec
				j.done.Add(1)
				j.cached.Add(1)
				continue
			}
		}
		todo = append(todo, i)
	}
	dr.remaining = len(todo)
	cached := len(pts) - len(todo)
	cachedCount = cached
	m.met.points(true, cached)

	if len(todo) == 0 {
		dr.finish()
	} else {
		m.dispatch.enqueue(j, dr, chunkRuns(todo, m.opts.ChunkPoints), pts)
	}

	select {
	case <-ctx.Done():
	case <-dr.finished:
	}
	finished := false
	select {
	case <-dr.finished:
		finished = true
	default:
	}
	switch {
	case finished && dr.failure != "":
		return nil, cached, errors.New(dr.failure)
	case !finished:
		return nil, cached, ctx.Err()
	}
	return dr.recs, cached, nil
}

// distEvaluator returns the search.Evaluator an optimization job uses
// in distributed mode: each generation is one dispatchBatch over the
// worker fleet, exactly the treatment a whole sweep grid gets in
// runDistributed. The NSGA-II coordinator blocks between generations
// by construction (selection needs every record), so a per-generation
// barrier costs nothing. Chunks left pending or leased after a
// cancelled generation are withdrawn by runOptimize's deferred endJob.
func (m *Manager) distEvaluator(j *job) search.Evaluator {
	return func(ctx context.Context, gen int, pts []sweep.Point) ([]sweep.Record, int, error) {
		return m.dispatchBatch(ctx, j, pts)
	}
}
