// Command sweepd serves the design-space exploration engine as a
// long-running daemon: grid sweeps and adaptive multi-objective
// optimizations are submitted as jobs over HTTP, scheduled through a
// priority queue with bounded concurrency, and every evaluated point is
// persisted in a content-addressed result store, so identical work is
// never computed twice — across jobs, restarts, and cmd/sweep runs
// sharing the same store directory.
//
// Usage:
//
//	sweepd [-addr :8080] [-store sweep-store] [-store-shards 0] [-jobs 2]
//	       [-distributed] [-local-workers 1] [-chunk 4] [-lease-ttl 30s]
//
// -store-shards N fans the result store out over N independent shard
// stores routed by key prefix, removing lock contention between
// concurrent jobs. The count is fixed when the store is created and
// recorded in its shards.json manifest; 0 (the default) reuses
// whatever layout the store already has, and a 1-shard store keeps the
// exact directory layout of earlier releases.
//
// With -distributed, jobs are not evaluated in-process: they are cut
// into chunks of -chunk grid points and served to sweepworker processes
// over lease/heartbeat/complete endpoints. A worker that dies mid-chunk
// stops heartbeating, its lease expires after -lease-ttl, and the chunk
// is re-queued. -local-workers N keeps N in-process workers draining
// the same queue — the fallback that lets a distributed daemon complete
// jobs before any remote worker connects (0 = pure remote fleet).
// Optimization jobs work in both modes: the NSGA-II coordinator always
// runs daemon-side, and in distributed mode each generation's
// individuals are chunked and leased to the same worker fleet (the
// lease carries the bred design points explicitly).
//
// Endpoints (see internal/service.NewHandler and docs/api.md):
//
//	GET    /healthz
//	GET    /api/v1/store
//	GET    /api/v1/scenarios
//	GET    /api/v1/spaces
//	POST   /api/v1/jobs
//	GET    /api/v1/jobs
//	GET    /api/v1/jobs/{id}
//	DELETE /api/v1/jobs/{id}
//	GET    /api/v1/jobs/{id}/records
//	GET    /api/v1/jobs/{id}/pareto
//	GET    /api/v1/jobs/{id}/generations
//	POST   /api/v1/workers/lease
//	POST   /api/v1/workers/leases/{id}/heartbeat
//	POST   /api/v1/workers/leases/{id}/complete
//	POST   /api/v1/workers/leases/{id}/fail
//	GET    /api/v1/workers
//
// SIGINT or SIGTERM triggers a graceful drain: the listener stops, every
// queued job is cancelled, running jobs have their contexts cancelled,
// and the store is flushed before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/sweep/store"
)

// config collects the daemon's flag values.
type config struct {
	addr         string
	storeDir     string
	jobs         int
	drain        time.Duration
	distributed  bool
	localWorkers int
	chunk        int
	leaseTTL     time.Duration
	storeShards  int
}

func main() {
	var c config
	flag.StringVar(&c.addr, "addr", ":8080", "HTTP listen address")
	flag.StringVar(&c.storeDir, "store", "sweep-store", "result store directory ('' disables persistence)")
	flag.IntVar(&c.jobs, "jobs", 2, "concurrent jobs (each parallelizes across grid points)")
	flag.DurationVar(&c.drain, "drain", 30*time.Second, "graceful shutdown deadline")
	flag.BoolVar(&c.distributed, "distributed", false, "serve jobs to sweepworker processes instead of evaluating in-process")
	flag.IntVar(&c.localWorkers, "local-workers", 1, "in-process workers draining the distributed queue (0 = pure remote fleet; ignored without -distributed)")
	flag.IntVar(&c.chunk, "chunk", 4, "grid points per worker lease (with -distributed)")
	flag.DurationVar(&c.leaseTTL, "lease-ttl", 30*time.Second, "how long a dead worker's chunk stays leased before re-queueing")
	flag.IntVar(&c.storeShards, "store-shards", 0, "result-store shards; 0 reuses the store's existing layout (new stores: 1). The count is fixed at store creation")
	flag.Parse()

	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func run(c config) error {
	addr, storeDir, jobs, drain := c.addr, c.storeDir, c.jobs, c.drain
	opts := service.Options{
		JobWorkers:  jobs,
		Distributed: c.distributed,
		ChunkPoints: c.chunk,
		LeaseTTL:    c.leaseTTL,
	}
	if storeDir != "" {
		st, err := store.OpenSharded(storeDir, c.storeShards, store.Options{})
		if err != nil {
			return err
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("sweepd: %v", err)
			}
		}()
		stats := st.Stats()
		log.Printf("store %s: %d cached points in %d segment(s) across %d shard(s) (%d from index, %d replayed)",
			storeDir, stats.Entries, stats.Segments, stats.Shards, stats.IndexLoaded, stats.Replayed)
		opts.Cache = st
		opts.StoreStats = func() (store.Stats, []store.Stats) {
			return st.Stats(), st.ShardStats()
		}
	}
	m := service.New(opts)

	// Local-workers fallback: in-process RunWorker loops drain the same
	// lease queue remote sweepworkers do, through the same code path, so
	// a distributed daemon completes jobs even before (or without) any
	// remote worker connecting.
	workerCtx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	if c.distributed && c.localWorkers > 0 {
		log.Printf("distributed mode: chunk %d points, lease TTL %s, %d local worker(s)",
			c.chunk, c.leaseTTL, c.localWorkers)
		for i := 0; i < c.localWorkers; i++ {
			name := fmt.Sprintf("local-%d", i)
			go func() {
				if err := service.RunWorker(workerCtx, m, service.WorkerOptions{
					Name: name,
					Poll: 100 * time.Millisecond,
				}); err != nil && !errors.Is(err, context.Canceled) {
					log.Printf("sweepd: %s: %v", name, err)
				}
			}()
		}
	}

	srv := &http.Server{
		Addr:        addr,
		Handler:     service.NewHandler(m),
		ReadTimeout: 30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d job workers)", addr, jobs)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		m.Shutdown(context.Background())
		return err
	case sig := <-sigc:
		log.Printf("%s: draining (deadline %s)", sig, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("sweepd: http shutdown: %v", err)
	}
	if err := m.Shutdown(ctx); err != nil {
		return err
	}
	log.Print("drained")
	return nil
}
