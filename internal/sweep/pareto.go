package sweep

// dominates reports whether a is at least as good as b on every
// objective and strictly better on one: lower transmit power, lower
// structural decode latency, higher NoC saturation headroom.
func dominates(a, b Record) bool {
	if a.TxPowerDBm > b.TxPowerDBm ||
		a.DecodeLatencyBits > b.DecodeLatencyBits ||
		a.NoCSaturation < b.NoCSaturation {
		return false
	}
	return a.TxPowerDBm < b.TxPowerDBm ||
		a.DecodeLatencyBits < b.DecodeLatencyBits ||
		a.NoCSaturation > b.NoCSaturation
}

// MarkPareto sets the Pareto flag on every non-dominated feasible
// record and returns their indices in record order. Infeasible records
// (Err set) never join the front.
func MarkPareto(recs []Record) []int {
	var front []int
	for i := range recs {
		recs[i].Pareto = false
		if recs[i].Err != "" {
			continue
		}
		dominated := false
		for j := range recs {
			if i == j || recs[j].Err != "" {
				continue
			}
			if dominates(recs[j], recs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			recs[i].Pareto = true
			front = append(front, i)
		}
	}
	return front
}
