// Package store persists evaluated sweep points in a content-addressed,
// crash-tolerant result store, so every design point is computed once
// per (scenario, point, budget, seed, engine version) no matter how many
// sweeps, CLI runs or service jobs ask for it.
//
// Layout on disk: a store directory holds append-only JSON-lines
// segments named seg-NNNNNN.jsonl. Each line is one entry
// {"key": "<hex sha-256>", "record": {...}}; the key is
// sweep.PointKey of the inputs and the record is the evaluated
// sweep.Record. Open replays every segment into an in-memory index
// (last write wins, though dedup makes duplicates rare), then appends
// new entries to the highest segment, rotating once it passes the
// segment size limit. A torn final line — the signature of a crash
// mid-append — is skipped on replay, so a store survives its writer.
//
// Store implements sweep.Cache; plug it into sweep.Config.Cache and a
// rerun of any scenario reuses every already-computed point.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sweep"
)

// DefaultSegmentBytes bounds a segment file before rotation.
const DefaultSegmentBytes = 8 << 20

// entry is one persisted line: a content address and its record.
type entry struct {
	Key    string       `json:"key"`
	Record sweep.Record `json:"record"`
}

// Options tunes a Store.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size (0 = DefaultSegmentBytes).
	SegmentBytes int64
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Entries  int   // distinct keys in the index
	Segments int   // segment files on disk
	Hits     int64 // Get calls that found their key
	Misses   int64 // Get calls that did not
	Puts     int64 // Put calls that appended a new entry
	Replayed int   // entries loaded from disk by Open
	Skipped  int   // malformed lines ignored by Open
}

// Store is a content-addressed result store. It is safe for concurrent
// use by any number of goroutines.
type Store struct {
	dir      string
	segLimit int64

	hits, misses, puts atomic.Int64

	mu         sync.RWMutex
	index      map[string]sweep.Record
	active     *os.File
	activeSize int64
	activeSeq  int
	segments   int
	replayed   int
	skipped    int
	closed     bool
	writeErr   error
}

// Open creates or reopens the store rooted at dir with default options.
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions creates or reopens the store rooted at dir, replaying
// every existing segment into the in-memory index.
func OpenOptions(dir string, o Options) (*Store, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		segLimit: o.SegmentBytes,
		index:    make(map[string]sweep.Record),
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(segs)
	for _, seg := range segs {
		if err := s.replay(seg); err != nil {
			return nil, err
		}
	}
	s.segments = len(segs)
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		fmt.Sscanf(filepath.Base(last), "seg-%06d.jsonl", &s.activeSeq)
		st, err := os.Stat(last)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if st.Size() < s.segLimit {
			f, err := os.OpenFile(last, os.O_RDWR|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("store: %w", err)
			}
			s.active = f
			s.activeSize = st.Size()
			// A torn tail (crash mid-append) leaves the segment without
			// a final newline; terminate it so the next entry starts on
			// its own line instead of merging into the garbage.
			if st.Size() > 0 {
				tail := make([]byte, 1)
				if _, err := f.ReadAt(tail, st.Size()-1); err != nil {
					f.Close()
					return nil, fmt.Errorf("store: %w", err)
				}
				if tail[0] != '\n' {
					n, err := f.Write([]byte{'\n'})
					if err != nil {
						f.Close()
						return nil, fmt.Errorf("store: %w", err)
					}
					s.activeSize += int64(n)
				}
			}
		}
	}
	return s, nil
}

// replay loads one segment into the index. Malformed lines — a torn
// tail from a crashed writer, or manual edits — are counted and
// skipped, never fatal: losing an entry only costs a recompute.
func (s *Store) replay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			s.skipped++
			continue
		}
		s.index[e.Key] = e.Record
		s.replayed++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: replay %s: %w", path, err)
	}
	return nil
}

// Get returns the record stored under key. It implements sweep.Cache.
func (s *Store) Get(key string) (sweep.Record, bool) {
	s.mu.RLock()
	rec, ok := s.index[key]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return rec, ok
}

// Put appends the record under key, deduplicating: a key already in the
// index is left untouched, so re-putting an identical point is free and
// writes nothing to disk. The distributed worker tier leans on this: a
// chunk completed twice — once under an expired lease, once by its
// re-lease — is persisted exactly once, because both completions carry
// the same content-addressed keys. Put implements sweep.Cache.
// Persistence errors cannot be surfaced through the Cache interface;
// the entry stays served from memory and the error is reported by the
// next Close.
func (s *Store) Put(key string, rec sweep.Record) {
	// Marshal outside the lock: encoding is the expensive part of a
	// Put, and holding the mutex across it would serialize every sweep
	// worker behind one encoder.
	line, merr := json.Marshal(entry{Key: key, Record: rec})
	if merr == nil {
		line = append(line, '\n')
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.index[key]; dup {
		return
	}
	s.index[key] = rec
	s.puts.Add(1)
	if s.closed {
		return
	}
	if merr != nil {
		s.writeErr = merr
		return
	}
	if s.active == nil || s.activeSize >= s.segLimit {
		if err := s.rotateLocked(); err != nil {
			s.writeErr = err
			return
		}
	}
	n, err := s.active.Write(line)
	s.activeSize += int64(n)
	if err != nil {
		s.writeErr = err
	}
}

// rotateLocked closes the active segment and opens the next one.
func (s *Store) rotateLocked() error {
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	s.activeSeq++
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.jsonl", s.activeSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.active = f
	s.activeSize = 0
	s.segments++
	return nil
}

// Len returns the number of distinct keys in the index.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Entries:  len(s.index),
		Segments: s.segments,
		Hits:     s.hits.Load(),
		Misses:   s.misses.Load(),
		Puts:     s.puts.Load(),
		Replayed: s.replayed,
		Skipped:  s.skipped,
	}
}

// Close flushes and closes the active segment, returning any write
// error deferred by Put. The store keeps serving Gets from memory
// afterwards; further Puts become memory-only.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	err := s.writeErr
	if s.active != nil {
		if serr := s.active.Sync(); err == nil {
			err = serr
		}
		if cerr := s.active.Close(); err == nil {
			err = cerr
		}
		s.active = nil
	}
	if err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}
