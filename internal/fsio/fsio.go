// Package fsio holds the small filesystem idioms every command-line
// tool in this repository shares — today, atomic output-file writes.
// Results files (sweep outputs, BENCH_*.json baselines) gate CI jobs
// and downstream tooling, so a crashed or out-of-space run must never
// leave a truncated file behind; every writer goes through
// WriteFileAtomic instead of hand-rolling os.Create.
package fsio

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic streams emit into a temp file next to path and renames
// it into place only after a successful write, sync and close — readers
// never observe a partial file and every emitter or flush error reaches
// the caller (and so the exit code) instead of being lost in a deferred
// Close.
func WriteFileAtomic(path string, emit func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	// CreateTemp makes 0600 files; match what os.Create would have
	// produced so other readers keep working.
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := emit(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
