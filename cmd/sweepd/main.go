// Command sweepd serves the design-space exploration engine as a
// long-running daemon: grid sweeps and adaptive multi-objective
// optimizations are submitted as jobs over HTTP, scheduled through a
// priority queue with bounded concurrency, and every evaluated point is
// persisted in a content-addressed result store, so identical work is
// never computed twice — across jobs, restarts, and cmd/sweep runs
// sharing the same store directory.
//
// Usage:
//
//	sweepd [-addr :8080] [-store sweep-store] [-store-shards 0] [-jobs 2]
//	       [-distributed] [-local-workers 1] [-chunk 4] [-lease-ttl 30s]
//	       [-trace 4096] [-pprof] [-v]
//
// -store-shards N fans the result store out over N independent shard
// stores routed by key prefix, removing lock contention between
// concurrent jobs. The count is fixed when the store is created and
// recorded in its shards.json manifest; 0 (the default) reuses
// whatever layout the store already has, and a 1-shard store keeps the
// exact directory layout of earlier releases.
//
// With -distributed, jobs are not evaluated in-process: they are cut
// into chunks of -chunk grid points and served to sweepworker processes
// over lease/heartbeat/complete endpoints. A worker that dies mid-chunk
// stops heartbeating, its lease expires after -lease-ttl, and the chunk
// is re-queued. -local-workers N keeps N in-process workers draining
// the same queue — the fallback that lets a distributed daemon complete
// jobs before any remote worker connects (0 = pure remote fleet).
// Optimization jobs work in both modes: the NSGA-II coordinator always
// runs daemon-side, and in distributed mode each generation's
// individuals are chunked and leased to the same worker fleet (the
// lease carries the bred design points explicitly).
//
// Endpoints (see internal/service.NewHandler and docs/api.md):
//
//	GET    /healthz
//	GET    /api/v1/store
//	GET    /api/v1/scenarios
//	GET    /api/v1/spaces
//	POST   /api/v1/jobs
//	GET    /api/v1/jobs
//	GET    /api/v1/jobs/{id}
//	DELETE /api/v1/jobs/{id}
//	GET    /api/v1/jobs/{id}/records
//	GET    /api/v1/jobs/{id}/pareto
//	GET    /api/v1/jobs/{id}/generations
//	GET    /api/v1/jobs/{id}/trace
//	GET    /api/v1/jobs/{id}/timeline
//	GET    /api/v1/fleet/stats
//	POST   /api/v1/workers/lease
//	POST   /api/v1/workers/leases/{id}/heartbeat
//	POST   /api/v1/workers/leases/{id}/complete
//	POST   /api/v1/workers/leases/{id}/fail
//	GET    /api/v1/workers
//	GET    /metrics
//
// Observability: one metrics registry spans every layer — HTTP
// middleware, job manager, chunk dispatcher and the result store — and
// is served as Prometheus text exposition at GET /metrics. Logs are
// structured (log/slog, one key=value line per event); -v lowers the
// level to debug, which includes per-request access lines and lease
// chatter. -pprof additionally mounts the net/http/pprof handlers under
// /debug/pprof/ on the same listener; it is off by default because
// profiles can leak operational detail and cost CPU while streaming.
//
// Tracing: every submitted job gets a trace ID, and the daemon records
// spans for its phases (queued, dispatch, evaluate, assemble) plus one
// span per distributed chunk, with worker-side spans shipped back in
// completions. The newest -trace spans are retained in a bounded
// in-memory ring and served per job at /api/v1/jobs/{id}/trace and
// /api/v1/jobs/{id}/timeline; -trace 0 disables collection entirely
// (the record path then allocates nothing for tracing). Tracing only
// observes: records are byte-identical with it on, off, and across
// fleet sizes.
//
// SIGINT or SIGTERM triggers a graceful drain: the listener stops, every
// queued job is cancelled, running jobs have their contexts cancelled,
// and the store is flushed before exit. The drain logs how many jobs
// were queued and running at the signal and how long the drain took.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sweep/store"
)

// config collects the daemon's flag values.
type config struct {
	addr         string
	storeDir     string
	jobs         int
	drain        time.Duration
	distributed  bool
	localWorkers int
	chunk        int
	leaseTTL     time.Duration
	storeShards  int
	trace        int
	pprof        bool
	verbose      bool
}

func main() {
	var c config
	flag.StringVar(&c.addr, "addr", ":8080", "HTTP listen address")
	flag.StringVar(&c.storeDir, "store", "sweep-store", "result store directory ('' disables persistence)")
	flag.IntVar(&c.jobs, "jobs", 2, "concurrent jobs (each parallelizes across grid points)")
	flag.DurationVar(&c.drain, "drain", 30*time.Second, "graceful shutdown deadline")
	flag.BoolVar(&c.distributed, "distributed", false, "serve jobs to sweepworker processes instead of evaluating in-process")
	flag.IntVar(&c.localWorkers, "local-workers", 1, "in-process workers draining the distributed queue (0 = pure remote fleet; ignored without -distributed)")
	flag.IntVar(&c.chunk, "chunk", 4, "grid points per worker lease (with -distributed)")
	flag.DurationVar(&c.leaseTTL, "lease-ttl", 30*time.Second, "how long a dead worker's chunk stays leased before re-queueing")
	flag.IntVar(&c.storeShards, "store-shards", 0, "result-store shards; 0 reuses the store's existing layout (new stores: 1). The count is fixed at store creation")
	flag.IntVar(&c.trace, "trace", obs.DefaultCollectorCap, "spans retained for /api/v1/jobs/{id}/trace (0 disables tracing)")
	flag.BoolVar(&c.pprof, "pprof", false, "serve net/http/pprof profiles under /debug/pprof/ (off by default)")
	flag.BoolVar(&c.verbose, "v", false, "debug-level logs (per-request access lines, lease chatter)")
	flag.Parse()

	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func run(c config) error {
	addr, storeDir, jobs, drain := c.addr, c.storeDir, c.jobs, c.drain
	level := slog.LevelInfo
	if c.verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, level)
	// One registry spans the whole daemon: the result store, the job
	// manager, the dispatcher and the HTTP middleware all register their
	// families here, and GET /metrics serves them together.
	reg := obs.NewRegistry()
	opts := service.Options{
		JobWorkers:  jobs,
		Distributed: c.distributed,
		ChunkPoints: c.chunk,
		LeaseTTL:    c.leaseTTL,
		Metrics:     reg,
		Logger:      logger,
	}
	if c.trace > 0 {
		opts.Trace = obs.NewCollector(c.trace)
	}
	if storeDir != "" {
		st, err := store.OpenSharded(storeDir, c.storeShards, store.Options{Metrics: reg})
		if err != nil {
			return err
		}
		defer func() {
			if err := st.Close(); err != nil {
				logger.Error("store close failed", "error", err)
			}
		}()
		stats := st.Stats()
		logger.Info("store opened",
			"dir", storeDir, "entries", stats.Entries, "segments", stats.Segments,
			"shards", stats.Shards, "index_loaded", stats.IndexLoaded, "replayed", stats.Replayed)
		opts.Cache = st
		opts.StoreStats = func() (store.Stats, []store.Stats) {
			return st.Stats(), st.ShardStats()
		}
	}
	m := service.New(opts)

	// Local-workers fallback: in-process RunWorker loops drain the same
	// lease queue remote sweepworkers do, through the same code path, so
	// a distributed daemon completes jobs even before (or without) any
	// remote worker connecting.
	workerCtx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	if c.distributed && c.localWorkers > 0 {
		logger.Info("distributed mode",
			"chunk_points", c.chunk, "lease_ttl", c.leaseTTL, "local_workers", c.localWorkers)
		for i := 0; i < c.localWorkers; i++ {
			name := fmt.Sprintf("local-%d", i)
			go func() {
				if err := service.RunWorker(workerCtx, m, service.WorkerOptions{
					Name:   name,
					Poll:   100 * time.Millisecond,
					Logger: logger,
				}); err != nil && !errors.Is(err, context.Canceled) {
					logger.Error("local worker stopped", "worker", name, "error", err)
				}
			}()
		}
	}

	handler := service.NewHandler(m)
	if c.pprof {
		// The profile handlers live beside the service routes on the same
		// listener; registering them here (not in internal/service) keeps
		// them out of the instrumented API surface and behind the flag.
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	srv := &http.Server{
		Addr:        addr,
		Handler:     handler,
		ReadTimeout: 30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", addr, "job_workers", jobs)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		m.Shutdown(context.Background())
		return err
	case sig := <-sigc:
		queued, running := m.InFlight()
		logger.Info("draining",
			"signal", sig.String(), "deadline", drain,
			"jobs_queued", queued, "jobs_running", running)
	}

	drainStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("http shutdown failed", "error", err)
	}
	if err := m.Shutdown(ctx); err != nil {
		return err
	}
	logger.Info("drained", "duration", time.Since(drainStart))
	return nil
}
