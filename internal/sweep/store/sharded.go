package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fsio"
	"repro/internal/sweep"
)

// Sharding splits one logical store into N independent Stores routed
// by the key's leading hex byte. Keys are sweep.PointKey sha-256
// digests, so the prefix is uniformly distributed and every shard
// carries ~1/N of the entries, segments and — critically — mutex
// traffic: concurrent jobs touching different shards never contend.
// Which shard a key routes to is a pure function of (key, N), so a
// store must be opened with the shard count it was created with; the
// shards.json manifest pins it.

// MaxShards bounds the fan-out: 256 leading-byte values is the natural
// ceiling of single-byte routing, and far beyond any useful mutex
// split on one machine.
const MaxShards = 256

// manifestFileName pins a multi-shard store's layout. Single-shard
// stores have no manifest — their directory layout is byte-compatible
// with the pre-sharding store, so existing deployments open unchanged.
const manifestFileName = "shards.json"

// manifestVersion numbers the manifest layout.
const manifestVersion = 1

type manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// readManifest loads dir's shard manifest, returning (nil, nil) when
// the store is single-shard (no manifest).
func readManifest(dir string) (*manifest, error) {
	f, err := os.Open(filepath.Join(dir, manifestFileName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var m manifest
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("store: manifest %s: %w", filepath.Join(dir, manifestFileName), err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest version %d, this reader speaks %d", m.Version, manifestVersion)
	}
	if m.Shards < 1 || m.Shards > MaxShards {
		return nil, fmt.Errorf("store: manifest declares %d shards (want 1..%d)", m.Shards, MaxShards)
	}
	return &m, nil
}

// shardDir names one shard's subdirectory.
func shardDir(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", shard))
}

// Sharded is a result store fanned out over N independent Stores. It
// implements sweep.Cache exactly like Store; with N == 1 it wraps a
// single Store rooted at dir itself, byte-compatible with a
// pre-sharding store directory.
type Sharded struct {
	dir    string
	shards []*Store
}

// OpenSharded creates or reopens the store rooted at dir with n
// shards. n == 0 means "whatever the store already is": the manifest's
// count for a sharded store, 1 otherwise. Opening an existing store
// with a conflicting non-zero n is an error — routing is a function of
// the shard count, so resharding requires rewriting every segment
// (dump with one layout, refill with the other), not a flag change.
func OpenSharded(dir string, n int, o Options) (*Sharded, error) {
	if n < 0 || n > MaxShards {
		return nil, fmt.Errorf("store: %d shards (want 1..%d)", n, MaxShards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	switch {
	case man != nil:
		if n != 0 && n != man.Shards {
			return nil, fmt.Errorf("store: %s has %d shards, requested %d; resharding needs a dump and refill, not a flag change", dir, man.Shards, n)
		}
		n = man.Shards
	case n == 0:
		n = 1
	}
	if n > 1 && man == nil {
		// Creating a fresh multi-shard store. Refuse to layer shards
		// over an existing single-shard directory: its segments would
		// become invisible to routed lookups.
		if segs, _, err := listSegments(dir); err != nil {
			return nil, err
		} else if len(segs) > 0 {
			return nil, fmt.Errorf("store: %s holds a single-shard store; open it with 1 shard or migrate it (dump and refill)", dir)
		}
		if err := fsio.WriteFileAtomic(filepath.Join(dir, manifestFileName), func(f *os.File) error {
			return json.NewEncoder(f).Encode(manifest{Version: manifestVersion, Shards: n})
		}); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}

	s := &Sharded{dir: dir, shards: make([]*Store, n)}
	for i := range s.shards {
		d := dir
		if n > 1 {
			d = shardDir(dir, i)
		}
		st, err := OpenOptions(d, o)
		if err != nil {
			for _, open := range s.shards[:i] {
				open.Close()
			}
			return nil, err
		}
		s.shards[i] = st
	}
	if o.Metrics != nil {
		registerShardGauges(o.Metrics, s)
	}
	return s, nil
}

// shard routes a key to its Store: the key's leading hex byte modulo
// the shard count. Non-hex or short keys (never produced by
// sweep.PointKey) all route to shard 0 rather than failing — a wrong
// shard would only cost a recompute, but routing must stay total.
func (s *Sharded) shard(key string) *Store {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	b, ok := leadingByte(key)
	if !ok {
		return s.shards[0]
	}
	return s.shards[int(b)%len(s.shards)]
}

// leadingByte parses the first two hex characters of a key.
func leadingByte(key string) (byte, bool) {
	if len(key) < 2 {
		return 0, false
	}
	hi, ok1 := hexVal(key[0])
	lo, ok2 := hexVal(key[1])
	if !ok1 || !ok2 {
		return 0, false
	}
	return hi<<4 | lo, true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Get returns the record stored under key. It implements sweep.Cache.
func (s *Sharded) Get(key string) (sweep.Record, bool) {
	return s.shard(key).Get(key)
}

// Put appends the record under key to its shard. It implements
// sweep.Cache.
func (s *Sharded) Put(key string, rec sweep.Record) {
	s.shard(key).Put(key, rec)
}

// Len returns the number of distinct keys across all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, st := range s.shards {
		n += st.Len()
	}
	return n
}

// Dir returns the store's root directory.
func (s *Sharded) Dir() string { return s.dir }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Stats aggregates every shard's counters; Shards reports the fan-out.
func (s *Sharded) Stats() Stats {
	var total Stats
	for _, st := range s.shards {
		sh := st.Stats()
		total.Entries += sh.Entries
		total.Segments += sh.Segments
		total.Hits += sh.Hits
		total.Misses += sh.Misses
		total.Puts += sh.Puts
		total.Replayed += sh.Replayed
		total.IndexLoaded += sh.IndexLoaded
		total.Skipped += sh.Skipped
	}
	total.Shards = len(s.shards)
	return total
}

// ShardStats returns each shard's own counter snapshot, in shard
// order — the per-shard view behind GET /api/v1/store.
func (s *Sharded) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, st := range s.shards {
		out[i] = st.Stats()
	}
	return out
}

// Compact compacts every shard, folding the per-shard results.
func (s *Sharded) Compact() (CompactResult, error) {
	var total CompactResult
	for i, st := range s.shards {
		res, err := st.Compact()
		total.Add(res)
		if err != nil {
			return total, fmt.Errorf("store: shard %d: %w", i, err)
		}
	}
	return total, nil
}

// Close closes every shard, returning the first error.
func (s *Sharded) Close() error {
	var first error
	for _, st := range s.shards {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
