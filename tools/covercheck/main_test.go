package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProfile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cover.out")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestProfileCoverage(t *testing.T) {
	// 3+2 covered statements of 3+2+5 total = 50%.
	path := writeProfile(t, strings.Join([]string{
		"mode: set",
		"repro/internal/x/a.go:10.2,12.3 3 1",
		"repro/internal/x/a.go:14.2,15.3 2 7",
		"repro/internal/x/b.go:3.1,9.2 5 0",
		"",
	}, "\n"))
	pct, err := profileCoverage(path)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pct-50) > 1e-9 {
		t.Fatalf("coverage = %v, want 50", pct)
	}
}

func TestProfileCoverageRejectsGarbage(t *testing.T) {
	for name, content := range map[string]string{
		"no header":   "repro/x/a.go:1.1,2.2 1 1\n",
		"short line":  "mode: set\nrepro/x/a.go:1.1,2.2 1\n",
		"bad count":   "mode: set\nrepro/x/a.go:1.1,2.2 one 1\n",
		"empty":       "mode: set\n",
		"only blanks": "mode: set\n\n\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := profileCoverage(writeProfile(t, content)); err == nil {
				t.Fatal("malformed profile accepted")
			}
		})
	}
}

func TestProfileCoverageMissingFile(t *testing.T) {
	if _, err := profileCoverage(filepath.Join(t.TempDir(), "nope.out")); err == nil {
		t.Fatal("missing file accepted")
	}
}
