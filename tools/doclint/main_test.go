package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintFindsUndocumentedPackages(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "good", "good.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(dir, "bad", "bad.go"), "package bad\n")
	// A doc comment on any one file of the package is enough.
	write(t, filepath.Join(dir, "split", "a.go"), "package split\n")
	write(t, filepath.Join(dir, "split", "b.go"), "// Package split is documented elsewhere.\npackage split\n")
	// Test files never satisfy (or trigger) the check.
	write(t, filepath.Join(dir, "bad", "bad_test.go"), "// Package bad looks documented only in tests.\npackage bad\n")
	write(t, filepath.Join(dir, "testdata", "ignored.go"), "package ignored\n")
	write(t, filepath.Join(dir, ".hidden", "h.go"), "package hidden\n")

	missing, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || !strings.Contains(missing[0], "bad") {
		t.Fatalf("missing = %v, want exactly the bad package", missing)
	}
}

// TestLintScopeCoversCommandsAndTools pins that the walk reaches
// cmd/*, tools/* and examples/* package-main directories exactly like
// internal/* library packages: an undocumented command must fail the
// gate, and one documented main file per package satisfies it.
func TestLintScopeCoversCommandsAndTools(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "internal", "lib", "lib.go"),
		"// Package lib is documented.\npackage lib\n")
	write(t, filepath.Join(dir, "cmd", "documented", "main.go"),
		"// Command documented has a doc comment.\npackage main\n")
	write(t, filepath.Join(dir, "cmd", "bare", "main.go"), "package main\n")
	write(t, filepath.Join(dir, "tools", "barelint", "main.go"), "package main\n")
	write(t, filepath.Join(dir, "examples", "baredemo", "main.go"), "package main\n")

	missing, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 3 {
		t.Fatalf("missing = %v, want the three undocumented main packages", missing)
	}
	for _, want := range []string{
		filepath.Join(dir, "cmd", "bare"),
		filepath.Join(dir, "tools", "barelint"),
		filepath.Join(dir, "examples", "baredemo"),
	} {
		found := false
		for _, m := range missing {
			if strings.Contains(m, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s not flagged; got %v", want, missing)
		}
	}
}

func TestLintCleanOnThisModule(t *testing.T) {
	// The repository's own invariant: nothing undocumented, ever.
	missing, err := lint("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("undocumented packages in the module: %v", missing)
	}
}
