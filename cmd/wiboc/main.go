// Command wiboc (WIreless BOard and Chip interconnect) regenerates the
// tables and figures of "Wireless Interconnect for Board and Chip Level"
// (Fettweis et al., DATE 2013).
//
// Usage:
//
//	wiboc [-quality smoke|standard|full] <experiment> [...]
//
// Experiments: table1, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8a,
// fig8b, fig10, ablations, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

var runners = map[string]func(experiments.Quality) string{
	"table1": experiments.Table1,
	"fig1":   experiments.Fig1,
	"fig2":   experiments.Fig2,
	"fig3":   experiments.Fig3,
	"fig4":   experiments.Fig4,
	"fig5":   experiments.Fig5,
	"fig6":   experiments.Fig6,
	"fig7":   experiments.Fig7,
	"fig8a":  experiments.Fig8a,
	"fig8b":  experiments.Fig8b,
	"fig10":  experiments.Fig10,
}

var ablations = map[string]func(experiments.Quality) string{
	"ablation-oversampling": experiments.AblationOversampling,
	"ablation-service":      experiments.AblationServiceModel,
	"ablation-pillars":      experiments.AblationPillars,
	"ablation-vertical":     experiments.AblationVerticalBandwidth,
	"ablation-decoder":      experiments.AblationDecoderAlgo,
	"ablation-schedule":     experiments.AblationBPSchedule,
	"ablation-window-iters": experiments.AblationWindowIterations,
}

// order fixes the execution sequence of "all".
var order = []string{
	"table1", "fig1", "fig2", "fig3", "fig4",
	"fig5", "fig6", "fig7", "fig8a", "fig8b", "fig10",
}

var ablationOrder = []string{
	"ablation-oversampling", "ablation-service", "ablation-pillars",
	"ablation-vertical", "ablation-decoder", "ablation-schedule",
	"ablation-window-iters",
}

func main() {
	qualityFlag := flag.String("quality", "smoke",
		"Monte-Carlo fidelity: smoke, standard or full")
	flag.Usage = usage
	flag.Parse()

	q, err := experiments.ParseQuality(*qualityFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	for _, name := range args {
		switch name {
		case "all":
			for _, n := range order {
				run(n, runners[n], q)
			}
		case "ablations":
			for _, n := range ablationOrder {
				run(n, ablations[n], q)
			}
		default:
			fn, err := resolve(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wiboc:", err)
				usage()
				os.Exit(2)
			}
			run(name, fn, q)
		}
	}
}

// resolve maps an experiment name to its runner, searching the figure
// runners first and the ablations second.
func resolve(name string) (func(experiments.Quality) string, error) {
	if fn, ok := runners[name]; ok {
		return fn, nil
	}
	if fn, ok := ablations[name]; ok {
		return fn, nil
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}

func run(name string, fn func(experiments.Quality) string, q experiments.Quality) {
	start := time.Now()
	out := fn(q)
	fmt.Print(out)
	fmt.Printf("[%s completed in %.1fs]\n\n", name, time.Since(start).Seconds())
}

func usage() {
	fmt.Fprintf(os.Stderr, `wiboc — regenerate the DATE'13 wireless-interconnect experiments

usage: wiboc [-quality smoke|standard|full] <experiment> [...]

experiments:
`)
	for _, n := range order {
		fmt.Fprintf(os.Stderr, "  %s\n", n)
	}
	fmt.Fprintf(os.Stderr, "  all        (everything above, in order)\n\nablations:\n")
	for _, n := range ablationOrder {
		fmt.Fprintf(os.Stderr, "  %s\n", n)
	}
	fmt.Fprintf(os.Stderr, "  ablations  (all ablations)\n")
}
