// Package inforate computes the information rates of Sec. III: achievable
// rates of M-ASK over AWGN with a 1-bit oversampling receiver, with and
// without designed inter-symbol interference (Fig. 6).
//
// The transmit pulse spanning S symbol periods turns the channel into a
// finite-state machine with M^(S-1) states; the package provides
//
//   - SequenceRate: the simulation-based information-rate estimator of
//     Arnold & Loeliger (forward recursion of the joint trellis), the rate
//     a sequence-estimation receiver achieves;
//   - SymbolwiseRate: the exact mutual information of the marginal
//     per-symbol channel, the rate of a symbol-by-symbol receiver that
//     treats ISI as dithering;
//   - UnquantizedRate: the M-ASK AWGN mutual information without
//     quantisation (Gauss-Hermite quadrature), the "No Quantization"
//     reference;
//   - reference 1-bit rates without oversampling or without ISI.
//
// SNR convention: matched-filter SNR = 1/sigma^2 (unit-energy pulse,
// unit-average-energy constellation), matching package modem.
package inforate

import (
	"fmt"

	"repro/internal/modem"
)

// Trellis is the finite-state description of the 1-bit oversampled ISI
// channel: state = the S-1 previous symbols, input = the current symbol,
// output = OSF noiseless amplitudes per branch.
type Trellis struct {
	constel modem.Constellation
	pulse   modem.Pulse

	numStates int
	osf       int
	m         int // alphabet size
	span      int
	// amps[(state*m+input)*osf + k] is noiseless sample k of the branch.
	amps []float64
	// next[state*m+input] is the successor state.
	next []int
}

// NewTrellis builds the trellis for a constellation and pulse. The state
// count is M^(span-1); pulses with spans that would exceed 1<<20 states
// are rejected as a configuration error.
func NewTrellis(c modem.Constellation, p modem.Pulse) *Trellis {
	m := c.Size()
	span := p.SpanSymbols()
	states := 1
	for j := 1; j < span; j++ {
		states *= m
		if states > 1<<20 {
			panic(fmt.Sprintf("inforate: %d-ASK with span %d exceeds the state budget", m, span))
		}
	}
	t := &Trellis{
		constel:   c,
		pulse:     p,
		numStates: states,
		osf:       p.OSF(),
		m:         m,
		span:      span,
		amps:      make([]float64, states*m*p.OSF()),
		next:      make([]int, states*m),
	}
	history := make([]float64, span)
	block := make([]float64, p.OSF())
	for s := 0; s < states; s++ {
		// Decode state digits: digit j-1 (base m) = index of symbol x_{t-j}.
		for u := 0; u < m; u++ {
			history[0] = c.Level(u)
			ss := s
			for j := 1; j < span; j++ {
				history[j] = c.Level(ss % m)
				ss /= m
			}
			p.BlockAmplitudes(history, block)
			copy(t.amps[(s*m+u)*t.osf:], block)
			t.next[s*m+u] = (u + s*m) % states
		}
	}
	return t
}

// NumStates returns the trellis state count.
func (t *Trellis) NumStates() int { return t.numStates }

// NumBranches returns the number of (state, input) branches.
func (t *Trellis) NumBranches() int { return t.numStates * t.m }

// AlphabetSize returns the input alphabet size M.
func (t *Trellis) AlphabetSize() int { return t.m }

// OSF returns the samples per symbol.
func (t *Trellis) OSF() int { return t.osf }

// Span returns the pulse span in symbols.
func (t *Trellis) Span() int { return t.span }

// Constellation returns the input alphabet.
func (t *Trellis) Constellation() modem.Constellation { return t.constel }

// Pulse returns the transmit pulse.
func (t *Trellis) Pulse() modem.Pulse { return t.pulse }

// Next returns the successor state of (state, input).
func (t *Trellis) Next(state, input int) int { return t.next[state*t.m+input] }

// BranchAmps returns the noiseless amplitude samples of (state, input)
// without copying; the caller must not modify the result.
func (t *Trellis) BranchAmps(state, input int) []float64 {
	off := (state*t.m + input) * t.osf
	return t.amps[off : off+t.osf]
}
