// Package numeric provides the numerical kernels shared by the
// wireless-interconnect library: special functions (Gaussian Q),
// stable log-domain arithmetic, 1-D and multi-dimensional optimisers,
// quadrature rules and linear least squares.
//
// Everything is deterministic and allocation-conscious; optimisers accept
// plain func objectives so they can be reused across the information-rate
// (paper Sec. III), filter-design (Sec. III) and link-budget (Sec. II,
// Fig. 4) modules.
package numeric

import "math"

// QFunc is the Gaussian tail probability Q(x) = P(N(0,1) > x).
// It is computed via erfc for numerical stability in both tails.
func QFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// QInv returns the inverse of the Gaussian Q-function, i.e. the x with
// Q(x) = p for p in (0,1). It uses bisection refined by Newton steps on
// the monotone tail, accurate to ~1e-12.
func QInv(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	// Q is strictly decreasing; bracket generously.
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if QFunc(mid) > p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// LogQ returns log Q(x), stable for large x where Q underflows.
func LogQ(x float64) float64 {
	if x < 30 {
		q := QFunc(x)
		if q > 0 {
			return math.Log(q)
		}
	}
	// Asymptotic expansion: Q(x) ~ phi(x)/x * (1 - 1/x^2 + 3/x^4).
	logPhi := -0.5*x*x - 0.5*math.Log(2*math.Pi)
	return logPhi - math.Log(x) + math.Log1p(-1/(x*x)+3/(x*x*x*x))
}

// NormPDF is the standard normal density.
func NormPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// LogSumExp returns log(exp(a) + exp(b)) without overflow.
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogSumExpSlice returns log(sum_i exp(x_i)) without overflow.
// It returns -Inf for an empty or all -Inf input.
func LogSumExpSlice(xs []float64) float64 {
	maxVal := math.Inf(-1)
	for _, x := range xs {
		if x > maxVal {
			maxVal = x
		}
	}
	if math.IsInf(maxVal, -1) {
		return maxVal
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - maxVal)
	}
	return maxVal + math.Log(sum)
}

// Log2 converts a natural logarithm to base 2.
func Log2(ln float64) float64 { return ln / math.Ln2 }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
