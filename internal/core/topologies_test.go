package core

import (
	"testing"
)

func TestCandidateTopologiesCoverRequestedModules(t *testing.T) {
	// The candidate generator must propose valid meshes whose module
	// counts are at least the requested size for any plausible request,
	// including non-squares, non-cubes and odd counts.
	for _, modules := range []int{2, 5, 7, 16, 60, 64, 100, 250, 512, 1000} {
		cands := candidateTopologies(modules)
		if len(cands) == 0 {
			t.Fatalf("%d modules: no candidates", modules)
		}
		for _, c := range cands {
			if c.NumModules() < modules-c.Concentration() {
				t.Errorf("%d modules: candidate %s provides only %d",
					modules, c.Name(), c.NumModules())
			}
		}
	}
}

func TestDesignSystemOddStackSizes(t *testing.T) {
	// The full pipeline must not choke on awkward module counts.
	for _, modules := range []int{17, 50, 100} {
		spec := DefaultSpec()
		spec.StackModules = modules
		spec.StackInjectionRate = 0.05
		d, err := DesignSystem(spec)
		if err != nil {
			t.Fatalf("%d modules: %v", modules, err)
		}
		if d.Stack.Topology.NumModules() < modules-d.Stack.Topology.Concentration() {
			t.Errorf("%d modules: chosen stack %s too small", modules, d.Stack.Topology.Name())
		}
	}
}
