package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
	"time"
)

// Tracing here is deliberately small: a request ID that rides the
// context (minted by the HTTP middleware from X-Request-ID, or fresh),
// a SpanContext carrying trace and parent-span IDs across process
// boundaries (X-Trace-ID / X-Parent-Span), and a Span that stamps a
// start time and logs a structured finish line with the measured
// duration. Cross-process span records are retained by the in-daemon
// Collector (collect.go); the log stream alone is still enough to
// reconstruct a job or lease lifecycle without it.

// RequestIDHeader is the HTTP header request IDs arrive on and are
// echoed back through.
const RequestIDHeader = "X-Request-ID"

// TraceIDHeader and ParentSpanHeader carry a span context across
// process boundaries: the daemon stamps each lease with its job's
// trace ID and a chunk span ID, workers echo both on every RPC about
// that lease, and the middleware lifts them onto the request context —
// so one job yields one coherent trace across N HTTP workers.
const (
	TraceIDHeader    = "X-Trace-ID"
	ParentSpanHeader = "X-Parent-Span"
)

// SpanContext identifies a position in a distributed trace: the trace
// every related span shares, and the span a child should name as its
// parent. The zero value means "not part of any trace".
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context belongs to a trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" }

type spanContextKey struct{}

// WithSpanContext returns ctx carrying the span context.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanContextKey{}, sc)
}

// SpanContextFrom returns the context's span context, zero when none
// was set.
func SpanContextFrom(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanContextKey{}).(SpanContext)
	return sc
}

type requestIDKey struct{}

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request ID, or "" when none was set.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// reqSeq backs the fallback request-ID generator when the system random
// source fails (it practically never does).
var reqSeq atomic.Uint64

// NewRequestID mints a 16-hex-character request ID. IDs only need to be
// unique enough to correlate log lines; they carry no entropy contract.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := reqSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// NewTraceID mints a trace ID — same 16-hex-character shape as request
// IDs, same correlation-only uniqueness contract.
func NewTraceID() string { return NewRequestID() }

// NewSpanID mints a span ID.
func NewSpanID() string { return NewRequestID() }

// NewLogger returns a structured text logger writing to w at the given
// level — the daemon and worker binaries' log sink. A nil w logs to
// stderr.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// DiscardLogger returns a logger that drops everything — the default
// for library code whose caller wired no logger.
func DiscardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// Span is one timed unit of work (a job run, a lease lifetime). Start
// with StartSpan, optionally mark intermediate Events, and End it to
// log the structured finish line with the measured duration.
type Span struct {
	logger *slog.Logger
	name   string
	start  time.Time
}

// StartSpan begins a span. attrs are slog key-value pairs attached to
// every line the span emits; a request ID on ctx is attached
// automatically. The clock read is telemetry only — span timing never
// feeds back into evaluation.
func StartSpan(ctx context.Context, logger *slog.Logger, name string, attrs ...any) *Span {
	if logger == nil {
		logger = DiscardLogger()
	}
	if id := RequestID(ctx); id != "" {
		attrs = append(attrs, "request_id", id)
	}
	if sc := SpanContextFrom(ctx); sc.Valid() {
		attrs = append(attrs, "trace_id", sc.TraceID)
	}
	l := logger.With(attrs...)
	l.Debug(name + " started")
	return &Span{logger: l, name: name, start: time.Now()}
}

// Event logs one intermediate structured event on the span.
func (s *Span) Event(msg string, attrs ...any) {
	s.logger.Info(msg, attrs...)
}

// End logs the span's finish line with its duration and returns the
// duration. Extra attrs (an outcome state, an error) join the line.
func (s *Span) End(attrs ...any) time.Duration {
	d := time.Since(s.start)
	attrs = append(attrs, "duration", d)
	s.logger.Info(s.name+" finished", attrs...)
	return d
}
