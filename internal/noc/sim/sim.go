// Package sim is an event-driven flit-level NoC simulator used to
// cross-validate the analytic queueing model of package analytic (the
// paper's ref. [14] validates its model the same way).
//
// The service discipline mirrors the analytic model: each traversed
// router costs a fixed pipeline delay, each channel is a FIFO server
// whose occupancy per flit is 1/ChannelEfficiency cycles, and modules
// inject single-flit packets as independent Poisson processes.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/noc"
	"repro/internal/rng"
)

// Config parameterises one simulation run.
type Config struct {
	Topo    *noc.Mesh
	Traffic noc.TrafficPattern
	// InjectionRate is in flits/cycle/module.
	InjectionRate float64
	// RouterDelayCycles is the per-router pipeline cost (0 means 2),
	// matching analytic.Model.
	RouterDelayCycles float64
	// ChannelEfficiency derates channel capacity (0 means 0.8), matching
	// analytic.Model.
	ChannelEfficiency float64
	// VerticalCapacity scales vertical-channel bandwidth (0 means 1),
	// matching analytic.Model.
	VerticalCapacity float64
	// WarmupCycles are simulated but not measured (0 means 2000).
	WarmupCycles float64
	// MeasureCycles is the measurement window (0 means 10000).
	MeasureCycles float64
	// Seed makes the run reproducible.
	Seed uint64
	// SatLatencyCycles declares saturation when the mean delivered
	// latency exceeds it (0 means 500).
	SatLatencyCycles float64
}

func (c Config) defaults() Config {
	if c.RouterDelayCycles == 0 {
		c.RouterDelayCycles = 2
	}
	if c.ChannelEfficiency == 0 {
		c.ChannelEfficiency = 0.8
	}
	if c.VerticalCapacity == 0 {
		c.VerticalCapacity = 1
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 2000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 10000
	}
	if c.SatLatencyCycles == 0 {
		c.SatLatencyCycles = 500
	}
	return c
}

// Result summarises a run.
type Result struct {
	// MeanLatencyCycles is the average injection-to-delivery latency of
	// packets injected during the measurement window.
	MeanLatencyCycles float64
	// P95LatencyCycles is the 95th percentile latency (approximate, from
	// a fixed-resolution histogram).
	P95LatencyCycles float64
	// Injected and Delivered count measurement-window packets.
	Injected, Delivered int
	// ThroughputPerModule is delivered flits/cycle/module.
	ThroughputPerModule float64
	// Saturated is set when latency diverged or deliveries lagged
	// injections by more than 10%.
	Saturated bool
}

// event is a packet becoming ready at a router.
type event struct {
	time float64
	seq  int64 // tie-break for determinism
	pkt  int32
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type packet struct {
	injected float64
	route    []int // channel ids, consumed front to back
	hop      int32
	measured bool
}

// Run executes the simulation.
func Run(cfg Config) Result {
	cfg = cfg.defaults()
	if cfg.InjectionRate < 0 {
		panic(fmt.Sprintf("sim: negative injection rate %g", cfg.InjectionRate))
	}
	topo := cfg.Topo
	n := topo.NumModules()
	horizon := cfg.WarmupCycles + cfg.MeasureCycles
	rd := cfg.RouterDelayCycles
	// Per-channel service time: vertical links may be faster.
	serviceOf := make([]float64, topo.NumChannels())
	for i, ch := range topo.Channels() {
		s := 1 / cfg.ChannelEfficiency
		if ch.Vertical {
			s /= cfg.VerticalCapacity
		}
		serviceOf[i] = s
	}

	// Route cache per router pair.
	routes := make(map[[2]int][]int)
	routeOf := func(rs, rdst int) []int {
		key := [2]int{rs, rdst}
		if r, ok := routes[key]; ok {
			return r
		}
		r := topo.RouteChannels(rs, rdst)
		routes[key] = r
		return r
	}

	// Pre-generate Poisson injections.
	var packets []packet
	var events eventHeap
	var seq int64
	if cfg.InjectionRate > 0 {
		for mod := 0; mod < n; mod++ {
			stream := rng.New(cfg.Seed).Split(uint64(mod) + 1)
			t := stream.Exp(cfg.InjectionRate)
			for ; t < horizon; t += stream.Exp(cfg.InjectionRate) {
				// Destination by traffic shares.
				dst := drawDestination(stream, cfg.Traffic, mod, n)
				if dst < 0 {
					continue
				}
				rs, rdst := topo.RouterOf(mod), topo.RouterOf(dst)
				p := packet{
					injected: t,
					route:    routeOf(rs, rdst),
					measured: t >= cfg.WarmupCycles,
				}
				packets = append(packets, p)
				events = append(events, event{time: t + rd, seq: seq, pkt: int32(len(packets) - 1)})
				seq++
			}
		}
	}
	heap.Init(&events)

	chanFree := make([]float64, topo.NumChannels())
	const histRes = 0.5
	var hist []int
	var injectedMeasured, delivered int
	var latencySum float64

	for _, p := range packets {
		if p.measured {
			injectedMeasured++
		}
	}

	for events.Len() > 0 {
		e := heap.Pop(&events).(event)
		p := &packets[e.pkt]
		if int(p.hop) == len(p.route) {
			// Ready at the destination router: delivered.
			if p.measured {
				delivered++
				lat := e.time - p.injected
				latencySum += lat
				bucket := int(lat / histRes)
				if bucket >= len(hist) {
					hist = append(hist, make([]int, bucket-len(hist)+1)...)
				}
				hist[bucket]++
			}
			continue
		}
		c := p.route[p.hop]
		depart := e.time
		if chanFree[c] > depart {
			depart = chanFree[c]
		}
		chanFree[c] = depart + serviceOf[c]
		p.hop++
		heap.Push(&events, event{time: depart + rd, seq: seq, pkt: e.pkt})
		seq++
	}

	res := Result{Injected: injectedMeasured, Delivered: delivered}
	if delivered > 0 {
		res.MeanLatencyCycles = latencySum / float64(delivered)
		res.P95LatencyCycles = percentileFromHist(hist, delivered, 0.95) * histRes
		res.ThroughputPerModule = float64(delivered) / (cfg.MeasureCycles * float64(n))
	}
	// The event loop drains every packet eventually (infinite queues), so
	// saturation shows up as diverging latency rather than lost packets.
	if res.MeanLatencyCycles > cfg.SatLatencyCycles ||
		(injectedMeasured > 0 && float64(delivered) < 0.9*float64(injectedMeasured)) {
		res.Saturated = true
	}
	if math.IsNaN(res.MeanLatencyCycles) {
		res.Saturated = true
	}
	return res
}

// drawDestination samples a destination module according to the traffic
// shares; returns -1 when the module emits no traffic.
func drawDestination(stream *rng.Stream, tp noc.TrafficPattern, src, n int) int {
	u := stream.Float64()
	var acc float64
	for d := 0; d < n; d++ {
		acc += tp.Share(src, d, n)
		if u < acc {
			return d
		}
	}
	if acc == 0 {
		return -1
	}
	// Rounding residue: assign to the last destination with a share.
	for d := n - 1; d >= 0; d-- {
		if tp.Share(src, d, n) > 0 {
			return d
		}
	}
	return -1
}

func percentileFromHist(hist []int, total int, q float64) float64 {
	if total == 0 {
		return 0
	}
	target := int(math.Ceil(q * float64(total)))
	var acc int
	for b, c := range hist {
		acc += c
		if acc >= target {
			return float64(b)
		}
	}
	return float64(len(hist) - 1)
}
