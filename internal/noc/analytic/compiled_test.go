package analytic

import (
	"math"
	"testing"

	"repro/internal/noc"
)

// The compiled evaluator must agree with the reference model: same
// saturation point and the same latency curve (up to float summation
// order) on every topology family.
func TestCompiledMatchesModel(t *testing.T) {
	topos := []*noc.Mesh{
		noc.NewMesh2D(4, 4),
		noc.NewStarMesh(2, 2, 4),
		noc.NewMesh3D(3, 3, 2),
		noc.NewCiliated3D(2, 2, 2, 2),
	}
	for _, topo := range topos {
		for _, service := range []ServiceModel{MM1, MD1} {
			m := Model{Topo: topo, Traffic: noc.Uniform{}, Service: service}
			c := m.Compile()
			if got, want := c.SaturationRate(), m.SaturationRate(); math.Abs(got-want) > 1e-9*want {
				t.Errorf("%s/%s: saturation %g, model %g", topo.Name(), service, got, want)
			}
			for _, rate := range []float64{0, 0.3 * m.SaturationRate(), 0.8 * m.SaturationRate()} {
				got, gok := c.AvgLatency(rate)
				want, wok := m.AvgLatency(rate)
				if gok != wok {
					t.Fatalf("%s/%s at %g: feasibility %v vs %v", topo.Name(), service, rate, gok, wok)
				}
				if gok && math.Abs(got-want) > 1e-9*(1+want) {
					t.Errorf("%s/%s at %g: latency %g, model %g", topo.Name(), service, rate, got, want)
				}
			}
		}
	}
}

func TestCompiledWithService(t *testing.T) {
	m := Model{Topo: noc.NewMesh3D(3, 3, 2), Traffic: noc.Uniform{}}
	c := m.Compile()
	rate := 0.5 * c.SaturationRate()
	md1Direct, _ := Model{Topo: m.Topo, Traffic: m.Traffic, Service: MD1}.Compile().AvgLatency(rate)
	md1Shared, _ := c.WithService(MD1).AvgLatency(rate)
	if md1Shared != md1Direct {
		t.Errorf("WithService(MD1) latency %g, direct compile %g", md1Shared, md1Direct)
	}
	// The original evaluator must be untouched.
	mm1, _ := c.AvgLatency(rate)
	if mm1 <= md1Shared {
		t.Errorf("M/M/1 latency %g not above M/D/1 %g", mm1, md1Shared)
	}
}

func TestCompiledVerticalCapacity(t *testing.T) {
	m := Model{Topo: noc.NewMesh3D(3, 3, 3), Traffic: noc.Uniform{}, VerticalCapacity: 2}
	c := m.Compile()
	if got, want := c.SaturationRate(), m.SaturationRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("vertical capacity: compiled saturation %g, model %g", got, want)
	}
}

func TestCompiledCurveDeterministic(t *testing.T) {
	// Two compilations of the same model must produce bit-identical
	// curves: sweep records depend on it.
	m := Model{Topo: noc.NewMesh3D(4, 4, 4), Traffic: noc.Uniform{}}
	rates := []float64{0.01, 0.1, 0.3, 0.5}
	a := m.Compile().LatencyCurve(rates)
	b := m.Compile().LatencyCurve(rates)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("curve point %d differs between compilations: %+v vs %+v", i, a[i], b[i])
		}
	}
}
