// Command sweepworker is one member of a distributed sweep fleet: it
// connects to a sweepd daemon running in -distributed mode, leases
// chunks of pending sweep jobs over HTTP, evaluates them with the
// in-binary sweep engine, and posts the records back for the daemon to
// persist and fold into job progress.
//
// Usage:
//
//	sweepworker -daemon http://host:8080 [-name id] [-poll 500ms] [-workers N]
//
// Scale-out is a deployment knob, not a correctness one: because every
// point's random sub-stream is a pure function of (sweep seed, point
// index), an N-worker fleet produces records byte-identical to a
// single-node run. Workers hold no state — killing one mid-chunk only
// delays that chunk until its lease expires and another worker (or a
// restarted one) picks it up.
//
// Workers serve both job kinds without configuration: grid-sweep
// leases name a scenario whose points the worker regenerates from its
// compiled-in registry, and optimizer leases carry the generation's
// bred design points explicitly (each with the global index that keys
// its sub-stream and cache address).
//
// Tracing rides along for free: a lease from a tracing daemon carries
// the job's trace ID, the worker stamps it (as X-Request-ID,
// X-Trace-ID and X-Parent-Span) on every heartbeat/complete/fail RPC
// for that lease — retries included, so one chunk is one request
// identity in the daemon's access log — and ships spans covering its
// lease-to-post and evaluation windows with the completion.
//
// The worker refuses to serve a daemon whose sweep.EngineVersion or
// scenario registry differs from its own build (exit 1): a mismatched
// worker could silently produce records the daemon's version would not
// reproduce.
//
// SIGINT or SIGTERM stops leasing and abandons the in-flight chunk; its
// lease expires at the daemon and the chunk is re-queued.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	daemon := flag.String("daemon", "http://localhost:8080", "base URL of the sweepd daemon")
	name := flag.String("name", "", "worker name in leases and the fleet view (default hostname-pid)")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle sleep between lease attempts")
	workers := flag.Int("workers", runtime.NumCPU(), "local evaluation pool per chunk")
	verbose := flag.Bool("v", false, "debug-level logs")
	flag.Parse()

	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, level)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	logger.Info("worker serving",
		"worker", *name, "daemon", *daemon, "eval_workers", *workers, "poll", *poll)
	// RunWorker stamps every line with the worker name, and each lease's
	// lines additionally carry lease_id and job_id — joinable against the
	// daemon's dispatcher logs.
	err := service.RunWorker(ctx, service.NewClient(*daemon), service.WorkerOptions{
		Name:    *name,
		Poll:    *poll,
		Workers: *workers,
		Logger:  logger,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "sweepworker:", err)
		os.Exit(1)
	}
	logger.Info("worker stopped", "worker", *name)
}
