package main

// Spec-file and daemon-submission support for 'sweep run' and
// 'sweep optimize': -spec points the command at a declarative JSON
// scenario spec (see docs/specs.md) instead of a registered name, and
// -daemon ships the same work to a running sweepd — which hands it to
// whatever worker fleet is leased in — instead of executing locally.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/fsio"
	"repro/internal/service"
	"repro/internal/spec"
)

// loadSpec reads and strictly parses a spec file, returning both the
// parsed document and the raw bytes (the daemon path submits the raw
// document so the daemon's own parser is the one that counts).
func loadSpec(path string) (*spec.Spec, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	sp, err := spec.Parse(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return sp, raw, nil
}

// flagWasSet reports whether the named flag was explicitly provided,
// distinguishing "defaulted" from "the user chose the default": a
// spec's own budget applies only when -budget was left alone.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// submitAndStream runs one job on a remote sweepd: submit, poll to a
// terminal state, then fetch the record stream (written to outPath when
// given). The records are byte-identical to a local run at the same
// seed and budget — the daemon and its workers share the engine.
func submitAndStream(base string, req service.Request, outPath string, timeout time.Duration) error {
	base = strings.TrimRight(base, "/")
	hc := &http.Client{Timeout: 60 * time.Second}

	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := hc.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var v service.JobView
	if resp.StatusCode != http.StatusAccepted {
		defer resp.Body.Close()
		return remoteError("submit", resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("submit: decoding response: %w", err)
	}
	what := v.Scenario
	if v.Spec != "" {
		what = fmt.Sprintf("%s (spec %q)", v.Scenario, v.Spec)
	}
	fmt.Printf("job %s accepted: %s %s, budget %s, seed %d\n", v.ID, v.Kind, what, v.Budget, v.Seed)

	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for !v.State.Terminal() {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %s (poll it with: sweep trace -daemon %s %s)",
				v.ID, v.State, timeout, base, v.ID)
		}
		time.Sleep(500 * time.Millisecond)
		if err := getJSONInto(base+"/api/v1/jobs/"+v.ID, &v); err != nil {
			return err
		}
	}
	if v.State != service.StateDone {
		return fmt.Errorf("job %s ended %s: %s", v.ID, v.State, v.Error)
	}
	fmt.Printf("job %s done: %d points (%d cached, %d computed)\n",
		v.ID, v.Progress.Total, v.Progress.Cached, v.Progress.Total-v.Progress.Cached)

	recResp, err := hc.Get(base + "/api/v1/jobs/" + v.ID + "/records")
	if err != nil {
		return err
	}
	defer recResp.Body.Close()
	if recResp.StatusCode != http.StatusOK {
		return remoteError("records", recResp)
	}
	if outPath == "" || outPath == "-" {
		_, err = io.Copy(os.Stdout, recResp.Body)
		return err
	}
	if err := fsio.WriteFileAtomic(outPath, func(f *os.File) error {
		_, err := io.Copy(f, recResp.Body)
		return err
	}); err != nil {
		return err
	}
	fmt.Println("wrote", outPath)
	return nil
}
