// Command ldpcsim simulates the paper's LDPC block and convolutional
// codes over BPSK/AWGN: single-point BER runs, required-Eb/N0 searches
// and the latency book-keeping of Eqs. 4-5.
//
// Examples:
//
//	ldpcsim -code cc -n 40 -window 5 -ebn0 3
//	ldpcsim -code bc -n 200 -search -target 1e-4
//	ldpcsim -code cc -n 60 -window 6 -alg minsum -ebn0 2.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ldpc"
)

func main() {
	var (
		codeKind = flag.String("code", "cc", "code family: cc (convolutional) or bc (block)")
		n        = flag.Int("n", 40, "lifting factor N")
		l        = flag.Int("l", 50, "termination length L (cc)")
		window   = flag.Int("window", 5, "window size W (cc; 0 decodes the full code)")
		algName  = flag.String("alg", "sumproduct", "decoder: sumproduct or minsum")
		maxIter  = flag.Int("iter", 50, "BP iterations (per window position if windowed)")
		ebn0     = flag.Float64("ebn0", 3, "Eb/N0 operating point in dB")
		search   = flag.Bool("search", false, "search the required Eb/N0 instead of one point")
		target   = flag.Float64("target", 1e-4, "target BER for -search")
		errs     = flag.Int("errors", 60, "bit errors to accumulate per point")
		maxCW    = flag.Int("maxcw", 20000, "codeword cap per point")
		seed     = flag.Uint64("seed", 1, "Monte-Carlo seed")
	)
	flag.Parse()

	var alg ldpc.Algorithm
	switch *algName {
	case "sumproduct":
		alg = ldpc.SumProduct
	case "minsum":
		alg = ldpc.MinSum
	default:
		fmt.Fprintf(os.Stderr, "ldpcsim: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	var code *ldpc.Code
	win := 0
	switch *codeKind {
	case "cc":
		code = ldpc.LiftConvolutional(ldpc.PaperSpreading(), *l, *n, 3)
		win = *window
		lat := ldpc.WindowLatencyBits(*window, *n, 2, 0.5)
		fmt.Printf("LDPC-CC N=%d L=%d (4,8)-regular, rate %.3f (design 0.5), W=%d -> TWD %.0f info bits\n",
			*n, *l, code.Rate(), *window, lat)
	case "bc":
		code = ldpc.Lift(ldpc.Regular48(), *n, 3)
		fmt.Printf("LDPC-BC N=%d (4,8)-regular, n=%d bits, TB %.0f info bits\n",
			*n, code.NumVars, ldpc.BlockLatencyBits(*n, 2, 0.5))
	default:
		fmt.Fprintf(os.Stderr, "ldpcsim: unknown code %q\n", *codeKind)
		os.Exit(2)
	}
	fmt.Printf("Tanner graph: %d vars, %d checks, %d edges, %d four-cycles; decoder %s\n",
		code.NumVars, code.NumChecks, code.NumEdges(), ldpc.Count4Cycles(code), alg)

	params := ldpc.BERParams{
		Code: code, Alg: alg, MaxIter: *maxIter, Window: win, Rate: 0.5,
		TargetBitErrors: *errs, MaxCodewords: *maxCW, Seed: *seed,
	}

	if *search {
		req := ldpc.RequiredEbN0(ldpc.SearchParams{
			BERParams: params,
			TargetBER: *target, LoDB: 0.5, HiDB: 8, TolDB: 0.1,
		})
		fmt.Printf("required Eb/N0 for BER %.0e: %.2f dB\n", *target, req)
		return
	}

	params.EbN0DB = *ebn0
	res := ldpc.SimulateBER(params)
	fmt.Printf("Eb/N0 %.2f dB: BER %.3e (%d errors in %d bits over %d codewords, %d frame errors)\n",
		*ebn0, res.BER, res.BitErrors, res.Bits, res.Codewords, res.FrameErrors)
}
