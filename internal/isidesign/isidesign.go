// Package isidesign implements the transmit-filter design strategies of
// the paper's Sec. III / Fig. 5 for the 1-bit oversampling receiver:
//
//	(a) Rect        — the ISI-free rectangular pulse (reference);
//	(b) Symbolwise  — ISI optimised for symbol-by-symbol detection, the
//	                  objective being the exact marginal information rate;
//	(c) Sequence    — ISI optimised for sequence estimation, the objective
//	                  being the simulation-based trellis information rate;
//	(d) Suboptimal  — a noise-independent design based purely on the
//	                  unique-detection property in the noise-free case.
//
// All searches are deterministic for a fixed Config.Seed.
package isidesign

import (
	"fmt"
	"math"

	"repro/internal/inforate"
	"repro/internal/modem"
	"repro/internal/numeric"
	"repro/internal/rng"
)

// Config parameterises a filter design run.
type Config struct {
	// Constellation is the symbol alphabet (the paper uses 4-ASK).
	Constellation modem.Constellation
	// OSF is the oversampling factor (5 in the paper — the smallest rate
	// that enables unique detection of regular 4-ASK).
	OSF int
	// SpanSymbols is the pulse length in symbol periods. The default is 2,
	// matching the paper's construction ("The ISI is represented by a
	// linear filter which can overlap with another symbol"); Fig. 5's
	// tau/T axis extends to [-1, 3] but the designed overlap is with the
	// neighbouring symbol. Larger spans are supported for ablation.
	SpanSymbols int
	// SNRdB is the design operating point (25 dB in Fig. 5 b/c).
	SNRdB float64
	// Seed drives the stochastic parts of the searches.
	Seed uint64
	// Sweeps bounds the coordinate-ascent passes (0 means 8).
	Sweeps int
	// SimSymbols is the sequence-rate simulation length per objective
	// evaluation (0 means 3000).
	SimSymbols int
	// UniqueDepth is the block-window length for the unique-detection
	// check (0 means SpanSymbols+1, i.e. a two-symbol decodable prefix).
	UniqueDepth int
}

func (c Config) defaults() Config {
	if c.Constellation.Size() == 0 {
		c.Constellation = modem.NewASK(4)
	}
	if c.OSF == 0 {
		c.OSF = 5
	}
	if c.SpanSymbols == 0 {
		c.SpanSymbols = 2
	}
	if c.SNRdB == 0 {
		c.SNRdB = 25
	}
	if c.Sweeps == 0 {
		c.Sweeps = 8
	}
	if c.SimSymbols == 0 {
		c.SimSymbols = 3000
	}
	if c.UniqueDepth == 0 {
		c.UniqueDepth = c.SpanSymbols + 1
	}
	return c
}

// Rect returns the ISI-free rectangular pulse (Fig. 5a).
func Rect(osf int) modem.Pulse { return modem.NewRect(osf) }

// Design bundles a designed pulse with the objective value it achieved.
type Design struct {
	Pulse modem.Pulse
	// Rate is the information rate (bpcu) of the design at the config's
	// SNR under its own target receiver.
	Rate float64
	// Strategy names the design for reports.
	Strategy string
}

// OptimizeSymbolwise searches a pulse that maximises the exact
// symbol-by-symbol information rate at the design SNR (Fig. 5b).
func OptimizeSymbolwise(cfg Config) Design {
	cfg = cfg.defaults()
	objective := func(taps []float64) float64 {
		p, ok := safePulse(taps, cfg.OSF)
		if !ok {
			return math.Inf(-1)
		}
		return inforate.SymbolwiseRate(inforate.NewTrellis(cfg.Constellation, p), cfg.SNRdB)
	}
	start := modem.NewRamp(cfg.OSF, cfg.SpanSymbols).Taps()
	taps, rate := numeric.CoordinateAscent(objective, start, numeric.CoordinateAscentOptions{
		Sweeps:      cfg.Sweeps,
		InitialStep: 0.25,
		MinStep:     1e-3,
	})
	p, _ := safePulse(taps, cfg.OSF)
	return Design{Pulse: p, Rate: rate, Strategy: "symbolwise-optimal"}
}

// OptimizeSequence searches a pulse that maximises the sequence-
// estimation information rate at the design SNR (Fig. 5c). The objective
// is the Arnold-Loeliger estimate with a fixed seed, making the search
// deterministic; the returned Rate is re-evaluated with a longer
// simulation for reporting.
func OptimizeSequence(cfg Config) Design {
	cfg = cfg.defaults()
	objective := func(taps []float64) float64 {
		p, ok := safePulse(taps, cfg.OSF)
		if !ok {
			return math.Inf(-1)
		}
		tr := inforate.NewTrellis(cfg.Constellation, p)
		return inforate.SequenceRate(tr, cfg.SNRdB, cfg.SimSymbols, cfg.Seed)
	}
	// Starting from the suboptimal (unique-detection) design gives the
	// search a point that already breaks the 1 bpcu ceiling. For
	// configurations without any uniquely detectable pulse (the paper
	// found none below 5-fold oversampling), fall back to the ramp.
	var start []float64
	if _, ok := findUniqueStart(cfg, rng.New(cfg.Seed)); ok {
		start = Suboptimal(cfg).Pulse.Taps()
	} else {
		start = modem.NewRamp(cfg.OSF, cfg.SpanSymbols).Taps()
	}
	taps, _ := numeric.CoordinateAscent(objective, start, numeric.CoordinateAscentOptions{
		Sweeps:      cfg.Sweeps,
		InitialStep: 0.2,
		MinStep:     2e-3,
	})
	p, _ := safePulse(taps, cfg.OSF)
	tr := inforate.NewTrellis(cfg.Constellation, p)
	rate := inforate.SequenceRate(tr, cfg.SNRdB, 4*cfg.SimSymbols, cfg.Seed+1)
	return Design{Pulse: p, Rate: rate, Strategy: "sequence-optimal"}
}

// Suboptimal returns the noise-independent design of Fig. 5d: it uses
// only the noise-free unique-detection property. Starting from a linear
// staircase it maximises the minimum noise-free sample magnitude (the
// detection margin) subject to the sequence mapping staying injective.
func Suboptimal(cfg Config) Design {
	cfg = cfg.defaults()
	stream := rng.New(cfg.Seed)

	start, ok := findUniqueStart(cfg, stream)
	if !ok {
		panic(fmt.Sprintf("isidesign: no uniquely detectable pulse found for OSF %d span %d"+
			" — the paper found 5-fold oversampling to be the smallest rate enabling unique detection",
			cfg.OSF, cfg.SpanSymbols))
	}

	// Maximise the noise-free margin subject to unique detection.
	objective := func(taps []float64) float64 {
		p, ok := safePulse(taps, cfg.OSF)
		if !ok {
			return math.Inf(-1)
		}
		tr := inforate.NewTrellis(cfg.Constellation, p)
		if !UniquelyDetectable(tr, cfg.UniqueDepth) {
			return math.Inf(-1)
		}
		return Margin(tr)
	}
	taps, _ := numeric.CoordinateAscent(objective, start.Taps(), numeric.CoordinateAscentOptions{
		Sweeps:      cfg.Sweeps,
		InitialStep: 0.15,
		MinStep:     1e-3,
	})
	p, _ := safePulse(taps, cfg.OSF)
	tr := inforate.NewTrellis(cfg.Constellation, p)
	rate := inforate.SequenceRate(tr, cfg.SNRdB, 4*cfg.SimSymbols, cfg.Seed+1)
	return Design{Pulse: p, Rate: rate, Strategy: "suboptimal (unique detection)"}
}

// findUniqueStart searches for a uniquely detectable pulse: the ramp if
// it happens to qualify, otherwise seeded random candidates. Unique
// detection is a measure-zero-avoiding property — random tap vectors
// qualify at a few-per-thousand rate for span 2 at 5-fold oversampling —
// but for some configurations (notably oversampling below 5, per the
// paper) no pulse qualifies at all, which the boolean reports.
func findUniqueStart(cfg Config, stream *rng.Stream) (modem.Pulse, bool) {
	isUnique := func(p modem.Pulse) bool {
		return UniquelyDetectable(inforate.NewTrellis(cfg.Constellation, p), cfg.UniqueDepth)
	}
	start := modem.NewRamp(cfg.OSF, cfg.SpanSymbols)
	for try := 0; !isUnique(start); try++ {
		if try >= 20000 {
			return modem.Pulse{}, false
		}
		taps := make([]float64, cfg.OSF*cfg.SpanSymbols)
		for i := range taps {
			taps[i] = stream.Norm()
		}
		if p, ok := safePulse(taps, cfg.OSF); ok {
			start = p
		}
	}
	return start, true
}

// HasUniquelyDetectablePulse reports whether the configuration admits
// any uniquely detectable pulse within the bounded search budget.
func HasUniquelyDetectablePulse(cfg Config) bool {
	cfg = cfg.defaults()
	_, ok := findUniqueStart(cfg, rng.New(cfg.Seed))
	return ok
}

// safePulse builds a unit-energy pulse from raw taps, reporting false for
// degenerate (near-zero) tap vectors instead of panicking, so optimisers
// can probe freely.
func safePulse(taps []float64, osf int) (modem.Pulse, bool) {
	var energy float64
	for _, t := range taps {
		energy += t * t
	}
	if energy < 1e-18 {
		return modem.Pulse{}, false
	}
	return modem.NewPulse(taps, osf), true
}

// Margin returns the minimum absolute noise-free sample amplitude over
// all trellis branches: the distance of the closest sample to the 1-bit
// decision threshold. Designs with larger margins survive more noise
// before their sign patterns corrupt.
func Margin(t *inforate.Trellis) float64 {
	min := math.Inf(1)
	for s := 0; s < t.NumStates(); s++ {
		for u := 0; u < t.AlphabetSize(); u++ {
			for _, v := range t.BranchAmps(s, u) {
				if a := math.Abs(v); a < min {
					min = a
				}
			}
		}
	}
	return min
}

// UniquelyDetectable reports whether the pulse has the paper's "unique
// detection property in the noise free case": from every initial trellis
// state, the noise-free 1-bit output pattern of `depth` consecutive
// blocks determines the leading depth-span+1 input symbols. Trailing
// symbols whose pulse response extends beyond the window are exempt — a
// sequence decoder resolves them from later blocks, and by induction
// prefix-injectivity from every state suffices for full decodability.
//
// Samples landing exactly on the quantiser threshold count as failures:
// they are not robustly detectable. depth must be at least the pulse
// span.
func UniquelyDetectable(t *inforate.Trellis, depth int) bool {
	if depth < t.Span() {
		panic(fmt.Sprintf("isidesign: unique-detection depth %d below pulse span %d", depth, t.Span()))
	}
	m, osf := t.AlphabetSize(), t.OSF()
	nSeq := 1
	for i := 0; i < depth; i++ {
		nSeq *= m
	}
	if depth*osf > 63 {
		panic("isidesign: unique-detection pattern exceeds 63 bits")
	}
	prefixLen := depth - t.Span() + 1
	prefixMod := 1
	for i := 0; i < prefixLen; i++ {
		prefixMod *= m
	}
	for s0 := 0; s0 < t.NumStates(); s0++ {
		// pattern -> prefix symbols that produced it.
		seen := make(map[uint64]int, nSeq)
		for seq := 0; seq < nSeq; seq++ {
			var pattern uint64
			var bit uint
			state := s0
			ss := seq
			for d := 0; d < depth; d++ {
				u := ss % m
				ss /= m
				for _, v := range t.BranchAmps(state, u) {
					if math.Abs(v) < 1e-9 {
						return false // threshold-riding sample
					}
					if v > 0 {
						pattern |= 1 << bit
					}
					bit++
				}
				state = t.Next(state, u)
			}
			prefix := seq % prefixMod
			if prev, dup := seen[pattern]; dup {
				if prev != prefix {
					return false // same signs, different leading symbols
				}
				continue
			}
			seen[pattern] = prefix
		}
	}
	return true
}
