// Package antenna models the beam-steering antenna arrays of the paper's
// board-to-board links: uniform linear and planar (4x4) arrays, ideal
// steering vectors, and the Butler-matrix beamforming network whose fixed
// beam grid costs up to 5 dB of pointing inaccuracy (Table I).
//
// Conventions: angles are in radians; theta is measured from the array
// broadside (boresight), so theta = 0 points straight at the opposite
// board. Gains are power gains in dB unless suffixed Linear.
package antenna

import (
	"fmt"
	"math"
	"math/cmplx"
)

// HornGainDB is the standard-gain horn used in the paper's VNA
// measurements (~10 dB nominal; 9.5 dB effective after phase-centre
// correction, Sec. II-A).
const HornGainDB = 9.5

// PlanarArray is a rectangular array of Nx x Ny isotropic elements with
// spacing Dx, Dy in wavelengths.
type PlanarArray struct {
	Nx, Ny int
	// Dx, Dy are the element spacings in wavelengths (0.5 = half-wave).
	Dx, Dy float64
}

// NewHalfWave4x4 returns the paper's 4x4 half-wavelength array: at a
// 230 GHz carrier the aperture fits in about 2 mm x 2 mm of interposer
// real estate.
func NewHalfWave4x4() PlanarArray {
	return PlanarArray{Nx: 4, Ny: 4, Dx: 0.5, Dy: 0.5}
}

// Elements returns the number of radiating elements.
func (a PlanarArray) Elements() int { return a.Nx * a.Ny }

// GainDB returns the ideal array gain 10 log10(N): 12 dB for 16 elements,
// matching Table I.
func (a PlanarArray) GainDB() float64 {
	return 10 * math.Log10(float64(a.Elements()))
}

// ApertureMM returns the physical aperture edge lengths in millimetres at
// the given carrier frequency.
func (a PlanarArray) ApertureMM(freqHz float64) (xMM, yMM float64) {
	lambdaMM := 299_792_458.0 / freqHz * 1e3
	return float64(a.Nx) * a.Dx * lambdaMM, float64(a.Ny) * a.Dy * lambdaMM
}

// SteeringVector returns the phase weights that point the main beam at
// direction (theta, phi): theta from broadside, phi the azimuth of the
// steering plane. The weights have unit magnitude per element.
func (a PlanarArray) SteeringVector(theta, phi float64) []complex128 {
	w := make([]complex128, a.Elements())
	u := math.Sin(theta) * math.Cos(phi)
	v := math.Sin(theta) * math.Sin(phi)
	idx := 0
	for iy := 0; iy < a.Ny; iy++ {
		for ix := 0; ix < a.Nx; ix++ {
			ph := -2 * math.Pi * (a.Dx*float64(ix)*u + a.Dy*float64(iy)*v)
			w[idx] = cmplx.Exp(complex(0, ph))
			idx++
		}
	}
	return w
}

// ArrayFactor returns the complex array factor for weights w evaluated in
// direction (theta, phi). It panics if len(w) does not match the array.
func (a PlanarArray) ArrayFactor(w []complex128, theta, phi float64) complex128 {
	if len(w) != a.Elements() {
		panic(fmt.Sprintf("antenna: weight length %d for %dx%d array", len(w), a.Nx, a.Ny))
	}
	u := math.Sin(theta) * math.Cos(phi)
	v := math.Sin(theta) * math.Sin(phi)
	var sum complex128
	idx := 0
	for iy := 0; iy < a.Ny; iy++ {
		for ix := 0; ix < a.Nx; ix++ {
			ph := 2 * math.Pi * (a.Dx*float64(ix)*u + a.Dy*float64(iy)*v)
			sum += w[idx] * cmplx.Exp(complex(0, ph))
			idx++
		}
	}
	return sum
}

// GainTowardDB returns the realised power gain (dB) of weights w in
// direction (theta, phi), relative to a single isotropic element, with
// the conventional 1/N normalisation so a perfectly steered beam achieves
// 10 log10(N).
func (a PlanarArray) GainTowardDB(w []complex128, theta, phi float64) float64 {
	af := cmplx.Abs(a.ArrayFactor(w, theta, phi))
	n := float64(a.Elements())
	g := af * af / n
	if g <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(g)
}

// SteeringLossDB returns the gain shortfall (dB, >= 0) of weights w in
// direction (theta, phi) relative to the ideal array gain.
func (a PlanarArray) SteeringLossDB(w []complex128, theta, phi float64) float64 {
	return a.GainDB() - a.GainTowardDB(w, theta, phi)
}
