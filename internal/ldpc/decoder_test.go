package ldpc

import (
	"testing"

	"repro/internal/rng"
)

func TestDecodeNoiselessAllZero(t *testing.T) {
	code := Lift(Regular48(), 25, 1)
	llr := make([]float64, code.NumVars)
	for i := range llr {
		llr[i] = 10 // strongly bit 0
	}
	for _, alg := range []Algorithm{SumProduct, MinSum} {
		res := NewDecoder(code, alg, 50).Decode(llr)
		if !res.Converged || res.Iterations != 1 {
			t.Errorf("%v: noiseless decode: converged=%v iters=%d", alg, res.Converged, res.Iterations)
		}
		for _, b := range res.Hard {
			if b != 0 {
				t.Fatalf("%v: noiseless decode flipped a bit", alg)
			}
		}
	}
}

func TestDecodeCorrectsErasuresAndFlips(t *testing.T) {
	code := Lift(Regular48(), 40, 3)
	llr := make([]float64, code.NumVars)
	for i := range llr {
		llr[i] = 6
	}
	// Erase a handful of bits and flip a couple.
	llr[3], llr[17], llr[40] = 0, 0, 0
	llr[5], llr[60] = -4, -3
	for _, alg := range []Algorithm{SumProduct, MinSum} {
		res := NewDecoder(code, alg, 50).Decode(llr)
		if !res.Converged {
			t.Errorf("%v: did not converge", alg)
		}
		for i, b := range res.Hard {
			if b != 0 {
				t.Fatalf("%v: residual error at bit %d", alg, i)
			}
		}
	}
}

func TestDecodePanicsOnBadLength(t *testing.T) {
	code := Lift(Regular48(), 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad LLR length did not panic")
		}
	}()
	NewDecoder(code, MinSum, 10).Decode(make([]float64, 3))
}

func TestAlgorithmStrings(t *testing.T) {
	if SumProduct.String() != "sum-product" || MinSum.String() != "normalised min-sum" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(9).String() != "unknown" {
		t.Error("unknown algorithm name wrong")
	}
}

func TestSumProductBeatsMinSumAtLowSNR(t *testing.T) {
	// The classic ordering: exact sum-product converges on more noisy
	// frames than normalised min-sum at the same Eb/N0.
	code := Lift(Regular48(), 40, 3)
	sigma := NoiseSigma(2.0, 0.5)
	scale := 2 / (sigma * sigma)

	frames, spOK, msOK := 120, 0, 0
	sp := NewDecoder(code, SumProduct, 60)
	ms := NewDecoder(code, MinSum, 60)
	llr := make([]float64, code.NumVars)
	for f := 0; f < frames; f++ {
		stream := rng.New(900).Split(uint64(f))
		for i := range llr {
			llr[i] = scale * (1 + sigma*stream.Norm())
		}
		if r := sp.Decode(llr); r.Converged && allZero(r.Hard) {
			spOK++
		}
		if r := ms.Decode(llr); r.Converged && allZero(r.Hard) {
			msOK++
		}
	}
	// Normalised min-sum with scale 0.8 tracks sum-product closely, so a
	// small statistical slack is allowed; a large gap in min-sum's favour
	// would indicate a broken tanh-rule implementation.
	if spOK < msOK-6 {
		t.Errorf("sum-product solved %d frames, min-sum %d — ordering violated", spOK, msOK)
	}
	if spOK == 0 {
		t.Error("sum-product solved no frames at 2 dB — decoder broken?")
	}
}

func allZero(bits []uint8) bool {
	for _, b := range bits {
		if b != 0 {
			return false
		}
	}
	return true
}

func TestPosteriorSignsMatchHard(t *testing.T) {
	code := Lift(Regular48(), 20, 2)
	dec := NewDecoder(code, SumProduct, 20)
	llr := make([]float64, code.NumVars)
	stream := rng.New(5)
	for i := range llr {
		llr[i] = 4 + stream.Norm()
	}
	res := dec.Decode(llr)
	for v, p := range dec.Posterior() {
		want := uint8(0)
		if p < 0 {
			want = 1
		}
		if res.Hard[v] != want {
			t.Fatalf("hard[%d] inconsistent with posterior", v)
		}
	}
}

func TestWindowDecoderAllZeroNoiseless(t *testing.T) {
	code := LiftConvolutional(PaperSpreading(), 12, 15, 2)
	wd := NewWindowDecoder(code, 4, MinSum, 20)
	llr := make([]float64, code.NumVars)
	for i := range llr {
		llr[i] = 8
	}
	out := wd.Decode(llr)
	if !allZero(out) {
		t.Error("window decoder corrupted a noiseless word")
	}
}

func TestWindowDecoderCorrectsNoise(t *testing.T) {
	code := LiftConvolutional(PaperSpreading(), 16, 25, 2)
	wd := NewWindowDecoder(code, 10, SumProduct, 40)
	sigma := NoiseSigma(3.5, code.Rate())
	scale := 2 / (sigma * sigma)
	llr := make([]float64, code.NumVars)
	errs := 0
	const frames = 20
	for f := 0; f < frames; f++ {
		stream := rng.New(31).Split(uint64(f))
		for i := range llr {
			llr[i] = scale * (1 + sigma*stream.Norm())
		}
		out := wd.Decode(llr)
		for _, b := range out {
			if b != 0 {
				errs++
			}
		}
	}
	ber := float64(errs) / float64(frames*code.NumVars)
	if ber > 1e-3 {
		t.Errorf("window decoder BER %.2g at 3.5 dB, want < 1e-3", ber)
	}
}

func TestWindowDecoderPanics(t *testing.T) {
	conv := LiftConvolutional(PaperSpreading(), 10, 10, 1)
	block := Lift(Regular48(), 10, 1)
	for name, fn := range map[string]func(){
		"blockCode": func() { NewWindowDecoder(block, 3, MinSum, 10) },
		"wTooSmall": func() { NewWindowDecoder(conv, 2, MinSum, 10) }, // mcc+1 = 3
		"wTooBig":   func() { NewWindowDecoder(conv, 11, MinSum, 10) },
		"badLLRLen": func() { NewWindowDecoder(conv, 4, MinSum, 10).Decode(make([]float64, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLargerWindowDecodesMoreNoise(t *testing.T) {
	// Fig. 10's driving effect: increasing W improves performance for
	// the same code. Compare bit errors at a stressed operating point.
	code := LiftConvolutional(PaperSpreading(), 20, 20, 4)
	sigma := NoiseSigma(2.2, code.Rate())
	scale := 2 / (sigma * sigma)

	countErrs := func(w int) int {
		wd := NewWindowDecoder(code, w, SumProduct, 40)
		llr := make([]float64, code.NumVars)
		errs := 0
		for f := 0; f < 30; f++ {
			stream := rng.New(77).Split(uint64(f))
			for i := range llr {
				llr[i] = scale * (1 + sigma*stream.Norm())
			}
			for _, b := range wd.Decode(llr) {
				if b != 0 {
					errs++
				}
			}
		}
		return errs
	}
	small, large := countErrs(3), countErrs(8)
	if large >= small {
		t.Errorf("W=8 errors (%d) not below W=3 errors (%d)", large, small)
	}
}

func TestLatencyFormulas(t *testing.T) {
	// Eq. 4 / Eq. 5 with the paper's example: N=40-class code at rate
	// 1/2 and nv=2: TWD = W*N, TB = N.
	if got := WindowLatencyBits(5, 40, 2, 0.5); got != 200 {
		t.Errorf("TWD = %g, want 200", got)
	}
	if got := BlockLatencyBits(400, 2, 0.5); got != 400 {
		t.Errorf("TB = %g, want 400", got)
	}
	// The paper's headline: LDPC-CC at Eb/N0 = 3 dB needs TWD = 200
	// info bits where the block code needs TB = 400 — the formulas place
	// W=5, N=40 CC at exactly half the N=400 block code's latency.
	if WindowLatencyBits(5, 40, 2, 0.5)*2 != BlockLatencyBits(400, 2, 0.5) {
		t.Error("latency relation broken")
	}
}
