// Package sweep is the design-space exploration engine of the
// repository: it turns the one-at-a-time core.DesignSystem workflow into
// named, reproducible scenario sweeps with structured results.
//
// The subsystem has four parts:
//
//   - A scenario registry (Register/Get/Names) of composable system
//     scenarios — the paper baseline, a dense datacenter rack, an
//     embedded box, a many-stack manycore, and a Butler-versus-steered
//     beamforming study — each generating a grid of core.SystemSpec
//     points.
//
//   - A parallel executor (Run, built on Map) that evaluates grid
//     points on a bounded worker pool sized by runtime.NumCPU(),
//     honours context cancellation, and derives one deterministic
//     rng sub-stream per point via rng.Stream.Split, so results are
//     byte-identical for any worker count.
//
//   - An adaptive Monte-Carlo budget controller (MeanEstimator and the
//     RelCI/DecisiveBER fields of ldpc.BERParams) that stops a point's
//     simulation early once its BER or latency confidence interval is
//     tight enough.
//
//   - Structured results: one typed Record per point with JSON and CSV
//     emitters, plus Pareto-front extraction over the three system
//     objectives (transmit power, decode latency, NoC saturation).
//
// cmd/sweep exposes the registry and executor on the command line;
// internal/experiments routes its figure grids through Map so the
// paper's curves parallelize the same way.
//
// Above the engine sits a serving layer, split in two. The store half
// (sweep/store) owns persistence: every evaluated point is addressed by
// PointKey — a canonical hash of (engine version, scenario, point,
// budget, seed) — and kept in append-only JSON-lines segments, so any
// rerun, crash recovery or budget upgrade reuses every point already
// computed anywhere. The service half (internal/service) owns
// scheduling: a priority FIFO queue and a bounded-concurrency job
// manager drive sweeps through Run with per-job cancellation and
// progress counters, reading through the shared store. The split keeps
// responsibilities disjoint — the store never runs a sweep and the
// service never touches disk — and lets cmd/sweep (one-shot CLI) and
// cmd/sweepd (HTTP daemon) share one cache via Config.Cache.
//
// The same purity that makes Map worker-count-independent makes sweeps
// machine-count-independent: a Chunk ([Start, End) of a scenario grid)
// plus (scenario name, budget name, seed) is everything a stateless
// process needs to reproduce those records exactly, because point i's
// sub-stream is rng.New(seed).Split(i+1) regardless of who evaluates
// it. EvaluateChunk is that contract as an API; the service layer's
// dispatcher and cmd/sweepworker build the distributed fleet on top,
// and an N-worker fleet's merged records are byte-identical to a
// single-node Run. See ARCHITECTURE.md for the full layer map.
package sweep
