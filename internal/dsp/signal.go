package dsp

import "math"

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1). For short kernels it uses the direct method.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// CrossCorrelate returns the cross-correlation r[k] = sum_n a[n]*b[n+k]
// for k in [-(len(b)-1), len(a)-1], as a slice indexed from lag
// -(len(b)-1). The zero lag is at index len(b)-1.
func CrossCorrelate(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	rev := make([]float64, len(b))
	for i, v := range b {
		rev[len(b)-1-i] = v
	}
	return Convolve(a, rev)
}

// Upsample inserts factor-1 zeros between samples.
// factor must be >= 1.
func Upsample(x []float64, factor int) []float64 {
	if factor < 1 {
		panic("dsp: upsample factor must be >= 1")
	}
	out := make([]float64, len(x)*factor)
	for i, v := range x {
		out[i*factor] = v
	}
	return out
}

// Energy returns the sum of squares of x.
func Energy(x []float64) float64 {
	var e float64
	for _, v := range x {
		e += v * v
	}
	return e
}

// NormalizeEnergy scales x in place to unit energy and returns the
// scaling factor applied. A zero signal is returned unchanged with
// factor 0.
func NormalizeEnergy(x []float64) float64 {
	e := Energy(x)
	if e == 0 {
		return 0
	}
	s := 1 / math.Sqrt(e)
	for i := range x {
		x[i] *= s
	}
	return s
}

// Sinc is the normalised sinc function sin(pi x)/(pi x).
func Sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// RaisedCosine evaluates the raised-cosine pulse with roll-off beta at
// time t (in symbol periods). beta in [0, 1].
func RaisedCosine(t, beta float64) float64 {
	if beta < 0 || beta > 1 {
		panic("dsp: raised-cosine roll-off must be in [0,1]")
	}
	if beta > 0 {
		if denomZero := math.Abs(2 * beta * t); math.Abs(denomZero-1) < 1e-12 {
			// Removable singularity at t = +-1/(2 beta).
			return math.Pi / 4 * Sinc(1/(2*beta))
		}
	}
	return Sinc(t) * math.Cos(math.Pi*beta*t) / (1 - 4*beta*beta*t*t)
}

// MaxAbs returns the maximum absolute value in x (0 for empty input).
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the index of the largest element of x (-1 for empty).
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}
