// Quickstart: design a complete wireless board-to-board interconnect
// with one call and print the resulting plan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// The paper's running example: four 10cm x 10cm boards stacked
	// 100 mm apart, nine chip-stack nodes per board, 100 Gbit/s wireless
	// links, a 200-information-bit decoding latency budget, and a
	// 64-module 3D NiCS inside every chip-stack.
	spec := core.DefaultSpec()

	design, err := core.DesignSystem(spec)
	if err != nil {
		log.Fatalf("design failed: %v", err)
	}
	fmt.Print(design.Report())

	fmt.Printf("\nsystem totals: %d wireless nodes, worst-case PA output %.1f dBm\n",
		design.TotalNodes(), design.WorstTxPowerDBm())

	// Tighten the latency budget and watch the code adapt — the window
	// size is a pure decoder-side knob (Sec. V), so this needs no change
	// at the transmitter.
	spec.LatencyBudgetBits = 100
	tight, err := core.DesignSystem(spec)
	if err != nil {
		log.Fatalf("tight design failed: %v", err)
	}
	fmt.Printf("with a 100-bit latency budget the code becomes N=%d W=%d (%.0f bits)\n",
		tight.Code.Lifting, tight.Code.Window, tight.Code.LatencyBits)
}
