// Package core composes the paper's four building blocks into its actual
// proposal: a multi-board electronic system whose backplane is replaced
// by direct wireless board-to-board links between 3D chip-stacks.
//
//   - Sec. II  (channel + link budget)  -> link planning and TX power
//   - Sec. III (1-bit oversampling)     -> energy-efficient PHY choice
//   - Sec. IV  (3D NiCS)                -> the network inside each stack
//   - Sec. V   (LDPC-CC window decoder) -> latency-constrained coding
//
// DesignSystem takes a system specification (boards, nodes, traffic,
// latency budget) and returns a complete, explainable design: per-link
// transmit powers, the receiver architecture, the code and window size,
// and the intra-stack NoC topology with its predicted latency.
package core

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/channel"
	"repro/internal/ldpc"
	"repro/internal/linkbudget"
	"repro/internal/noc"
	"repro/internal/noc/analytic"
	"repro/internal/units"
)

// SystemSpec describes the system to interconnect.
type SystemSpec struct {
	// Boards is the number of parallel boards in the box (the paper
	// pictures 4-5 boards per litre).
	Boards int
	// BoardSpacingM separates adjacent boards (0.1 m in Table I).
	BoardSpacingM float64
	// BoardEdgeM is the square board edge (0.1 m, "10cm x 10cm").
	BoardEdgeM float64
	// NodesPerBoard is the number of chip-stack nodes per board; nodes
	// are assumed spread over the board, so the worst diagonal link
	// spans the full board edge.
	NodesPerBoard int
	// LinkRateGbps is the target data rate per wireless link
	// (100 Gbit/s in the paper).
	LinkRateGbps float64
	// LatencyBudgetBits bounds the structural decoding latency of the
	// error-correction stage in information bits (Eq. 4).
	LatencyBudgetBits int
	// StackModules is the number of processing modules inside each 3D
	// chip-stack's NiCS.
	StackModules int
	// StackInjectionRate is the per-module NoC load in
	// flits/cycle/module used to evaluate topologies.
	StackInjectionRate float64
	// Butler selects the Butler-matrix beamforming realisation (cheaper
	// hardware, 5 dB worst-case direction mismatch) over full beam
	// steering.
	Butler bool
	// SNRMarginDB is added on top of the Shannon-derived SNR requirement
	// to cover coding gap and ageing (default 3 dB).
	SNRMarginDB float64

	// The optional sections below extend the paper's running example to
	// user-declared scenario families. They are pointers with omitempty
	// tags on purpose: a nil section marshals to exactly the bytes the
	// pre-section SystemSpec produced, so every content-addressed
	// PointKey minted before these fields existed stays valid.

	// Traffic selects the NoC traffic pattern offered to each stack's
	// network. Nil means the paper's uniform traffic.
	Traffic *TrafficSpec `json:"traffic,omitempty"`
	// Interference models co-channel interference from neighbouring
	// board-to-board links via the measured echo environment. Nil means
	// an interference-free link budget.
	Interference *InterferenceSpec `json:"interference,omitempty"`
	// Power imposes hard power ceilings on the wireless plan. Nil means
	// unconstrained.
	Power *PowerSpec `json:"power,omitempty"`
}

// TrafficSpec selects the traffic pattern evaluated inside each stack's
// NiCS, both by the analytic topology chooser and the cycle simulator.
type TrafficSpec struct {
	// Pattern names the noc traffic model: "uniform", "hotspot" or
	// "bit-complement". Empty means "uniform".
	Pattern string `json:"pattern"`
	// HotspotModule is the hot destination module for "hotspot".
	HotspotModule int `json:"hotspot_module"`
	// HotspotFraction in [0, 1] is the share of every module's traffic
	// addressed to the hot module.
	HotspotFraction float64 `json:"hotspot_fraction"`
}

// Traffic pattern names accepted by TrafficSpec.Pattern.
const (
	TrafficUniform       = "uniform"
	TrafficHotspot       = "hotspot"
	TrafficBitComplement = "bit-complement"
)

// NoCPattern returns the noc.TrafficPattern the section describes.
// A nil receiver or empty pattern is the paper's uniform traffic.
func (t *TrafficSpec) NoCPattern() noc.TrafficPattern {
	if t == nil {
		return noc.Uniform{}
	}
	switch t.Pattern {
	case "", TrafficUniform:
		return noc.Uniform{}
	case TrafficHotspot:
		return noc.Hotspot{Module: t.HotspotModule, Fraction: t.HotspotFraction}
	case TrafficBitComplement:
		return noc.BitComplement{}
	}
	panic(fmt.Sprintf("core: unknown traffic pattern %q (Validate should have rejected it)", t.Pattern))
}

// validate checks the traffic section against the stack size.
func (t *TrafficSpec) validate(stackModules int) error {
	switch t.Pattern {
	case "", TrafficUniform, TrafficBitComplement:
	case TrafficHotspot:
		if t.HotspotFraction < 0 || t.HotspotFraction > 1 {
			return fmt.Errorf("core: hotspot fraction %g outside [0, 1]", t.HotspotFraction)
		}
		if t.HotspotModule < 0 || t.HotspotModule >= stackModules {
			return fmt.Errorf("core: hotspot module %d outside the %d-module stack", t.HotspotModule, stackModules)
		}
	default:
		return fmt.Errorf("core: unknown traffic pattern %q (want %s, %s or %s)",
			t.Pattern, TrafficUniform, TrafficHotspot, TrafficBitComplement)
	}
	return nil
}

// InterferenceSpec models co-channel interference from neighbouring
// wireless links reusing the band. Each interferer couples in through
// the worst multipath echo of the measured Sec. II channel (the copper
// board reverberation when CopperBoards is set), attenuated by any
// extra rejection the receiver achieves (beam nulling, polarisation
// reuse). The link budget then plans transmit power against the
// resulting SINR instead of the thermal-noise-only SNR; a design whose
// required SINR cannot be reached at any power is interference-limited
// and infeasible.
type InterferenceSpec struct {
	// Neighbors is the number of equal-power co-channel interfering
	// links coupling into each receiver.
	Neighbors int `json:"neighbors"`
	// CopperBoards selects the worst-case echo environment of the
	// paper's copper-board measurements for the coupling path.
	CopperBoards bool `json:"copper_boards"`
	// RejectionDB is extra per-interferer rejection in dB on top of the
	// propagation discrimination (≥ 0).
	RejectionDB float64 `json:"rejection_db"`
}

// validate checks the interference section.
func (i *InterferenceSpec) validate() error {
	switch {
	case i.Neighbors < 0:
		return fmt.Errorf("core: interference neighbors %d must be >= 0", i.Neighbors)
	case i.RejectionDB < 0:
		return fmt.Errorf("core: interference rejection %g dB must be >= 0", i.RejectionDB)
	}
	return nil
}

// PowerSpec imposes hard power ceilings on the wireless plan — the
// thermally constrained stack family, where a 3D chip-stack cannot
// dissipate arbitrary RF power.
type PowerSpec struct {
	// MaxTxPowerDBm caps the per-link transmit power. A plan whose
	// worst link needs more is infeasible.
	MaxTxPowerDBm float64 `json:"max_tx_power_dbm"`
}

// Validate checks the specification for contradictions.
func (s SystemSpec) Validate() error {
	switch {
	case s.Boards < 1:
		return fmt.Errorf("core: need at least one board, got %d", s.Boards)
	case s.BoardSpacingM <= 0:
		return fmt.Errorf("core: board spacing %g m must be positive", s.BoardSpacingM)
	case s.BoardEdgeM <= 0:
		return fmt.Errorf("core: board edge %g m must be positive", s.BoardEdgeM)
	case s.NodesPerBoard < 1:
		return fmt.Errorf("core: need at least one node per board, got %d", s.NodesPerBoard)
	case s.LinkRateGbps <= 0:
		return fmt.Errorf("core: link rate %g Gbit/s must be positive", s.LinkRateGbps)
	case s.LatencyBudgetBits < 75:
		return fmt.Errorf("core: latency budget %d bits below the smallest window decoder (75)", s.LatencyBudgetBits)
	case s.StackModules < 2:
		return fmt.Errorf("core: a NiCS needs at least 2 modules, got %d", s.StackModules)
	case s.StackInjectionRate <= 0:
		return fmt.Errorf("core: stack injection rate must be positive")
	}
	if s.Traffic != nil {
		if err := s.Traffic.validate(s.StackModules); err != nil {
			return err
		}
	}
	if s.Interference != nil {
		if err := s.Interference.validate(); err != nil {
			return err
		}
	}
	return nil
}

// DefaultSpec returns the paper's running example: 4 boards of
// 10cm x 10cm at 100 mm spacing, 100 Gbit/s links, 64-module stacks.
func DefaultSpec() SystemSpec {
	return SystemSpec{
		Boards:             4,
		BoardSpacingM:      0.1,
		BoardEdgeM:         0.1,
		NodesPerBoard:      9,
		LinkRateGbps:       100,
		LatencyBudgetBits:  200,
		StackModules:       64,
		StackInjectionRate: 0.1,
		Butler:             true,
		SNRMarginDB:        3,
	}
}

// LinkPlan is the wireless plan for one link class.
type LinkPlan struct {
	// Name labels the class ("ahead", "diagonal").
	Name string
	// DistanceM is the link length.
	DistanceM float64
	// TargetSNRdB at the receiver.
	TargetSNRdB float64
	// TxPowerDBm required to close the link.
	TxPowerDBm float64
	// Butler reports whether the Butler penalty applies.
	Butler bool
}

// CodePlan is the chosen error-correction configuration.
type CodePlan struct {
	// Lifting N and Window W of the LDPC-CC.
	Lifting, Window int
	// LatencyBits is TWD of Eq. 4.
	LatencyBits float64
	// Rate is the asymptotic code rate.
	Rate float64
	// BlockCodeLatencyBits is what an LDPC-BC would need for comparable
	// strength (the Fig. 10 trade), taken as 2x the window latency per
	// the paper's 3 dB operating example.
	BlockCodeLatencyBits float64
}

// StackPlan is the chosen intra-stack network.
type StackPlan struct {
	// Topology is the winning NiCS mesh.
	Topology *noc.Mesh
	// LatencyCycles is the analytic mean packet latency at the specified
	// injection rate.
	LatencyCycles float64
	// SaturationRate is the topology's throughput limit.
	SaturationRate float64
	// Alternatives lists the evaluated contenders for the report.
	Alternatives []StackAlternative
}

// StackAlternative records one evaluated topology.
type StackAlternative struct {
	Name           string
	LatencyCycles  float64
	SaturationRate float64
	Feasible       bool
}

// Design is the complete system design.
type Design struct {
	Spec   SystemSpec
	Budget linkbudget.Budget
	// SpectralEfficiency is the required bit/s/Hz per polarisation.
	SpectralEfficiency float64
	Links              []LinkPlan
	Code               CodePlan
	Stack              StackPlan
}

// DesignSystem runs the full design pipeline.
func DesignSystem(spec SystemSpec) (*Design, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.SNRMarginDB == 0 {
		spec.SNRMarginDB = 3
	}
	d := &Design{Spec: spec, Budget: linkbudget.TableI()}
	d.Budget.ShortestLinkM = spec.BoardSpacingM
	longest := math.Sqrt(spec.BoardSpacingM*spec.BoardSpacingM + 2*spec.BoardEdgeM*spec.BoardEdgeM)
	d.Budget.LongestLinkM = longest

	// Required SNR from the rate target: dual polarisation over the
	// Table I bandwidth, Shannon plus margin.
	perPol := spec.LinkRateGbps * 1e9 / 2 / d.Budget.BandwidthHz
	d.SpectralEfficiency = perPol
	targetSNR := units.DB(math.Pow(2, perPol)-1) + spec.SNRMarginDB

	d.Links = []LinkPlan{
		{
			Name:        "ahead",
			DistanceM:   spec.BoardSpacingM,
			TargetSNRdB: targetSNR,
			TxPowerDBm:  d.Budget.RequiredTxPowerDBm(spec.BoardSpacingM, targetSNR, false),
		},
		{
			Name:        "diagonal",
			DistanceM:   longest,
			TargetSNRdB: targetSNR,
			Butler:      spec.Butler,
			TxPowerDBm:  d.Budget.RequiredTxPowerDBm(longest, targetSNR, spec.Butler),
		},
	}
	if spec.Interference != nil {
		for i := range d.Links {
			penalty, err := interferencePenaltyDB(spec, d.Budget.FreqHz, d.Links[i], targetSNR)
			if err != nil {
				return nil, err
			}
			d.Links[i].TxPowerDBm += penalty
		}
	}
	if spec.Power != nil {
		for _, l := range d.Links {
			if l.TxPowerDBm > spec.Power.MaxTxPowerDBm {
				return nil, fmt.Errorf("core: %s link needs %.1f dBm, exceeding the %.1f dBm power cap",
					l.Name, l.TxPowerDBm, spec.Power.MaxTxPowerDBm)
			}
		}
	}

	var err error
	d.Code, err = chooseCode(spec.LatencyBudgetBits)
	if err != nil {
		return nil, err
	}
	d.Stack, err = chooseStack(spec.StackModules, spec.StackInjectionRate, spec.Traffic.NoCPattern())
	if err != nil {
		return nil, err
	}
	return d, nil
}

// interferencePenaltyDB converts the SNR-only power plan into an
// SINR-aware one. Each of the Neighbors interfering links couples into
// the receiver through the scenario's strongest echo path (relative
// level WorstEchoRelativeDB, further attenuated by RejectionDB), and
// interferers run at the same power class as the victim, so the
// carrier-to-interference ratio is power-independent: raising transmit
// power raises interference proportionally. Requiring
// S/(N + iRel*S) >= s therefore costs an extra -10*log10(1 - s*iRel)
// dB over the noise-only plan, and once s*iRel >= 1 no transmit power
// closes the link — the design is interference-limited.
func interferencePenaltyDB(spec SystemSpec, freqHz float64, link LinkPlan, targetSNRdB float64) (float64, error) {
	inf := spec.Interference
	if inf.Neighbors == 0 {
		return 0, nil
	}
	var sc channel.Scenario
	if link.DistanceM > spec.BoardSpacingM {
		// Diagonal links: rotated boards with the paper's residual
		// misalignment model.
		sc = channel.DiagonalScenario(link.DistanceM, spec.BoardSpacingM, inf.CopperBoards)
	} else {
		sc = channel.Scenario{
			LinkDistM:    link.DistanceM,
			CopperBoards: inf.CopperBoards,
			TXGainDB:     channel.HornGainDB,
			RXGainDB:     channel.HornGainDB,
		}
	}
	echoDB := sc.WorstEchoRelativeDB(freqHz)
	perInterferer := math.Pow(10, (echoDB-inf.RejectionDB)/10)
	iRel := float64(inf.Neighbors) * perInterferer
	s := math.Pow(10, targetSNRdB/10)
	if s*iRel >= 1 {
		return 0, fmt.Errorf("core: %s link is interference-limited: %d neighbours at %.1f dB coupling leave SINR %.1f dB unreachable",
			link.Name, inf.Neighbors, echoDB-inf.RejectionDB, targetSNRdB)
	}
	return -10 * math.Log10(1-s*iRel), nil
}

// chooseCode picks the (N, W) pair of the paper's code family whose
// structural latency fits the budget, following the shape of Fig. 10:
// performance improves with the spent latency W*N, the minimum window
// W = mcc+1 is a last resort (its curves sit far right of the others),
// and at equal spent latency a larger lifting factor (longer constraint
// length) wins.
func chooseCode(budgetBits int) (CodePlan, error) {
	spreading := ldpc.PaperSpreading()
	rate := 0.5
	nv := 2
	minW := spreading.Memory() + 1

	type cand struct {
		n, w int
		lat  float64
	}
	better := func(a, b cand) bool { // is a better than b
		aHealthy, bHealthy := a.w > minW, b.w > minW
		if aHealthy != bHealthy {
			return aHealthy
		}
		if a.lat != b.lat {
			return a.lat > b.lat // spend the budget
		}
		return a.n > b.n // longer constraint length
	}

	var best cand
	found := false
	for _, n := range []int{25, 40, 60} {
		for w := minW; w <= 8; w++ {
			lat := ldpc.WindowLatencyBits(w, n, nv, rate)
			if lat > float64(budgetBits) {
				break
			}
			c := cand{n: n, w: w, lat: lat}
			if !found || better(c, best) {
				best = c
				found = true
			}
		}
	}
	if !found {
		return CodePlan{}, fmt.Errorf("core: no LDPC-CC configuration fits %d bits (minimum is W=3, N=25: 75 bits)", budgetBits)
	}
	return CodePlan{
		Lifting: best.n, Window: best.w,
		LatencyBits:          best.lat,
		Rate:                 rate,
		BlockCodeLatencyBits: 2 * best.lat,
	}, nil
}

// stackCandidate is one compiled topology contender: the mesh, its
// frozen evaluator and its (injection-independent) saturation rate.
type stackCandidate struct {
	topo  *noc.Mesh
	model *analytic.Compiled
	sat   float64
}

// stackCacheKey identifies one compiled candidate set: the traffic
// pattern participates because the analytic model's channel loads — and
// therefore latency and saturation — are pattern-dependent. Pattern
// String() values are injective over the supported patterns (hotspot
// prints its module and fraction), so equal keys mean equal models.
type stackCacheKey struct {
	modules int
	traffic string
}

// stackCache memoises compiled candidate topologies per (module count,
// traffic pattern). Compiling a mesh costs O(routers^2 x hops) —
// profiles put it at essentially 100% of an analytic sweep — while a
// design point only needs one O(channels) latency evaluation per
// candidate, and sweep grids revisit the same handful of module counts
// for every point. Mesh and Compiled are immutable and safe to share
// across sweep workers, and candidate construction is deterministic, so
// cached and freshly built candidates are indistinguishable; a bounded
// FIFO keeps an optimizer walking a wide StackModules range from
// pinning hundreds of large compiled meshes in memory.
var stackCache = struct {
	sync.Mutex
	entries map[stackCacheKey][]stackCandidate
	order   []stackCacheKey
}{entries: map[stackCacheKey][]stackCandidate{}}

// stackCacheCap bounds the cached module counts; scenario grids use a
// handful, and one 512-module entry is a few MB.
const stackCacheCap = 32

// compiledCandidates returns the compiled topology contenders for the
// module count under the traffic pattern, building and caching them on
// first request.
func compiledCandidates(modules int, traffic noc.TrafficPattern) []stackCandidate {
	key := stackCacheKey{modules: modules, traffic: traffic.String()}
	stackCache.Lock()
	if c, ok := stackCache.entries[key]; ok {
		stackCache.Unlock()
		return c
	}
	stackCache.Unlock()

	// Build outside the lock: compilation is the expensive part, and two
	// workers racing on the same module count produce identical
	// candidates, so the second insert is a harmless overwrite.
	var cands []stackCandidate
	for _, topo := range candidateTopologies(modules) {
		model := analytic.Model{Topo: topo, Traffic: traffic}.Compile()
		cands = append(cands, stackCandidate{topo: topo, model: model, sat: model.SaturationRate()})
	}

	stackCache.Lock()
	if _, dup := stackCache.entries[key]; !dup {
		stackCache.entries[key] = cands
		stackCache.order = append(stackCache.order, key)
		if len(stackCache.order) > stackCacheCap {
			evict := stackCache.order[0]
			stackCache.order = stackCache.order[1:]
			delete(stackCache.entries, evict)
		}
	}
	stackCache.Unlock()
	return cands
}

// chooseStack evaluates the Fig. 7 topology types for the module count
// and picks the lowest-latency feasible one at the given load under the
// given traffic pattern.
func chooseStack(modules int, injection float64, traffic noc.TrafficPattern) (StackPlan, error) {
	var alts []StackAlternative
	var bestMesh *noc.Mesh
	bestLat := math.Inf(1)
	var bestSat float64

	for _, cand := range compiledCandidates(modules, traffic) {
		lat, ok := cand.model.AvgLatency(injection)
		alts = append(alts, StackAlternative{
			Name:           cand.topo.Name(),
			LatencyCycles:  lat,
			SaturationRate: cand.sat,
			Feasible:       ok,
		})
		if ok && lat < bestLat {
			bestMesh, bestLat, bestSat = cand.topo, lat, cand.sat
		}
	}
	if bestMesh == nil {
		return StackPlan{Alternatives: alts},
			fmt.Errorf("core: no topology sustains %.2f flits/cycle/module for %d modules", injection, modules)
	}
	return StackPlan{
		Topology:       bestMesh,
		LatencyCycles:  bestLat,
		SaturationRate: bestSat,
		Alternatives:   alts,
	}, nil
}

// candidateTopologies proposes meshes of the Fig. 7 types with module
// counts matching the request (rounding the grid up where needed).
func candidateTopologies(modules int) []*noc.Mesh {
	var out []*noc.Mesh
	// 2D mesh, near-square.
	w := int(math.Ceil(math.Sqrt(float64(modules))))
	h := (modules + w - 1) / w
	out = append(out, noc.NewMesh2D(w, h))
	// Star-mesh with concentration 4.
	if modules >= 4 {
		sw := int(math.Ceil(math.Sqrt(float64(modules) / 4)))
		sh := (modules/4 + sw - 1) / sw
		if sw >= 1 && sh >= 1 {
			out = append(out, noc.NewStarMesh(sw, sh, 4))
		}
	}
	// 3D mesh, near-cubic.
	c := int(math.Ceil(math.Cbrt(float64(modules))))
	cz := (modules + c*c - 1) / (c * c)
	if cz >= 2 {
		out = append(out, noc.NewMesh3D(c, c, cz))
		// Ciliated 3D mesh with concentration 2.
		if modules >= 8 && modules%2 == 0 {
			h := int(math.Ceil(math.Cbrt(float64(modules) / 2)))
			hz := (modules/2 + h*h - 1) / (h * h)
			if hz >= 2 {
				out = append(out, noc.NewCiliated3D(h, h, hz, 2))
			}
		}
	}
	return out
}

// TotalNodes returns the number of wireless nodes in the system.
func (d *Design) TotalNodes() int { return d.Spec.Boards * d.Spec.NodesPerBoard }

// WorstTxPowerDBm returns the largest required transmit power.
func (d *Design) WorstTxPowerDBm() float64 {
	worst := math.Inf(-1)
	for _, l := range d.Links {
		if l.TxPowerDBm > worst {
			worst = l.TxPowerDBm
		}
	}
	return worst
}

// Report renders a human-readable design summary.
func (d *Design) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Wireless backplane design (%d boards x %d nodes, %g Gbit/s links)\n",
		d.Spec.Boards, d.Spec.NodesPerBoard, d.Spec.LinkRateGbps)
	fmt.Fprintf(&sb, "  carrier %s, bandwidth %s, dual polarisation, %.2f bit/s/Hz/pol\n",
		units.FormatHz(d.Budget.FreqHz), units.FormatHz(d.Budget.BandwidthHz), d.SpectralEfficiency)
	for _, l := range d.Links {
		flag := ""
		if l.Butler {
			flag = " (butler worst case)"
		}
		fmt.Fprintf(&sb, "  link %-9s %.0f mm: target SNR %5.1f dB -> PTX %6.1f dBm%s\n",
			l.Name, l.DistanceM*1e3, l.TargetSNRdB, l.TxPowerDBm, flag)
	}
	fmt.Fprintf(&sb, "  code: (4,8) LDPC-CC N=%d W=%d, latency %.0f info bits (block code: %.0f)\n",
		d.Code.Lifting, d.Code.Window, d.Code.LatencyBits, d.Code.BlockCodeLatencyBits)
	fmt.Fprintf(&sb, "  stack NoC: %s, mean latency %.1f cycles, saturation %.2f flits/cycle/module\n",
		d.Stack.Topology.Name(), d.Stack.LatencyCycles, d.Stack.SaturationRate)
	for _, a := range d.Stack.Alternatives {
		status := "ok"
		if !a.Feasible {
			status = "saturated"
		}
		fmt.Fprintf(&sb, "    candidate %-30s latency %6.1f  sat %.2f  [%s]\n",
			a.Name, a.LatencyCycles, a.SaturationRate, status)
	}
	return sb.String()
}

// PathlossModelForSpec returns the measured-channel pathloss model used
// by the design, for callers that want raw channel numbers.
func PathlossModelForSpec(spec SystemSpec) channel.Pathloss {
	return channel.NewFreespacePathloss(232.5e9, 0.1)
}
