package search

import (
	"context"
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/sweep"
)

// gaSplitTag separates the genetic operators' random branch from the
// evaluator's per-point branch: point sub-streams are
// rng.New(seed).Split(index+1) with small indices, the GA root is
// rng.New(seed).Split(gaSplitTag) with a tag no evaluation count
// reaches.
const gaSplitTag = 0x6f7074_5f67_6100

// Evaluator evaluates one generation's design points and returns their
// records in slice order plus how many came from a cache. gen is the
// generation number; every point arrives with a globally unique Index
// (generation*population + position), which the evaluator must feed to
// the engine unchanged — it keys both the point's random sub-stream and
// its content address. The in-process default wraps
// sweep.EvaluatePoints; the service's distributed mode chunks the
// points over the worker fleet instead.
type Evaluator func(ctx context.Context, gen int, pts []sweep.Point) (recs []sweep.Record, cached int, err error)

// Options parameterises one optimization run.
type Options struct {
	// Space is the parameter region to search.
	Space Space
	// Objectives are the axes of the Pareto front (nil or empty selects
	// DefaultObjectives).
	Objectives []Objective
	// Seed roots every random decision of the run.
	Seed uint64
	// Generations is how many generations are evaluated, the random
	// initial population included (default 10).
	Generations int
	// Population is the number of individuals per generation; it must be
	// even so crossover pairs tile it exactly (default 24).
	Population int
	// Budget is the per-point Monte-Carlo effort (zero value = analytic).
	Budget sweep.Budget
	// Workers bounds the in-process evaluation pool (0 = NumCPU). The
	// result is byte-identical for every value.
	Workers int
	// Cache, when non-nil, is consulted before evaluating each point and
	// filled after, exactly as in grid sweeps. Ignored when Evaluate is
	// set — a custom evaluator owns its caching.
	Cache sweep.Cache
	// Evaluate replaces the in-process evaluator (nil = evaluate through
	// sweep.EvaluatePoints with the options above).
	Evaluate Evaluator
	// OnGeneration, when non-nil, observes each generation's summary as
	// soon as its selection finishes, in generation order.
	OnGeneration func(Generation)
	// Feasible, when non-nil, adds user-spec constraints to the ranking:
	// individuals whose records fail it are treated like evaluation
	// failures (dominated by every feasible one, excluded from the final
	// front). It never changes record bytes or cache keys.
	Feasible func(sweep.Record) bool
}

// Normalize fills defaults (objectives, generations, population,
// budget) and validates the shape. Optimize calls it internally; the
// service calls it at submission time, so a bad request fails fast
// instead of after queueing.
func (o *Options) Normalize() error {
	if err := o.Space.validate(); err != nil {
		return err
	}
	if len(o.Objectives) == 0 {
		o.Objectives = DefaultObjectives()
	}
	if o.Generations == 0 {
		o.Generations = 10
	}
	if o.Population == 0 {
		o.Population = 24
	}
	switch {
	case o.Generations < 1:
		return fmt.Errorf("search: need at least 1 generation, got %d", o.Generations)
	case o.Population < 4:
		return fmt.Errorf("search: need a population of at least 4, got %d", o.Population)
	case o.Population%2 != 0:
		return fmt.Errorf("search: population must be even for pairwise crossover, got %d", o.Population)
	}
	if o.Budget.Name == "" {
		o.Budget = sweep.AnalyticBudget()
	}
	return nil
}

// ObjectiveBest is one objective's best value in a population.
type ObjectiveBest struct {
	Objective string  `json:"objective"`
	Value     float64 `json:"value"`
}

// Generation summarises one generation after environmental selection:
// the current population's first front (the records optimizer clients
// stream as the search progresses) and the best raw value per
// objective across the population.
type Generation struct {
	Gen int `json:"gen"`
	// Evaluated and Cached count this generation's points by how they
	// were obtained; Evaluated includes the cached ones.
	Evaluated int `json:"evaluated"`
	Cached    int `json:"cached"`
	// Feasible counts the current population's feasible individuals.
	Feasible int `json:"feasible"`
	// FrontSize is len(Front).
	FrontSize int             `json:"front_size"`
	Best      []ObjectiveBest `json:"best,omitempty"`
	Front     []sweep.Record  `json:"front"`
}

// Result is the structured outcome of one optimization run.
type Result struct {
	Space      string   `json:"space"`
	Objectives []string `json:"objectives"`
	Seed       uint64   `json:"seed"`
	Budget     string   `json:"budget"`

	Generations int `json:"generations"`
	Population  int `json:"population"`

	// Records holds every evaluated individual in evaluation order
	// (generation-major); Index is the global evaluation index. Records
	// on the final front carry Pareto: true.
	Records []sweep.Record `json:"records"`
	// FrontIndices locates the final Pareto front — the non-dominated
	// set over every evaluated record under the run's objectives — in
	// Records order.
	FrontIndices []int `json:"front_indices"`

	// CachedPoints and ComputedPoints split the evaluations by how each
	// record was obtained; they sum to len(Records).
	CachedPoints   int `json:"cached_points"`
	ComputedPoints int `json:"computed_points"`

	// History is every generation's summary in order.
	History []Generation `json:"history"`
}

// Front returns the final Pareto-front records in Records order.
func (r *Result) Front() []sweep.Record {
	out := make([]sweep.Record, 0, len(r.FrontIndices))
	for _, i := range r.FrontIndices {
		out = append(out, r.Records[i])
	}
	return out
}

// Optimize runs the NSGA-II search over opts.Space. The run is a pure
// function of (space, objectives, seed, generations, population,
// budget): genomes are bred on the calling goroutine from split
// sub-streams keyed by (seed, generation, individual), and evaluation —
// however it is parallelised or distributed — keys each point's
// sub-stream and cache address by its global index only.
func Optimize(ctx context.Context, opts Options) (*Result, error) {
	if err := opts.Normalize(); err != nil {
		return nil, err
	}
	evaluate := opts.Evaluate
	if evaluate == nil {
		evaluate = InProcessEvaluator(opts.Space, opts.Seed, opts.Budget, opts.Workers, opts.Cache, nil)
	}

	res := &Result{
		Space:       opts.Space.Name,
		Objectives:  objectiveNames(opts.Objectives),
		Seed:        opts.Seed,
		Budget:      opts.Budget.Name,
		Generations: opts.Generations,
		Population:  opts.Population,
	}
	gaRoot := rng.New(opts.Seed).Split(gaSplitTag)
	var pop []*indiv // current population, post-selection
	var all []*indiv // every evaluated individual, evaluation order

	for gen := 0; gen < opts.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		genStream := gaRoot.Split(uint64(gen) + 1)
		var genomes [][]float64
		if gen == 0 {
			genomes = make([][]float64, opts.Population)
			for i := range genomes {
				genomes[i] = initialGenome(genStream.Split(uint64(i)+1), opts.Space)
			}
		} else {
			genomes = offspringGenomes(genStream, opts.Space, pop, opts.Population)
		}

		pts := make([]sweep.Point, len(genomes))
		for i, genome := range genomes {
			idx := gen*opts.Population + i
			pts[i] = sweep.Point{
				Index: idx,
				Label: fmt.Sprintf("g%03d i%03d", gen, i),
				Spec:  opts.Space.Decode(genome),
			}
		}
		recs, cachedN, err := evaluate(ctx, gen, pts)
		if err != nil {
			return nil, err
		}
		if len(recs) != len(pts) {
			return nil, fmt.Errorf("search: evaluator returned %d records for %d points", len(recs), len(pts))
		}
		offspring := make([]*indiv, len(recs))
		for i, rec := range recs {
			offspring[i] = newIndiv(genomes[i], rec, opts.Objectives, pts[i].Index, opts.Feasible)
		}
		all = append(all, offspring...)
		res.CachedPoints += cachedN
		res.ComputedPoints += len(recs) - cachedN

		pop = environmentalSelect(append(pop, offspring...), opts.Population)
		summary := summarize(gen, len(recs), cachedN, pop, opts.Objectives)
		res.History = append(res.History, summary)
		if opts.OnGeneration != nil {
			opts.OnGeneration(summary)
		}
	}

	// Final front: non-dominated over everything ever evaluated, not
	// just the survivors — elitist selection keeps the front in the
	// population, but the archive view is what the acceptance tests and
	// clients compare byte-for-byte.
	res.Records = make([]sweep.Record, len(all))
	for i, ind := range all {
		res.Records[i] = ind.rec
	}
	res.FrontIndices = markFront(all, res.Records)
	return res, nil
}

// markFront computes the non-dominated set over all evaluated
// individuals, sets Pareto on the corresponding records, and returns
// their indices in evaluation order.
func markFront(all []*indiv, recs []sweep.Record) []int {
	var front []int
	for i, ind := range all {
		if !ind.feasible {
			continue
		}
		dominated := false
		for _, other := range all {
			if other != ind && dominates(other, ind) {
				dominated = true
				break
			}
		}
		if !dominated {
			recs[i].Pareto = true
			front = append(front, i)
		}
	}
	return front
}

// summarize builds one generation's summary from the post-selection
// population.
func summarize(gen, evaluated, cached int, pop []*indiv, objs []Objective) Generation {
	g := Generation{Gen: gen, Evaluated: evaluated, Cached: cached}
	// Fold best values in minimisation form: cost() maps NaN to +Inf,
	// so a degenerate metric on one individual can never shadow a
	// finite value on another (raw NaN would poison every comparison).
	bestCost := make([]float64, len(objs))
	for k := range bestCost {
		bestCost[k] = math.Inf(1)
	}
	for _, ind := range pop {
		if !ind.feasible {
			continue
		}
		g.Feasible++
		if ind.rank == 0 {
			rec := ind.rec
			rec.Pareto = true
			g.Front = append(g.Front, rec)
		}
		for k, o := range objs {
			if c := o.cost(ind.rec); c < bestCost[k] {
				bestCost[k] = c
			}
		}
	}
	g.FrontSize = len(g.Front)
	for k, o := range objs {
		v := bestCost[k]
		if math.IsInf(v, 1) {
			// No feasible individual has a finite value for this
			// objective; an entry would carry ±Inf or NaN, which JSON
			// cannot encode, so it is omitted.
			continue
		}
		if o.Maximize {
			v = -v
		}
		g.Best = append(g.Best, ObjectiveBest{Objective: o.Name, Value: v})
	}
	return g
}

// InProcessEvaluator returns the default Evaluator: each generation
// fans out through sweep.EvaluatePoints with the given seed, budget,
// worker pool and cache, under the space's "optimize/<name>" scenario
// string. onPoint, when non-nil, observes every finished point (the
// service wires its progress counters here).
func InProcessEvaluator(space Space, seed uint64, budget sweep.Budget, workers int, cache sweep.Cache, onPoint func(index int, cached bool)) Evaluator {
	scenario := space.ScenarioName()
	return func(ctx context.Context, gen int, pts []sweep.Point) ([]sweep.Record, int, error) {
		return sweep.EvaluatePoints(ctx, scenario, pts, sweep.Config{
			Workers: workers,
			Seed:    seed,
			Budget:  budget,
			Cache:   cache,
			OnPoint: onPoint,
		})
	}
}
