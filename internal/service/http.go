package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/sweep/store"
)

// NewHandler exposes a Manager over HTTP:
//
//	GET    /healthz                  liveness probe (reports sweep.EngineVersion
//	                                 and the result store's cache hit rate)
//	GET    /api/v1/store             result-store stats: aggregate counters plus
//	                                 one entry per shard (404 without a store)
//	GET    /api/v1/scenarios         registered scenarios with grid sizes
//	GET    /api/v1/spaces            registered search spaces with their parameters
//	POST   /api/v1/jobs              submit a job (Request JSON) -> 202 JobView
//	GET    /api/v1/jobs              all jobs in submission order
//	GET    /api/v1/jobs/{id}         one job snapshot (poll for progress)
//	DELETE /api/v1/jobs/{id}         cancel a queued or running job
//	GET    /api/v1/jobs/{id}/records completed records as NDJSON, one per line
//	GET    /api/v1/jobs/{id}/pareto  the job's Pareto-front records
//	GET    /api/v1/jobs/{id}/generations per-generation optimizer fronts as a
//	                                 live NDJSON stream (closes once the job
//	                                 is terminal; empty for sweep jobs)
//	GET    /api/v1/jobs/{id}/trace   the job's retained spans as NDJSON
//	                                 (404 when the daemon runs untraced)
//	GET    /api/v1/jobs/{id}/timeline derived phase timeline: queued/dispatch/
//	                                 evaluate/assemble durations, cache split,
//	                                 per-chunk turnarounds, span coverage
//	GET    /api/v1/fleet/stats       per-worker throughput profiles and the
//	                                 straggler baseline
//	GET    /api/v1/knobs             spec knob catalog: parameter names/kinds,
//	                                 constraint metrics, objectives
//	GET    /api/v1/openapi.json      machine-readable contract generated from
//	                                 the route table
//
// The worker tier (cmd/sweepworker) drives four more endpoints, live
// only in distributed mode (a non-distributed daemon answers 204 to
// lease requests, 410 to the leases/{id}/* calls, and an empty fleet):
//
//	POST   /api/v1/workers/lease                 lease a chunk -> 200 Lease | 204 no work
//	POST   /api/v1/workers/leases/{id}/heartbeat extend the lease -> 200 | 410 gone
//	POST   /api/v1/workers/leases/{id}/complete  post chunk records -> 200 | 410 | 422
//	POST   /api/v1/workers/leases/{id}/fail      report an unevaluable chunk -> 200 | 410
//	GET    /api/v1/workers                       fleet view: per-worker counters
//
// Observability rides on every route: each handler is registered
// through instrument, which wraps it in obs.HTTPMetrics middleware
// (per-route latency histogram, status-class counters, in-flight gauge,
// X-Request-ID propagation) and records the route in the table behind
// /api/v1/openapi.json. The whole registry — HTTP, job, lease, worker
// and store families — is served at:
//
//	GET    /metrics                  Prometheus text exposition (0.0.4)
//
// Every non-2xx response is the unified error envelope
// {"error":{"code":"...","message":"...","details":{...}}} with a
// stable machine-readable code (see errors.go): 400 bad_request /
// spec_invalid, 404 not_found, 409 not_done, 410 lease_gone,
// 422 bad_records, 503 shutdown, 500 internal. docs/api.md is the full
// reference.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	hm := obs.NewHTTPMetrics(m.Metrics(), m.logger())
	rt := &routeTable{}
	instrument(mux, hm, rt, "GET /api/v1/openapi.json", func(w http.ResponseWriter, r *http.Request) {
		// rt is fully populated by the time any request arrives; the doc
		// is rebuilt per request (cheap, rare) so it can never go stale
		// against the table.
		writeJSON(w, http.StatusOK, openAPIDoc(rt))
	})
	instrument(mux, hm, rt, "GET /metrics", m.Metrics().Handler().ServeHTTP)
	instrument(mux, hm, rt, "GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// The engine version lets optimizer clients and worker binaries
		// preflight-check compatibility before submitting or leasing:
		// records are only comparable between equal engine versions.
		build := obs.Build()
		payload := map[string]any{
			"status":         "ok",
			"engine":         sweep.EngineVersion,
			"uptime_seconds": m.Uptime().Seconds(),
			"go_version":     build.GoVersion,
			"revision":       build.Revision,
		}
		// The cache hit rate is the one store number worth watching from
		// a probe: a warm daemon serving mostly repeats should sit near
		// 1.0, and a sudden drop means the store was lost or the keying
		// inputs changed.
		if total, _, ok := m.StoreStats(); ok {
			payload["cache_hit_rate"] = total.HitRate()
		}
		writeJSON(w, http.StatusOK, payload)
	})
	instrument(mux, hm, rt, "GET /api/v1/store", func(w http.ResponseWriter, r *http.Request) {
		total, shards, ok := m.StoreStats()
		if !ok {
			writeAPIErrorAs(w, http.StatusNotFound, CodeNotFound,
				fmt.Errorf("daemon is running without a result store"), nil)
			return
		}
		if shards == nil {
			shards = []store.Stats{}
		}
		writeJSON(w, http.StatusOK, storeView{Store: total, Shards: shards})
	})
	instrument(mux, hm, rt, "GET /api/v1/scenarios", handleScenarios)
	instrument(mux, hm, rt, "GET /api/v1/spaces", handleSpaces)
	instrument(mux, hm, rt, "GET /api/v1/knobs", handleKnobs)
	instrument(mux, hm, rt, "POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			writeAPIErrorAs(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("invalid request body: %w", err), nil)
			return
		}
		v, err := m.Submit(req)
		if err != nil {
			writeAPIError(w, err)
			return
		}
		// Tie the job id to the request id, so an operator holding either
		// end of a submission can find the other in the logs.
		m.logger().Info("job accepted",
			"job_id", v.ID, "request_id", obs.RequestID(r.Context()))
		writeJSON(w, http.StatusAccepted, v)
	})
	instrument(mux, hm, rt, "GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		page, err := listQueryOf(r)
		if err != nil {
			writeAPIErrorAs(w, http.StatusBadRequest, CodeBadRequest, err, nil)
			return
		}
		writeJSON(w, http.StatusOK, m.ListPage(page))
	})
	instrument(mux, hm, rt, "GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeAPIError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	instrument(mux, hm, rt, "DELETE /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.Cancel(id); err != nil {
			writeAPIError(w, err)
			return
		}
		v, err := m.Get(id)
		if err != nil {
			writeAPIError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	instrument(mux, hm, rt, "GET /api/v1/jobs/{id}/records", func(w http.ResponseWriter, r *http.Request) {
		res, err := m.Result(r.PathValue("id"))
		if err != nil {
			writeAPIError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		// One reused buffer for the whole stream: the columnar record
		// encoder writes json.Marshal's exact bytes without per-record
		// reflection or allocation.
		line := make([]byte, 0, 1024)
		for _, rec := range res.Records {
			var err error
			if line, err = sweep.AppendRecordJSON(line[:0], rec); err != nil {
				return // unencodable record; matches the old encoder bail-out
			}
			line = append(line, '\n')
			if _, err := w.Write(line); err != nil {
				return // client went away mid-stream
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
	instrument(mux, hm, rt, "POST /api/v1/workers/lease", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Worker string `json:"worker"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil || req.Worker == "" {
			writeAPIErrorAs(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("lease request needs a worker name"), nil)
			return
		}
		l, ok, err := m.Lease(req.Worker)
		if err != nil {
			writeAPIError(w, err)
			return
		}
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, l)
	})
	instrument(mux, hm, rt, "POST /api/v1/workers/leases/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		ttl, err := m.Heartbeat(r.PathValue("id"))
		if err != nil {
			writeAPIError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]float64{"ttl_seconds": ttl.Seconds()})
	})
	instrument(mux, hm, rt, "POST /api/v1/workers/leases/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Records []sweep.Record `json:"records"`
			// Spans are the worker-side trace of this chunk, recorded
			// into the daemon's collector alongside its own chunk span.
			Spans []obs.SpanRecord `json:"spans"`
		}
		// Legitimate completion bodies are one chunk of records (KBs to a
		// few MBs); the cap keeps a buggy or rogue client from feeding
		// the decoder an unbounded allocation.
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
			writeAPIErrorAs(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("invalid completion body: %w", err), nil)
			return
		}
		if err := m.CompleteTraced(r.PathValue("id"), req.Records, req.Spans); err != nil {
			writeAPIError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	instrument(mux, hm, rt, "POST /api/v1/workers/leases/{id}/fail", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			writeAPIErrorAs(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("invalid failure body: %w", err), nil)
			return
		}
		if err := m.FailLease(r.PathValue("id"), req.Error); err != nil {
			writeAPIError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	instrument(mux, hm, rt, "GET /api/v1/workers", func(w http.ResponseWriter, r *http.Request) {
		fleet := m.WorkerFleet()
		if fleet == nil {
			fleet = []WorkerView{}
		}
		writeJSON(w, http.StatusOK, fleet)
	})
	instrument(mux, hm, rt, "GET /api/v1/jobs/{id}/pareto", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		// Snapshot the view before fetching the result: if the job is
		// evicted between the two lookups, the Result call fails loudly
		// instead of the response silently losing its optimize
		// annotations.
		v, vErr := m.Get(id)
		res, err := m.Result(id)
		if err != nil {
			writeAPIError(w, err)
			return
		}
		front := make([]sweep.Record, 0, len(res.ParetoIndices))
		for _, i := range res.ParetoIndices {
			front = append(front, res.Records[i])
		}
		payload := map[string]any{
			"scenario": res.Scenario,
			"seed":     res.Seed,
			"budget":   res.Budget,
			"front":    front,
		}
		// For optimizer jobs the front is relative to the requested
		// objectives, not the grid engine's fixed trio; say which.
		if vErr == nil && v.Kind == KindOptimize {
			payload["space"] = v.Space
			payload["objectives"] = v.Objectives
		}
		writeJSON(w, http.StatusOK, payload)
	})
	instrument(mux, hm, rt, "GET /api/v1/jobs/{id}/generations", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		sent := 0
		gens, terminal, err := m.Generations(id, sent)
		if err != nil {
			writeAPIError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		for {
			for _, g := range gens {
				if err := enc.Encode(g); err != nil {
					return // client went away mid-stream
				}
			}
			sent += len(gens)
			if flusher != nil {
				flusher.Flush()
			}
			if terminal {
				return
			}
			select {
			case <-r.Context().Done():
				return
			case <-time.After(genPollInterval):
			}
			if gens, terminal, err = m.Generations(id, sent); err != nil {
				return // job evicted mid-stream; nothing more to say
			}
		}
	})
	instrument(mux, hm, rt, "GET /api/v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		spans, err := m.JobTrace(r.PathValue("id"))
		if err != nil {
			writeAPIError(w, err)
			return
		}
		// NDJSON, one span per line: greppable raw, and a trace can be
		// tailed into jq or a flamegraph converter without holding the
		// whole payload.
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, s := range spans {
			if err := enc.Encode(s); err != nil {
				return // client went away mid-stream
			}
		}
	})
	instrument(mux, hm, rt, "GET /api/v1/jobs/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		tl, err := m.JobTimeline(r.PathValue("id"))
		if err != nil {
			writeAPIError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, tl)
	})
	instrument(mux, hm, rt, "GET /api/v1/fleet/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.FleetStats())
	})
	return mux
}

// instrument is the single chokepoint where routes meet the mux: every
// handler is wrapped in the metrics middleware under its route pattern
// before registration, so no endpoint can silently escape the per-route
// histograms and counters. tools/routelint enforces the chokepoint
// statically — a direct mux.Handle/HandleFunc call anywhere else in this
// file fails CI.
// Each pattern is also recorded in the route table, which is what
// GET /api/v1/openapi.json renders — reaching the mux and entering the
// machine-readable contract are the same act.
func instrument(mux *http.ServeMux, hm *obs.HTTPMetrics, rt *routeTable, pattern string, fn http.HandlerFunc) {
	rt.add(pattern)
	mux.Handle(pattern, hm.Wrap(pattern, fn))
}

// listQueryOf parses the GET /api/v1/jobs query string. Unknown state
// or kind values are rejected rather than silently matching nothing,
// so a typo reads as a 400 instead of an empty fleet.
func listQueryOf(r *http.Request) (ListQuery, error) {
	q := r.URL.Query()
	lq := ListQuery{
		State:  State(q.Get("state")),
		Kind:   q.Get("kind"),
		Cursor: q.Get("cursor"),
	}
	switch lq.State {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
	default:
		return ListQuery{}, fmt.Errorf("unknown state %q", lq.State)
	}
	switch lq.Kind {
	case "", KindSweep, KindOptimize:
	default:
		return ListQuery{}, fmt.Errorf("unknown kind %q", lq.Kind)
	}
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return ListQuery{}, fmt.Errorf("limit must be a positive integer, got %q", raw)
		}
		lq.Limit = n
	}
	return lq, nil
}

// genPollInterval is how often the generations stream re-checks a
// running job for new summaries. Fronts arrive at most once per
// generation — seconds apart under any real budget — so 100ms keeps
// the stream effectively live at negligible poll cost.
const genPollInterval = 100 * time.Millisecond

// storeView is the GET /api/v1/store payload: the whole store's
// counters plus the per-shard breakdown (one entry, shard order; a
// single-shard store lists exactly its own counters).
type storeView struct {
	Store  store.Stats   `json:"store"`
	Shards []store.Stats `json:"shards"`
}

// scenarioInfo is one row of the scenario listing.
type scenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Points      int    `json:"points"`
}

func handleScenarios(w http.ResponseWriter, r *http.Request) {
	var out []scenarioInfo
	for _, name := range sweep.Names() {
		sc, err := sweep.Get(name)
		if err != nil {
			continue
		}
		out = append(out, scenarioInfo{
			Name:        sc.Name,
			Description: sc.Description,
			Points:      len(sc.Points()),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// spaceInfo is one row of the search-space listing.
type spaceInfo struct {
	Name        string         `json:"name"`
	Description string         `json:"description"`
	Params      []search.Param `json:"params"`
}

// knobInfo is one row of the spec knob catalog: a parameter name a spec
// may sweep or constrain, with the kind its axis must declare.
type knobInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// handleKnobs serves the vocabulary a spec author writes against:
// every base/axis parameter with its kind, the metrics constraint
// expressions may reference, and the selectable optimizer objectives.
// Together with /api/v1/openapi.json this makes specs discoverable
// end to end — shape from the contract, names from the catalog.
func handleKnobs(w http.ResponseWriter, r *http.Request) {
	names := spec.Knobs()
	knobs := make([]knobInfo, 0, len(names))
	for _, name := range names {
		kind, err := spec.KnobKind(name)
		if err != nil {
			continue
		}
		knobs = append(knobs, knobInfo{Name: name, Kind: kind})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"knobs":      knobs,
		"metrics":    spec.Metrics(),
		"objectives": search.ObjectiveNames(),
	})
}

func handleSpaces(w http.ResponseWriter, r *http.Request) {
	var out []spaceInfo
	for _, name := range search.Names() {
		sp, err := search.Get(name)
		if err != nil {
			continue
		}
		out = append(out, spaceInfo{
			Name:        sp.Name,
			Description: sp.Description,
			Params:      sp.Params,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
