package ldpc

import (
	"fmt"
	"math"
)

// Algorithm selects the check-node update rule of the BP decoder.
type Algorithm int

const (
	// SumProduct is the exact tanh-rule update (best BER, slowest).
	SumProduct Algorithm = iota
	// MinSum is the normalised min-sum approximation with scale 0.8
	// (hardware-friendly; a few tenths of a dB behind sum-product).
	MinSum
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case SumProduct:
		return "sum-product"
	case MinSum:
		return "normalised min-sum"
	default:
		return "unknown"
	}
}

// minSumScale is the normalisation factor of the min-sum approximation.
const minSumScale = 0.8

// llrClamp bounds message magnitudes for numerical stability.
const llrClamp = 30.0

// Decoder runs iterative belief propagation on a Code. It owns reusable
// message buffers, so one Decoder instance serves many decode calls
// without allocating; it is not safe for concurrent use (create one per
// worker).
type Decoder struct {
	code *Code
	// Alg selects the check update rule.
	Alg Algorithm
	// Sched selects the message-passing schedule (default Flooding).
	Sched Schedule
	// MaxIter bounds the iterations (default 50).
	MaxIter int

	chkToVar  []float64
	varToChk  []float64
	posterior []float64
	hard      []uint8
	// tanhBuf caches tanh(msg/2) per edge of one check during the
	// sum-product update, so each input is transformed once.
	tanhBuf []float64
}

// NewDecoder creates a decoder for the code.
func NewDecoder(code *Code, alg Algorithm, maxIter int) *Decoder {
	if maxIter <= 0 {
		maxIter = 50
	}
	maxDeg := 0
	for chk := 0; chk < code.NumChecks; chk++ {
		if deg := int(code.checkPtr[chk+1] - code.checkPtr[chk]); deg > maxDeg {
			maxDeg = deg
		}
	}
	return &Decoder{
		code:      code,
		Alg:       alg,
		MaxIter:   maxIter,
		chkToVar:  make([]float64, code.NumEdges()),
		varToChk:  make([]float64, code.NumEdges()),
		posterior: make([]float64, code.NumVars),
		hard:      make([]uint8, code.NumVars),
		tanhBuf:   make([]float64, maxDeg),
	}
}

// Result reports a decode outcome.
type Result struct {
	// Hard holds the bit decisions (valid until the next Decode call).
	Hard []uint8
	// Converged is true when the syndrome check passed.
	Converged bool
	// Iterations actually run.
	Iterations int
}

// Decode runs flooding BP on channel LLRs (positive = bit 0 more likely)
// and returns hard decisions. Early-terminates on a zero syndrome.
func (d *Decoder) Decode(channelLLR []float64) Result {
	c := d.code
	if len(channelLLR) != c.NumVars {
		panic(fmt.Sprintf("ldpc: LLR length %d, want %d", len(channelLLR), c.NumVars))
	}
	return d.decodeRange(channelLLR, 0, c.NumChecks, 0, c.NumVars)
}

// decodeRange runs BP using only checks in [chkLo, chkHi) and variables
// in [varLo, varHi) — the full code for Decode, a window for the window
// decoder. Messages for edges outside the range stay zero and do not
// perturb the posterior.
func (d *Decoder) decodeRange(channelLLR []float64, chkLo, chkHi, varLo, varHi int) Result {
	if d.Sched == Layered {
		return d.decodeLayered(channelLLR, chkLo, chkHi, varLo, varHi)
	}
	c := d.code

	// Clear residual check messages on every edge touching the active
	// variables (stale messages from a previous window position would
	// otherwise leak into the posteriors), then initialise the
	// variable-to-check messages with the channel LLRs.
	for v := varLo; v < varHi; v++ {
		for _, e := range c.VarEdges(v) {
			d.chkToVar[e] = 0
		}
	}
	for chk := chkLo; chk < chkHi; chk++ {
		for e := c.checkPtr[chk]; e < c.checkPtr[chk+1]; e++ {
			d.varToChk[e] = channelLLR[c.checkVar[e]]
		}
	}

	iters := 0
	for iter := 0; iter < d.MaxIter; iter++ {
		iters = iter + 1
		// Check-node update.
		for chk := chkLo; chk < chkHi; chk++ {
			lo, hi := c.checkPtr[chk], c.checkPtr[chk+1]
			switch d.Alg {
			case SumProduct:
				d.updateCheckSumProduct(lo, hi)
			default:
				d.updateCheckMinSum(lo, hi)
			}
		}
		converged := d.updateVarsAndCheckSyndrome(channelLLR, chkLo, chkHi, varLo, varHi)
		if converged {
			return Result{Hard: d.hard, Converged: true, Iterations: iters}
		}
	}
	return Result{Hard: d.hard, Converged: false, Iterations: iters}
}

// updateCheckSumProduct applies the tanh rule to one check's edges.
func (d *Decoder) updateCheckSumProduct(lo, hi int32) {
	spCheckKernel(d.varToChk[lo:hi], d.chkToVar[lo:hi], d.tanhBuf)
}

// updateCheckMinSum applies the normalised min-sum rule to one check.
func (d *Decoder) updateCheckMinSum(lo, hi int32) {
	msCheckKernel(d.varToChk[lo:hi], d.chkToVar[lo:hi], minSumScale)
}

// spCheckKernel is the flooding sum-product check update over one
// check's extrinsic inputs: msgs holds the variable-to-check messages,
// out receives the check-to-variable outputs (out may alias msgs), ts
// is caller-owned scratch of at least len(msgs). It is the single
// definition of the tanh-rule arithmetic: the scalar decoder calls it
// with contiguous edge views and the batch decoder's fallback and
// conformance paths call it with gathered lane columns, so both paths
// are bit-exact by construction.
func spCheckKernel(msgs, out, ts []float64) {
	// Saturated shortcut: when every input is strong the tanh rule and
	// plain min-sum agree to within e^-satLLR, with no transcendentals.
	minAbs := math.Inf(1)
	for _, v := range msgs {
		if a := math.Abs(v); a < minAbs {
			minAbs = a
		}
	}
	if minAbs >= satLLR {
		// In the saturated regime plain (unnormalised) min-sum is exact
		// to within e^-satLLR, with no transcendentals.
		msCheckKernel(msgs, out, 1)
		return
	}

	ts = ts[:len(msgs)]
	prod := 1.0
	for i, v := range msgs {
		t := tanhHalf(v)
		ts[i] = t
		prod *= t
	}
	for i := range msgs {
		t := ts[i]
		var other float64
		if math.Abs(t) > 1e-12 {
			other = prod / t
		} else {
			// Recompute excluding i to avoid division blow-up.
			other = 1
			for j := range ts {
				if j != i {
					other *= ts[j]
				}
			}
		}
		other = clamp(other, -0.999999999999, 0.999999999999)
		out[i] = clamp(atanh2(other), -llrClamp, llrClamp)
	}
}

// msCheckKernel is the min-sum check update: sign product and
// first/second minima over msgs, scaled by the given normalisation
// factor (minSumScale for MinSum, 1 for the saturated sum-product
// shortcut). out may alias msgs: every input is read before its slot
// is written.
func msCheckKernel(msgs, out []float64, scale float64) {
	min1, min2 := math.Inf(1), math.Inf(1)
	minIdx := -1
	sign := 1.0
	for i, v := range msgs {
		if v < 0 {
			sign = -sign
		}
		a := math.Abs(v)
		if a < min1 {
			min2 = min1
			min1 = a
			minIdx = i
		} else if a < min2 {
			min2 = a
		}
	}
	for i, v := range msgs {
		mag := min1
		if i == minIdx {
			mag = min2
		}
		s := sign
		if v < 0 {
			s = -s
		}
		out[i] = clamp(scale*s*mag, -llrClamp, llrClamp)
	}
}

// updateVarsAndCheckSyndrome refreshes variable messages, posteriors and
// hard decisions for the active variable range, returning true when all
// active checks are satisfied.
func (d *Decoder) updateVarsAndCheckSyndrome(channelLLR []float64, chkLo, chkHi, varLo, varHi int) bool {
	c := d.code
	for v := varLo; v < varHi; v++ {
		sum := channelLLR[v]
		for _, e := range c.VarEdges(v) {
			sum += d.chkToVar[e]
		}
		d.posterior[v] = sum
		if sum < 0 {
			d.hard[v] = 1
		} else {
			d.hard[v] = 0
		}
		// Extrinsic messages for the next iteration.
		for _, e := range c.VarEdges(v) {
			d.varToChk[e] = clamp(sum-d.chkToVar[e], -llrClamp, llrClamp)
		}
	}
	for chk := chkLo; chk < chkHi; chk++ {
		var parity uint8
		for _, v := range c.CheckNeighbors(chk) {
			parity ^= d.hard[v]
		}
		if parity != 0 {
			return false
		}
	}
	return true
}

// Posterior returns the last decode's posterior LLRs (valid until the
// next Decode call).
func (d *Decoder) Posterior() []float64 { return d.posterior }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
