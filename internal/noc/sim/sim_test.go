package sim

import (
	"math"
	"testing"

	"repro/internal/noc"
	"repro/internal/noc/analytic"
)

func TestZeroLoadLatencyMatchesAnalytic(t *testing.T) {
	// At very light load the simulator must land on the analytic
	// zero-load floor for all three Fig. 8a topologies.
	for _, topo := range []*noc.Mesh{
		noc.NewMesh2D(8, 8),
		noc.NewStarMesh(4, 4, 4),
		noc.NewMesh3D(4, 4, 4),
	} {
		want := analytic.Model{Topo: topo, Traffic: noc.Uniform{}}.ZeroLoadLatency()
		res := Run(Config{
			Topo: topo, Traffic: noc.Uniform{},
			InjectionRate: 0.01, Seed: 1,
		})
		if res.Saturated {
			t.Fatalf("%s: saturated at 0.01", topo.Name())
		}
		if math.Abs(res.MeanLatencyCycles-want) > 0.1*want {
			t.Errorf("%s: sim latency %.2f, analytic floor %.2f",
				topo.Name(), res.MeanLatencyCycles, want)
		}
	}
}

func TestMidLoadLatencyBracketedByServiceModels(t *testing.T) {
	// The simulator uses deterministic service, so its latency should lie
	// near the analytic M/D/1 prediction and below M/M/1 at mid load.
	topo := noc.NewMesh3D(4, 4, 4)
	rate := 0.4
	mm1, _ := analytic.Model{Topo: topo, Traffic: noc.Uniform{}}.AvgLatency(rate)
	md1, _ := analytic.Model{Topo: topo, Traffic: noc.Uniform{}, Service: analytic.MD1}.AvgLatency(rate)
	res := Run(Config{Topo: topo, Traffic: noc.Uniform{}, InjectionRate: rate, Seed: 2})
	if res.Saturated {
		t.Fatal("saturated at 0.4 on the 3D mesh")
	}
	if res.MeanLatencyCycles < md1*0.9 || res.MeanLatencyCycles > mm1*1.15 {
		t.Errorf("sim latency %.2f outside [0.9*M/D/1=%.2f, 1.15*M/M/1=%.2f]",
			res.MeanLatencyCycles, md1*0.9, mm1*1.15)
	}
}

func TestSaturationDetection(t *testing.T) {
	// Driving the star-mesh far above its 0.19 saturation must flag.
	topo := noc.NewStarMesh(4, 4, 4)
	res := Run(Config{
		Topo: topo, Traffic: noc.Uniform{},
		InjectionRate: 0.35, Seed: 3,
		WarmupCycles: 1000, MeasureCycles: 6000,
	})
	if !res.Saturated {
		t.Errorf("star-mesh at 0.35 not flagged saturated (latency %.1f)", res.MeanLatencyCycles)
	}
	// And below saturation it must not flag.
	res = Run(Config{Topo: topo, Traffic: noc.Uniform{}, InjectionRate: 0.12, Seed: 3})
	if res.Saturated {
		t.Error("star-mesh at 0.12 wrongly flagged saturated")
	}
}

func TestThroughputTracksOfferedLoadBelowSaturation(t *testing.T) {
	topo := noc.NewMesh2D(8, 8)
	rate := 0.2
	res := Run(Config{Topo: topo, Traffic: noc.Uniform{}, InjectionRate: rate, Seed: 4})
	if math.Abs(res.ThroughputPerModule-rate) > 0.05*rate {
		t.Errorf("throughput %.3f, offered %.3f", res.ThroughputPerModule, rate)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := Config{
		Topo: noc.NewMesh2D(4, 4), Traffic: noc.Uniform{},
		InjectionRate: 0.2, Seed: 9,
	}
	a, b := Run(cfg), Run(cfg)
	if a.MeanLatencyCycles != b.MeanLatencyCycles || a.Delivered != b.Delivered {
		t.Error("simulation not reproducible for fixed seed")
	}
}

func TestZeroInjection(t *testing.T) {
	res := Run(Config{Topo: noc.NewMesh2D(2, 2), Traffic: noc.Uniform{}, InjectionRate: 0})
	if res.Injected != 0 || res.Delivered != 0 || res.Saturated {
		t.Errorf("zero injection run = %+v", res)
	}
}

func TestNegativeInjectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative injection did not panic")
		}
	}()
	Run(Config{Topo: noc.NewMesh2D(2, 2), Traffic: noc.Uniform{}, InjectionRate: -1})
}

func TestP95AboveMean(t *testing.T) {
	res := Run(Config{
		Topo: noc.NewMesh2D(8, 8), Traffic: noc.Uniform{},
		InjectionRate: 0.3, Seed: 5,
	})
	if res.P95LatencyCycles < res.MeanLatencyCycles {
		t.Errorf("p95 %.1f below mean %.1f", res.P95LatencyCycles, res.MeanLatencyCycles)
	}
}

func TestHotspotWorseThanUniform(t *testing.T) {
	topo := noc.NewMesh2D(8, 8)
	uni := Run(Config{Topo: topo, Traffic: noc.Uniform{}, InjectionRate: 0.15, Seed: 6})
	hot := Run(Config{
		Topo: topo, Traffic: noc.Hotspot{Module: 27, Fraction: 0.4},
		InjectionRate: 0.15, Seed: 6,
	})
	if !hot.Saturated && hot.MeanLatencyCycles <= uni.MeanLatencyCycles {
		t.Errorf("hotspot latency %.1f not above uniform %.1f",
			hot.MeanLatencyCycles, uni.MeanLatencyCycles)
	}
}

func BenchmarkSim64Modules(b *testing.B) {
	cfg := Config{
		Topo: noc.NewMesh3D(4, 4, 4), Traffic: noc.Uniform{},
		InjectionRate: 0.3, WarmupCycles: 500, MeasureCycles: 2000, Seed: 1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		Run(cfg)
	}
}
