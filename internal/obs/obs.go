// Package obs is the observability layer: a zero-dependency,
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms, all with optional label dimensions), Prometheus-compatible
// text exposition (expose.go), structured tracing of request and job
// lifecycles over log/slog (trace.go), and HTTP middleware that
// instruments every route with latency histograms, in-flight gauges and
// status-class counters while propagating X-Request-ID (httpmw.go).
//
// The cardinal rule is that observation never influences results: the
// sweep engine's determinism contract (records are a pure function of
// their request) is untouched because nothing in this package feeds
// back into evaluation — metrics are write-only from the hot path and
// read-only from /metrics.
//
// Metric families follow Prometheus naming conventions:
// <subsystem>_<noun>_<unit>[_total], e.g. sweepd_http_request_duration_seconds
// or sweep_store_gets_total. Registration is idempotent — asking for an
// already-registered family with the same shape returns the existing
// one, so independently-constructed components (the manager, the store)
// can share one Registry without coordination.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and hands out their series. The zero
// value is not usable; construct with NewRegistry. All methods are safe
// for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	// funcs are callback-backed gauge families, evaluated at exposition
	// time (see GaugeFunc).
	funcs map[string]*gaugeFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		funcs:    make(map[string]*gaugeFunc),
	}
}

// metricType is the Prometheus exposition TYPE of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// family is one named metric with a fixed label schema; series are its
// per-label-value instances.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram upper bounds, ascending; +Inf implicit

	mu     sync.RWMutex
	series map[string]*series
}

// series is one (family, label values) instance. Counter and gauge
// values live in valBits as float64 bits; histograms use the per-bucket
// counts plus sumBits.
type series struct {
	labelVals []string
	valBits   atomic.Uint64
	// buckets[i] counts observations in (buckets[i-1], bounds[i]];
	// the final slot is the +Inf overflow. Non-cumulative internally,
	// cumulated at exposition.
	buckets []atomic.Uint64
	sumBits atomic.Uint64
}

// addFloat atomically adds d to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// gaugeFunc is a callback-backed gauge family: collect is invoked at
// exposition time and emits zero or more (value, label values) samples.
// It exists for values that are cheap to read on demand but wasteful to
// maintain on the hot path — store entry counts, queue depths.
type gaugeFunc struct {
	name    string
	help    string
	labels  []string
	collect func(emit func(v float64, labelVals ...string))
}

// validName is the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func checkNames(name string, labels []string) {
	if !validName(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, l := range labels {
		if !validName(l) || strings.HasPrefix(l, "__") {
			panic("obs: invalid label name " + l + " on " + name)
		}
	}
}

// register returns the named family, creating it on first use. A
// re-registration with the same shape returns the existing family;
// a mismatched shape (different type, labels or buckets) panics —
// that is a programming error, not a runtime condition.
func (r *Registry) register(name, help string, typ metricType, buckets []float64, labels []string) *family {
	checkNames(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
		}
		return f
	}
	if _, ok := r.funcs[name]; ok {
		panic(fmt.Sprintf("obs: metric %s already registered as a gauge func", name))
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seriesFor returns the series keyed by the label values, creating it
// on first use.
func (f *family) seriesFor(labelVals []string) *series {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label value(s), got %d", f.name, len(f.labels), len(labelVals)))
	}
	key := strings.Join(labelVals, "\x00")
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = &series{labelVals: append([]string(nil), labelVals...)}
	if f.typ == typeHistogram {
		s.buckets = make([]atomic.Uint64, len(f.buckets)+1)
	}
	f.series[key] = s
	return s
}

// sortedSeries returns the family's series sorted by label values, a
// stable exposition order.
func (f *family) sortedSeries() []*series {
	f.mu.RLock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labelVals, out[j].labelVals
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// CounterVec is a counter family; With picks one labeled series.
type CounterVec struct{ f *family }

// Counter is one monotonically increasing series.
type Counter struct{ s *series }

// Counter registers (or returns) a counter family with the given label
// schema. Counters only go up; use a Gauge for values that go down.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, nil, labels)}
}

// With returns the series for the label values (one per schema label).
func (v *CounterVec) With(labelVals ...string) Counter {
	return Counter{s: v.f.seriesFor(labelVals)}
}

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Add adds d, which must not be negative.
func (c Counter) Add(d float64) {
	if d < 0 {
		panic("obs: counter decreased")
	}
	addFloat(&c.s.valBits, d)
}

// Value returns the current value (for tests and diagnostics).
func (c Counter) Value() float64 { return math.Float64frombits(c.s.valBits.Load()) }

// GaugeVec is a gauge family; With picks one labeled series.
type GaugeVec struct{ f *family }

// Gauge is one series whose value moves both ways.
type Gauge struct{ s *series }

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, nil, labels)}
}

// With returns the series for the label values.
func (v *GaugeVec) With(labelVals ...string) Gauge {
	return Gauge{s: v.f.seriesFor(labelVals)}
}

// Set stores v.
func (g Gauge) Set(v float64) { g.s.valBits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract).
func (g Gauge) Add(d float64) { addFloat(&g.s.valBits, d) }

// Inc adds one.
func (g Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g Gauge) Dec() { g.Add(-1) }

// Value returns the current value (for tests and diagnostics).
func (g Gauge) Value() float64 { return math.Float64frombits(g.s.valBits.Load()) }

// GaugeFunc registers a callback-backed gauge family: collect runs at
// exposition time and emits samples via emit(value, labelValues...).
// Re-registering the same name replaces the callback — the semantics a
// reopened component (a store closed and reopened on the same registry)
// needs, since its old callback would read freed state.
func (r *Registry) GaugeFunc(name, help string, labels []string, collect func(emit func(v float64, labelVals ...string))) {
	checkNames(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("obs: metric %s already registered as a direct family", name))
	}
	r.funcs[name] = &gaugeFunc{name: name, help: help, labels: append([]string(nil), labels...), collect: collect}
}

// HistogramVec is a histogram family; With picks one labeled series.
type HistogramVec struct{ f *family }

// Histogram is one series of bucketed observations.
type Histogram struct {
	s      *series
	bounds []float64
}

// DefBuckets is the default latency bucket layout in seconds: 100µs to
// 10s, roughly geometric — wide enough for both sub-millisecond store
// lookups and multi-second sweep jobs.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram registers (or returns) a histogram family with fixed
// bucket upper bounds (ascending; +Inf is implicit). Nil buckets means
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets not strictly ascending for " + name)
		}
	}
	return &HistogramVec{f: r.register(name, help, typeHistogram, buckets, labels)}
}

// With returns the series for the label values.
func (v *HistogramVec) With(labelVals ...string) Histogram {
	return Histogram{s: v.f.seriesFor(labelVals), bounds: v.f.buckets}
}

// Observe records one value.
func (h Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the branch
	// predictor eats this; a binary search is slower at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.s.buckets[i].Add(1)
	addFloat(&h.s.sumBits, v)
}

// Count returns the total number of observations (for tests).
func (h Histogram) Count() uint64 {
	var n uint64
	for i := range h.s.buckets {
		n += h.s.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (for tests).
func (h Histogram) Sum() float64 { return math.Float64frombits(h.s.sumBits.Load()) }
