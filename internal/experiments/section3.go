package experiments

import (
	"context"

	"repro/internal/inforate"
	"repro/internal/isidesign"
	"repro/internal/modem"
	"repro/internal/sweep"
)

// designBudget returns the ISI-design optimiser budget for a quality.
func designBudget(q Quality) isidesign.Config {
	switch q {
	case Full:
		return isidesign.Config{Seed: 1, Sweeps: 16, SimSymbols: 8000}
	case Standard:
		return isidesign.Config{Seed: 1, Sweeps: 8, SimSymbols: 3000}
	default:
		return isidesign.Config{Seed: 1, Sweeps: 3, SimSymbols: 1200}
	}
}

// Fig5 reproduces the four transmit-filter designs: rectangular,
// symbolwise-optimal, sequence-optimal (both at the 25 dB design point)
// and the noise-independent suboptimal design.
func Fig5(q Quality) string {
	cfg := designBudget(q)
	// The four designs are independent grid points; fan them out.
	makers := []func() isidesign.Design{
		func() isidesign.Design {
			return isidesign.Design{Pulse: isidesign.Rect(5), Strategy: "rectangular (no ISI)"}
		},
		func() isidesign.Design { return isidesign.OptimizeSymbolwise(cfg) },
		func() isidesign.Design { return isidesign.OptimizeSequence(cfg) },
		func() isidesign.Design { return isidesign.Suboptimal(cfg) },
	}
	designs, _ := sweep.Map(context.Background(), len(makers), 0,
		func(i int) isidesign.Design { return makers[i]() })
	var t table
	t.title("Fig. 5 — impulse responses of the ISI filter designs (quality %s)", q)
	t.row("staircase taps at 5 samples/symbol, unit energy, span 2 T")
	for i, d := range designs {
		label := []string{"(a)", "(b)", "(c)", "(d)"}[i]
		t.row("%s %-30s", label, d.Strategy)
		taps := d.Pulse.Taps()
		for j, tap := range taps {
			t.row("    tau/T %+5.2f  h %+7.4f", float64(j)/5.0, tap)
		}
		if d.Rate > 0 {
			t.row("    information rate at 25 dB under its target receiver: %.3f bpcu", d.Rate)
		}
		t.blank()
	}
	return t.String()
}

// Fig6 reproduces the information-rate-versus-SNR comparison of the six
// receivers for 4-ASK with 5-fold oversampling and 1-bit quantisation.
func Fig6(q Quality) string {
	cfg := designBudget(q)
	c := modem.NewASK(4)

	var snrs []float64
	switch q {
	case Smoke:
		snrs = []float64{-5, 5, 15, 25, 35}
	default:
		snrs = []float64{-5, -2.5, 0, 2.5, 5, 7.5, 10, 12.5, 15, 17.5, 20, 22.5, 25, 27.5, 30, 32.5, 35}
	}
	simSymbols := map[Quality]int{Smoke: 6000, Standard: 30000, Full: 100000}[q]

	// Design filters at the 25 dB point; Full quality re-optimises the
	// sequence design at every SNR (the paper's per-operating-point
	// optimum), other qualities reuse the 25 dB filters.
	seqDesign := isidesign.OptimizeSequence(cfg)
	sbsDesign := isidesign.OptimizeSymbolwise(cfg)
	subDesign := isidesign.Suboptimal(cfg)
	rectTr := inforate.NewTrellis(c, isidesign.Rect(5))
	subTr := inforate.NewTrellis(c, subDesign.Pulse)
	sbsTr := inforate.NewTrellis(c, sbsDesign.Pulse)

	var t table
	t.title("Fig. 6 — information rates, 4-ASK, 5x oversampling, 1-bit ADC (quality %s)", q)
	t.row("%8s %10s %12s %10s %10s %10s %10s", "SNR[dB]",
		"seq-opt", "symbolwise", "rect-OS", "no-OS", "no-quant", "suboptimal")
	// Every SNR is one grid point of the executor; the shared trellises
	// are read-only, the per-point ones are built inside the worker.
	type fig6Row [6]float64
	rows, _ := sweep.Map(context.Background(), len(snrs), 0, func(i int) fig6Row {
		snr := snrs[i]
		seqTr := inforate.NewTrellis(c, seqDesign.Pulse)
		if q == Full && snr != 25 {
			perSNR := cfg
			perSNR.SNRdB = snr
			perSNR.Seed = uint64(100 + i)
			seqTr = inforate.NewTrellis(c, isidesign.OptimizeSequence(perSNR).Pulse)
		}
		return fig6Row{
			inforate.SequenceRate(seqTr, snr, simSymbols, uint64(7000+i)),
			inforate.SymbolwiseRate(sbsTr, snr),
			inforate.SymbolwiseRate(rectTr, snr),
			inforate.NoOversamplingRate(c, snr),
			inforate.UnquantizedRate(c, snr),
			inforate.SequenceRate(subTr, snr, simSymbols, uint64(8000+i)),
		}
	})
	for i, snr := range snrs {
		r := rows[i]
		t.row("%8.1f %10.3f %12.3f %10.3f %10.3f %10.3f %10.3f",
			snr, r[0], r[1], r[2], r[3], r[4], r[5])
	}
	t.row("series meanings: seq-opt and suboptimal under sequence estimation;")
	t.row("symbolwise under symbol-by-symbol detection; rect-OS = 5x oversampled")
	t.row("rectangular pulse; no-OS = one sample/symbol; no-quant = unquantised 4-ASK.")
	return t.String()
}

// AblationOversampling sweeps the oversampling factor against the
// paper's choice M = 5 (design-choice ablation from DESIGN.md).
func AblationOversampling(q Quality) string {
	c := modem.NewASK(4)
	cfg := designBudget(q)
	simSymbols := map[Quality]int{Smoke: 4000, Standard: 20000, Full: 60000}[q]

	var t table
	t.title("Ablation — oversampling factor M at 25 dB (paper uses M = 5; quality %s)", q)
	t.row("%4s %16s %16s", "M", "seq-opt [bpcu]", "unique detection")
	factors := []int{1, 2, 3, 4, 5, 6, 7}
	type mRow struct {
		rate   float64
		unique bool
	}
	rows, _ := sweep.Map(context.Background(), len(factors), 0, func(i int) mRow {
		mc := cfg
		mc.OSF = factors[i]
		d := isidesign.OptimizeSequence(mc)
		tr := inforate.NewTrellis(c, d.Pulse)
		return mRow{
			rate:   inforate.SequenceRate(tr, 25, simSymbols, 31),
			unique: isidesign.UniquelyDetectable(tr, d.Pulse.SpanSymbols()+1),
		}
	})
	for i, m := range factors {
		unique := "no"
		if rows[i].unique {
			unique = "yes"
		}
		t.row("%4d %16.3f %16s", m, rows[i].rate, unique)
	}
	return t.String()
}
