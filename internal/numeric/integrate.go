package numeric

import "math"

// GaussHermite holds nodes and weights for Gauss-Hermite quadrature,
// which integrates f against exp(-x^2) exactly for polynomials up to
// degree 2n-1. Combined with a change of variables it evaluates Gaussian
// expectations E[f(N(0,sigma^2))] to high accuracy.
type GaussHermite struct {
	Nodes   []float64
	Weights []float64
}

// NewGaussHermite computes an n-point Gauss-Hermite rule via Newton
// iteration on the Hermite polynomial roots (Golub-Welsch-free, stdlib
// only). n must be >= 1.
func NewGaussHermite(n int) *GaussHermite {
	if n < 1 {
		panic("numeric: GaussHermite order must be >= 1")
	}
	gh := &GaussHermite{
		Nodes:   make([]float64, n),
		Weights: make([]float64, n),
	}
	// Initial guesses from asymptotic estimates, then Newton refinement.
	var x float64
	for i := 0; i < (n+1)/2; i++ {
		switch i {
		case 0:
			x = math.Sqrt(float64(2*n+1)) - 1.85575*math.Pow(float64(2*n+1), -1.0/6.0)
		case 1:
			x -= 1.14 * math.Pow(float64(n), 0.426) / x
		case 2:
			x = 1.86*x - 0.86*gh.Nodes[0]
		case 3:
			x = 1.91*x - 0.91*gh.Nodes[1]
		default:
			x = 2*x - gh.Nodes[i-2]
		}
		var pp float64
		for iter := 0; iter < 100; iter++ {
			// Evaluate Hermite H_n (physicists', normalised recurrence).
			p1 := math.Pow(math.Pi, -0.25)
			p2 := 0.0
			for j := 1; j <= n; j++ {
				p3 := p2
				p2 = p1
				p1 = x*math.Sqrt(2.0/float64(j))*p2 - math.Sqrt(float64(j-1)/float64(j))*p3
			}
			pp = math.Sqrt(2*float64(n)) * p2
			dx := p1 / pp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		gh.Nodes[i] = x
		gh.Nodes[n-1-i] = -x
		w := 2.0 / (pp * pp)
		gh.Weights[i] = w
		gh.Weights[n-1-i] = w
	}
	return gh
}

// ExpectGaussian returns E[f(Z)] for Z ~ N(mu, sigma^2) using the rule.
func (gh *GaussHermite) ExpectGaussian(f func(float64) float64, mu, sigma float64) float64 {
	var sum float64
	for i, x := range gh.Nodes {
		sum += gh.Weights[i] * f(mu+math.Sqrt2*sigma*x)
	}
	return sum / math.Sqrt(math.Pi)
}

// Simpson integrates f over [a, b] with n (even, >= 2) uniform panels.
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 != 0 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// AdaptiveSimpson integrates f over [a, b] to absolute tolerance tol
// using recursive interval halving with a depth cap.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64) float64 {
	fa, fb := f(a), f(b)
	m := 0.5 * (a + b)
	fm := f(m)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	return adaptiveSimpsonRec(f, a, b, fa, fb, fm, whole, tol, 24)
}

func adaptiveSimpsonRec(f func(float64) float64, a, b, fa, fb, fm, whole, tol float64, depth int) float64 {
	m := 0.5 * (a + b)
	lm, rm := 0.5*(a+m), 0.5*(m+b)
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonRec(f, a, m, fa, fm, flm, left, tol/2, depth-1) +
		adaptiveSimpsonRec(f, m, b, fm, fb, frm, right, tol/2, depth-1)
}
