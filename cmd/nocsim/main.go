// Command nocsim explores Network-in-Chip-Stack topologies: it evaluates
// a mesh (2D, star, 3D, ciliated, pillar-constrained) under a traffic
// pattern with the analytic queueing model and, optionally, the event
// simulator.
//
// Examples:
//
//	nocsim -topo 3d -x 4 -y 4 -z 4 -inj 0.3
//	nocsim -topo star -x 4 -y 4 -conc 4 -sweep
//	nocsim -topo pillar -x 4 -y 4 -z 4 -every 2 -inj 0.2 -sim
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/noc"
	"repro/internal/noc/analytic"
	"repro/internal/noc/sim"
)

func main() {
	var (
		topoKind = flag.String("topo", "2d", "topology: 2d, star, 3d, ciliated, pillar")
		x        = flag.Int("x", 8, "router grid extent X")
		y        = flag.Int("y", 8, "router grid extent Y")
		z        = flag.Int("z", 4, "router grid extent Z (3d/ciliated/pillar)")
		conc     = flag.Int("conc", 4, "modules per router (star/ciliated)")
		every    = flag.Int("every", 2, "TSV pillar spacing (pillar)")
		inj      = flag.Float64("inj", 0.1, "injection rate in flits/cycle/module")
		traffic  = flag.String("traffic", "uniform", "traffic: uniform, hotspot, bitcomp")
		hotspot  = flag.Float64("hotspot", 0.2, "hotspot traffic fraction")
		sweep    = flag.Bool("sweep", false, "print a latency curve up to saturation")
		runSim   = flag.Bool("sim", false, "cross-check with the event simulator")
		seed     = flag.Uint64("seed", 1, "simulator seed")
	)
	flag.Parse()

	var topo *noc.Mesh
	switch *topoKind {
	case "2d":
		topo = noc.NewMesh2D(*x, *y)
	case "star":
		topo = noc.NewStarMesh(*x, *y, *conc)
	case "3d":
		topo = noc.NewMesh3D(*x, *y, *z)
	case "ciliated":
		topo = noc.NewCiliated3D(*x, *y, *z, *conc)
	case "pillar":
		topo = noc.NewPillarMesh3D(*x, *y, *z, *every)
	default:
		fmt.Fprintf(os.Stderr, "nocsim: unknown topology %q\n", *topoKind)
		os.Exit(2)
	}

	var pattern noc.TrafficPattern
	switch *traffic {
	case "uniform":
		pattern = noc.Uniform{}
	case "hotspot":
		pattern = noc.Hotspot{Module: 0, Fraction: *hotspot}
	case "bitcomp":
		pattern = noc.BitComplement{}
	default:
		fmt.Fprintf(os.Stderr, "nocsim: unknown traffic %q\n", *traffic)
		os.Exit(2)
	}

	model := analytic.Model{Topo: topo, Traffic: pattern}
	m := topo.ComputeMetrics()
	fmt.Printf("%s: %d routers, %d modules, %d channels (%d vertical)\n",
		m.Name, m.Routers, m.Modules, m.Channels, m.VerticalChannels)
	fmt.Printf("diameter %d, avg hops %.2f, bisection %d channels, traffic %s\n",
		m.Diameter, m.AvgHops, m.BisectionChannels, pattern)
	fmt.Printf("zero-load latency %.1f cycles, saturation %.3f flits/cycle/module\n",
		model.ZeroLoadLatency(), model.SaturationRate())

	if *sweep {
		sat := model.SaturationRate()
		fmt.Printf("\n%12s %16s\n", "inj[f/c/m]", "latency[cycles]")
		for _, frac := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99} {
			r := frac * sat
			lat, ok := model.AvgLatency(r)
			if !ok {
				fmt.Printf("%12.3f %16s\n", r, "saturated")
				continue
			}
			fmt.Printf("%12.3f %16.1f\n", r, lat)
		}
		return
	}

	lat, ok := model.AvgLatency(*inj)
	if !ok {
		fmt.Printf("analytic: SATURATED at %.3f flits/cycle/module\n", *inj)
	} else {
		fmt.Printf("analytic latency at %.3f: %.1f cycles (M/M/1)\n", *inj, lat)
	}

	if *runSim {
		res := sim.Run(sim.Config{
			Topo: topo, Traffic: pattern, InjectionRate: *inj, Seed: *seed,
		})
		fmt.Printf("simulator: mean %.1f cycles, p95 %.1f, throughput %.3f, saturated=%v (%d packets)\n",
			res.MeanLatencyCycles, res.P95LatencyCycles,
			res.ThroughputPerModule, res.Saturated, res.Delivered)
	}
}
