package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestReopenTailReplayAfterIndex pins the crash-recovery contract of
// the persisted index: entries appended after the last index write are
// recovered by replaying only the segment tail, not the whole store.
func TestReopenTailReplayAfterIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const before = 10
	for i := 0; i < before; i++ {
		s.Put(key(i), testRecord(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and append more entries, then "crash": abandon the handle
	// without Close, so the index on disk still describes the pre-crash
	// extent.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const after = 5
	for i := before; i < before+after; i++ {
		s2.Put(key(i), testRecord(i))
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.IndexLoaded != before || st.Replayed != after {
		t.Fatalf("index-loaded %d replayed %d, want %d and %d",
			st.IndexLoaded, st.Replayed, before, after)
	}
	for i := 0; i < before+after; i++ {
		got, ok := r.Get(key(i))
		if !ok || !reflect.DeepEqual(got, testRecord(i)) {
			t.Fatalf("entry %d lost or changed across tail replay", i)
		}
	}
}

// TestCorruptIndexRebuilds: an unreadable index file must degrade to a
// full segment replay, never fail the open or lose entries.
func TestCorruptIndexRebuilds(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		s.Put(key(i), testRecord(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexFileName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("corrupt index broke Open: %v", err)
	}
	defer r.Close()
	if st := r.Stats(); st.Replayed != n || st.IndexLoaded != 0 {
		t.Fatalf("replayed %d index-loaded %d after corrupt index, want %d and 0",
			st.Replayed, st.IndexLoaded, n)
	}
	for i := 0; i < n; i++ {
		if _, ok := r.Get(key(i)); !ok {
			t.Fatalf("entry %d lost after index rebuild", i)
		}
	}
}

// TestStaleIndexMissingSegmentRebuilds: an index referencing a segment
// that no longer exists (interrupted compaction, manual surgery) is
// discarded wholesale and the survivors are rebuilt from disk.
func TestStaleIndexMissingSegmentRebuilds(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenOptions(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		s.Put(key(i), testRecord(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments, have %d", len(segs))
	}
	if err := os.Remove(segs[0]); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.IndexLoaded != 0 {
		t.Fatalf("stale index still loaded %d entries", st.IndexLoaded)
	}
	if st.Entries == 0 || st.Entries >= n {
		t.Fatalf("rebuild found %d entries, want between 1 and %d", st.Entries, n-1)
	}
	if st.Replayed != st.Entries {
		t.Fatalf("replayed %d into %d entries", st.Replayed, st.Entries)
	}
}

// TestTornTailAtRotationBoundary covers the crash window right after a
// rotation: the freshly rotated active segment holds nothing but the
// torn half-line. Repair must keep every pre-rotation entry, skip the
// garbage, and leave the store appendable.
func TestTornTailAtRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenOptions(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for s.Stats().Segments < 2 { // stop right after the first rotation
		s.Put(key(n), testRecord(n))
		n++
	}
	// Simulate the crash: a torn half-line is the only content of the
	// new active segment... abandon without Close so no index covers it.
	active := filepath.Join(dir, segName(s.Stats().Segments))
	st, err := os.Stat(active)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","engine":2,"record":{"scena`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenOptions(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("torn tail at rotation boundary broke Open: %v", err)
	}
	defer r.Close()
	if r.Len() != n {
		t.Fatalf("Len = %d after torn rotation tail, want %d", r.Len(), n)
	}
	if r.Stats().Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", r.Stats().Skipped)
	}
	for i := 0; i < n; i++ {
		got, ok := r.Get(key(i))
		if !ok || !reflect.DeepEqual(got, testRecord(i)) {
			t.Fatalf("entry %d lost across rotation-boundary repair", i)
		}
	}
	// The next append must start on its own line, after the repaired
	// newline, in the same (still underfull) segment.
	r.Put(key(n), testRecord(n))
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got, ok := r2.Get(key(n)); !ok || !reflect.DeepEqual(got, testRecord(n)) {
		t.Fatal("post-repair append lost")
	}
	if st2, _ := os.Stat(active); st2.Size() <= st.Size() {
		t.Fatal("post-repair append did not land in the repaired segment")
	}
}

// TestTornTailInFullSegment covers the other rotation-boundary crash:
// the segment was already past the size limit (the very next Put would
// have rotated) when the writer died mid-line. The segment is not
// reopened for appends, the garbage is skipped, and the next Put
// rotates to a fresh segment.
func TestTornTailInFullSegment(t *testing.T) {
	dir := t.TempDir()
	const limit = 512
	s, err := OpenOptions(dir, Options{SegmentBytes: limit})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for s.Stats().Segments < 2 {
		s.Put(key(n), testRecord(n))
		n++
	}
	// Stuff the active segment past the limit, ending in a torn line.
	active := filepath.Join(dir, segName(s.Stats().Segments))
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	pad, err := json.Marshal(entry{Key: "pad", Engine: 2, Record: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	for written := 0; written < limit; written += len(pad) + 1 {
		if _, err := f.Write(append(pad, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.WriteString(`{"key":"torn","engine":2,"rec`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenOptions(dir, Options{SegmentBytes: limit})
	if err != nil {
		t.Fatalf("torn tail in full segment broke Open: %v", err)
	}
	defer r.Close()
	segsBefore := r.Stats().Segments
	r.Put(key(n), testRecord(n))
	if got := r.Stats().Segments; got != segsBefore+1 {
		t.Fatalf("append to full torn segment did not rotate: %d segments, want %d",
			got, segsBefore+1)
	}
	if got, ok := r.Get(key(n)); !ok || !reflect.DeepEqual(got, testRecord(n)) {
		t.Fatal("post-rotation append lost")
	}
}

// TestLastWriteWinsAcrossSegments pins replay ordering when the same
// key appears in two segments — the layout an interrupted compaction
// or a duplicate distributed completion leaves behind. The later
// segment's record must win, through both the replay path and the
// persisted-index path.
func TestLastWriteWinsAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	k := key(0)
	older, newer := testRecord(1), testRecord(2)
	writeSegment(t, dir, 1, []entry{rawEntry(t, k, 2, older), rawEntry(t, key(9), 2, testRecord(9))})
	writeSegment(t, dir, 2, []entry{rawEntry(t, k, 2, newer)})

	// Replay path (no index file yet).
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(k); !ok || !reflect.DeepEqual(got, newer) {
		t.Fatalf("replay served %+v, want the later segment's record", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Persisted-index path.
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.IndexLoaded != 2 || st.Replayed != 0 {
		t.Fatalf("index-loaded %d replayed %d, want 2 and 0", st.IndexLoaded, st.Replayed)
	}
	if got, ok := r.Get(k); !ok || !reflect.DeepEqual(got, newer) {
		t.Fatalf("index path served %+v, want the later segment's record", got)
	}
}

// rawEntry marshals a record into a persisted entry line's struct.
func rawEntry(t *testing.T, key string, engine int, rec interface{}) entry {
	t.Helper()
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return entry{Key: key, Engine: engine, Record: raw}
}

// writeSegment hand-writes one segment file from entry lines.
func writeSegment(t *testing.T, dir string, seq int, entries []entry) {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, segName(seq)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Fprintf(f, "%s\n", line); err != nil {
			t.Fatal(err)
		}
	}
}
