package spec

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sweep"
)

// Constraint is one parsed feasibility expression over a record metric:
// "metric op value" with op one of <=, <, >=, >. Constraints are
// applied when marking the Pareto front and when the optimizer ranks
// individuals; they never change evaluated record bytes, so the point
// cache is shared across specs that differ only here.
type Constraint struct {
	// Metric names a record metric from Metrics().
	Metric string
	// Op is "<=", "<", ">=" or ">".
	Op string
	// Value is the comparison bound.
	Value float64
}

// metricGetters maps constraint metric names to record accessors.
var metricGetters = map[string]func(sweep.Record) float64{
	"tx_power_dbm":               func(r sweep.Record) float64 { return r.TxPowerDBm },
	"spectral_efficiency_bps_hz": func(r sweep.Record) float64 { return r.SpectralEfficiency },
	"code_lifting":               func(r sweep.Record) float64 { return float64(r.CodeLifting) },
	"code_window":                func(r sweep.Record) float64 { return float64(r.CodeWindow) },
	"decode_latency_bits":        func(r sweep.Record) float64 { return r.DecodeLatencyBits },
	"noc_latency_cycles":         func(r sweep.Record) float64 { return r.NoCLatencyCycles },
	"noc_saturation":             func(r sweep.Record) float64 { return r.NoCSaturation },
	"ber":                        func(r sweep.Record) float64 { return r.BER },
	"sim_latency_cycles":         func(r sweep.Record) float64 { return r.SimLatencyCycles },
}

// Metrics lists the constraint metric names in sorted order.
func Metrics() []string {
	out := make([]string, 0, len(metricGetters))
	for n := range metricGetters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseConstraint parses one "metric op value" expression.
func ParseConstraint(expr string) (Constraint, error) {
	fields := strings.Fields(expr)
	if len(fields) != 3 {
		return Constraint{}, fmt.Errorf("spec: constraint %q: want \"metric op value\" (e.g. \"tx_power_dbm <= 20\")", expr)
	}
	c := Constraint{Metric: fields[0], Op: fields[1]}
	if _, ok := metricGetters[c.Metric]; !ok {
		return Constraint{}, fmt.Errorf("spec: constraint %q: unknown metric %q (have %v)", expr, c.Metric, Metrics())
	}
	switch c.Op {
	case "<=", "<", ">=", ">":
	default:
		return Constraint{}, fmt.Errorf("spec: constraint %q: unknown operator %q (<=, <, >= or >)", expr, c.Op)
	}
	v, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return Constraint{}, fmt.Errorf("spec: constraint %q: bound %q is not a finite number", expr, fields[2])
	}
	c.Value = v
	return c, nil
}

// String renders the constraint in canonical form: single spaces and
// the shortest round-trip number.
func (c Constraint) String() string {
	return c.Metric + " " + c.Op + " " + strconv.FormatFloat(c.Value, 'g', -1, 64)
}

// Holds reports whether the record satisfies the constraint. A record
// that failed evaluation (Err set) never satisfies any constraint.
func (c Constraint) Holds(r sweep.Record) bool {
	if r.Err != "" {
		return false
	}
	v := metricGetters[c.Metric](r)
	switch c.Op {
	case "<=":
		return v <= c.Value
	case "<":
		return v < c.Value
	case ">=":
		return v >= c.Value
	}
	return v > c.Value
}

// FeasibleFunc builds the conjunction of the spec's constraints as a
// predicate for Pareto marking and optimizer ranking, or nil when the
// spec has none (callers treat nil as "Err-free is feasible").
func (s *Spec) FeasibleFunc() (func(sweep.Record) bool, error) {
	if len(s.Constraints) == 0 {
		return nil, nil
	}
	cs := make([]Constraint, len(s.Constraints))
	for i, expr := range s.Constraints {
		c, err := ParseConstraint(expr)
		if err != nil {
			return nil, err
		}
		cs[i] = c
	}
	return func(r sweep.Record) bool {
		for _, c := range cs {
			if !c.Holds(r) {
				return false
			}
		}
		return true
	}, nil
}
