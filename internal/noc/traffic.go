package noc

import "fmt"

// TrafficPattern assigns each ordered module pair a share of the source
// module's injected traffic. Shares from one source over all
// destinations sum to 1.
type TrafficPattern interface {
	// Share returns the fraction of src's traffic addressed to dst
	// (0 for dst == src).
	Share(src, dst, numModules int) float64
	// String names the pattern for reports.
	String() string
}

// Uniform is the paper's global uniform traffic: every module addresses
// all other modules with equal probability.
type Uniform struct{}

// Share implements TrafficPattern.
func (Uniform) Share(src, dst, numModules int) float64 {
	if src == dst || numModules < 2 {
		return 0
	}
	return 1 / float64(numModules-1)
}

func (Uniform) String() string { return "uniform" }

// Hotspot sends a fixed fraction of every module's traffic to one hot
// module and spreads the rest uniformly.
type Hotspot struct {
	// Module is the hot destination.
	Module int
	// Fraction in [0, 1] is the share addressed to the hot module.
	Fraction float64
}

// Share implements TrafficPattern.
func (h Hotspot) Share(src, dst, numModules int) float64 {
	if src == dst || numModules < 2 {
		return 0
	}
	if h.Fraction < 0 || h.Fraction > 1 {
		panic(fmt.Sprintf("noc: hotspot fraction %g outside [0,1]", h.Fraction))
	}
	uniformShare := (1 - h.Fraction) / float64(numModules-1)
	if dst == h.Module {
		if src == h.Module {
			return 0
		}
		return h.Fraction + uniformShare
	}
	// Sources other than the hotspot spread the remainder; the hotspot
	// module itself sends uniformly.
	if src == h.Module {
		return 1 / float64(numModules-1)
	}
	return uniformShare
}

func (h Hotspot) String() string {
	return fmt.Sprintf("hotspot(module %d, %.0f%%)", h.Module, 100*h.Fraction)
}

// BitComplement sends all traffic of module i to module N-1-i — a
// worst-case permutation that stresses the bisection.
type BitComplement struct{}

// Share implements TrafficPattern.
func (BitComplement) Share(src, dst, numModules int) float64 {
	if dst == numModules-1-src && dst != src {
		return 1
	}
	return 0
}

func (BitComplement) String() string { return "bit-complement" }
