package ldpc

import (
	"fmt"

	"repro/internal/rng"
)

// Code is a lifted binary LDPC code in sparse parity-check form, ready
// for belief-propagation decoding.
type Code struct {
	// NumVars and NumChecks give the lifted dimensions.
	NumVars, NumChecks int
	// Lifting is the permutation (circulant) size N.
	Lifting int
	// BlockLen is the number of code bits per coupled codeword position
	// (N*nv); 0 block structure means an uncoupled block code.
	BlockLen int
	// CheckBlockLen is the number of checks per position (N*nc).
	CheckBlockLen int
	// Memory is mcc for convolutional codes (0 for block codes).
	Memory int
	// Positions is L for convolutional codes (1 for block codes).
	Positions int

	// checkPtr/checkVar give, per check, the adjacent variable indices:
	// edges of check c are checkVar[checkPtr[c]:checkPtr[c+1]].
	checkPtr []int32
	checkVar []int32
	// varPtr/varEdge give, per variable, the edge ids (check-major
	// positions in checkVar) incident to it.
	varPtr  []int32
	varEdge []int32
}

// NumEdges returns the Tanner-graph edge count.
func (c *Code) NumEdges() int { return len(c.checkVar) }

// Rate returns the design rate 1 - checks/vars.
func (c *Code) Rate() float64 {
	return 1 - float64(c.NumChecks)/float64(c.NumVars)
}

// CheckNeighbors returns the variables adjacent to check chk (no copy).
func (c *Code) CheckNeighbors(chk int) []int32 {
	return c.checkVar[c.checkPtr[chk]:c.checkPtr[chk+1]]
}

// VarEdges returns the incident edge ids of variable v (no copy).
func (c *Code) VarEdges(v int) []int32 {
	return c.varEdge[c.varPtr[v]:c.varPtr[v+1]]
}

// liftCandidates is the number of seeded shift assignments Lift and
// LiftConvolutional evaluate before keeping the one with the fewest
// 4-cycles. Short cycles dominate the BP error floor of small-N lifts
// (N = 25..60 in Fig. 10), so the search pays for itself immediately.
const liftCandidates = 24

// Lift expands a protograph into a quasi-cyclic code with circulant size
// N. Each base-matrix entry of multiplicity k becomes k superimposed
// circulants with distinct shifts. Among liftCandidates deterministic
// shift assignments derived from the seed, the one whose lifted Tanner
// graph has the fewest 4-cycles is kept (stopping early at zero).
func Lift(b BaseMatrix, N int, seed uint64) *Code {
	if N < 1 {
		panic(fmt.Sprintf("ldpc: lifting factor %d < 1", N))
	}
	var best *Code
	bestCycles := -1
	for k := uint64(0); k < liftCandidates; k++ {
		c := liftOnce(b, N, seed+k)
		cycles := Count4Cycles(c)
		if bestCycles < 0 || cycles < bestCycles {
			best, bestCycles = c, cycles
			if cycles == 0 {
				break
			}
		}
	}
	return best
}

func liftOnce(b BaseMatrix, N int, seed uint64) *Code {
	nc, nv := b.NumChecks(), b.NumVars()
	shifts := chooseShifts(b, N, seed)
	code := &Code{
		NumVars:   nv * N,
		NumChecks: nc * N,
		Lifting:   N,
		BlockLen:  nv * N,
		Positions: 1,
	}
	code.CheckBlockLen = nc * N
	buildAdjacency(code, nc, nv, N, shifts)
	return code
}

// Count4Cycles counts length-4 cycles in the lifted Tanner graph: pairs
// of checks sharing two or more variables.
func Count4Cycles(c *Code) int {
	pairCount := map[[2]int32]int32{}
	for v := 0; v < c.NumVars; v++ {
		edges := c.VarEdges(v)
		for i := 0; i < len(edges); i++ {
			ci := int32(c.CheckOfEdge(edges[i]))
			for j := i + 1; j < len(edges); j++ {
				cj := int32(c.CheckOfEdge(edges[j]))
				a, b := ci, cj
				if a > b {
					a, b = b, a
				}
				pairCount[[2]int32{a, b}]++
			}
		}
	}
	cycles := 0
	for _, n := range pairCount {
		cycles += int(n*(n-1)) / 2
	}
	return cycles
}

// LiftConvolutional expands a terminated convolutional protograph (from
// EdgeSpreading.ConvProtograph) time-invariantly: every codeword position
// reuses the same component shifts, preserving the convolutional
// structure the window decoder exploits. As in Lift, several seeded
// shift assignments are tried and the fewest-4-cycle graph is kept.
func LiftConvolutional(s EdgeSpreading, L, N int, seed uint64) *Code {
	if N < 1 {
		panic(fmt.Sprintf("ldpc: lifting factor %d < 1", N))
	}
	var best *Code
	bestCycles := -1
	for k := uint64(0); k < liftCandidates; k++ {
		c := liftConvOnce(s, L, N, seed+k)
		cycles := Count4Cycles(c)
		if bestCycles < 0 || cycles < bestCycles {
			best, bestCycles = c, cycles
			if cycles == 0 {
				break
			}
		}
	}
	return best
}

func liftConvOnce(s EdgeSpreading, L, N int, seed uint64) *Code {
	mcc := s.Memory()
	nc := s.Components[0].NumChecks()
	nv := s.Components[0].NumVars()

	// Shifts per component, shared across positions (time-invariant).
	compShifts := make([]map[[2]int][]int, len(s.Components))
	stream := rng.New(seed)
	for i, comp := range s.Components {
		compShifts[i] = chooseShiftsStream(comp, N, stream)
	}

	code := &Code{
		NumVars:       L * nv * N,
		NumChecks:     (L + mcc) * nc * N,
		Lifting:       N,
		BlockLen:      nv * N,
		CheckBlockLen: nc * N,
		Memory:        mcc,
		Positions:     L,
	}

	// Adjacency: check block r couples variable block r-i through
	// component i.
	type entry struct {
		colBlock int // variable block index (position * nv + varType)
		shifts   []int
	}
	rowEntries := make([][]entry, (L+mcc)*nc)
	for t := 0; t < L; t++ {
		for i, comp := range s.Components {
			r := t + i
			for c := 0; c < nc; c++ {
				for v := 0; v < nv; v++ {
					if comp[c][v] == 0 {
						continue
					}
					rowEntries[r*nc+c] = append(rowEntries[r*nc+c], entry{
						colBlock: t*nv + v,
						shifts:   compShifts[i][[2]int{c, v}],
					})
				}
			}
		}
	}

	checkPtr := make([]int32, code.NumChecks+1)
	var checkVar []int32
	for rowBlock, entries := range rowEntries {
		for j := 0; j < N; j++ { // row within circulant
			chk := rowBlock*N + j
			checkPtr[chk] = int32(len(checkVar))
			for _, e := range entries {
				for _, sh := range e.shifts {
					checkVar = append(checkVar, int32(e.colBlock*N+(j+sh)%N))
				}
			}
		}
	}
	checkPtr[code.NumChecks] = int32(len(checkVar))
	code.checkPtr = checkPtr
	code.checkVar = checkVar
	code.buildVarIndex()
	return code
}

// chooseShifts draws circulant shifts for every base entry.
func chooseShifts(b BaseMatrix, N int, seed uint64) map[[2]int][]int {
	return chooseShiftsStream(b, N, rng.New(seed))
}

func chooseShiftsStream(b BaseMatrix, N int, stream *rng.Stream) map[[2]int][]int {
	shifts := map[[2]int][]int{}
	for c := range b {
		for v, mult := range b[c] {
			if mult == 0 {
				continue
			}
			if mult > N {
				panic(fmt.Sprintf("ldpc: multiplicity %d exceeds lifting %d at (%d,%d)", mult, N, c, v))
			}
			used := map[int]bool{}
			var list []int
			for k := 0; k < mult; k++ {
				best := -1
				for try := 0; try < 32; try++ {
					s := stream.Intn(N)
					if used[s] {
						continue
					}
					best = s
					// Avoid short cycles within this entry: two shifts
					// s1, s2 and another pair in the same row/col pair
					// form 4-cycles when differences collide.
					ok := true
					for _, prev := range list {
						d := (s - prev + N) % N
						if d == 0 || (2*d)%N == 0 {
							ok = false
							break
						}
					}
					if ok {
						break
					}
				}
				if best < 0 {
					// Fall back to the first unused shift.
					for s := 0; s < N; s++ {
						if !used[s] {
							best = s
							break
						}
					}
				}
				used[best] = true
				list = append(list, best)
			}
			shifts[[2]int{c, v}] = list
		}
	}
	return shifts
}

// buildAdjacency fills the sparse structure for a single-position code.
func buildAdjacency(code *Code, nc, nv, N int, shifts map[[2]int][]int) {
	checkPtr := make([]int32, code.NumChecks+1)
	var checkVar []int32
	for c := 0; c < nc; c++ {
		for j := 0; j < N; j++ {
			chk := c*N + j
			checkPtr[chk] = int32(len(checkVar))
			for v := 0; v < nv; v++ {
				for _, sh := range shifts[[2]int{c, v}] {
					checkVar = append(checkVar, int32(v*N+(j+sh)%N))
				}
			}
		}
	}
	checkPtr[code.NumChecks] = int32(len(checkVar))
	code.checkPtr = checkPtr
	code.checkVar = checkVar
	code.buildVarIndex()
}

// buildVarIndex derives the variable-major edge index from the
// check-major adjacency.
func (c *Code) buildVarIndex() {
	degree := make([]int32, c.NumVars)
	for _, v := range c.checkVar {
		degree[v]++
	}
	c.varPtr = make([]int32, c.NumVars+1)
	for v := 0; v < c.NumVars; v++ {
		c.varPtr[v+1] = c.varPtr[v] + degree[v]
	}
	c.varEdge = make([]int32, len(c.checkVar))
	fill := make([]int32, c.NumVars)
	for e, v := range c.checkVar {
		c.varEdge[c.varPtr[v]+fill[v]] = int32(e)
		fill[v]++
	}
}

// CheckOfEdge returns the check node an edge id belongs to (by binary
// search over the check pointers).
func (c *Code) CheckOfEdge(e int32) int {
	lo, hi := 0, c.NumChecks
	for lo < hi {
		mid := (lo + hi) / 2
		if c.checkPtr[mid+1] <= e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Syndrome reports whether hard decisions satisfy all parity checks.
func (c *Code) Syndrome(hard []uint8) bool {
	if len(hard) != c.NumVars {
		panic("ldpc: syndrome length mismatch")
	}
	for chk := 0; chk < c.NumChecks; chk++ {
		var parity uint8
		for _, v := range c.CheckNeighbors(chk) {
			parity ^= hard[v]
		}
		if parity != 0 {
			return false
		}
	}
	return true
}
