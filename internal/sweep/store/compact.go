package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/fsio"
	"repro/internal/sweep"
)

// Compaction rewrites the live entries into fresh segments and deletes
// the old ones, reclaiming the space held by entries stamped with a
// stale engine version and by keys shadowed in more than one segment.
//
// The swap is crash-safe without a transaction log because replay is
// last-write-wins by segment order and the rewritten segments always
// take sequence numbers above every existing one:
//
//  1. Live entries are copied (raw line bytes, preserving legacy
//     formats) into segments seg-(N+1)..seg-(N+k), each written to a
//     temp file and atomically renamed into place, ascending, with
//     directory fsyncs. A crash here leaves temp files Open ignores
//     (and deletes), or renamed segments whose entries byte-identically
//     shadow their old copies.
//  2. Only then are the old segments seg-1..seg-N unlinked. A crash
//     mid-delete leaves survivors whose entries are shadowed by the
//     rewritten copies above them.
//
// At every instant an Open of the directory serves exactly the live
// records; an interrupted compaction costs only un-reclaimed space,
// recovered by the next Compact.

// CompactResult summarizes one compaction pass.
type CompactResult struct {
	// Kept counts the live entries carried into the rewritten segments.
	Kept int `json:"kept"`
	// DroppedStale counts entries discarded because their stamped
	// engine version no longer matches sweep.EngineVersion.
	DroppedStale int `json:"dropped_stale"`
	// DroppedShadowed counts on-disk lines superseded by a later write
	// of the same key (the in-memory index never served them).
	DroppedShadowed int `json:"dropped_shadowed"`
	// SegmentsBefore/After and BytesBefore/After measure the reclaim.
	SegmentsBefore int   `json:"segments_before"`
	SegmentsAfter  int   `json:"segments_after"`
	BytesBefore    int64 `json:"bytes_before"`
	BytesAfter     int64 `json:"bytes_after"`
}

// Add folds another pass's counters in (used by Sharded.Compact).
func (r *CompactResult) Add(o CompactResult) {
	r.Kept += o.Kept
	r.DroppedStale += o.DroppedStale
	r.DroppedShadowed += o.DroppedShadowed
	r.SegmentsBefore += o.SegmentsBefore
	r.SegmentsAfter += o.SegmentsAfter
	r.BytesBefore += o.BytesBefore
	r.BytesAfter += o.BytesAfter
}

// liveEntry pairs a key with its index entry during compaction.
type liveEntry struct {
	key string
	e   *indexEntry
}

// failpoint invokes the test-injected compaction failure hook, which
// simulates a crash between swap stages.
func (s *Store) failpoint(stage string) error {
	if s.compactFail != nil {
		return s.compactFail(stage)
	}
	return nil
}

// Compact rewrites the store's segments keeping only live entries: the
// current winner of every key whose engine version matches
// sweep.EngineVersion. Entries predating engine stamping are kept —
// they cannot be told apart from current ones, and compaction must
// never drop a servable record. The store is locked for the duration;
// concurrent Gets and Puts block until the swap completes.
func (s *Store) Compact() (CompactResult, error) {
	if s.met != nil {
		defer func(start time.Time) {
			s.met.compactions.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var res CompactResult
	if s.closed {
		return res, fmt.Errorf("store: compact: store is closed")
	}
	if s.writeErr != nil {
		return res, fmt.Errorf("store: compact: deferred write error: %w", s.writeErr)
	}

	// Flush and drop the active handle: the rewrite reads every live
	// line through the reader cache, and the swap replaces the file.
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			return res, fmt.Errorf("store: compact: %w", err)
		}
		s.active.Close()
		s.active = nil
	}
	// Whatever happens past this point changed enough state that the
	// next clean Close should re-persist the index; the success path
	// resets this after writing a fresh one.
	s.indexDirty = true

	oldSeqs := s.segSeqsLocked()
	res.SegmentsBefore = len(oldSeqs)
	onDiskLines := 0
	for _, seq := range oldSeqs {
		res.BytesBefore += s.segs[seq]
		n, err := countLines(filepath.Join(s.dir, segName(seq)))
		if err != nil {
			return res, err
		}
		onDiskLines += n
	}

	// Partition the index into live and stale, ordered by on-disk
	// position so the rewrite preserves temporal order and reads
	// near-sequentially.
	var live []liveEntry
	var stale []string
	for key, e := range s.index {
		if e.engine == 0 || e.engine == sweep.EngineVersion {
			live = append(live, liveEntry{key, e})
		} else {
			stale = append(stale, key)
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].e.seg != live[j].e.seg {
			return live[i].e.seg < live[j].e.seg
		}
		return live[i].e.off < live[j].e.off
	})
	res.Kept = len(live)
	res.DroppedStale = len(stale)
	res.DroppedShadowed = onDiskLines - len(s.index)

	if err := s.failpoint("before-swap"); err != nil {
		return res, err
	}

	// Stage 1: write the rewritten segments above every existing
	// sequence number. writeCompactedLocked registers each renamed
	// segment in s.segs/activeSeq as it lands, so an abort mid-swap
	// leaves in-process bookkeeping matching the directory.
	newSeqs, newLoc, err := s.writeCompactedLocked(live)
	if err != nil {
		return res, err
	}

	if err := s.failpoint("before-delete"); err != nil {
		return res, err
	}

	// Stage 2: the swap is durable — apply the new world in memory,
	// then unlink the old segments.
	for _, l := range live {
		loc := newLoc[l.key]
		l.e.seg, l.e.off, l.e.length = loc.seg, loc.off, loc.length
	}
	for _, key := range stale {
		delete(s.index, key)
	}
	var delErr error
	for _, seq := range oldSeqs {
		delete(s.segs, seq)
		if r, ok := s.readers[seq]; ok {
			r.Close()
			delete(s.readers, seq)
		}
		if err := os.Remove(filepath.Join(s.dir, segName(seq))); err != nil && delErr == nil {
			delErr = err
		}
		if err := s.failpoint("mid-delete"); err != nil {
			return res, err
		}
	}
	if delErr != nil {
		return res, fmt.Errorf("store: compact: %w", delErr)
	}
	if err := fsio.SyncDir(s.dir); err != nil {
		return res, fmt.Errorf("store: compact: %w", err)
	}

	res.SegmentsAfter = len(newSeqs)
	for _, seq := range newSeqs {
		res.BytesAfter += s.segs[seq]
	}

	// Reopen the tail segment for appends if it has room.
	if len(newSeqs) > 0 {
		last := newSeqs[len(newSeqs)-1]
		if s.segs[last] < s.segLimit {
			if err := s.openActive(last, s.segs[last]); err != nil {
				return res, err
			}
		}
	}

	// Persist a fresh index so the next Open maps the new layout
	// without replay.
	if err := s.writeIndexLocked(); err != nil {
		return res, err
	}
	s.indexDirty = false
	return res, nil
}

// compactLoc is where a live entry landed in the rewritten segments.
type compactLoc struct {
	seg    int
	off    int64
	length int64
}

// writeCompactedLocked copies the live entries' raw lines into fresh
// segments numbered above activeSeq, each atomically renamed into
// place in ascending order, and returns the new sequence numbers plus
// each key's new location.
func (s *Store) writeCompactedLocked(live []liveEntry) (newSeqs []int, newLoc map[string]compactLoc, err error) {
	newLoc = make(map[string]compactLoc, len(live))
	i := 0
	for i < len(live) {
		seq := s.activeSeq + 1
		first := i
		var size int64
		// Greedily pack entries until the segment limit; always take at
		// least one so an oversized single entry still lands somewhere.
		for i < len(live) && (i == first || size+live[i].e.length <= s.segLimit) {
			size += live[i].e.length
			i++
		}
		batch := live[first:i]
		var off int64
		werr := fsio.WriteFileAtomic(filepath.Join(s.dir, segName(seq)), func(f *os.File) error {
			for _, l := range batch {
				line, rerr := s.readLineLocked(l.e)
				if rerr != nil {
					return rerr
				}
				line = append(line, '\n')
				n, werr := f.Write(line)
				if werr != nil {
					return werr
				}
				newLoc[l.key] = compactLoc{seg: seq, off: off, length: int64(n)}
				off += int64(n)
			}
			return nil
		})
		if werr != nil {
			return newSeqs, nil, fmt.Errorf("store: compact: %w", werr)
		}
		newSeqs = append(newSeqs, seq)
		s.segs[seq] = off
		s.activeSeq = seq
		if err := s.failpoint("mid-swap"); err != nil {
			return newSeqs, nil, err
		}
	}
	return newSeqs, newLoc, nil
}

// countLines counts the well-formed entry lines of one segment.
func countLines(path string) (int, error) {
	n := 0
	_, err := scanSegment(path, 0, func(entry, int64, int64) { n++ })
	return n, err
}
