// Package rng provides deterministic, splittable random-number streams
// for reproducible Monte-Carlo experiments.
//
// Every experiment in the library takes an explicit seed; parallel workers
// derive independent sub-streams with Split, so results do not depend on
// scheduling order or worker count. Split is a pure function of (seed, n)
// — no shared state — which is the root of the repository-wide
// determinism contract (see ARCHITECTURE.md): the paper's BER curves
// (Fig. 10), NoC simulations (Fig. 8) and every design-space sweep
// reproduce byte-identically on one goroutine, many, or a distributed
// worker fleet.
package rng

import (
	"math"
	"math/rand"
)

// Stream is a deterministic random source with Gaussian and discrete
// helpers. It is not safe for concurrent use; derive one Stream per
// goroutine with Split.
type Stream struct {
	r *rand.Rand
	// spare caches the second Box-Muller deviate.
	spare    float64
	hasSpare bool
	seed     uint64
	splits   uint64
}

// New returns a Stream seeded deterministically from seed.
//
// The underlying generator is materialised lazily on the first draw:
// seeding math/rand's additive generator costs microseconds, and most
// streams in a sweep are pure split roots — New(seed).Split(i) derives
// children from the seed value alone — so eager seeding would pay that
// cost once per design point without ever drawing a number. The draw
// sequence of every stream is identical to eager seeding.
func New(seed uint64) *Stream {
	return &Stream{seed: seed}
}

// src returns the stream's generator, seeding it on first use.
func (s *Stream) src() *rand.Rand {
	if s.r == nil {
		s.r = rand.New(rand.NewSource(int64(mix(s.seed))))
	}
	return s.r
}

// mix is the SplitMix64 finaliser; it decorrelates nearby seeds.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives the n-th child stream. Children of distinct (seed, n)
// pairs are decorrelated by the SplitMix64 finaliser.
func (s *Stream) Split(n uint64) *Stream {
	return New(mix(s.seed ^ mix(n+0x1234_5678_9abc_def0)))
}

// Next derives a fresh child stream, advancing an internal split counter.
// Successive calls return independent streams.
func (s *Stream) Next() *Stream {
	s.splits++
	return s.Split(s.splits)
}

// Float64 returns a uniform deviate in [0, 1).
func (s *Stream) Float64() float64 { return s.src().Float64() }

// Intn returns a uniform integer in [0, n).
func (s *Stream) Intn(n int) int { return s.src().Intn(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Stream) Uint64() uint64 { return s.src().Uint64() }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.src().Perm(n) }

// Norm returns a standard normal deviate via Box-Muller with caching.
func (s *Stream) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	r := s.src()
	var u, v, q float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		q = u*u + v*v
		if q > 0 && q < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(q) / q)
	s.spare = v * f
	s.hasSpare = true
	return u * f
}

// NormScaled returns a normal deviate with the given mean and standard
// deviation.
func (s *Stream) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*s.Norm()
}

// FillNorm fills dst with i.i.d. N(0, stddev^2) deviates.
func (s *Stream) FillNorm(dst []float64, stddev float64) {
	for i := range dst {
		dst[i] = stddev * s.Norm()
	}
}

// Exp returns an exponential deviate with the given rate (mean 1/rate).
// It panics on a non-positive rate.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: non-positive exponential rate")
	}
	return s.src().ExpFloat64() / rate
}

// Poisson returns a Poisson deviate with the given mean using Knuth's
// method for small means and normal approximation beyond 500 (where the
// relative error is < 0.1%).
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		v := math.Round(s.NormScaled(mean, math.Sqrt(mean)))
		if v < 0 {
			return 0
		}
		return int(v)
	}
	limit := math.Exp(-mean)
	r := s.src()
	k, p := 0, 1.0
	for p > limit {
		k++
		p *= r.Float64()
	}
	return k - 1
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool { return s.src().Float64() < p }
