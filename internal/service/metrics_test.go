package service

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/sweep/store"
)

// metricLine matches one Prometheus sample: name, optional label set,
// value. Kept in sync with the stricter parser tests in internal/obs;
// here it guards the service-level exposition end to end.
var metricLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

// scrapeMetrics fetches GET /metrics and returns the samples keyed by
// "name{labels}", failing the test on any malformed line.
func scrapeMetrics(t *testing.T, srv *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("GET /metrics content type = %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("invalid exposition line: %q", line)
		}
		space := strings.LastIndexByte(line, ' ')
		key, valStr := line[:space], line[space+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[key] = v
	}
	return samples
}

// sumByPrefix folds every sample whose key starts with prefix — the way
// to total a family across label values (per-worker counters, per-shard
// gauges) without pinning which labels exist.
func sumByPrefix(samples map[string]float64, prefix string) float64 {
	var total float64
	for k, v := range samples {
		if strings.HasPrefix(k, prefix) {
			total += v
		}
	}
	return total
}

// TestMetricsLifecycle is the observability acceptance test: a
// store-backed distributed daemon, two HTTP workers, one job — and the
// assertions that (a) the run populated every metric family the issue
// promises (HTTP, job, lease, worker, store) and (b) observing changed
// nothing: the result is still byte-identical to a single-node run.
func TestMetricsLifecycle(t *testing.T) {
	const (
		scenario = "paper-baseline"
		seed     = 21
	)
	sc, err := sweep.Get(scenario)
	if err != nil {
		t.Fatal(err)
	}
	single, err := sweep.Run(context.Background(), sc, sweep.Config{
		Workers: 1, Seed: seed, Budget: sweep.AnalyticBudget(),
	})
	if err != nil {
		t.Fatal(err)
	}
	total := len(single.Records)

	// One registry spans the store and the service, exactly like
	// cmd/sweepd wires it.
	reg := obs.NewRegistry()
	st, err := store.OpenSharded(t.TempDir(), 2, store.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := New(Options{
		JobWorkers:  1,
		Distributed: true,
		ChunkPoints: 3,
		LeaseTTL:    10 * time.Second,
		Cache:       st,
		Metrics:     reg,
		StoreStats: func() (store.Stats, []store.Stats) {
			return st.Stats(), st.ShardStats()
		},
	})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	v := submit(t, srv, Request{Scenario: scenario, Budget: "analytic", Seed: seed}, http.StatusAccepted)

	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunWorker(wctx, NewClient(srv.URL), WorkerOptions{
				Name: name, Poll: 10 * time.Millisecond, Workers: 1,
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker %s: %v", name, err)
			}
		}()
	}
	pollDone(t, srv, v.ID)
	stopWorkers()
	wg.Wait()

	// Determinism first: the instrumented fleet run answers exactly what
	// one process would. Metrics observe, never influence.
	fleet, err := m.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var fleetJSON, singleJSON bytes.Buffer
	if err := sweep.WriteJSON(&fleetJSON, fleet); err != nil {
		t.Fatal(err)
	}
	if err := sweep.WriteJSON(&singleJSON, single); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fleetJSON.Bytes(), singleJSON.Bytes()) {
		t.Fatal("instrumented fleet result differs from single-node run")
	}

	samples := scrapeMetrics(t, srv)
	ft := float64(total)

	// Job manager families.
	if got := samples[`sweepd_jobs_submitted_total{kind="sweep"}`]; got != 1 {
		t.Errorf("jobs submitted = %v, want 1", got)
	}
	if got := samples[`sweepd_jobs_finished_total{kind="sweep",state="done"}`]; got != 1 {
		t.Errorf("jobs finished done = %v, want 1", got)
	}
	if got := samples[`sweepd_job_duration_seconds_count{kind="sweep"}`]; got != 1 {
		t.Errorf("job duration observations = %v, want 1", got)
	}
	if got := samples[`sweepd_job_points_total{fate="computed"}`]; got != ft {
		t.Errorf("computed points = %v, want %v", got, ft)
	}
	if got := samples[`sweepd_job_queue_depth`]; got != 0 {
		t.Errorf("queue depth after completion = %v, want 0", got)
	}
	if got := samples[`sweepd_jobs_running`]; got != 0 {
		t.Errorf("jobs running after completion = %v, want 0", got)
	}

	// Dispatcher and worker families. Every chunk was leased at least
	// once and completed exactly once; each completion books a
	// turnaround observation and per-worker credit.
	issued := samples[`sweepd_leases_total{event="issued"}`]
	completed := samples[`sweepd_leases_total{event="completed"}`]
	if completed < 1 || issued < completed {
		t.Errorf("leases issued=%v completed=%v, want completed >= 1 and issued >= completed", issued, completed)
	}
	if got := samples[`sweepd_lease_turnaround_seconds_count`]; got != completed {
		t.Errorf("turnaround observations = %v, want %v", got, completed)
	}
	if got := sumByPrefix(samples, `sweepd_worker_points_total{`); got != ft {
		t.Errorf("fleet worker points = %v, want %v", got, ft)
	}

	// HTTP middleware families. The submit POST succeeded exactly once,
	// and the scrape request itself is the one in flight right now.
	if got := samples[`sweepd_http_requests_total{route="POST /api/v1/jobs",code="2xx"}`]; got != 1 {
		t.Errorf("submit requests = %v, want 1", got)
	}
	if got := samples[`sweepd_http_request_duration_seconds_count{route="POST /api/v1/jobs"}`]; got != 1 {
		t.Errorf("submit duration observations = %v, want 1", got)
	}
	if got := samples[`sweepd_http_in_flight_requests`]; got != 1 {
		t.Errorf("in-flight during scrape = %v, want 1 (the scrape itself)", got)
	}

	// Store families: every point was looked up (miss) and persisted,
	// and the per-shard entry gauges sum to the grid.
	if got := samples[`sweep_store_puts_total`]; got != ft {
		t.Errorf("store puts = %v, want %v", got, ft)
	}
	if got := samples[`sweep_store_gets_total{result="miss"}`]; got < ft {
		t.Errorf("store misses = %v, want >= %v", got, ft)
	}
	lookups := samples[`sweep_store_gets_total{result="miss"}`] + samples[`sweep_store_gets_total{result="hit"}`]
	if got := samples[`sweep_store_get_seconds_count`]; got != lookups {
		t.Errorf("get latency observations = %v, want %v (every lookup timed)", got, lookups)
	}
	if got := sumByPrefix(samples, `sweep_store_shard_entries{`); got != ft {
		t.Errorf("shard entries sum = %v, want %v", got, ft)
	}
}

// TestHealthzCacheHitRateTransition drives the miss-to-hit transition
// through the job path: a cold job misses every point (rate 0), an
// identical resubmission hits every point, and healthz reports the
// blended rate.
func TestHealthzCacheHitRateTransition(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := New(Options{
		JobWorkers: 1,
		Cache:      st,
		StoreStats: func() (store.Stats, []store.Stats) {
			return st.Stats(), nil
		},
	})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	hitRate := func() float64 {
		t.Helper()
		var payload map[string]any
		getJSON(t, srv, "/healthz", &payload)
		rate, ok := payload["cache_hit_rate"].(float64)
		if !ok {
			t.Fatalf("healthz payload has no cache_hit_rate: %v", payload)
		}
		return rate
	}

	if got := hitRate(); got != 0 {
		t.Fatalf("cache_hit_rate before any job = %v, want 0", got)
	}

	req := Request{Scenario: "embedded-box", Budget: "analytic", Seed: 9}
	first := submit(t, srv, req, http.StatusAccepted)
	pollDone(t, srv, first.ID)
	if got := hitRate(); got != 0 {
		t.Fatalf("cache_hit_rate after cold job = %v, want 0 (every point missed)", got)
	}

	second := submit(t, srv, req, http.StatusAccepted)
	sv := pollDone(t, srv, second.ID)
	if sv.Progress.Cached != sv.Progress.Total {
		t.Fatalf("resubmission cached %d of %d points", sv.Progress.Cached, sv.Progress.Total)
	}
	// Cold job: N misses. Warm job: N hits. Blended: exactly one half.
	if got := hitRate(); got != 0.5 {
		t.Fatalf("cache_hit_rate after warm job = %v, want 0.5", got)
	}
}

// TestMetricsRouteIsInstrumented pins that /metrics goes through the
// same middleware as every other route: scraping twice must show the
// first scrape counted.
func TestMetricsRouteIsInstrumented(t *testing.T) {
	m := New(Options{JobWorkers: 1})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	scrapeMetrics(t, srv)
	samples := scrapeMetrics(t, srv)
	if got := samples[`sweepd_http_requests_total{route="GET /metrics",code="2xx"}`]; got != 1 {
		t.Fatalf("first scrape not counted by the second: %v", got)
	}
}
