// Command linkcalc is an interactive link-budget calculator for wireless
// board-to-board links in the 200+ GHz range, using the paper's Table I
// parameter set as defaults.
//
// Example:
//
//	linkcalc -dist 0.3 -snr 15 -butler
//	linkcalc -dist 0.1 -rate 100
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/linkbudget"
	"repro/internal/units"
)

func main() {
	var (
		dist    = flag.Float64("dist", 0.1, "link distance in metres")
		snr     = flag.Float64("snr", 0, "target receiver SNR in dB (used when -rate is 0)")
		rate    = flag.Float64("rate", 0, "target data rate in Gbit/s (derives the SNR via Shannon, dual polarisation)")
		margin  = flag.Float64("margin", 3, "SNR margin in dB added to the Shannon requirement")
		butler  = flag.Bool("butler", false, "apply the Butler-matrix direction-mismatch penalty")
		nf      = flag.Float64("nf", 10, "receiver noise figure in dB")
		bw      = flag.Float64("bw", 25, "bandwidth in GHz")
		showTab = flag.Bool("table", false, "print the Table I parameter set and exit")
	)
	flag.Parse()

	b := linkbudget.TableI()
	b.RXNoiseFigureDB = *nf
	b.BandwidthHz = *bw * 1e9

	if *showTab {
		fmt.Print(b.String())
		return
	}
	if *dist <= 0 {
		fmt.Fprintln(os.Stderr, "linkcalc: distance must be positive")
		os.Exit(2)
	}

	targetSNR := *snr
	if *rate > 0 {
		perPol := *rate * 1e9 / 2 / b.BandwidthHz
		targetSNR = units.DB(math.Pow(2, perPol)-1) + *margin
		fmt.Printf("rate %.0f Gbit/s over %s dual-pol -> %.2f bit/s/Hz/pol -> SNR %.2f dB (incl. %.1f dB margin)\n",
			*rate, units.FormatHz(b.BandwidthHz), perPol, targetSNR, *margin)
	}

	ptx := b.RequiredTxPowerDBm(*dist, targetSNR, *butler)
	fmt.Printf("distance      : %.0f mm\n", *dist*1e3)
	fmt.Printf("pathloss      : %s\n", units.FormatDB(b.Pathloss.LossDB(*dist)))
	fmt.Printf("noise floor   : %s (kTB at %.0f K, %s)\n",
		units.FormatDBm(b.NoiseFloorDBm()), b.RXTempK, units.FormatHz(b.BandwidthHz))
	fmt.Printf("target SNR    : %s\n", units.FormatDB(targetSNR))
	fmt.Printf("butler penalty: %v\n", *butler)
	fmt.Printf("required PTX  : %s (%.2f mW)\n", units.FormatDBm(ptx), units.FromDBm(ptx)*1e3)
	fmt.Printf("shannon rate  : %.1f Gbit/s at that SNR (dual polarisation)\n",
		b.ShannonRateBps(targetSNR)/1e9)
}
