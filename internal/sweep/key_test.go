package sweep

import (
	"testing"

	"repro/internal/core"
)

// TestKeyerMatchesPointKey pins the Keyer's splice optimization to the
// canonical PointKey for every registered scenario's points under every
// budget, plus adversarial labels that stress JSON string escaping.
// A divergence would silently invalidate every stored result.
func TestKeyerMatchesPointKey(t *testing.T) {
	budgets := []Budget{AnalyticBudget(), SmokeBudget(), StandardBudget()}
	seeds := []uint64{0, 1, 1<<64 - 1}
	for _, name := range Names() {
		sc, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		pts := sc.Points()
		for _, b := range budgets {
			for _, seed := range seeds {
				k := NewKeyer(sc.Name, b, seed)
				for _, pt := range pts {
					want := PointKey(sc.Name, pt, b, seed)
					if got := k.Key(pt); got != want {
						t.Fatalf("keyer diverged for %s/%s/seed=%d point %d:\n got %s\nwant %s",
							sc.Name, b.Name, seed, pt.Index, got, want)
					}
				}
			}
		}
	}

	// Labels and scenario names that need escaping must round-trip
	// identically through both paths (encoding/json escapes quotes,
	// backslashes and HTML characters).
	hostile := Point{Index: 3, Label: `q"uo\te <&> ünicode` + "\n\t", Spec: core.DefaultSpec()}
	for _, scenario := range []string{"plain", `esc"aped\<&>`} {
		want := PointKey(scenario, hostile, SmokeBudget(), 7)
		if got := NewKeyer(scenario, SmokeBudget(), 7).Key(hostile); got != want {
			t.Fatalf("keyer diverged on hostile strings (scenario %q)", scenario)
		}
	}
}

// TestKeyerConcurrentUse exercises one Keyer from many goroutines under
// the race detector.
func TestKeyerConcurrentUse(t *testing.T) {
	sc, err := Get("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	pts := sc.Points()
	k := NewKeyer(sc.Name, AnalyticBudget(), 1)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for _, pt := range pts {
				if k.Key(pt) != PointKey(sc.Name, pt, AnalyticBudget(), 1) {
					panic("keyer diverged under concurrency")
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
