package ldpc

import (
	"fmt"
	"math/bits"
)

// Encoder maps information bits to codewords of a Code by Gaussian
// elimination over GF(2): the parity-check matrix is brought to row
// echelon form once, after which each encode is a back-substitution.
type Encoder struct {
	code *Code
	// rows are the echelon rows of H as bitsets over the NumVars columns.
	rows [][]uint64
	// pivotCol[i] is the pivot column of echelon row i (parity position).
	pivotCol []int
	// infoCols are the non-pivot columns, in ascending order.
	infoCols []int
}

const wordBits = 64

func bitsetLen(n int) int { return (n + wordBits - 1) / wordBits }

func getBit(row []uint64, i int) uint8 {
	return uint8(row[i/wordBits] >> (uint(i) % wordBits) & 1)
}

func flipBit(row []uint64, i int) {
	row[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// NewEncoder performs the one-time elimination. Rank-deficient
// parity-check matrices are handled: dependent rows are dropped, which
// only increases the information length.
func NewEncoder(code *Code) *Encoder {
	nv := code.NumVars
	words := bitsetLen(nv)
	rows := make([][]uint64, code.NumChecks)
	for chk := 0; chk < code.NumChecks; chk++ {
		row := make([]uint64, words)
		for _, v := range code.CheckNeighbors(chk) {
			flipBit(row, int(v)) // XOR handles repeated edges correctly
		}
		rows[chk] = row
	}

	var echelon [][]uint64
	var pivots []int
	isPivot := make([]bool, nv)
	for col := 0; col < nv && len(rows) > 0; col++ {
		// Find a row with a 1 in col.
		found := -1
		for r := range rows {
			if getBit(rows[r], col) == 1 {
				found = r
				break
			}
		}
		if found < 0 {
			continue
		}
		pivot := rows[found]
		rows = append(rows[:found], rows[found+1:]...)
		// Eliminate col from the remaining rows.
		kept := rows[:0]
		for _, r := range rows {
			if getBit(r, col) == 1 {
				for w := range r {
					r[w] ^= pivot[w]
				}
			}
			if !isZero(r) {
				kept = append(kept, r)
			}
		}
		rows = kept
		echelon = append(echelon, pivot)
		pivots = append(pivots, col)
		isPivot[col] = true
	}

	var infoCols []int
	for col := 0; col < nv; col++ {
		if !isPivot[col] {
			infoCols = append(infoCols, col)
		}
	}
	return &Encoder{code: code, rows: echelon, pivotCol: pivots, infoCols: infoCols}
}

func isZero(row []uint64) bool {
	for _, w := range row {
		if w != 0 {
			return false
		}
	}
	return true
}

// InfoLen returns the number of information bits per codeword.
func (e *Encoder) InfoLen() int { return len(e.infoCols) }

// CodeLen returns the codeword length.
func (e *Encoder) CodeLen() int { return e.code.NumVars }

// ActualRate returns the true code rate InfoLen/CodeLen (the design rate
// minus the termination loss and any rank slack).
func (e *Encoder) ActualRate() float64 {
	return float64(e.InfoLen()) / float64(e.CodeLen())
}

// Encode maps info bits to a codeword satisfying H c = 0.
func (e *Encoder) Encode(info []uint8) []uint8 {
	if len(info) != e.InfoLen() {
		panic(fmt.Sprintf("ldpc: info length %d, want %d", len(info), e.InfoLen()))
	}
	cw := make([]uint8, e.code.NumVars)
	for i, col := range e.infoCols {
		cw[col] = info[i] & 1
	}
	// Back substitution from the last echelon row: each row determines
	// its pivot from columns that are either info bits or later pivots.
	for i := len(e.rows) - 1; i >= 0; i-- {
		row := e.rows[i]
		var acc uint8
		for w, word := range row {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				col := w*wordBits + b
				if col != e.pivotCol[i] {
					acc ^= cw[col]
				}
			}
		}
		cw[e.pivotCol[i]] = acc
	}
	return cw
}

// ExtractInfo recovers the information bits from a codeword.
func (e *Encoder) ExtractInfo(cw []uint8) []uint8 {
	if len(cw) != e.code.NumVars {
		panic("ldpc: codeword length mismatch")
	}
	out := make([]uint8, len(e.infoCols))
	for i, col := range e.infoCols {
		out[i] = cw[col] & 1
	}
	return out
}
