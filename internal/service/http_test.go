package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
	"repro/internal/sweep/store"
)

// TestDaemonLifecycle drives the full serve path the way cmd/sweepd
// does: start a store-backed manager behind the HTTP API, submit
// paper-baseline at smoke budget, poll the job to completion, stream its
// records, fetch the Pareto front, prove a resubmission is served
// entirely from cache, and shut down gracefully with an in-flight job
// cancelled.
func TestDaemonLifecycle(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := New(Options{JobWorkers: 2, Cache: st})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	// Liveness and catalog. healthz must report the engine version so
	// optimizer clients and worker binaries can preflight-check
	// compatibility; this doubles as the regression test for that field.
	var health map[string]any
	getJSON(t, srv, "/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}
	if engine, ok := health["engine"].(float64); !ok || int(engine) != sweep.EngineVersion {
		t.Fatalf("healthz engine = %v, want %d", health["engine"], sweep.EngineVersion)
	}
	var scenarios []scenarioInfo
	getJSON(t, srv, "/api/v1/scenarios", &scenarios)
	grid := 0
	for _, sc := range scenarios {
		if sc.Name == "paper-baseline" {
			grid = sc.Points
		}
	}
	if grid == 0 {
		t.Fatal("paper-baseline missing from scenario listing")
	}

	// Submit and poll to completion.
	req := Request{Scenario: "paper-baseline", Budget: "smoke", Seed: 3}
	first := submit(t, srv, req, http.StatusAccepted)
	v := pollDone(t, srv, first.ID)
	if v.Progress.Done != grid || v.Progress.Pending != 0 {
		t.Fatalf("completed progress = %+v, want %d done", v.Progress, grid)
	}
	if v.Progress.Cached != 0 {
		t.Fatalf("cold job served %d points from cache", v.Progress.Cached)
	}

	// Stream the records as NDJSON.
	firstRecs, firstBody := getRecords(t, srv, first.ID)
	if len(firstRecs) != grid {
		t.Fatalf("streamed %d records, want %d", len(firstRecs), grid)
	}
	for i, rec := range firstRecs {
		if rec.Scenario != "paper-baseline" || rec.Index != i {
			t.Fatalf("record %d malformed: %+v", i, rec)
		}
		if rec.BERCodewords == 0 {
			t.Fatalf("smoke-budget record %d has no Monte-Carlo results", i)
		}
	}

	// Pareto front.
	var front struct {
		Scenario string         `json:"scenario"`
		Front    []sweep.Record `json:"front"`
	}
	getJSON(t, srv, "/api/v1/jobs/"+first.ID+"/pareto", &front)
	if front.Scenario != "paper-baseline" || len(front.Front) == 0 {
		t.Fatalf("pareto = %q with %d records", front.Scenario, len(front.Front))
	}
	for _, rec := range front.Front {
		if !rec.Pareto {
			t.Fatalf("front record %d not flagged Pareto", rec.Index)
		}
	}

	// Resubmission: identical request, zero new points computed.
	second := submit(t, srv, req, http.StatusAccepted)
	v = pollDone(t, srv, second.ID)
	if v.Progress.Cached != grid {
		t.Fatalf("resubmission cached %d of %d points", v.Progress.Cached, grid)
	}
	_, secondBody := getRecords(t, srv, second.ID)
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatal("cached job's record stream is not byte-identical")
	}

	// Records of an unfinished or unknown job.
	if code := statusOf(t, srv, "GET", "/api/v1/jobs/job-999999"); code != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", code)
	}
	if code := statusOf(t, srv, "POST", "/api/v1/jobs"); code != http.StatusBadRequest {
		t.Fatalf("empty submission status = %d, want 400", code)
	}

	// Graceful shutdown with an in-flight job: a single-worker sequential
	// sweep at a fresh seed runs for seconds, so it is mid-flight when
	// Shutdown cancels its context.
	inflight := submit(t, srv,
		Request{Scenario: "paper-baseline", Budget: "smoke", Seed: 99, Workers: 1},
		http.StatusAccepted)
	waitHTTPState(t, srv, inflight.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	var got JobView
	getJSON(t, srv, "/api/v1/jobs/"+inflight.ID, &got)
	if got.State != StateCancelled {
		t.Fatalf("in-flight job = %s after shutdown, want cancelled", got.State)
	}
	if code := statusOf(t, srv, "DELETE", "/api/v1/jobs/"+inflight.ID); code != http.StatusOK {
		t.Fatalf("cancel of terminal job = %d, want 200 no-op", code)
	}
	// The drained daemon refuses new work but keeps answering reads.
	resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"scenario":"paper-baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit = %d, want 503", resp.StatusCode)
	}
	var all JobPage
	getJSON(t, srv, "/api/v1/jobs", &all)
	if len(all.Jobs) != 3 {
		t.Fatalf("job listing has %d entries, want 3", len(all.Jobs))
	}
}

func getJSON(t *testing.T, srv *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

func submit(t *testing.T, srv *httptest.Server, req Request, wantStatus int) JobView {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = %d, want %d: %s", resp.StatusCode, wantStatus, b)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" {
		t.Fatal("submission returned no job id")
	}
	return v
}

func pollDone(t *testing.T, srv *httptest.Server, id string) JobView {
	t.Helper()
	return waitHTTPState(t, srv, id, StateDone)
}

func waitHTTPState(t *testing.T, srv *httptest.Server, id string, want State) JobView {
	t.Helper()
	// A smoke paper-baseline sweep is seconds of compute per core; under
	// -race on a small CI box it stretches to minutes.
	deadline := time.Now().Add(10 * time.Minute)
	for time.Now().Before(deadline) {
		var v JobView
		getJSON(t, srv, "/api/v1/jobs/"+id, &v)
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached %s while waiting for %s (err %q)", id, v.State, want, v.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

// getRecords streams a done job's NDJSON records, returning both the
// parsed records and the raw bytes for identity checks.
func getRecords(t *testing.T, srv *httptest.Server, id string) ([]sweep.Record, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/api/v1/jobs/" + id + "/records")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("records = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("records content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var recs []sweep.Record
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec sweep.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("NDJSON line did not parse: %v", err)
		}
		recs = append(recs, rec)
	}
	return recs, raw
}

func statusOf(t *testing.T, srv *httptest.Server, method, path string) int {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if method == "POST" {
		req.Body = io.NopCloser(strings.NewReader(""))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// TestStoreEndpoint pins the observability surface of the storage
// engine: GET /api/v1/store serves aggregate and per-shard counters
// when a store is wired, 404s when not, and healthz carries the cache
// hit rate exactly when a store exists.
func TestStoreEndpoint(t *testing.T) {
	st, err := store.OpenSharded(t.TempDir(), 4, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := New(Options{Cache: st, StoreStats: func() (store.Stats, []store.Stats) {
		return st.Stats(), st.ShardStats()
	}})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	// Drive known traffic straight through the cache the manager holds.
	rec := sweep.Record{Scenario: "t", Label: "p"}
	st.Put("k0", rec)
	st.Get("k0")     // hit
	st.Get("absent") // miss

	var view storeView
	getJSON(t, srv, "/api/v1/store", &view)
	if view.Store.Shards != 4 || view.Store.Entries != 1 || view.Store.Puts != 1 {
		t.Fatalf("store view = %+v", view.Store)
	}
	if view.Store.Hits != 1 || view.Store.Misses != 1 {
		t.Fatalf("store view counters = %+v", view.Store)
	}
	if len(view.Shards) != 4 {
		t.Fatalf("store view lists %d shards, want 4", len(view.Shards))
	}
	perShard := 0
	for _, sh := range view.Shards {
		perShard += sh.Entries
	}
	if perShard != 1 {
		t.Fatalf("per-shard entries sum to %d, want 1", perShard)
	}

	var health map[string]any
	getJSON(t, srv, "/healthz", &health)
	rate, ok := health["cache_hit_rate"].(float64)
	if !ok || rate != 0.5 {
		t.Fatalf("healthz cache_hit_rate = %v, want 0.5", health["cache_hit_rate"])
	}

	// A manager without a store answers 404 and reports no hit rate.
	bare := New(Options{})
	defer bare.Shutdown(context.Background())
	bareSrv := httptest.NewServer(NewHandler(bare))
	defer bareSrv.Close()
	resp, err := http.Get(bareSrv.URL + "/api/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("storeless GET /api/v1/store = %d, want 404", resp.StatusCode)
	}
	health = nil
	getJSON(t, bareSrv, "/healthz", &health)
	if _, present := health["cache_hit_rate"]; present {
		t.Fatal("storeless healthz reports a cache_hit_rate")
	}
}
