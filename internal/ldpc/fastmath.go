package ldpc

import "math"

// The sum-product check update is the Monte-Carlo hot path: profiles put
// >90% of a BER sweep inside math.Tanh / math.Atanh. The helpers below
// compute the same quantities through cheaper routes — math.Exp has an
// assembly fast path where Tanh and Atanh do not, and the atanh of the
// small tanh-products that dominate near-threshold decoding is served by
// a short Maclaurin series. Worst-case error is below 1e-12 in the LLR
// domain, orders of magnitude under the 0.8-scale min-sum approximation
// the decoder already offers as an explicit quality trade.

// tanhHalf returns tanh(x/2).
func tanhHalf(x float64) float64 {
	switch {
	case x > 38:
		return 1
	case x < -38:
		return -1
	case x > -1 && x < 1:
		// Expm1 keeps precision where e^x-1 would cancel.
		em := math.Expm1(x)
		return em / (em + 2)
	default:
		e := math.Exp(x)
		return (e - 1) / (e + 1)
	}
}

// atanh2 returns 2*atanh(x) for |x| < 1.
func atanh2(x float64) float64 {
	a := math.Abs(x)
	if a < 0.25 {
		// 2 atanh(x) = 2x (1 + x^2/3 + x^4/5 + ...); at |x| < 0.25 nine
		// terms reach ~1e-13 relative error.
		x2 := x * x
		s := 1.0 + x2*(1.0/3+x2*(1.0/5+x2*(1.0/7+x2*(1.0/9+x2*(1.0/11+x2*(1.0/13+x2*(1.0/15+x2*(1.0/17))))))))
		return 2 * x * s
	}
	return math.Log((1 + x) / (1 - x))
}

// satLLR is the input magnitude beyond which the exact tanh rule and
// plain (unnormalised) min-sum agree to within e^-satLLR ~ 6e-6: the
// box-plus correction terms log1p(e^-|a+b|) - log1p(e^-|a-b|) are
// bounded by e^-min(|a|,|b|).
const satLLR = 12.0
