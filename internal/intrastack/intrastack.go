// Package intrastack models the vertical intra-connect alternatives the
// paper lists for communicating between the chiplets of a 3D stack
// (Sec. I): galvanic through-silicon vias (TSVs), and the two wireless
// alternatives — inductive and capacitive coupling. Ref. [3] anchors the
// capacitive option (a 90 Gbit/s source-synchronous capacitively driven
// link in 65 nm CMOS).
//
// The models are first-order physical scalings calibrated to published
// operating points; they let the NiCS layer reason about which vertical
// technology can realise a link of a given reach and rate, and at what
// energy and area cost — the trade the paper's outlook raises ("the
// large area of TSVs will probably not allow to equip every router with
// a vertical link").
package intrastack

import (
	"fmt"
	"math"
)

// Technology identifies a vertical link realisation.
type Technology int

const (
	// TSV is a galvanic through-silicon via.
	TSV Technology = iota
	// Capacitive is plate-coupled signalling between adjacent face-to-
	// face dies (paper ref. [3]).
	Capacitive
	// Inductive is coil-coupled signalling, able to cross several
	// thinned dies.
	Inductive
)

// String implements fmt.Stringer.
func (t Technology) String() string {
	switch t {
	case TSV:
		return "TSV"
	case Capacitive:
		return "capacitive coupling"
	case Inductive:
		return "inductive coupling"
	default:
		return "unknown"
	}
}

// Technologies lists all supported realisations.
func Technologies() []Technology { return []Technology{TSV, Capacitive, Inductive} }

// Calibration anchors (documented literature-order operating points).
const (
	// tsvEnergyPJPerBit: galvanic vias are the cheapest to drive.
	tsvEnergyPJPerBit = 0.05
	// capEnergyPJPerBit: ref. [3] class capacitive links run well below
	// 1 pJ/bit at 90 Gbit/s.
	capEnergyPJPerBit = 0.2
	// indEnergyPJPerBit: inductive transceivers burn the most per bit.
	indEnergyPJPerBit = 0.8

	// Reach: the maximum die-to-die span each technology bridges.
	tsvReachUM = 200 // one thinned die per via hop
	capReachUM = 5   // face-to-face micro-gap only
	indReachUM = 120 // several thinned dies

	// Area per link (pad/coil/via keep-out), um^2.
	tsvAreaUM2 = 450 // via + keep-out: the paper's area concern
	capAreaUM2 = 100
	indAreaUM2 = 2500 // coils dwarf everything

	// Per-link sustainable data rate, Gbit/s.
	tsvRateGbps = 40
	capRateGbps = 90 // ref. [3]
	indRateGbps = 12
)

// EnergyPJPerBit returns the switching energy per transported bit.
func (t Technology) EnergyPJPerBit() float64 {
	switch t {
	case TSV:
		return tsvEnergyPJPerBit
	case Capacitive:
		return capEnergyPJPerBit
	case Inductive:
		return indEnergyPJPerBit
	}
	panic(fmt.Sprintf("intrastack: unknown technology %d", t))
}

// ReachUM returns the maximum vertical span in micrometres.
func (t Technology) ReachUM() float64 {
	switch t {
	case TSV:
		return tsvReachUM
	case Capacitive:
		return capReachUM
	case Inductive:
		return indReachUM
	}
	panic(fmt.Sprintf("intrastack: unknown technology %d", t))
}

// AreaUM2 returns the silicon area one link occupies.
func (t Technology) AreaUM2() float64 {
	switch t {
	case TSV:
		return tsvAreaUM2
	case Capacitive:
		return capAreaUM2
	case Inductive:
		return indAreaUM2
	}
	panic(fmt.Sprintf("intrastack: unknown technology %d", t))
}

// RateGbps returns the per-link sustainable data rate.
func (t Technology) RateGbps() float64 {
	switch t {
	case TSV:
		return tsvRateGbps
	case Capacitive:
		return capRateGbps
	case Inductive:
		return indRateGbps
	}
	panic(fmt.Sprintf("intrastack: unknown technology %d", t))
}

// Feasible reports whether the technology can bridge gapUM micrometres.
func (t Technology) Feasible(gapUM float64) bool {
	return gapUM > 0 && gapUM <= t.ReachUM()
}

// LinkPlan sizes a vertical connection of a given aggregate rate.
type LinkPlan struct {
	Tech Technology
	// Lanes is the number of parallel links needed for the rate.
	Lanes int
	// PowerMW is the switching power at full utilisation.
	PowerMW float64
	// AreaUM2 is the total pad/coil/via area.
	AreaUM2 float64
}

// Plan returns the lane count, power and area to carry rateGbps across
// gapUM with the technology, or an error when the reach is insufficient.
func Plan(t Technology, gapUM, rateGbps float64) (LinkPlan, error) {
	if rateGbps <= 0 {
		return LinkPlan{}, fmt.Errorf("intrastack: non-positive rate %g Gbit/s", rateGbps)
	}
	if !t.Feasible(gapUM) {
		return LinkPlan{}, fmt.Errorf("intrastack: %s cannot bridge %.0f um (reach %.0f um)",
			t, gapUM, t.ReachUM())
	}
	lanes := int(math.Ceil(rateGbps / t.RateGbps()))
	return LinkPlan{
		Tech:    t,
		Lanes:   lanes,
		PowerMW: rateGbps * 1e9 * t.EnergyPJPerBit() * 1e-12 * 1e3,
		AreaUM2: float64(lanes) * t.AreaUM2(),
	}, nil
}

// Best returns the feasible plan with the lowest energy per bit whose
// area fits areaBudgetUM2 (0 = unconstrained). It returns an error when
// no technology qualifies.
func Best(gapUM, rateGbps, areaBudgetUM2 float64) (LinkPlan, error) {
	var best LinkPlan
	found := false
	for _, t := range Technologies() {
		p, err := Plan(t, gapUM, rateGbps)
		if err != nil {
			continue
		}
		if areaBudgetUM2 > 0 && p.AreaUM2 > areaBudgetUM2 {
			continue
		}
		if !found || p.Tech.EnergyPJPerBit() < best.Tech.EnergyPJPerBit() {
			best = p
			found = true
		}
	}
	if !found {
		return LinkPlan{}, fmt.Errorf("intrastack: no technology bridges %.0f um at %.0f Gbit/s within %.0f um^2",
			gapUM, rateGbps, areaBudgetUM2)
	}
	return best, nil
}
