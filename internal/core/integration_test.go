package core

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/inforate"
	"repro/internal/isidesign"
	"repro/internal/ldpc"
	"repro/internal/linkbudget"
	"repro/internal/modem"
	"repro/internal/noc"
	"repro/internal/noc/analytic"
	"repro/internal/noc/sim"
	"repro/internal/units"
	"repro/internal/vna"
)

// TestIntegrationMeasurementToBudget walks the paper's Sec. II chain:
// synthetic VNA sweep -> fitted pathloss model -> link budget. The
// budget computed from the *measured* model must agree with Table I's
// analytic numbers within the instrument tolerance.
func TestIntegrationMeasurementToBudget(t *testing.T) {
	a := vna.New(77)
	sweep := a.PathlossSweep(vna.SweepConfig{
		Distances:          []float64{0.04, 0.06, 0.08, 0.1, 0.14, 0.18, 0.2},
		PhaseCenterOffsetM: 0.008,
	})
	b := linkbudget.TableI()
	b.Pathloss = sweep.Fit // budget driven by the measurement

	analytic := linkbudget.TableI()
	for _, dist := range []float64{0.1, 0.3} {
		measured := b.RequiredTxPowerDBm(dist, 15, true)
		closedForm := analytic.RequiredTxPowerDBm(dist, 15, true)
		if math.Abs(measured-closedForm) > 0.5 {
			t.Errorf("d=%.1f: measured-model PTX %.2f vs analytic %.2f dBm",
				dist, measured, closedForm)
		}
	}
}

// TestIntegrationImpulseResponseSupportsFlatAssumption checks that the
// measured channel justifies the AWGN/flat assumption used by both the
// Sec. III information-rate study and the Sec. V coding study.
func TestIntegrationImpulseResponseSupportsFlatAssumption(t *testing.T) {
	a := vna.New(78)
	sc := channel.Scenario{
		LinkDistM: 0.1, CopperBoards: true,
		TXGainDB: channel.HornGainDB, RXGainDB: channel.HornGainDB,
	}
	ir := a.ImpulseResponse(a.MeasureS21(sc), dsp.Hann)
	rel := ir.WorstEchoRelativeDB(3/a.Bandwidth(), 2e-9)
	// The underlying rays sit >= 15 dB below the line of sight (enforced
	// strictly in the channel package); through the windowed IDFT,
	// co-delayed echo taps can smear together and read up to ~1 dB
	// higher, so the instrument-level check allows that tolerance.
	if rel > -14 {
		t.Fatalf("echo at %.1f dB relative invalidates the flat-channel assumption", rel)
	}
}

// TestIntegrationLinkClosesWithCoding ties Sec. II to Sec. V: the SNR
// delivered by the Fig. 4 power budget, converted to Eb/N0 at the code
// rate, must be comfortably above what the chosen LDPC-CC needs.
func TestIntegrationLinkClosesWithCoding(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo integration check skipped in -short mode")
	}
	design, err := DesignSystem(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	// The delivered SNR equals the target by construction; the margin
	// over Shannon is the coding headroom.
	snr := design.Links[1].TargetSNRdB
	// Per-polarisation spectral efficiency 2 bit/s/Hz: Eb/N0 = SNR - 3 dB.
	ebN0 := units.EbN0FromSNR(snr, design.SpectralEfficiency)

	code := ldpc.LiftConvolutional(ldpc.PaperSpreading(),
		30, design.Code.Lifting, 3)
	res := ldpc.SimulateBER(ldpc.BERParams{
		Code: code, Alg: ldpc.SumProduct, MaxIter: 40,
		Window: design.Code.Window, Rate: design.Code.Rate,
		EbN0DB:          ebN0,
		TargetBitErrors: 1 << 30, TargetFrameErrors: 1 << 30,
		MaxCodewords: 60, Seed: 5,
	})
	if res.BER > 1e-4 {
		t.Errorf("link at Eb/N0 %.2f dB has BER %.2e — budget does not close", ebN0, res.BER)
	}
}

// TestIntegrationModemSupportsLinkRate ties Sec. II to Sec. III: the
// 1-bit oversampling receiver with a designed pulse must achieve the
// spectral efficiency the 100 Gbit/s budget assumes (2 bit/s/Hz/pol)
// at the SNR the power budget delivers plus the implementation that the
// paper targets for sequence estimation.
func TestIntegrationModemSupportsLinkRate(t *testing.T) {
	design, err := DesignSystem(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	// At the Fig. 6 design point (25 dB), the sequence-optimal 4-ASK
	// 1-bit receiver must exceed the 2 bit/s/Hz per polarisation that
	// 100 Gbit/s needs minus the coding rate overhead (rate 1/2 code on
	// 2 bpcu leaves 1 net bit; dual polarisation and 25 GHz of symbols
	// at 5x oversampling make up the rest of the 100G budget).
	d := isidesign.OptimizeSequence(isidesign.Config{Seed: 1, Sweeps: 3, SimSymbols: 1500})
	tr := inforate.NewTrellis(modem.NewASK(4), d.Pulse)
	rate := inforate.SequenceRate(tr, 25, 20000, 99)
	if rate < 1.5 {
		t.Errorf("1-bit receiver achieves only %.2f bpcu at 25 dB", rate)
	}
	_ = design
}

// TestIntegrationStackChoiceConsistentWithSimulator validates the
// DesignSystem topology choice against the event simulator: the chosen
// stack must actually deliver its predicted latency within 20%.
func TestIntegrationStackChoiceConsistentWithSimulator(t *testing.T) {
	spec := DefaultSpec()
	spec.StackInjectionRate = 0.15
	design, err := DesignSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(sim.Config{
		Topo:    design.Stack.Topology,
		Traffic: noc.Uniform{}, InjectionRate: spec.StackInjectionRate, Seed: 3,
	})
	if res.Saturated {
		t.Fatalf("chosen topology %s saturates in simulation at %.2f",
			design.Stack.Topology.Name(), spec.StackInjectionRate)
	}
	if math.Abs(res.MeanLatencyCycles-design.Stack.LatencyCycles) > 0.2*design.Stack.LatencyCycles {
		t.Errorf("predicted %.1f cycles, simulated %.1f",
			design.Stack.LatencyCycles, res.MeanLatencyCycles)
	}
}

// TestIntegrationVerticalBandwidthImprovesChosenStack exercises the
// heterogeneous-link extension end to end on the design's topology.
func TestIntegrationVerticalBandwidthImprovesChosenStack(t *testing.T) {
	topo := noc.NewMesh3D(4, 4, 4)
	base := analytic.Model{Topo: topo, Traffic: noc.Uniform{}}
	fast := analytic.Model{Topo: topo, Traffic: noc.Uniform{}, VerticalCapacity: 4}
	rate := 0.6 * base.SaturationRate()
	lBase, _ := base.AvgLatency(rate)
	lFast, _ := fast.AvgLatency(rate)
	if lFast >= lBase {
		t.Errorf("4x vertical bandwidth did not reduce latency: %.2f vs %.2f", lFast, lBase)
	}
	if fast.SaturationRate() < base.SaturationRate() {
		t.Error("faster vertical links lowered saturation")
	}
	// And the simulator agrees qualitatively.
	sBase := sim.Run(sim.Config{Topo: topo, Traffic: noc.Uniform{}, InjectionRate: rate, Seed: 9})
	sFast := sim.Run(sim.Config{Topo: topo, Traffic: noc.Uniform{}, InjectionRate: rate, Seed: 9, VerticalCapacity: 4})
	if sFast.MeanLatencyCycles >= sBase.MeanLatencyCycles {
		t.Errorf("simulator: 4x vertical bandwidth did not help (%.2f vs %.2f)",
			sFast.MeanLatencyCycles, sBase.MeanLatencyCycles)
	}
}
