package service

import (
	"container/heap"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
)

func TestQueuePriorityFIFO(t *testing.T) {
	var q jobQueue
	heap.Init(&q)
	push := func(seq uint64, prio int) {
		q.push(&job{id: "j", seq: seq, req: Request{Priority: prio}})
	}
	push(1, 0)
	push(2, 10)
	push(3, 10)
	push(4, 5)
	var got []uint64
	for j := q.pop(); j != nil; j = q.pop() {
		got = append(got, j.seq)
	}
	want := []uint64{2, 3, 4, 1} // priority desc, FIFO within a priority
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestSubmitValidates(t *testing.T) {
	m := New(Options{})
	defer m.Shutdown(context.Background())
	if _, err := m.Submit(Request{Scenario: "no-such-scenario"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := m.Submit(Request{Scenario: "paper-baseline", Budget: "bogus"}); err == nil {
		t.Error("unknown budget accepted")
	}
	if _, err := m.Get("job-999999"); err == nil {
		t.Error("unknown job id accepted")
	}
	if err := m.Cancel("job-999999"); err == nil {
		t.Error("cancel of unknown job accepted")
	}
}

// blockingManager returns a single-worker manager whose jobs block until
// their context is cancelled or the returned release channel is closed,
// recording the order jobs start in.
func blockingManager(t *testing.T) (*Manager, chan struct{}, *[]string, *sync.Mutex) {
	t.Helper()
	m := New(Options{JobWorkers: 1})
	release := make(chan struct{})
	var mu sync.Mutex
	var started []string
	m.runSweep = func(ctx context.Context, sc sweep.Scenario, cfg sweep.Config) (*sweep.Result, error) {
		mu.Lock()
		started = append(started, sc.Name)
		mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &sweep.Result{Scenario: sc.Name}, nil
		}
	}
	return m, release, &started, &mu
}

func waitState(t *testing.T, m *Manager, id string, want State) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached %s while waiting for %s (err %q)", id, v.State, want, v.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

func TestSchedulerRunsByPriority(t *testing.T) {
	m, release, started, mu := blockingManager(t)
	defer m.Shutdown(context.Background())

	// Occupy the single worker, then stack the queue.
	blocker, err := m.Submit(Request{Scenario: "paper-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	low, _ := m.Submit(Request{Scenario: "embedded-box", Priority: 0})
	hiA, _ := m.Submit(Request{Scenario: "dense-rack", Priority: 10})
	hiB, _ := m.Submit(Request{Scenario: "manycore", Priority: 10})
	mid, _ := m.Submit(Request{Scenario: "butler-vs-steered", Priority: 5})

	close(release)
	for _, id := range []string{blocker.ID, low.ID, hiA.ID, hiB.ID, mid.ID} {
		waitState(t, m, id, StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	order := *started
	want := []string{"paper-baseline", "dense-rack", "manycore", "butler-vs-steered", "embedded-box"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("start order = %v, want %v", order, want)
		}
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	m, release, started, mu := blockingManager(t)
	defer m.Shutdown(context.Background())

	blocker, err := m.Submit(Request{Scenario: "paper-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	queued, _ := m.Submit(Request{Scenario: "embedded-box"})
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	v := waitState(t, m, queued.ID, StateCancelled)
	if v.Error == "" {
		t.Error("cancelled job carries no reason")
	}
	close(release)
	waitState(t, m, blocker.ID, StateDone)
	mu.Lock()
	defer mu.Unlock()
	if len(*started) != 1 {
		t.Fatalf("cancelled queued job still ran: %v", *started)
	}
	// Cancelling a terminal job is a no-op, not an error.
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m, _, _, _ := blockingManager(t)
	defer m.Shutdown(context.Background())

	v, err := m.Submit(Request{Scenario: "paper-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateRunning)
	if err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, v.ID, StateCancelled)
	if got.FinishedAt == nil {
		t.Error("cancelled job has no finish time")
	}
	if _, err := m.Result(v.ID); err == nil {
		t.Error("cancelled job served a result")
	}
}

func TestShutdownCancelsInFlightAndQueued(t *testing.T) {
	m, _, _, _ := blockingManager(t)

	running, err := m.Submit(Request{Scenario: "paper-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	queued, _ := m.Submit(Request{Scenario: "embedded-box"})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		v, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateCancelled {
			t.Errorf("job %s = %s after shutdown, want cancelled", id, v.State)
		}
	}
	if _, err := m.Submit(Request{Scenario: "paper-baseline"}); err != ErrShutdown {
		t.Errorf("post-shutdown Submit err = %v, want ErrShutdown", err)
	}
	// Idempotent.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestJobPanicMarksFailedNotCrash(t *testing.T) {
	m := New(Options{JobWorkers: 1})
	defer m.Shutdown(context.Background())
	m.runSweep = func(ctx context.Context, sc sweep.Scenario, cfg sweep.Config) (*sweep.Result, error) {
		if sc.Name == "paper-baseline" {
			panic("evaluate blew up")
		}
		return &sweep.Result{Scenario: sc.Name}, nil
	}

	bad, err := m.Submit(Request{Scenario: "paper-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, m, bad.ID, StateFailed)
	if !strings.Contains(v.Error, "panicked") || !strings.Contains(v.Error, "evaluate blew up") {
		t.Fatalf("failure message lost the panic: %q", v.Error)
	}
	// The scheduler survived: the next job still runs.
	ok, err := m.Submit(Request{Scenario: "embedded-box"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, ok.ID, StateDone)
}

func TestRetainJobsEvictsOldestTerminal(t *testing.T) {
	m := New(Options{JobWorkers: 1, RetainJobs: 2})
	defer m.Shutdown(context.Background())
	m.runSweep = func(ctx context.Context, sc sweep.Scenario, cfg sweep.Config) (*sweep.Result, error) {
		return &sweep.Result{Scenario: sc.Name}, nil
	}

	var ids []string
	for i := 0; i < 4; i++ {
		v, err := m.Submit(Request{Scenario: "embedded-box"})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, v.ID, StateDone)
		ids = append(ids, v.ID)
	}
	if got := len(m.List()); got > 2 {
		t.Fatalf("job table holds %d jobs, cap is 2", got)
	}
	if _, err := m.Get(ids[0]); err == nil {
		t.Error("oldest terminal job not evicted")
	}
	if _, err := m.Get(ids[3]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
}

// memCache is a minimal sweep.Cache for dedup tests.
type memCache struct {
	mu sync.Mutex
	m  map[string]sweep.Record
}

func (c *memCache) Get(key string) (sweep.Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	return r, ok
}

func (c *memCache) Put(key string, rec sweep.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = rec
}

func TestJobsDedupThroughSharedCache(t *testing.T) {
	cache := &memCache{m: make(map[string]sweep.Record)}
	m := New(Options{JobWorkers: 1, Cache: cache})
	defer m.Shutdown(context.Background())

	req := Request{Scenario: "embedded-box", Budget: "analytic", Seed: 11}
	first, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v1 := waitState(t, m, first.ID, StateDone)
	if v1.Progress.Cached != 0 || v1.Progress.Done != v1.Progress.Total {
		t.Fatalf("first run progress = %+v", v1.Progress)
	}

	second, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v2 := waitState(t, m, second.ID, StateDone)
	if v2.Progress.Cached != v2.Progress.Total {
		t.Fatalf("second run cached %d of %d points", v2.Progress.Cached, v2.Progress.Total)
	}
	r1, err := m.Result(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Result(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CachedPoints != len(r2.Records) || r2.ComputedPoints != 0 {
		t.Fatalf("second result computed %d points", r2.ComputedPoints)
	}
	for i := range r1.Records {
		if r1.Records[i] != r2.Records[i] {
			t.Fatalf("record %d differs between runs", i)
		}
	}
}
