package modem

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestASKConstellation(t *testing.T) {
	c := NewASK(4)
	if c.Size() != 4 {
		t.Fatalf("size = %d, want 4", c.Size())
	}
	// Unit average energy by construction.
	if e := c.AvgEnergy(); math.Abs(e-1) > 1e-12 {
		t.Errorf("avg energy = %g, want 1", e)
	}
	// Levels proportional to {-3,-1,1,3}: ratio of extremes is 3.
	ls := c.Levels()
	if math.Abs(ls[3]/ls[2]-3) > 1e-12 {
		t.Errorf("level ratio = %g, want 3", ls[3]/ls[2])
	}
	// Symmetric.
	if math.Abs(ls[0]+ls[3]) > 1e-15 || math.Abs(ls[1]+ls[2]) > 1e-15 {
		t.Errorf("levels not symmetric: %v", ls)
	}
	if math.Abs(c.BitsPerSymbol()-2) > 1e-15 {
		t.Errorf("bits/symbol = %g, want 2", c.BitsPerSymbol())
	}
	// Min distance of unit-energy 4-ASK is 2/sqrt(5).
	if d := c.MinDistance(); math.Abs(d-2/math.Sqrt(5)) > 1e-12 {
		t.Errorf("min distance = %g, want %g", d, 2/math.Sqrt(5))
	}
}

func TestASKPanics(t *testing.T) {
	for _, m := range []int{0, 1, 3, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewASK(%d) did not panic", m)
				}
			}()
			NewASK(m)
		}()
	}
}

func TestBinaryASK(t *testing.T) {
	c := NewASK(2)
	ls := c.Levels()
	if math.Abs(ls[0]+1) > 1e-12 || math.Abs(ls[1]-1) > 1e-12 {
		t.Errorf("2-ASK levels = %v, want [-1, 1]", ls)
	}
}

func TestRectPulse(t *testing.T) {
	p := NewRect(5)
	if p.OSF() != 5 || p.SpanSymbols() != 1 || p.NumTaps() != 5 {
		t.Fatalf("rect pulse shape wrong: %+v", p)
	}
	if !p.IsRect() {
		t.Error("IsRect() = false for rect pulse")
	}
	if e := p.Energy(); math.Abs(e-1) > 1e-12 {
		t.Errorf("energy = %g, want 1", e)
	}
}

func TestRampPulse(t *testing.T) {
	p := NewRamp(5, 4)
	if p.SpanSymbols() != 4 || p.NumTaps() != 20 {
		t.Fatalf("ramp pulse shape wrong")
	}
	if p.IsRect() {
		t.Error("ramp reported as rect")
	}
	if e := p.Energy(); math.Abs(e-1) > 1e-12 {
		t.Errorf("energy = %g, want 1", e)
	}
	// Monotone increasing taps.
	for i := 1; i < p.NumTaps(); i++ {
		if p.Tap(i) <= p.Tap(i-1) {
			t.Fatal("ramp taps not increasing")
		}
	}
}

func TestPulsePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"osf0":        func() { NewPulse([]float64{1}, 0) },
		"badMultiple": func() { NewPulse([]float64{1, 2, 3}, 2) },
		"empty":       func() { NewPulse(nil, 2) },
		"zeroEnergy":  func() { NewPulse([]float64{0, 0}, 2) },
		"span0":       func() { NewRamp(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestModulateSingleSymbol(t *testing.T) {
	p := NewPulse([]float64{1, 2, 3, 4}, 2) // span 2 symbols
	s := p.Modulate([]float64{2})
	want := p.Taps()
	if len(s) != 4 {
		t.Fatalf("waveform length = %d, want 4", len(s))
	}
	for i := range want {
		if math.Abs(s[i]-2*want[i]) > 1e-12 {
			t.Errorf("s[%d] = %g, want %g", i, s[i], 2*want[i])
		}
	}
}

func TestModulateSuperposition(t *testing.T) {
	p := NewRamp(5, 3)
	xs := []float64{1, -0.5, 2, 0, -1}
	s := p.Modulate(xs)
	// Compare against direct per-symbol superposition.
	want := make([]float64, len(s))
	for k, x := range xs {
		for i := 0; i < p.NumTaps(); i++ {
			want[k*5+i] += x * p.Tap(i)
		}
	}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Fatalf("modulate mismatch at %d", i)
		}
	}
}

func TestBlockAmplitudesMatchesModulate(t *testing.T) {
	// The trellis branch-output function must agree with the waveform
	// synthesis in steady state.
	p := NewRamp(5, 4)
	xs := []float64{0.5, -1, 1.5, -0.5, 1, 2}
	wave := p.Modulate(xs)
	// Block t=5 (the last symbol, all history available).
	history := []float64{xs[5], xs[4], xs[3], xs[2]}
	block := p.BlockAmplitudes(history, nil)
	for m := 0; m < 5; m++ {
		if math.Abs(block[m]-wave[5*5+m]) > 1e-12 {
			t.Fatalf("block sample %d = %g, waveform = %g", m, block[m], wave[25+m])
		}
	}
}

func TestBlockAmplitudesPanicsOnBadHistory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad history did not panic")
		}
	}()
	NewRamp(5, 4).BlockAmplitudes([]float64{1}, nil)
}

func TestQuantize1Bit(t *testing.T) {
	got := Quantize1Bit([]float64{-0.1, 0, 3, -7})
	want := []int8{-1, 1, 1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quantise = %v, want %v", got, want)
		}
	}
}

func TestNoiseSigmaForSNR(t *testing.T) {
	// 0 dB -> sigma 1; 20 dB -> sigma 0.1.
	if s := NoiseSigmaForSNR(0); math.Abs(s-1) > 1e-12 {
		t.Errorf("sigma(0 dB) = %g", s)
	}
	if s := NoiseSigmaForSNR(20); math.Abs(s-0.1) > 1e-12 {
		t.Errorf("sigma(20 dB) = %g", s)
	}
}

func TestAWGNStatistics(t *testing.T) {
	stream := rng.New(99)
	buf := make([]float64, 100000)
	AWGN(buf, 0.5, stream)
	var mean, sq float64
	for _, v := range buf {
		mean += v
		sq += v * v
	}
	mean /= float64(len(buf))
	sq /= float64(len(buf))
	if math.Abs(mean) > 0.01 {
		t.Errorf("noise mean = %g", mean)
	}
	if math.Abs(sq-0.25) > 0.01 {
		t.Errorf("noise variance = %g, want 0.25", sq)
	}
}

// Property: any constellation built by NewASK has unit average energy and
// symmetric levels.
func TestPropertyASKNormalised(t *testing.T) {
	f := func(raw uint8) bool {
		m := 2 * (int(raw)%8 + 1) // 2..16, even
		c := NewASK(m)
		if math.Abs(c.AvgEnergy()-1) > 1e-9 {
			return false
		}
		ls := c.Levels()
		for i := range ls {
			if math.Abs(ls[i]+ls[len(ls)-1-i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: modulation is linear in the symbols.
func TestPropertyModulateLinear(t *testing.T) {
	p := NewRamp(3, 2)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		s1 := p.Modulate([]float64{a, 0, b})
		s2 := p.Modulate([]float64{a, 0, 0})
		s3 := p.Modulate([]float64{0, 0, b})
		for i := range s1 {
			if math.Abs(s1[i]-s2[i]-s3[i]) > 1e-9*(1+math.Abs(s1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: pulses are always unit energy after construction.
func TestPropertyPulseUnitEnergy(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		taps := make([]float64, 0, len(raw))
		var energy float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				v = 1
			}
			taps = append(taps, v)
			energy += v * v
		}
		if energy == 0 {
			return true
		}
		p := NewPulse(taps, len(taps))
		return math.Abs(p.Energy()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
