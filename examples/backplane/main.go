// Backplane: size the wireless replacement of an electrical backplane.
//
// The paper's motivation is a 1-litre box of 4-5 boards holding up to a
// billion processors, where the backplane aggregates all board-to-board
// traffic. This example sweeps link rates and board spacings, sizes the
// per-link transmit power for both beamforming realisations, and sums
// the radio power the "backplane replacement" needs.
//
//	go run ./examples/backplane
package main

import (
	"fmt"
	"math"

	"repro/internal/linkbudget"
	"repro/internal/units"
)

func main() {
	budget := linkbudget.TableI()

	fmt.Println("Wireless backplane sizing (Table I radio, dual polarisation)")
	fmt.Println()
	fmt.Printf("%10s %10s %12s %16s %16s\n",
		"rate[Gb/s]", "dist[mm]", "SNR[dB]", "PTX steer[dBm]", "PTX butler[dBm]")

	for _, rateGbps := range []float64{50, 100, 200, 400} {
		perPol := rateGbps * 1e9 / 2 / budget.BandwidthHz
		snr := units.DB(math.Pow(2, perPol)-1) + 3 // 3 dB margin
		for _, dist := range []float64{0.1, 0.2, 0.3} {
			steer := budget.RequiredTxPowerDBm(dist, snr, false)
			butler := budget.RequiredTxPowerDBm(dist, snr, true)
			fmt.Printf("%10.0f %10.0f %12.2f %16.2f %16.2f\n",
				rateGbps, dist*1e3, snr, steer, butler)
		}
	}

	// Aggregate power for the paper's box: 4 boards, 9 nodes each, every
	// node running one ahead link (100 mm) and one worst-case diagonal
	// (300 mm) at 100 Gbit/s.
	fmt.Println()
	const boards, nodes = 4, 9
	perPol := 100e9 / 2 / budget.BandwidthHz
	snr := units.DB(math.Pow(2, perPol)-1) + 3
	ahead := units.FromDBm(budget.RequiredTxPowerDBm(0.1, snr, false))
	diag := units.FromDBm(budget.RequiredTxPowerDBm(0.3, snr, true))
	links := boards * nodes
	total := float64(links) * (ahead + diag)
	fmt.Printf("box aggregate: %d nodes x (ahead + diagonal) at 100 Gbit/s\n", links)
	fmt.Printf("  ahead link PA power    : %.2f mW\n", ahead*1e3)
	fmt.Printf("  diagonal link PA power : %.2f mW (butler worst case)\n", diag*1e3)
	fmt.Printf("  radiated total         : %.2f mW for %.1f Tbit/s of board-to-board capacity\n",
		total*1e3, float64(2*links)*100/1000)
	fmt.Printf("  energy efficiency      : %.2f pJ/bit (radiated)\n",
		total/(float64(2*links)*100e9)*1e12)

	// How far does Shannon let this radio scale? (the paper asks for
	// Tbit/s per link "in the coming years")
	fmt.Println()
	fmt.Println("scaling outlook per link (25 GHz, dual polarisation):")
	for _, snrDB := range []float64{10, 20, 30} {
		fmt.Printf("  SNR %2.0f dB -> %.0f Gbit/s\n", snrDB, budget.ShannonRateBps(snrDB)/1e9)
	}
}
