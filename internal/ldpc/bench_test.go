package ldpc

import (
	"testing"

	"repro/internal/rng"
)

func noisyLLR(code *Code, ebN0DB float64, seed uint64) []float64 {
	sigma := NoiseSigma(ebN0DB, 0.5)
	scale := 2 / (sigma * sigma)
	stream := rng.New(seed)
	llr := make([]float64, code.NumVars)
	for i := range llr {
		llr[i] = scale * (1 + sigma*stream.Norm())
	}
	return llr
}

func BenchmarkLiftConvolutional(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LiftConvolutional(PaperSpreading(), 50, 40, 3)
	}
}

func BenchmarkDecodeFloodingMinSum(b *testing.B) {
	code := Lift(Regular48(), 200, 3)
	dec := NewDecoder(code, MinSum, 50)
	llr := noisyLLR(code, 2.5, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dec.Decode(llr)
	}
}

func BenchmarkDecodeLayeredMinSum(b *testing.B) {
	code := Lift(Regular48(), 200, 3)
	dec := NewDecoder(code, MinSum, 50)
	dec.Sched = Layered
	llr := noisyLLR(code, 2.5, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dec.Decode(llr)
	}
}

func BenchmarkDecodeSumProduct(b *testing.B) {
	code := Lift(Regular48(), 200, 3)
	dec := NewDecoder(code, SumProduct, 50)
	llr := noisyLLR(code, 2.5, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dec.Decode(llr)
	}
}

func BenchmarkWindowDecode(b *testing.B) {
	code := LiftConvolutional(PaperSpreading(), 50, 40, 3)
	wd := NewWindowDecoder(code, 5, SumProduct, 40)
	llr := noisyLLR(code, 3.5, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wd.Decode(llr)
	}
}

func BenchmarkEncode(b *testing.B) {
	code := LiftConvolutional(PaperSpreading(), 30, 40, 3)
	enc := NewEncoder(code)
	info := make([]uint8, enc.InfoLen())
	for i := range info {
		info[i] = uint8(i & 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Encode(info)
	}
}
