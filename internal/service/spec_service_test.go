package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/sweep/store"
)

// specNoC is the bursty/hotspot NoC traffic family, small enough to
// sweep in milliseconds at the analytic budget.
const specNoC = `{
	"name": "noc-burst",
	"base": {"traffic-pattern": "hotspot", "traffic-hotspot-module": 0, "stack-modules": 16},
	"axes": [
		{"name": "traffic-hotspot-fraction", "kind": "continuous", "min": 0.2, "max": 0.4, "step": 0.2},
		{"name": "stack-injection-rate", "kind": "continuous", "min": 0.05, "max": 0.1, "step": 0.05}
	],
	"constraints": ["noc_saturation < 1"],
	"budget": "analytic"
}`

// specNoCReordered is specNoC with every object's keys in a different
// order. Canonicalization must make it the same grid — same scenario
// name, same PointKeys, zero computed points when resubmitted.
const specNoCReordered = `{
	"budget": "analytic",
	"constraints": ["noc_saturation < 1"],
	"axes": [
		{"step": 0.2, "min": 0.2, "max": 0.4, "kind": "continuous", "name": "traffic-hotspot-fraction"},
		{"kind": "continuous", "name": "stack-injection-rate", "max": 0.1, "min": 0.05, "step": 0.05}
	],
	"base": {"stack-modules": 16, "traffic-hotspot-module": 0, "traffic-pattern": "hotspot"},
	"name": "noc-burst"
}`

// specInterference is the raytraced interference-channel family.
const specInterference = `{
	"name": "interference-box",
	"base": {"boards": 4},
	"axes": [
		{"name": "interference-neighbors", "kind": "integer", "min": 0, "max": 1},
		{"name": "interference-copper-boards", "kind": "bool"}
	],
	"budget": "analytic"
}`

// TestSpecJobDistributed is the acceptance test of the spec pipeline:
// two spec families submitted inline over HTTP to a distributed daemon,
// computed by two HTTP workers that compile the leased spec themselves,
// byte-identical to a single-node in-process run — and a key-reordered
// resubmission served entirely from cache without a single new point.
func TestSpecJobDistributed(t *testing.T) {
	const seed = 7

	// Single-node reference run, straight through the sweep engine.
	parsed, err := spec.Parse([]byte(specNoC))
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := parsed.Compile()
	if err != nil {
		t.Fatal(err)
	}
	single, err := sweep.Run(context.Background(), compiled.Scenario, sweep.Config{
		Workers: 1, Seed: seed, Budget: compiled.Budget, Feasible: compiled.Feasible,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := len(single.Records)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := New(Options{
		JobWorkers:  1,
		Distributed: true,
		ChunkPoints: 1,
		LeaseTTL:    time.Second,
		Cache:       st,
	})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunWorker(wctx, NewClient(srv.URL), WorkerOptions{
				Name: name, Poll: 5 * time.Millisecond, Workers: 1,
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker %s: %v", name, err)
			}
		}()
	}

	v := submit(t, srv, Request{Spec: json.RawMessage(specNoC), Seed: seed}, http.StatusAccepted)
	if !strings.HasPrefix(v.Scenario, "spec/") {
		t.Fatalf("spec job scenario = %q, want a spec/ content address", v.Scenario)
	}
	if v.Spec != "noc-burst" {
		t.Fatalf("spec job name = %q, want the document's name", v.Spec)
	}
	if v.Budget != "analytic" {
		t.Fatalf("spec job budget = %q, want the spec's own", v.Budget)
	}
	done := pollDone(t, srv, v.ID)
	if done.Progress.Done != total || done.Progress.Cached != 0 {
		t.Fatalf("fleet progress = %+v, want %d computed", done.Progress, total)
	}

	// Byte-identity with the single-node run: the two HTTP workers
	// compiled the leased spec locally and their merged records carry
	// the same PointKeys, metrics and Pareto front.
	fleet, err := m.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var fleetJSON, singleJSON bytes.Buffer
	if err := sweep.WriteJSON(&fleetJSON, fleet); err != nil {
		t.Fatal(err)
	}
	if err := sweep.WriteJSON(&singleJSON, single); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fleetJSON.Bytes(), singleJSON.Bytes()) {
		t.Fatalf("fleet spec run differs from single-node run:\nfleet:  %s\nsingle: %s",
			fleetJSON.Bytes(), singleJSON.Bytes())
	}

	// Key-reordered resubmission: canonicalization makes it the same
	// grid, so every point is a cache hit and nothing is computed.
	v2 := submit(t, srv, Request{Spec: json.RawMessage(specNoCReordered), Seed: seed}, http.StatusAccepted)
	if v2.Scenario != v.Scenario {
		t.Fatalf("reordered spec compiled to %q, want %q", v2.Scenario, v.Scenario)
	}
	done2 := pollDone(t, srv, v2.ID)
	if done2.Progress.Cached != total {
		t.Fatalf("reordered resubmission computed %d of %d points, want all cached",
			total-done2.Progress.Cached, total)
	}
	_, first := getRecords(t, srv, v.ID)
	_, second := getRecords(t, srv, v2.ID)
	if !bytes.Equal(first, second) {
		t.Fatal("reordered spec's record stream is not byte-identical")
	}

	// Second family end-to-end through the same fleet.
	v3 := submit(t, srv, Request{Spec: json.RawMessage(specInterference), Seed: seed}, http.StatusAccepted)
	done3 := pollDone(t, srv, v3.ID)
	if done3.Progress.Done == 0 || done3.Progress.Cached != 0 {
		t.Fatalf("interference family progress = %+v, want computed points", done3.Progress)
	}

	stopWorkers()
	wg.Wait()
}

// apiErrorOf performs a request and decodes the error envelope.
func apiErrorOf(t *testing.T, method, url string, body string) *APIError {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("%s %s: response is not an error envelope: %v", method, url, err)
	}
	e := env.Error
	e.Status = resp.StatusCode
	if e.Code == "" || e.Message == "" {
		t.Fatalf("%s %s: envelope missing code or message: %+v", method, url, e)
	}
	return &e
}

// TestErrorEnvelope drives every classified failure through the HTTP
// surface and asserts the stable (status, code) contract.
func TestErrorEnvelope(t *testing.T) {
	m := New(Options{Distributed: true, ChunkPoints: 4, LeaseTTL: time.Second})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	running := submit(t, srv,
		Request{Scenario: "paper-baseline", Budget: "analytic", Seed: 1}, http.StatusAccepted)

	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"malformed body", "POST", "/api/v1/jobs", "{", http.StatusBadRequest, CodeBadRequest},
		{"unknown scenario", "POST", "/api/v1/jobs", `{"scenario":"nope"}`, http.StatusBadRequest, CodeBadRequest},
		{"invalid spec", "POST", "/api/v1/jobs", `{"spec":{"name":"x","axes":[]}}`, http.StatusBadRequest, CodeSpecInvalid},
		{"spec plus scenario", "POST", "/api/v1/jobs", `{"scenario":"paper-baseline","spec":{"name":"x","axes":[{"name":"boards","kind":"integer","min":1,"max":2}]}}`, http.StatusBadRequest, CodeBadRequest},
		{"unknown job", "GET", "/api/v1/jobs/job-999999", "", http.StatusNotFound, CodeNotFound},
		{"unfinished records", "GET", "/api/v1/jobs/" + running.ID + "/records", "", http.StatusConflict, CodeNotDone},
		{"no store", "GET", "/api/v1/store", "", http.StatusNotFound, CodeNotFound},
		{"gone lease heartbeat", "POST", "/api/v1/workers/leases/lease-404/heartbeat", "", http.StatusGone, CodeLeaseGone},
		{"bad list limit", "GET", "/api/v1/jobs?limit=zero", "", http.StatusBadRequest, CodeBadRequest},
		{"bad list state", "GET", "/api/v1/jobs?state=purple", "", http.StatusBadRequest, CodeBadRequest},
	}
	for _, c := range cases {
		e := apiErrorOf(t, c.method, srv.URL+c.path, c.body)
		if e.Status != c.status || e.Code != c.code {
			t.Errorf("%s: got (%d, %s) %q, want (%d, %s)",
				c.name, e.Status, e.Code, e.Message, c.status, c.code)
		}
	}

	// After shutdown the daemon refuses writes with the shutdown code.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	e := apiErrorOf(t, "POST", srv.URL+"/api/v1/jobs", `{"scenario":"paper-baseline"}`)
	if e.Status != http.StatusServiceUnavailable || e.Code != CodeShutdown {
		t.Errorf("post-shutdown submit: got (%d, %s), want (503, %s)", e.Status, e.Code, CodeShutdown)
	}

	// The typed client surfaces the same envelope via errors.As.
	_, err := NewClient(srv.URL).Heartbeat("lease-404")
	if !errors.Is(err, ErrLeaseGone) {
		t.Errorf("client heartbeat of dead lease = %v, want ErrLeaseGone", err)
	}
}

// TestJobsPagination walks the jobs listing through limit/cursor pages
// and the state/kind filters. A distributed daemon with no workers
// leaves every submission pending, so the listing is cheap and stable.
func TestJobsPagination(t *testing.T) {
	m := New(Options{Distributed: true, ChunkPoints: 4, LeaseTTL: time.Second, JobWorkers: 1})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		v := submit(t, srv, Request{Scenario: "paper-baseline", Budget: "analytic", Seed: uint64(i + 1)}, http.StatusAccepted)
		ids = append(ids, v.ID)
	}
	opt := submit(t, srv, Request{
		Kind: KindOptimize, Space: "embedded-box", Budget: "analytic", Seed: 1,
	}, http.StatusAccepted)

	// Page through all six jobs two at a time, in submission order.
	var walked []string
	cursor := ""
	pages := 0
	for {
		url := "/api/v1/jobs?limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var page JobPage
		getJSON(t, srv, url, &page)
		for _, j := range page.Jobs {
			walked = append(walked, j.ID)
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
		if pages > 10 {
			t.Fatal("pagination never terminated")
		}
	}
	want := append(append([]string{}, ids...), opt.ID)
	if strings.Join(walked, ",") != strings.Join(want, ",") {
		t.Fatalf("paged walk = %v, want %v", walked, want)
	}

	// Kind filter.
	var optOnly JobPage
	getJSON(t, srv, "/api/v1/jobs?kind=optimize", &optOnly)
	if len(optOnly.Jobs) != 1 || optOnly.Jobs[0].ID != opt.ID {
		t.Fatalf("kind=optimize page = %+v, want just %s", optOnly.Jobs, opt.ID)
	}

	// State filter: nothing is done on a workerless daemon.
	var doneOnly JobPage
	getJSON(t, srv, "/api/v1/jobs?state=done", &doneOnly)
	if len(doneOnly.Jobs) != 0 {
		t.Fatalf("state=done page has %d jobs, want 0", len(doneOnly.Jobs))
	}

	// A filtered walk still fills pages across non-matching jobs.
	var sweeps JobPage
	getJSON(t, srv, "/api/v1/jobs?kind=sweep&limit=4", &sweeps)
	if len(sweeps.Jobs) != 4 || sweeps.NextCursor == "" {
		t.Fatalf("kind=sweep limit=4: %d jobs, cursor %q", len(sweeps.Jobs), sweeps.NextCursor)
	}
}

// TestKnobsEndpoint asserts the spec-authoring catalog is served: every
// knob with its kind, the constraint metrics and the objectives.
func TestKnobsEndpoint(t *testing.T) {
	m := New(Options{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	var got struct {
		Knobs []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"knobs"`
		Metrics    []string `json:"metrics"`
		Objectives []string `json:"objectives"`
	}
	getJSON(t, srv, "/api/v1/knobs", &got)
	if len(got.Knobs) != len(spec.Knobs()) {
		t.Fatalf("knobs catalog has %d entries, want %d", len(got.Knobs), len(spec.Knobs()))
	}
	kinds := map[string]string{}
	for _, k := range got.Knobs {
		kinds[k.Name] = k.Kind
	}
	if kinds["traffic-pattern"] != "string" || kinds["boards"] != "integer" {
		t.Fatalf("knob kinds wrong: %v", kinds)
	}
	if len(got.Metrics) == 0 || len(got.Objectives) == 0 {
		t.Fatalf("catalog missing metrics or objectives: %+v", got)
	}
}
