package ldpc

import (
	"testing"

	"repro/internal/rng"
)

func TestScheduleStrings(t *testing.T) {
	if Flooding.String() != "flooding" || Layered.String() != "layered" ||
		Schedule(9).String() != "unknown" {
		t.Error("schedule names wrong")
	}
}

func layeredDecoder(code *Code, alg Algorithm, maxIter int) *Decoder {
	d := NewDecoder(code, alg, maxIter)
	d.Sched = Layered
	return d
}

func TestLayeredDecodesNoiseless(t *testing.T) {
	code := Lift(Regular48(), 25, 1)
	llr := make([]float64, code.NumVars)
	for i := range llr {
		llr[i] = 10
	}
	for _, alg := range []Algorithm{SumProduct, MinSum} {
		res := layeredDecoder(code, alg, 50).Decode(llr)
		if !res.Converged || !allZero(res.Hard) {
			t.Errorf("%v layered: noiseless decode failed", alg)
		}
	}
}

func TestLayeredMatchesFloodingDecisions(t *testing.T) {
	// On comfortably decodable noise both schedules must reach the
	// transmitted (all-zero) codeword.
	code := Lift(Regular48(), 40, 3)
	sigma := NoiseSigma(4, 0.5)
	scale := 2 / (sigma * sigma)
	flood := NewDecoder(code, SumProduct, 60)
	layer := layeredDecoder(code, SumProduct, 60)
	llr := make([]float64, code.NumVars)
	for f := 0; f < 40; f++ {
		stream := rng.New(411).Split(uint64(f))
		for i := range llr {
			llr[i] = scale * (1 + sigma*stream.Norm())
		}
		rf := flood.Decode(llr)
		rl := layer.Decode(llr)
		if rf.Converged && !rl.Converged {
			t.Errorf("frame %d: flooding converged but layered did not", f)
		}
		if rf.Converged && rl.Converged {
			for i := range rf.Hard {
				if rf.Hard[i] != rl.Hard[i] {
					t.Fatalf("frame %d: schedules disagree at bit %d", f, i)
				}
			}
		}
	}
}

func TestLayeredConvergesFaster(t *testing.T) {
	// The layered schedule propagates fresh messages within an
	// iteration, cutting the iteration count roughly in half on average.
	code := Lift(Regular48(), 60, 3)
	sigma := NoiseSigma(3, 0.5)
	scale := 2 / (sigma * sigma)
	flood := NewDecoder(code, MinSum, 80)
	layer := layeredDecoder(code, MinSum, 80)
	llr := make([]float64, code.NumVars)
	var itFlood, itLayer, frames int
	for f := 0; f < 60; f++ {
		stream := rng.New(511).Split(uint64(f))
		for i := range llr {
			llr[i] = scale * (1 + sigma*stream.Norm())
		}
		rf := flood.Decode(llr)
		rl := layer.Decode(llr)
		if rf.Converged && rl.Converged {
			itFlood += rf.Iterations
			itLayer += rl.Iterations
			frames++
		}
	}
	if frames < 20 {
		t.Fatalf("only %d frames converged under both schedules", frames)
	}
	if float64(itLayer) > 0.75*float64(itFlood) {
		t.Errorf("layered used %d iterations vs flooding %d — expected a clear win",
			itLayer, itFlood)
	}
}

func TestLayeredWindowDecoding(t *testing.T) {
	code := LiftConvolutional(PaperSpreading(), 12, 20, 2)
	wd := NewWindowDecoder(code, 5, MinSum, 20)
	wd.SetSchedule(Layered)
	sigma := NoiseSigma(4, code.Rate())
	scale := 2 / (sigma * sigma)
	llr := make([]float64, code.NumVars)
	stream := rng.New(611)
	for i := range llr {
		llr[i] = scale * (1 + sigma*stream.Norm())
	}
	out := wd.Decode(llr)
	errs := 0
	for _, b := range out {
		if b != 0 {
			errs++
		}
	}
	if errs > 3 {
		t.Errorf("layered window decode left %d errors at 4 dB", errs)
	}
}

func TestLayeredBERPath(t *testing.T) {
	code := Lift(Regular48(), 30, 2)
	r := SimulateBER(BERParams{
		Code: code, Alg: MinSum, Sched: Layered, MaxIter: 25,
		EbN0DB: 3, TargetBitErrors: 20, MaxCodewords: 300, Seed: 12,
	})
	if r.Codewords == 0 {
		t.Fatal("layered BER path simulated nothing")
	}
	if r.BER > 0.05 {
		t.Errorf("layered BER at 3 dB = %g, implausibly high", r.BER)
	}
}

func TestLayeredSumProductDoubleZeroInput(t *testing.T) {
	// Two zero inputs must zero all outputs without NaNs.
	msgs := []float64{0, 0, 1.5, -2}
	layeredSumProduct(msgs, make([]float64, len(msgs)))
	for i, m := range msgs {
		if m != 0 {
			t.Errorf("msg[%d] = %g, want 0", i, m)
		}
	}
	// A single zero input: only that edge gets the (nonzero) product of
	// the others; other edges see the zero and output 0.
	msgs = []float64{0, 1.5, -2, 1}
	layeredSumProduct(msgs, make([]float64, len(msgs)))
	if msgs[0] == 0 {
		t.Error("edge opposite the erasure should receive information")
	}
	for i := 1; i < len(msgs); i++ {
		if msgs[i] != 0 {
			t.Errorf("msg[%d] = %g, want 0 (sees the erasure)", i, msgs[i])
		}
	}
}
