package service

import "container/heap"

// jobQueue is a priority FIFO: higher Priority pops first, ties break by
// submission order. It holds *job values owned by the Manager; all
// access happens under the Manager's mutex.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }

func (q jobQueue) Less(i, j int) bool {
	if q[i].req.Priority != q[j].req.Priority {
		return q[i].req.Priority > q[j].req.Priority
	}
	return q[i].seq < q[j].seq
}

func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *jobQueue) Push(x any) { *q = append(*q, x.(*job)) }

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// push enqueues a job.
func (q *jobQueue) push(j *job) { heap.Push(q, j) }

// pop dequeues the highest-priority, oldest job, or nil when empty.
func (q *jobQueue) pop() *job {
	if q.Len() == 0 {
		return nil
	}
	return heap.Pop(q).(*job)
}
