// Command sweepd serves the design-space exploration engine as a
// long-running daemon: sweeps are submitted as jobs over HTTP, scheduled
// through a priority queue with bounded concurrency, and every evaluated
// point is persisted in a content-addressed result store, so identical
// work is never computed twice — across jobs, restarts, and cmd/sweep
// runs sharing the same store directory.
//
// Usage:
//
//	sweepd [-addr :8080] [-store sweep-store] [-jobs 2]
//
// Endpoints (see internal/service.NewHandler):
//
//	GET    /healthz
//	GET    /api/v1/scenarios
//	POST   /api/v1/jobs
//	GET    /api/v1/jobs
//	GET    /api/v1/jobs/{id}
//	DELETE /api/v1/jobs/{id}
//	GET    /api/v1/jobs/{id}/records
//	GET    /api/v1/jobs/{id}/pareto
//
// SIGINT or SIGTERM triggers a graceful drain: the listener stops, every
// queued job is cancelled, running jobs have their contexts cancelled,
// and the store is flushed before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/sweep/store"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	storeDir := flag.String("store", "sweep-store", "result store directory ('' disables persistence)")
	jobs := flag.Int("jobs", 2, "concurrent jobs (each parallelizes across grid points)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown deadline")
	flag.Parse()

	if err := run(*addr, *storeDir, *jobs, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func run(addr, storeDir string, jobs int, drain time.Duration) error {
	opts := service.Options{JobWorkers: jobs}
	if storeDir != "" {
		st, err := store.Open(storeDir)
		if err != nil {
			return err
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("sweepd: %v", err)
			}
		}()
		stats := st.Stats()
		log.Printf("store %s: %d cached points in %d segment(s)",
			storeDir, stats.Entries, stats.Segments)
		opts.Cache = st
	}
	m := service.New(opts)

	srv := &http.Server{
		Addr:        addr,
		Handler:     service.NewHandler(m),
		ReadTimeout: 30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d job workers)", addr, jobs)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		m.Shutdown(context.Background())
		return err
	case sig := <-sigc:
		log.Printf("%s: draining (deadline %s)", sig, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("sweepd: http shutdown: %v", err)
	}
	if err := m.Shutdown(ctx); err != nil {
		return err
	}
	log.Print("drained")
	return nil
}
