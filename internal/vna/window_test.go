package vna

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
)

// TestWindowChoiceAffectsEchoVisibility documents why the impulse
// responses use a Hann window: the rectangular window's sidelobes from
// the strong line-of-sight tap mask nearby detail, while Hann keeps the
// first reverberation cleanly readable.
func TestWindowChoiceAffectsEchoVisibility(t *testing.T) {
	a := New(41)
	sc := channel.Scenario{
		LinkDistM: 0.05, CopperBoards: true,
		TXGainDB: channel.HornGainDB, RXGainDB: channel.HornGainDB,
	}
	s21 := a.MeasureS21(sc)
	losDelay := 0.05 / 299792458.0

	echoLevel := func(win dsp.Window) float64 {
		ir := a.ImpulseResponse(s21, win)
		best := -1e9
		for i, tt := range ir.TimeS {
			if tt > 3*losDelay-60e-12 && tt < 3*losDelay+60e-12 && ir.MagDB[i] > best {
				best = ir.MagDB[i]
			}
		}
		return best - ir.PeakDB()
	}

	hann := echoLevel(dsp.Hann)
	// The physical echo sits ~15.3 dB below the LoS; the Hann reading
	// must land near that.
	if hann > -14 || hann < -19 {
		t.Errorf("Hann echo reading %.1f dB, want ~-15 to -17", hann)
	}
	// Blackman trades resolution for even lower sidelobes; the echo
	// must remain visible within a couple of dB of the Hann reading.
	blackman := echoLevel(dsp.Blackman)
	if blackman > hann+3 || blackman < hann-4 {
		t.Errorf("Blackman echo reading %.1f dB vs Hann %.1f — window handling broken", blackman, hann)
	}
}

// TestMeasurementSeedChangesNoiseNotSignal confirms the synthetic
// instrument separates deterministic physics from measurement noise.
func TestMeasurementSeedChangesNoiseNotSignal(t *testing.T) {
	sc := channel.Scenario{LinkDistM: 0.1, TXGainDB: 9.5, RXGainDB: 9.5}
	m1 := New(1).MeasureS21(sc)
	m2 := New(2).MeasureS21(sc)
	var maxDiff float64
	for i := range m1 {
		d := real(m1[i]-m2[i])*real(m1[i]-m2[i]) + imag(m1[i]-m2[i])*imag(m1[i]-m2[i])
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff == 0 {
		t.Error("different seeds produced identical measurements (noise missing)")
	}
	// The noise floor is -95 dB: differences must stay tiny relative to
	// the ~-41 dB signal.
	if maxDiff > 1e-7 {
		t.Errorf("seed-to-seed deviation %g too large — noise leaking into signal path", maxDiff)
	}
}
