package linkbudget

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableIValues(t *testing.T) {
	b := TableI()
	if b.RXNoiseFigureDB != 10 || b.RXTempK != 323 ||
		b.TXArrayGainDB != 12 || b.ButlerInaccuracyDB != 5 ||
		b.PolarizationMismatchDB != 3 || b.ImplementationLossDB != 5 {
		t.Errorf("Table I constants wrong: %+v", b)
	}
	if b.Pathloss.Exponent != 2 {
		t.Errorf("pathloss exponent = %g, want 2", b.Pathloss.Exponent)
	}
	// Table I pathloss rows: 59.8 dB at 0.1 m, 69.3 dB at 0.3 m.
	if got := b.Pathloss.LossDB(0.1); math.Abs(got-59.8) > 0.05 {
		t.Errorf("PL(0.1) = %.2f, want 59.8", got)
	}
	if got := b.Pathloss.LossDB(0.3); math.Abs(got-69.3) > 0.05 {
		t.Errorf("PL(0.3) = %.2f, want 69.3", got)
	}
}

func TestNoiseFloor(t *testing.T) {
	b := TableI()
	// kTB at 323 K over 25 GHz: about -69.5 dBm.
	if got := b.NoiseFloorDBm(); math.Abs(got+69.5) > 0.1 {
		t.Errorf("noise floor = %.2f dBm, want ~-69.5", got)
	}
	if got := b.EffectiveNoiseDBm(); math.Abs(got+59.5) > 0.1 {
		t.Errorf("effective noise = %.2f dBm, want ~-59.5", got)
	}
}

func TestRequiredTxPowerShortestLink(t *testing.T) {
	// Hand-computed from Table I: PTX = SNR - 69.5 + 10 + 59.8 - 24 + 8
	//                                  = SNR - 15.7 dBm.
	b := TableI()
	got := b.RequiredTxPowerDBm(0.1, 0, false)
	if math.Abs(got+15.7) > 0.2 {
		t.Errorf("PTX(SNR=0, shortest) = %.2f dBm, want ~-15.7", got)
	}
	got = b.RequiredTxPowerDBm(0.1, 35, false)
	if math.Abs(got-19.3) > 0.2 {
		t.Errorf("PTX(SNR=35, shortest) = %.2f dBm, want ~19.3", got)
	}
}

func TestRequiredTxPowerLongestLink(t *testing.T) {
	b := TableI()
	// Longest link: 9.5 dB more pathloss than the shortest.
	diff := b.RequiredTxPowerDBm(0.3, 10, false) - b.RequiredTxPowerDBm(0.1, 10, false)
	if math.Abs(diff-9.54) > 0.05 {
		t.Errorf("longest-shortest gap = %.2f dB, want 9.54", diff)
	}
	// Butler mismatch adds exactly 5 dB.
	bd := b.RequiredTxPowerDBm(0.3, 10, true) - b.RequiredTxPowerDBm(0.3, 10, false)
	if math.Abs(bd-5) > 1e-9 {
		t.Errorf("butler penalty = %.2f dB, want 5", bd)
	}
}

func TestFig4CurveShape(t *testing.T) {
	b := TableI()
	pts := b.Fig4Curve(0, 35, 36)
	if len(pts) != 36 {
		t.Fatalf("points = %d, want 36", len(pts))
	}
	// Curves increase 1 dB per dB of SNR and keep their ordering:
	// shortest < longest < longest+butler.
	for i, p := range pts {
		if p.ShortestDBm >= p.LongestDBm || p.LongestDBm >= p.LongestButlerDBm {
			t.Fatalf("curve ordering violated at SNR=%g", p.SNRdB)
		}
		if i > 0 {
			slope := p.ShortestDBm - pts[i-1].ShortestDBm
			if math.Abs(slope-1) > 1e-9 {
				t.Fatalf("slope = %g dB/dB, want 1", slope)
			}
		}
	}
	// Fig. 4 end points: shortest link spans about -15.7..19.3 dBm, the
	// Butler-matrix worst case tops out near 34 dBm.
	if math.Abs(pts[0].ShortestDBm+15.7) > 0.3 {
		t.Errorf("curve start = %.2f dBm, want ~-15.7", pts[0].ShortestDBm)
	}
	last := pts[len(pts)-1]
	if math.Abs(last.LongestButlerDBm-33.8) > 0.5 {
		t.Errorf("butler curve end = %.2f dBm, want ~33.8", last.LongestButlerDBm)
	}
}

func TestReceivedSNRInverts(t *testing.T) {
	b := TableI()
	for _, snr := range []float64{0, 10, 25} {
		p := b.RequiredTxPowerDBm(0.2, snr, true)
		if got := b.ReceivedSNRdB(0.2, p, true); math.Abs(got-snr) > 1e-9 {
			t.Errorf("ReceivedSNR(RequiredTx(%g)) = %g", snr, got)
		}
	}
}

func TestLinkMargin(t *testing.T) {
	b := TableI()
	p := b.RequiredTxPowerDBm(0.1, 15, false)
	if m := b.LinkMarginDB(0.1, p+3, 15, false); math.Abs(m-3) > 1e-9 {
		t.Errorf("margin = %g, want 3", m)
	}
}

func TestShannonRateSupports100G(t *testing.T) {
	b := TableI()
	// 2 bit/s/Hz per polarisation requires SNR = 3 (4.77 dB).
	snr := b.SNRFor100GbpsDB()
	if math.Abs(snr-4.77) > 0.01 {
		t.Errorf("SNR for 100G = %.2f dB, want 4.77", snr)
	}
	rate := b.ShannonRateBps(snr)
	if math.Abs(rate-100e9) > 1e6 {
		t.Errorf("rate at that SNR = %g, want 100e9", rate)
	}
	// More SNR, more rate.
	if b.ShannonRateBps(10) <= rate {
		t.Error("Shannon rate not increasing in SNR")
	}
}

func TestTableRowsAndString(t *testing.T) {
	b := TableI()
	rows := b.TableRows()
	if len(rows) != 9 {
		t.Fatalf("Table I rows = %d, want 9", len(rows))
	}
	s := b.String()
	for _, want := range []string{"RX noise figure", "Butler matrix inaccuracy", "RX temperature", "59.8", "69.3"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// Property: required power is monotone in SNR, distance and losses.
func TestPropertyRequiredPowerMonotone(t *testing.T) {
	b := TableI()
	f := func(rawSNR, rawD float64) bool {
		snr := math.Mod(math.Abs(rawSNR), 40)
		d := 0.05 + math.Mod(math.Abs(rawD), 0.25)
		base := b.RequiredTxPowerDBm(d, snr, false)
		return b.RequiredTxPowerDBm(d, snr+1, false) > base &&
			b.RequiredTxPowerDBm(d*1.5, snr, false) > base &&
			b.RequiredTxPowerDBm(d, snr, true) > base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
