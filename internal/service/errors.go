package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// Stable machine-readable error codes of the v1 API. Every non-2xx
// response carries exactly one of them in the error envelope; clients
// switch on the code, never on message text, so messages stay free to
// improve. Codes are append-only: removing or renaming one is a
// breaking API change.
const (
	// CodeBadRequest: the request shape or a named registry entry is
	// invalid (unknown kind, scenario, space, objective or budget,
	// malformed JSON body). HTTP 400.
	CodeBadRequest = "bad_request"
	// CodeSpecInvalid: the inline spec document failed strict parsing,
	// validation or compilation; the message names the offending field.
	// HTTP 400.
	CodeSpecInvalid = "spec_invalid"
	// CodeNotFound: the job (or requested sub-resource, e.g. a trace on
	// an untraced daemon, the store on a storeless one) does not exist.
	// HTTP 404.
	CodeNotFound = "not_found"
	// CodeNotDone: the job exists but has not produced a result yet.
	// HTTP 409.
	CodeNotDone = "not_done"
	// CodeLeaseGone: the lease is unknown, expired, superseded or its
	// job was cancelled; the worker should drop the chunk. HTTP 410.
	CodeLeaseGone = "lease_gone"
	// CodeBadRecords: a completion's records do not match the leased
	// chunk. HTTP 422.
	CodeBadRecords = "bad_records"
	// CodeShutdown: the manager is draining and refuses new work.
	// HTTP 503.
	CodeShutdown = "shutdown"
	// CodeInternal: an unclassified server-side failure. HTTP 500.
	CodeInternal = "internal"
)

// APIError is one decoded v1 error envelope — the typed form of every
// non-2xx response body. Client methods return it (wrapped) so callers
// can switch on Code or errors.As for the structured fields instead of
// parsing message strings.
type APIError struct {
	// Status is the HTTP status the envelope arrived under (0 when the
	// error was built server-side, where the status travels separately).
	Status int `json:"-"`
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Details carries optional structured context (e.g. the offending
	// field of a rejected spec).
	Details map[string]string `json:"details,omitempty"`
}

func (e *APIError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("api error %d (%s): %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("api error (%s): %s", e.Code, e.Message)
}

// errorEnvelope is the wire shape of every non-2xx response:
// {"error":{"code":"...","message":"...","details":{...}}}.
type errorEnvelope struct {
	Error APIError `json:"error"`
}

// classify maps a service error to its HTTP status and stable code.
// It is the single decision table behind every error response; handlers
// never pick statuses ad hoc.
func classify(err error) (status int, code string) {
	switch {
	case errors.Is(err, ErrShutdown):
		return http.StatusServiceUnavailable, CodeShutdown
	case errors.Is(err, ErrBadSpec):
		return http.StatusBadRequest, CodeSpecInvalid
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, CodeBadRequest
	case errors.Is(err, ErrUnknownJob), errors.Is(err, ErrNoTrace):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, ErrNotDone):
		return http.StatusConflict, CodeNotDone
	case errors.Is(err, ErrLeaseGone):
		return http.StatusGone, CodeLeaseGone
	case errors.Is(err, ErrBadRecords):
		return http.StatusUnprocessableEntity, CodeBadRecords
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// writeAPIError is the one shared helper every handler routes non-2xx
// responses through (tools/apilint enforces this statically): it wraps
// the error in the envelope under its classified status and code.
// Handlers that know better than the classifier (e.g. a 400 for an
// unreadable body) pass an explicit status and code via writeAPIErrorAs.
func writeAPIError(w http.ResponseWriter, err error) {
	status, code := classify(err)
	writeAPIErrorAs(w, status, code, err, nil)
}

// writeAPIErrorAs writes the error envelope under an explicit status
// and code, with optional structured details. It is the only place in
// the package that hands a non-2xx status to writeJSON.
func writeAPIErrorAs(w http.ResponseWriter, status int, code string, err error, details map[string]string) {
	writeJSON(w, status, errorEnvelope{Error: APIError{
		Code:    code,
		Message: err.Error(),
		Details: details,
	}})
}

// decodeAPIError turns a non-2xx response into a typed *APIError,
// tolerating the legacy {"error":"message"} shape and bare bodies so a
// new client degrades gracefully against an old daemon.
func decodeAPIError(resp *http.Response, raw []byte) *APIError {
	var env errorEnvelope
	if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" {
		e := env.Error
		e.Status = resp.StatusCode
		return &e
	}
	var legacy struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &legacy) == nil && legacy.Error != "" {
		msg = legacy.Error
	}
	if msg == "" {
		msg = resp.Status
	}
	return &APIError{Status: resp.StatusCode, Code: codeForStatus(resp.StatusCode), Message: msg}
}

// codeForStatus back-fills a code for envelopes that arrived without
// one (legacy daemons, proxies speaking plain text).
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeNotDone
	case http.StatusGone:
		return CodeLeaseGone
	case http.StatusUnprocessableEntity:
		return CodeBadRecords
	case http.StatusServiceUnavailable:
		return CodeShutdown
	default:
		return CodeInternal
	}
}
