package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fsio"
)

// The segment layer owns the append-only seg-NNNNNN.jsonl files: naming,
// discovery, offset-tracked scanning, torn-tail detection and the
// directory fsyncs that make file creation and deletion durable. The
// index layer (index.go) and compaction (compact.go) sit on top of it;
// neither touches segment bytes directly.

// segPrefix and segSuffix frame a segment file name; segName renders
// one. The six-digit sequence keeps lexical order equal to numeric
// order for every realistic store (rotation at 8 MiB means a million
// segments is ~8 TiB of records).
const (
	segPrefix = "seg-"
	segSuffix = ".jsonl"
)

func segName(seq int) string {
	return fmt.Sprintf("%s%06d%s", segPrefix, seq, segSuffix)
}

// parseSegName extracts the sequence number of a segment file name.
func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	var seq int
	if _, err := fmt.Sscanf(name, segPrefix+"%06d"+segSuffix, &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments discovers the segments under dir, returning their
// sequence numbers in ascending order plus each one's size. It also
// removes temp files left behind by a compaction that died before its
// atomic renames — they are invisible to replay (the glob requires the
// .jsonl suffix) but would otherwise accumulate forever.
func listSegments(dir string) (seqs []int, sizes map[int]int64, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	stale, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix+".tmp-*"))
	for _, tmp := range stale {
		os.Remove(tmp)
	}
	sizes = make(map[int]int64, len(matches))
	for _, path := range matches {
		seq, ok := parseSegName(filepath.Base(path))
		if !ok {
			continue
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, nil, fmt.Errorf("store: %w", err)
		}
		seqs = append(seqs, seq)
		sizes[seq] = st.Size()
	}
	sort.Ints(seqs)
	return seqs, sizes, nil
}

// scanSegment reads one segment from the byte offset from, calling fn
// for every well-formed entry line with the entry, its starting offset
// and its on-disk length (newline included). Malformed lines — a torn
// tail from a crashed writer, or manual edits — are counted and
// skipped, never fatal: losing an entry only costs a recompute. A
// final line without a terminating newline is the signature of a crash
// mid-append and is always skipped.
func scanSegment(path string, from int64, fn func(e entry, off int64, n int64)) (skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if from > 0 {
		if _, err := f.Seek(from, io.SeekStart); err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
	}
	r := bufio.NewReaderSize(f, 1<<20)
	off := from
	for {
		line, rerr := r.ReadBytes('\n')
		n := int64(len(line))
		if rerr == io.EOF {
			if n > 0 {
				// Torn tail: bytes past the last newline are a
				// half-written entry.
				skipped++
			}
			return skipped, nil
		}
		if rerr != nil {
			return skipped, fmt.Errorf("store: replay %s: %w", path, rerr)
		}
		trimmed := line[:n-1]
		if len(trimmed) > 0 {
			var e entry
			if err := json.Unmarshal(trimmed, &e); err != nil || e.Key == "" {
				skipped++
			} else {
				fn(e, off, n)
			}
		}
		off += n
	}
}

// createSegment creates (or opens for append) the segment file for seq
// and fsyncs the directory so the new name survives a crash: the very
// next Put may be the only copy of an expensive evaluation.
func createSegment(dir string, seq int) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, segName(seq)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := fsio.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}
