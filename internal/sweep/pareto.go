package sweep

// dominates reports whether a is at least as good as b on every
// objective and strictly better on one: lower transmit power, lower
// structural decode latency, higher NoC saturation headroom.
func dominates(a, b Record) bool {
	if a.TxPowerDBm > b.TxPowerDBm ||
		a.DecodeLatencyBits > b.DecodeLatencyBits ||
		a.NoCSaturation < b.NoCSaturation {
		return false
	}
	return a.TxPowerDBm < b.TxPowerDBm ||
		a.DecodeLatencyBits < b.DecodeLatencyBits ||
		a.NoCSaturation > b.NoCSaturation
}

// MarkPareto sets the Pareto flag on every non-dominated feasible
// record and returns their indices in record order. Infeasible records
// (Err set) never join the front.
func MarkPareto(recs []Record) []int {
	return MarkParetoFeasible(recs, nil)
}

// MarkParetoFeasible is MarkPareto under an extra feasibility
// predicate (user spec constraints): records failing it neither join
// nor dominate the front, exactly like records with Err set. A nil
// predicate admits every Err-free record. The predicate only shapes
// this job-level marking pass — record metric bytes are untouched, so
// the point cache stays shared across specs that differ only in their
// constraints.
func MarkParetoFeasible(recs []Record, feasible func(Record) bool) []int {
	ok := make([]bool, len(recs))
	for i := range recs {
		recs[i].Pareto = false
		ok[i] = recs[i].Err == "" && (feasible == nil || feasible(recs[i]))
	}
	var front []int
	for i := range recs {
		if !ok[i] {
			continue
		}
		dominated := false
		for j := range recs {
			if i == j || !ok[j] {
				continue
			}
			if dominates(recs[j], recs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			recs[i].Pareto = true
			front = append(front, i)
		}
	}
	return front
}
