package perf

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ldpc"
	"repro/internal/noc"
	"repro/internal/noc/analytic"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/sweep"
	"repro/internal/sweep/store"
)

// DefaultSeed roots every committed BENCH_<n>.json measurement.
const DefaultSeed = 1

// catalog is built once at init; entries with Setup state are
// singletons, so measuring one workload concurrently with itself is
// not supported (cmd/perf and the bench wrappers run serially).
var catalog []Workload

// Catalog returns the workload catalog sorted by name.
func Catalog() []Workload {
	out := make([]Workload, len(catalog))
	copy(out, catalog)
	return out
}

// Lookup returns the named catalog workload.
func Lookup(name string) (Workload, bool) {
	for _, w := range catalog {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Names lists the catalog workload names in order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, w := range catalog {
		out[i] = w.Name
	}
	return out
}

func register(w Workload) {
	if w.Name == "" || w.Run == nil {
		panic("perf: workload needs a name and a Run")
	}
	for _, have := range catalog {
		if have.Name == w.Name {
			panic("perf: duplicate workload " + w.Name)
		}
	}
	catalog = append(catalog, w)
	sort.Slice(catalog, func(i, j int) bool { return catalog[i].Name < catalog[j].Name })
}

func init() {
	register(ldpcDecodePaper())
	register(nocCompiledFig8())
	register(sweepAnalyticCold())
	register(sweepWarmStore())
	register(optimizePaperSpace())
	register(serviceSubmitPoll())
	register(storeReopenCold())
	register(storeShardFanout())
	register(metricsOverhead())
	register(tracingOverhead())
}

// ldpcDecodePaper measures the LDPC-CC sliding-window sum-product
// decoder on the paper's code family — the inner loop behind every BER
// point of Fig. 10 and of Monte-Carlo sweep budgets. The fixed
// error-target overrides disable early stopping, so every iteration
// decodes exactly the same 16 codewords.
func ldpcDecodePaper() Workload {
	const codewords = 16
	return Workload{
		Name:           "ldpc-decode-paper",
		MaxAllocsPerOp: 350,
		Description:    "window-decode 16 codewords of the paper's LDPC-CC (N=25, L=12, W=5) over BPSK/AWGN",
		Units:          "codewords",
		Run: func(ctx context.Context, seed uint64) (float64, error) {
			code := ldpc.LiftConvolutional(ldpc.PaperSpreading(), 12, 25, 3)
			r := ldpc.SimulateBER(ldpc.BERParams{
				Code:    code,
				Alg:     ldpc.SumProduct,
				MaxIter: 12,
				Window:  5,
				EbN0DB:  3,
				// Unreachable targets: the run always spends the full
				// codeword budget, keeping iterations identical.
				TargetBitErrors:   1 << 30,
				TargetFrameErrors: 1 << 30,
				MaxCodewords:      codewords,
				Seed:              seed,
				Workers:           1,
			})
			if r.Codewords != codewords {
				return 0, fmt.Errorf("decoded %d codewords, want %d", r.Codewords, codewords)
			}
			return float64(r.Codewords), nil
		},
	}
}

// nocCompiledFig8 measures compiling the Fig. 8 meshes (64-module 2D
// and 3D, plus the 512-module scaling mesh) and evaluating a
// 16-point latency-versus-injection curve through each Compiled
// evaluator — the per-point analytic cost of every stack choice.
func nocCompiledFig8() Workload {
	const curvePoints = 16
	return Workload{
		Name:           "noc-compiled-fig8",
		MaxAllocsPerOp: 700000,
		Description:    "compile Fig. 8 meshes (8x8, 4x4x4, 8x8x8) and evaluate 16-point latency curves",
		Units:          "points",
		Run: func(ctx context.Context, seed uint64) (float64, error) {
			meshes := []*noc.Mesh{
				noc.NewMesh2D(8, 8),
				noc.NewMesh3D(4, 4, 4),
				noc.NewMesh3D(8, 8, 8),
			}
			points := 0.0
			for _, m := range meshes {
				c := analytic.Model{Topo: m, Traffic: noc.Uniform{}}.Compile()
				sat := c.SaturationRate()
				rates := make([]float64, curvePoints)
				for i := range rates {
					rates[i] = sat * float64(i+1) / float64(curvePoints+2)
				}
				curve := c.LatencyCurve(rates)
				for _, pt := range curve {
					if pt.Saturated {
						return 0, fmt.Errorf("%s saturated at %.4f below saturation rate", m.Name(), pt.InjectionRate)
					}
				}
				points += float64(len(curve))
			}
			return points, nil
		},
	}
}

// sweepAnalyticCold measures a full cold paper-baseline sweep: the
// per-point design pipeline (link budget, code choice, stack choice)
// with no cache in front of it.
func sweepAnalyticCold() Workload {
	return Workload{
		Name:           "sweep-analytic-cold",
		MaxAllocsPerOp: 300,
		Description:    "cold paper-baseline analytic sweep: full design pipeline per grid point",
		Units:          "points",
		Run: func(ctx context.Context, seed uint64) (float64, error) {
			sc, err := sweep.Get("paper-baseline")
			if err != nil {
				return 0, err
			}
			res, err := sweep.Run(ctx, sc, sweep.Config{
				Workers: 1, Seed: seed, Budget: sweep.AnalyticBudget(),
			})
			if err != nil {
				return 0, err
			}
			if len(res.ParetoIndices) == 0 {
				return 0, fmt.Errorf("empty Pareto front")
			}
			return float64(len(res.Records)), nil
		},
	}
}

// sweepWarmStore measures a fully warm store-backed sweep: every point
// served from the content-addressed index — the steady state of the
// sweep daemon, where PointKey hashing and index lookups are the whole
// cost.
func sweepWarmStore() Workload {
	var (
		st  *store.Store
		dir string
	)
	run := func(ctx context.Context, seed uint64) (*sweep.Result, error) {
		sc, err := sweep.Get("paper-baseline")
		if err != nil {
			return nil, err
		}
		return sweep.Run(ctx, sc, sweep.Config{
			Workers: 1, Seed: seed, Budget: sweep.AnalyticBudget(), Cache: st,
		})
	}
	return Workload{
		Name:           "sweep-warm-store",
		MaxAllocsPerOp: 150,
		Description:    "paper-baseline sweep with every point served from a warm result store",
		Units:          "points",
		Setup: func(ctx context.Context, seed uint64) (func(), error) {
			var err error
			dir, err = os.MkdirTemp("", "perf-warm-store-*")
			if err != nil {
				return nil, err
			}
			st, err = store.Open(dir)
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			// Fill the store; the measured iterations then hit on every
			// point.
			if _, err := run(ctx, seed); err != nil {
				st.Close()
				os.RemoveAll(dir)
				return nil, err
			}
			return func() {
				st.Close()
				os.RemoveAll(dir)
				st = nil
			}, nil
		},
		Run: func(ctx context.Context, seed uint64) (float64, error) {
			res, err := run(ctx, seed)
			if err != nil {
				return 0, err
			}
			if res.CachedPoints != len(res.Records) {
				return 0, fmt.Errorf("warm sweep computed %d points, want 0", res.ComputedPoints)
			}
			return float64(len(res.Records)), nil
		},
	}
}

// optimizePaperSpace measures the adaptive NSGA-II optimizer over the
// paper-baseline space at analytic budget: genetics, per-individual
// design evaluation and front extraction.
func optimizePaperSpace() Workload {
	return Workload{
		Name:           "optimize-paper-space",
		MaxAllocsPerOp: 3200,
		Description:    "NSGA-II over the paper-baseline space: 4 generations x 16 individuals, analytic budget",
		Units:          "points",
		Run: func(ctx context.Context, seed uint64) (float64, error) {
			sp, err := search.Get("paper-baseline")
			if err != nil {
				return 0, err
			}
			res, err := search.Optimize(ctx, search.Options{
				Space: sp, Seed: seed, Generations: 4, Population: 16, Workers: 1,
			})
			if err != nil {
				return 0, err
			}
			if len(res.FrontIndices) == 0 {
				return 0, fmt.Errorf("empty final front")
			}
			return float64(len(res.Records)), nil
		},
	}
}

// perfKey derives a deterministic sha-256-hex key of the same shape
// sweep.PointKey produces, so store workloads route and index exactly
// like production keys.
func perfKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("perf-point-%d", i)))
	return hex.EncodeToString(sum[:])
}

// perfRecord is a small but representative stored record.
func perfRecord(i int) sweep.Record {
	return sweep.Record{
		Scenario: "perf", Index: i, Label: fmt.Sprintf("p%d", i),
		TxPowerDBm: float64(i % 32), DecodeLatencyBits: 200,
		NoCSaturation: 0.25, Topology: "2D mesh 4x4",
	}
}

// storeReopenCold measures the cost the persisted index exists to
// bound: reopening a segmented store. Setup builds a store of several
// thousand entries across many segments and closes it cleanly; each
// measured iteration opens it cold, which must map every entry from
// index.json with zero segment replay, serve a few spot lookups, and
// close again.
func storeReopenCold() Workload {
	const entries = 2048
	var dir string
	return Workload{
		Name:           "store-reopen-cold",
		MaxAllocsPerOp: 7000,
		Description:    "reopen a 2048-entry segmented store through its persisted index (no replay)",
		Units:          "entries",
		Setup: func(ctx context.Context, seed uint64) (func(), error) {
			var err error
			dir, err = os.MkdirTemp("", "perf-reopen-cold-*")
			if err != nil {
				return nil, err
			}
			// Small segments force a multi-segment layout, the case where
			// index-less reopen cost scales with store size.
			st, err := store.OpenOptions(dir, store.Options{SegmentBytes: 64 << 10})
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			for i := 0; i < entries; i++ {
				st.Put(perfKey(i), perfRecord(i))
			}
			if err := st.Close(); err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			return func() { os.RemoveAll(dir) }, nil
		},
		Run: func(ctx context.Context, seed uint64) (float64, error) {
			st, err := store.OpenOptions(dir, store.Options{SegmentBytes: 64 << 10})
			if err != nil {
				return 0, err
			}
			defer st.Close()
			if s := st.Stats(); s.Replayed != 0 || s.IndexLoaded != entries {
				return 0, fmt.Errorf("cold reopen replayed %d and index-loaded %d entries, want 0 and %d",
					s.Replayed, s.IndexLoaded, entries)
			}
			// Spot-check a spread of entries through the fault-in path.
			for i := 0; i < entries; i += entries / 16 {
				if _, ok := st.Get(perfKey(i)); !ok {
					return 0, fmt.Errorf("entry %d missing after cold reopen", i)
				}
			}
			return entries, nil
		},
	}
}

// storeShardFanout measures concurrent lookup throughput against a
// sharded store: 8 goroutines hammering Gets (plus deduplicated
// re-Puts) over 8 shards. The single-store equivalent serializes on
// one mutex; the sharded layout is contention-free for uniformly
// distributed keys, and this workload is the trajectory's record of
// that margin.
func storeShardFanout() Workload {
	const (
		shards  = 8
		workers = 8
		keys    = 512
		rounds  = 8
	)
	var (
		dir string
		st  *store.Sharded
	)
	return Workload{
		Name:           "store-shard-fanout",
		MaxAllocsPerOp: 20000,
		Description:    "8 goroutines x 512 warm lookups against an 8-shard store, with dedup re-puts",
		Units:          "lookups",
		Setup: func(ctx context.Context, seed uint64) (func(), error) {
			var err error
			dir, err = os.MkdirTemp("", "perf-shard-fanout-*")
			if err != nil {
				return nil, err
			}
			st, err = store.OpenSharded(dir, shards, store.Options{})
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			for i := 0; i < keys; i++ {
				st.Put(perfKey(i), perfRecord(i))
			}
			return func() {
				st.Close()
				os.RemoveAll(dir)
				st = nil
			}, nil
		},
		Run: func(ctx context.Context, seed uint64) (float64, error) {
			var wg sync.WaitGroup
			errc := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						for i := 0; i < keys/workers; i++ {
							k := (w*keys/workers + i + r) % keys
							if _, ok := st.Get(perfKey(k)); !ok {
								errc <- fmt.Errorf("warm key %d missed", k)
								return
							}
							if r == 0 && i%8 == 0 {
								st.Put(perfKey(k), perfRecord(k)) // dedup no-op
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errc)
			if err := <-errc; err != nil {
				return 0, err
			}
			return float64(workers * rounds * keys / workers), nil
		},
	}
}

// metricsOverhead measures the observability tax: warm lookups and
// dedup re-puts against a store opened with Options.Metrics set — so
// every Get and Put pays one clock read plus a histogram observation —
// followed by a full Prometheus exposition of the registry each round,
// the cost a scrape adds on top. The uninstrumented store workloads
// above measure the free path (nil Metrics takes no clock reads at
// all); this workload is the trajectory's record of what turning
// observation on costs.
func metricsOverhead() Workload {
	const (
		shards = 4
		keys   = 512
		rounds = 8
	)
	var (
		dir string
		st  *store.Sharded
		reg *obs.Registry
	)
	return Workload{
		Name:           "metrics-overhead",
		MaxAllocsPerOp: 24000,
		Description:    "512 warm instrumented lookups x 8 rounds with per-op latency histograms, plus a registry exposition per round",
		Units:          "lookups",
		Setup: func(ctx context.Context, seed uint64) (func(), error) {
			var err error
			dir, err = os.MkdirTemp("", "perf-metrics-overhead-*")
			if err != nil {
				return nil, err
			}
			reg = obs.NewRegistry()
			st, err = store.OpenSharded(dir, shards, store.Options{Metrics: reg})
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			for i := 0; i < keys; i++ {
				st.Put(perfKey(i), perfRecord(i))
			}
			return func() {
				st.Close()
				os.RemoveAll(dir)
				st, reg = nil, nil
			}, nil
		},
		Run: func(ctx context.Context, seed uint64) (float64, error) {
			for r := 0; r < rounds; r++ {
				for i := 0; i < keys; i++ {
					if _, ok := st.Get(perfKey(i)); !ok {
						return 0, fmt.Errorf("warm key %d missed", i)
					}
					if i%16 == 0 {
						st.Put(perfKey(i), perfRecord(i)) // dedup no-op, still timed
					}
				}
				if err := reg.WritePrometheus(io.Discard); err != nil {
					return 0, err
				}
			}
			return float64(rounds * keys), nil
		},
	}
}

// tracingOverhead measures the span-collection tax on the record path:
// 512 span appends into an enabled ring collector (well past capacity,
// so eviction is exercised every round), one per-job query over the
// ring, and — the number the budget really guards — the same 512
// appends against a nil collector, which is the disabled-tracing hot
// path and must not allocate at all.
func tracingOverhead() Workload {
	const (
		ringCap = 256
		appends = 512
	)
	var (
		col      *obs.Collector
		disabled *obs.Collector
		recs     []obs.SpanRecord
	)
	return Workload{
		Name:           "tracing-overhead",
		MaxAllocsPerOp: 16,
		Description:    "512 span appends into a 256-slot ring collector plus a per-job query, and 512 nil-collector (disabled) appends",
		Units:          "spans",
		Setup: func(ctx context.Context, seed uint64) (func(), error) {
			col = obs.NewCollector(ringCap)
			disabled = nil
			// Pre-minted records: the workload measures the collector, not
			// ID generation. Two alternating job IDs make JobSpans filter
			// half the ring. Timestamps are fixed offsets so every run
			// appends identical payloads.
			recs = make([]obs.SpanRecord, appends)
			for i := range recs {
				recs[i] = obs.SpanRecord{
					TraceID: fmt.Sprintf("trace-%04d", i),
					SpanID:  fmt.Sprintf("span-%04d", i),
					Name:    "chunk",
					JobID:   fmt.Sprintf("job-%d", i%2),
					Worker:  "perf-worker",
					Start:   time.Unix(0, int64(i)*1000),
					End:     time.Unix(0, int64(i)*1000+500),
				}
			}
			return func() { col, disabled, recs = nil, nil, nil }, nil
		},
		Run: func(ctx context.Context, seed uint64) (float64, error) {
			for i := range recs {
				col.Add(recs[i])
			}
			for i := range recs {
				disabled.Add(recs[i]) // nil receiver: the zero-cost disabled path
			}
			if got := col.Len(); got != ringCap {
				return 0, fmt.Errorf("ring holds %d spans, want %d", got, ringCap)
			}
			spans := col.JobSpans("job-0")
			if len(spans) != ringCap/2 {
				return 0, fmt.Errorf("job-0 query returned %d spans, want %d", len(spans), ringCap/2)
			}
			if disabled.Len() != 0 || disabled.Total() != 0 {
				return 0, fmt.Errorf("nil collector counted spans")
			}
			return appends, nil
		},
	}
}

// serviceSubmitPoll measures the HTTP service round trip the daemon
// serves: submit a sweep job, poll it to completion, stream its
// records. Units are the records streamed back — a fixed property of
// the scenario — not the poll requests, whose count depends on
// scheduling and would make the unit figure non-reproducible.
func serviceSubmitPoll() Workload {
	var (
		mgr *service.Manager
		srv *httptest.Server
	)
	return Workload{
		Name:           "service-submit-poll",
		MaxAllocsPerOp: 900,
		Description:    "HTTP service round trip: submit an embedded-box job, poll to done, fetch records",
		Units:          "records",
		Setup: func(ctx context.Context, seed uint64) (func(), error) {
			mgr = service.New(service.Options{JobWorkers: 2})
			srv = httptest.NewServer(service.NewHandler(mgr))
			return func() {
				srv.Close()
				mgr.Shutdown(context.Background())
				mgr, srv = nil, nil
			}, nil
		},
		Run: func(ctx context.Context, seed uint64) (float64, error) {
			body := fmt.Sprintf(`{"scenario":"embedded-box","budget":"analytic","seed":%d}`, seed)
			resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				return 0, err
			}
			var jv struct {
				ID    string `json:"id"`
				State string `json:"state"`
			}
			err = json.NewDecoder(resp.Body).Decode(&jv)
			resp.Body.Close()
			if err != nil {
				return 0, err
			}
			for jv.State != "done" {
				if jv.State == "failed" || jv.State == "cancelled" {
					return 0, fmt.Errorf("job %s ended %s", jv.ID, jv.State)
				}
				r, err := http.Get(srv.URL + "/api/v1/jobs/" + jv.ID)
				if err != nil {
					return 0, err
				}
				err = json.NewDecoder(r.Body).Decode(&jv)
				r.Body.Close()
				if err != nil {
					return 0, err
				}
			}
			r, err := http.Get(srv.URL + "/api/v1/jobs/" + jv.ID + "/records")
			if err != nil {
				return 0, err
			}
			sc := bufio.NewScanner(r.Body)
			sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
			records := 0.0
			for sc.Scan() {
				if len(sc.Bytes()) > 0 {
					records++
				}
			}
			r.Body.Close()
			if err := sc.Err(); err != nil {
				return 0, err
			}
			if records == 0 {
				return 0, fmt.Errorf("job %s returned no records", jv.ID)
			}
			return records, nil
		},
	}
}
