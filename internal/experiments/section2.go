package experiments

import (
	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/linkbudget"
	"repro/internal/vna"
)

// Fig1 reproduces the pathloss-versus-distance study: the theoretical
// models (n = 2.000 freespace, n ~ 2.0454 parallel copper boards), the
// synthetic VNA measurements for both setups, and the freespace
// reference curves with antenna/array gains.
func Fig1(q Quality) string {
	a := vna.New(1)
	distances := []float64{0.02, 0.03, 0.05, 0.075, 0.1, 0.125, 0.15, 0.2}
	if q != Smoke {
		distances = []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.075, 0.09,
			0.1, 0.115, 0.125, 0.15, 0.175, 0.2}
	}

	free := a.PathlossSweep(vna.SweepConfig{
		Distances:          distances,
		PhaseCenterOffsetM: 0.008,
	})
	boards := a.PathlossSweep(vna.SweepConfig{
		Distances: distances,
		Copper:    true,
		Diagonal:  true,
	})
	pl := channel.NewFreespacePathloss(a.CentreHz(), 0.1)

	var t table
	t.title("Fig. 1 — pathloss vs distance, %s band (quality %s)", "220-245 GHz", q)
	t.row("fitted freespace model:     %s (R^2 %.5f)", free.Fit, free.R2)
	t.row("fitted copper-board model:  %s (R^2 %.5f)", boards.Fit, boards.R2)
	t.row("paper reference: n = 2.000 freespace, n = 2.0454 copper boards")
	t.blank()
	t.row("%8s %14s %14s %12s %12s %12s", "d [mm]",
		"meas.free[dB]", "meas.board[dB]", "FSPL[dB]", "+2x9.5dB", "+2x12dB")
	for i, d := range distances {
		fspl := pl.LossDB(d)
		t.row("%8.0f %14.2f %14.2f %12.2f %12.2f %12.2f",
			d*1e3,
			-free.Points[i].MeasuredGainDB,
			-boards.Points[i].MeasuredGainDB,
			fspl, fspl-19, fspl-24)
	}
	return t.String()
}

// impulseReport renders the delay profile of one measurement geometry.
func impulseReport(t *table, a *vna.Analyzer, sc channel.Scenario, label string) {
	ir := a.ImpulseResponse(a.MeasureS21(sc), dsp.Hann)
	t.row("%s: peak %.2f dB at %.3f ns; strongest echo %.1f dB below peak",
		label, ir.PeakDB(), ir.PeakDelayS()*1e9,
		-ir.WorstEchoRelativeDB(3/a.Bandwidth(), 2e-9))
	t.row("%10s %12s", "tau [ns]", "h [dB]")
	for i := 0; i < len(ir.TimeS); i += 2 { // every second bin keeps 2 ns compact
		if ir.TimeS[i] > 2e-9 {
			break
		}
		t.row("%10.3f %12.2f", ir.TimeS[i]*1e9, ir.MagDB[i])
	}
	t.blank()
}

// Fig2 reproduces the 50 mm (ahead link) impulse responses: freespace
// versus parallel copper boards. All echoes sit >= 15 dB below the line
// of sight.
func Fig2(q Quality) string {
	a := vna.New(2)
	var t table
	t.title("Fig. 2 — impulse response at 50 mm antenna distance (quality %s)", q)
	impulseReport(&t, a, channel.Scenario{
		LinkDistM: 0.05, TXGainDB: channel.HornGainDB, RXGainDB: channel.HornGainDB,
	}, "freespace")
	impulseReport(&t, a, channel.Scenario{
		LinkDistM: 0.05, CopperBoards: true,
		TXGainDB: channel.HornGainDB, RXGainDB: channel.HornGainDB,
	}, "parallel copper boards, shortest link")
	return t.String()
}

// Fig3 reproduces the 150 mm diagonal-link impulse responses.
func Fig3(q Quality) string {
	a := vna.New(3)
	var t table
	t.title("Fig. 3 — impulse response at 150 mm antenna distance, diagonal link (quality %s)", q)
	impulseReport(&t, a, channel.Scenario{
		LinkDistM: 0.15, TXGainDB: channel.HornGainDB, RXGainDB: channel.HornGainDB,
	}, "freespace")
	impulseReport(&t, a, channel.DiagonalScenario(0.15, 0.05, true),
		"parallel copper boards, diagonal link")
	return t.String()
}

// Table1 reproduces the link-budget parameter table.
func Table1(Quality) string {
	var t table
	t.title("Table I — link budget parameters for board-to-board communications")
	t.row("%s", linkbudget.TableI().String())
	b := linkbudget.TableI()
	t.row("thermal noise floor kTB: %.2f dBm; effective noise: %.2f dBm",
		b.NoiseFloorDBm(), b.EffectiveNoiseDBm())
	return t.String()
}

// Fig4 reproduces the required-transmit-power-versus-SNR curves for the
// shortest (100 mm), longest (300 mm) and Butler-served longest links.
func Fig4(q Quality) string {
	b := linkbudget.TableI()
	n := 8
	if q != Smoke {
		n = 36
	}
	pts := b.Fig4Curve(0, 35, n)
	var t table
	t.title("Fig. 4 — required transmit power for a target receiver SNR (quality %s)", q)
	t.row("%8s %16s %16s %24s", "SNR[dB]", "shortest[dBm]", "longest[dBm]", "longest+butler[dBm]")
	for _, p := range pts {
		t.row("%8.1f %16.2f %16.2f %24.2f", p.SNRdB, p.ShortestDBm, p.LongestDBm, p.LongestButlerDBm)
	}
	t.row("dual-polarised 100 Gbit/s needs SNR %.2f dB per polarisation (Shannon)", b.SNRFor100GbpsDB())
	return t.String()
}
