package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/perf"
)

// benchFixture writes a BENCH file with one workload at the given
// ns/op.
func benchFixture(t *testing.T, path string, nsPerOp float64) {
	t.Helper()
	f := perf.NewFile(perf.CIBudget(), perf.DefaultSeed)
	f.Workloads = []perf.Measurement{{
		Name: "fixture-workload", Units: "points", Iters: 3,
		WallNs: int64(3 * nsPerOp), NsPerOp: nsPerOp,
		UnitsPerOp: 8, UnitsPerSec: 8e9 / nsPerOp,
	}}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDiffExitCodes runs the built binary end to end: identical files
// exit 0, a doctored regression exits 1, garbage exits 2.
func TestDiffExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "perf-bin")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	base := filepath.Join(dir, "base.json")
	same := filepath.Join(dir, "same.json")
	slow := filepath.Join(dir, "slow.json")
	bad := filepath.Join(dir, "bad.json")
	benchFixture(t, base, 1000)
	benchFixture(t, same, 1000)
	benchFixture(t, slow, 1000*(1+perf.DefaultRegressFrac)*1.5)
	if err := os.WriteFile(bad, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		old, cur string
		wantCode int
	}{
		{"identical", base, same, 0},
		{"self", base, base, 0},
		{"regression", base, slow, 1},
		{"improvement", slow, base, 0},
		{"schema mismatch", base, bad, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, "diff", tc.old, tc.cur)
			out, err := cmd.CombinedOutput()
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				t.Fatal(err)
			}
			if code != tc.wantCode {
				t.Fatalf("exit = %d, want %d\n%s", code, tc.wantCode, out)
			}
		})
	}
}

// TestRunProducesDecodableFile measures a single cheap workload into a
// file and decodes it back.
func TestRunProducesDecodableFile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and measures a workload")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "perf-bin")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out := filepath.Join(dir, "bench.json")
	cmd := exec.Command(bin, "run", "-workloads", "noc-compiled-fig8", "-o", out)
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("run: %v\n%s", err, b)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bench, err := perf.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Workloads) != 1 || bench.Workloads[0].Name != "noc-compiled-fig8" {
		t.Fatalf("workloads = %+v", bench.Workloads)
	}
	if bench.Workloads[0].NsPerOp <= 0 || bench.Workloads[0].UnitsPerSec <= 0 {
		t.Fatalf("degenerate measurement: %+v", bench.Workloads[0])
	}
	// The file is valid JSON end to end (Encode appends a newline).
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatal(err)
	}
}
