// Package vna implements a synthetic vector network analyser that stands
// in for the R&S ZVA24 (with 220-245 GHz extension) used in the paper's
// board-to-board measurements (Sec. II-A).
//
// The instrument sweeps a frequency grid (4096 points across 220-245 GHz
// in the paper), is calibrated by a direct waveguide thru connection, and
// captures S21 of a channel.Scenario with a realistic noise floor and a
// systematic (pre-calibration) frequency response. Impulse responses are
// obtained by windowed inverse DFT, exactly as the paper derives Figs. 2-3
// from the frequency-domain data.
package vna

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/rng"
)

// Analyzer is a synthetic VNA. The zero value is not usable; construct
// with New.
type Analyzer struct {
	// StartHz, StopHz delimit the sweep band.
	StartHz, StopHz float64
	// Points is the number of frequency samples.
	Points int
	// NoiseFloorDB is the per-point measurement noise level relative to a
	// 0 dB thru (receiver dynamic range).
	NoiseFloorDB float64
	// Seed makes the synthetic measurement noise reproducible.
	Seed uint64

	calibrated bool
	// sysResponse models cables/waveguides before calibration: a smooth
	// complex ripple that a thru calibration removes.
	sysResponse []complex128
}

// New returns an analyser configured exactly as in the paper:
// 220-245 GHz, 4096 points, calibrated by a waveguide thru.
func New(seed uint64) *Analyzer {
	a := &Analyzer{
		StartHz:      220e9,
		StopHz:       245e9,
		Points:       4096,
		NoiseFloorDB: -95,
		Seed:         seed,
	}
	a.initSystematics()
	a.Calibrate()
	return a
}

// NewUncalibrated returns the same instrument before the thru calibration,
// for exercising the calibration path.
func NewUncalibrated(seed uint64) *Analyzer {
	a := New(seed)
	a.calibrated = false
	return a
}

// initSystematics builds the smooth systematic response of the test set.
func (a *Analyzer) initSystematics() {
	a.sysResponse = make([]complex128, a.Points)
	for i := range a.sysResponse {
		t := float64(i) / float64(a.Points-1)
		// A gentle 1.5 dB amplitude tilt plus a slow phase ripple, typical
		// of waveguide runs.
		ampDB := -0.75 + 1.5*t + 0.4*math.Sin(2*math.Pi*3*t)
		phase := 0.8*math.Sin(2*math.Pi*2*t) - 2*math.Pi*5*t
		amp := math.Pow(10, ampDB/20)
		a.sysResponse[i] = cmplx.Rect(amp, phase)
	}
}

// Frequencies returns the sweep grid.
func (a *Analyzer) Frequencies() []float64 {
	out := make([]float64, a.Points)
	for i := range out {
		out[i] = a.StartHz + (a.StopHz-a.StartHz)*float64(i)/float64(a.Points-1)
	}
	return out
}

// Bandwidth returns the swept bandwidth in Hz.
func (a *Analyzer) Bandwidth() float64 { return a.StopHz - a.StartHz }

// CentreHz returns the sweep centre frequency (232.5 GHz in the paper).
func (a *Analyzer) CentreHz() float64 { return 0.5 * (a.StartHz + a.StopHz) }

// Calibrate performs the thru calibration: the systematic response is
// measured on a direct waveguide connection and subsequently divided out
// of every measurement.
func (a *Analyzer) Calibrate() {
	a.calibrated = true
}

// Calibrated reports whether the thru calibration has been applied.
func (a *Analyzer) Calibrated() bool { return a.calibrated }

// MeasureThru measures a direct waveguide connection (ideal S21 = 1).
// After calibration this is flat at 0 dB up to the noise floor.
func (a *Analyzer) MeasureThru() []complex128 {
	return a.measure(func([]float64) []complex128 {
		out := make([]complex128, a.Points)
		for i := range out {
			out[i] = 1
		}
		return out
	})
}

// MeasureS21 captures the channel scenario on the sweep grid.
func (a *Analyzer) MeasureS21(sc channel.Scenario) []complex128 {
	return a.measure(func(freqs []float64) []complex128 {
		return sc.FrequencyResponse(freqs)
	})
}

func (a *Analyzer) measure(truth func([]float64) []complex128) []complex128 {
	freqs := a.Frequencies()
	h := truth(freqs)
	stream := rng.New(a.Seed)
	noiseAmp := math.Pow(10, a.NoiseFloorDB/20)
	out := make([]complex128, a.Points)
	for i := range out {
		raw := h[i] * a.sysResponse[i]
		raw += complex(stream.Norm()*noiseAmp/math.Sqrt2, stream.Norm()*noiseAmp/math.Sqrt2)
		if a.calibrated {
			raw /= a.sysResponse[i]
		}
		out[i] = raw
	}
	return out
}

// ImpulseResponse is a time-domain channel profile derived from a sweep.
type ImpulseResponse struct {
	// TimeS holds the delay axis in seconds (resolution 1/bandwidth).
	TimeS []float64
	// MagDB holds 20 log10 |h(tau)|, window coherent gain removed.
	MagDB []float64
}

// ImpulseResponse converts a measured S21 to the delay domain using the
// given window (the paper's Figs. 2-3 use exactly this windowed IDFT).
// It panics if the sweep length does not match the instrument.
func (a *Analyzer) ImpulseResponse(s21 []complex128, win dsp.Window) ImpulseResponse {
	if len(s21) != a.Points {
		panic(fmt.Sprintf("vna: sweep length %d does not match %d-point instrument", len(s21), a.Points))
	}
	windowed := win.Apply(s21)
	h := dsp.IFFT(windowed)
	gain := win.CoherentGain(a.Points)
	dt := 1 / a.Bandwidth()
	ir := ImpulseResponse{
		TimeS: make([]float64, a.Points),
		MagDB: make([]float64, a.Points),
	}
	const floor = 1e-30
	for i := range h {
		ir.TimeS[i] = float64(i) * dt
		m := cmplx.Abs(h[i]) / gain
		if m < floor {
			m = floor
		}
		ir.MagDB[i] = 20 * math.Log10(m)
	}
	return ir
}

// PeakDelayS returns the delay of the strongest tap.
func (ir ImpulseResponse) PeakDelayS() float64 {
	return ir.TimeS[dsp.ArgMax(ir.MagDB)]
}

// PeakDB returns the magnitude of the strongest tap in dB.
func (ir ImpulseResponse) PeakDB() float64 {
	return ir.MagDB[dsp.ArgMax(ir.MagDB)]
}

// WorstEchoRelativeDB returns the strongest tap outside a guard interval
// around the main peak, relative to the peak (negative when echoes are
// weaker). guardS is the absolute delay guard on each side of the peak;
// the search is limited to delays below maxDelayS to stay clear of the
// IDFT noise floor wrap-around.
func (ir ImpulseResponse) WorstEchoRelativeDB(guardS, maxDelayS float64) float64 {
	peakIdx := dsp.ArgMax(ir.MagDB)
	peakT := ir.TimeS[peakIdx]
	peakDB := ir.MagDB[peakIdx]
	worst := math.Inf(-1)
	for i, t := range ir.TimeS {
		if t > maxDelayS {
			break
		}
		if math.Abs(t-peakT) <= guardS {
			continue
		}
		if ir.MagDB[i] > worst {
			worst = ir.MagDB[i]
		}
	}
	return worst - peakDB
}
