package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// Record is the typed result of one evaluated design point. It replaces
// the string-only reports of the experiment layer: every field a
// downstream tool might plot, rank or filter is structured.
type Record struct {
	Scenario string          `json:"scenario"`
	Index    int             `json:"index"`
	Label    string          `json:"label"`
	Spec     core.SystemSpec `json:"spec"`
	// Err is set when the design pipeline rejected the point (for
	// example no topology sustains the injection rate); all result
	// fields are zero then.
	Err string `json:"err,omitempty"`

	// Link results.
	TxPowerDBm         float64 `json:"tx_power_dbm"`
	SpectralEfficiency float64 `json:"spectral_efficiency_bps_hz"`

	// Coding results.
	CodeLifting       int     `json:"code_lifting"`
	CodeWindow        int     `json:"code_window"`
	DecodeLatencyBits float64 `json:"decode_latency_bits"`

	// Intra-stack NoC results.
	Topology         string  `json:"topology"`
	NoCLatencyCycles float64 `json:"noc_latency_cycles"`
	NoCSaturation    float64 `json:"noc_saturation"`

	// Monte-Carlo results (present when the budget enables them;
	// BERCodewords / SimReplications report the spent budget).
	BEREbN0DB        float64 `json:"ber_ebn0_db,omitempty"`
	BER              float64 `json:"ber,omitempty"`
	BERCodewords     int     `json:"ber_codewords,omitempty"`
	SimLatencyCycles float64 `json:"sim_latency_cycles,omitempty"`
	SimLatencyCI95   float64 `json:"sim_latency_ci95,omitempty"`
	SimReplications  int     `json:"sim_replications,omitempty"`

	// Pareto marks membership of the front over (TxPowerDBm min,
	// DecodeLatencyBits min, NoCSaturation max).
	Pareto bool `json:"pareto"`
}

// WriteJSON emits the sweep result as indented JSON. Field order and
// float formatting are fixed, so equal results are byte-identical.
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// csvHeader fixes the CSV column order.
var csvHeader = []string{
	"scenario", "index", "label", "err",
	"boards", "nodes_per_board", "board_spacing_m", "link_rate_gbps",
	"latency_budget_bits", "stack_modules", "stack_injection_rate", "butler",
	"tx_power_dbm", "spectral_efficiency_bps_hz",
	"code_lifting", "code_window", "decode_latency_bits",
	"topology", "noc_latency_cycles", "noc_saturation",
	"ber_ebn0_db", "ber", "ber_codewords",
	"sim_latency_cycles", "sim_latency_ci95", "sim_replications",
	"pareto",
}

// WriteCSV emits the records as a CSV table with a fixed header.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range recs {
		row := []string{
			r.Scenario, strconv.Itoa(r.Index), r.Label, r.Err,
			strconv.Itoa(r.Spec.Boards), strconv.Itoa(r.Spec.NodesPerBoard),
			f(r.Spec.BoardSpacingM), f(r.Spec.LinkRateGbps),
			strconv.Itoa(r.Spec.LatencyBudgetBits), strconv.Itoa(r.Spec.StackModules),
			f(r.Spec.StackInjectionRate), strconv.FormatBool(r.Spec.Butler),
			f(r.TxPowerDBm), f(r.SpectralEfficiency),
			strconv.Itoa(r.CodeLifting), strconv.Itoa(r.CodeWindow), f(r.DecodeLatencyBits),
			r.Topology, f(r.NoCLatencyCycles), f(r.NoCSaturation),
			f(r.BEREbN0DB), f(r.BER), strconv.Itoa(r.BERCodewords),
			f(r.SimLatencyCycles), f(r.SimLatencyCI95), strconv.Itoa(r.SimReplications),
			strconv.FormatBool(r.Pareto),
		}
		if len(row) != len(csvHeader) {
			// A row that drifted from the header (a field added to one
			// but not the other) would silently skew every column after
			// the mismatch; fail the whole write instead.
			return fmt.Errorf("sweep: CSV row for record #%d has %d fields, header has %d", r.Index, len(row), len(csvHeader))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary renders a one-line digest of a record for terminal output.
func (r Record) Summary() string {
	if r.Err != "" {
		return fmt.Sprintf("#%-3d %-40s INFEASIBLE: %s", r.Index, r.Label, r.Err)
	}
	mark := " "
	if r.Pareto {
		mark = "*"
	}
	return fmt.Sprintf("#%-3d%s %-40s ptx %6.1f dBm  twd %4.0f bits  sat %.3f f/c/m (%s)",
		r.Index, mark, r.Label, r.TxPowerDBm, r.DecodeLatencyBits, r.NoCSaturation, r.Topology)
}
