//go:build amd64

#include "textflag.h"

// AVX2+FMA lockstep kernels for the batch LDPC decoder. Four float64
// lanes (one YMM register) are processed per step; the arithmetic
// replicates the exact operation sequence of the scalar path bit for
// bit: spCheckKernel/tanhHalf/atanh2 (fastmath.go, decoder.go), the
// avxfma path of Go's own archExp (math/exp_amd64.s), archLog
// (math/log_amd64.s) and the pure-Go math.Expm1 for |x| < 1. Every
// clamp is a compare+blend pair (ordered predicates), never MINPD /
// MAXPD, so NaN pass-through matches the scalar clamp; hard decisions
// and sign flips use strict ordered less-than compares, so -0.0 and
// NaN behave exactly as in the Go code.

// CONST4 defines a 4-lane replicated 32-byte constant. Values are
// spelled as bit patterns so the data section is bit-identical to the
// Go constants regardless of decimal parsing.
#define CONST4(name, val) \
	DATA name<>+0(SB)/8, val  \
	DATA name<>+8(SB)/8, val  \
	DATA name<>+16(SB)/8, val \
	DATA name<>+24(SB)/8, val \
	GLOBL name<>(SB), RODATA|NOPTR, $32

CONST4(cZERO, $0x0000000000000000)       // 0.0
CONST4(cONE, $0x3FF0000000000000)        // 1.0
CONST4(cTWO, $0x4000000000000000)        // 2.0
CONST4(cHALF, $0x3FE0000000000000)       // 0.5
CONST4(cTHREE, $0x4008000000000000)      // 3.0
CONST4(cSIX, $0x4018000000000000)        // 6.0
CONST4(cNEGQUARTER, $0xBFD0000000000000) // -0.25
CONST4(cNEGTWO, $0xC000000000000000)     // -2.0
CONST4(cNEGONE, $0xBFF0000000000000)     // -1.0
CONST4(c38, $0x4043000000000000)         // 38.0 (tanhHalf class bound)
CONST4(cNEG38, $0xC043000000000000)      // -38.0
CONST4(cQUARTER, $0x3FD0000000000000)    // 0.25 (atanh2 series bound)

CONST4(cABSMASK, $0x7FFFFFFFFFFFFFFF)
CONST4(cSIGNMASK, $0x8000000000000000)
CONST4(cINF, $0x7FF0000000000000)

CONST4(cSAT, $0x4028000000000000)       // satLLR = 12.0
CONST4(cEPS12, $0x3D719799812DEA11)     // 1e-12 zero-product threshold
CONST4(cCLAMPT, $0x3FEFFFFFFFFFDCD1)    // 0.999999999999
CONST4(cNEGCLAMPT, $0xBFEFFFFFFFFFDCD1) // -0.999999999999
CONST4(cLLRC, $0x403E000000000000)      // llrClamp = 30.0
CONST4(cNEGLLRC, $0xC03E000000000000)   // -30.0

// archExp (SLEEF avxfma path) constants.
CONST4(cLOG2E, $0x3FF71547652B82FE)
CONST4(cLN2U, $0x3FE62E42FEFA3000)
CONST4(cLN2L, $0x3D53DE6AF278ECE6)
CONST4(cEXPSC, $0x3FB0000000000000) // 0.0625
CONST4(cEC64, $0x3EFA01A01A01A01A)  // 1/40320
CONST4(cEC56, $0x3F2A01A01A01A01A)  // 1/5040
CONST4(cEC48, $0x3F56C16C16C16C17)  // 1/720
CONST4(cEC40, $0x3F81111111111111)  // 1/120
CONST4(cEC32, $0x3FA5555555555555)  // 1/24
CONST4(cEC24, $0x3FC5555555555555)  // 1/6
CONST4(cBIAS, $0x00000000000003FF)  // exponent bias (integer)

// math.Expm1 constants (|x| < 1 branches only).
CONST4(cLN2HALF, $0x3FD62E42FEFA39EF)
CONST4(cLN2HI, $0x3FE62E42FEE00000)
CONST4(cLN2LO, $0x3DEA39EF35793C76)
CONST4(cNEGLN2HI, $0xBFE62E42FEE00000)
CONST4(cNEGLN2LO, $0xBDEA39EF35793C76)
CONST4(cTINY, $0x3C90000000000000) // 2**-54
CONST4(cQ1, $0xBFA11111111110F4)
CONST4(cQ2, $0x3F5A01A019FE5585)
CONST4(cQ3, $0xBF14CE199EAADBB7)
CONST4(cQ4, $0x3ED0CFCA86E65239)
CONST4(cQ5, $0xBE8AFDB76E09C32D)

// atanh2 Maclaurin series coefficients 1/3 .. 1/17.
CONST4(cA3, $0x3FD5555555555555)
CONST4(cA5, $0x3FC999999999999A)
CONST4(cA7, $0x3FC2492492492492)
CONST4(cA9, $0x3FBC71C71C71C71C)
CONST4(cA11, $0x3FB745D1745D1746)
CONST4(cA13, $0x3FB3B13B13B13B14)
CONST4(cA15, $0x3FB1111111111111)
CONST4(cA17, $0x3FAE1E1E1E1E1E1E)

// archLog (fdlibm) constants.
CONST4(cHSQRT2, $0x3FE6A09E667F3BCD)
CONST4(cL1, $0x3FE5555555555593)
CONST4(cL2, $0x3FD999999997FA04)
CONST4(cL3, $0x3FD2492494229359)
CONST4(cL4, $0x3FCC71C51D8E78AF)
CONST4(cL5, $0x3FC7466496CB03DE)
CONST4(cL6, $0x3FC39A09D078C69F)
CONST4(cL7, $0x3FC2F112DF3E5244)
CONST4(cMANTMASK, $0x000FFFFFFFFFFFFF)
CONST4(cHALFBITS, $0x3FE0000000000000)
CONST4(cEXPMAGIC, $0x4330000000000000)     // 2**52 (integer bits)
CONST4(cEXPMAGICBIAS, $0x43300000000003FE) // 2**52 + 1022.0

// CLAMP30 clamps reg to [-30, 30] with NaN pass-through, using two
// temporaries. Both masks are computed from the pre-clamp value — they
// are mutually exclusive (lo < hi), so the result is identical to the
// scalar two-step clamp while halving the dependency chain.
#define CLAMP30(reg, t1, t2) \
	VCMPPD $1, cNEGLLRC<>(SB), reg, t1     \
	VCMPPD $14, cLLRC<>(SB), reg, t2       \
	VBLENDVPD t1, cNEGLLRC<>(SB), reg, reg \
	VBLENDVPD t2, cLLRC<>(SB), reg, reg

// MSEDGE computes the saturated min-sum output for one edge: v in Y0,
// min1/min2/sign in Y10/Y11/Y12, result in Y2 (clobbers Y3).
// Scalar: mag = (a==min1) ? min2 : min1; s = sign flipped if v < 0;
// out = clamp(s*mag, -30, 30).
#define MSEDGE() \
	VANDPD cABSMASK<>(SB), Y0, Y1     \
	VCMPPD $0, Y10, Y1, Y2            \
	VBLENDVPD Y2, Y11, Y10, Y2        \
	VCMPPD $1, cZERO<>(SB), Y0, Y3    \
	VANDPD cSIGNMASK<>(SB), Y3, Y3    \
	VXORPD Y12, Y3, Y3                \
	VMULPD Y2, Y3, Y2                 \
	CLAMP30(Y2, Y3, Y1)

// Frame slots for spCheckRange. The per-quad min/sign/saturation fold
// results live on the stack so that the two software-interleaved edge
// chains of passes A2 and B have the full register file to themselves.
#define SP_XSAVE_A 0
#define SP_XSAVE_B 32
#define SP_MSAT 64
#define SP_MIN1 96
#define SP_MIN2 128
#define SP_SGN 160
#define SP_MSER_A 192
#define SP_MSER_B 224
#define SP_SER_A 256
#define SP_SER_B 288
#define SP_FBQ 320

// DERIVE_CX computes CX = &varToChk[checkPtr[i]*stride] + q32, the
// byte address of the current check's first edge in the current quad.
#define DERIVE_CX() \
	MOVLQSX (R9)(R11*4), CX \
	IMULQ   BX, CX          \
	ADDQ    SI, CX          \
	ADDQ    R14, CX

// DEG loads the current check's degree into DX.
#define DEG() \
	MOVL 4(R9)(R11*4), DX \
	SUBL (R9)(R11*4), DX

// func spCheckRangeAVX2(checkPtr []int32, varToChk, tanh, chkToVar []float64,
//	width, stride int, activeVec []float64, fallback []uint64)
//
// Passes A2 (tanh) and B (atanh outputs) process TWO edges per loop
// iteration as independent software-interleaved chains: one edge's
// arithmetic is a single ~100-cycle dependency chain of ~80 uops, which
// fills the out-of-order scheduler and serializes consecutive
// iterations at IPC~1; pairing the chains in program order keeps both
// in flight and roughly doubles throughput. Chain A owns Y0-Y5 and
// addresses through CX, chain B owns Y7-Y12 and addresses through
// R12 = CX + strideB. Y13 holds the running tanh product, Y6/Y14/Y15
// hold quad invariants, and the A1 fold results are spilled to the
// frame slots above.
TEXT ·spCheckRangeAVX2(SB), NOSPLIT, $352-160
	MOVQ checkPtr_base+0(FP), R9
	MOVQ varToChk_base+24(FP), SI
	MOVQ tanh_base+48(FP), R8
	SUBQ SI, R8 // R8 = tanh - varToChk (index delta)
	MOVQ chkToVar_base+72(FP), DI
	SUBQ SI, DI // DI = chkToVar - varToChk
	MOVQ width+96(FP), R13
	SHLQ $3, R13 // width bytes
	MOVQ stride+104(FP), BX
	SHLQ $3, BX // stride bytes
	MOVQ fallback_base+136(FP), R10
	XORQ R11, R11 // check index i

spc_check_loop:
	CMPQ R11, fallback_len+144(FP)
	JGE  spc_done
	XORQ R15, R15 // fb accumulator
	// deg == 0: nothing to do
	DEG()
	TESTL DX, DX
	JZ   spc_check_next
	XORQ R14, R14 // quad byte offset q32

spc_quad_loop:
	// skip quads with no active lane
	MOVQ    activeVec_base+112(FP), AX
	VMOVUPD (AX)(R14*1), Y0
	VPTEST  Y0, Y0
	JZ      spc_quad_next

	// ---- pass A1: min1/min2/sign fold over the check's edges ----
	DEG()
	DERIVE_CX()
	VMOVUPD cINF<>(SB), Y10 // min1
	VMOVUPD cINF<>(SB), Y11 // min2
	VMOVUPD cONE<>(SB), Y12 // sign product (+-1.0)

spc_a1_loop:
	VMOVUPD (CX), Y0
	VANDPD  cABSMASK<>(SB), Y0, Y1 // a = |v|
	VCMPPD  $1, cZERO<>(SB), Y0, Y2
	VANDPD  cSIGNMASK<>(SB), Y2, Y2
	VXORPD  Y2, Y12, Y12           // sign flips where v < 0
	VCMPPD  $1, Y10, Y1, Y3        // m1 = a < min1
	VCMPPD  $1, Y11, Y1, Y4        // a < min2
	VANDNPD Y4, Y3, Y4             // m2 = (a < min2) & ~m1
	VBLENDVPD Y4, Y1, Y11, Y5      // m2 ? a : min2
	VBLENDVPD Y3, Y10, Y5, Y11     // min2 = m1 ? min1 : ^
	VBLENDVPD Y3, Y1, Y10, Y10     // min1 = m1 ? a : min1
	ADDQ BX, CX
	DECL DX
	JNZ  spc_a1_loop

	// spill the fold results; passes A2/B reread them from the frame
	VMOVUPD Y10, SP_MIN1(SP)
	VMOVUPD Y11, SP_MIN2(SP)
	VMOVUPD Y12, SP_SGN(SP)
	// m_sat = min1 >= satLLR, per lane
	VCMPPD  $13, cSAT<>(SB), Y10, Y14
	VMOVUPD Y14, SP_MSAT(SP)
	VMOVMSKPD Y14, AX
	CMPL    AX, $15
	JE      spc_b_sat // whole quad saturated: plain min-sum, no tanh

	// ---- pass A2: per-edge tanhHalf and product fold, edge pairs ----
	DEG()
	DERIVE_CX()
	LEAQ (CX)(BX*1), R12 // chain B edge pointer
	VMOVUPD cONE<>(SB), Y13 // prod
	SHRL $1, DX          // edge pairs
	JZ   spc_a2_tail_check

spc_a2_pair_loop:
	VMOVUPD (CX), Y0
	VMOVUPD Y0, SP_XSAVE_A(SP)
	VMOVUPD (R12), Y4
	VMOVUPD Y4, SP_XSAVE_B(SP)
	// mC = (x > -1) & (x < 1): the Expm1 branch of tanhHalf
	VCMPPD $14, cNEGONE<>(SB), Y0, Y8
	VCMPPD $1, cONE<>(SB), Y0, Y1
	VANDPD Y1, Y8, Y8
	VCMPPD $14, cNEGONE<>(SB), Y4, Y9
	VCMPPD $1, cONE<>(SB), Y4, Y5
	VANDPD Y5, Y9, Y9
	// default branch: e = archExp(x) (SLEEF avxfma sequence)
	VMULPD     cLOG2E<>(SB), Y0, Y1
	VMULPD     cLOG2E<>(SB), Y4, Y5
	VCVTPD2DQY Y1, X2                 // k = round-nearest(x*log2e)
	VCVTPD2DQY Y5, X6
	VCVTDQ2PD  X2, Y1
	VCVTDQ2PD  X6, Y5
	VFNMADD231PD cLN2U<>(SB), Y1, Y0  // x -= k*LN2U
	VFNMADD231PD cLN2U<>(SB), Y5, Y4
	VFNMADD231PD cLN2L<>(SB), Y1, Y0  // x -= k*LN2L
	VFNMADD231PD cLN2L<>(SB), Y5, Y4
	VMULPD     cEXPSC<>(SB), Y0, Y0   // r/16
	VMULPD     cEXPSC<>(SB), Y4, Y4
	VMOVUPD    cEC64<>(SB), Y3
	VMOVUPD    cEC64<>(SB), Y7
	VFMADD213PD cEC56<>(SB), Y0, Y3
	VFMADD213PD cEC56<>(SB), Y4, Y7
	VFMADD213PD cEC48<>(SB), Y0, Y3
	VFMADD213PD cEC48<>(SB), Y4, Y7
	VFMADD213PD cEC40<>(SB), Y0, Y3
	VFMADD213PD cEC40<>(SB), Y4, Y7
	VFMADD213PD cEC32<>(SB), Y0, Y3
	VFMADD213PD cEC32<>(SB), Y4, Y7
	VFMADD213PD cEC24<>(SB), Y0, Y3
	VFMADD213PD cEC24<>(SB), Y4, Y7
	VFMADD213PD cHALF<>(SB), Y0, Y3
	VFMADD213PD cHALF<>(SB), Y4, Y7
	VFMADD213PD cONE<>(SB), Y0, Y3
	VFMADD213PD cONE<>(SB), Y4, Y7
	VMULPD     Y3, Y0, Y0
	VMULPD     Y7, Y4, Y4
	VADDPD     cTWO<>(SB), Y0, Y3    // 4x (x*(x+2)) squaring steps
	VADDPD     cTWO<>(SB), Y4, Y7
	VMULPD     Y3, Y0, Y0
	VMULPD     Y7, Y4, Y4
	VADDPD     cTWO<>(SB), Y0, Y3
	VADDPD     cTWO<>(SB), Y4, Y7
	VMULPD     Y3, Y0, Y0
	VMULPD     Y7, Y4, Y4
	VADDPD     cTWO<>(SB), Y0, Y3
	VADDPD     cTWO<>(SB), Y4, Y7
	VMULPD     Y3, Y0, Y0
	VMULPD     Y7, Y4, Y4
	VADDPD     cTWO<>(SB), Y0, Y3
	VADDPD     cTWO<>(SB), Y4, Y7
	VFMADD213PD cONE<>(SB), Y3, Y0
	VFMADD213PD cONE<>(SB), Y7, Y4
	VPMOVSXDQ  X2, Y1                // ldexp: *= 2**k
	VPMOVSXDQ  X6, Y5
	VPADDQ     cBIAS<>(SB), Y1, Y1
	VPADDQ     cBIAS<>(SB), Y5, Y5
	VPSLLQ     $52, Y1, Y1
	VPSLLQ     $52, Y5, Y5
	VMULPD     Y1, Y0, Y0
	VMULPD     Y5, Y4, Y4
	// archExp returns x itself for NaN input
	VMOVUPD SP_XSAVE_A(SP), Y1
	VCMPPD  $3, Y1, Y1, Y2
	VBLENDVPD Y2, Y1, Y0, Y0
	VMOVUPD SP_XSAVE_B(SP), Y5
	VCMPPD  $3, Y5, Y5, Y6
	VBLENDVPD Y6, Y5, Y4, Y4
	// t = (e-1)/(e+1)
	VSUBPD cONE<>(SB), Y0, Y14
	VADDPD cONE<>(SB), Y0, Y2
	VDIVPD Y2, Y14, Y14
	VSUBPD cONE<>(SB), Y4, Y15
	VADDPD cONE<>(SB), Y4, Y6
	VDIVPD Y6, Y15, Y15
	// mid-range lanes: t = em/(em+2) with em = Expm1(x). Taken for
	// ~20% of quads; runs per chain behind its own branch (the block
	// is too large to pay for unconditionally).
	VMOVMSKPD Y8, AX
	TESTL AX, AX
	JZ    spc_a2p_skipa
	VMOVUPD SP_XSAVE_A(SP), Y0
	VCMPPD  $1, cZERO<>(SB), Y0, Y1   // m_neg = x < 0
	VANDPD  cABSMASK<>(SB), Y0, Y7    // absx
	VCMPPD  $14, cLN2HALF<>(SB), Y7, Y2 // m_red = absx > Ln2Half
	VCMPPD  $1, cTINY<>(SB), Y7, Y3   // m_tiny = absx < 2**-54
	VMOVUPD cLN2HI<>(SB), Y10
	VBLENDVPD Y1, cNEGLN2HI<>(SB), Y10, Y10
	VMOVUPD cLN2LO<>(SB), Y11
	VBLENDVPD Y1, cNEGLN2LO<>(SB), Y11, Y11
	VSUBPD  Y10, Y0, Y10              // hi = x - hiOff
	VSUBPD  Y11, Y10, Y4              // xr = hi - lo
	VSUBPD  Y4, Y10, Y10              // hi - xr
	VSUBPD  Y11, Y10, Y5              // c = (hi - xr) - lo
	VBLENDVPD Y2, Y4, Y0, Y4          // x_eff
	VMULPD  cHALF<>(SB), Y4, Y7       // hfx
	VMULPD  Y7, Y4, Y6                // hxs = x*hfx
	VMULPD  cQ5<>(SB), Y6, Y10        // r1 = 1 + hxs*(Q1+hxs*(..Q5))
	VADDPD  cQ4<>(SB), Y10, Y10
	VMULPD  Y10, Y6, Y10
	VADDPD  cQ3<>(SB), Y10, Y10
	VMULPD  Y10, Y6, Y10
	VADDPD  cQ2<>(SB), Y10, Y10
	VMULPD  Y10, Y6, Y10
	VADDPD  cQ1<>(SB), Y10, Y10
	VMULPD  Y10, Y6, Y10
	VADDPD  cONE<>(SB), Y10, Y10
	VMULPD  Y7, Y10, Y11              // r1*hfx
	VMOVUPD cTHREE<>(SB), Y7
	VSUBPD  Y11, Y7, Y11              // t = 3 - r1*hfx
	VSUBPD  Y11, Y10, Y10             // r1 - t
	VMULPD  Y11, Y4, Y7               // x*t
	VMOVUPD cSIX<>(SB), Y11
	VSUBPD  Y7, Y11, Y7               // 6 - x*t
	VDIVPD  Y7, Y10, Y10              // (r1-t)/(6-x*t)
	VMULPD  Y10, Y6, Y10              // e = hxs * ^
	VMULPD  Y10, Y4, Y11              // k=0: x - (x*e - hxs)
	VSUBPD  Y6, Y11, Y11
	VSUBPD  Y11, Y4, Y11
	VSUBPD  Y5, Y10, Y7               // e2 = (x*(e-c) - c) - hxs
	VMULPD  Y7, Y4, Y7
	VSUBPD  Y5, Y7, Y7
	VSUBPD  Y6, Y7, Y7
	VSUBPD  Y7, Y4, Y5                // k=-1: 0.5*(x-e2) - 0.5
	VMULPD  cHALF<>(SB), Y5, Y5
	VSUBPD  cHALF<>(SB), Y5, Y5
	VCMPPD  $1, cNEGQUARTER<>(SB), Y4, Y6 // k=1 sub-branch: x < -0.25
	VADDPD  cHALF<>(SB), Y4, Y10      // -2*(e2 - (x+0.5))
	VSUBPD  Y10, Y7, Y10
	VMULPD  cNEGTWO<>(SB), Y10, Y10
	VSUBPD  Y7, Y4, Y4                // 1 + 2*(x-e2)
	VMULPD  cTWO<>(SB), Y4, Y4
	VADDPD  cONE<>(SB), Y4, Y4
	VBLENDVPD Y6, Y10, Y4, Y4         // k=1 result
	VBLENDVPD Y1, Y5, Y4, Y4          // reduced result (k = +-1)
	VBLENDVPD Y2, Y4, Y11, Y11        // m_red ? reduced : k=0
	VBLENDVPD Y3, Y0, Y11, Y11        // m_tiny ? x : ^   -> em
	VADDPD  cTWO<>(SB), Y11, Y7       // em/(em+2)
	VDIVPD  Y7, Y11, Y11
	VBLENDVPD Y8, Y11, Y14, Y14       // mC lanes take the Expm1 form

spc_a2p_skipa:
	VMOVMSKPD Y9, AX
	TESTL AX, AX
	JZ    spc_a2p_skipb
	VMOVUPD SP_XSAVE_B(SP), Y0
	VCMPPD  $1, cZERO<>(SB), Y0, Y1
	VANDPD  cABSMASK<>(SB), Y0, Y7
	VCMPPD  $14, cLN2HALF<>(SB), Y7, Y2
	VCMPPD  $1, cTINY<>(SB), Y7, Y3
	VMOVUPD cLN2HI<>(SB), Y10
	VBLENDVPD Y1, cNEGLN2HI<>(SB), Y10, Y10
	VMOVUPD cLN2LO<>(SB), Y11
	VBLENDVPD Y1, cNEGLN2LO<>(SB), Y11, Y11
	VSUBPD  Y10, Y0, Y10
	VSUBPD  Y11, Y10, Y4
	VSUBPD  Y4, Y10, Y10
	VSUBPD  Y11, Y10, Y5
	VBLENDVPD Y2, Y4, Y0, Y4
	VMULPD  cHALF<>(SB), Y4, Y7
	VMULPD  Y7, Y4, Y6
	VMULPD  cQ5<>(SB), Y6, Y10
	VADDPD  cQ4<>(SB), Y10, Y10
	VMULPD  Y10, Y6, Y10
	VADDPD  cQ3<>(SB), Y10, Y10
	VMULPD  Y10, Y6, Y10
	VADDPD  cQ2<>(SB), Y10, Y10
	VMULPD  Y10, Y6, Y10
	VADDPD  cQ1<>(SB), Y10, Y10
	VMULPD  Y10, Y6, Y10
	VADDPD  cONE<>(SB), Y10, Y10
	VMULPD  Y7, Y10, Y11
	VMOVUPD cTHREE<>(SB), Y7
	VSUBPD  Y11, Y7, Y11
	VSUBPD  Y11, Y10, Y10
	VMULPD  Y11, Y4, Y7
	VMOVUPD cSIX<>(SB), Y11
	VSUBPD  Y7, Y11, Y7
	VDIVPD  Y7, Y10, Y10
	VMULPD  Y10, Y6, Y10
	VMULPD  Y10, Y4, Y11
	VSUBPD  Y6, Y11, Y11
	VSUBPD  Y11, Y4, Y11
	VSUBPD  Y5, Y10, Y7
	VMULPD  Y7, Y4, Y7
	VSUBPD  Y5, Y7, Y7
	VSUBPD  Y6, Y7, Y7
	VSUBPD  Y7, Y4, Y5
	VMULPD  cHALF<>(SB), Y5, Y5
	VSUBPD  cHALF<>(SB), Y5, Y5
	VCMPPD  $1, cNEGQUARTER<>(SB), Y4, Y6
	VADDPD  cHALF<>(SB), Y4, Y10
	VSUBPD  Y10, Y7, Y10
	VMULPD  cNEGTWO<>(SB), Y10, Y10
	VSUBPD  Y7, Y4, Y4
	VMULPD  cTWO<>(SB), Y4, Y4
	VADDPD  cONE<>(SB), Y4, Y4
	VBLENDVPD Y6, Y10, Y4, Y4
	VBLENDVPD Y1, Y5, Y4, Y4
	VBLENDVPD Y2, Y4, Y11, Y11
	VBLENDVPD Y3, Y0, Y11, Y11
	VADDPD  cTWO<>(SB), Y11, Y7
	VDIVPD  Y7, Y11, Y11
	VBLENDVPD Y9, Y11, Y15, Y15

spc_a2p_skipb:
	// outer classes: x > 38 -> 1, x < -38 -> -1
	VMOVUPD SP_XSAVE_A(SP), Y0
	VCMPPD  $1, cNEG38<>(SB), Y0, Y1
	VBLENDVPD Y1, cNEGONE<>(SB), Y14, Y14
	VCMPPD  $14, c38<>(SB), Y0, Y1
	VBLENDVPD Y1, cONE<>(SB), Y14, Y14
	VMOVUPD SP_XSAVE_B(SP), Y4
	VCMPPD  $1, cNEG38<>(SB), Y4, Y5
	VBLENDVPD Y5, cNEGONE<>(SB), Y15, Y15
	VCMPPD  $14, c38<>(SB), Y4, Y5
	VBLENDVPD Y5, cONE<>(SB), Y15, Y15
	VMOVUPD Y14, (CX)(R8*1)  // tanh rows
	VMOVUPD Y15, (R12)(R8*1)
	VMULPD  Y14, Y13, Y13    // prod *= tA, then *= tB (edge order)
	VMULPD  Y15, Y13, Y13
	LEAQ (CX)(BX*2), CX
	LEAQ (R12)(BX*2), R12
	DECL DX
	JNZ  spc_a2_pair_loop

spc_a2_tail_check:
	DEG()
	TESTL $1, DX
	JZ    spc_b_start
	// odd trailing edge: the scalar-shaped single-edge update (CX
	// already points at it after the pair loop)
	VMOVUPD (CX), Y0
	VMOVUPD Y0, SP_XSAVE_A(SP)
	VCMPPD $14, cNEGONE<>(SB), Y0, Y14
	VCMPPD $1, cONE<>(SB), Y0, Y1
	VANDPD Y1, Y14, Y14
	VMULPD     cLOG2E<>(SB), Y0, Y1
	VCVTPD2DQY Y1, X2
	VCVTDQ2PD  X2, Y1
	VFNMADD231PD cLN2U<>(SB), Y1, Y0
	VFNMADD231PD cLN2L<>(SB), Y1, Y0
	VMULPD     cEXPSC<>(SB), Y0, Y0
	VMOVUPD    cEC64<>(SB), Y3
	VFMADD213PD cEC56<>(SB), Y0, Y3
	VFMADD213PD cEC48<>(SB), Y0, Y3
	VFMADD213PD cEC40<>(SB), Y0, Y3
	VFMADD213PD cEC32<>(SB), Y0, Y3
	VFMADD213PD cEC24<>(SB), Y0, Y3
	VFMADD213PD cHALF<>(SB), Y0, Y3
	VFMADD213PD cONE<>(SB), Y0, Y3
	VMULPD     Y3, Y0, Y0
	VADDPD     cTWO<>(SB), Y0, Y3
	VMULPD     Y3, Y0, Y0
	VADDPD     cTWO<>(SB), Y0, Y3
	VMULPD     Y3, Y0, Y0
	VADDPD     cTWO<>(SB), Y0, Y3
	VMULPD     Y3, Y0, Y0
	VADDPD     cTWO<>(SB), Y0, Y3
	VFMADD213PD cONE<>(SB), Y3, Y0
	VPMOVSXDQ  X2, Y1
	VPADDQ     cBIAS<>(SB), Y1, Y1
	VPSLLQ     $52, Y1, Y1
	VMULPD     Y1, Y0, Y0
	VMOVUPD SP_XSAVE_A(SP), Y1
	VCMPPD  $3, Y1, Y1, Y2
	VBLENDVPD Y2, Y1, Y0, Y0
	VSUBPD cONE<>(SB), Y0, Y15
	VADDPD cONE<>(SB), Y0, Y2
	VDIVPD Y2, Y15, Y15
	VMOVMSKPD Y14, AX
	TESTL AX, AX
	JZ    spc_a2t_done
	VMOVUPD SP_XSAVE_A(SP), Y0
	VCMPPD  $1, cZERO<>(SB), Y0, Y1
	VANDPD  cABSMASK<>(SB), Y0, Y7
	VCMPPD  $14, cLN2HALF<>(SB), Y7, Y2
	VCMPPD  $1, cTINY<>(SB), Y7, Y3
	VMOVUPD cLN2HI<>(SB), Y8
	VBLENDVPD Y1, cNEGLN2HI<>(SB), Y8, Y8
	VMOVUPD cLN2LO<>(SB), Y9
	VBLENDVPD Y1, cNEGLN2LO<>(SB), Y9, Y9
	VSUBPD  Y8, Y0, Y8
	VSUBPD  Y9, Y8, Y4
	VSUBPD  Y4, Y8, Y8
	VSUBPD  Y9, Y8, Y5
	VBLENDVPD Y2, Y4, Y0, Y4
	VMULPD  cHALF<>(SB), Y4, Y7
	VMULPD  Y7, Y4, Y6
	VMULPD  cQ5<>(SB), Y6, Y8
	VADDPD  cQ4<>(SB), Y8, Y8
	VMULPD  Y8, Y6, Y8
	VADDPD  cQ3<>(SB), Y8, Y8
	VMULPD  Y8, Y6, Y8
	VADDPD  cQ2<>(SB), Y8, Y8
	VMULPD  Y8, Y6, Y8
	VADDPD  cQ1<>(SB), Y8, Y8
	VMULPD  Y8, Y6, Y8
	VADDPD  cONE<>(SB), Y8, Y8
	VMULPD  Y7, Y8, Y9
	VMOVUPD cTHREE<>(SB), Y7
	VSUBPD  Y9, Y7, Y9
	VSUBPD  Y9, Y8, Y8
	VMULPD  Y9, Y4, Y7
	VMOVUPD cSIX<>(SB), Y9
	VSUBPD  Y7, Y9, Y7
	VDIVPD  Y7, Y8, Y8
	VMULPD  Y8, Y6, Y8
	VMULPD  Y8, Y4, Y9
	VSUBPD  Y6, Y9, Y9
	VSUBPD  Y9, Y4, Y9
	VSUBPD  Y5, Y8, Y7
	VMULPD  Y7, Y4, Y7
	VSUBPD  Y5, Y7, Y7
	VSUBPD  Y6, Y7, Y7
	VSUBPD  Y7, Y4, Y5
	VMULPD  cHALF<>(SB), Y5, Y5
	VSUBPD  cHALF<>(SB), Y5, Y5
	VCMPPD  $1, cNEGQUARTER<>(SB), Y4, Y6
	VADDPD  cHALF<>(SB), Y4, Y8
	VSUBPD  Y8, Y7, Y8
	VMULPD  cNEGTWO<>(SB), Y8, Y8
	VSUBPD  Y7, Y4, Y4
	VMULPD  cTWO<>(SB), Y4, Y4
	VADDPD  cONE<>(SB), Y4, Y4
	VBLENDVPD Y6, Y8, Y4, Y4
	VBLENDVPD Y1, Y5, Y4, Y4
	VBLENDVPD Y2, Y4, Y9, Y9
	VBLENDVPD Y3, Y0, Y9, Y9
	VADDPD  cTWO<>(SB), Y9, Y7
	VDIVPD  Y7, Y9, Y9
	VBLENDVPD Y14, Y9, Y15, Y15

spc_a2t_done:
	VMOVUPD SP_XSAVE_A(SP), Y0
	VCMPPD  $1, cNEG38<>(SB), Y0, Y1
	VBLENDVPD Y1, cNEGONE<>(SB), Y15, Y15
	VCMPPD  $14, c38<>(SB), Y0, Y1
	VBLENDVPD Y1, cONE<>(SB), Y15, Y15
	VMOVUPD Y15, (CX)(R8*1)
	VMULPD  Y15, Y13, Y13

	// ---- pass B: per-edge outputs, branchless, edge pairs ----
	// Both atanh2 forms (Maclaurin series and log((1+x)/(1-x))) are
	// computed unconditionally and blended by m_ser: mixed quads
	// dominate, and removing the data-dependent branches keeps the
	// two chains schedulable.
spc_b_start:
	DEG()
	DERIVE_CX()
	LEAQ (CX)(BX*1), R12
	MOVQ $0, SP_FBQ(SP)
	VMOVUPD SP_MSAT(SP), Y14 // quad invariants kept in registers
	VMOVUPD SP_MIN1(SP), Y15
	SHRL $1, DX
	JZ   spc_b_tail_check

spc_b_pair_loop:
	// chain A, phase 1: t, other = prod/t, fb detect, clamp to +-~1
	VMOVUPD (CX)(R8*1), Y0            // t
	VDIVPD  Y0, Y13, Y1               // other = prod/t
	VANDPD  cABSMASK<>(SB), Y0, Y2
	VCMPPD  $10, cEPS12<>(SB), Y2, Y2 // !(|t| > 1e-12), NaN -> true
	VANDNPD Y2, Y14, Y2               // non-saturated lanes only
	VMOVMSKPD Y2, AX
	ORQ     AX, SP_FBQ(SP)
	VCMPPD  $1, cNEGCLAMPT<>(SB), Y1, Y2
	VCMPPD  $14, cCLAMPT<>(SB), Y1, Y3
	VBLENDVPD Y2, cNEGCLAMPT<>(SB), Y1, Y1
	VBLENDVPD Y3, cCLAMPT<>(SB), Y1, Y1
	// chain B, phase 1
	VMOVUPD (R12)(R8*1), Y7
	VDIVPD  Y7, Y13, Y8
	VANDPD  cABSMASK<>(SB), Y7, Y9
	VCMPPD  $10, cEPS12<>(SB), Y9, Y9
	VANDNPD Y9, Y14, Y9
	VMOVMSKPD Y9, AX
	ORQ     AX, SP_FBQ(SP)
	VCMPPD  $1, cNEGCLAMPT<>(SB), Y8, Y9
	VCMPPD  $14, cCLAMPT<>(SB), Y8, Y10
	VBLENDVPD Y9, cNEGCLAMPT<>(SB), Y8, Y8
	VBLENDVPD Y10, cCLAMPT<>(SB), Y8, Y8
	// chain A, phase 2: m_ser and the series form
	VANDPD  cABSMASK<>(SB), Y1, Y2
	VCMPPD  $1, cQUARTER<>(SB), Y2, Y2 // m_ser (NaN -> log path)
	VMOVUPD Y2, SP_MSER_A(SP)
	VMULPD  Y1, Y1, Y2                // x2
	VMULPD  cA17<>(SB), Y2, Y3
	VADDPD  cA15<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cA13<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cA11<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cA9<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cA7<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cA5<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cA3<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cONE<>(SB), Y3, Y3
	VMULPD  cTWO<>(SB), Y1, Y2        // 2x
	VMULPD  Y3, Y2, Y3                // series value
	VMOVUPD Y3, SP_SER_A(SP)
	// chain B, phase 2
	VANDPD  cABSMASK<>(SB), Y8, Y9
	VCMPPD  $1, cQUARTER<>(SB), Y9, Y9
	VMOVUPD Y9, SP_MSER_B(SP)
	VMULPD  Y8, Y8, Y9
	VMULPD  cA17<>(SB), Y9, Y10
	VADDPD  cA15<>(SB), Y10, Y10
	VMULPD  Y10, Y9, Y10
	VADDPD  cA13<>(SB), Y10, Y10
	VMULPD  Y10, Y9, Y10
	VADDPD  cA11<>(SB), Y10, Y10
	VMULPD  Y10, Y9, Y10
	VADDPD  cA9<>(SB), Y10, Y10
	VMULPD  Y10, Y9, Y10
	VADDPD  cA7<>(SB), Y10, Y10
	VMULPD  Y10, Y9, Y10
	VADDPD  cA5<>(SB), Y10, Y10
	VMULPD  Y10, Y9, Y10
	VADDPD  cA3<>(SB), Y10, Y10
	VMULPD  Y10, Y9, Y10
	VADDPD  cONE<>(SB), Y10, Y10
	VMULPD  cTWO<>(SB), Y8, Y9
	VMULPD  Y10, Y9, Y10
	VMOVUPD Y10, SP_SER_B(SP)
	// chain A, phase 3: arg = (1+x)/(1-x) and frexp
	VADDPD  cONE<>(SB), Y1, Y2
	VMOVUPD cONE<>(SB), Y3
	VSUBPD  Y1, Y3, Y3
	VDIVPD  Y3, Y2, Y2                // arg (Y2, kept live for NaN)
	VPAND   cMANTMASK<>(SB), Y2, Y3
	VPOR    cHALFBITS<>(SB), Y3, Y3   // f1
	VPSRLQ  $52, Y2, Y4
	VPOR    cEXPMAGIC<>(SB), Y4, Y4
	VSUBPD  cEXPMAGICBIAS<>(SB), Y4, Y4 // k
	VMOVUPD cHSQRT2<>(SB), Y5
	VCMPPD  $5, Y3, Y5, Y5            // !(HSqrt2 < f1)
	VANDPD  cONE<>(SB), Y5, Y5
	VSUBPD  Y5, Y4, Y4                // k -= adj
	VADDPD  cONE<>(SB), Y5, Y5
	VMULPD  Y5, Y3, Y3                // f1 *= 1 or 2
	VSUBPD  cONE<>(SB), Y3, Y3        // f
	// chain B, phase 3
	VADDPD  cONE<>(SB), Y8, Y9
	VMOVUPD cONE<>(SB), Y10
	VSUBPD  Y8, Y10, Y10
	VDIVPD  Y10, Y9, Y9               // arg
	VPAND   cMANTMASK<>(SB), Y9, Y10
	VPOR    cHALFBITS<>(SB), Y10, Y10
	VPSRLQ  $52, Y9, Y11
	VPOR    cEXPMAGIC<>(SB), Y11, Y11
	VSUBPD  cEXPMAGICBIAS<>(SB), Y11, Y11
	VMOVUPD cHSQRT2<>(SB), Y12
	VCMPPD  $5, Y10, Y12, Y12
	VANDPD  cONE<>(SB), Y12, Y12
	VSUBPD  Y12, Y11, Y11
	VADDPD  cONE<>(SB), Y12, Y12
	VMULPD  Y12, Y10, Y10
	VSUBPD  cONE<>(SB), Y10, Y10
	// chain A, phase 4: s = f/(2+f), log polynomial, combine
	// (f=Y3, k=Y4, arg=Y2 live; Y0/Y1/Y5 scratch)
	VADDPD  cTWO<>(SB), Y3, Y5
	VDIVPD  Y5, Y3, Y5                // s
	VMULPD  Y5, Y5, Y0                // s2
	VMULPD  Y0, Y0, Y1                // s4
	VMULPD  cL7<>(SB), Y1, Y6         // t1 = s2*(L1+s4*(L3+s4*(L5+s4*L7)))
	VADDPD  cL5<>(SB), Y6, Y6
	VMULPD  Y6, Y1, Y6
	VADDPD  cL3<>(SB), Y6, Y6
	VMULPD  Y6, Y1, Y6
	VADDPD  cL1<>(SB), Y6, Y6
	VMULPD  Y6, Y0, Y0
	VMULPD  cL6<>(SB), Y1, Y6         // t2 = s4*(L2+s4*(L4+s4*L6))
	VADDPD  cL4<>(SB), Y6, Y6
	VMULPD  Y6, Y1, Y6
	VADDPD  cL2<>(SB), Y6, Y6
	VMULPD  Y6, Y1, Y1
	VADDPD  Y1, Y0, Y0                // R = t1 + t2
	VMULPD  cHALF<>(SB), Y3, Y1       // hfsq
	VMULPD  Y3, Y1, Y1
	VADDPD  Y1, Y0, Y0                // hfsq + R
	VMULPD  Y0, Y5, Y5                // s*(hfsq+R)
	VMULPD  cLN2LO<>(SB), Y4, Y0
	VADDPD  Y0, Y5, Y5
	VSUBPD  Y5, Y1, Y1                // hfsq - ^
	VSUBPD  Y3, Y1, Y1                // ^ - f
	VMULPD  cLN2HI<>(SB), Y4, Y4
	VSUBPD  Y1, Y4, Y4                // log result
	VCMPPD  $3, Y2, Y2, Y1            // archLog returns arg for NaN
	VBLENDVPD Y1, Y2, Y4, Y4
	// chain B, phase 4
	VADDPD  cTWO<>(SB), Y10, Y12
	VDIVPD  Y12, Y10, Y12
	VMULPD  Y12, Y12, Y7
	VMULPD  Y7, Y7, Y8
	VMULPD  cL7<>(SB), Y8, Y6
	VADDPD  cL5<>(SB), Y6, Y6
	VMULPD  Y6, Y8, Y6
	VADDPD  cL3<>(SB), Y6, Y6
	VMULPD  Y6, Y8, Y6
	VADDPD  cL1<>(SB), Y6, Y6
	VMULPD  Y6, Y7, Y7
	VMULPD  cL6<>(SB), Y8, Y6
	VADDPD  cL4<>(SB), Y6, Y6
	VMULPD  Y6, Y8, Y6
	VADDPD  cL2<>(SB), Y6, Y6
	VMULPD  Y6, Y8, Y8
	VADDPD  Y8, Y7, Y7
	VMULPD  cHALF<>(SB), Y10, Y8
	VMULPD  Y10, Y8, Y8
	VADDPD  Y8, Y7, Y7
	VMULPD  Y7, Y12, Y12
	VMULPD  cLN2LO<>(SB), Y11, Y7
	VADDPD  Y7, Y12, Y12
	VSUBPD  Y12, Y8, Y8
	VSUBPD  Y10, Y8, Y8
	VMULPD  cLN2HI<>(SB), Y11, Y11
	VSUBPD  Y8, Y11, Y11              // log result
	VCMPPD  $3, Y9, Y9, Y8
	VBLENDVPD Y8, Y9, Y11, Y11
	// chain A, phase 5: blend series/log, clamp, saturated blend, store
	VMOVUPD SP_MSER_A(SP), Y1
	VBLENDVPD Y1, SP_SER_A(SP), Y4, Y4
	CLAMP30(Y4, Y1, Y2)
	VMOVUPD (CX), Y0                  // v for the min-sum form
	VANDPD  cABSMASK<>(SB), Y0, Y1
	VCMPPD  $0, Y15, Y1, Y2           // a == min1
	VBLENDVPD Y2, SP_MIN2(SP), Y15, Y2
	VCMPPD  $1, cZERO<>(SB), Y0, Y3
	VANDPD  cSIGNMASK<>(SB), Y3, Y3
	VXORPD  SP_SGN(SP), Y3, Y3
	VMULPD  Y2, Y3, Y2                // s*mag
	CLAMP30(Y2, Y3, Y5)
	VBLENDVPD Y14, Y2, Y4, Y4         // saturated lanes take min-sum
	VMOVUPD Y4, (CX)(DI*1)
	// chain B, phase 5
	VMOVUPD SP_MSER_B(SP), Y8
	VBLENDVPD Y8, SP_SER_B(SP), Y11, Y11
	CLAMP30(Y11, Y8, Y9)
	VMOVUPD (R12), Y7
	VANDPD  cABSMASK<>(SB), Y7, Y8
	VCMPPD  $0, Y15, Y8, Y9
	VBLENDVPD Y9, SP_MIN2(SP), Y15, Y9
	VCMPPD  $1, cZERO<>(SB), Y7, Y10
	VANDPD  cSIGNMASK<>(SB), Y10, Y10
	VXORPD  SP_SGN(SP), Y10, Y10
	VMULPD  Y9, Y10, Y9
	CLAMP30(Y9, Y10, Y12)
	VBLENDVPD Y14, Y9, Y11, Y11
	VMOVUPD Y11, (R12)(DI*1)
	LEAQ (CX)(BX*2), CX
	LEAQ (R12)(BX*2), R12
	DECL DX
	JNZ  spc_b_pair_loop

spc_b_tail_check:
	DEG()
	TESTL $1, DX
	JZ    spc_b_fold
	// odd trailing edge: chain A body once
	VMOVUPD (CX)(R8*1), Y0
	VDIVPD  Y0, Y13, Y1
	VANDPD  cABSMASK<>(SB), Y0, Y2
	VCMPPD  $10, cEPS12<>(SB), Y2, Y2
	VANDNPD Y2, Y14, Y2
	VMOVMSKPD Y2, AX
	ORQ     AX, SP_FBQ(SP)
	VCMPPD  $1, cNEGCLAMPT<>(SB), Y1, Y2
	VCMPPD  $14, cCLAMPT<>(SB), Y1, Y3
	VBLENDVPD Y2, cNEGCLAMPT<>(SB), Y1, Y1
	VBLENDVPD Y3, cCLAMPT<>(SB), Y1, Y1
	VANDPD  cABSMASK<>(SB), Y1, Y2
	VCMPPD  $1, cQUARTER<>(SB), Y2, Y2
	VMOVUPD Y2, SP_MSER_A(SP)
	VMULPD  Y1, Y1, Y2
	VMULPD  cA17<>(SB), Y2, Y3
	VADDPD  cA15<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cA13<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cA11<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cA9<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cA7<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cA5<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cA3<>(SB), Y3, Y3
	VMULPD  Y3, Y2, Y3
	VADDPD  cONE<>(SB), Y3, Y3
	VMULPD  cTWO<>(SB), Y1, Y2
	VMULPD  Y3, Y2, Y3
	VMOVUPD Y3, SP_SER_A(SP)
	VADDPD  cONE<>(SB), Y1, Y2
	VMOVUPD cONE<>(SB), Y3
	VSUBPD  Y1, Y3, Y3
	VDIVPD  Y3, Y2, Y2
	VPAND   cMANTMASK<>(SB), Y2, Y3
	VPOR    cHALFBITS<>(SB), Y3, Y3
	VPSRLQ  $52, Y2, Y4
	VPOR    cEXPMAGIC<>(SB), Y4, Y4
	VSUBPD  cEXPMAGICBIAS<>(SB), Y4, Y4
	VMOVUPD cHSQRT2<>(SB), Y5
	VCMPPD  $5, Y3, Y5, Y5
	VANDPD  cONE<>(SB), Y5, Y5
	VSUBPD  Y5, Y4, Y4
	VADDPD  cONE<>(SB), Y5, Y5
	VMULPD  Y5, Y3, Y3
	VSUBPD  cONE<>(SB), Y3, Y3
	VADDPD  cTWO<>(SB), Y3, Y5
	VDIVPD  Y5, Y3, Y5
	VMULPD  Y5, Y5, Y0
	VMULPD  Y0, Y0, Y1
	VMULPD  cL7<>(SB), Y1, Y6
	VADDPD  cL5<>(SB), Y6, Y6
	VMULPD  Y6, Y1, Y6
	VADDPD  cL3<>(SB), Y6, Y6
	VMULPD  Y6, Y1, Y6
	VADDPD  cL1<>(SB), Y6, Y6
	VMULPD  Y6, Y0, Y0
	VMULPD  cL6<>(SB), Y1, Y6
	VADDPD  cL4<>(SB), Y6, Y6
	VMULPD  Y6, Y1, Y6
	VADDPD  cL2<>(SB), Y6, Y6
	VMULPD  Y6, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMULPD  cHALF<>(SB), Y3, Y1
	VMULPD  Y3, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMULPD  Y0, Y5, Y5
	VMULPD  cLN2LO<>(SB), Y4, Y0
	VADDPD  Y0, Y5, Y5
	VSUBPD  Y5, Y1, Y1
	VSUBPD  Y3, Y1, Y1
	VMULPD  cLN2HI<>(SB), Y4, Y4
	VSUBPD  Y1, Y4, Y4
	VCMPPD  $3, Y2, Y2, Y1
	VBLENDVPD Y1, Y2, Y4, Y4
	VMOVUPD SP_MSER_A(SP), Y1
	VBLENDVPD Y1, SP_SER_A(SP), Y4, Y4
	CLAMP30(Y4, Y1, Y2)
	VMOVUPD (CX), Y0
	VANDPD  cABSMASK<>(SB), Y0, Y1
	VCMPPD  $0, Y15, Y1, Y2
	VBLENDVPD Y2, SP_MIN2(SP), Y15, Y2
	VCMPPD  $1, cZERO<>(SB), Y0, Y3
	VANDPD  cSIGNMASK<>(SB), Y3, Y3
	VXORPD  SP_SGN(SP), Y3, Y3
	VMULPD  Y2, Y3, Y2
	CLAMP30(Y2, Y3, Y5)
	VBLENDVPD Y14, Y2, Y4, Y4
	VMOVUPD Y4, (CX)(DI*1)

spc_b_fold:
	// fold this quad's fallback bits into the check's mask
	MOVQ SP_FBQ(SP), AX
	MOVQ R14, CX
	SHRQ $3, CX // bit base = lane base = q32/32*4
	SHLQ CX, AX
	ORQ  AX, R15
	JMP  spc_quad_next

	// all-saturated quad: min-sum only, no transcendentals
spc_b_sat:
	DEG()
	DERIVE_CX()

spc_b_sat_loop:
	VMOVUPD (CX), Y0
	MSEDGE()
	VMOVUPD Y2, (CX)(DI*1)
	ADDQ BX, CX
	DECL DX
	JNZ  spc_b_sat_loop

spc_quad_next:
	ADDQ $32, R14
	CMPQ R14, R13
	JL   spc_quad_loop

spc_check_next:
	MOVQ R15, (R10)(R11*8)
	INCQ R11
	JMP  spc_check_loop

spc_done:
	VZEROUPPER
	RET

// func varUpdRangeAVX2(varPtr []int32, varEdge []int32, chLLR, chkToVar,
//	varToChk, posterior []float64, width, stride int,
//	activeVec []float64, hardBits []uint64, active uint64)
TEXT ·varUpdRangeAVX2(SB), NOSPLIT, $0-216
	MOVQ varPtr_base+0(FP), R12
	MOVQ varEdge_base+24(FP), R10
	MOVQ chLLR_base+48(FP), R8
	MOVQ chkToVar_base+72(FP), SI
	MOVQ varToChk_base+96(FP), DI
	SUBQ SI, DI // DI = varToChk - chkToVar
	MOVQ posterior_base+120(FP), R9
	MOVQ width+144(FP), R13
	SHLQ $3, R13 // width bytes
	MOVQ stride+152(FP), BX
	SHLQ $3, BX // stride bytes
	XORQ R11, R11 // variable index v

vu_var_loop:
	CMPQ R11, hardBits_len+192(FP)
	JGE  vu_done
	XORQ R15, R15 // new hard bits for v
	XORQ R14, R14 // quad byte offset q32

vu_quad_loop:
	MOVQ    activeVec_base+160(FP), AX
	VMOVUPD (AX)(R14*1), Y1 // lane blend mask
	VPTEST  Y1, Y1
	JZ      vu_quad_next

	// sum = chLLR[v] + sum of chkToVar over the variable's edges
	MOVQ    R11, AX
	IMULQ   BX, AX
	ADDQ    R14, AX
	VMOVUPD (R8)(AX*1), Y0
	MOVLQSX (R12)(R11*4), CX  // varPtr[v]
	MOVLQSX 4(R12)(R11*4), DX // varPtr[v+1]
	CMPQ    CX, DX
	JGE     vu_sum_done

vu_sum_loop:
	MOVLQSX (R10)(CX*4), AX // edge id
	IMULQ   BX, AX
	ADDQ    R14, AX
	VADDPD  (SI)(AX*1), Y0, Y0
	INCQ    CX
	CMPQ    CX, DX
	JL      vu_sum_loop

vu_sum_done:
	// posterior: masked store (converged lanes keep frozen values)
	MOVQ    R11, AX
	IMULQ   BX, AX
	ADDQ    R14, AX
	VMOVUPD (R9)(AX*1), Y2
	VBLENDVPD Y1, Y0, Y2, Y2
	VMOVUPD Y2, (R9)(AX*1)
	// hard decision bits: sum < 0 (strict: -0 and NaN decide 0)
	VCMPPD  $1, cZERO<>(SB), Y0, Y2
	VMOVMSKPD Y2, AX
	MOVQ    R14, CX
	SHRQ    $3, CX
	SHLQ    CX, AX
	ORQ     AX, R15
	// extrinsic messages: varToChk[e] = clamp(sum - chkToVar[e])
	MOVLQSX (R12)(R11*4), CX
	MOVLQSX 4(R12)(R11*4), DX
	CMPQ    CX, DX
	JGE     vu_quad_next

vu_ext_loop:
	MOVLQSX (R10)(CX*4), AX
	IMULQ   BX, AX
	ADDQ    R14, AX
	VMOVUPD (SI)(AX*1), Y2
	VSUBPD  Y2, Y0, Y2
	CLAMP30(Y2, Y3, Y4)
	ADDQ    DI, AX
	VMOVUPD Y2, (SI)(AX*1)
	INCQ    CX
	CMPQ    CX, DX
	JL      vu_ext_loop

vu_quad_next:
	ADDQ $32, R14
	CMPQ R14, R13
	JL   vu_quad_loop

	// hardBits[v] = (old & ~active) | (new & active)
	MOVQ hardBits_base+184(FP), AX
	MOVQ active+208(FP), DX
	MOVQ (AX)(R11*8), CX
	NOTQ DX
	ANDQ DX, CX
	NOTQ DX
	ANDQ DX, R15
	ORQ  R15, CX
	MOVQ CX, (AX)(R11*8)
	INCQ R11
	JMP  vu_var_loop

vu_done:
	VZEROUPPER
	RET

// func cpuSupportsAVX2FMA() bool
TEXT ·cpuSupportsAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	// CX: bit 12 FMA, bit 27 OSXSAVE, bit 28 AVX
	MOVL CX, BX
	ANDL $(1<<12 | 1<<27 | 1<<28), BX
	CMPL BX, $(1<<12 | 1<<27 | 1<<28)
	JNE  cpu_no
	// XGETBV: OS must enable XMM (bit 1) and YMM (bit 2) state
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  cpu_no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	// BX bit 5: AVX2
	TESTL $(1<<5), BX
	JZ    cpu_no
	MOVB  $1, ret+0(FP)
	RET

cpu_no:
	MOVB $0, ret+0(FP)
	RET
