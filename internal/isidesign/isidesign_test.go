package isidesign

import (
	"math"
	"testing"

	"repro/internal/inforate"
	"repro/internal/modem"
)

func ask4() modem.Constellation { return modem.NewASK(4) }

// quickCfg keeps optimiser budgets small for unit tests.
func quickCfg() Config {
	return Config{Seed: 1, Sweeps: 3, SimSymbols: 1500}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.defaults()
	if cfg.OSF != 5 || cfg.SpanSymbols != 2 || cfg.SNRdB != 25 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.UniqueDepth != 3 {
		t.Errorf("unique depth = %d, want span+1 = 3", cfg.UniqueDepth)
	}
	if cfg.Constellation.Size() != 4 {
		t.Errorf("default constellation size = %d, want 4", cfg.Constellation.Size())
	}
}

func TestRectIsRect(t *testing.T) {
	if !Rect(5).IsRect() {
		t.Error("Rect(5) is not the rectangular pulse")
	}
}

func TestMarginOfRect(t *testing.T) {
	// Rect pulse: every sample is x/sqrt(5); the weakest symbol is the
	// inner level of 4-ASK, 1/sqrt(5) in amplitude.
	tr := inforate.NewTrellis(ask4(), Rect(5))
	want := modem.NewASK(4).Level(2) / math.Sqrt(5)
	if got := Margin(tr); math.Abs(got-want) > 1e-12 {
		t.Errorf("rect margin = %g, want %g", got, want)
	}
}

func TestRectNotUniquelyDetectable(t *testing.T) {
	// Without ISI all five signs are equal: the magnitudes +1 and +3
	// collide, so the rect pulse must fail the check.
	tr := inforate.NewTrellis(ask4(), Rect(5))
	if UniquelyDetectable(tr, 2) {
		t.Error("rect pulse reported uniquely detectable")
	}
}

func TestUniquelyDetectablePanics(t *testing.T) {
	tr := inforate.NewTrellis(ask4(), modem.NewRamp(5, 2))
	for name, fn := range map[string]func(){
		"depthBelowSpan": func() { UniquelyDetectable(tr, 1) },
		"patternTooWide": func() {
			wide := inforate.NewTrellis(ask4(), modem.NewRamp(32, 2))
			UniquelyDetectable(wide, 2)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSuboptimalDesignIsUnique(t *testing.T) {
	cfg := quickCfg()
	d := Suboptimal(cfg)
	tr := inforate.NewTrellis(ask4(), d.Pulse)
	if !UniquelyDetectable(tr, 3) {
		t.Fatal("suboptimal design lost unique detectability")
	}
	if Margin(tr) <= 0 {
		t.Error("suboptimal design has zero noise-free margin")
	}
	// Unique detection lets sequence estimation separate all magnitudes:
	// the rate must clear the 1 bpcu sign-only ceiling at the design SNR.
	if d.Rate < 1.2 {
		t.Errorf("suboptimal design rate = %.3f at 25 dB, want > 1.2", d.Rate)
	}
}

func TestSuboptimalDeterministic(t *testing.T) {
	a := Suboptimal(quickCfg())
	b := Suboptimal(quickCfg())
	ta, tb := a.Pulse.Taps(), b.Pulse.Taps()
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatal("suboptimal design not deterministic for a fixed seed")
		}
	}
}

func TestOptimizeSymbolwiseBeatsRect(t *testing.T) {
	cfg := quickCfg()
	d := OptimizeSymbolwise(cfg)
	tr := inforate.NewTrellis(ask4(), Rect(5))
	rectRate := inforate.SymbolwiseRate(tr, cfg.defaults().SNRdB)
	if d.Rate <= rectRate {
		t.Errorf("symbolwise-optimal %.3f not above rect %.3f", d.Rate, rectRate)
	}
	// The designed ISI must push the symbol-by-symbol rate past the
	// 1-bit sign ceiling.
	if d.Rate < 1.1 {
		t.Errorf("symbolwise-optimal rate %.3f, want > 1.1", d.Rate)
	}
}

func TestOptimizeSequenceOrdering(t *testing.T) {
	// The paper's Fig. 6 ordering at the design point, all evaluated
	// under sequence estimation: sequence-optimal >= suboptimal > rect.
	cfg := quickCfg()
	seq := OptimizeSequence(cfg)
	sub := Suboptimal(cfg)

	evalSeq := func(p modem.Pulse) float64 {
		return inforate.SequenceRate(inforate.NewTrellis(ask4(), p), 25, 10000, 77)
	}
	seqRate := evalSeq(seq.Pulse)
	subRate := evalSeq(sub.Pulse)
	rectRate := evalSeq(Rect(5))

	if seqRate < subRate-0.05 { // allow Monte-Carlo slack
		t.Errorf("sequence-optimal %.3f below suboptimal %.3f", seqRate, subRate)
	}
	if subRate <= rectRate {
		t.Errorf("suboptimal %.3f not above rect %.3f", subRate, rectRate)
	}
	if seqRate < 1.5 {
		t.Errorf("sequence-optimal rate %.3f at 25 dB, want > 1.5", seqRate)
	}
}

func TestSymbolwiseOptimalWinsUnderItsOwnReceiver(t *testing.T) {
	// Under symbol-by-symbol detection, the symbolwise-optimised filter
	// must beat the sequence-optimised one (which is free to create ISI
	// that only a sequence estimator untangles).
	cfg := quickCfg()
	sbs := OptimizeSymbolwise(cfg)
	seq := OptimizeSequence(cfg)
	rsbs := inforate.SymbolwiseRate(inforate.NewTrellis(ask4(), sbs.Pulse), 25)
	rseq := inforate.SymbolwiseRate(inforate.NewTrellis(ask4(), seq.Pulse), 25)
	if rsbs < rseq {
		t.Errorf("symbolwise-optimal %.3f below sequence-optimal %.3f under symbolwise detection", rsbs, rseq)
	}
}

func TestDesignStrategiesLabelled(t *testing.T) {
	cfg := quickCfg()
	if s := Suboptimal(cfg).Strategy; s != "suboptimal (unique detection)" {
		t.Errorf("suboptimal strategy label = %q", s)
	}
	if s := OptimizeSymbolwise(cfg).Strategy; s != "symbolwise-optimal" {
		t.Errorf("symbolwise strategy label = %q", s)
	}
	if s := OptimizeSequence(cfg).Strategy; s != "sequence-optimal" {
		t.Errorf("sequence strategy label = %q", s)
	}
}

func TestDesignedPulsesUnitEnergy(t *testing.T) {
	cfg := quickCfg()
	for _, d := range []Design{Suboptimal(cfg), OptimizeSymbolwise(cfg), OptimizeSequence(cfg)} {
		if e := d.Pulse.Energy(); math.Abs(e-1) > 1e-9 {
			t.Errorf("%s pulse energy = %g, want 1", d.Strategy, e)
		}
		if d.Pulse.OSF() != 5 || d.Pulse.SpanSymbols() != 2 {
			t.Errorf("%s pulse shape %dx%d, want 5x2", d.Strategy, d.Pulse.OSF(), d.Pulse.SpanSymbols())
		}
	}
}
