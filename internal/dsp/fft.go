// Package dsp provides the signal-processing kernels for the wireless
// interconnect library: complex FFTs of arbitrary length (radix-2 plus
// Bluestein's algorithm), window functions, convolution and pulse shapes.
//
// The VNA module uses the inverse FFT with windowing to turn synthetic
// 220-245 GHz frequency sweeps into impulse responses (paper Figs. 2-3);
// the modem uses the pulse shapes for the 1-bit oversampling study.
package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x:
//
//	X[k] = sum_n x[n] exp(-2*pi*i*k*n/N).
//
// Any length is supported: powers of two use an in-place radix-2
// Cooley-Tukey transform, other lengths use Bluestein's chirp-z algorithm.
// The input is not modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	out := append([]complex128(nil), x...)
	if n <= 1 {
		return out
	}
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse DFT of x with 1/N normalisation.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	out := append([]complex128(nil), x...)
	if n <= 1 {
		return out
	}
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	scale := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// fftRadix2 performs an in-place iterative radix-2 FFT. inverse selects
// the conjugated twiddles (without the 1/N scale).
func fftRadix2(a []complex128, inverse bool) {
	n := len(a)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := -2 * math.Pi / float64(size)
		if inverse {
			ang = -ang
		}
		wStep := cmplx.Exp(complex(0, ang))
		half := size / 2
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wStep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// reducing it to a power-of-two cyclic convolution.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w[k] = exp(sign*i*pi*k^2/n).
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		// Use int64 to avoid overflow of k*k mod 2n for large n.
		kk := int64(k) * int64(k) % int64(2*n)
		w[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	// Convolution length: next power of two >= 2n-1.
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	scale := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * w[k]
	}
	return out
}

// FFTReal transforms a real signal, returning the full complex spectrum.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	if n := len(c); n > 1 && n&(n-1) == 0 {
		fftRadix2(c, false)
		return c
	}
	return FFT(c)
}

// Magnitude returns |x| element-wise.
func Magnitude(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// MagnitudeDB returns 20*log10|x| element-wise, with a floor to keep the
// result finite for zero bins.
func MagnitudeDB(x []complex128) []float64 {
	const floor = 1e-30
	out := make([]float64, len(x))
	for i, v := range x {
		m := cmplx.Abs(v)
		if m < floor {
			m = floor
		}
		out[i] = 20 * math.Log10(m)
	}
	return out
}
