package search

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sweep"
)

// Objective is one axis of the multi-objective search: a named metric
// extracted from an evaluated record, minimised or maximised.
type Objective struct {
	Name     string
	Maximize bool
	Value    func(sweep.Record) float64
}

// cost returns the objective in canonical minimisation form: maximised
// metrics are negated, and NaN (a metric the budget never measured, or
// a degenerate model output) is +Inf so such points sit behind every
// finite one instead of poisoning comparisons — NaN would otherwise
// make domination checks answer false both ways.
func (o Objective) cost(rec sweep.Record) float64 {
	v := o.Value(rec)
	if math.IsNaN(v) {
		return math.Inf(1)
	}
	if o.Maximize {
		return -v
	}
	return v
}

// objectiveCatalog is the fixed set of selectable metrics. All are
// analytic-budget fields except ber, which is zero unless the budget
// runs the Monte-Carlo BER stage.
var objectiveCatalog = map[string]Objective{
	"tx-power":            {Name: "tx-power", Value: func(r sweep.Record) float64 { return r.TxPowerDBm }},
	"decode-latency":      {Name: "decode-latency", Value: func(r sweep.Record) float64 { return r.DecodeLatencyBits }},
	"noc-saturation":      {Name: "noc-saturation", Maximize: true, Value: func(r sweep.Record) float64 { return r.NoCSaturation }},
	"noc-latency":         {Name: "noc-latency", Value: func(r sweep.Record) float64 { return r.NoCLatencyCycles }},
	"spectral-efficiency": {Name: "spectral-efficiency", Maximize: true, Value: func(r sweep.Record) float64 { return r.SpectralEfficiency }},
	"ber":                 {Name: "ber", Value: func(r sweep.Record) float64 { return r.BER }},
}

// DefaultObjectives is the trio the grid engine's Pareto marking uses:
// minimise transmit power, minimise structural decode latency, maximise
// NoC saturation headroom.
func DefaultObjectives() []Objective {
	objs, err := ParseObjectives([]string{"tx-power", "decode-latency", "noc-saturation"})
	if err != nil {
		panic(err) // the defaults are in the catalog by construction
	}
	return objs
}

// ObjectiveNames lists the selectable objectives in sorted order.
func ObjectiveNames() []string {
	out := make([]string, 0, len(objectiveCatalog))
	for n := range objectiveCatalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseObjectives resolves objective names (empty or nil selects the
// defaults). At least two distinct objectives are required — a single
// axis is a scalar minimisation the Pareto machinery would degenerate
// on.
func ParseObjectives(names []string) ([]Objective, error) {
	if len(names) == 0 {
		names = []string{"tx-power", "decode-latency", "noc-saturation"}
	}
	out := make([]Objective, 0, len(names))
	seen := map[string]bool{}
	for _, n := range names {
		n = strings.ToLower(strings.TrimSpace(n))
		o, ok := objectiveCatalog[n]
		if !ok {
			return nil, fmt.Errorf("search: unknown objective %q (have %v)", n, ObjectiveNames())
		}
		if seen[n] {
			return nil, fmt.Errorf("search: objective %q selected twice", n)
		}
		seen[n] = true
		out = append(out, o)
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("search: need at least 2 objectives, got %d", len(out))
	}
	return out, nil
}

// objectiveNames renders the selection for results and job views.
func objectiveNames(objs []Objective) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.Name
	}
	return out
}
