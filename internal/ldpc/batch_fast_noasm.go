//go:build !amd64

package ldpc

// useBatchASM is false off amd64: the batch decoder runs its generic
// per-lane Go paths, which share the scalar kernels and are bit-exact
// with them by construction.
const useBatchASM = false

func spCheckRange(checkPtr []int32, varToChk, tanh, chkToVar []float64, width, stride int, activeVec []float64, fallback []uint64) {
	panic("ldpc: spCheckRange without asm support")
}

func varUpdRange(varPtr []int32, varEdge []int32, chLLR, chkToVar, varToChk, posterior []float64, width, stride int, activeVec []float64, hardBits []uint64, active uint64) {
	panic("ldpc: varUpdRange without asm support")
}
