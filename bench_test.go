// Package repro_test times the regeneration of every table and figure of
// the paper at smoke fidelity, plus the design-choice ablations listed
// in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark iteration regenerates the complete experiment; use
// cmd/wiboc with -quality standard|full for publication-fidelity runs.
package repro_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/search"
	"repro/internal/sweep"
)

func benchExperiment(b *testing.B, fn func(experiments.Quality) string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := fn(experiments.Smoke); len(out) == 0 {
			b.Fatal("experiment produced no output")
		}
	}
}

// BenchmarkTable1LinkBudget regenerates Table I.
func BenchmarkTable1LinkBudget(b *testing.B) { benchExperiment(b, experiments.Table1) }

// BenchmarkFig1PathlossSweep regenerates the pathloss-versus-distance
// study (models, synthetic measurements, reference curves).
func BenchmarkFig1PathlossSweep(b *testing.B) { benchExperiment(b, experiments.Fig1) }

// BenchmarkFig2ImpulseResponse regenerates the 50 mm impulse responses.
func BenchmarkFig2ImpulseResponse(b *testing.B) { benchExperiment(b, experiments.Fig2) }

// BenchmarkFig3ImpulseResponse regenerates the 150 mm diagonal-link
// impulse responses.
func BenchmarkFig3ImpulseResponse(b *testing.B) { benchExperiment(b, experiments.Fig3) }

// BenchmarkFig4RequiredTxPower regenerates the PTX-versus-SNR curves.
func BenchmarkFig4RequiredTxPower(b *testing.B) { benchExperiment(b, experiments.Fig4) }

// BenchmarkFig5FilterDesigns regenerates the four ISI filter designs.
func BenchmarkFig5FilterDesigns(b *testing.B) { benchExperiment(b, experiments.Fig5) }

// BenchmarkFig6InformationRates regenerates the information-rate-versus-
// SNR comparison of the six receivers.
func BenchmarkFig6InformationRates(b *testing.B) { benchExperiment(b, experiments.Fig6) }

// BenchmarkFig7TopologyMetrics regenerates the structural topology
// comparison.
func BenchmarkFig7TopologyMetrics(b *testing.B) { benchExperiment(b, experiments.Fig7) }

// BenchmarkFig8aLatency64 regenerates the 64-module latency curves.
func BenchmarkFig8aLatency64(b *testing.B) { benchExperiment(b, experiments.Fig8a) }

// BenchmarkFig8bLatency512 regenerates the 512-module scaling study.
func BenchmarkFig8bLatency512(b *testing.B) { benchExperiment(b, experiments.Fig8b) }

// BenchmarkFig10LatencyVsEbN0 regenerates the latency-performance
// trade-off of the LDPC-CC window decoder against the block-code
// baseline.
func BenchmarkFig10LatencyVsEbN0(b *testing.B) { benchExperiment(b, experiments.Fig10) }

// BenchmarkAblationOversampling sweeps the receiver oversampling factor
// against the paper's M = 5.
func BenchmarkAblationOversampling(b *testing.B) {
	benchExperiment(b, experiments.AblationOversampling)
}

// BenchmarkAblationServiceModel compares M/M/1 and M/D/1 waiting-time
// models against the event simulator.
func BenchmarkAblationServiceModel(b *testing.B) {
	benchExperiment(b, experiments.AblationServiceModel)
}

// BenchmarkAblationPillars evaluates TSV-pillar-constrained 3D meshes.
func BenchmarkAblationPillars(b *testing.B) { benchExperiment(b, experiments.AblationPillars) }

// BenchmarkAblationVerticalBandwidth evaluates heterogeneous 3D meshes
// with faster vertical links.
func BenchmarkAblationVerticalBandwidth(b *testing.B) {
	benchExperiment(b, experiments.AblationVerticalBandwidth)
}

// BenchmarkAblationDecoderAlgo compares the BP check-node rules
// (sum-product vs normalised min-sum) at a fixed BER target.
func BenchmarkAblationDecoderAlgo(b *testing.B) {
	benchExperiment(b, experiments.AblationDecoderAlgo)
}

// BenchmarkAblationBPSchedule compares flooding and layered message
// passing in the window decoder.
func BenchmarkAblationBPSchedule(b *testing.B) {
	benchExperiment(b, experiments.AblationBPSchedule)
}

// BenchmarkAblationWindowIterations sweeps the window decoder's
// iteration budget.
func BenchmarkAblationWindowIterations(b *testing.B) {
	benchExperiment(b, experiments.AblationWindowIterations)
}

// BenchmarkSystemDesign times the end-to-end core design pipeline.
func BenchmarkSystemDesign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.DesignSystem(core.DefaultSpec()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepPaperBaseline times an analytic-budget design-space
// sweep of the paper-baseline scenario, including Pareto extraction.
func BenchmarkSweepPaperBaseline(b *testing.B) {
	sc, err := sweep.Get("paper-baseline")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(context.Background(), sc,
			sweep.Config{Seed: 1, Budget: sweep.AnalyticBudget()})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ParetoIndices) == 0 {
			b.Fatal("empty Pareto front")
		}
	}
}

// BenchmarkPerfWorkloads times every workload of the performance
// baseline catalog (internal/perf) through the standard benchmark
// runner. The bodies are exactly what `cmd/perf run` measures into
// BENCH_<n>.json, so `go test -bench PerfWorkloads` and the perf CLI
// report the same code paths — the CLI for the committed trajectory
// and CI gate, this suite for benchstat-style local comparisons.
func BenchmarkPerfWorkloads(b *testing.B) {
	for _, w := range perf.Catalog() {
		b.Run(w.Name, func(b *testing.B) {
			ctx := context.Background()
			if w.Setup != nil {
				cleanup, err := w.Setup(ctx, perf.DefaultSeed)
				if err != nil {
					b.Fatal(err)
				}
				if cleanup != nil {
					defer cleanup()
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				units, err := w.Run(ctx, perf.DefaultSeed)
				if err != nil {
					b.Fatal(err)
				}
				if units <= 0 {
					b.Fatalf("workload %s reported no units", w.Name)
				}
			}
		})
	}
}

// BenchmarkOptimizePaperSpace times an analytic-budget NSGA-II
// optimization over the paper-baseline search space: 4 generations of
// 16 individuals, genetics plus evaluation plus final front
// extraction.
func BenchmarkOptimizePaperSpace(b *testing.B) {
	sp, err := search.Get("paper-baseline")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := search.Optimize(context.Background(), search.Options{
			Space:       sp,
			Seed:        1,
			Generations: 4,
			Population:  16,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.FrontIndices) == 0 {
			b.Fatal("empty final front")
		}
	}
}
