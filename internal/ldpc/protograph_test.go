package ldpc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegular48Protograph(t *testing.T) {
	b := Regular48()
	if b.NumChecks() != 1 || b.NumVars() != 2 {
		t.Fatalf("shape = %dx%d, want 1x2", b.NumChecks(), b.NumVars())
	}
	if d := b.VarDegrees(); d[0] != 4 || d[1] != 4 {
		t.Errorf("variable degrees = %v, want [4 4]", d)
	}
	if d := b.CheckDegrees(); d[0] != 8 {
		t.Errorf("check degree = %v, want [8]", d)
	}
	if r := b.Rate(); math.Abs(r-0.5) > 1e-15 {
		t.Errorf("rate = %g, want 0.5", r)
	}
}

func TestBaseMatrixPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":  func() { NewBaseMatrix(nil) },
		"ragged": func() { NewBaseMatrix([][]int{{1, 2}, {1}}) },
		"neg":    func() { NewBaseMatrix([][]int{{-1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPaperSpreadingSatisfiesEq2(t *testing.T) {
	s := PaperSpreading()
	if s.Memory() != 2 {
		t.Fatalf("mcc = %d, want 2", s.Memory())
	}
	// Eq. 2: sum of components must equal the (4,8) base matrix.
	if err := s.Validate(Regular48()); err != nil {
		t.Fatalf("paper spreading invalid: %v", err)
	}
}

func TestSpreadingValidationCatchesMismatch(t *testing.T) {
	s := EdgeSpreading{Components: []BaseMatrix{
		NewBaseMatrix([][]int{{2, 2}}),
		NewBaseMatrix([][]int{{1, 1}}),
	}}
	if err := s.Validate(Regular48()); err == nil {
		t.Error("short spreading accepted")
	}
	if err := s.Validate(NewBaseMatrix([][]int{{3, 3}})); err != nil {
		t.Errorf("valid spreading of [3 3] rejected: %v", err)
	}
}

func TestConvProtographShape(t *testing.T) {
	// Eq. 3: (L+mcc)*nc x L*nv.
	s := PaperSpreading()
	L := 5
	b := s.ConvProtograph(L)
	if b.NumChecks() != (L+2)*1 || b.NumVars() != L*2 {
		t.Fatalf("shape = %dx%d, want %dx%d", b.NumChecks(), b.NumVars(), L+2, 2*L)
	}
	// Column block t has B0 at row t, B1 at t+1, B2 at t+2.
	for tpos := 0; tpos < L; tpos++ {
		for i, comp := range s.Components {
			for v := 0; v < 2; v++ {
				if b[tpos+i][tpos*2+v] != comp[0][v] {
					t.Fatalf("component %d misplaced at position %d", i, tpos)
				}
			}
		}
	}
	// Every variable keeps full degree 4 thanks to termination checks.
	for v, d := range b.VarDegrees() {
		if d != 4 {
			t.Errorf("variable %d degree = %d, want 4", v, d)
		}
	}
}

func TestTerminatedRate(t *testing.T) {
	s := PaperSpreading()
	// (L*nv - (L+mcc)*nc)/(L*nv) = (2L - L - 2)/(2L) = (L-2)/(2L).
	for _, L := range []int{3, 10, 50, 1000} {
		want := float64(L-2) / float64(2*L)
		if got := s.TerminatedRate(L); math.Abs(got-want) > 1e-15 {
			t.Errorf("L=%d: rate %g, want %g", L, got, want)
		}
	}
	// Rate loss vanishes with L (Sec. V-A).
	if s.TerminatedRate(1000) < 0.49 {
		t.Error("termination rate loss does not vanish with L")
	}
}

func TestConvProtographPanicsOnBadL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("L=0 did not panic")
		}
	}()
	PaperSpreading().ConvProtograph(0)
}

// Property: any ConvProtograph of the paper spreading is (4,8)-regular in
// the variables and has the exact termination structure in the checks.
func TestPropertyConvProtographDegrees(t *testing.T) {
	s := PaperSpreading()
	f := func(raw uint8) bool {
		L := int(raw)%20 + 3
		b := s.ConvProtograph(L)
		for _, d := range b.VarDegrees() {
			if d != 4 {
				return false
			}
		}
		cd := b.CheckDegrees()
		// Interior checks have degree 8; the first two and last two rows
		// are degree-reduced by the termination.
		for r := 2; r < L; r++ {
			if cd[r] != 8 {
				return false
			}
		}
		return cd[0] == 4 && cd[1] == 6 && cd[L] == 4 && cd[L+1] == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
