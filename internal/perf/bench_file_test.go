package perf

import (
	"bytes"
	"strings"
	"testing"
)

func sampleFile() *File {
	f := NewFile(CIBudget(), DefaultSeed)
	f.GitCommit = "abc123"
	f.Workloads = []Measurement{
		{Name: "ldpc-decode-paper", Units: "codewords", Iters: 8, WallNs: 8_000_000,
			NsPerOp: 1_000_000, AllocsPerOp: 12, BytesPerOp: 4096, UnitsPerOp: 16, UnitsPerSec: 16000},
		{Name: "sweep-warm-store", Units: "points", Iters: 100, WallNs: 1_000_000,
			NsPerOp: 10_000, AllocsPerOp: 3, BytesPerOp: 512, UnitsPerOp: 8, UnitsPerSec: 800000},
	}
	return f
}

func TestBenchFileRoundTrip(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || got.EngineVersion != f.EngineVersion {
		t.Fatalf("versions drifted: %+v", got)
	}
	if got.GitCommit != "abc123" || got.Budget != "ci" || got.Seed != DefaultSeed {
		t.Fatalf("metadata drifted: %+v", got)
	}
	if len(got.Workloads) != 2 || got.Workloads[0] != f.Workloads[0] || got.Workloads[1] != f.Workloads[1] {
		t.Fatalf("workloads drifted: %+v", got.Workloads)
	}
}

func TestBenchFileStableKeyOrder(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFile().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The schema promises stable key order so baselines diff line by
	// line; pin the order of the header keys and the first workload keys.
	for _, pair := range [][2]string{
		{`"schema_version"`, `"engine_version"`},
		{`"engine_version"`, `"go_version"`},
		{`"budget"`, `"workloads"`},
		{`"name"`, `"units"`},
		{`"units"`, `"iters"`},
		{`"iters"`, `"wall_ns"`},
		{`"wall_ns"`, `"ns_per_op"`},
		{`"ns_per_op"`, `"allocs_per_op"`},
	} {
		a, b := strings.Index(out, pair[0]), strings.Index(out, pair[1])
		if a < 0 || b < 0 || a > b {
			t.Fatalf("key order violated: %s must precede %s in\n%s", pair[0], pair[1], out)
		}
	}
}

func TestDecodeToleratesUnknownFields(t *testing.T) {
	// A newer producer added fields this reader has never heard of; the
	// known fields must still land.
	in := `{
  "schema_version": 1,
  "engine_version": 2,
  "go_version": "go9.99",
  "goos": "linux",
  "goarch": "amd64",
  "budget": "ci",
  "seed": 1,
  "some_future_metadata": {"nested": true},
  "workloads": [
    {"name": "x", "units": "points", "ns_per_op": 5, "future_per_op": 9}
  ]
}`
	f, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Workloads) != 1 || f.Workloads[0].NsPerOp != 5 {
		t.Fatalf("known fields lost: %+v", f)
	}
}

func TestDecodeRejectsSchemaMismatch(t *testing.T) {
	for _, in := range []string{
		`{"schema_version": 2, "workloads": []}`,
		`{"workloads": []}`, // missing version decodes as 0
	} {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Fatalf("decoded %s without error, want schema rejection", in)
		} else if !strings.Contains(err.Error(), "schema version") {
			t.Fatalf("error %v does not mention the schema version", err)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("not json")); err == nil {
		t.Fatal("decoded garbage without error")
	}
}
