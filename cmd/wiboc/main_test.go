package main

import "testing"

// The CLI keeps three registries that must stay mutually consistent:
// the runner and ablation maps and the two ordered execution lists.

func TestOrderMatchesRunners(t *testing.T) {
	if len(order) != len(runners) {
		t.Errorf("order lists %d experiments, runners map has %d", len(order), len(runners))
	}
	seen := map[string]bool{}
	for _, name := range order {
		if seen[name] {
			t.Errorf("experiment %q ordered twice", name)
		}
		seen[name] = true
		if runners[name] == nil {
			t.Errorf("ordered experiment %q has no runner", name)
		}
	}
	for name := range runners {
		if !seen[name] {
			t.Errorf("runner %q missing from the 'all' order", name)
		}
	}
}

func TestAblationOrderMatchesAblations(t *testing.T) {
	if len(ablationOrder) != len(ablations) {
		t.Errorf("ablationOrder lists %d, ablations map has %d", len(ablationOrder), len(ablations))
	}
	seen := map[string]bool{}
	for _, name := range ablationOrder {
		if seen[name] {
			t.Errorf("ablation %q ordered twice", name)
		}
		seen[name] = true
		if ablations[name] == nil {
			t.Errorf("ordered ablation %q has no runner", name)
		}
	}
	for name := range ablations {
		if !seen[name] {
			t.Errorf("ablation %q missing from the ablation order", name)
		}
	}
}

func TestNoNameCollisionBetweenMaps(t *testing.T) {
	for name := range runners {
		if _, clash := ablations[name]; clash {
			t.Errorf("%q registered as both experiment and ablation", name)
		}
	}
}

func TestResolve(t *testing.T) {
	for _, name := range order {
		if fn, err := resolve(name); err != nil || fn == nil {
			t.Errorf("resolve(%q) = %v", name, err)
		}
	}
	for _, name := range ablationOrder {
		if fn, err := resolve(name); err != nil || fn == nil {
			t.Errorf("resolve(%q) = %v", name, err)
		}
	}
	if _, err := resolve("fig99"); err == nil {
		t.Error("unknown experiment resolved without error")
	}
}
