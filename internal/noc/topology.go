// Package noc models the 3D Network-in-Chip-Stack topologies of the
// paper's Sec. IV: 2D mesh, star-mesh (concentrated mesh), 3D mesh and
// ciliated 3D mesh (Fig. 7), with dimension-order routing and the traffic
// patterns used by the performance analysis (Fig. 8).
//
// A topology is a grid of routers; each router concentrates one or more
// modules (processing elements). Channels are directed router-to-router
// links; module injection/ejection ports are modelled separately by the
// analytic and simulation packages.
package noc

import (
	"fmt"
)

// Channel is a directed router-to-router link.
type Channel struct {
	From, To int
	// Vertical marks inter-layer (TSV / inductive / capacitive / wireless)
	// links, which future work expects to offer higher bandwidth than
	// in-plane wires.
	Vertical bool
}

// Mesh is a rectangular k-ary mesh in up to three dimensions with
// optional module concentration, covering all four topology types of
// Fig. 7.
type Mesh struct {
	name string
	// dims holds the router-grid extent per dimension (z = 1 for 2D).
	dims [3]int
	// concentration is the number of modules attached to each router.
	concentration int
	// verticalEvery places TSV pillars only at routers with
	// x%k == 0 && y%k == 0 (1 = every router; the paper's future-work
	// remark that TSV area may not allow a vertical link per router).
	verticalEvery int

	channels []Channel

	// Channel lookup by (router, move direction). Route steps always
	// move along exactly one dimension, so the id delta To-From of a
	// channel identifies its direction; moveDeltas holds the distinct
	// deltas that occur in this mesh (at most 6) and chanDir[r*6+slot]
	// the channel id leaving router r with that delta, or -1. This
	// replaces a map[[2]int]int whose hashing dominated route
	// compilation profiles.
	moveDeltas [6]int
	numDeltas  int
	chanDir    []int32
}

// NewMesh2D returns a w x h mesh with one module per router
// (the classical 2D mesh reference, e.g. 8x8 for 64 modules).
func NewMesh2D(w, h int) *Mesh {
	return newMesh(fmt.Sprintf("%dx%d 2D mesh", w, h), [3]int{w, h, 1}, 1, 1)
}

// NewStarMesh returns a w x h mesh with conc modules concentrated per
// router (the star-mesh / concentrated mesh of Fig. 7, e.g. 4x4 with 4).
func NewStarMesh(w, h, conc int) *Mesh {
	return newMesh(fmt.Sprintf("%dx%d star-mesh (c=%d)", w, h, conc), [3]int{w, h, 1}, conc, 1)
}

// NewMesh3D returns an x × y × z mesh with one module per router
// (the 3D mesh of Fig. 7, e.g. 4x4x4 for 64 modules).
func NewMesh3D(x, y, z int) *Mesh {
	return newMesh(fmt.Sprintf("%dx%dx%d 3D mesh", x, y, z), [3]int{x, y, z}, 1, 1)
}

// NewCiliated3D returns an x × y × z mesh with conc modules per router
// (the ciliated 3D mesh of Fig. 7: a star-mesh extended into the third
// dimension).
func NewCiliated3D(x, y, z, conc int) *Mesh {
	return newMesh(fmt.Sprintf("%dx%dx%d ciliated 3D mesh (c=%d)", x, y, z, conc), [3]int{x, y, z}, conc, 1)
}

// NewPillarMesh3D returns a 3D mesh where only routers at positions with
// x%every == 0 && y%every == 0 carry vertical links — the TSV-area
// constrained variant raised in the paper's outlook. every must be >= 1.
func NewPillarMesh3D(x, y, z, every int) *Mesh {
	return newMesh(fmt.Sprintf("%dx%dx%d 3D mesh (TSV pillars every %d)", x, y, z, every),
		[3]int{x, y, z}, 1, every)
}

func newMesh(name string, dims [3]int, conc, verticalEvery int) *Mesh {
	for i, d := range dims {
		if d < 1 {
			panic(fmt.Sprintf("noc: dimension %d extent %d < 1", i, d))
		}
	}
	if conc < 1 {
		panic(fmt.Sprintf("noc: concentration %d < 1", conc))
	}
	if verticalEvery < 1 {
		panic(fmt.Sprintf("noc: vertical pillar spacing %d < 1", verticalEvery))
	}
	m := &Mesh{
		name:          name,
		dims:          dims,
		concentration: conc,
		verticalEvery: verticalEvery,
	}
	addChan := func(a, b int, vertical bool) {
		m.channels = append(m.channels, Channel{From: a, To: b, Vertical: vertical})
	}
	for z := 0; z < dims[2]; z++ {
		for y := 0; y < dims[1]; y++ {
			for x := 0; x < dims[0]; x++ {
				r := m.RouterAt(x, y, z)
				if x+1 < dims[0] {
					addChan(r, m.RouterAt(x+1, y, z), false)
					addChan(m.RouterAt(x+1, y, z), r, false)
				}
				if y+1 < dims[1] {
					addChan(r, m.RouterAt(x, y+1, z), false)
					addChan(m.RouterAt(x, y+1, z), r, false)
				}
				if z+1 < dims[2] && m.hasPillar(x, y) {
					addChan(r, m.RouterAt(x, y, z+1), true)
					addChan(m.RouterAt(x, y, z+1), r, true)
				}
			}
		}
	}

	// Distinct move deltas never collide: dimensions collapsed to
	// extent 1 generate no channels, and the remaining deltas
	// (±1, ±dimX, ±dimX*dimY) differ whenever their moves exist.
	m.chanDir = make([]int32, m.NumRouters()*6)
	for i := range m.chanDir {
		m.chanDir[i] = -1
	}
	for id, c := range m.channels {
		d := c.To - c.From
		slot := -1
		for s := 0; s < m.numDeltas; s++ {
			if m.moveDeltas[s] == d {
				slot = s
				break
			}
		}
		if slot < 0 {
			slot = m.numDeltas
			m.moveDeltas[slot] = d
			m.numDeltas++
		}
		m.chanDir[c.From*6+slot] = int32(id)
	}
	return m
}

func (m *Mesh) hasPillar(x, y int) bool {
	return x%m.verticalEvery == 0 && y%m.verticalEvery == 0
}

// Name returns a human-readable topology label.
func (m *Mesh) Name() string { return m.name }

// Dims returns the router-grid extents.
func (m *Mesh) Dims() (x, y, z int) { return m.dims[0], m.dims[1], m.dims[2] }

// NumRouters returns the router count.
func (m *Mesh) NumRouters() int { return m.dims[0] * m.dims[1] * m.dims[2] }

// Concentration returns the modules per router.
func (m *Mesh) Concentration() int { return m.concentration }

// NumModules returns the total module (processing element) count.
func (m *Mesh) NumModules() int { return m.NumRouters() * m.concentration }

// NumChannels returns the number of directed router-to-router channels.
func (m *Mesh) NumChannels() int { return len(m.channels) }

// Channels returns the channel table; callers must not modify it.
func (m *Mesh) Channels() []Channel { return m.channels }

// RouterAt returns the router id of grid position (x, y, z).
func (m *Mesh) RouterAt(x, y, z int) int {
	return (z*m.dims[1]+y)*m.dims[0] + x
}

// Coords returns the grid position of a router id.
func (m *Mesh) Coords(router int) (x, y, z int) {
	x = router % m.dims[0]
	y = (router / m.dims[0]) % m.dims[1]
	z = router / (m.dims[0] * m.dims[1])
	return
}

// RouterOf returns the router a module attaches to.
func (m *Mesh) RouterOf(module int) int { return module / m.concentration }

// ChannelID returns the index of the directed channel a -> b, or -1 if
// the routers are not adjacent. A channel exists only for a
// single-dimension move, so the id delta picks the direction slot and
// the per-router table answers in a handful of integer compares.
func (m *Mesh) ChannelID(a, b int) int {
	if a < 0 || a >= m.NumRouters() || b < 0 || b >= m.NumRouters() {
		return -1
	}
	d := b - a
	for s := 0; s < m.numDeltas; s++ {
		if m.moveDeltas[s] == d {
			return int(m.chanDir[a*6+s])
		}
	}
	return -1
}
