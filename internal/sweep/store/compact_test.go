package store

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sweep"
)

// TestCompactDropsStaleAndShadowed exercises the full GC contract on a
// hand-built layout: a stale-engine entry, a key shadowed across two
// segments, a legacy entry with no engine stamp (kept), and a current
// entry. Compaction must keep exactly the servable set, reclaim the
// rest, and leave a store that reopens through the persisted index.
func TestCompactDropsStaleAndShadowed(t *testing.T) {
	dir := t.TempDir()
	keep, stale, shadowed, legacy := key(0), key(1), key(2), key(3)
	newer := testRecord(20)
	writeSegment(t, dir, 1, []entry{
		rawEntry(t, keep, sweep.EngineVersion, testRecord(0)),
		rawEntry(t, stale, sweep.EngineVersion-1, testRecord(1)),
		rawEntry(t, shadowed, sweep.EngineVersion, testRecord(2)), // superseded below
	})
	writeSegment(t, dir, 2, []entry{
		rawEntry(t, shadowed, sweep.EngineVersion, newer),
		rawEntry(t, legacy, 0, testRecord(3)), // pre-stamping line
	})

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept != 3 || res.DroppedStale != 1 || res.DroppedShadowed != 1 {
		t.Fatalf("kept %d stale %d shadowed %d, want 3/1/1",
			res.Kept, res.DroppedStale, res.DroppedShadowed)
	}
	if res.SegmentsBefore != 2 || res.SegmentsAfter != 1 {
		t.Fatalf("segments %d -> %d, want 2 -> 1", res.SegmentsBefore, res.SegmentsAfter)
	}
	if res.BytesAfter >= res.BytesBefore {
		t.Fatalf("compaction reclaimed nothing: %d -> %d bytes", res.BytesBefore, res.BytesAfter)
	}

	// The rewritten segment sits above every old sequence number and the
	// old segments are gone.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) != 1 || filepath.Base(segs[0]) != segName(3) {
		t.Fatalf("disk holds %v, want exactly %s", segs, segName(3))
	}

	// The live entries serve through the compacted store...
	if _, ok := s.Get(stale); ok {
		t.Fatal("stale-engine entry survived compaction")
	}
	for _, want := range []struct {
		key string
		rec sweep.Record
	}{{keep, testRecord(0)}, {shadowed, newer}, {legacy, testRecord(3)}} {
		got, ok := s.Get(want.key)
		if !ok || !reflect.DeepEqual(got, want.rec) {
			t.Fatalf("key %s lost or changed by compaction", want.key)
		}
	}
	// ...and the store stays appendable afterwards.
	s.Put(key(4), testRecord(4))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen maps the compacted layout through the persisted index.
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.IndexLoaded != 4 || st.Replayed != 0 {
		t.Fatalf("index-loaded %d replayed %d after compaction, want 4 and 0",
			st.IndexLoaded, st.Replayed)
	}
	if got, ok := r.Get(shadowed); !ok || !reflect.DeepEqual(got, newer) {
		t.Fatal("shadowed key lost its winning record across compact+reopen")
	}

	// A second pass over an already-compact store is a no-op reclaim.
	res2, err := r.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Kept != 4 || res2.DroppedStale != 0 || res2.DroppedShadowed != 0 {
		t.Fatalf("second pass kept %d stale %d shadowed %d, want 4/0/0",
			res2.Kept, res2.DroppedStale, res2.DroppedShadowed)
	}
}

// TestCompactEmptyStore: compacting nothing must not invent segments or
// errors.
func TestCompactEmptyStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept != 0 || res.SegmentsAfter != 0 {
		t.Fatalf("empty compact produced %+v", res)
	}
}

// TestCompactCrashSafe simulates a crash at every stage boundary of the
// swap via the compactFail failpoint, then verifies the invariant the
// design leans on: an Open of the directory at any crash instant serves
// exactly the live records, and a follow-up compaction completes the
// interrupted reclaim.
func TestCompactCrashSafe(t *testing.T) {
	for _, stage := range []string{"before-swap", "mid-swap", "before-delete", "mid-delete"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			staleKey := key(100)
			writeSegment(t, dir, 1, []entry{
				rawEntry(t, staleKey, sweep.EngineVersion-1, testRecord(100)),
			})
			// Small segments so the rewrite spans several files and the
			// mid-swap failpoint fires with a genuinely partial swap.
			s, err := OpenOptions(dir, Options{SegmentBytes: 600})
			if err != nil {
				t.Fatal(err)
			}
			const n = 16
			for i := 0; i < n; i++ {
				s.Put(key(i), testRecord(i))
			}
			s.compactFail = func(at string) error {
				if at == stage {
					return fmt.Errorf("injected crash at %s", at)
				}
				return nil
			}
			if _, err := s.Compact(); err == nil {
				t.Fatalf("failpoint %s did not surface", stage)
			}

			// The interrupted in-process store must keep serving every
			// live record.
			for i := 0; i < n; i++ {
				got, ok := s.Get(key(i))
				if !ok || !reflect.DeepEqual(got, testRecord(i)) {
					t.Fatalf("in-process store lost entry %d after %s abort", i, stage)
				}
			}

			// Crash-restart: a fresh Open of the directory, whatever state
			// the abort left it in, serves exactly the live set.
			r, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after %s abort: %v", stage, err)
			}
			for i := 0; i < n; i++ {
				got, ok := r.Get(key(i))
				if !ok || !reflect.DeepEqual(got, testRecord(i)) {
					t.Fatalf("entry %d lost after simulated crash at %s", i, stage)
				}
			}

			// A clean compaction finishes the reclaim: the stale entry is
			// gone from the index and from disk.
			res, err := r.Compact()
			if err != nil {
				t.Fatalf("recovery compaction after %s: %v", stage, err)
			}
			if res.Kept != n {
				t.Fatalf("recovery compaction kept %d, want %d", res.Kept, n)
			}
			if _, ok := r.Get(staleKey); ok {
				t.Fatalf("stale entry survived recovery compaction after %s", stage)
			}
			r.Put(key(n), testRecord(n))
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}

			r2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()
			if r2.Len() != n+1 {
				t.Fatalf("final Len = %d, want %d", r2.Len(), n+1)
			}
		})
	}
}
