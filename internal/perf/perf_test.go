package perf

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestMeasureCountsItersAndUnits(t *testing.T) {
	calls := 0
	w := Workload{
		Name:  "toy",
		Units: "widgets",
		Run: func(ctx context.Context, seed uint64) (float64, error) {
			calls++
			return 3, nil
		},
	}
	m, err := w.Measure(context.Background(), 1, Budget{Name: "t", MinTime: 0, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	// MinTime 0: the loop runs exactly one measured iteration (plus the
	// warmup).
	if m.Iters != 1 || calls != 2 {
		t.Fatalf("iters = %d, calls = %d, want 1 measured + 1 warmup", m.Iters, calls)
	}
	if m.UnitsPerOp != 3 {
		t.Fatalf("units/op = %v, want 3", m.UnitsPerOp)
	}
	if m.Name != "toy" || m.Units != "widgets" {
		t.Fatalf("identity lost: %+v", m)
	}
}

func TestMeasureHonoursMaxIters(t *testing.T) {
	w := Workload{
		Name:  "toy",
		Units: "widgets",
		Run:   func(ctx context.Context, seed uint64) (float64, error) { return 1, nil },
	}
	m, err := w.Measure(context.Background(), 1, Budget{Name: "t", MinTime: time.Hour, MaxIters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Iters != 4 {
		t.Fatalf("iters = %d, want MaxIters cap of 4", m.Iters)
	}
}

func TestMeasureSetupAndCleanup(t *testing.T) {
	var events []string
	w := Workload{
		Name:  "toy",
		Units: "widgets",
		Setup: func(ctx context.Context, seed uint64) (func(), error) {
			events = append(events, "setup")
			return func() { events = append(events, "cleanup") }, nil
		},
		Run: func(ctx context.Context, seed uint64) (float64, error) {
			events = append(events, "run")
			return 1, nil
		},
	}
	if _, err := w.Measure(context.Background(), 1, Budget{Name: "t", MaxIters: 1}); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 || events[0] != "setup" || events[len(events)-1] != "cleanup" {
		t.Fatalf("lifecycle order = %v", events)
	}
}

func TestMeasurePropagatesRunError(t *testing.T) {
	boom := errors.New("boom")
	w := Workload{
		Name:  "toy",
		Units: "widgets",
		Run:   func(ctx context.Context, seed uint64) (float64, error) { return 0, boom },
	}
	if _, err := w.Measure(context.Background(), 1, Budget{Name: "t", MaxIters: 1}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the run error", err)
	}
}

func TestCatalogComplete(t *testing.T) {
	want := []string{
		"ldpc-decode-paper",
		"metrics-overhead",
		"noc-compiled-fig8",
		"optimize-paper-space",
		"service-submit-poll",
		"store-reopen-cold",
		"store-shard-fanout",
		"sweep-analytic-cold",
		"sweep-warm-store",
		"tracing-overhead",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("catalog = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("catalog = %v, want %v (sorted)", got, want)
		}
	}
	for _, w := range Catalog() {
		if w.Description == "" || w.Units == "" {
			t.Fatalf("workload %s lacks description or units", w.Name)
		}
	}
}

// TestCatalogWorkloadsRun executes every catalog workload once at a
// minimal budget: the committed BENCH baseline can only cover the full
// catalog if each entry actually runs everywhere.
func TestCatalogWorkloadsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog execution is seconds-scale")
	}
	for _, w := range Catalog() {
		t.Run(w.Name, func(t *testing.T) {
			m, err := w.Measure(context.Background(), DefaultSeed, Budget{Name: "test", MaxIters: 1})
			if err != nil {
				t.Fatal(err)
			}
			if m.Iters != 1 || m.UnitsPerOp <= 0 || m.NsPerOp <= 0 {
				t.Fatalf("degenerate measurement: %+v", m)
			}
		})
	}
}

// TestWorkloadsDeterministic re-runs each stateless workload and
// checks the domain unit count is identical: the harness contract that
// a workload's work content is a pure function of (workload, seed).
func TestWorkloadsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog execution is seconds-scale")
	}
	for _, name := range []string{"ldpc-decode-paper", "noc-compiled-fig8", "sweep-analytic-cold", "optimize-paper-space"} {
		w, ok := Lookup(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		t.Run(name, func(t *testing.T) {
			a, err := w.Run(context.Background(), DefaultSeed)
			if err != nil {
				t.Fatal(err)
			}
			b, err := w.Run(context.Background(), DefaultSeed)
			if err != nil {
				t.Fatal(err)
			}
			if a != b || a <= 0 {
				t.Fatalf("unit count varies between runs: %v vs %v", a, b)
			}
		})
	}
}
