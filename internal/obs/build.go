package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: the toolchain that built it
// and the VCS revision it was built from. It feeds the daemon's
// build-info gauge and the /healthz payload, so an operator can tell
// at a glance which build answered.
type BuildInfo struct {
	GoVersion string
	Revision  string
	Dirty     bool
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build metadata. The revision is
// "unknown" for binaries built outside a VCS checkout (go test
// binaries, plain `go build` of an exported tree). The lookup is
// cached: debug.ReadBuildInfo re-parses the embedded build record on
// every call, and /healthz is polled.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{GoVersion: runtime.Version(), Revision: "unknown"}
		if info, ok := debug.ReadBuildInfo(); ok {
			for _, s := range info.Settings {
				switch s.Key {
				case "vcs.revision":
					buildInfo.Revision = s.Value
				case "vcs.modified":
					buildInfo.Dirty = s.Value == "true"
				}
			}
		}
	})
	return buildInfo
}
