package dsp

import "math"

// Window identifies a tapering window for spectral analysis.
type Window int

// Supported windows. Rectangular gives the sharpest main lobe; Hann and
// Hamming trade main-lobe width for sidelobe suppression, which matters
// when reading weak echoes next to the line-of-sight peak in the VNA
// impulse responses.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
)

// String implements fmt.Stringer.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window samples. n must be positive.
func (w Window) Coefficients(n int) []float64 {
	if n <= 0 {
		panic("dsp: window length must be positive")
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	den := float64(n - 1)
	for i := range out {
		t := float64(i) / den
		switch w {
		case Rectangular:
			out[i] = 1
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			panic("dsp: unknown window")
		}
	}
	return out
}

// Apply multiplies x element-wise by the window and returns a new slice.
func (w Window) Apply(x []complex128) []complex128 {
	coef := w.Coefficients(len(x))
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] * complex(coef[i], 0)
	}
	return out
}

// CoherentGain returns the window's mean coefficient, i.e. the amplitude
// scaling it applies to a coherent (DC-like) component. Dividing a
// windowed spectrum by this restores absolute levels.
func (w Window) CoherentGain(n int) float64 {
	coef := w.Coefficients(n)
	var sum float64
	for _, c := range coef {
		sum += c
	}
	return sum / float64(n)
}
