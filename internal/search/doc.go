// Package search turns the fixed-grid design-space sweeps into an
// adaptive multi-objective optimization: instead of enumerating a
// hand-written scenario grid, an NSGA-II-style evolutionary optimizer
// walks a declared parameter space (continuous, integer and boolean
// core.SystemSpec dimensions with bounds) and concentrates evaluations
// on the Pareto-optimal region between grid cells.
//
// The optimizer is built from the classic NSGA-II operators — fast
// non-dominated sorting, crowding-distance diversity preservation,
// binary crowded tournament selection, blend (BLX-alpha) crossover and
// bounded Gaussian mutation — implemented with deterministic tie-breaks
// throughout, so a run is a pure function of (space, objectives, seed,
// generations, population).
//
// Determinism contract (see ARCHITECTURE.md): every random decision
// draws from an rng.Split sub-stream that is a pure function of the
// root seed, the generation number and the individual index. Genome
// construction happens on the coordinating goroutine; evaluation fans
// out through sweep.EvaluatePoints, whose per-point sub-streams depend
// only on (seed, global point index). The result is byte-identical
// fronts for 1 worker, N goroutines, or a distributed worker fleet —
// and because every evaluated individual flows through the same
// sweep.PointKey content addressing as grid sweeps, a re-run against a
// warm result store evaluates zero new points.
//
// Spaces mirror the registered sweep scenarios (a ready-made Space per
// scenario varying the dimensions that scenario's grid enumerates) plus
// a wide "full-design" space over every SystemSpec knob at once.
// Objectives are picked by name from an extensible catalog; the default
// triple (tx-power, decode-latency, noc-saturation) matches the grid
// engine's Pareto marking.
package search
