package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format version this
// package writes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// exposition format: families sorted by name, series sorted by label
// values, histogram buckets cumulative with the implicit +Inf bound,
// each histogram followed by its _sum and _count samples. The output
// order is deterministic for a given set of series, so scrapes (and
// tests) can diff snapshots.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	r.mu.RLock()
	families := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		families = append(families, f)
	}
	funcs := make([]*gaugeFunc, 0, len(r.funcs))
	for _, gf := range r.funcs {
		funcs = append(funcs, gf)
	}
	r.mu.RUnlock()

	names := make([]string, 0, len(families)+len(funcs))
	byName := make(map[string]any, len(families)+len(funcs))
	for _, f := range families {
		names = append(names, f.name)
		byName[f.name] = f
	}
	for _, gf := range funcs {
		names = append(names, gf.name)
		byName[gf.name] = gf
	}
	sort.Strings(names)

	for _, name := range names {
		switch m := byName[name].(type) {
		case *family:
			writeFamily(bw, m)
		case *gaugeFunc:
			writeGaugeFunc(bw, m)
		}
	}
	return bw.Flush()
}

// Handler serves the registry at GET /metrics (or wherever it is
// mounted) in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

func writeFamily(w *bufio.Writer, f *family) {
	writeHeader(w, f.name, f.help, string(f.typ))
	for _, s := range f.sortedSeries() {
		switch f.typ {
		case typeHistogram:
			writeHistogramSeries(w, f, s)
		default:
			writeSample(w, f.name, f.labels, s.labelVals, "", "", math.Float64frombits(s.valBits.Load()))
		}
	}
}

func writeHistogramSeries(w *bufio.Writer, f *family, s *series) {
	var cum uint64
	for i, bound := range f.buckets {
		cum += s.buckets[i].Load()
		writeSample(w, f.name+"_bucket", f.labels, s.labelVals, "le", formatBound(bound), float64(cum))
	}
	cum += s.buckets[len(f.buckets)].Load()
	writeSample(w, f.name+"_bucket", f.labels, s.labelVals, "le", "+Inf", float64(cum))
	writeSample(w, f.name+"_sum", f.labels, s.labelVals, "", "", math.Float64frombits(s.sumBits.Load()))
	writeSample(w, f.name+"_count", f.labels, s.labelVals, "", "", float64(cum))
}

func writeGaugeFunc(w *bufio.Writer, gf *gaugeFunc) {
	writeHeader(w, gf.name, gf.help, string(typeGauge))
	// Collect into a slice first so the output can be sorted: callbacks
	// may emit in map order, and exposition promises determinism.
	type sample struct {
		vals []string
		v    float64
	}
	var samples []sample
	gf.collect(func(v float64, labelVals ...string) {
		if len(labelVals) != len(gf.labels) {
			// A miswired callback must not corrupt the whole exposition;
			// drop the sample.
			return
		}
		samples = append(samples, sample{vals: append([]string(nil), labelVals...), v: v})
	})
	sort.Slice(samples, func(i, j int) bool {
		a, b := samples[i].vals, samples[j].vals
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	for _, s := range samples {
		writeSample(w, gf.name, gf.labels, s.vals, "", "", s.v)
	}
}

func writeHeader(w *bufio.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// writeSample writes one exposition line. extraLabel/extraVal append a
// synthetic label (the histogram "le" bound) after the schema labels.
func writeSample(w *bufio.Writer, name string, labels, vals []string, extraLabel, extraVal string, v float64) {
	w.WriteString(name)
	if len(labels) > 0 || extraLabel != "" {
		w.WriteByte('{')
		first := true
		for i, l := range labels {
			if !first {
				w.WriteByte(',')
			}
			first = false
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(vals[i]))
			w.WriteByte('"')
		}
		if extraLabel != "" {
			if !first {
				w.WriteByte(',')
			}
			w.WriteString(extraLabel)
			w.WriteString(`="`)
			w.WriteString(extraVal)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// formatValue renders a sample value: shortest round-trip float, with
// the exposition spellings of the non-finite values.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatBound renders a histogram upper bound for the le label.
func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
