package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops", "kind")
	c.With("a").Inc()
	c.With("a").Add(2)
	c.With("b").Add(0.5)
	if got := c.With("a").Value(); got != 3 {
		t.Fatalf("counter a = %v, want 3", got)
	}
	if got := c.With("b").Value(); got != 0.5 {
		t.Fatalf("counter b = %v, want 0.5", got)
	}

	g := reg.Gauge("test_depth", "depth")
	g.With().Set(10)
	g.With().Dec()
	g.With().Add(-2)
	if got := g.With().Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}

	// Idempotent re-registration returns the same family.
	if reg.Counter("test_ops_total", "ops", "kind").With("a").Value() != 3 {
		t.Fatal("re-registered counter lost its series")
	}
}

func TestCounterPanicsOnDecrease(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter Add did not panic")
		}
	}()
	reg.Counter("test_total", "t").With().Add(-1)
}

func TestRegisterShapeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_total", "t", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	reg.Counter("test_total", "t", "b")
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_seconds", "latency", []float64{0.1, 1, 10}).With()
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.1 + 0.5 + 5 + 100; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	// Bucket placement: le=0.1 gets 0.05 and 0.1 (bounds are inclusive),
	// le=1 gets 0.5, le=10 gets 5, +Inf gets 100.
	counts := make([]uint64, 4)
	for i := range counts {
		counts[i] = h.s.buckets[i].Load()
	}
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "t", "w")
	h := reg.Histogram("test_seconds", "t", nil, "w")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%2))
			for i := 0; i < perWorker; i++ {
				c.With(label).Inc()
				h.With(label).Observe(0.001)
			}
		}(w)
	}
	wg.Wait()
	if got := c.With("a").Value() + c.With("b").Value(); got != workers*perWorker {
		t.Fatalf("concurrent counter total = %v, want %d", got, workers*perWorker)
	}
	if got := h.With("a").Count() + h.With("b").Count(); got != workers*perWorker {
		t.Fatalf("concurrent histogram total = %v, want %d", got, workers*perWorker)
	}
}

func TestNameValidation(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "0leading", "has space", "has-dash"} {
		func() {
			defer func() { recover() }()
			reg.Counter(bad, "t")
			t.Errorf("metric name %q accepted", bad)
		}()
	}
	if !validName("a_valid:name9") {
		t.Fatal("valid name rejected")
	}
}

func TestGaugeFuncCollect(t *testing.T) {
	reg := NewRegistry()
	n := 3.0
	reg.GaugeFunc("test_entries", "entries", []string{"shard"}, func(emit func(float64, ...string)) {
		emit(n, "0")
		emit(n*2, "1")
	})
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`test_entries{shard="0"} 3`, `test_entries{shard="1"} 6`} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The callback is live: a replaced registration and a changed value
	// both show up on the next scrape.
	n = 5
	reg.GaugeFunc("test_entries", "entries", []string{"shard"}, func(emit func(float64, ...string)) {
		emit(n, "0")
	})
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `test_entries{shard="0"} 5`) {
		t.Fatalf("replaced gauge func not collected:\n%s", sb.String())
	}
}
