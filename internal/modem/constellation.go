// Package modem provides the transmit-side signal model of the paper's
// Sec. III: M-ASK constellations, staircase transmit pulses spanning
// several symbol periods (the designed inter-symbol interference of
// Fig. 5), oversampled waveform synthesis and the 1-bit receiver
// quantiser.
//
// Conventions: constellations are normalised to unit average symbol
// energy and pulses to unit energy, so SNR = 1/sigma^2 where sigma is the
// per-sample noise standard deviation times sqrt(oversampling) — i.e. the
// matched-filter SNR a full-resolution receiver would see.
package modem

import (
	"fmt"
	"math"
)

// Constellation is a real amplitude-shift-keying symbol alphabet with
// unit average energy.
type Constellation struct {
	levels []float64
}

// NewASK returns the m-ASK constellation with equidistant levels
// {-(m-1), ..., -1, +1, ..., +(m-1)} scaled to unit average energy.
// m must be an even integer >= 2 (the paper uses 4-ASK).
func NewASK(m int) Constellation {
	if m < 2 || m%2 != 0 {
		panic(fmt.Sprintf("modem: ASK order must be even and >= 2, got %d", m))
	}
	levels := make([]float64, m)
	var energy float64
	for i := 0; i < m; i++ {
		levels[i] = float64(2*i - m + 1)
		energy += levels[i] * levels[i]
	}
	scale := 1 / math.Sqrt(energy/float64(m))
	for i := range levels {
		levels[i] *= scale
	}
	return Constellation{levels: levels}
}

// Size returns the alphabet size.
func (c Constellation) Size() int { return len(c.levels) }

// Level returns the amplitude of symbol index i (sorted ascending).
func (c Constellation) Level(i int) float64 { return c.levels[i] }

// Levels returns a copy of the amplitude alphabet.
func (c Constellation) Levels() []float64 {
	return append([]float64(nil), c.levels...)
}

// AvgEnergy returns the mean squared amplitude (1 by construction).
func (c Constellation) AvgEnergy() float64 {
	var e float64
	for _, l := range c.levels {
		e += l * l
	}
	return e / float64(len(c.levels))
}

// MinDistance returns the minimum distance between two levels.
func (c Constellation) MinDistance() float64 {
	min := math.Inf(1)
	for i := 1; i < len(c.levels); i++ {
		if d := c.levels[i] - c.levels[i-1]; d < min {
			min = d
		}
	}
	return min
}

// BitsPerSymbol returns log2 of the alphabet size.
func (c Constellation) BitsPerSymbol() float64 {
	return math.Log2(float64(len(c.levels)))
}
