package store

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/search"
	"repro/internal/sweep"
)

func TestShardedRoutingAndStats(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		s.Put(key(i), testRecord(i))
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	st := s.Stats()
	if st.Shards != 4 || st.Entries != n || st.Puts != n {
		t.Fatalf("aggregate stats = %+v", st)
	}
	per := s.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats returned %d shards", len(per))
	}
	sum, nonEmpty := 0, 0
	for _, sh := range per {
		sum += sh.Entries
		if sh.Entries > 0 {
			nonEmpty++
		}
	}
	if sum != n {
		t.Fatalf("per-shard entries sum to %d, want %d", sum, n)
	}
	if nonEmpty < 2 {
		t.Fatalf("sha-256 keys landed in %d shard(s); routing is not fanning out", nonEmpty)
	}
	for i := 0; i < n; i++ {
		got, ok := s.Get(key(i))
		if !ok || !reflect.DeepEqual(got, testRecord(i)) {
			t.Fatalf("entry %d lost through shard routing", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The manifest pins the shard count: n == 0 rediscovers it, a
	// conflicting count is refused.
	r, err := OpenSharded(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards() != 4 {
		t.Fatalf("manifest reopened as %d shards, want 4", r.Shards())
	}
	if st := r.Stats(); st.IndexLoaded != n || st.Replayed != 0 {
		t.Fatalf("sharded reopen index-loaded %d replayed %d, want %d and 0",
			st.IndexLoaded, st.Replayed, n)
	}
	for i := 0; i < n; i++ {
		if _, ok := r.Get(key(i)); !ok {
			t.Fatalf("entry %d lost across sharded reopen", i)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir, 2, Options{}); err == nil {
		t.Fatal("conflicting shard count was accepted")
	}
	if _, err := OpenSharded(dir, 4, Options{}); err != nil {
		t.Fatalf("matching shard count refused: %v", err)
	}
}

// TestShardedSingleShardCompat pins the migration story: a 1-shard
// store is byte-compatible with a plain Store directory — no manifest,
// no shard subdirectories — in both directions.
func TestShardedSingleShardCompat(t *testing.T) {
	dir := t.TempDir()
	plain, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	plain.Put(key(0), testRecord(0))
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenSharded(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 1 {
		t.Fatalf("plain store reopened as %d shards", s.Shards())
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("plain store's entry invisible through Sharded")
	}
	s.Put(key(1), testRecord(1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestFileName)); !os.IsNotExist(err) {
		t.Fatal("1-shard store grew a manifest; layout is no longer byte-compatible")
	}
	if dirs, _ := filepath.Glob(filepath.Join(dir, "shard-*")); len(dirs) != 0 {
		t.Fatalf("1-shard store grew shard directories: %v", dirs)
	}

	// ...and the plain Store reads the Sharded writes back.
	back, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Len() != 2 {
		t.Fatalf("plain reopen Len = %d, want 2", back.Len())
	}

	// Layering shards over an existing single-shard store would hide its
	// segments from routed lookups; it must be refused.
	if _, err := OpenSharded(dir, 4, Options{}); err == nil {
		t.Fatal("sharding over an existing single-shard store was accepted")
	}
}

func TestShardedRejectsBadManifest(t *testing.T) {
	for name, body := range map[string]string{
		"wrong-version": `{"version": 99, "shards": 4}`,
		"zero-shards":   `{"version": 1, "shards": 0}`,
		"over-max":      `{"version": 1, "shards": 100000}`,
		"not-json":      `{nope`,
	} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, manifestFileName), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSharded(dir, 0, Options{}); err == nil {
			t.Fatalf("%s manifest was accepted", name)
		}
	}
}

func TestShardedConcurrent(t *testing.T) {
	s, err := OpenSharded(t.TempDir(), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Put(key(i), testRecord(i))
				s.Get(key((i + w) % 50))
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 50 {
		t.Fatalf("Len = %d, want 50", s.Len())
	}
}

func TestShardedCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	for i := 0; i < n; i++ {
		s.Put(key(i), testRecord(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a stale-engine entry inside one shard; the sharded Compact
	// must reclaim it while keeping every live record.
	writeSegment(t, shardDir(dir, 0), 99, []entry{
		rawEntry(t, key(1000), sweep.EngineVersion-1, testRecord(1000)),
	})

	r, err := OpenSharded(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept != n || res.DroppedStale != 1 {
		t.Fatalf("sharded compact kept %d stale %d, want %d and 1", res.Kept, res.DroppedStale, n)
	}
	for i := 0; i < n; i++ {
		if _, ok := r.Get(key(i)); !ok {
			t.Fatalf("entry %d lost by sharded compaction", i)
		}
	}
}

// TestShardedLifecycleByteIdentical is the tentpole acceptance test:
// a full sweep and a full optimizer run produce byte-identical records
// whether the store behind them is 1-shard or 4-shard, and the warm
// rerun against each layout computes zero points.
func TestShardedLifecycleByteIdentical(t *testing.T) {
	sc, err := sweep.Get("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := search.Get("butler-vs-steered")
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		sweepJSON, frontJSON []byte
		warmComputed         int
	}
	lifecycle := func(shards int) outcome {
		dir := t.TempDir()
		run := func() (sweepJSON, frontJSON []byte, computed int) {
			st, err := OpenSharded(dir, shards, Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sweep.Run(context.Background(), sc,
				sweep.Config{Seed: 7, Budget: sweep.AnalyticBudget(), Cache: st})
			if err != nil {
				t.Fatal(err)
			}
			opt, err := search.Optimize(context.Background(), search.Options{
				Space: sp, Seed: 11, Generations: 3, Population: 8, Cache: st,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			sj, err := json.Marshal(res.Records)
			if err != nil {
				t.Fatal(err)
			}
			fj, err := json.Marshal(opt.Front())
			if err != nil {
				t.Fatal(err)
			}
			return sj, fj, res.ComputedPoints + opt.ComputedPoints
		}
		sj, fj, _ := run()
		wsj, wfj, warmComputed := run()
		if !reflect.DeepEqual(sj, wsj) || !reflect.DeepEqual(fj, wfj) {
			t.Fatalf("%d-shard warm rerun drifted from its own cold run", shards)
		}
		return outcome{sweepJSON: sj, frontJSON: fj, warmComputed: warmComputed}
	}

	one := lifecycle(1)
	four := lifecycle(4)
	if string(one.sweepJSON) != string(four.sweepJSON) {
		t.Fatal("sweep records differ between 1-shard and 4-shard stores")
	}
	if string(one.frontJSON) != string(four.frontJSON) {
		t.Fatal("optimizer front differs between 1-shard and 4-shard stores")
	}
	if one.warmComputed != 0 || four.warmComputed != 0 {
		t.Fatalf("warm reruns computed %d and %d points, want 0 and 0",
			one.warmComputed, four.warmComputed)
	}
}
