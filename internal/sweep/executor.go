package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// Map evaluates fn(i) for every i in [0, n) on a bounded pool of worker
// goroutines and returns the results in index order. The output is
// independent of the worker count and of goroutine scheduling: result i
// always lands in slot i, and fn receives nothing but the index, so any
// randomness must come from per-index streams (rng.Stream.Split).
//
// Map stops handing out new indices once ctx is cancelled and returns
// ctx.Err() alongside the partial results (slots never reached hold the
// zero value of T). workers <= 0 selects runtime.NumCPU().
//
// A panic inside fn does not deadlock the pool: the remaining workers
// drain, and the first panic is re-raised on the caller's goroutine as
// a *PanicError carrying the original value and the worker's stack.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) T) ([]T, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicMu  sync.Mutex
		panicVal any
		panicStk []byte
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
						panicStk = debug.Stack()
					}
					panicMu.Unlock()
					panicked.Store(true)
				}
			}()
			for {
				if ctx.Err() != nil || panicked.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(&PanicError{Value: panicVal, Stack: panicStk})
	}
	return out, ctx.Err()
}

// PanicError is what Map re-panics with after a worker panic: the
// original value survives for callers that recover and inspect it, and
// the worker's stack survives for the crash report.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep.Map: fn panicked: %v\n\nworker stack:\n%s", e.Value, e.Stack)
}

// Cache is the executor's per-point read-through hook. Get returns the
// record previously stored under a PointKey; Put stores a freshly
// evaluated one. Both must be safe for concurrent use — the executor
// calls them from every worker. Records pass through a Cache before
// Pareto marking, so implementations see Pareto: false on every record.
type Cache interface {
	Get(key string) (Record, bool)
	Put(key string, rec Record)
}

// Config parameterises a scenario sweep.
type Config struct {
	// Workers bounds the pool (0 = runtime.NumCPU()). The records are
	// identical for every value.
	Workers int
	// Seed is the root of the per-point deterministic sub-streams.
	Seed uint64
	// Budget controls the Monte-Carlo effort spent per point.
	Budget Budget
	// Cache, when non-nil, is consulted before evaluating each point
	// and filled after: rerunning a scenario reuses every point whose
	// key (scenario, point, budget, seed, engine version) is present.
	Cache Cache
	// OnPoint, when non-nil, is called once per finished point with the
	// point's own Index (the grid index for scenario sweeps, the global
	// evaluation index for optimizer generations) and whether it was
	// served from the Cache. It runs on worker goroutines and must be
	// safe for concurrent use.
	OnPoint func(index int, cached bool)
	// Feasible, when non-nil, is the user-spec constraint predicate:
	// records failing it are excluded from Pareto marking (they neither
	// join nor dominate the front). It never changes record bytes or
	// cache keys.
	Feasible func(Record) bool
}

// Result is the structured outcome of one scenario sweep.
type Result struct {
	Scenario    string   `json:"scenario"`
	Description string   `json:"description"`
	Seed        uint64   `json:"seed"`
	Budget      string   `json:"budget"`
	Records     []Record `json:"records"`
	// ParetoIndices lists the records on the Pareto front over
	// (TxPowerDBm min, DecodeLatencyBits min, NoCSaturation max), in
	// record order. The same records carry Pareto: true.
	ParetoIndices []int `json:"pareto_indices"`
	// CachedPoints and ComputedPoints split the grid by how each record
	// was obtained (cache hit versus fresh evaluation); they sum to
	// len(Records). Without a Cache every point counts as computed.
	CachedPoints   int `json:"cached_points"`
	ComputedPoints int `json:"computed_points"`
}

// pointEvaluator returns the closure Run, EvaluateChunk and
// EvaluatePoints share: it evaluates one point by slice position,
// reading through cfg.Cache and reporting to cfg.OnPoint. cached, when
// non-nil, counts cache hits. The random sub-stream is derived from the
// point's own Index (identical to the slice position for scenario grids,
// a global evaluation index for optimizer generations), so any slice of
// points reproduces the records a full evaluation would give them.
func pointEvaluator(scenario string, pts []Point, cfg Config, root *rng.Stream, cached *atomic.Int64) func(i int) Record {
	var keyer *Keyer
	if cfg.Cache != nil {
		// One keyer per evaluation context: the envelope's constant
		// segments render once instead of once per point.
		keyer = NewKeyer(scenario, cfg.Budget, cfg.Seed)
	}
	return func(i int) Record {
		var key string
		if cfg.Cache != nil {
			key = keyer.Key(pts[i])
			if rec, ok := cfg.Cache.Get(key); ok {
				if cached != nil {
					cached.Add(1)
				}
				// The front is a property of the sweep, not the point;
				// whoever merges the records recomputes it whatever the
				// stored flag says.
				rec.Pareto = false
				if cfg.OnPoint != nil {
					cfg.OnPoint(pts[i].Index, true)
				}
				return rec
			}
		}
		// Split is a pure function of (root seed, point index): every
		// point gets the same sub-stream no matter which worker —
		// goroutine or fleet process — runs it.
		rec := Evaluate(scenario, pts[i], root.Split(uint64(pts[i].Index)+1), cfg.Budget)
		if cfg.Cache != nil {
			cfg.Cache.Put(key, rec)
		}
		if cfg.OnPoint != nil {
			cfg.OnPoint(pts[i].Index, false)
		}
		return rec
	}
}

// Run executes the scenario's grid through the parallel executor and
// extracts the Pareto front.
func Run(ctx context.Context, sc Scenario, cfg Config) (*Result, error) {
	pts := sc.Points()
	if len(pts) == 0 {
		return nil, fmt.Errorf("sweep: scenario %q generates no points", sc.Name)
	}
	var cached atomic.Int64
	eval := pointEvaluator(sc.Name, pts, cfg, rng.New(cfg.Seed), &cached)
	recs, err := Map(ctx, len(pts), cfg.Workers, eval)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Scenario:       sc.Name,
		Description:    sc.Description,
		Seed:           cfg.Seed,
		Budget:         cfg.Budget.Name,
		Records:        recs,
		CachedPoints:   int(cached.Load()),
		ComputedPoints: len(recs) - int(cached.Load()),
	}
	res.ParetoIndices = MarkParetoFeasible(res.Records, cfg.Feasible)
	return res, nil
}

// EvaluatePoints evaluates an arbitrary list of design points — not
// necessarily a registered scenario's grid — through the same parallel
// executor, cache read-through and OnPoint reporting as Run. It returns
// the records in slice order plus how many were served from cfg.Cache.
//
// Each point's random sub-stream is rng.New(cfg.Seed).Split(Index+1), a
// pure function of (seed, point index): callers that assign globally
// unique indices (the adaptive optimizer numbers individuals
// generation*population+i) get worker-count-independent, byte-identical
// records for any partition of the list, exactly like scenario grids.
// scenario names the point family in records and cache keys; optimizer
// evaluations use "optimize/<space>" so they never collide with grid
// scenarios.
func EvaluatePoints(ctx context.Context, scenario string, pts []Point, cfg Config) ([]Record, int, error) {
	var cached atomic.Int64
	eval := pointEvaluator(scenario, pts, cfg, rng.New(cfg.Seed), &cached)
	recs, err := Map(ctx, len(pts), cfg.Workers, eval)
	return recs, int(cached.Load()), err
}
