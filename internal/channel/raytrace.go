package channel

import (
	"fmt"
	"math"
	"sort"
)

const speedOfLight = 299_792_458.0

// DefaultMisalignRadPerM is the residual beam-misalignment slope used for
// diagonal links: rotating the boards keeps the horns nominally facing
// each other, but the paper's fitted exponent n = 2.0454 (> 2) implies a
// small excess loss growing with distance. A misalignment of ~0.56 rad
// per metre of excess path reproduces that fit within the horn pattern
// model below.
const DefaultMisalignRadPerM = 0.56

// Ray is one propagation path between the two antenna ports.
//
// The dominant path crosses the board gap once (line of sight). Echoes
// are multi-transit reverberations: the wave reflects off the far board
// (or the horn aperture, or inside the waveguide port) back to the near
// side and crosses again, arriving after odd multiples of the one-way
// delay — exactly the echo families labelled in the paper's Figs. 2-3.
type Ray struct {
	// LengthM is the total travelled path length in metres.
	LengthM float64
	// ExtraLossDB collects non-Friis losses: board/horn/port reflection
	// losses and antenna pattern roll-off.
	ExtraLossDB float64
	// Transits counts gap crossings (1 for LoS, 3 for one round trip...).
	Transits int
	// Label classifies the path for plots: "line of sight",
	// "copper boards", "horn antennas", "antenna ports".
	Label string
}

// DelayS returns the propagation delay of the ray in seconds.
func (r Ray) DelayS() float64 { return r.LengthM / speedOfLight }

// GainDB returns the end-to-end ray gain (dB, negative) at frequency
// freqHz including Friis spreading over the full travelled length,
// antenna gains and the ray's extra losses.
func (r Ray) GainDB(freqHz, txGainDB, rxGainDB float64) float64 {
	lambda := speedOfLight / freqHz
	fspl := 20 * math.Log10(4*math.Pi*r.LengthM/lambda)
	return txGainDB + rxGainDB - fspl - r.ExtraLossDB
}

// Scenario describes one VNA measurement geometry from Sec. II-A: two
// horn antennas facing each other across LinkDistM, either in freespace
// (absorber on the ground) or mounted in notches of two parallel copper
// boards.
type Scenario struct {
	// LinkDistM is the port-to-port distance in metres.
	LinkDistM float64
	// CopperBoards selects the worst-case printed-circuit-board setup:
	// the antennas sit in notches of two parallel copper boards, which
	// reflect the transmitted wave back and forth across the gap.
	CopperBoards bool
	// TXGainDB, RXGainDB are the boresight antenna gains (9.5 dB horns in
	// the measurements, 12 dB arrays in the link budget).
	TXGainDB, RXGainDB float64
	// HPBWRad is the half-power beamwidth of the antennas. Zero derives
	// it from the TX gain via the Kraus approximation.
	HPBWRad float64
	// BoardReflLossDB is the effective loss per copper-board reflection
	// (finite aperture around the antenna notch, roughness, edge
	// scattering). Zero means 3.5 dB, calibrated so the first-order echo
	// cluster (board plus horn reverberation at the same delay) sits
	// >= 15 dB below the line of sight as measured in Fig. 2.
	BoardReflLossDB float64
	// HornReflLossDB is the return loss of a horn aperture. Zero means
	// 12 dB.
	HornReflLossDB float64
	// PortReflLossDB is the return loss looking into a waveguide port.
	// Zero means 11 dB.
	PortReflLossDB float64
	// MaxRoundTrips bounds the reverberation expansion. Zero means 3.
	MaxRoundTrips int
	// RotationRad is the board rotation used for diagonal links. Rotating
	// the boards tilts the reflecting surfaces by this angle against the
	// link axis, steering the specular echo away from the return path.
	RotationRad float64
	// MisalignRad is the residual boresight pointing error per antenna.
	MisalignRad float64
	// WaveguideLenM is the port waveguide length for the port-echo delay.
	// Zero means 45 mm.
	WaveguideLenM float64
}

// Defaults returns a copy of s with zero fields replaced by the package
// defaults described in the field comments.
func (s Scenario) Defaults() Scenario {
	if s.HPBWRad == 0 {
		s.HPBWRad = KrausHPBW(s.TXGainDB)
	}
	if s.BoardReflLossDB == 0 {
		s.BoardReflLossDB = 3.5
	}
	if s.HornReflLossDB == 0 {
		s.HornReflLossDB = 12
	}
	if s.PortReflLossDB == 0 {
		s.PortReflLossDB = 11
	}
	if s.MaxRoundTrips == 0 {
		s.MaxRoundTrips = 3
	}
	if s.WaveguideLenM == 0 {
		s.WaveguideLenM = 0.045
	}
	return s
}

// DiagonalScenario returns the measurement geometry for a diagonal link
// of length distM between boards whose facing (ahead) distance is
// aheadDistM: the boards are rotated so the ports face each other, and
// the residual misalignment model of Fig. 1 applies.
func DiagonalScenario(distM, aheadDistM float64, copper bool) Scenario {
	if distM < aheadDistM {
		distM = aheadDistM
	}
	rot := math.Acos(aheadDistM / distM)
	return Scenario{
		LinkDistM:    distM,
		CopperBoards: copper,
		TXGainDB:     HornGainDB,
		RXGainDB:     HornGainDB,
		RotationRad:  rot,
		MisalignRad:  DefaultMisalignRadPerM * (distM - aheadDistM),
	}
}

// HornGainDB is the effective gain of the standard-gain horns after
// phase-centre correction (Sec. II-A).
const HornGainDB = 9.5

// KrausHPBW estimates the half-power beamwidth (radians) of an antenna
// with the given boresight gain using the Kraus directivity approximation
// D ~ 41253 deg^2 / HPBW^2.
func KrausHPBW(gainDB float64) float64 {
	d := math.Pow(10, gainDB/10)
	hpbwDeg := math.Sqrt(41253 / d)
	return hpbwDeg * math.Pi / 180
}

// patternLossDB is the Gaussian-beam roll-off 12 (theta/HPBW)^2 dB,
// clamped at 30 dB (a realistic front-to-back floor for horns).
func patternLossDB(thetaRad, hpbwRad float64) float64 {
	r := thetaRad / hpbwRad
	loss := 12 * r * r
	if loss > 30 {
		return 30
	}
	return loss
}

// Rays enumerates the propagation paths of the scenario, sorted by delay.
// The first ray is always the line of sight.
func (s Scenario) Rays() []Ray {
	sc := s.Defaults()
	if sc.LinkDistM <= 0 {
		panic(fmt.Sprintf("channel: non-positive link distance %g m", sc.LinkDistM))
	}
	d := sc.LinkDistM
	misalign := 2 * patternLossDB(sc.MisalignRad, sc.HPBWRad) // both ends

	rays := []Ray{{
		LengthM:     d,
		ExtraLossDB: misalign,
		Transits:    1,
		Label:       "line of sight",
	}}

	// Board rotation steers each specular board echo 2*rot away from the
	// return direction; the pattern roll-off then attenuates it.
	boardSteer := patternLossDB(2*sc.RotationRad, sc.HPBWRad)

	for k := 1; k <= sc.MaxRoundTrips; k++ {
		transits := 2*k + 1
		length := float64(transits) * d
		if sc.CopperBoards {
			// Each round trip reflects once off the far board and once
			// off the near board.
			rays = append(rays, Ray{
				LengthM:     length,
				ExtraLossDB: float64(2*k)*(sc.BoardReflLossDB+boardSteer) + misalign,
				Transits:    transits,
				Label:       "copper boards",
			})
		}
		// Horn-aperture reverberation exists in both setups.
		rays = append(rays, Ray{
			LengthM:     length,
			ExtraLossDB: float64(2*k)*sc.HornReflLossDB + misalign,
			Transits:    transits,
			Label:       "horn antennas",
		})
	}

	// Waveguide-port echoes: one round trip that additionally runs down
	// and back the port waveguide on one or both ends.
	rays = append(rays,
		Ray{
			LengthM:     3*d + 2*sc.WaveguideLenM,
			ExtraLossDB: sc.HornReflLossDB + sc.PortReflLossDB + misalign,
			Transits:    3,
			Label:       "antenna ports",
		},
		Ray{
			LengthM:     3*d + 4*sc.WaveguideLenM,
			ExtraLossDB: 2*sc.PortReflLossDB + 3 + misalign,
			Transits:    3,
			Label:       "antenna ports",
		},
	)

	sort.Slice(rays, func(i, j int) bool { return rays[i].LengthM < rays[j].LengthM })
	return rays
}

// FrequencyResponse synthesises the complex channel transfer function
// (S21 between the antenna ports, antenna gains included) on the given
// frequency grid.
func (s Scenario) FrequencyResponse(freqsHz []float64) []complex128 {
	sc := s.Defaults()
	rays := sc.Rays()
	out := make([]complex128, len(freqsHz))
	for i, f := range freqsHz {
		var sum complex128
		for _, r := range rays {
			amp := math.Pow(10, r.GainDB(f, sc.TXGainDB, sc.RXGainDB)/20)
			phase := -2 * math.Pi * f * r.DelayS()
			sum += complex(amp*math.Cos(phase), amp*math.Sin(phase))
		}
		out[i] = sum
	}
	return out
}

// BandAveragedGainDB returns the mean power gain (dB) of the channel over
// the band [loHz, hiHz] sampled at n points — the wideband |S21| level a
// VNA sweep reports, with the fast multipath ripple averaged out.
func (s Scenario) BandAveragedGainDB(loHz, hiHz float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	freqs := make([]float64, n)
	for i := range freqs {
		freqs[i] = loHz + (hiHz-loHz)*float64(i)/float64(n-1)
	}
	h := s.FrequencyResponse(freqs)
	var p float64
	for _, v := range h {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	return 10 * math.Log10(p/float64(n))
}

// WorstEchoRelativeDB returns the gain of the strongest non-line-of-sight
// ray relative to the line of sight, in dB (negative when the echoes are
// weaker).
func (s Scenario) WorstEchoRelativeDB(freqHz float64) float64 {
	sc := s.Defaults()
	rays := sc.Rays()
	los := math.Inf(-1)
	best := math.Inf(-1)
	for _, r := range rays {
		g := r.GainDB(freqHz, sc.TXGainDB, sc.RXGainDB)
		if r.Label == "line of sight" {
			los = g
		} else if g > best {
			best = g
		}
	}
	return best - los
}
