package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/search"
	"repro/internal/sweep"
)

// TestRunUnknownScenarioListsCatalog: mistyping -scenario must fail
// with every registered scenario named, so the user can correct the
// invocation without a second round trip through 'sweep list'.
func TestRunUnknownScenarioListsCatalog(t *testing.T) {
	err := run([]string{"-scenario", "no-such-scenario"})
	if err == nil {
		t.Fatal("run with unknown scenario succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-scenario"`) {
		t.Errorf("error does not echo the bad name: %s", msg)
	}
	for _, name := range sweep.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list known scenario %q: %s", name, msg)
		}
	}
}

func TestRunMissingScenarioFlag(t *testing.T) {
	err := run(nil)
	if err == nil || !strings.Contains(err.Error(), "-scenario") {
		t.Fatalf("missing -scenario error = %v", err)
	}
}

// TestOptimizeUnknownSpaceListsCatalog mirrors the run-command
// contract for the optimizer: a mistyped -space names every registered
// space in the error.
func TestOptimizeUnknownSpaceListsCatalog(t *testing.T) {
	err := optimize([]string{"-space", "no-such-space"})
	if err == nil {
		t.Fatal("optimize with unknown space succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-space"`) {
		t.Errorf("error does not echo the bad name: %s", msg)
	}
	for _, name := range search.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list known space %q: %s", name, msg)
		}
	}
}

func TestOptimizeMissingSpaceFlag(t *testing.T) {
	err := optimize(nil)
	if err == nil || !strings.Contains(err.Error(), "-space") {
		t.Fatalf("missing -space error = %v", err)
	}
}

func TestOptimizeBadObjectives(t *testing.T) {
	err := optimize([]string{"-space", "butler-vs-steered", "-objectives", "tx-power,vibes"})
	if err == nil || !strings.Contains(err.Error(), "vibes") {
		t.Fatalf("bad objectives error = %v", err)
	}
}

// TestOptimizeWritesOutputs runs a tiny optimization end to end and
// checks both emitters: the JSON result parses back with the right
// shape, and the CSV has one row per evaluated individual.
func TestOptimizeWritesOutputs(t *testing.T) {
	dir := t.TempDir()
	outJSON := filepath.Join(dir, "result.json")
	outCSV := filepath.Join(dir, "records.csv")
	err := optimize([]string{
		"-space", "butler-vs-steered",
		"-generations", "2", "-population", "4",
		"-seed", "2",
		"-out", outJSON, "-csv", outCSV,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	var res search.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Space != "butler-vs-steered" || len(res.Records) != 8 || len(res.FrontIndices) == 0 {
		t.Fatalf("result = space %q, %d records, front %d", res.Space, len(res.Records), len(res.FrontIndices))
	}
	csvRaw, err := os.ReadFile(outCSV)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvRaw)), "\n")
	if len(lines) != 1+8 {
		t.Fatalf("CSV has %d lines, want header + 8 rows", len(lines))
	}
}

// TestUnknownScenarioExitCode re-executes the test binary as the sweep
// CLI to pin the process-level contract: exit status 1 and the catalog
// on stderr.
func TestUnknownScenarioExitCode(t *testing.T) {
	if os.Getenv("SWEEP_MAIN_TEST") == "1" {
		os.Args = []string{"sweep", "run", "-scenario", "no-such-scenario"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestUnknownScenarioExitCode")
	cmd.Env = append(os.Environ(), "SWEEP_MAIN_TEST=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want non-zero exit, got err = %v", err)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	for _, name := range sweep.Names() {
		if !strings.Contains(stderr.String(), name) {
			t.Errorf("stderr does not list known scenario %q:\n%s", name, stderr.String())
		}
	}
}
