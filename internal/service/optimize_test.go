package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/search"
	"repro/internal/sweep/store"
)

// optimizeReq is the small, fast optimization the service tests run:
// 3 generations of 8 over the 2-parameter butler-vs-steered space at
// analytic budget — 24 sub-millisecond evaluations.
func optimizeReq(seed uint64) Request {
	return Request{
		Kind:        KindOptimize,
		Space:       "butler-vs-steered",
		Budget:      "analytic",
		Seed:        seed,
		Generations: 3,
		Population:  8,
	}
}

func TestOptimizeJobLifecycle(t *testing.T) {
	m := New(Options{JobWorkers: 1})
	defer m.Shutdown(context.Background())

	v, err := m.Submit(optimizeReq(5))
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != KindOptimize || v.Space != "butler-vs-steered" ||
		v.Generations != 3 || v.Population != 8 {
		t.Fatalf("submitted view = %+v", v)
	}
	if len(v.Objectives) != 3 {
		t.Fatalf("default objectives = %v", v.Objectives)
	}
	if v.Progress.Total != 24 {
		t.Fatalf("total = %d, want generations*population = 24", v.Progress.Total)
	}

	done := waitState(t, m, v.ID, StateDone)
	if done.Progress.Done != 24 || done.Progress.Pending != 0 {
		t.Fatalf("completed progress = %+v", done.Progress)
	}

	res, err := m.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "optimize/butler-vs-steered" || len(res.Records) != 24 {
		t.Fatalf("result scenario %q with %d records", res.Scenario, len(res.Records))
	}
	if len(res.ParetoIndices) == 0 {
		t.Fatal("empty final front")
	}
	for _, i := range res.ParetoIndices {
		if !res.Records[i].Pareto {
			t.Fatalf("front record %d not marked Pareto", i)
		}
	}

	gens, terminal, err := m.Generations(v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !terminal || len(gens) != 3 {
		t.Fatalf("generations = %d (terminal %v), want 3 (true)", len(gens), terminal)
	}
	for i, g := range gens {
		if g.Gen != i || g.Evaluated != 8 || len(g.Front) == 0 {
			t.Fatalf("generation %d summary = %+v", i, g)
		}
	}
	// Offset reads return the tail only.
	tail, _, err := m.Generations(v.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].Gen != 2 {
		t.Fatalf("offset read = %+v", tail)
	}
}

func TestSubmitValidatesOptimize(t *testing.T) {
	m := New(Options{JobWorkers: 1})
	defer m.Shutdown(context.Background())

	for _, tc := range []struct {
		name   string
		mutate func(*Request)
	}{
		{"unknown space", func(r *Request) { r.Space = "warp-field" }},
		{"unknown objective", func(r *Request) { r.Objectives = []string{"tx-power", "vibes"} }},
		{"single objective", func(r *Request) { r.Objectives = []string{"tx-power"} }},
		{"odd population", func(r *Request) { r.Population = 7 }},
		{"negative generations", func(r *Request) { r.Generations = -2 }},
		{"unknown kind", func(r *Request) { r.Kind = "gradient-descent" }},
	} {
		req := optimizeReq(1)
		tc.mutate(&req)
		if _, err := m.Submit(req); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if _, err := m.Submit(Request{Kind: "gradient-descent"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown kind error = %v, want ErrBadRequest", err)
	}
	// A sweep submission without optimize fields still works.
	if _, err := m.Submit(Request{Scenario: "paper-baseline"}); err != nil {
		t.Errorf("plain sweep submission failed: %v", err)
	}
}

// TestOptimizeDistributedMatchesInProcess is the fleet half of the
// acceptance bar: the same optimization answers byte-identically
// whether generations are evaluated in-process or chunked over HTTP
// workers (with a shared store in the loop).
func TestOptimizeDistributedMatchesInProcess(t *testing.T) {
	inproc := New(Options{JobWorkers: 1})
	defer inproc.Shutdown(context.Background())
	v1, err := inproc.Submit(optimizeReq(11))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, inproc, v1.ID, StateDone)
	res1, err := inproc.Result(v1.ID)
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	dist := New(Options{
		JobWorkers:  1,
		Distributed: true,
		ChunkPoints: 3,
		LeaseTTL:    time.Minute,
		Cache:       st,
	})
	defer dist.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(dist))
	defer srv.Close()

	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunWorker(wctx, NewClient(srv.URL), WorkerOptions{
				Name: name, Poll: 5 * time.Millisecond, Workers: 1,
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker %s: %v", name, err)
			}
		}()
	}

	v2 := submit(t, srv, optimizeReq(11), http.StatusAccepted)
	pollDone(t, srv, v2.ID)
	res2, err := dist.Result(v2.ID)
	if err != nil {
		t.Fatal(err)
	}

	j1, _ := json.Marshal(res1)
	j2, _ := json.Marshal(res2)
	if string(j1) != string(j2) {
		t.Fatalf("distributed optimize differs from in-process:\nin-proc: %s\nfleet:   %s", j1, j2)
	}

	// Per-generation summaries match too.
	g1, _, err := inproc.Generations(v1.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := dist.Generations(v2.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	jg1, _ := json.Marshal(g1)
	jg2, _ := json.Marshal(g2)
	if string(jg1) != string(jg2) {
		t.Fatalf("generation summaries differ:\nin-proc: %s\nfleet:   %s", jg1, jg2)
	}

	// Warm resubmission: every individual is already in the store, so
	// the job completes without a single new evaluation (or lease).
	v3 := submit(t, srv, optimizeReq(11), http.StatusAccepted)
	done := pollDone(t, srv, v3.ID)
	if done.Progress.Cached != done.Progress.Total {
		t.Fatalf("warm rerun cached %d of %d points", done.Progress.Cached, done.Progress.Total)
	}
	res3, err := dist.Result(v3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res3.ComputedPoints != 0 {
		t.Fatalf("warm rerun computed %d points, want 0", res3.ComputedPoints)
	}
	// Records and front are byte-identical; only the cached/computed
	// accounting may differ between the cold and warm run.
	jr2, _ := json.Marshal(res2.Records)
	jr3, _ := json.Marshal(res3.Records)
	if string(jr3) != string(jr2) {
		t.Fatal("warm rerun records differ from cold distributed run")
	}
	jp2, _ := json.Marshal(res2.ParetoIndices)
	jp3, _ := json.Marshal(res3.ParetoIndices)
	if string(jp3) != string(jp2) {
		t.Fatal("warm rerun front differs from cold distributed run")
	}

	stopWorkers()
	wg.Wait()
}

// TestOptimizeHTTPSurface drives the optimizer through the public API:
// space catalog, submission, the live generations NDJSON stream, and
// the Pareto endpoint's objective annotations.
func TestOptimizeHTTPSurface(t *testing.T) {
	m := New(Options{JobWorkers: 1})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	var spaces []spaceInfo
	getJSON(t, srv, "/api/v1/spaces", &spaces)
	found := false
	for _, sp := range spaces {
		if sp.Name == "full-design" && len(sp.Params) >= 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("space listing = %+v", spaces)
	}

	v := submit(t, srv, optimizeReq(9), http.StatusAccepted)
	pollDone(t, srv, v.ID)

	// The generations stream replays every summary then closes, since
	// the job is already terminal.
	resp, err := http.Get(srv.URL + "/api/v1/jobs/" + v.ID + "/generations")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("generations content-type = %q", ct)
	}
	var gens []search.Generation
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 1<<20), 1<<20)
	for scan.Scan() {
		var g search.Generation
		if err := json.Unmarshal(scan.Bytes(), &g); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scan.Text(), err)
		}
		gens = append(gens, g)
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("streamed %d generations, want 3", len(gens))
	}
	for i, g := range gens {
		if g.Gen != i {
			t.Fatalf("stream out of order: %+v", gens)
		}
	}

	var pareto struct {
		Scenario   string            `json:"scenario"`
		Space      string            `json:"space"`
		Objectives []string          `json:"objectives"`
		Front      []json.RawMessage `json:"front"`
	}
	getJSON(t, srv, "/api/v1/jobs/"+v.ID+"/pareto", &pareto)
	if pareto.Scenario != "optimize/butler-vs-steered" || pareto.Space != "butler-vs-steered" {
		t.Fatalf("pareto payload = %+v", pareto)
	}
	if len(pareto.Objectives) != 3 || len(pareto.Front) == 0 {
		t.Fatalf("pareto objectives/front = %v / %d", pareto.Objectives, len(pareto.Front))
	}

	// Unknown job: 404, not a hanging stream.
	resp2, err := http.Get(srv.URL + "/api/v1/jobs/job-999999/generations")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("generations of unknown job = %d, want 404", resp2.StatusCode)
	}
}

// TestOptimizeGenerationsStreamLive follows a running optimization and
// sees summaries arrive before the job is done.
func TestOptimizeGenerationsStreamLive(t *testing.T) {
	m := New(Options{JobWorkers: 1})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	// A bigger budgetless run so the stream demonstrably overlaps it.
	req := optimizeReq(3)
	req.Generations = 6
	req.Population = 16
	v := submit(t, srv, req, http.StatusAccepted)

	resp, err := http.Get(srv.URL + "/api/v1/jobs/" + v.ID + "/generations")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	count := 0
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 1<<20), 1<<20)
	for scan.Scan() {
		count++
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Fatalf("live stream delivered %d generations, want 6", count)
	}
	// The stream only closes once the job is terminal.
	jv, err := m.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !jv.State.Terminal() {
		t.Fatalf("stream closed while job still %s", jv.State)
	}
}

func TestOptimizeJobCancellation(t *testing.T) {
	m := New(Options{JobWorkers: 1})
	defer m.Shutdown(context.Background())

	// A long smoke-budget optimization gives cancellation a window.
	req := optimizeReq(4)
	req.Budget = "smoke"
	req.Generations = 50
	v, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateRunning)
	if err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		jv, err := m.Get(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if jv.State.Terminal() {
			if jv.State != StateCancelled {
				t.Fatalf("cancelled job ended %s (%s)", jv.State, jv.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled optimization never terminated")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := m.Result(v.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("cancelled job result error = %v, want ErrNotDone", err)
	}
}
