//go:build amd64

#include "textflag.h"

// AVX-512 lockstep kernels for the batch LDPC decoder: eight float64
// lanes (one ZMM register) per step. The arithmetic is a literal
// register-renamed translation of the AVX2 kernels in batch_amd64.s —
// every instruction keeps its operand order, so rounding and NaN
// behaviour are identical bit for bit. Blends become k-register
// masked moves (VBLENDVPD has no 512-bit form), which also shortens
// the dependency chains: a compare+masked-move pair is 2 uops against
// the 3 of compare+blend. With 32 vector registers the per-oct fold
// results and both software-interleaved edge chains live entirely in
// registers; the frame is empty.

#define CONST8(name, val) \
	DATA name<>+0(SB)/8, val \
	GLOBL name<>(SB), RODATA|NOPTR, $8

CONST8(cZERO, $0x0000000000000000)
CONST8(cONE, $0x3FF0000000000000)
CONST8(cTWO, $0x4000000000000000)
CONST8(cHALF, $0x3FE0000000000000)
CONST8(cTHREE, $0x4008000000000000)
CONST8(cSIX, $0x4018000000000000)
CONST8(cNEGQUARTER, $0xBFD0000000000000)
CONST8(cNEGTWO, $0xC000000000000000)
CONST8(cNEGONE, $0xBFF0000000000000)
CONST8(c38, $0x4043000000000000)
CONST8(cNEG38, $0xC043000000000000)
CONST8(cQUARTER, $0x3FD0000000000000)

CONST8(cABSMASK, $0x7FFFFFFFFFFFFFFF)
CONST8(cSIGNMASK, $0x8000000000000000)
CONST8(cINF, $0x7FF0000000000000)

CONST8(cSAT, $0x4028000000000000)
CONST8(cEPS12, $0x3D719799812DEA11)
CONST8(cCLAMPT, $0x3FEFFFFFFFFFDCD1)
CONST8(cNEGCLAMPT, $0xBFEFFFFFFFFFDCD1)
CONST8(cLLRC, $0x403E000000000000)
CONST8(cNEGLLRC, $0xC03E000000000000)

CONST8(cLOG2E, $0x3FF71547652B82FE)
CONST8(cLN2U, $0x3FE62E42FEFA3000)
CONST8(cLN2L, $0x3D53DE6AF278ECE6)
CONST8(cEXPSC, $0x3FB0000000000000)
CONST8(cEC64, $0x3EFA01A01A01A01A)
CONST8(cEC56, $0x3F2A01A01A01A01A)
CONST8(cEC48, $0x3F56C16C16C16C17)
CONST8(cEC40, $0x3F81111111111111)
CONST8(cEC32, $0x3FA5555555555555)
CONST8(cEC24, $0x3FC5555555555555)
CONST8(cBIAS, $0x00000000000003FF)

CONST8(cLN2HALF, $0x3FD62E42FEFA39EF)
CONST8(cLN2HI, $0x3FE62E42FEE00000)
CONST8(cLN2LO, $0x3DEA39EF35793C76)
CONST8(cNEGLN2HI, $0xBFE62E42FEE00000)
CONST8(cNEGLN2LO, $0xBDEA39EF35793C76)
CONST8(cTINY, $0x3C90000000000000)
CONST8(cQ1, $0xBFA11111111110F4)
CONST8(cQ2, $0x3F5A01A019FE5585)
CONST8(cQ3, $0xBF14CE199EAADBB7)
CONST8(cQ4, $0x3ED0CFCA86E65239)
CONST8(cQ5, $0xBE8AFDB76E09C32D)

CONST8(cA3, $0x3FD5555555555555)
CONST8(cA5, $0x3FC999999999999A)
CONST8(cA7, $0x3FC2492492492492)
CONST8(cA9, $0x3FBC71C71C71C71C)
CONST8(cA11, $0x3FB745D1745D1746)
CONST8(cA13, $0x3FB3B13B13B13B14)
CONST8(cA15, $0x3FB1111111111111)
CONST8(cA17, $0x3FAE1E1E1E1E1E1E)

CONST8(cHSQRT2, $0x3FE6A09E667F3BCD)
CONST8(cL1, $0x3FE5555555555593)
CONST8(cL2, $0x3FD999999997FA04)
CONST8(cL3, $0x3FD2492494229359)
CONST8(cL4, $0x3FCC71C51D8E78AF)
CONST8(cL5, $0x3FC7466496CB03DE)
CONST8(cL6, $0x3FC39A09D078C69F)
CONST8(cL7, $0x3FC2F112DF3E5244)
CONST8(cMANTMASK, $0x000FFFFFFFFFFFFF)
CONST8(cHALFBITS, $0x3FE0000000000000)
CONST8(cEXPMAGIC, $0x4330000000000000)
CONST8(cEXPMAGICBIAS, $0x43300000000003FE)

// Constant registers, loaded once per call:
//   Z31 |x| mask   Z30 1.0   Z29 2.0   Z28 0.5   Z27 0.0
//   Z26 30.0   Z25 -30.0   Z24 0.999999999999   Z23 -(^)
//   Z22 0.25   Z21 1e-12   Z20 -1.0
// K7 = per-oct saturation mask, K6 = per-oct fallback accumulator,
// K4/K5 = per-chain persistent masks, K1-K3 scratch.

// CLAMP30Z clamps reg to [-30, 30] with NaN pass-through. Both masks
// come from the pre-clamp value (they are mutually exclusive), so the
// two masked moves commute and match the scalar two-step clamp.
#define CLAMP30Z(reg) \
	VCMPPD  $1, Z25, reg, K1  \
	VCMPPD  $14, Z26, reg, K2 \
	VMOVAPD Z25, K1, reg      \
	VMOVAPD Z26, K2, reg

// MSEDGEZ computes the saturated min-sum output for one edge: v in
// Z0, min1/min2/sign in Z14/Z15/Z16, result in Z2 (clobbers Z1, Z3).
#define MSEDGEZ() \
	VANDPD      Z31, Z0, Z1            \
	VCMPPD      $0, Z14, Z1, K1        \
	VBLENDMPD   Z15, Z14, K1, Z2       \
	VCMPPD      $1, Z27, Z0, K2        \
	VMOVAPD     Z16, Z3                \
	VXORPD.BCST cSIGNMASK<>(SB), Z3, K2, Z3 \
	VMULPD      Z2, Z3, Z2             \
	CLAMP30Z(Z2)

// EXPM1BLK is the mid-range tanhHalf branch t = em/(em+2) with
// em = Expm1(x), |x| < 1 (pure-Go math.Expm1 sequence). x in xreg
// (preserved), mC in kmask, result blended into treg on mC lanes.
// Clobbers Z0-Z3, Z5-Z9, Z11, Z12, Z17 and K1-K3; preserves Z4, Z10,
// Z13-Z16, Z18, Z19, K4-K7.
#define EXPM1BLK(xreg, kmask, treg) \
	VCMPPD       $1, Z27, xreg, K1            \ // m_neg = x < 0
	VANDPD       Z31, xreg, Z7                \ // absx
	VBROADCASTSD cLN2HALF<>(SB), Z12          \
	VCMPPD       $14, Z12, Z7, K2             \ // m_red = absx > Ln2Half
	VBROADCASTSD cLN2HI<>(SB), Z1             \
	VBROADCASTSD cNEGLN2HI<>(SB), K1, Z1      \ // hiOff
	VBROADCASTSD cLN2LO<>(SB), Z2             \
	VBROADCASTSD cNEGLN2LO<>(SB), K1, Z2      \ // loOff
	VSUBPD       Z1, xreg, Z1                 \ // hi = x - hiOff
	VSUBPD       Z2, Z1, Z3                   \ // xr = hi - lo
	VSUBPD       Z3, Z1, Z1                   \ // hi - xr
	VSUBPD       Z2, Z1, Z5                   \ // c = (hi - xr) - lo
	VMOVAPD      xreg, Z11                    \
	VMOVAPD      Z3, K2, Z11                  \ // x_eff
	VMULPD       Z28, Z11, Z6                 \ // hfx
	VMULPD       Z6, Z11, Z7                  \ // hxs
	VMULPD.BCST  cQ5<>(SB), Z7, Z8            \
	VADDPD.BCST  cQ4<>(SB), Z8, Z8            \
	VMULPD       Z8, Z7, Z8                   \
	VADDPD.BCST  cQ3<>(SB), Z8, Z8            \
	VMULPD       Z8, Z7, Z8                   \
	VADDPD.BCST  cQ2<>(SB), Z8, Z8            \
	VMULPD       Z8, Z7, Z8                   \
	VADDPD.BCST  cQ1<>(SB), Z8, Z8            \
	VMULPD       Z8, Z7, Z8                   \
	VADDPD       Z30, Z8, Z8                  \ // r1
	VMULPD       Z6, Z8, Z9                   \ // r1*hfx
	VBROADCASTSD cTHREE<>(SB), Z12            \
	VSUBPD       Z9, Z12, Z9                  \ // t = 3 - r1*hfx
	VSUBPD       Z9, Z8, Z8                   \ // r1 - t
	VMULPD       Z9, Z11, Z6                  \ // x*t
	VBROADCASTSD cSIX<>(SB), Z12              \
	VSUBPD       Z6, Z12, Z6                  \ // 6 - x*t
	VDIVPD       Z6, Z8, Z8                   \ // (r1-t)/(6-x*t)
	VMULPD       Z8, Z7, Z8                   \ // e = hxs * ^
	VMULPD       Z8, Z11, Z9                  \ // k=0: x - (x*e - hxs)
	VSUBPD       Z7, Z9, Z9                   \
	VSUBPD       Z9, Z11, Z12                 \ // k=0 em
	VSUBPD       Z5, Z8, Z9                   \ // e2 = (x*(e-c) - c) - hxs
	VMULPD       Z9, Z11, Z9                  \
	VSUBPD       Z5, Z9, Z9                   \
	VSUBPD       Z7, Z9, Z9                   \ // e2
	VSUBPD       Z9, Z11, Z17                 \ // k=-1: 0.5*(x-e2) - 0.5
	VMULPD       Z28, Z17, Z17                \
	VSUBPD       Z28, Z17, Z17                \
	VBROADCASTSD cNEGQUARTER<>(SB), Z5        \
	VCMPPD       $1, Z5, Z11, K3              \ // k=1 sub-branch: x < -0.25
	VADDPD       Z28, Z11, Z8                 \ // -2*(e2 - (x+0.5))
	VSUBPD       Z8, Z9, Z8                   \
	VMULPD.BCST  cNEGTWO<>(SB), Z8, Z8        \
	VSUBPD       Z9, Z11, Z3                  \ // 1 + 2*(x-e2)
	VMULPD       Z29, Z3, Z3                  \
	VADDPD       Z30, Z3, Z3                  \
	VMOVAPD      Z8, K3, Z3                   \ // k=1 result
	VMOVAPD      Z17, K1, Z3                  \ // reduced result (k = +-1)
	VMOVAPD      Z3, K2, Z12                  \ // m_red ? reduced : k=0
	VANDPD       Z31, xreg, Z7                \
	VBROADCASTSD cTINY<>(SB), Z5              \
	VCMPPD       $1, Z5, Z7, K3               \ // m_tiny = absx < 2**-54
	VMOVAPD      xreg, K3, Z12                \ // em
	VADDPD       Z29, Z12, Z9                 \ // em/(em+2)
	VDIVPD       Z9, Z12, Z12                 \
	VMOVAPD      Z12, kmask, treg

#define DERIVE_CX() \
	MOVLQSX (R9)(R11*4), CX \
	IMULQ   BX, CX          \
	ADDQ    SI, CX          \
	ADDQ    R14, CX

#define DEG() \
	MOVL 4(R9)(R11*4), DX \
	SUBL (R9)(R11*4), DX

// func spCheckRangeAVX512(checkPtr []int32, varToChk, tanh, chkToVar []float64,
//	width, stride int, activeVec []float64, fallback []uint64)
//
// Same two-edge software-interleaved structure as the AVX2 kernel:
// chain A owns Z0-Z5 (addresses through CX), chain B owns Z6-Z11
// (through R12 = CX + strideB), Z12/Z17 are shared transients, Z13 is
// the running tanh product, Z14/Z15/Z16 hold the A1 fold results and
// Z18/Z19 the saved inputs / series values.
TEXT ·spCheckRangeAVX512(SB), NOSPLIT, $0-160
	MOVQ checkPtr_base+0(FP), R9
	MOVQ varToChk_base+24(FP), SI
	MOVQ tanh_base+48(FP), R8
	SUBQ SI, R8
	MOVQ chkToVar_base+72(FP), DI
	SUBQ SI, DI
	MOVQ width+96(FP), R13
	SHLQ $3, R13
	MOVQ stride+104(FP), BX
	SHLQ $3, BX
	MOVQ fallback_base+136(FP), R10
	XORQ R11, R11

	VBROADCASTSD cABSMASK<>(SB), Z31
	VBROADCASTSD cONE<>(SB), Z30
	VBROADCASTSD cTWO<>(SB), Z29
	VBROADCASTSD cHALF<>(SB), Z28
	VXORPD       Z27, Z27, Z27
	VBROADCASTSD cLLRC<>(SB), Z26
	VBROADCASTSD cNEGLLRC<>(SB), Z25
	VBROADCASTSD cCLAMPT<>(SB), Z24
	VBROADCASTSD cNEGCLAMPT<>(SB), Z23
	VBROADCASTSD cQUARTER<>(SB), Z22
	VBROADCASTSD cEPS12<>(SB), Z21
	VBROADCASTSD cNEGONE<>(SB), Z20

zspc_check_loop:
	CMPQ R11, fallback_len+144(FP)
	JGE  zspc_done
	XORQ R15, R15
	DEG()
	TESTL DX, DX
	JZ    zspc_check_next
	XORQ  R14, R14

zspc_oct_loop:
	MOVQ     activeVec_base+112(FP), AX
	VMOVUPD  (AX)(R14*1), Z0
	VPTESTMQ Z0, Z0, K1
	KORTESTW K1, K1
	JZ       zspc_oct_next

	// ---- pass A1: min1/min2/sign fold over the check's edges ----
	// (pass B of the previous oct used Z27 as a working register;
	// restore the zero constant first)
	DEG()
	DERIVE_CX()
	VXORPD       Z27, Z27, Z27
	VBROADCASTSD cINF<>(SB), Z14 // min1
	VMOVAPD      Z14, Z15        // min2
	VMOVAPD      Z30, Z16        // sign product

zspc_a1_loop:
	VMOVUPD     (CX), Z0
	VANDPD      Z31, Z0, Z1      // a = |v|
	VCMPPD      $1, Z27, Z0, K1  // v < 0
	VXORPD.BCST cSIGNMASK<>(SB), Z16, K1, Z16
	VCMPPD      $1, Z14, Z1, K2  // m1 = a < min1
	VCMPPD      $1, Z15, Z1, K3  // a < min2
	VMOVAPD     Z1, K3, Z15      // a < min2 lanes first ...
	VMOVAPD     Z14, K2, Z15     // ... then min2 = min1 on m1 lanes
	VMOVAPD     Z1, K2, Z14      // min1 = m1 ? a : min1
	ADDQ BX, CX
	DECL DX
	JNZ  zspc_a1_loop

	// m_sat = min1 >= satLLR, per lane
	VBROADCASTSD cSAT<>(SB), Z0
	VCMPPD       $13, Z0, Z14, K7
	KMOVW        K7, AX
	CMPL         AX, $255
	JE           zspc_b_sat

	// ---- pass A2: per-edge tanhHalf and product fold, 3-way groups.
	// Pass B of the previous oct used Z20/Z28/Z29 as chain-C working
	// registers; rebroadcast the constants this pass consumes.
	DEG()
	DERIVE_CX()
	VBROADCASTSD cNEGONE<>(SB), Z20
	VBROADCASTSD cHALF<>(SB), Z28
	VBROADCASTSD cTWO<>(SB), Z29
	LEAQ    (CX)(BX*1), R12
	LEAQ    (CX)(BX*2), AX
	VMOVAPD Z30, Z13 // prod

	// Edge-count dispatch, mirroring pass B: 3-way groups while 3+
	// edges remain and the remainder will not strand a lone edge.
zspc_a2_dispatch:
	CMPL DX, $5
	JGE  zspc_a2_3iter
	CMPL DX, $3
	JE   zspc_a2_3iter
	CMPL DX, $2
	JGE  zspc_a2_pair_iter
	TESTL DX, DX
	JNZ  zspc_a2_single
	JMP  zspc_b_start

	// Three software-interleaved tanhHalf chains; the exp critical
	// path is latency-bound, so a third chain fills the FMA bubbles.
	// Chain A: Z0-Z4/Z18/K4(K1), B: Z6-Z10/Z19/K5(K2),
	// C: Z5,Z11,Z12,Z17,Z22/Z21/K6(K3).
zspc_a2_3iter:
	SUBL $3, DX
	VMOVUPD (CX), Z0
	VMOVUPD (R12), Z6
	VMOVUPD (AX), Z5
	VMOVAPD Z0, Z18
	VMOVAPD Z6, Z19
	VMOVAPD Z5, Z21
	VCMPPD  $14, Z20, Z0, K4
	VCMPPD  $14, Z20, Z6, K5
	VCMPPD  $14, Z20, Z5, K6
	VCMPPD  $1, Z30, Z0, K1
	VCMPPD  $1, Z30, Z6, K2
	VCMPPD  $1, Z30, Z5, K3
	KANDW   K1, K4, K4
	KANDW   K2, K5, K5
	KANDW   K3, K6, K6
	VMULPD.BCST  cLOG2E<>(SB), Z0, Z1
	VMULPD.BCST  cLOG2E<>(SB), Z6, Z7
	VMULPD.BCST  cLOG2E<>(SB), Z5, Z11
	VCVTPD2DQ    Z1, Y2
	VCVTPD2DQ    Z7, Y8
	VCVTPD2DQ    Z11, Y12
	VCVTDQ2PD    Y2, Z1
	VCVTDQ2PD    Y8, Z7
	VCVTDQ2PD    Y12, Z11
	VFNMADD231PD.BCST cLN2U<>(SB), Z1, Z0
	VFNMADD231PD.BCST cLN2U<>(SB), Z7, Z6
	VFNMADD231PD.BCST cLN2U<>(SB), Z11, Z5
	VFNMADD231PD.BCST cLN2L<>(SB), Z1, Z0
	VFNMADD231PD.BCST cLN2L<>(SB), Z7, Z6
	VFNMADD231PD.BCST cLN2L<>(SB), Z11, Z5
	VMULPD.BCST  cEXPSC<>(SB), Z0, Z0
	VMULPD.BCST  cEXPSC<>(SB), Z6, Z6
	VMULPD.BCST  cEXPSC<>(SB), Z5, Z5
	VBROADCASTSD cEC64<>(SB), Z3
	VMOVAPD      Z3, Z9
	VMOVAPD      Z3, Z17
	VFMADD213PD.BCST cEC56<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC56<>(SB), Z6, Z9
	VFMADD213PD.BCST cEC56<>(SB), Z5, Z17
	VFMADD213PD.BCST cEC48<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC48<>(SB), Z6, Z9
	VFMADD213PD.BCST cEC48<>(SB), Z5, Z17
	VFMADD213PD.BCST cEC40<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC40<>(SB), Z6, Z9
	VFMADD213PD.BCST cEC40<>(SB), Z5, Z17
	VFMADD213PD.BCST cEC32<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC32<>(SB), Z6, Z9
	VFMADD213PD.BCST cEC32<>(SB), Z5, Z17
	VFMADD213PD.BCST cEC24<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC24<>(SB), Z6, Z9
	VFMADD213PD.BCST cEC24<>(SB), Z5, Z17
	VFMADD213PD  Z28, Z0, Z3
	VFMADD213PD  Z28, Z6, Z9
	VFMADD213PD  Z28, Z5, Z17
	VFMADD213PD  Z30, Z0, Z3
	VFMADD213PD  Z30, Z6, Z9
	VFMADD213PD  Z30, Z5, Z17
	VMULPD       Z3, Z0, Z0
	VMULPD       Z9, Z6, Z6
	VMULPD       Z17, Z5, Z5
	VADDPD       Z29, Z0, Z3
	VADDPD       Z29, Z6, Z9
	VADDPD       Z29, Z5, Z17
	VMULPD       Z3, Z0, Z0
	VMULPD       Z9, Z6, Z6
	VMULPD       Z17, Z5, Z5
	VADDPD       Z29, Z0, Z3
	VADDPD       Z29, Z6, Z9
	VADDPD       Z29, Z5, Z17
	VMULPD       Z3, Z0, Z0
	VMULPD       Z9, Z6, Z6
	VMULPD       Z17, Z5, Z5
	VADDPD       Z29, Z0, Z3
	VADDPD       Z29, Z6, Z9
	VADDPD       Z29, Z5, Z17
	VMULPD       Z3, Z0, Z0
	VMULPD       Z9, Z6, Z6
	VMULPD       Z17, Z5, Z5
	VADDPD       Z29, Z0, Z3
	VADDPD       Z29, Z6, Z9
	VADDPD       Z29, Z5, Z17
	VFMADD213PD  Z30, Z3, Z0
	VFMADD213PD  Z30, Z9, Z6
	VFMADD213PD  Z30, Z17, Z5
	VPMOVSXDQ    Y2, Z1
	VPMOVSXDQ    Y8, Z7
	VPMOVSXDQ    Y12, Z11
	VPADDQ.BCST  cBIAS<>(SB), Z1, Z1
	VPADDQ.BCST  cBIAS<>(SB), Z7, Z7
	VPADDQ.BCST  cBIAS<>(SB), Z11, Z11
	VPSLLQ       $52, Z1, Z1
	VPSLLQ       $52, Z7, Z7
	VPSLLQ       $52, Z11, Z11
	VMULPD       Z1, Z0, Z0
	VMULPD       Z7, Z6, Z6
	VMULPD       Z11, Z5, Z5
	VCMPPD  $3, Z18, Z18, K1
	VCMPPD  $3, Z19, Z19, K2
	VCMPPD  $3, Z21, Z21, K3
	VMOVAPD Z18, K1, Z0
	VMOVAPD Z19, K2, Z6
	VMOVAPD Z21, K3, Z5
	VSUBPD  Z30, Z0, Z4
	VSUBPD  Z30, Z6, Z10
	VSUBPD  Z30, Z5, Z22
	VADDPD  Z30, Z0, Z2
	VADDPD  Z30, Z6, Z8
	VADDPD  Z30, Z5, Z12
	VDIVPD  Z2, Z4, Z4
	VDIVPD  Z8, Z10, Z10
	VDIVPD  Z12, Z22, Z22
	// mid-range lanes: t = em/(em+2), per chain behind its own branch
	KORTESTW K4, K4
	JZ       zspc_a23_skipa
	EXPM1BLK(Z18, K4, Z4)

zspc_a23_skipa:
	KORTESTW K5, K5
	JZ       zspc_a23_skipb
	EXPM1BLK(Z19, K5, Z10)

zspc_a23_skipb:
	KORTESTW K6, K6
	JZ       zspc_a23_skipc
	EXPM1BLK(Z21, K6, Z22)

zspc_a23_skipc:
	// outer classes: x > 38 -> 1, x < -38 -> -1
	VBROADCASTSD cNEG38<>(SB), Z12
	VBROADCASTSD c38<>(SB), Z17
	VCMPPD  $1, Z12, Z18, K1
	VMOVAPD Z20, K1, Z4
	VCMPPD  $14, Z17, Z18, K1
	VMOVAPD Z30, K1, Z4
	VCMPPD  $1, Z12, Z19, K1
	VMOVAPD Z20, K1, Z10
	VCMPPD  $14, Z17, Z19, K1
	VMOVAPD Z30, K1, Z10
	VCMPPD  $1, Z12, Z21, K1
	VMOVAPD Z20, K1, Z22
	VCMPPD  $14, Z17, Z21, K1
	VMOVAPD Z30, K1, Z22
	VMOVUPD Z4, (CX)(R8*1)
	VMOVUPD Z10, (R12)(R8*1)
	VMOVUPD Z22, (AX)(R8*1)
	VMULPD  Z4, Z13, Z13 // prod *= tA, tB, tC in edge order
	VMULPD  Z10, Z13, Z13
	VMULPD  Z22, Z13, Z13
	LEAQ (AX)(BX*1), CX
	LEAQ (CX)(BX*1), R12
	LEAQ (CX)(BX*2), AX
	JMP  zspc_a2_dispatch

zspc_a2_pair_iter:
	SUBL $2, DX
	VMOVUPD (CX), Z0
	VMOVAPD Z0, Z18
	VMOVUPD (R12), Z6
	VMOVAPD Z6, Z19
	// mC = (x > -1) & (x < 1): the Expm1 branch of tanhHalf
	VCMPPD $14, Z20, Z0, K4
	VCMPPD $1, Z30, Z0, K1
	KANDW  K1, K4, K4
	VCMPPD $14, Z20, Z6, K5
	VCMPPD $1, Z30, Z6, K1
	KANDW  K1, K5, K5
	// default branch: e = archExp(x) (SLEEF avxfma sequence)
	VMULPD.BCST  cLOG2E<>(SB), Z0, Z1
	VMULPD.BCST  cLOG2E<>(SB), Z6, Z7
	VCVTPD2DQ    Z1, Y2
	VCVTPD2DQ    Z7, Y8
	VCVTDQ2PD    Y2, Z1
	VCVTDQ2PD    Y8, Z7
	VFNMADD231PD.BCST cLN2U<>(SB), Z1, Z0
	VFNMADD231PD.BCST cLN2U<>(SB), Z7, Z6
	VFNMADD231PD.BCST cLN2L<>(SB), Z1, Z0
	VFNMADD231PD.BCST cLN2L<>(SB), Z7, Z6
	VMULPD.BCST  cEXPSC<>(SB), Z0, Z0
	VMULPD.BCST  cEXPSC<>(SB), Z6, Z6
	VBROADCASTSD cEC64<>(SB), Z3
	VMOVAPD      Z3, Z9
	VFMADD213PD.BCST cEC56<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC56<>(SB), Z6, Z9
	VFMADD213PD.BCST cEC48<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC48<>(SB), Z6, Z9
	VFMADD213PD.BCST cEC40<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC40<>(SB), Z6, Z9
	VFMADD213PD.BCST cEC32<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC32<>(SB), Z6, Z9
	VFMADD213PD.BCST cEC24<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC24<>(SB), Z6, Z9
	VFMADD213PD  Z28, Z0, Z3
	VFMADD213PD  Z28, Z6, Z9
	VFMADD213PD  Z30, Z0, Z3
	VFMADD213PD  Z30, Z6, Z9
	VMULPD       Z3, Z0, Z0
	VMULPD       Z9, Z6, Z6
	VADDPD       Z29, Z0, Z3 // 4x (x*(x+2)) squaring steps
	VADDPD       Z29, Z6, Z9
	VMULPD       Z3, Z0, Z0
	VMULPD       Z9, Z6, Z6
	VADDPD       Z29, Z0, Z3
	VADDPD       Z29, Z6, Z9
	VMULPD       Z3, Z0, Z0
	VMULPD       Z9, Z6, Z6
	VADDPD       Z29, Z0, Z3
	VADDPD       Z29, Z6, Z9
	VMULPD       Z3, Z0, Z0
	VMULPD       Z9, Z6, Z6
	VADDPD       Z29, Z0, Z3
	VADDPD       Z29, Z6, Z9
	VFMADD213PD  Z30, Z3, Z0
	VFMADD213PD  Z30, Z9, Z6
	VPMOVSXDQ    Y2, Z1 // ldexp: *= 2**k
	VPMOVSXDQ    Y8, Z7
	VPADDQ.BCST  cBIAS<>(SB), Z1, Z1
	VPADDQ.BCST  cBIAS<>(SB), Z7, Z7
	VPSLLQ       $52, Z1, Z1
	VPSLLQ       $52, Z7, Z7
	VMULPD       Z1, Z0, Z0
	VMULPD       Z7, Z6, Z6
	// archExp returns x itself for NaN input
	VCMPPD  $3, Z18, Z18, K1
	VMOVAPD Z18, K1, Z0
	VCMPPD  $3, Z19, Z19, K1
	VMOVAPD Z19, K1, Z6
	// t = (e-1)/(e+1)
	VSUBPD Z30, Z0, Z4
	VADDPD Z30, Z0, Z2
	VDIVPD Z2, Z4, Z4
	VSUBPD Z30, Z6, Z10
	VADDPD Z30, Z6, Z8
	VDIVPD Z8, Z10, Z10
	// mid-range lanes: t = em/(em+2), per chain behind its own branch
	KORTESTW K4, K4
	JZ       zspc_a2p_skipa
	EXPM1BLK(Z18, K4, Z4)

zspc_a2p_skipa:
	KORTESTW K5, K5
	JZ       zspc_a2p_skipb
	EXPM1BLK(Z19, K5, Z10)

zspc_a2p_skipb:
	// outer classes: x > 38 -> 1, x < -38 -> -1
	VBROADCASTSD cNEG38<>(SB), Z12
	VBROADCASTSD c38<>(SB), Z17
	VCMPPD  $1, Z12, Z18, K1
	VMOVAPD Z20, K1, Z4
	VCMPPD  $14, Z17, Z18, K1
	VMOVAPD Z30, K1, Z4
	VCMPPD  $1, Z12, Z19, K1
	VMOVAPD Z20, K1, Z10
	VCMPPD  $14, Z17, Z19, K1
	VMOVAPD Z30, K1, Z10
	VMOVUPD Z4, (CX)(R8*1)
	VMOVUPD Z10, (R12)(R8*1)
	VMULPD  Z4, Z13, Z13 // prod *= tA, then *= tB (edge order)
	VMULPD  Z10, Z13, Z13
	LEAQ (CX)(BX*2), CX
	LEAQ (R12)(BX*2), R12
	LEAQ (CX)(BX*2), AX
	JMP  zspc_a2_dispatch

zspc_a2_single:
	// odd trailing edge: chain A body once
	VMOVUPD (CX), Z0
	VMOVAPD Z0, Z18
	VCMPPD  $14, Z20, Z0, K4
	VCMPPD  $1, Z30, Z0, K1
	KANDW   K1, K4, K4
	VMULPD.BCST  cLOG2E<>(SB), Z0, Z1
	VCVTPD2DQ    Z1, Y2
	VCVTDQ2PD    Y2, Z1
	VFNMADD231PD.BCST cLN2U<>(SB), Z1, Z0
	VFNMADD231PD.BCST cLN2L<>(SB), Z1, Z0
	VMULPD.BCST  cEXPSC<>(SB), Z0, Z0
	VBROADCASTSD cEC64<>(SB), Z3
	VFMADD213PD.BCST cEC56<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC48<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC40<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC32<>(SB), Z0, Z3
	VFMADD213PD.BCST cEC24<>(SB), Z0, Z3
	VFMADD213PD  Z28, Z0, Z3
	VFMADD213PD  Z30, Z0, Z3
	VMULPD       Z3, Z0, Z0
	VADDPD       Z29, Z0, Z3
	VMULPD       Z3, Z0, Z0
	VADDPD       Z29, Z0, Z3
	VMULPD       Z3, Z0, Z0
	VADDPD       Z29, Z0, Z3
	VMULPD       Z3, Z0, Z0
	VADDPD       Z29, Z0, Z3
	VFMADD213PD  Z30, Z3, Z0
	VPMOVSXDQ    Y2, Z1
	VPADDQ.BCST  cBIAS<>(SB), Z1, Z1
	VPSLLQ       $52, Z1, Z1
	VMULPD       Z1, Z0, Z0
	VCMPPD  $3, Z18, Z18, K1
	VMOVAPD Z18, K1, Z0
	VSUBPD  Z30, Z0, Z4
	VADDPD  Z30, Z0, Z2
	VDIVPD  Z2, Z4, Z4
	KORTESTW K4, K4
	JZ       zspc_a2t_done
	EXPM1BLK(Z18, K4, Z4)

zspc_a2t_done:
	VBROADCASTSD cNEG38<>(SB), Z12
	VBROADCASTSD c38<>(SB), Z17
	VCMPPD  $1, Z12, Z18, K1
	VMOVAPD Z20, K1, Z4
	VCMPPD  $14, Z17, Z18, K1
	VMOVAPD Z30, K1, Z4
	VMOVUPD Z4, (CX)(R8*1)
	VMULPD  Z4, Z13, Z13

	// ---- pass B: per-edge outputs, three software-interleaved
	// chains (A: Z0-Z5/Z18/K4, B: Z6-Z11/Z19/K5, C: Z17/Z20-Z22/
	// Z27-Z29/K3). Chain C reuses registers that hold broadcast
	// constants elsewhere, so this pass reads eps/quarter/half/two/
	// zero via .BCST memory operands and the A2/A1/sat sections
	// rebroadcast their constants per oct.
zspc_b_start:
	DEG()
	DERIVE_CX()
	LEAQ  (CX)(BX*1), R12
	LEAQ  (CX)(BX*2), AX
	KXORW K6, K6, K6

	// Edge-count dispatch: 3-way groups while 3+ edges remain and the
	// remainder will not strand a lone edge (even degrees split as
	// 3k, 3k+2 or 2+2; only odd remainders fall to the single body).
zspc_b_dispatch:
	CMPL DX, $5
	JGE  zspc_b3_iter
	CMPL DX, $3
	JE   zspc_b3_iter
	CMPL DX, $2
	JGE  zspc_b2_iter
	TESTL DX, DX
	JNZ  zspc_b_tail_loop
	JMP  zspc_b_fold

zspc_b3_iter:
	SUBL $3, DX
	// phase 1: t, other = prod/t, fb detect, clamp to +-~1
	VMOVUPD (CX)(R8*1), Z0
	VDIVPD  Z0, Z13, Z1
	VANDPD  Z31, Z0, Z2
	VCMPPD.BCST $10, cEPS12<>(SB), Z2, K1
	KORW    K1, K6, K6
	VCMPPD  $1, Z23, Z1, K1
	VCMPPD  $14, Z24, Z1, K2
	VMOVAPD Z23, K1, Z1
	VMOVAPD Z24, K2, Z1
	VMOVUPD (R12)(R8*1), Z6
	VDIVPD  Z6, Z13, Z7
	VANDPD  Z31, Z6, Z8
	VCMPPD.BCST $10, cEPS12<>(SB), Z8, K1
	KORW    K1, K6, K6
	VCMPPD  $1, Z23, Z7, K1
	VCMPPD  $14, Z24, Z7, K2
	VMOVAPD Z23, K1, Z7
	VMOVAPD Z24, K2, Z7
	VMOVUPD (AX)(R8*1), Z21
	VDIVPD  Z21, Z13, Z22
	VANDPD  Z31, Z21, Z12
	VCMPPD.BCST $10, cEPS12<>(SB), Z12, K1
	KORW    K1, K6, K6
	VCMPPD  $1, Z23, Z22, K1
	VCMPPD  $14, Z24, Z22, K2
	VMOVAPD Z23, K1, Z22
	VMOVAPD Z24, K2, Z22
	// phase 2: m_ser and the series form, skipped when no lane is
	// below the series threshold (a stale series register is
	// harmless: the masked blend in phase 5 then merges nothing)
	VANDPD Z31, Z1, Z2
	VCMPPD.BCST $1, cQUARTER<>(SB), Z2, K4
	KORTESTW K4, K4
	JZ     zspc_b3_noser_a
	VMULPD Z1, Z1, Z2            // x2
	VMULPD.BCST cA17<>(SB), Z2, Z3
	VADDPD.BCST cA15<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD.BCST cA13<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD.BCST cA11<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD.BCST cA9<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD.BCST cA7<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD.BCST cA5<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD.BCST cA3<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD Z30, Z3, Z3
	VMULPD.BCST cTWO<>(SB), Z1, Z2 // 2x
	VMULPD Z3, Z2, Z18           // series value

zspc_b3_noser_a:
	VANDPD Z31, Z7, Z8
	VCMPPD.BCST $1, cQUARTER<>(SB), Z8, K5
	KORTESTW K5, K5
	JZ     zspc_b3_noser_b
	VMULPD Z7, Z7, Z8
	VMULPD.BCST cA17<>(SB), Z8, Z9
	VADDPD.BCST cA15<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD.BCST cA13<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD.BCST cA11<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD.BCST cA9<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD.BCST cA7<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD.BCST cA5<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD.BCST cA3<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD Z30, Z9, Z9
	VMULPD.BCST cTWO<>(SB), Z7, Z8
	VMULPD Z9, Z8, Z19

zspc_b3_noser_b:
	VANDPD Z31, Z22, Z12
	VCMPPD.BCST $1, cQUARTER<>(SB), Z12, K3
	KORTESTW K3, K3
	JZ     zspc_b3_noser_c
	VMULPD Z22, Z22, Z27
	VMULPD.BCST cA17<>(SB), Z27, Z28
	VADDPD.BCST cA15<>(SB), Z28, Z28
	VMULPD Z28, Z27, Z28
	VADDPD.BCST cA13<>(SB), Z28, Z28
	VMULPD Z28, Z27, Z28
	VADDPD.BCST cA11<>(SB), Z28, Z28
	VMULPD Z28, Z27, Z28
	VADDPD.BCST cA9<>(SB), Z28, Z28
	VMULPD Z28, Z27, Z28
	VADDPD.BCST cA7<>(SB), Z28, Z28
	VMULPD Z28, Z27, Z28
	VADDPD.BCST cA5<>(SB), Z28, Z28
	VMULPD Z28, Z27, Z28
	VADDPD.BCST cA3<>(SB), Z28, Z28
	VMULPD Z28, Z27, Z28
	VADDPD Z30, Z28, Z28
	VMULPD.BCST cTWO<>(SB), Z22, Z27
	VMULPD Z28, Z27, Z20

zspc_b3_noser_c:
	// phase 3: arg = (1+x)/(1-x) and frexp
	VADDPD     Z30, Z1, Z2
	VSUBPD     Z1, Z30, Z3
	VDIVPD     Z3, Z2, Z2        // arg (kept live for NaN)
	VPANDQ.BCST cMANTMASK<>(SB), Z2, Z3
	VPORQ.BCST cHALFBITS<>(SB), Z3, Z3 // f1
	VPSRLQ     $52, Z2, Z4
	VPORQ.BCST cEXPMAGIC<>(SB), Z4, Z4
	VSUBPD.BCST cEXPMAGICBIAS<>(SB), Z4, Z4 // k
	VCMPPD.BCST $10, cHSQRT2<>(SB), Z3, K1 // !(f1 > HSqrt2)
	VSUBPD     Z30, Z4, K1, Z4   // k -= adj
	VADDPD     Z3, Z3, K1, Z3    // f1 *= 1 or 2
	VSUBPD     Z30, Z3, Z3       // f
	VADDPD     Z30, Z7, Z8
	VSUBPD     Z7, Z30, Z9
	VDIVPD     Z9, Z8, Z8
	VPANDQ.BCST cMANTMASK<>(SB), Z8, Z9
	VPORQ.BCST cHALFBITS<>(SB), Z9, Z9
	VPSRLQ     $52, Z8, Z10
	VPORQ.BCST cEXPMAGIC<>(SB), Z10, Z10
	VSUBPD.BCST cEXPMAGICBIAS<>(SB), Z10, Z10
	VCMPPD.BCST $10, cHSQRT2<>(SB), Z9, K1
	VSUBPD     Z30, Z10, K1, Z10
	VADDPD     Z9, Z9, K1, Z9
	VSUBPD     Z30, Z9, Z9
	VADDPD     Z30, Z22, Z27
	VSUBPD     Z22, Z30, Z12
	VDIVPD     Z12, Z27, Z27
	VPANDQ.BCST cMANTMASK<>(SB), Z27, Z28
	VPORQ.BCST cHALFBITS<>(SB), Z28, Z28
	VPSRLQ     $52, Z27, Z29
	VPORQ.BCST cEXPMAGIC<>(SB), Z29, Z29
	VSUBPD.BCST cEXPMAGICBIAS<>(SB), Z29, Z29
	VCMPPD.BCST $10, cHSQRT2<>(SB), Z28, K1
	VSUBPD     Z30, Z29, K1, Z29
	VADDPD     Z28, Z28, K1, Z28
	VSUBPD     Z30, Z28, Z28
	// phase 4: s = f/(2+f), log polynomial, combine
	VADDPD.BCST cTWO<>(SB), Z3, Z5
	VDIVPD Z5, Z3, Z5            // s
	VMULPD Z5, Z5, Z0            // s2
	VMULPD Z0, Z0, Z1            // s4
	VMULPD.BCST cL7<>(SB), Z1, Z12
	VADDPD.BCST cL5<>(SB), Z12, Z12
	VMULPD Z12, Z1, Z12
	VADDPD.BCST cL3<>(SB), Z12, Z12
	VMULPD Z12, Z1, Z12
	VADDPD.BCST cL1<>(SB), Z12, Z12
	VMULPD Z12, Z0, Z0           // t1
	VMULPD.BCST cL6<>(SB), Z1, Z12
	VADDPD.BCST cL4<>(SB), Z12, Z12
	VMULPD Z12, Z1, Z12
	VADDPD.BCST cL2<>(SB), Z12, Z12
	VMULPD Z12, Z1, Z1           // t2
	VADDPD Z1, Z0, Z0            // R
	VMULPD.BCST cHALF<>(SB), Z3, Z1 // hfsq
	VMULPD Z3, Z1, Z1
	VADDPD Z1, Z0, Z0
	VMULPD Z0, Z5, Z5
	VMULPD.BCST cLN2LO<>(SB), Z4, Z0
	VADDPD Z0, Z5, Z5
	VSUBPD Z5, Z1, Z1
	VSUBPD Z3, Z1, Z1
	VMULPD.BCST cLN2HI<>(SB), Z4, Z4
	VSUBPD Z1, Z4, Z4            // log result
	VCMPPD $3, Z2, Z2, K1        // archLog returns arg for NaN
	VMOVAPD Z2, K1, Z4
	VADDPD.BCST cTWO<>(SB), Z9, Z11
	VDIVPD Z11, Z9, Z11
	VMULPD Z11, Z11, Z6
	VMULPD Z6, Z6, Z7
	VMULPD.BCST cL7<>(SB), Z7, Z12
	VADDPD.BCST cL5<>(SB), Z12, Z12
	VMULPD Z12, Z7, Z12
	VADDPD.BCST cL3<>(SB), Z12, Z12
	VMULPD Z12, Z7, Z12
	VADDPD.BCST cL1<>(SB), Z12, Z12
	VMULPD Z12, Z6, Z6
	VMULPD.BCST cL6<>(SB), Z7, Z12
	VADDPD.BCST cL4<>(SB), Z12, Z12
	VMULPD Z12, Z7, Z12
	VADDPD.BCST cL2<>(SB), Z12, Z12
	VMULPD Z12, Z7, Z7
	VADDPD Z7, Z6, Z6
	VMULPD.BCST cHALF<>(SB), Z9, Z7
	VMULPD Z9, Z7, Z7
	VADDPD Z7, Z6, Z6
	VMULPD Z6, Z11, Z11
	VMULPD.BCST cLN2LO<>(SB), Z10, Z6
	VADDPD Z6, Z11, Z11
	VSUBPD Z11, Z7, Z7
	VSUBPD Z9, Z7, Z7
	VMULPD.BCST cLN2HI<>(SB), Z10, Z10
	VSUBPD Z7, Z10, Z10          // log result
	VCMPPD $3, Z8, Z8, K1
	VMOVAPD Z8, K1, Z10
	VADDPD.BCST cTWO<>(SB), Z28, Z17
	VDIVPD Z17, Z28, Z17
	VMULPD Z17, Z17, Z21
	VMULPD Z21, Z21, Z22
	VMULPD.BCST cL7<>(SB), Z22, Z12
	VADDPD.BCST cL5<>(SB), Z12, Z12
	VMULPD Z12, Z22, Z12
	VADDPD.BCST cL3<>(SB), Z12, Z12
	VMULPD Z12, Z22, Z12
	VADDPD.BCST cL1<>(SB), Z12, Z12
	VMULPD Z12, Z21, Z21
	VMULPD.BCST cL6<>(SB), Z22, Z12
	VADDPD.BCST cL4<>(SB), Z12, Z12
	VMULPD Z12, Z22, Z12
	VADDPD.BCST cL2<>(SB), Z12, Z12
	VMULPD Z12, Z22, Z22
	VADDPD Z22, Z21, Z21
	VMULPD.BCST cHALF<>(SB), Z28, Z22
	VMULPD Z28, Z22, Z22
	VADDPD Z22, Z21, Z21
	VMULPD Z21, Z17, Z17
	VMULPD.BCST cLN2LO<>(SB), Z29, Z21
	VADDPD Z21, Z17, Z17
	VSUBPD Z17, Z22, Z22
	VSUBPD Z28, Z22, Z22
	VMULPD.BCST cLN2HI<>(SB), Z29, Z29
	VSUBPD Z22, Z29, Z29         // log result
	VCMPPD $3, Z27, Z27, K1
	VMOVAPD Z27, K1, Z29
	// phase 5: blend series/log, clamp, saturated blend, store. The
	// min-sum reconstruction only feeds K7-masked lanes, so it is
	// skipped outright in unsaturated octs (K7 is constant across
	// the oct: the branch predicts perfectly).
	VMOVAPD Z18, K4, Z4
	CLAMP30Z(Z4)
	KORTESTW K7, K7
	JZ      zspc_b3_st_a
	VMOVUPD (CX), Z0             // v for the min-sum form
	VANDPD  Z31, Z0, Z1
	VCMPPD  $0, Z14, Z1, K1      // a == min1
	VBLENDMPD Z15, Z14, K1, Z2
	VCMPPD.BCST $1, cZERO<>(SB), Z0, K2
	VMOVAPD Z16, Z3
	VXORPD.BCST cSIGNMASK<>(SB), Z3, K2, Z3
	VMULPD  Z2, Z3, Z2           // s*mag
	CLAMP30Z(Z2)
	VMOVAPD Z2, K7, Z4           // saturated lanes take min-sum

zspc_b3_st_a:
	VMOVUPD Z4, (CX)(DI*1)
	VMOVAPD Z19, K5, Z10
	CLAMP30Z(Z10)
	KORTESTW K7, K7
	JZ      zspc_b3_st_b
	VMOVUPD (R12), Z6
	VANDPD  Z31, Z6, Z7
	VCMPPD  $0, Z14, Z7, K1
	VBLENDMPD Z15, Z14, K1, Z8
	VCMPPD.BCST $1, cZERO<>(SB), Z6, K2
	VMOVAPD Z16, Z9
	VXORPD.BCST cSIGNMASK<>(SB), Z9, K2, Z9
	VMULPD  Z8, Z9, Z8
	CLAMP30Z(Z8)
	VMOVAPD Z8, K7, Z10

zspc_b3_st_b:
	VMOVUPD Z10, (R12)(DI*1)
	VMOVAPD Z20, K3, Z29
	CLAMP30Z(Z29)
	KORTESTW K7, K7
	JZ      zspc_b3_st_c
	VMOVUPD (AX), Z21
	VANDPD  Z31, Z21, Z22
	VCMPPD  $0, Z14, Z22, K1
	VBLENDMPD Z15, Z14, K1, Z22
	VCMPPD.BCST $1, cZERO<>(SB), Z21, K2
	VMOVAPD Z16, Z27
	VXORPD.BCST cSIGNMASK<>(SB), Z27, K2, Z27
	VMULPD  Z22, Z27, Z22
	CLAMP30Z(Z22)
	VMOVAPD Z22, K7, Z29

zspc_b3_st_c:
	VMOVUPD Z29, (AX)(DI*1)
	LEAQ (AX)(BX*1), CX
	LEAQ (CX)(BX*1), R12
	LEAQ (R12)(BX*1), AX
	JMP  zspc_b_dispatch

	// two edges: chains A and B of the 3-way body
zspc_b2_iter:
	SUBL $2, DX
	VMOVUPD (CX)(R8*1), Z0
	VDIVPD  Z0, Z13, Z1
	VANDPD  Z31, Z0, Z2
	VCMPPD.BCST $10, cEPS12<>(SB), Z2, K1
	KORW    K1, K6, K6
	VCMPPD  $1, Z23, Z1, K1
	VCMPPD  $14, Z24, Z1, K2
	VMOVAPD Z23, K1, Z1
	VMOVAPD Z24, K2, Z1
	VMOVUPD (R12)(R8*1), Z6
	VDIVPD  Z6, Z13, Z7
	VANDPD  Z31, Z6, Z8
	VCMPPD.BCST $10, cEPS12<>(SB), Z8, K1
	KORW    K1, K6, K6
	VCMPPD  $1, Z23, Z7, K1
	VCMPPD  $14, Z24, Z7, K2
	VMOVAPD Z23, K1, Z7
	VMOVAPD Z24, K2, Z7
	VANDPD Z31, Z1, Z2
	VCMPPD.BCST $1, cQUARTER<>(SB), Z2, K4
	KORTESTW K4, K4
	JZ     zspc_b2_noser_a
	VMULPD Z1, Z1, Z2
	VMULPD.BCST cA17<>(SB), Z2, Z3
	VADDPD.BCST cA15<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD.BCST cA13<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD.BCST cA11<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD.BCST cA9<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD.BCST cA7<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD.BCST cA5<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD.BCST cA3<>(SB), Z3, Z3
	VMULPD Z3, Z2, Z3
	VADDPD Z30, Z3, Z3
	VMULPD.BCST cTWO<>(SB), Z1, Z2
	VMULPD Z3, Z2, Z18

zspc_b2_noser_a:
	VANDPD Z31, Z7, Z8
	VCMPPD.BCST $1, cQUARTER<>(SB), Z8, K5
	KORTESTW K5, K5
	JZ     zspc_b2_noser_b
	VMULPD Z7, Z7, Z8
	VMULPD.BCST cA17<>(SB), Z8, Z9
	VADDPD.BCST cA15<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD.BCST cA13<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD.BCST cA11<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD.BCST cA9<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD.BCST cA7<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD.BCST cA5<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD.BCST cA3<>(SB), Z9, Z9
	VMULPD Z9, Z8, Z9
	VADDPD Z30, Z9, Z9
	VMULPD.BCST cTWO<>(SB), Z7, Z8
	VMULPD Z9, Z8, Z19

zspc_b2_noser_b:
	VADDPD     Z30, Z1, Z2
	VSUBPD     Z1, Z30, Z3
	VDIVPD     Z3, Z2, Z2
	VPANDQ.BCST cMANTMASK<>(SB), Z2, Z3
	VPORQ.BCST cHALFBITS<>(SB), Z3, Z3
	VPSRLQ     $52, Z2, Z4
	VPORQ.BCST cEXPMAGIC<>(SB), Z4, Z4
	VSUBPD.BCST cEXPMAGICBIAS<>(SB), Z4, Z4
	VCMPPD.BCST $10, cHSQRT2<>(SB), Z3, K1
	VSUBPD     Z30, Z4, K1, Z4
	VADDPD     Z3, Z3, K1, Z3
	VSUBPD     Z30, Z3, Z3
	VADDPD     Z30, Z7, Z8
	VSUBPD     Z7, Z30, Z9
	VDIVPD     Z9, Z8, Z8
	VPANDQ.BCST cMANTMASK<>(SB), Z8, Z9
	VPORQ.BCST cHALFBITS<>(SB), Z9, Z9
	VPSRLQ     $52, Z8, Z10
	VPORQ.BCST cEXPMAGIC<>(SB), Z10, Z10
	VSUBPD.BCST cEXPMAGICBIAS<>(SB), Z10, Z10
	VCMPPD.BCST $10, cHSQRT2<>(SB), Z9, K1
	VSUBPD     Z30, Z10, K1, Z10
	VADDPD     Z9, Z9, K1, Z9
	VSUBPD     Z30, Z9, Z9
	VADDPD.BCST cTWO<>(SB), Z3, Z5
	VDIVPD Z5, Z3, Z5
	VMULPD Z5, Z5, Z0
	VMULPD Z0, Z0, Z1
	VMULPD.BCST cL7<>(SB), Z1, Z12
	VADDPD.BCST cL5<>(SB), Z12, Z12
	VMULPD Z12, Z1, Z12
	VADDPD.BCST cL3<>(SB), Z12, Z12
	VMULPD Z12, Z1, Z12
	VADDPD.BCST cL1<>(SB), Z12, Z12
	VMULPD Z12, Z0, Z0
	VMULPD.BCST cL6<>(SB), Z1, Z12
	VADDPD.BCST cL4<>(SB), Z12, Z12
	VMULPD Z12, Z1, Z12
	VADDPD.BCST cL2<>(SB), Z12, Z12
	VMULPD Z12, Z1, Z1
	VADDPD Z1, Z0, Z0
	VMULPD.BCST cHALF<>(SB), Z3, Z1
	VMULPD Z3, Z1, Z1
	VADDPD Z1, Z0, Z0
	VMULPD Z0, Z5, Z5
	VMULPD.BCST cLN2LO<>(SB), Z4, Z0
	VADDPD Z0, Z5, Z5
	VSUBPD Z5, Z1, Z1
	VSUBPD Z3, Z1, Z1
	VMULPD.BCST cLN2HI<>(SB), Z4, Z4
	VSUBPD Z1, Z4, Z4
	VCMPPD $3, Z2, Z2, K1
	VMOVAPD Z2, K1, Z4
	VADDPD.BCST cTWO<>(SB), Z9, Z11
	VDIVPD Z11, Z9, Z11
	VMULPD Z11, Z11, Z6
	VMULPD Z6, Z6, Z7
	VMULPD.BCST cL7<>(SB), Z7, Z12
	VADDPD.BCST cL5<>(SB), Z12, Z12
	VMULPD Z12, Z7, Z12
	VADDPD.BCST cL3<>(SB), Z12, Z12
	VMULPD Z12, Z7, Z12
	VADDPD.BCST cL1<>(SB), Z12, Z12
	VMULPD Z12, Z6, Z6
	VMULPD.BCST cL6<>(SB), Z7, Z12
	VADDPD.BCST cL4<>(SB), Z12, Z12
	VMULPD Z12, Z7, Z12
	VADDPD.BCST cL2<>(SB), Z12, Z12
	VMULPD Z12, Z7, Z7
	VADDPD Z7, Z6, Z6
	VMULPD.BCST cHALF<>(SB), Z9, Z7
	VMULPD Z9, Z7, Z7
	VADDPD Z7, Z6, Z6
	VMULPD Z6, Z11, Z11
	VMULPD.BCST cLN2LO<>(SB), Z10, Z6
	VADDPD Z6, Z11, Z11
	VSUBPD Z11, Z7, Z7
	VSUBPD Z9, Z7, Z7
	VMULPD.BCST cLN2HI<>(SB), Z10, Z10
	VSUBPD Z7, Z10, Z10
	VCMPPD $3, Z8, Z8, K1
	VMOVAPD Z8, K1, Z10
	VMOVAPD Z18, K4, Z4
	CLAMP30Z(Z4)
	KORTESTW K7, K7
	JZ      zspc_b2_st_a
	VMOVUPD (CX), Z0
	VANDPD  Z31, Z0, Z1
	VCMPPD  $0, Z14, Z1, K1
	VBLENDMPD Z15, Z14, K1, Z2
	VCMPPD.BCST $1, cZERO<>(SB), Z0, K2
	VMOVAPD Z16, Z3
	VXORPD.BCST cSIGNMASK<>(SB), Z3, K2, Z3
	VMULPD  Z2, Z3, Z2
	CLAMP30Z(Z2)
	VMOVAPD Z2, K7, Z4

zspc_b2_st_a:
	VMOVUPD Z4, (CX)(DI*1)
	VMOVAPD Z19, K5, Z10
	CLAMP30Z(Z10)
	KORTESTW K7, K7
	JZ      zspc_b2_st_b
	VMOVUPD (R12), Z6
	VANDPD  Z31, Z6, Z7
	VCMPPD  $0, Z14, Z7, K1
	VBLENDMPD Z15, Z14, K1, Z8
	VCMPPD.BCST $1, cZERO<>(SB), Z6, K2
	VMOVAPD Z16, Z9
	VXORPD.BCST cSIGNMASK<>(SB), Z9, K2, Z9
	VMULPD  Z8, Z9, Z8
	CLAMP30Z(Z8)
	VMOVAPD Z8, K7, Z10

zspc_b2_st_b:
	VMOVUPD Z10, (R12)(DI*1)
	LEAQ (R12)(BX*1), CX
	LEAQ (CX)(BX*1), R12
	LEAQ (CX)(BX*2), AX
	JMP  zspc_b_dispatch

	// one trailing edge: chain A body
zspc_b_tail_loop:
	VMOVUPD (CX)(R8*1), Z0
	VDIVPD  Z0, Z13, Z1
	VANDPD  Z31, Z0, Z2
	VCMPPD.BCST $10, cEPS12<>(SB), Z2, K1
	KORW    K1, K6, K6
	VCMPPD  $1, Z23, Z1, K1
	VCMPPD  $14, Z24, Z1, K2
	VMOVAPD Z23, K1, Z1
	VMOVAPD Z24, K2, Z1
	VANDPD  Z31, Z1, Z2
	VCMPPD.BCST $1, cQUARTER<>(SB), Z2, K4
	KORTESTW K4, K4
	JZ      zspc_bt_noser
	VMULPD  Z1, Z1, Z2
	VMULPD.BCST cA17<>(SB), Z2, Z3
	VADDPD.BCST cA15<>(SB), Z3, Z3
	VMULPD  Z3, Z2, Z3
	VADDPD.BCST cA13<>(SB), Z3, Z3
	VMULPD  Z3, Z2, Z3
	VADDPD.BCST cA11<>(SB), Z3, Z3
	VMULPD  Z3, Z2, Z3
	VADDPD.BCST cA9<>(SB), Z3, Z3
	VMULPD  Z3, Z2, Z3
	VADDPD.BCST cA7<>(SB), Z3, Z3
	VMULPD  Z3, Z2, Z3
	VADDPD.BCST cA5<>(SB), Z3, Z3
	VMULPD  Z3, Z2, Z3
	VADDPD.BCST cA3<>(SB), Z3, Z3
	VMULPD  Z3, Z2, Z3
	VADDPD  Z30, Z3, Z3
	VMULPD.BCST cTWO<>(SB), Z1, Z2
	VMULPD  Z3, Z2, Z18

zspc_bt_noser:
	VADDPD  Z30, Z1, Z2
	VSUBPD  Z1, Z30, Z3
	VDIVPD  Z3, Z2, Z2
	VPANDQ.BCST cMANTMASK<>(SB), Z2, Z3
	VPORQ.BCST cHALFBITS<>(SB), Z3, Z3
	VPSRLQ  $52, Z2, Z4
	VPORQ.BCST cEXPMAGIC<>(SB), Z4, Z4
	VSUBPD.BCST cEXPMAGICBIAS<>(SB), Z4, Z4
	VCMPPD.BCST $10, cHSQRT2<>(SB), Z3, K1
	VSUBPD  Z30, Z4, K1, Z4
	VADDPD  Z3, Z3, K1, Z3
	VSUBPD  Z30, Z3, Z3
	VADDPD.BCST cTWO<>(SB), Z3, Z5
	VDIVPD  Z5, Z3, Z5
	VMULPD  Z5, Z5, Z0
	VMULPD  Z0, Z0, Z1
	VMULPD.BCST cL7<>(SB), Z1, Z12
	VADDPD.BCST cL5<>(SB), Z12, Z12
	VMULPD  Z12, Z1, Z12
	VADDPD.BCST cL3<>(SB), Z12, Z12
	VMULPD  Z12, Z1, Z12
	VADDPD.BCST cL1<>(SB), Z12, Z12
	VMULPD  Z12, Z0, Z0
	VMULPD.BCST cL6<>(SB), Z1, Z12
	VADDPD.BCST cL4<>(SB), Z12, Z12
	VMULPD  Z12, Z1, Z12
	VADDPD.BCST cL2<>(SB), Z12, Z12
	VMULPD  Z12, Z1, Z1
	VADDPD  Z1, Z0, Z0
	VMULPD.BCST cHALF<>(SB), Z3, Z1
	VMULPD  Z3, Z1, Z1
	VADDPD  Z1, Z0, Z0
	VMULPD  Z0, Z5, Z5
	VMULPD.BCST cLN2LO<>(SB), Z4, Z0
	VADDPD  Z0, Z5, Z5
	VSUBPD  Z5, Z1, Z1
	VSUBPD  Z3, Z1, Z1
	VMULPD.BCST cLN2HI<>(SB), Z4, Z4
	VSUBPD  Z1, Z4, Z4
	VCMPPD  $3, Z2, Z2, K1
	VMOVAPD Z2, K1, Z4
	VMOVAPD Z18, K4, Z4
	CLAMP30Z(Z4)
	KORTESTW K7, K7
	JZ      zspc_bt_st
	VMOVUPD (CX), Z0
	VANDPD  Z31, Z0, Z1
	VCMPPD  $0, Z14, Z1, K1
	VBLENDMPD Z15, Z14, K1, Z2
	VCMPPD.BCST $1, cZERO<>(SB), Z0, K2
	VMOVAPD Z16, Z3
	VXORPD.BCST cSIGNMASK<>(SB), Z3, K2, Z3
	VMULPD  Z2, Z3, Z2
	CLAMP30Z(Z2)
	VMOVAPD Z2, K7, Z4

zspc_bt_st:
	VMOVUPD Z4, (CX)(DI*1)
	JMP  zspc_b_fold

zspc_b_fold:
	// fold this oct's fallback bits (non-saturated lanes only) into
	// the check's mask
	KANDNW K6, K7, K6
	KMOVW  K6, AX
	MOVQ   R14, CX
	SHRQ   $3, CX // bit base = lane base = q64/64*8
	SHLQ   CX, AX
	ORQ    AX, R15
	JMP    zspc_oct_next

	// all-saturated oct: min-sum only, no transcendentals (Z27 may
	// hold pass-B chain-C state from the previous oct; MSEDGEZ needs
	// the zero constant)
zspc_b_sat:
	DEG()
	DERIVE_CX()
	VXORPD Z27, Z27, Z27

zspc_b_sat_loop:
	VMOVUPD (CX), Z0
	MSEDGEZ()
	VMOVUPD Z2, (CX)(DI*1)
	ADDQ BX, CX
	DECL DX
	JNZ  zspc_b_sat_loop

zspc_oct_next:
	ADDQ $64, R14
	CMPQ R14, R13
	JL   zspc_oct_loop

zspc_check_next:
	MOVQ R15, (R10)(R11*8)
	INCQ R11
	JMP  zspc_check_loop

zspc_done:
	VZEROUPPER
	RET

// func varUpdRangeAVX512(varPtr []int32, varEdge []int32, chLLR, chkToVar,
//	varToChk, posterior []float64, width, stride int,
//	activeVec []float64, hardBits []uint64, active uint64)
TEXT ·varUpdRangeAVX512(SB), NOSPLIT, $0-216
	MOVQ varPtr_base+0(FP), R12
	MOVQ varEdge_base+24(FP), R10
	MOVQ chLLR_base+48(FP), R8
	MOVQ chkToVar_base+72(FP), SI
	MOVQ varToChk_base+96(FP), DI
	SUBQ SI, DI
	MOVQ posterior_base+120(FP), R9
	MOVQ width+144(FP), R13
	SHLQ $3, R13
	MOVQ stride+152(FP), BX
	SHLQ $3, BX
	XORQ R11, R11

	VBROADCASTSD cLLRC<>(SB), Z26
	VBROADCASTSD cNEGLLRC<>(SB), Z25
	VXORPD       Z27, Z27, Z27

zvu_var_loop:
	CMPQ R11, hardBits_len+192(FP)
	JGE  zvu_done
	XORQ R15, R15
	XORQ R14, R14

	// Octs are processed in pairs: the two lane groups share the
	// edge-index and address arithmetic, and their posterior-sum
	// dependency chains run in parallel.
zvu_oct_loop:
	LEAQ 64(R14), AX
	CMPQ AX, R13
	JL   zvu_pair
	CMPQ R14, R13
	JGE  zvu_var_done

	// ---- single trailing oct
	MOVQ     activeVec_base+160(FP), AX
	VMOVUPD  (AX)(R14*1), Z1
	VPTESTMQ Z1, Z1, K3 // lane store mask
	KORTESTW K3, K3
	JZ       zvu_s_next

	// sum = chLLR[v] + sum of chkToVar over the variable's edges
	MOVQ    R11, AX
	IMULQ   BX, AX
	ADDQ    R14, AX
	VMOVUPD (R8)(AX*1), Z0
	MOVLQSX (R12)(R11*4), CX
	MOVLQSX 4(R12)(R11*4), DX
	CMPQ    CX, DX
	JGE     zvu_s_sum_done

zvu_s_sum_loop:
	MOVLQSX (R10)(CX*4), AX
	IMULQ   BX, AX
	ADDQ    R14, AX
	VADDPD  (SI)(AX*1), Z0, Z0
	INCQ    CX
	CMPQ    CX, DX
	JL      zvu_s_sum_loop

zvu_s_sum_done:
	// posterior: masked store (converged lanes keep frozen values)
	MOVQ    R11, AX
	IMULQ   BX, AX
	ADDQ    R14, AX
	VMOVUPD Z0, K3, (R9)(AX*1)
	// hard decision bits: sum < 0 (strict: -0 and NaN decide 0)
	VCMPPD $1, Z27, Z0, K2
	KMOVW  K2, AX
	MOVQ   R14, CX
	SHRQ   $3, CX
	SHLQ   CX, AX
	ORQ    AX, R15
	// extrinsic messages: varToChk[e] = clamp(sum - chkToVar[e])
	MOVLQSX (R12)(R11*4), CX
	MOVLQSX 4(R12)(R11*4), DX
	CMPQ    CX, DX
	JGE     zvu_s_next

zvu_s_ext_loop:
	MOVLQSX (R10)(CX*4), AX
	IMULQ   BX, AX
	ADDQ    R14, AX
	VMOVUPD (SI)(AX*1), Z2
	VSUBPD  Z2, Z0, Z2
	CLAMP30Z(Z2)
	ADDQ    DI, AX
	VMOVUPD Z2, (SI)(AX*1)
	INCQ    CX
	CMPQ    CX, DX
	JL      zvu_s_ext_loop

zvu_s_next:
	ADDQ $64, R14
	JMP  zvu_oct_loop

	// ---- oct pair
zvu_pair:
	MOVQ     activeVec_base+160(FP), AX
	VMOVUPD  (AX)(R14*1), Z1
	VMOVUPD  64(AX)(R14*1), Z2
	VPTESTMQ Z1, Z1, K3 // store mask, low oct
	VPTESTMQ Z2, Z2, K4 // store mask, high oct
	KORW     K3, K4, K1
	KORTESTW K1, K1
	JZ       zvu_p_next

	MOVQ    R11, AX
	IMULQ   BX, AX
	ADDQ    R14, AX
	VMOVUPD (R8)(AX*1), Z0
	VMOVUPD 64(R8)(AX*1), Z5
	MOVLQSX (R12)(R11*4), CX
	MOVLQSX 4(R12)(R11*4), DX
	CMPQ    CX, DX
	JGE     zvu_p_sum_done

zvu_p_sum_loop:
	MOVLQSX (R10)(CX*4), AX
	IMULQ   BX, AX
	ADDQ    R14, AX
	VADDPD  (SI)(AX*1), Z0, Z0
	VADDPD  64(SI)(AX*1), Z5, Z5
	INCQ    CX
	CMPQ    CX, DX
	JL      zvu_p_sum_loop

zvu_p_sum_done:
	MOVQ    R11, AX
	IMULQ   BX, AX
	ADDQ    R14, AX
	VMOVUPD Z0, K3, (R9)(AX*1)
	VMOVUPD Z5, K4, 64(R9)(AX*1)
	MOVQ   R14, CX
	SHRQ   $3, CX
	VCMPPD $1, Z27, Z0, K2
	KMOVW  K2, AX
	SHLQ   CX, AX
	ORQ    AX, R15
	VCMPPD $1, Z27, Z5, K2
	KMOVW  K2, AX
	SHLQ   CX, AX
	SHLQ   $8, AX
	ORQ    AX, R15
	MOVLQSX (R12)(R11*4), CX
	MOVLQSX 4(R12)(R11*4), DX
	CMPQ    CX, DX
	JGE     zvu_p_next

zvu_p_ext_loop:
	MOVLQSX (R10)(CX*4), AX
	IMULQ   BX, AX
	ADDQ    R14, AX
	VMOVUPD (SI)(AX*1), Z2
	VMOVUPD 64(SI)(AX*1), Z3
	VSUBPD  Z2, Z0, Z2
	VSUBPD  Z3, Z5, Z3
	CLAMP30Z(Z2)
	CLAMP30Z(Z3)
	ADDQ    DI, AX
	VMOVUPD Z2, (SI)(AX*1)
	VMOVUPD Z3, 64(SI)(AX*1)
	INCQ    CX
	CMPQ    CX, DX
	JL      zvu_p_ext_loop

zvu_p_next:
	ADDQ $128, R14
	JMP  zvu_oct_loop

zvu_var_done:
	// hardBits[v] = (old & ~active) | (new & active)
	MOVQ hardBits_base+184(FP), AX
	MOVQ active+208(FP), DX
	MOVQ (AX)(R11*8), CX
	NOTQ DX
	ANDQ DX, CX
	NOTQ DX
	ANDQ DX, R15
	ORQ  R15, CX
	MOVQ CX, (AX)(R11*8)
	INCQ R11
	JMP  zvu_var_loop

zvu_done:
	VZEROUPPER
	RET

// func cpuSupportsAVX512() bool
//
// AVX512F + AVX512DQ, plus OS-enabled opmask/ZMM state via XGETBV
// (XCR0 bits 1,2 for XMM/YMM and 5,6,7 for opmask, ZMM-hi256,
// hi16-ZMM).
TEXT ·cpuSupportsAVX512(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<27), CX // OSXSAVE
	JZ    zcpu_no
	XORL  CX, CX
	XGETBV
	ANDL $0xE6, AX
	CMPL AX, $0xE6
	JNE  zcpu_no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	// BX: bit 16 AVX512F, bit 17 AVX512DQ
	ANDL $(1<<16 | 1<<17), BX
	CMPL BX, $(1<<16 | 1<<17)
	JNE  zcpu_no
	MOVB $1, ret+0(FP)
	RET

zcpu_no:
	MOVB $0, ret+0(FP)
	RET
