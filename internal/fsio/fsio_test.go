package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicWritesAndOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	for _, content := range []string{"first", "second, longer than the first"} {
		if err := WriteFileAtomic(path, func(f *os.File) error {
			_, err := f.WriteString(content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("read back %q, want %q", got, content)
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := fi.Mode().Perm(); perm != 0o644 {
		t.Fatalf("mode = %v, want 0644", perm)
	}
}

func TestWriteFileAtomicFailedEmitLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	boom := errors.New("emit failed")
	if err := WriteFileAtomic(path, func(f *os.File) error {
		f.WriteString("partial")
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target exists after failed emit (err=%v)", err)
	}
	// The temp file must be cleaned up too.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("stray temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileAtomicKeepsOldFileOnFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileAtomic(path, func(f *os.File) error {
		_, err := f.WriteString("good")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, func(f *os.File) error {
		return errors.New("new write failed")
	}); err == nil {
		t.Fatal("want error from failed emit")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("old content clobbered: %q", got)
	}
}
