package numeric

import "math"

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a, slope b and the coefficient of determination R^2.
// It panics if the inputs differ in length or hold fewer than two points:
// an under-determined fit is a programming error in this library.
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	if len(xs) != len(ys) {
		panic("numeric: LinearFit length mismatch")
	}
	n := float64(len(xs))
	if n < 2 {
		panic("numeric: LinearFit needs at least two points")
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("numeric: LinearFit with degenerate x values")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return a, b, r2
}

// SolveLinearSystem solves A x = b by Gaussian elimination with partial
// pivoting. A is row-major n x n and is not modified. It returns false if
// the system is (numerically) singular.
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, false
	}
	// Working copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, false
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-14 {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			factor := m[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= factor * m[col][c]
			}
			x[r] -= factor * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for c := col + 1; c < n; c++ {
			sum -= m[col][c] * x[c]
		}
		x[col] = sum / m[col][col]
	}
	return x, true
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than
// two samples).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be >= 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("numeric: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
