package inforate

import (
	"testing"

	"repro/internal/modem"
)

// suboptPulse returns a uniquely detectable span-2 staircase (the output
// of isidesign.Suboptimal with seed 1, hard-coded here because isidesign
// imports this package). Its unique-detection property is asserted
// indirectly by TestViterbiPerfectAtHighSNRWithUniquePulse.
func suboptPulse(t *testing.T) modem.Pulse {
	t.Helper()
	return modem.NewPulse([]float64{
		0.185, -0.327, -0.060, -0.295, -0.317,
		0.095, 0.221, 0.282, 0.504, -0.525,
	}, 5)
}

func TestViterbiPerfectAtHighSNRWithUniquePulse(t *testing.T) {
	// A uniquely detectable pulse makes noise-free sign patterns
	// injective, so ML sequence detection at very high SNR must be
	// error-free.
	tr := NewTrellis(ask4(), suboptPulse(t))
	if ser := SimulateSER(tr, 45, 4000, 3); ser != 0 {
		t.Errorf("SER at 45 dB = %g, want 0 for a uniquely detectable pulse", ser)
	}
}

func TestViterbiRectPulseCannotSeparateMagnitudes(t *testing.T) {
	// Without ISI the signs carry only the symbol sign: the two positive
	// (and two negative) amplitudes collide, so the SER floor is ~1/2
	// even at high SNR.
	tr := NewTrellis(ask4(), modem.NewRect(5))
	ser := SimulateSER(tr, 40, 4000, 4)
	if ser < 0.3 || ser > 0.7 {
		t.Errorf("rect-pulse SER at 40 dB = %g, want ~0.5 (magnitude ambiguity)", ser)
	}
}

func TestViterbiSERDecreasesWithSNR(t *testing.T) {
	tr := NewTrellis(ask4(), suboptPulse(t))
	low := SimulateSER(tr, 5, 6000, 5)
	mid := SimulateSER(tr, 15, 6000, 5)
	high := SimulateSER(tr, 30, 6000, 5)
	if !(low > mid && mid > high) {
		t.Errorf("SER not decreasing: %g, %g, %g at 5/15/30 dB", low, mid, high)
	}
	if high > 0.025 {
		t.Errorf("SER at 30 dB = %g, want < 2.5%% (weakest-sample margin bound)", high)
	}
}

func TestViterbiDeterministic(t *testing.T) {
	tr := NewTrellis(ask4(), suboptPulse(t))
	if SimulateSER(tr, 12, 2000, 7) != SimulateSER(tr, 12, 2000, 7) {
		t.Error("SER simulation not reproducible")
	}
}

func TestViterbiDetectPanicsOnBadLength(t *testing.T) {
	tr := NewTrellis(ask4(), modem.NewRect(5))
	det := NewSequenceDetector(tr, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("bad sample count did not panic")
		}
	}()
	det.Detect(make([]int8, 7))
}

func TestViterbiEmptyInput(t *testing.T) {
	tr := NewTrellis(ask4(), modem.NewRect(5))
	det := NewSequenceDetector(tr, 10)
	if out := det.Detect(nil); out != nil {
		t.Errorf("Detect(nil) = %v, want nil", out)
	}
}

func TestViterbiConsistentWithInformationRate(t *testing.T) {
	// Where the information rate approaches log2(M), the ML detector's
	// SER must be small; where the rate is far below, the SER is large.
	tr := NewTrellis(ask4(), suboptPulse(t))
	rate25 := SequenceRate(tr, 25, 20000, 11)
	ser25 := SimulateSER(tr, 25, 20000, 11)
	if rate25 > 1.8 && ser25 > 0.05 {
		t.Errorf("rate %.2f bpcu but SER %.3f — detector inconsistent with rate", rate25, ser25)
	}
	ser0 := SimulateSER(tr, 0, 20000, 11)
	if ser0 < 0.1 {
		t.Errorf("SER at 0 dB = %g, implausibly low", ser0)
	}
}

func BenchmarkViterbiDetect(b *testing.B) {
	tr := NewTrellis(modem.NewASK(4), modem.NewRamp(5, 2))
	det := NewSequenceDetector(tr, 20)
	bits := make([]int8, 1000*5)
	for i := range bits {
		if i%3 == 0 {
			bits[i] = -1
		} else {
			bits[i] = 1
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		det.Detect(bits)
	}
}
