package main

// The remote subcommands — sweep trace, sweep fleet — read a running
// sweepd's observability endpoints, so an operator can ask "where did
// that job's wall time go" and "which workers are pulling their
// weight" without leaving the CLI.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/service"
)

// traceCmd implements 'sweep trace [-daemon URL] [-raw] <job-id>':
// the job's derived phase timeline, or with -raw the span NDJSON
// exactly as the daemon streams it.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	daemon := fs.String("daemon", "http://localhost:8080", "sweepd base URL")
	raw := fs.Bool("raw", false, "dump raw spans as NDJSON instead of the derived timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sweep trace [-daemon URL] [-raw] <job-id>")
	}
	jobID := fs.Arg(0)
	base := strings.TrimRight(*daemon, "/")

	if *raw {
		resp, err := http.Get(base + "/api/v1/jobs/" + jobID + "/trace")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return remoteError("trace", resp)
		}
		_, err = io.Copy(os.Stdout, resp.Body)
		return err
	}

	var tl service.Timeline
	if err := getJSONInto(base+"/api/v1/jobs/"+jobID+"/timeline", &tl); err != nil {
		return err
	}
	fmt.Printf("job %s  trace %s  state %s\n", tl.JobID, tl.TraceID, tl.State)
	fmt.Printf("wall %.3fs  queued %.3fs  running %.3fs  coverage %.0f%% (%d spans)\n",
		tl.WallSeconds, tl.QueuedSeconds, tl.RunningSeconds, 100*tl.SpanCoverage, tl.SpanCount)
	fmt.Printf("points: %d cached, %d computed\n", tl.CachedPoints, tl.ComputedPoints)
	if len(tl.Phases) > 0 {
		fmt.Println("phases:")
		for _, p := range tl.Phases {
			fmt.Printf("  %-10s %9.3fs\n", p.Name, p.DurationSeconds)
		}
	}
	if len(tl.Chunks) > 0 {
		fmt.Printf("chunks (%d):\n", len(tl.Chunks))
		chunks := append([]service.ChunkTiming(nil), tl.Chunks...)
		sort.Slice(chunks, func(i, k int) bool { return chunks[i].Start < chunks[k].Start })
		for _, ch := range chunks {
			fmt.Printf("  [%4d,%4d) %-16s %3d pts  %8.3fs\n",
				ch.Start, ch.End, ch.Worker, ch.Points, ch.TurnaroundSeconds)
		}
	}
	return nil
}

// fleetCmd implements 'sweep fleet [-daemon URL]': per-worker
// throughput profiles and the straggler baseline.
func fleetCmd(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	daemon := fs.String("daemon", "http://localhost:8080", "sweepd base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: sweep fleet [-daemon URL]")
	}
	var st service.FleetStats
	if err := getJSONInto(strings.TrimRight(*daemon, "/")+"/api/v1/fleet/stats", &st); err != nil {
		return err
	}
	if len(st.Workers) == 0 {
		fmt.Println("no workers have leased work yet")
		return nil
	}
	fmt.Printf("fleet: %d worker(s), median turnaround %.3fs over %d sample(s), straggler factor %.1fx, %d straggler(s)\n",
		len(st.Workers), st.FleetMedianTurnaroundSeconds, st.TurnaroundSamples,
		st.StragglerFactor, st.StragglersTotal)
	fmt.Printf("  %-16s %6s %8s %8s %6s %6s %10s %9s %9s\n",
		"worker", "active", "chunks", "points", "fails", "strag", "pts/s", "p50", "p95")
	for _, w := range st.Workers {
		fmt.Printf("  %-16s %6d %8d %8d %6d %6d %10.1f %8.3fs %8.3fs\n",
			w.Name, w.ActiveLeases, w.ChunksDone, w.PointsDone, w.Failures,
			w.Stragglers, w.EWMAPointsPerSec, w.TurnaroundP50Seconds, w.TurnaroundP95Seconds)
	}
	return nil
}

// getJSONInto fetches url and decodes the JSON payload into v.
func getJSONInto(url string, v any) error {
	hc := &http.Client{Timeout: 30 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return remoteError("fetch", resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// remoteError surfaces the daemon's error envelope
// {"error":{"code":...,"message":...}}, tolerating the legacy
// {"error":"..."} shape and bare bodies from older daemons.
func remoteError(op string, resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" {
		return fmt.Errorf("%s: %s: %s (%s)", op, resp.Status, env.Error.Message, env.Error.Code)
	}
	var legacy struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &legacy) == nil && legacy.Error != "" {
		return fmt.Errorf("%s: %s: %s", op, resp.Status, legacy.Error)
	}
	return fmt.Errorf("%s: %s: %s", op, resp.Status, strings.TrimSpace(string(raw)))
}
