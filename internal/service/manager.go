// Package service turns the one-shot sweep executor into a long-running
// job service: submitted sweeps wait in a priority FIFO queue, a
// bounded-concurrency scheduler runs them through the engine (optionally
// read-through a shared result store), and every job is observable
// (progress counters) and cancellable (per-job contexts) while the
// whole manager shuts down gracefully. cmd/sweepd fronts a Manager with
// an HTTP API; see NewHandler and docs/api.md.
//
// In distributed mode the manager stops evaluating in-process and
// becomes a dispatcher: each job's grid is cut into sweep.Chunks,
// workers lease chunks (Lease), keep them alive (Heartbeat) and post
// records back (Complete), and a worker that dies mid-chunk simply
// stops heartbeating — its lease expires and the chunk is re-queued for
// someone else. Workers are stateless: the per-point rng.Split
// determinism contract means any worker reproduces exactly the records
// a single-node run would, so completions are idempotent and an
// N-worker fleet's merged result is byte-identical to one process's.
// RunWorker is the worker loop, driven either in-process against a
// *Manager (cmd/sweepd's local-workers fallback) or over HTTP through
// *Client (cmd/sweepworker).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/sweep/store"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job kinds: a grid sweep of a registered scenario, or an adaptive
// multi-objective optimization over a registered search space.
const (
	KindSweep    = "sweep"
	KindOptimize = "optimize"
)

// Request describes one job submission.
type Request struct {
	// Kind selects the job type: "sweep" (default) enumerates a
	// scenario grid, "optimize" runs the adaptive multi-objective
	// optimizer over a search space.
	Kind string `json:"kind,omitempty"`
	// Scenario names a registered sweep scenario (kind "sweep").
	Scenario string `json:"scenario,omitempty"`
	// Spec is an inline declarative scenario specification (see the spec
	// package and docs/specs.md): a user-defined parameter grid that is
	// compiled at submission instead of naming a registry entry. Mutually
	// exclusive with Scenario and Space; valid for both kinds — a spec
	// sweep enumerates the grid, a spec optimize searches the axes'
	// ranges. The spec's budget, objectives and constraints apply unless
	// the request's own fields override them.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Budget is the Monte-Carlo effort: analytic, smoke or standard
	// (empty = analytic).
	Budget string `json:"budget"`
	// Seed roots the per-point deterministic sub-streams.
	Seed uint64 `json:"seed"`
	// Priority orders the queue: higher runs first, ties FIFO.
	Priority int `json:"priority"`
	// Workers bounds the job's point-evaluation pool (0 = NumCPU).
	Workers int `json:"workers"`

	// Optimize-only fields (kind "optimize").

	// Space names a registered search space.
	Space string `json:"space,omitempty"`
	// Objectives picks the Pareto axes by name (empty = the default
	// tx-power/decode-latency/noc-saturation trio).
	Objectives []string `json:"objectives,omitempty"`
	// Generations and Population shape the search (0 = the search
	// package defaults). Population must be even and at least 4.
	Generations int `json:"generations,omitempty"`
	Population  int `json:"population,omitempty"`
}

// Progress counts a job's points by fate.
type Progress struct {
	Total   int `json:"total"`
	Done    int `json:"done"`
	Cached  int `json:"cached"`
	Pending int `json:"pending"`
}

// JobView is an immutable snapshot of a job, safe to serialize.
type JobView struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Scenario is the grid identity records carry: the registry name for
	// registered sweeps, "spec/<hash>" for spec-defined ones.
	Scenario string `json:"scenario,omitempty"`
	// Spec is the user-chosen name of the submitted spec document, empty
	// for registry jobs.
	Spec        string     `json:"spec,omitempty"`
	Space       string     `json:"space,omitempty"`
	Objectives  []string   `json:"objectives,omitempty"`
	Generations int        `json:"generations,omitempty"`
	Population  int        `json:"population,omitempty"`
	Budget      string     `json:"budget"`
	Seed        uint64     `json:"seed"`
	Priority    int        `json:"priority"`
	State       State      `json:"state"`
	Progress    Progress   `json:"progress"`
	Error       string     `json:"error,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// job is the manager's mutable record of one submission.
type job struct {
	id       string
	seq      uint64
	kind     string
	req      Request
	scenario sweep.Scenario
	budget   sweep.Budget
	pts      []sweep.Point
	total    int
	// scenarioName is the scenario string in records, leases and cache
	// keys: the grid scenario's name for sweeps, "optimize/<space>" for
	// optimizations.
	scenarioName string
	// keyer computes the job's cache keys; (scenario, budget, seed) are
	// fixed per job, so the key envelope renders once. Set after
	// scenarioName, read concurrently by the dispatcher's cache
	// pre-pass and chunk completions (Keyer is immutable).
	keyer *sweep.Keyer
	// searchOpts holds the normalized optimization parameters
	// (kind "optimize"); Seed/Workers/Evaluate/OnGeneration are filled
	// in at run time.
	searchOpts search.Options
	// specJSON is the canonical rendering of a spec-defined sweep's
	// specification ("" otherwise): it rides grid leases so stateless
	// workers can rebuild a grid no registry knows. Optimizer leases ship
	// explicit points instead and never need it.
	specJSON string
	// specName is the user-chosen name of the submitted spec document,
	// "" for registry jobs. Display only — the grid identity is
	// scenarioName's content hash.
	specName string
	// feasible is the spec's constraint conjunction (nil = admit every
	// Err-free record). It shapes Pareto marking and optimizer ranking at
	// assembly time only, never record bytes or cache keys.
	feasible func(sweep.Record) bool
	// traceID and rootSpanID are minted at Submit when the manager has
	// a trace collector ("" otherwise) and never change, so they are
	// readable without j.mu: traceID names the job's distributed trace
	// and rides every lease, rootSpanID is the root span the phase and
	// chunk spans parent under.
	traceID    string
	rootSpanID string

	// done and cached are updated from sweep workers; everything under
	// mu is updated by the scheduler and Cancel.
	done   atomic.Int64
	cached atomic.Int64

	mu        sync.Mutex
	state     State
	errMsg    string
	result    *sweep.Result
	gens      []search.Generation
	cancel    context.CancelFunc
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// view snapshots the job.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	done := int(j.done.Load())
	v := JobView{
		ID:          j.id,
		Kind:        j.kind,
		Spec:        j.specName,
		Budget:      j.budget.Name,
		Seed:        j.req.Seed,
		Priority:    j.req.Priority,
		State:       j.state,
		Error:       j.errMsg,
		SubmittedAt: j.submitted,
		Progress: Progress{
			Total:   j.total,
			Done:    done,
			Cached:  int(j.cached.Load()),
			Pending: j.total - done,
		},
	}
	if j.kind == KindSweep {
		v.Scenario = j.scenarioName
	}
	if j.kind == KindOptimize {
		v.Space = j.searchOpts.Space.Name
		for _, o := range j.searchOpts.Objectives {
			v.Objectives = append(v.Objectives, o.Name)
		}
		v.Generations = j.searchOpts.Generations
		v.Population = j.searchOpts.Population
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}

// Sentinel errors of the manager API.
var (
	ErrShutdown   = errors.New("service: manager is shut down")
	ErrUnknownJob = errors.New("service: unknown job")
	ErrNotDone    = errors.New("service: job has no result yet")
	// ErrBadRequest marks submissions rejected before queueing (unknown
	// kind, malformed shape); the HTTP layer maps it to 400.
	ErrBadRequest = errors.New("service: invalid request")
	// ErrBadSpec marks submissions whose inline spec fails to parse,
	// validate or compile; the HTTP layer maps it to 400 with the
	// "spec_invalid" error code, and the wrapped message names the
	// offending field.
	ErrBadSpec = errors.New("service: invalid spec")
)

// Options tunes a Manager.
type Options struct {
	// JobWorkers bounds how many jobs run concurrently (default 2).
	// Each job additionally parallelizes across grid points.
	JobWorkers int
	// Cache, when non-nil, is threaded into every job's sweep.Config so
	// all jobs dedup against one shared result store.
	Cache sweep.Cache
	// RetainJobs caps how many jobs (and their results) the manager
	// keeps: once exceeded, the oldest terminal jobs are evicted at the
	// next Submit. Queued and running jobs are never evicted. Default
	// 256; a long-lived daemon stays bounded while the result store
	// keeps the computed points themselves forever.
	RetainJobs int
	// Distributed switches job execution from the in-process sweep
	// engine to the chunk dispatcher: jobs are cut into Chunks and
	// served to workers over Lease/Heartbeat/Complete (in-process via
	// RunWorker(m) or remote via cmd/sweepworker). Off, jobs run
	// in-process exactly as before.
	Distributed bool
	// ChunkPoints caps how many grid points one lease carries
	// (default 4). Smaller chunks spread a job across more workers;
	// larger chunks amortise lease round-trips.
	ChunkPoints int
	// LeaseTTL is how long a worker owns a leased chunk before the
	// dispatcher re-queues it for someone else; heartbeats extend it
	// (default 30s).
	LeaseTTL time.Duration
	// Clock stubs time.Now in tests (nil = time.Now).
	Clock func() time.Time
	// StoreStats, when non-nil, snapshots the backing result store's
	// aggregate and per-shard counters. It powers GET /api/v1/store and
	// the healthz cache-hit-rate field; a daemon running without a
	// persistent store leaves it nil and the endpoint answers 404.
	StoreStats func() (store.Stats, []store.Stats)
	// Metrics is the registry the manager's metric families register on
	// (nil = a private registry). cmd/sweepd passes one registry shared
	// with the result store so GET /metrics exposes every layer.
	Metrics *obs.Registry
	// Trace, when non-nil, collects distributed-trace spans: every
	// submitted job gets a trace ID, leases carry it to workers, and
	// the job's phase, chunk and worker spans land in this bounded ring
	// — served at GET /api/v1/jobs/{id}/trace and derived into the
	// timeline endpoint. Nil disables tracing; like Metrics and Logger
	// it only observes, so results are byte-identical either way.
	Trace *obs.Collector
	// Logger receives structured job and lease lifecycle events
	// (nil = discard). Metrics observe, logs narrate; neither influences
	// results.
	Logger *slog.Logger
}

// Manager owns the queue, the scheduler pool and the job table.
type Manager struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	met    *serviceMetrics
	log    *slog.Logger

	// runSweep is sweep.Run, replaceable by tests that need jobs with
	// controlled timing.
	runSweep func(ctx context.Context, sc sweep.Scenario, cfg sweep.Config) (*sweep.Result, error)

	// dispatch is non-nil in distributed mode: it owns the chunk queue
	// and lease table served to workers.
	dispatch *dispatcher

	// started anchors the uptime gauge and the /healthz uptime field.
	started time.Time

	mu     sync.Mutex
	cond   *sync.Cond
	queue  jobQueue
	jobs   map[string]*job
	order  []string
	seq    uint64
	closed bool
}

// New starts a Manager with opts.JobWorkers scheduler goroutines.
func New(opts Options) *Manager {
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 2
	}
	if opts.RetainJobs <= 0 {
		opts.RetainJobs = 256
	}
	if opts.ChunkPoints <= 0 {
		opts.ChunkPoints = 4
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := opts.Logger
	if logger == nil {
		logger = obs.DiscardLogger()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:     opts,
		met:      newServiceMetrics(reg),
		log:      logger,
		jobs:     make(map[string]*job),
		runSweep: sweep.Run,
	}
	m.ctx = ctx
	m.cancel = cancel
	m.started = opts.Clock()
	// Build identity and uptime: constant facts an operator joins
	// against, not per-request series, so one gauge each.
	build := obs.Build()
	reg.Gauge("sweepd_build_info",
		"Build metadata of the serving binary; the value is always 1.",
		"engine", "go_version", "revision").
		With(strconv.Itoa(sweep.EngineVersion), build.GoVersion, build.Revision).Set(1)
	reg.GaugeFunc("sweepd_uptime_seconds",
		"Seconds since the job manager started.", nil,
		func(emit func(float64, ...string)) {
			emit(m.Uptime().Seconds())
		})
	reg.GaugeFunc("sweepd_job_queue_depth",
		"Jobs waiting in the priority queue.", nil,
		func(emit func(float64, ...string)) {
			queued, _ := m.InFlight()
			emit(float64(queued))
		})
	reg.GaugeFunc("sweepd_jobs_running",
		"Jobs currently executing.", nil,
		func(emit func(float64, ...string)) {
			_, running := m.InFlight()
			emit(float64(running))
		})
	if opts.Distributed {
		m.dispatch = newDispatcher(opts.LeaseTTL, opts.Clock, m.met, logger, opts.Trace)
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < opts.JobWorkers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit validates the request, enqueues a job and returns its snapshot.
func (m *Manager) Submit(req Request) (JobView, error) {
	kind := req.Kind
	if kind == "" {
		kind = KindSweep
	}
	// An inline spec is parsed (strictly: unknown fields are submission
	// errors) and validated before anything is queued, so a bad document
	// fails fast with the spec package's actionable message.
	var userSpec *spec.Spec
	if len(req.Spec) > 0 {
		if req.Scenario != "" || req.Space != "" {
			return JobView{}, fmt.Errorf("%w: an inline spec must not also name a registered scenario or space", ErrBadRequest)
		}
		sp, err := spec.Parse(req.Spec)
		if err != nil {
			return JobView{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		userSpec = sp
	}
	// The request's budget wins when set; a spec submission without one
	// runs at the spec's own budget (default analytic).
	budgetName := req.Budget
	if budgetName == "" && userSpec != nil {
		budgetName = userSpec.Budget
	}
	budget, err := sweep.ParseBudget(budgetName)
	if err != nil {
		return JobView{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	j := &job{kind: kind, req: req, budget: budget, state: StateQueued}
	if userSpec != nil {
		j.specName = userSpec.Name
	}
	var pts []sweep.Point
	switch kind {
	case KindSweep:
		var sc sweep.Scenario
		if userSpec != nil {
			compiled, err := userSpec.Compile()
			if err != nil {
				return JobView{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
			}
			sc = compiled.Scenario
			j.specJSON = string(userSpec.Canonical())
			j.feasible = compiled.Feasible
		} else {
			sc, err = sweep.Get(req.Scenario)
			if err != nil {
				return JobView{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
		}
		pts = sc.Points()
		j.scenario = sc
		j.scenarioName = sc.Name
		j.total = len(pts)
	case KindOptimize:
		var sp search.Space
		var objs []search.Objective
		if userSpec != nil {
			sp, err = userSpec.Space()
			if err != nil {
				return JobView{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
			}
			j.feasible, err = userSpec.FeasibleFunc()
			if err != nil {
				return JobView{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
			}
			if len(req.Objectives) > 0 {
				objs, err = search.ParseObjectives(req.Objectives)
			} else {
				objs, err = userSpec.SearchObjectives()
			}
		} else {
			sp, err = search.Get(req.Space)
			if err != nil {
				return JobView{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
			objs, err = search.ParseObjectives(req.Objectives)
		}
		if err != nil {
			return JobView{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		opts := search.Options{
			Space:       sp,
			Objectives:  objs,
			Seed:        req.Seed,
			Generations: req.Generations,
			Population:  req.Population,
			Budget:      budget,
			Workers:     req.Workers,
			Feasible:    j.feasible,
		}
		if err := opts.Normalize(); err != nil {
			return JobView{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		j.searchOpts = opts
		j.scenarioName = sp.ScenarioName()
		j.total = opts.Generations * opts.Population
	default:
		return JobView{}, fmt.Errorf("%w: unknown job kind %q (sweep|optimize)", ErrBadRequest, req.Kind)
	}
	j.keyer = sweep.NewKeyer(j.scenarioName, j.budget, req.Seed)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobView{}, ErrShutdown
	}
	m.seq++
	j.id = fmt.Sprintf("job-%06d", m.seq)
	j.seq = m.seq
	j.submitted = m.opts.Clock()
	if m.opts.Trace.Enabled() {
		j.traceID = obs.NewTraceID()
		j.rootSpanID = obs.NewSpanID()
	}
	if m.dispatch != nil {
		// Only the dispatcher reads the grid; in-process jobs must not
		// pin it in the retained-jobs table for their whole lifetime.
		j.pts = pts
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.evictLocked()
	m.queue.push(j)
	m.cond.Signal()
	m.met.jobsSubmitted.With(kind).Inc()
	m.log.Info("job submitted",
		"job_id", j.id, "kind", kind, "scenario", j.scenarioName,
		"budget", j.budget.Name, "seed", req.Seed, "priority", req.Priority,
		"points", j.total)
	return j.view(), nil
}

// InFlight counts the jobs that have not yet reached a terminal state:
// queued (waiting in the priority queue) and running. cmd/sweepd reports
// both at SIGTERM so operators can see how much work a drain is waiting
// on; the queue-depth and jobs-running gauges read the same numbers.
func (m *Manager) InFlight() (queued, running int) {
	m.mu.Lock()
	js := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	m.mu.Unlock()
	for _, j := range js {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
		j.mu.Unlock()
	}
	return queued, running
}

// noteFinishedLocked books the metrics and the structured log line for a
// job that just reached a terminal state. Called with j.mu held.
func (m *Manager) noteFinishedLocked(j *job) {
	m.met.jobFinished(j.kind, j.state, j.started, j.finished)
	attrs := []any{
		"job_id", j.id, "kind", j.kind, "scenario", j.scenarioName,
		"state", string(j.state),
		"points_done", j.done.Load(), "points_cached", j.cached.Load(),
	}
	if !j.started.IsZero() {
		attrs = append(attrs, "duration", j.finished.Sub(j.started))
	}
	if j.errMsg != "" {
		attrs = append(attrs, "error", j.errMsg)
	}
	m.log.Info("job finished", attrs...)
	if j.traceID != "" && m.opts.Trace.Enabled() {
		// The root span closes the trace: submitted to terminal, with
		// every phase and chunk span parented under it.
		m.opts.Trace.Add(obs.SpanRecord{
			TraceID: j.traceID,
			SpanID:  j.rootSpanID,
			Name:    "job",
			JobID:   j.id,
			Start:   j.submitted,
			End:     j.finished,
			Attrs:   map[string]string{"kind": j.kind, "state": string(j.state)},
		})
	}
}

// Uptime is how long the manager has been running (by its own clock;
// never negative even under a stubbed test clock).
func (m *Manager) Uptime() time.Duration {
	d := m.opts.Clock().Sub(m.started)
	if d < 0 {
		return 0
	}
	return d
}

// recordPhase books one daemon-side phase span of the job's trace,
// parented under the root span. No-op when tracing is off or the job
// predates the collector; callers on hot paths still guard on
// j.traceID before building attribute maps this would drop.
func (m *Manager) recordPhase(j *job, name string, start, end time.Time, attrs map[string]string) {
	if j.traceID == "" || !m.opts.Trace.Enabled() {
		return
	}
	m.opts.Trace.Add(obs.SpanRecord{
		TraceID:  j.traceID,
		SpanID:   obs.NewSpanID(),
		ParentID: j.rootSpanID,
		Name:     name,
		JobID:    j.id,
		Start:    start,
		End:      end,
		Attrs:    attrs,
	})
}

// evictLocked drops the oldest terminal jobs once the table exceeds
// RetainJobs, keeping the daemon's memory bounded. Live (queued or
// running) jobs are always kept, even past the cap.
func (m *Manager) evictLocked() {
	excess := len(m.order) - m.opts.RetainJobs
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		j.mu.Lock()
		evict := excess > 0 && j.state.Terminal()
		j.mu.Unlock()
		if evict {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (JobView, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	return j.view(), nil
}

// StoreStats snapshots the backing result store's aggregate and
// per-shard counters. ok is false when the manager runs without a
// persistent store (Options.StoreStats nil).
func (m *Manager) StoreStats() (total store.Stats, shards []store.Stats, ok bool) {
	if m.opts.StoreStats == nil {
		return store.Stats{}, nil, false
	}
	total, shards = m.opts.StoreStats()
	return total, shards, true
}

// List returns snapshots of every job in submission order.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	js := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobView, len(js))
	for i, j := range js {
		out[i] = j.view()
	}
	return out
}

// maxListLimit caps one page of the jobs listing; requests asking for
// more are clamped, so a daemon retaining thousands of jobs never
// serializes them all into one response.
const maxListLimit = 1000

// defaultListLimit is the page size when the client names none.
const defaultListLimit = 100

// ListQuery filters and paginates the jobs listing.
type ListQuery struct {
	// State keeps only jobs in this lifecycle state ("" = all).
	State State
	// Kind keeps only jobs of this kind ("" = all).
	Kind string
	// Limit caps the page size (0 = defaultListLimit, clamped to
	// maxListLimit).
	Limit int
	// Cursor resumes after the job named by a previous page's
	// NextCursor ("" = from the beginning). Job ids are zero-padded and
	// minted in submission order, so the cursor survives eviction of the
	// job it names: the page resumes at the first retained job after it.
	Cursor string
}

// JobPage is one page of the jobs listing.
type JobPage struct {
	Jobs []JobView `json:"jobs"`
	// NextCursor resumes the listing after this page's last job; empty
	// when the listing is exhausted.
	NextCursor string `json:"next_cursor,omitempty"`
}

// ListPage returns one filtered page of jobs in submission order.
// Filters apply before pagination, so a page is full whenever enough
// matching jobs remain — a client walking `state=failed` never receives
// empty pages with cursors just because healthy jobs sit in between.
func (m *Manager) ListPage(q ListQuery) JobPage {
	limit := q.Limit
	if limit <= 0 {
		limit = defaultListLimit
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}
	m.mu.Lock()
	js := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		// Submission order and lexicographic id order coincide (ids are
		// zero-padded sequence numbers), so "after the cursor" is a
		// string comparison even when the cursor's job was evicted.
		if q.Cursor != "" && id <= q.Cursor {
			continue
		}
		js = append(js, m.jobs[id])
	}
	m.mu.Unlock()
	page := JobPage{Jobs: []JobView{}}
	for _, j := range js {
		v := j.view()
		if q.State != "" && v.State != q.State {
			continue
		}
		if q.Kind != "" && v.Kind != q.Kind {
			continue
		}
		if len(page.Jobs) == limit {
			// One more match exists beyond the full page: point the
			// cursor at the page's last job and stop.
			page.NextCursor = page.Jobs[limit-1].ID
			break
		}
		page.Jobs = append(page.Jobs, v)
	}
	return page
}

// Result returns the completed sweep of a done job.
func (m *Manager) Result(id string) (*sweep.Result, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, fmt.Errorf("%w (%s is %s)", ErrNotDone, id, j.state)
	}
	return j.result, nil
}

// Cancel stops a job: a queued job is marked cancelled before it ever
// runs, a running job has its context cancelled. Cancelling a job that
// already reached a terminal state is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.errMsg = "cancelled while queued"
		j.finished = m.opts.Clock()
		m.noteFinishedLocked(j)
	case StateRunning:
		j.cancel()
	}
	return nil
}

// Shutdown stops the manager: no new submissions, every queued job is
// cancelled, every running job's context is cancelled, and the call
// blocks until the scheduler pool drains or ctx expires. It is
// idempotent.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	for j := m.queue.pop(); j != nil; j = m.queue.pop() {
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateCancelled
			j.errMsg = "cancelled at shutdown"
			j.finished = m.opts.Clock()
			m.noteFinishedLocked(j)
		}
		j.mu.Unlock()
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.cancel()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown: %w", ctx.Err())
	}
}

// worker is one scheduler goroutine: it pops the highest-priority job
// and drives it to a terminal state.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for m.queue.Len() == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.queue.Len() == 0 && m.closed {
			m.mu.Unlock()
			return
		}
		j := m.queue.pop()
		m.mu.Unlock()
		switch {
		case j.kind == KindOptimize:
			m.runOptimize(j)
		case m.dispatch != nil:
			m.runDistributed(j)
		default:
			m.run(j)
		}
	}
}

// run executes one job through the sweep engine.
func (m *Manager) run(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting in the queue.
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.ctx)
	j.cancel = cancel
	j.state = StateRunning
	j.started = m.opts.Clock()
	started, submitted := j.started, j.submitted
	j.mu.Unlock()
	defer cancel()
	m.log.Info("job started", "job_id", j.id, "kind", j.kind, "scenario", j.scenarioName)
	m.recordPhase(j, "queued", submitted, started, nil)

	res, err := func() (res *sweep.Result, err error) {
		// A panicking point evaluation (sweep.Map re-raises worker
		// panics) must fail this job, not take down the scheduler
		// goroutine and with it the whole daemon.
		defer func() {
			if r := recover(); r != nil {
				m.met.jobPanics.Inc()
				res, err = nil, fmt.Errorf("service: job panicked: %v", r)
			}
		}()
		return m.runSweep(ctx, j.scenario, sweep.Config{
			Workers:  j.req.Workers,
			Seed:     j.req.Seed,
			Budget:   j.budget,
			Cache:    m.opts.Cache,
			Feasible: j.feasible,
			OnPoint: func(_ int, cached bool) {
				j.done.Add(1)
				if cached {
					j.cached.Add(1)
				}
				m.met.point(cached)
			},
		})
	}()

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = m.opts.Clock()
	m.recordPhase(j, "evaluate", started, j.finished, nil)
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
	case ctx.Err() != nil:
		j.state = StateCancelled
		j.errMsg = "cancelled: " + ctx.Err().Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	m.noteFinishedLocked(j)
}

// runOptimize executes one optimization job through the adaptive
// search engine. The NSGA-II coordinator always runs on this scheduler
// goroutine; only the per-generation evaluation changes with the
// deployment — in-process through sweep.EvaluatePoints, or chunked over
// the worker fleet in distributed mode. Either way the result is a
// pure function of the request, so the two deployments answer
// byte-identically.
func (m *Manager) runOptimize(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting in the queue.
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.ctx)
	j.cancel = cancel
	j.state = StateRunning
	j.started = m.opts.Clock()
	started, submitted := j.started, j.submitted
	j.mu.Unlock()
	defer cancel()
	m.log.Info("job started", "job_id", j.id, "kind", j.kind, "scenario", j.scenarioName)
	m.recordPhase(j, "queued", submitted, started, nil)

	opts := j.searchOpts
	opts.OnGeneration = func(g search.Generation) {
		j.mu.Lock()
		j.gens = append(j.gens, g)
		j.mu.Unlock()
	}
	if m.dispatch != nil {
		opts.Evaluate = m.distEvaluator(j)
		// Whatever way the run ends, withdraw any chunks still queued or
		// leased and forget the job's lease ids.
		defer m.dispatch.endJob(j)
	} else {
		opts.Evaluate = search.InProcessEvaluator(
			opts.Space, opts.Seed, opts.Budget, opts.Workers, m.opts.Cache,
			func(_ int, cached bool) {
				j.done.Add(1)
				if cached {
					j.cached.Add(1)
				}
				m.met.point(cached)
			})
	}

	res, err := func() (res *search.Result, err error) {
		// Contain panics exactly like the sweep path: a blown-up point
		// evaluation fails this job, not the daemon.
		defer func() {
			if r := recover(); r != nil {
				m.met.jobPanics.Inc()
				res, err = nil, fmt.Errorf("service: job panicked: %v", r)
			}
		}()
		return search.Optimize(ctx, opts)
	}()

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = m.opts.Clock()
	if m.dispatch == nil {
		// Distributed generations already booked one dispatch span
		// each; in-process evaluation is one opaque phase.
		m.recordPhase(j, "evaluate", started, j.finished, nil)
	}
	switch {
	case err == nil:
		j.state = StateDone
		// The optimizer's archive is shaped like a sweep result —
		// records plus front indices — so every result endpoint
		// (records stream, Pareto front) serves both job kinds.
		j.result = &sweep.Result{
			Scenario:       j.scenarioName,
			Description:    opts.Space.Description,
			Seed:           res.Seed,
			Budget:         res.Budget,
			Records:        res.Records,
			ParetoIndices:  res.FrontIndices,
			CachedPoints:   res.CachedPoints,
			ComputedPoints: res.ComputedPoints,
		}
	case ctx.Err() != nil:
		j.state = StateCancelled
		j.errMsg = "cancelled: " + ctx.Err().Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	m.noteFinishedLocked(j)
}

// Generations returns an optimization job's per-generation summaries
// starting at offset from, plus whether the job has reached a terminal
// state — the pair a streaming client needs to decide between "emit
// and keep following" and "emit and hang up". Sweep jobs always return
// an empty slice.
func (m *Manager) Generations(id string, from int) ([]search.Generation, bool, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	terminal := j.state.Terminal()
	if from < 0 {
		from = 0
	}
	if from >= len(j.gens) {
		return nil, terminal, nil
	}
	out := make([]search.Generation, len(j.gens)-from)
	copy(out, j.gens[from:])
	return out, terminal, nil
}
