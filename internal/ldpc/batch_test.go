package ldpc

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// confLLRs builds a deterministic batch of channel LLR vectors. scale
// positions the batch in the decoder's operating regimes: ~1 gives a
// mix of converging and failing lanes, >>1 drives the saturated
// min-sum shortcut, <<1 keeps every lane non-converged at MaxIter.
func confLLRs(seed uint64, count, n int, scale, noise float64) [][]float64 {
	out := make([][]float64, count)
	for i := range out {
		stream := rng.New(seed).Split(uint64(i) + 1)
		llr := make([]float64, n)
		for v := range llr {
			llr[v] = scale * (1 + noise*stream.Norm())
		}
		out[i] = llr
	}
	return out
}

// assertLaneMatchesScalar compares one batch lane against a fresh
// scalar decode of the same input, bit for bit: hard decisions,
// convergence flag, iteration count and the full posterior vector.
func assertLaneMatchesScalar(t *testing.T, code *Code, alg Algorithm, sched Schedule, maxIter int,
	b *BatchDecoder, res BatchResult, lane int, llr []float64) {
	t.Helper()
	d := NewDecoder(code, alg, maxIter)
	d.Sched = sched
	want := d.Decode(llr)
	if res.Converged[lane] != want.Converged {
		t.Fatalf("lane %d: converged=%v, scalar=%v", lane, res.Converged[lane], want.Converged)
	}
	if res.Iterations[lane] != want.Iterations {
		t.Fatalf("lane %d: iterations=%d, scalar=%d", lane, res.Iterations[lane], want.Iterations)
	}
	for v := 0; v < code.NumVars; v++ {
		if res.Hard[lane][v] != want.Hard[v] {
			t.Fatalf("lane %d: hard[%d]=%d, scalar=%d", lane, v, res.Hard[lane][v], want.Hard[v])
		}
		got := b.posterior[v*b.stride+lane]
		ref := d.Posterior()[v]
		if math.Float64bits(got) != math.Float64bits(ref) {
			t.Fatalf("lane %d: posterior[%d]=%x (%g), scalar=%x (%g)",
				lane, v, math.Float64bits(got), got, math.Float64bits(ref), ref)
		}
	}
}

// TestDecodeBatchMatchesScalar is the decoder conformance suite: every
// algorithm x schedule variant, across full, single-lane and ragged
// batch sizes, in the normal, saturated-shortcut and non-converging
// operating regimes, must be bit-exact with the scalar Decode oracle.
func TestDecodeBatchMatchesScalar(t *testing.T) {
	coupled := LiftConvolutional(PaperSpreading(), 8, 13, 3)
	block := Lift(Regular48(), 24, 9)
	regimes := []struct {
		name         string
		scale, noise float64
		wantStuck    bool // at least one lane must hit MaxIter unconverged
	}{
		{"mixed", 4, 1.1, false},
		{"saturated", 40, 0.2, false},
		{"nonconverging", 0.3, 3.5, true},
	}
	for _, tc := range []struct {
		name string
		code *Code
	}{{"coupled", coupled}, {"block", block}} {
		for _, alg := range []Algorithm{SumProduct, MinSum} {
			for _, sched := range []Schedule{Flooding, Layered} {
				for _, size := range []int{1, 16, 64, 23} {
					for _, reg := range regimes {
						name := tc.name + "/" + alg.String() + "/" + sched.String() + "/" +
							reg.name + "/" + string(rune('0'+size/10)) + string(rune('0'+size%10))
						t.Run(name, func(t *testing.T) {
							t.Parallel()
							const maxIter = 8
							llrs := confLLRs(uint64(size)*1000+uint64(alg), size, tc.code.NumVars, reg.scale, reg.noise)
							b := NewBatchDecoder(tc.code, alg, maxIter, size)
							b.Sched = sched
							res := b.Decode(llrs)
							stuck := false
							for lane := range llrs {
								if !res.Converged[lane] {
									stuck = true
								}
								assertLaneMatchesScalar(t, tc.code, alg, sched, maxIter, b, res, lane, llrs[lane])
							}
							if reg.wantStuck && !stuck {
								t.Fatal("non-converging regime produced no max-iteration lane; regime coverage lost")
							}
						})
					}
				}
			}
		}
	}
}

// TestDecodeBatchReuse decodes two different batches (of different
// sizes) through one BatchDecoder: stale messages, hard bits or lane
// state from the first call must not leak into the second.
func TestDecodeBatchReuse(t *testing.T) {
	code := LiftConvolutional(PaperSpreading(), 8, 13, 3)
	b := NewBatchDecoder(code, SumProduct, 8, 32)
	first := confLLRs(101, 32, code.NumVars, 0.5, 2.5) // leaves messages mid-flight everywhere
	b.Decode(first)
	second := confLLRs(202, 11, code.NumVars, 4, 1.1)
	res := b.Decode(second)
	for lane := range second {
		assertLaneMatchesScalar(t, code, SumProduct, Flooding, 8, b, res, lane, second[lane])
	}
}

// TestWindowDecodeBatchMatchesScalar pins the batched sliding-window
// decoder to the scalar WindowDecoder.Decode, per lane and per variant.
func TestWindowDecodeBatchMatchesScalar(t *testing.T) {
	code := LiftConvolutional(PaperSpreading(), 8, 13, 3)
	for _, alg := range []Algorithm{SumProduct, MinSum} {
		for _, sched := range []Schedule{Flooding, Layered} {
			t.Run(alg.String()+"/"+sched.String(), func(t *testing.T) {
				t.Parallel()
				const maxIter, w = 6, 4
				llrs := confLLRs(7+uint64(alg)*13+uint64(sched), 17, code.NumVars, 2.2, 1.4)
				wd := NewWindowDecoder(code, w, alg, maxIter)
				wd.SetSchedule(sched)
				got := wd.DecodeBatch(llrs)
				ref := NewWindowDecoder(code, w, alg, maxIter)
				ref.SetSchedule(sched)
				for lane, llr := range llrs {
					want := ref.Decode(llr)
					for v := range want {
						if got[lane][v] != want[v] {
							t.Fatalf("%v/%v lane %d: hard[%d]=%d, scalar=%d",
								alg, sched, lane, v, got[lane][v], want[v])
						}
					}
				}
			})
		}
	}
}

// TestBatchDecoderLaneBounds pins the panic contract on batch sizes.
func TestBatchDecoderLaneBounds(t *testing.T) {
	code := Lift(Regular48(), 12, 1)
	b := NewBatchDecoder(code, SumProduct, 4, 8)
	if b.Lanes() != 8 {
		t.Fatalf("Lanes() = %d, want 8", b.Lanes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized batch did not panic")
		}
	}()
	b.Decode(make([][]float64, 9))
}

// fuzzCode is the small shared code of the decode fuzz harness (built
// once; the lift search is deterministic).
var fuzzCode = LiftConvolutional(PaperSpreading(), 4, 7, 3)

// FuzzDecodeBatchMatchesScalar feeds raw fuzzed bytes reinterpreted as
// float64 channel LLRs — including NaN, infinities, denormals and the
// saturation/zero-product boundary regions — through both the batch
// and the scalar decoder and requires bit-identical results.
func FuzzDecodeBatchMatchesScalar(f *testing.F) {
	n := fuzzCode.NumVars
	f.Add([]byte{0x00}, uint8(3), false, false)
	f.Add([]byte{0x7f, 0xf0, 0, 0, 0, 0, 0, 0, 0x3f, 0xe0, 0, 0, 0, 0, 0, 1}, uint8(4), false, false) // +Inf / ~0.5 mix
	f.Add([]byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 1}, uint8(2), true, false)                                // NaN payloads
	f.Add([]byte{0x40, 0x30, 0, 0, 0, 0, 0, 0}, uint8(7), false, true)                                // 16.0 everywhere: saturated
	f.Add([]byte{0x3c, 0x00, 0, 0, 0, 0, 0, 0, 0x80}, uint8(5), true, true)                           // tiny magnitudes: zero-product path
	f.Fuzz(func(t *testing.T, data []byte, lanes uint8, minsum, layered bool) {
		if len(data) == 0 {
			t.Skip()
		}
		nLanes := int(lanes%16) + 1
		llrs := make([][]float64, nLanes)
		for l := range llrs {
			llr := make([]float64, n)
			for v := range llr {
				var u uint64
				for k := 0; k < 8; k++ {
					u = u<<8 | uint64(data[(l*n*8+v*8+k)%len(data)])
				}
				llr[v] = math.Float64frombits(u)
			}
			llrs[l] = llr
		}
		alg, sched := SumProduct, Flooding
		if minsum {
			alg = MinSum
		}
		if layered {
			sched = Layered
		}
		const maxIter = 4
		b := NewBatchDecoder(fuzzCode, alg, maxIter, nLanes)
		b.Sched = sched
		res := b.Decode(llrs)
		d := NewDecoder(fuzzCode, alg, maxIter)
		d.Sched = sched
		for lane, llr := range llrs {
			want := d.Decode(llr)
			if res.Converged[lane] != want.Converged || res.Iterations[lane] != want.Iterations {
				t.Fatalf("lane %d: (converged, iters) = (%v, %d), scalar (%v, %d)",
					lane, res.Converged[lane], res.Iterations[lane], want.Converged, want.Iterations)
			}
			for v := 0; v < n; v++ {
				if res.Hard[lane][v] != want.Hard[v] {
					t.Fatalf("lane %d: hard[%d]=%d, scalar=%d", lane, v, res.Hard[lane][v], want.Hard[v])
				}
				// Posteriors must agree bit-for-bit, except that two NaNs
				// of any payload count as equal: NaN payload propagation
				// depends on the operand order of commutative float ops,
				// which the Go spec leaves to the compiler (it even shifts
				// with fuzz coverage instrumentation), so the scalar
				// oracle's own payloads are not build-stable. Payloads
				// never influence control flow — every comparison treats
				// all NaNs identically — so NaN-ness is the invariant.
				gf, rf := b.posterior[v*b.stride+lane], d.Posterior()[v]
				if g, r := math.Float64bits(gf), math.Float64bits(rf); g != r && !(math.IsNaN(gf) && math.IsNaN(rf)) {
					t.Fatalf("lane %d: posterior[%d] bits %x, scalar %x", lane, v, g, r)
				}
			}
		}
	})
}
