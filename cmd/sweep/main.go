// Command sweep explores the wireless-interconnect design space: it
// runs named scenario grids through the parallel sweep executor and
// writes structured results with a Pareto front.
//
// Usage:
//
//	sweep list
//	sweep run -scenario <name> [-out results.json] [-csv results.csv]
//	          [-workers N] [-seed S] [-budget analytic|smoke|standard]
//	          [-timeout 10m]
//
// Records are deterministic for a fixed seed: running with -workers 1
// and -workers N yields byte-identical files.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/sweep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		if err := run(os.Args[2:]); err != nil {
			// Package errors already carry their prefix; add ours only
			// to bare messages.
			if strings.HasPrefix(err.Error(), "sweep:") {
				fmt.Fprintln(os.Stderr, err)
			} else {
				fmt.Fprintln(os.Stderr, "sweep:", err)
			}
			os.Exit(1)
		}
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func list() {
	fmt.Println("registered scenarios:")
	for _, name := range sweep.Names() {
		sc, err := sweep.Get(name)
		if err != nil {
			continue
		}
		fmt.Printf("  %-20s %3d points  %s\n", name, len(sc.Points()), sc.Description)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scenario := fs.String("scenario", "", "scenario name (see 'sweep list')")
	out := fs.String("out", "", "JSON output path ('-' for stdout)")
	csvOut := fs.String("csv", "", "optional CSV output path")
	workers := fs.Int("workers", 0, "worker pool size (0 = NumCPU); records do not depend on it")
	seed := fs.Uint64("seed", 1, "root seed of the per-point random sub-streams")
	budgetName := fs.String("budget", "analytic", "Monte-Carlo effort: analytic, smoke or standard")
	timeout := fs.Duration("timeout", 0, "overall deadline (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenario == "" {
		return fmt.Errorf("missing -scenario (see 'sweep list')")
	}
	sc, err := sweep.Get(*scenario)
	if err != nil {
		return err
	}
	budget, err := sweep.ParseBudget(*budgetName)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	res, err := sweep.Run(ctx, sc, sweep.Config{Workers: *workers, Seed: *seed, Budget: budget})
	if err != nil {
		return err
	}

	fmt.Printf("scenario %s: %d points, budget %s, %.1fs\n",
		res.Scenario, len(res.Records), res.Budget, time.Since(start).Seconds())
	for _, r := range res.Records {
		fmt.Println(" ", r.Summary())
	}
	fmt.Printf("pareto front (ptx min, decode latency min, NoC saturation max): %d of %d points\n",
		len(res.ParetoIndices), len(res.Records))
	for _, i := range res.ParetoIndices {
		fmt.Println("  ", res.Records[i].Summary())
	}

	if *out != "" {
		if err := writeJSON(*out, res); err != nil {
			return err
		}
		if *out != "-" {
			fmt.Println("wrote", *out)
		}
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sweep.WriteCSV(f, res.Records); err != nil {
			return err
		}
		fmt.Println("wrote", *csvOut)
	}
	return nil
}

func writeJSON(path string, res *sweep.Result) error {
	if path == "-" {
		return sweep.WriteJSON(os.Stdout, res)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sweep.WriteJSON(f, res)
}

func usage() {
	fmt.Fprint(os.Stderr, `sweep — design-space exploration over wireless-interconnect scenarios

usage:
  sweep list
  sweep run -scenario <name> [-out results.json] [-csv results.csv]
            [-workers N] [-seed S] [-budget analytic|smoke|standard]
            [-timeout 10m]
`)
}
