// Package channel models the board-to-board radio channel of the paper's
// Section II: the log-distance pathloss law (Eq. 1), an image-method
// multipath ray tracer for two parallel copper boards, and the synthesis
// of complex frequency responses that the synthetic VNA (package vna)
// sweeps.
//
// The paper's measured conclusions that this model reproduces:
//   - pathloss follows Eq. 1 with n = 2.000 in freespace and
//     n = 2.0454 between parallel copper boards (Fig. 1);
//   - all reflections stay >= 15 dB below the line of sight (Figs. 2-3);
//   - the channel is static and largely frequency flat.
package channel

import (
	"fmt"
	"math"
)

// Pathloss is the log-distance pathloss model of Eq. 1:
//
//	PL(d) = PL(d0) + 10 n log10(d / d0)   [dB].
type Pathloss struct {
	// RefDistM is the reference distance d0 in metres.
	RefDistM float64
	// RefLossDB is PL(d0) in dB.
	RefLossDB float64
	// Exponent is the pathloss exponent n (2 in freespace).
	Exponent float64
}

// NewFreespacePathloss returns the free-space (n = 2) model anchored at
// reference distance refDistM for the given carrier: PL(d0) is the Friis
// loss 20 log10(4 pi d0 / lambda).
func NewFreespacePathloss(freqHz, refDistM float64) Pathloss {
	if freqHz <= 0 || refDistM <= 0 {
		panic(fmt.Sprintf("channel: invalid freespace model f=%g Hz d0=%g m", freqHz, refDistM))
	}
	lambda := 299_792_458.0 / freqHz
	return Pathloss{
		RefDistM:  refDistM,
		RefLossDB: 20 * math.Log10(4*math.Pi*refDistM/lambda),
		Exponent:  2,
	}
}

// LossDB returns PL(d) in dB. It panics on non-positive distance.
func (p Pathloss) LossDB(distM float64) float64 {
	if distM <= 0 {
		panic(fmt.Sprintf("channel: non-positive distance %g m", distM))
	}
	return p.RefLossDB + 10*p.Exponent*math.Log10(distM/p.RefDistM)
}

// AmplitudeGain returns the linear field-amplitude gain corresponding to
// LossDB(distM): 10^(-PL/20).
func (p Pathloss) AmplitudeGain(distM float64) float64 {
	return math.Pow(10, -p.LossDB(distM)/20)
}

// String implements fmt.Stringer.
func (p Pathloss) String() string {
	return fmt.Sprintf("PL(d) = %.2f dB + 10*%.4f*log10(d/%.3g m)", p.RefLossDB, p.Exponent, p.RefDistM)
}

// FitPathloss estimates (PL(d0), n) from distance/loss samples by linear
// least squares on the log-distance axis, anchored at reference distance
// refDistM. It returns the fitted model and the fit's R^2. It panics on
// fewer than two samples (an under-determined fit is a caller bug).
func FitPathloss(distM, lossDB []float64, refDistM float64) (Pathloss, float64) {
	if len(distM) != len(lossDB) {
		panic("channel: FitPathloss length mismatch")
	}
	if len(distM) < 2 {
		panic("channel: FitPathloss needs at least two samples")
	}
	// Regress loss on x = 10 log10(d/d0); slope is n, intercept PL(d0).
	xs := make([]float64, len(distM))
	for i, d := range distM {
		if d <= 0 {
			panic(fmt.Sprintf("channel: FitPathloss sample %d has non-positive distance", i))
		}
		xs[i] = 10 * math.Log10(d/refDistM)
	}
	a, b, r2 := linearFit(xs, lossDB)
	return Pathloss{RefDistM: refDistM, RefLossDB: a, Exponent: b}, r2
}

// linearFit is a local least-squares fit (duplicated from numeric to keep
// channel free of the optimiser dependency; it is ten lines of closed
// form).
func linearFit(xs, ys []float64) (a, b, r2 float64) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return a, b, r2
}
