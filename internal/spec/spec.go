// Package spec is the declarative, user-facing description of a design
// study: which SystemSpec knobs to vary (axes), over what grid, under
// which evaluation budget, optimised for which objectives and subject
// to which constraints. It is the boundary that turns the daemon from a
// replayer of compiled-in scenarios into a multi-tenant service — a
// JSON document submitted over the API compiles to the same
// sweep.Scenario and search.Space shapes the built-in registries
// provide, so everything downstream (executor, dispatcher, cache,
// fleet) runs user studies unchanged.
//
// Two properties carry the caching contract:
//
//   - Parsing is strict: unknown fields, unknown knobs, inverted
//     bounds, degenerate steps and oversized grids are rejected at
//     submission time with actionable messages, never at evaluation
//     time on a worker.
//
//   - Serialization is canonical: Canonical renders a parsed spec with
//     sorted keys, normalized numbers and defaults filled in, so
//     semantically equal documents — reordered keys, "100" vs "1e2",
//     an omitted default — share one byte representation. The scenario
//     identity hashed into every sweep.PointKey covers exactly the
//     grid-defining parts (base + axes), which means two tenants
//     submitting equivalent studies share every cached point, and
//     re-submitting a spec is a zero-compute warm run.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"repro/internal/search"
	"repro/internal/sweep"
)

// MaxGridPoints is the hard ceiling on the number of grid points a
// single spec may declare; a per-spec max_points may only lower it.
// The cap bounds what one submission can demand from the fleet before
// any evaluation starts.
const MaxGridPoints = 65536

// Axis declares one varied knob of the design space.
type Axis struct {
	// Name is a knob from the catalog (see Knobs).
	Name string `json:"name"`
	// Kind is "continuous", "integer", "bool" or "enum".
	Kind string `json:"kind"`
	// Min, Max bound continuous and integer axes (inclusive).
	Min *float64 `json:"min,omitempty"`
	// Max is the inclusive upper bound.
	Max *float64 `json:"max,omitempty"`
	// Step is the grid stride: required and positive for continuous
	// axes, optional (default 1) for integer axes.
	Step *float64 `json:"step,omitempty"`
	// Values lists the explicit grid values of an enum axis — all
	// strings (for string knobs) or all numbers (for numeric knobs).
	Values []any `json:"values,omitempty"`
}

// Spec is one parsed scenario specification.
type Spec struct {
	// Name titles the study for humans; it does not participate in the
	// cache identity.
	Name string `json:"name"`
	// Description is optional prose.
	Description string `json:"description,omitempty"`
	// Base overrides knobs of the paper's default SystemSpec before the
	// axes are applied, keyed by catalog knob name.
	Base map[string]any `json:"base,omitempty"`
	// Axes are the varied dimensions; their order fixes grid
	// enumeration order and so point indices.
	Axes []Axis `json:"axes"`
	// Objectives picks optimisation objectives from the search catalog
	// (optimize jobs; at least two when set).
	Objectives []string `json:"objectives,omitempty"`
	// Constraints are feasibility expressions "metric op value" (e.g.
	// "tx_power_dbm <= 20") applied when marking the Pareto front —
	// they never change evaluated record bytes, so specs differing only
	// in constraints share every cached point.
	Constraints []string `json:"constraints,omitempty"`
	// Budget names the evaluation budget: "analytic", "smoke" or
	// "standard" (default "analytic").
	Budget string `json:"budget,omitempty"`
	// MaxPoints lowers the MaxGridPoints ceiling for this spec.
	MaxPoints int `json:"max_points,omitempty"`
}

// Parse decodes and validates a spec document. Unknown fields anywhere
// in the document are rejected, as is trailing data.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return nil, fmt.Errorf("spec: trailing data after the spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec top to bottom, returning the first problem
// as an actionable error.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec: missing \"name\"")
	}
	for name, v := range s.Base {
		k, err := knobByName(name)
		if err != nil {
			return fmt.Errorf("spec: base: %w", err)
		}
		if err := k.checkValue(v); err != nil {
			return fmt.Errorf("spec: base knob %q: %w", name, err)
		}
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("spec: need at least one axis")
	}
	seen := map[string]bool{}
	gridSize := 1
	for i := range s.Axes {
		ax := &s.Axes[i]
		if seen[ax.Name] {
			return fmt.Errorf("spec: axis %q declared twice", ax.Name)
		}
		seen[ax.Name] = true
		n, err := ax.validate()
		if err != nil {
			return err
		}
		if gridSize > MaxGridPoints/n {
			return fmt.Errorf("spec: grid exceeds the %d-point cap at axis %q (use coarser steps or fewer axes)",
				MaxGridPoints, ax.Name)
		}
		gridSize *= n
	}
	if s.MaxPoints < 0 {
		return fmt.Errorf("spec: max_points %d must be positive", s.MaxPoints)
	}
	if s.MaxPoints > MaxGridPoints {
		return fmt.Errorf("spec: max_points %d exceeds the hard %d-point cap", s.MaxPoints, MaxGridPoints)
	}
	if s.MaxPoints > 0 && gridSize > s.MaxPoints {
		return fmt.Errorf("spec: grid has %d points, over the spec's max_points %d", gridSize, s.MaxPoints)
	}
	if len(s.Objectives) > 0 {
		if _, err := search.ParseObjectives(s.Objectives); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	for _, c := range s.Constraints {
		if _, err := ParseConstraint(c); err != nil {
			return err
		}
	}
	if _, err := sweep.ParseBudget(s.Budget); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	return nil
}

// validate checks one axis against its knob and returns the number of
// grid values it contributes.
func (ax *Axis) validate() (int, error) {
	k, err := knobByName(ax.Name)
	if err != nil {
		return 0, fmt.Errorf("spec: axis: %w", err)
	}
	switch ax.Kind {
	case "continuous", "integer":
		if k.kind == knobBool || k.kind == knobString {
			return 0, fmt.Errorf("spec: axis %q: knob is %s-valued; use kind %q",
				ax.Name, k.kind, k.axisKind())
		}
		if ax.Kind == "continuous" && k.kind == knobInt {
			return 0, fmt.Errorf("spec: axis %q: knob is integer-valued; use kind \"integer\"", ax.Name)
		}
		if len(ax.Values) > 0 {
			return 0, fmt.Errorf("spec: axis %q: \"values\" only applies to kind \"enum\"", ax.Name)
		}
		if ax.Min == nil || ax.Max == nil {
			return 0, fmt.Errorf("spec: axis %q: %s axes need \"min\" and \"max\"", ax.Name, ax.Kind)
		}
		if *ax.Min > *ax.Max {
			return 0, fmt.Errorf("spec: axis %q: inverted bounds [%g, %g]", ax.Name, *ax.Min, *ax.Max)
		}
		if ax.Kind == "integer" {
			if ax.Step == nil {
				one := 1.0
				ax.Step = &one
			}
			for _, v := range []float64{*ax.Min, *ax.Max, *ax.Step} {
				if v != math.Trunc(v) {
					return 0, fmt.Errorf("spec: axis %q: integer axes need whole min/max/step, got %g", ax.Name, v)
				}
			}
		} else if ax.Step == nil {
			return 0, fmt.Errorf("spec: axis %q: continuous axes need a \"step\"", ax.Name)
		}
		if *ax.Step <= 0 {
			return 0, fmt.Errorf("spec: axis %q: step %g must be positive", ax.Name, *ax.Step)
		}
		// Count in float space first: a degenerate step on a huge range
		// must be rejected before any conversion to int.
		nf := math.Floor((*ax.Max-*ax.Min)/(*ax.Step)+1e-9) + 1
		if !(nf >= 1) || nf > MaxGridPoints {
			return 0, fmt.Errorf("spec: axis %q alone exceeds the %d-point cap", ax.Name, MaxGridPoints)
		}
		n := int(nf)
		for _, v := range ax.values() {
			if err := k.checkValue(v); err != nil {
				return 0, fmt.Errorf("spec: axis %q: %w", ax.Name, err)
			}
		}
		return n, nil
	case "bool":
		if k.kind != knobBool {
			return 0, fmt.Errorf("spec: axis %q: knob is %s-valued, not boolean", ax.Name, k.kind)
		}
		if ax.Min != nil || ax.Max != nil || ax.Step != nil || len(ax.Values) > 0 {
			return 0, fmt.Errorf("spec: axis %q: bool axes take no bounds, step or values", ax.Name)
		}
		return 2, nil
	case "enum":
		if ax.Min != nil || ax.Max != nil || ax.Step != nil {
			return 0, fmt.Errorf("spec: axis %q: enum axes take \"values\", not bounds or step", ax.Name)
		}
		if len(ax.Values) == 0 {
			return 0, fmt.Errorf("spec: axis %q: enum axes need at least one value", ax.Name)
		}
		vseen := map[any]bool{}
		for _, v := range ax.Values {
			switch v.(type) {
			case string, float64:
			default:
				return 0, fmt.Errorf("spec: axis %q: enum values must be strings or numbers, got %T", ax.Name, v)
			}
			if vseen[v] {
				return 0, fmt.Errorf("spec: axis %q: duplicate enum value %v", ax.Name, v)
			}
			vseen[v] = true
			if err := k.checkValue(v); err != nil {
				return 0, fmt.Errorf("spec: axis %q: %w", ax.Name, err)
			}
		}
		return len(ax.Values), nil
	case "":
		return 0, fmt.Errorf("spec: axis %q: missing \"kind\" (continuous|integer|bool|enum)", ax.Name)
	default:
		return 0, fmt.Errorf("spec: axis %q: unknown kind %q (continuous|integer|bool|enum)", ax.Name, ax.Kind)
	}
}

// gridCount returns the number of grid values min, min+step, ... <= max
// (a small tolerance keeps 0.1-style steps from dropping the endpoint).
func gridCount(min, max, step float64) int {
	return int(math.Floor((max-min)/step+1e-9)) + 1
}

// values enumerates the axis grid values after validation: floats and
// bools as float64 (bool as 0/1), enum strings as string.
func (ax *Axis) values() []any {
	switch ax.Kind {
	case "continuous", "integer":
		n := gridCount(*ax.Min, *ax.Max, *ax.Step)
		out := make([]any, n)
		for i := 0; i < n; i++ {
			v := *ax.Min + float64(i)**ax.Step
			if ax.Kind == "integer" {
				v = math.Round(v)
			}
			out[i] = v
		}
		return out
	case "bool":
		return []any{false, true}
	case "enum":
		return ax.Values
	}
	return nil
}

// Canonical renders the validated spec in its one canonical byte form:
// sorted object keys, shortest round-trip numbers, defaults filled in
// (integer step 1, budget "analytic") and zero-valued optional fields
// dropped. Parse(Canonical(s)) re-canonicalises to the same bytes — the
// fixed point FuzzSpecCanonicalRoundTrip pins down.
func (s *Spec) Canonical() []byte {
	doc := map[string]any{
		"name": s.Name,
		"axes": canonicalAxes(s.Axes),
	}
	if s.Description != "" {
		doc["description"] = s.Description
	}
	if len(s.Base) > 0 {
		doc["base"] = s.Base
	}
	if len(s.Objectives) > 0 {
		doc["objectives"] = s.Objectives
	}
	if len(s.Constraints) > 0 {
		cs := make([]string, len(s.Constraints))
		for i, c := range s.Constraints {
			pc, err := ParseConstraint(c)
			if err != nil {
				panic(fmt.Sprintf("spec: Canonical on unvalidated spec: %v", err))
			}
			cs[i] = pc.String()
		}
		doc["constraints"] = cs
	}
	budget := s.Budget
	if budget == "" {
		budget = "analytic"
	}
	doc["budget"] = budget
	if s.MaxPoints > 0 {
		doc["max_points"] = s.MaxPoints
	}
	return mustMarshal(doc)
}

// canonicalAxes normalises each axis to the minimal field set for its
// kind, preserving axis order (order is semantic: it fixes point
// indices).
func canonicalAxes(axes []Axis) []any {
	out := make([]any, len(axes))
	for i, ax := range axes {
		m := map[string]any{"name": ax.Name, "kind": ax.Kind}
		switch ax.Kind {
		case "continuous", "integer":
			m["min"], m["max"] = *ax.Min, *ax.Max
			step := 1.0
			if ax.Step != nil {
				step = *ax.Step
			}
			m["step"] = step
		case "enum":
			m["values"] = ax.Values
		}
		out[i] = m
	}
	return out
}

// GridCanonical renders only the grid-defining parts — base and axes —
// in canonical form. This is the spec's evaluation identity: budget and
// seed are separate PointKey envelope fields, and objectives and
// constraints only shape job-level assembly, so specs that differ in
// nothing else share every cached point.
func (s *Spec) GridCanonical() []byte {
	doc := map[string]any{"axes": canonicalAxes(s.Axes)}
	if len(s.Base) > 0 {
		doc["base"] = s.Base
	}
	return mustMarshal(doc)
}

// Hash is the hex SHA-256 of GridCanonical, truncated to 16 bytes —
// the content address of the spec's design grid.
func (s *Spec) Hash() string {
	sum := sha256.Sum256(s.GridCanonical())
	return hex.EncodeToString(sum[:16])
}

// ScenarioName is the scenario identity spec-compiled grids carry in
// records, leases and cache keys. The "spec/" prefix keeps user grids
// disjoint from the compiled-in registry namespace.
func (s *Spec) ScenarioName() string { return "spec/" + s.Hash() }

// SweepBudget returns the parsed evaluation budget.
func (s *Spec) SweepBudget() sweep.Budget {
	b, err := sweep.ParseBudget(s.Budget)
	if err != nil {
		panic(fmt.Sprintf("spec: SweepBudget on unvalidated spec: %v", err))
	}
	return b
}

// mustMarshal marshals values that cannot fail (validated specs hold
// only finite numbers, bools and strings).
func mustMarshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("spec: canonical marshal: %v", err))
	}
	return b
}

// formatValue renders one grid value for point labels.
func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	}
	return fmt.Sprint(v)
}
