// Codedlink: latency-adaptive error correction on a wireless
// board-to-board link.
//
// Sec. V's point is that the window size W is a pure receiver-side knob:
// the same LDPC-CC encoder serves every latency budget, and the decoder
// trades structural latency for required Eb/N0 at run time. This example
// encodes real data, sweeps W on one code, and reports the trade-off.
//
//	go run ./examples/codedlink
package main

import (
	"fmt"

	"repro/internal/ldpc"
	"repro/internal/rng"
)

func main() {
	const (
		n    = 40 // lifting factor
		l    = 30 // termination length
		ebn0 = 3.0
	)
	spreading := ldpc.PaperSpreading()
	code := ldpc.LiftConvolutional(spreading, l, n, 3)
	enc := ldpc.NewEncoder(code)

	fmt.Printf("LDPC-CC: N=%d, L=%d, rate %.3f (asymptotic 0.5), %d info bits/frame\n",
		n, l, enc.ActualRate(), enc.InfoLen())
	fmt.Printf("channel: BPSK/AWGN at Eb/N0 = %.1f dB\n\n", ebn0)

	// Encode real payloads; the SAME transmitted frames are decoded
	// under every latency budget below.
	const frames = 25
	stream := rng.New(2024)
	sigma := ldpc.NoiseSigma(ebn0, 0.5)
	scale := 2 / (sigma * sigma)

	infos := make([][]uint8, frames)
	cws := make([][]uint8, frames)
	llrs := make([][]float64, frames)
	for f := 0; f < frames; f++ {
		info := make([]uint8, enc.InfoLen())
		for i := range info {
			if stream.Bernoulli(0.5) {
				info[i] = 1
			}
		}
		cw := enc.Encode(info)
		llr := make([]float64, len(cw))
		for i, bit := range cw {
			tx := 1.0
			if bit == 1 {
				tx = -1
			}
			llr[i] = scale * (tx + sigma*stream.Norm())
		}
		infos[f], cws[f], llrs[f] = info, cw, llr
	}

	fmt.Printf("%3s %16s %12s %14s %13s\n", "W", "latency[bits]", "bit errors", "info errors", "frame errors")
	for _, w := range []int{3, 4, 5, 6, 8} {
		wd := ldpc.NewWindowDecoder(code, w, ldpc.SumProduct, 40)
		bitErrs, infoErrs, frameErrs := 0, 0, 0
		for f := 0; f < frames; f++ {
			hard := wd.Decode(llrs[f])
			bad := false
			for i := range hard {
				if hard[i] != cws[f][i] {
					bitErrs++
					bad = true
				}
			}
			decoded := enc.ExtractInfo(hard)
			for i := range decoded {
				if decoded[i] != infos[f][i] {
					infoErrs++
				}
			}
			if bad {
				frameErrs++
			}
		}
		fmt.Printf("%3d %16.0f %12d %14d %10d/%d\n",
			w, ldpc.WindowLatencyBits(w, n, 2, 0.5), bitErrs, infoErrs, frameErrs, frames)
	}

	fmt.Println()
	fmt.Println("same encoder, same frame — only the decoder's window changed.")
	fmt.Println("larger windows buy BER at the cost of structural latency (Fig. 10).")
}
