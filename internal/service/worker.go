package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// WorkerAPI is the surface a sweep worker drives: lease a chunk, keep
// it alive, and post the records (or a failure) back. *Manager
// implements it directly — cmd/sweepd's local-workers fallback runs
// RunWorker(m) in-process — and *Client implements it over the HTTP API
// for cmd/sweepworker processes. A worker cannot tell which it is
// talking to, so the two deployments exercise identical logic.
type WorkerAPI interface {
	// Lease requests one chunk; ok is false when no work is pending.
	Lease(worker string) (Lease, bool, error)
	// Heartbeat extends the lease, returning its new remaining
	// lifetime, or ErrLeaseGone once the chunk was re-queued.
	Heartbeat(leaseID string) (time.Duration, error)
	// Complete posts the chunk's records. Idempotent on duplicates.
	Complete(leaseID string, recs []sweep.Record) error
	// FailLease reports an unevaluable chunk, failing its job.
	FailLease(leaseID, reason string) error
}

// TracedCompleter is the optional WorkerAPI extension for completions
// that ship worker-side spans with the records, so the daemon's trace
// of a distributed job includes what happened inside each worker
// process. Both *Manager and *Client implement it; a worker falls back
// to plain Complete when its API (or the lease) carries no trace.
type TracedCompleter interface {
	CompleteTraced(leaseID string, recs []sweep.Record, spans []obs.SpanRecord) error
}

// WorkerOptions tunes one RunWorker loop.
type WorkerOptions struct {
	// Name identifies the worker in leases and the fleet view.
	Name string
	// Poll is the idle sleep between lease attempts when no work is
	// pending or the daemon is unreachable (default 500ms).
	Poll time.Duration
	// Workers bounds the local evaluation pool per chunk (0 = NumCPU).
	Workers int
	// Logger receives one structured line per lease outcome, each
	// carrying the worker name plus the lease and job ids (nil =
	// discard).
	Logger *slog.Logger
}

// RunWorker drains chunks from api until ctx is cancelled: lease,
// evaluate with the sweep engine, heartbeat at a third of the TTL while
// evaluating, complete. It returns ctx.Err() on cancellation, or a
// non-context error only when the worker must not keep serving (an
// engine-version or scenario-registry mismatch with the daemon — the
// records such a worker would produce could differ, which the
// determinism contract forbids).
//
// Transient API errors (daemon restarting, network) are retried after
// the poll interval. A lost lease — heartbeat or completion returning
// ErrLeaseGone — abandons the chunk without error: the dispatcher has
// re-queued it for someone else and duplicate completions are
// idempotent, so correctness never depends on this worker.
func RunWorker(ctx context.Context, api WorkerAPI, opts WorkerOptions) error {
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	logger := opts.Logger
	if logger == nil {
		logger = obs.DiscardLogger()
	}
	logger = logger.With("worker", opts.Name)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		l, ok, err := api.Lease(opts.Name)
		if err != nil {
			logger.Warn("lease request failed", "error", err, "retry_in", opts.Poll)
			if !sleep(ctx, opts.Poll) {
				return ctx.Err()
			}
			continue
		}
		if !ok {
			if !sleep(ctx, opts.Poll) {
				return ctx.Err()
			}
			continue
		}
		if err := serveLease(ctx, api, l, opts, logger); err != nil {
			return err
		}
	}
}

// serveLease evaluates one leased chunk and posts the result. A lease
// that carries explicit Points (an optimizer generation) is evaluated
// directly through sweep.EvaluatePoints; otherwise the chunk names a
// registered scenario whose grid the worker regenerates locally.
func serveLease(ctx context.Context, api WorkerAPI, l Lease, opts WorkerOptions, logger *slog.Logger) error {
	// Every line about this lease carries the ids an operator needs to
	// join worker logs against the daemon's dispatcher logs.
	logger = logger.With("lease_id", l.ID, "job_id", l.JobID)
	leased := time.Now()
	if l.Engine != sweep.EngineVersion {
		return fmt.Errorf("service: worker runs engine v%d but daemon leased engine v%d work — rebuild the worker",
			sweep.EngineVersion, l.Engine)
	}
	var sc sweep.Scenario
	if len(l.Points) == 0 {
		var err error
		sc, err = leaseScenario(l)
		if err != nil {
			return err
		}
	}
	budget, err := sweep.ParseBudget(l.Budget)
	if err != nil {
		return fmt.Errorf("service: daemon leased a budget this worker does not know: %w", err)
	}

	// Heartbeat at a third of the TTL so two beats can be lost before
	// the dispatcher re-queues the chunk. A gone lease cancels the
	// evaluation: its result would be thrown away anyway. Floor the
	// cadence: a degenerate TTL from the wire (or a -lease-ttl 2ns
	// operator) must not panic time.NewTicker.
	ttl := time.Duration(l.TTLSeconds * float64(time.Second))
	beat := ttl / 3
	if beat < 10*time.Millisecond {
		beat = 10 * time.Millisecond
	}
	evalCtx, cancelEval := context.WithCancel(ctx)
	var leaseGone atomic.Bool
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(beat)
		defer tick.Stop()
		for {
			select {
			case <-evalCtx.Done():
				return
			case <-tick.C:
				if _, err := api.Heartbeat(l.ID); errors.Is(err, ErrLeaseGone) {
					logger.Warn("lease gone, abandoning chunk",
						"chunk_start", l.Start, "chunk_end", l.End)
					leaseGone.Store(true)
					cancelEval()
					return
				}
				// Transient heartbeat errors are survivable: the lease
				// outlives two missed beats.
			}
		}
	}()

	evalStart := time.Now()
	recs, evalErr := func() (recs []sweep.Record, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("evaluation panicked: %v", r)
			}
		}()
		cfg := sweep.Config{
			Workers: opts.Workers,
			Seed:    l.Seed,
			Budget:  budget,
		}
		if len(l.Points) > 0 {
			recs, _, err := evalPoints(evalCtx, l.Scenario, l.Points, cfg)
			return recs, err
		}
		return evalChunk(evalCtx, sc, sweep.Chunk{Start: l.Start, End: l.End}, cfg)
	}()
	evalEnd := time.Now()
	cancelEval()
	<-hbDone

	switch {
	case evalErr == nil:
		err := completeWithRetry(ctx, api, l.ID, recs, workerSpans(l, opts.Name, leased, evalStart, evalEnd, len(recs)))
		switch {
		case err == nil:
			logger.Info("chunk completed",
				"scenario", l.Scenario, "chunk_start", l.Start, "chunk_end", l.End,
				"points", len(recs))
		case errors.Is(err, ErrLeaseGone):
			// Not a worker failure, but don't log it as a success: the
			// daemon discarded these records (job cancelled, or the
			// chunk was re-leased and finished by someone else).
			logger.Warn("lease gone at completion, records discarded")
		case errors.Is(err, ErrBadRecords):
			// The daemon rejected records this worker considers correct:
			// the two binaries disagree on the grid. Deterministic, so
			// every retry and every re-lease would be rejected the same
			// way — fail the job instead of bouncing the chunk forever.
			logger.Error("records rejected, failing job", "error", err)
			if ferr := api.FailLease(l.ID, err.Error()); ferr != nil && !errors.Is(ferr, ErrLeaseGone) {
				logger.Warn("fail report not delivered", "error", ferr)
			}
		default:
			logger.Warn("completion failed", "error", err)
		}
	case leaseGone.Load():
		// Lease lost mid-evaluation: abandoned above, nothing to post.
	case ctx.Err() != nil:
		// Shutting down: let the lease expire so the chunk is re-queued.
	default:
		// The evaluation itself blew up (a panicking point). Report it so
		// the job fails like an in-process panic would, instead of the
		// chunk bouncing from worker to worker forever.
		if err := api.FailLease(l.ID, evalErr.Error()); err != nil && !errors.Is(err, ErrLeaseGone) {
			logger.Warn("fail report not delivered", "error", err)
		}
	}
	return nil
}

// leaseScenario resolves the scenario a grid lease names. A lease
// carrying a canonical spec document is compiled locally — the same
// strict parse and validation the daemon ran at submission, so daemon
// and worker agree on the grid bit for bit or refuse loudly — and the
// compiled content-addressed name must match the lease's scenario
// string. Without a spec the scenario comes from the worker's
// compiled-in registry. Errors are terminal for the worker loop: every
// one of them means this binary disagrees with the daemon about what
// the grid is, which the determinism contract forbids papering over.
func leaseScenario(l Lease) (sweep.Scenario, error) {
	if l.Spec == "" {
		sc, err := sweep.Get(l.Scenario)
		if err != nil {
			return sweep.Scenario{}, fmt.Errorf("service: daemon leased a scenario this worker does not know: %w", err)
		}
		return sc, nil
	}
	sp, err := spec.Parse([]byte(l.Spec))
	if err != nil {
		return sweep.Scenario{}, fmt.Errorf("service: daemon leased a spec this worker cannot parse — rebuild the worker: %w", err)
	}
	compiled, err := sp.Compile()
	if err != nil {
		return sweep.Scenario{}, fmt.Errorf("service: daemon leased a spec this worker cannot compile — rebuild the worker: %w", err)
	}
	if compiled.Scenario.Name != l.Scenario {
		return sweep.Scenario{}, fmt.Errorf("service: leased spec compiles to scenario %q but the lease names %q — rebuild the worker",
			compiled.Scenario.Name, l.Scenario)
	}
	return compiled.Scenario, nil
}

// evalChunk and evalPoints are sweep.EvaluateChunk and
// sweep.EvaluatePoints, replaceable by tests that need a panicking
// evaluation.
var (
	evalChunk  = sweep.EvaluateChunk
	evalPoints = sweep.EvaluatePoints
)

// workerSpans builds this chunk's worker-side spans; for an untraced
// lease it returns nil and the completion degrades to plain Complete.
// The "worker" span covers lease receipt to post (parented under the
// dispatcher's chunk span via l.SpanID); the "evaluate" span nested
// inside it isolates pure engine time from queueing and transport.
func workerSpans(l Lease, worker string, leased, evalStart, evalEnd time.Time, points int) []obs.SpanRecord {
	if l.TraceID == "" {
		return nil
	}
	wid := obs.NewSpanID()
	return []obs.SpanRecord{
		{
			TraceID: l.TraceID, SpanID: wid, ParentID: l.SpanID,
			Name: "worker", JobID: l.JobID, Worker: worker,
			Start: leased, End: time.Now(),
		},
		{
			TraceID: l.TraceID, SpanID: obs.NewSpanID(), ParentID: wid,
			Name: "evaluate", JobID: l.JobID, Worker: worker,
			Start: evalStart, End: evalEnd,
			Attrs: map[string]string{"points": strconv.Itoa(points)},
		},
	}
}

// completeWithRetry posts records (and worker spans, when the API and
// lease support tracing), retrying transient errors a few times.
// ErrLeaseGone and ErrBadRecords are deterministic outcomes and
// returned immediately for the caller to classify.
func completeWithRetry(ctx context.Context, api WorkerAPI, leaseID string, recs []sweep.Record, spans []obs.SpanRecord) error {
	post := api.Complete
	if tc, ok := api.(TracedCompleter); ok && len(spans) > 0 {
		post = func(id string, r []sweep.Record) error { return tc.CompleteTraced(id, r, spans) }
	}
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		err = post(leaseID, recs)
		if err == nil || errors.Is(err, ErrLeaseGone) || errors.Is(err, ErrBadRecords) {
			return err
		}
		if !sleep(ctx, 100*time.Millisecond<<attempt) {
			return err
		}
	}
	return err
}

// sleep waits d or until ctx is cancelled, reporting whether the full
// duration elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
