// Command sweep explores the wireless-interconnect design space: it
// runs named scenario grids through the parallel sweep executor and
// writes structured results with a Pareto front.
//
// Usage:
//
//	sweep list
//	sweep run -scenario <name> [-out results.json] [-csv results.csv]
//	          [-workers N] [-seed S] [-budget analytic|smoke|standard]
//	          [-timeout 10m] [-store dir]
//
// Records are deterministic for a fixed seed: running with -workers 1
// and -workers N yields byte-identical files.
//
// -store points at a content-addressed result store (the same layout
// cmd/sweepd serves from): every evaluated point is persisted there and
// rerunning any scenario with the same seed, budget and engine version
// reuses every already-computed point instead of evaluating it again.
//
// Output files are written atomically (temp file + rename), so a
// crashed or out-of-space run never leaves a truncated results file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/sweep"
	"repro/internal/sweep/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		if err := run(os.Args[2:]); err != nil {
			// Package errors already carry their prefix; add ours only
			// to bare messages.
			if strings.HasPrefix(err.Error(), "sweep:") {
				fmt.Fprintln(os.Stderr, err)
			} else {
				fmt.Fprintln(os.Stderr, "sweep:", err)
			}
			os.Exit(1)
		}
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func list() {
	fmt.Println("registered scenarios:")
	fmt.Print(scenarioCatalog())
}

// scenarioCatalog renders the registry one scenario per line — shared
// by 'sweep list' and the unknown-scenario error, so the user who
// mistyped a name sees exactly what they could have written.
func scenarioCatalog() string {
	var sb strings.Builder
	for _, name := range sweep.Names() {
		sc, err := sweep.Get(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&sb, "  %-20s %3d points  %s\n", name, len(sc.Points()), sc.Description)
	}
	return sb.String()
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scenario := fs.String("scenario", "", "scenario name (see 'sweep list')")
	out := fs.String("out", "", "JSON output path ('-' for stdout)")
	csvOut := fs.String("csv", "", "optional CSV output path")
	workers := fs.Int("workers", 0, "worker pool size (0 = NumCPU); records do not depend on it")
	seed := fs.Uint64("seed", 1, "root seed of the per-point random sub-streams")
	budgetName := fs.String("budget", "analytic", "Monte-Carlo effort: analytic, smoke or standard")
	timeout := fs.Duration("timeout", 0, "overall deadline (0 = none)")
	storeDir := fs.String("store", "", "result store directory shared with sweepd (read-through cache)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenario == "" {
		return fmt.Errorf("missing -scenario (see 'sweep list')")
	}
	sc, err := sweep.Get(*scenario)
	if err != nil {
		return fmt.Errorf("unknown scenario %q; known scenarios:\n%s", *scenario, scenarioCatalog())
	}
	budget, err := sweep.ParseBudget(*budgetName)
	if err != nil {
		return err
	}

	cfg := sweep.Config{Workers: *workers, Seed: *seed, Budget: budget}
	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir)
		if err != nil {
			return err
		}
		cfg.Cache = st
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	res, err := sweep.Run(ctx, sc, cfg)
	if st != nil {
		// Flush before reporting: a store that cannot persist what this
		// run computed must fail the run.
		if cerr := st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}

	fmt.Printf("scenario %s: %d points, budget %s, %.1fs\n",
		res.Scenario, len(res.Records), res.Budget, time.Since(start).Seconds())
	if st != nil {
		fmt.Printf("store %s: %d points cached, %d computed\n",
			*storeDir, res.CachedPoints, res.ComputedPoints)
	}
	for _, r := range res.Records {
		fmt.Println(" ", r.Summary())
	}
	fmt.Printf("pareto front (ptx min, decode latency min, NoC saturation max): %d of %d points\n",
		len(res.ParetoIndices), len(res.Records))
	for _, i := range res.ParetoIndices {
		fmt.Println("  ", res.Records[i].Summary())
	}

	if *out != "" {
		if *out == "-" {
			if err := sweep.WriteJSON(os.Stdout, res); err != nil {
				return err
			}
		} else {
			if err := writeFileAtomic(*out, func(f *os.File) error {
				return sweep.WriteJSON(f, res)
			}); err != nil {
				return err
			}
			fmt.Println("wrote", *out)
		}
	}
	if *csvOut != "" {
		if err := writeFileAtomic(*csvOut, func(f *os.File) error {
			return sweep.WriteCSV(f, res.Records)
		}); err != nil {
			return err
		}
		fmt.Println("wrote", *csvOut)
	}
	return nil
}

// writeFileAtomic streams emit into a temp file next to path and renames
// it into place only after a successful write, sync and close — readers
// never observe a partial file and every emitter or flush error reaches
// the caller (and so the exit code) instead of being lost in a deferred
// Close.
func writeFileAtomic(path string, emit func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	// CreateTemp makes 0600 files; match what os.Create would have
	// produced so other readers keep working.
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := emit(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

func usage() {
	fmt.Fprint(os.Stderr, `sweep — design-space exploration over wireless-interconnect scenarios

usage:
  sweep list
  sweep run -scenario <name> [-out results.json] [-csv results.csv]
            [-workers N] [-seed S] [-budget analytic|smoke|standard]
            [-timeout 10m] [-store dir]

-store shares cmd/sweepd's content-addressed result store: reruns reuse
every already-computed point instead of evaluating it again.
`)
}
