package experiments

import (
	"strings"
	"testing"
)

func TestParseQuality(t *testing.T) {
	for s, want := range map[string]Quality{
		"smoke": Smoke, "standard": Standard, "full": Full, "SMOKE": Smoke,
	} {
		got, err := ParseQuality(s)
		if err != nil || got != want {
			t.Errorf("ParseQuality(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseQuality("bogus"); err == nil {
		t.Error("bogus quality accepted")
	}
	if Smoke.String() != "smoke" || Standard.String() != "standard" ||
		Full.String() != "full" || Quality(9).String() != "unknown" {
		t.Error("quality names wrong")
	}
}

func TestFig1Content(t *testing.T) {
	out := Fig1(Smoke)
	for _, want := range []string{"Fig. 1", "2.000", "freespace model", "copper-board model", "FSPL"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
	// The fitted copper exponent should print near 2.04x.
	if !strings.Contains(out, "10*2.0") {
		t.Errorf("Fig1 fitted exponent not ~2.0x:\n%s", firstLines(out, 4))
	}
}

func TestFig2And3Content(t *testing.T) {
	for name, out := range map[string]string{"Fig2": Fig2(Smoke), "Fig3": Fig3(Smoke)} {
		if !strings.Contains(out, "freespace") || !strings.Contains(out, "copper boards") {
			t.Errorf("%s missing scenarios", name)
		}
		if !strings.Contains(out, "tau [ns]") {
			t.Errorf("%s missing delay axis", name)
		}
	}
}

func TestTable1Content(t *testing.T) {
	out := Table1(Smoke)
	for _, want := range []string{"59.8", "69.3", "Butler", "323", "kTB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestFig4Content(t *testing.T) {
	out := Fig4(Smoke)
	for _, want := range []string{"shortest", "longest", "butler", "4.77"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 missing %q", want)
		}
	}
}

func TestFig5Content(t *testing.T) {
	out := Fig5(Smoke)
	for _, want := range []string{"(a)", "(b)", "(c)", "(d)", "rectangular",
		"symbolwise-optimal", "sequence-optimal", "suboptimal", "tau/T"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 missing %q", want)
		}
	}
}

func TestFig6Content(t *testing.T) {
	out := Fig6(Smoke)
	for _, want := range []string{"seq-opt", "no-quant", "rect-OS", "35.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 missing %q", want)
		}
	}
}

func TestFig7Content(t *testing.T) {
	out := Fig7(Smoke)
	for _, want := range []string{"2D mesh", "star-mesh", "3D mesh", "ciliated", "bisection"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 missing %q", want)
		}
	}
}

func TestFig8Content(t *testing.T) {
	a := Fig8a(Smoke)
	for _, want := range []string{"8x8 2D mesh", "star-mesh", "3D mesh", "saturated", "saturation"} {
		if !strings.Contains(a, want) {
			t.Errorf("Fig8a missing %q", want)
		}
	}
	b := Fig8b(Smoke)
	for _, want := range []string{"32x16", "8x8x8", "gap"} {
		if !strings.Contains(b, want) {
			t.Errorf("Fig8b missing %q", want)
		}
	}
}

func TestFig10SmokeContent(t *testing.T) {
	out := Fig10(Smoke)
	if !strings.Contains(out, "LDPC-CC") || !strings.Contains(out, "LDPC-BC") {
		t.Fatalf("Fig10 missing code families:\n%s", out)
	}
	if strings.Count(out, "unreached") > 2 {
		t.Errorf("Fig10: too many unreached search points:\n%s", out)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	for name, fn := range map[string]func(Quality) string{
		"service": AblationServiceModel,
		"pillars": AblationPillars,
	} {
		out := fn(Smoke)
		if len(out) < 50 {
			t.Errorf("%s ablation output too short", name)
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
