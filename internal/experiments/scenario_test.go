package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sweep/store"
)

func TestScenarioReportReadsThroughStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cold, err := ScenarioReport(context.Background(), "embedded-box", "analytic", 5, st)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"embedded-box", "Pareto front", "0 cached, 6 computed"} {
		if !strings.Contains(cold, want) {
			t.Fatalf("cold report missing %q:\n%s", want, firstLines(cold, 6))
		}
	}

	warm, err := ScenarioReport(context.Background(), "embedded-box", "analytic", 5, st)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm, "6 cached, 0 computed") {
		t.Fatalf("warm report recomputed points:\n%s", firstLines(warm, 6))
	}
	// Identical inputs, identical tables — only the cache counters line
	// may differ between the cold and warm renderings.
	trim := func(s string) string {
		lines := strings.Split(s, "\n")
		return strings.Join(append(lines[:1], lines[2:]...), "\n")
	}
	if trim(cold) != trim(warm) {
		t.Error("cached report body differs from the computed one")
	}

	if _, err := ScenarioReport(context.Background(), "no-such", "analytic", 1, nil); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := ScenarioReport(context.Background(), "embedded-box", "bogus", 1, nil); err == nil {
		t.Error("unknown budget accepted")
	}
}
