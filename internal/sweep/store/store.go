// Package store is the storage engine behind the sweep service: it
// persists evaluated sweep points in a content-addressed,
// crash-tolerant result store, so every design point is computed once
// per (scenario, point, budget, seed, engine version) no matter how
// many sweeps, CLI runs or service jobs ask for it.
//
// The engine is layered:
//
//   - The segment layer (segment.go) owns append-only JSON-lines files
//     named seg-NNNNNN.jsonl. Each line is one entry
//     {"key": "<hex sha-256>", "engine": N, "record": {...}}; the key
//     is sweep.PointKey of the inputs and the record is the evaluated
//     sweep.Record. The active segment rotates once it passes the size
//     limit; a torn final line — the signature of a crash mid-append —
//     is skipped on replay, so a store survives its writer.
//   - The index layer (index.go) maps key → (segment, offset, length)
//     and is persisted atomically on clean Close, so reopening a large
//     store reads one compact index file instead of replaying every
//     segment. Records fault in from their segment on first Get and
//     stay resident, bounding reopen cost by the index size and memory
//     by the working set. A missing or stale index rebuilds from the
//     segments, which remain the single source of truth.
//   - Compaction (compact.go) rewrites the segments, dropping entries
//     whose engine version no longer matches sweep.EngineVersion and
//     shadowed duplicate keys, with crash-safe swap semantics: at
//     every instant an Open of the directory yields a correct store.
//   - Sharding (sharded.go) routes keys by their leading hex byte
//     across N independent Stores with independent locks, so
//     concurrent jobs stop contending on one mutex.
//
// Store and Sharded both implement sweep.Cache; plug one into
// sweep.Config.Cache and a rerun of any scenario reuses every
// already-computed point.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// DefaultSegmentBytes bounds a segment file before rotation.
const DefaultSegmentBytes = 8 << 20

// entry is one persisted line: a content address, the engine version
// that computed it, and the record. Engine is omitted when zero so
// segments written before engine stamping replay unchanged; Compact
// treats such legacy entries as current (dropping them could discard
// an entire pre-upgrade store that is still perfectly servable).
type entry struct {
	Key    string          `json:"key"`
	Engine int             `json:"engine,omitempty"`
	Record json.RawMessage `json:"record"`
}

// Options tunes a Store.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// Metrics, when non-nil, registers the engine's metric families
	// (sweep_store_*) on the registry and times every Get, Put and
	// compaction. Nil keeps the hot path entirely free of clock reads —
	// observation is strictly opt-in.
	Metrics *obs.Registry
}

// Stats is a point-in-time counter snapshot. For a Sharded store the
// aggregate sums every shard and Shards reports the fan-out.
type Stats struct {
	Entries     int   `json:"entries"`      // distinct keys in the index
	Segments    int   `json:"segments"`     // segment files on disk
	Shards      int   `json:"shards"`       // independent stores behind this one
	Hits        int64 `json:"hits"`         // Get calls that found their key
	Misses      int64 `json:"misses"`       // Get calls that did not
	Puts        int64 `json:"puts"`         // Put calls that appended a new entry
	Replayed    int   `json:"replayed"`     // entries recovered by segment replay on Open
	IndexLoaded int   `json:"index_loaded"` // entries loaded from the persisted index on Open
	Skipped     int   `json:"skipped"`      // malformed lines ignored by Open
}

// HitRate returns the fraction of Get calls served from the store, or
// 0 before the first lookup.
func (s Stats) HitRate() float64 {
	if lookups := s.Hits + s.Misses; lookups > 0 {
		return float64(s.Hits) / float64(lookups)
	}
	return 0
}

// Store is a single-shard content-addressed result store. It is safe
// for concurrent use by any number of goroutines; Sharded spreads that
// concurrency across independent Stores.
type Store struct {
	dir      string
	segLimit int64
	met      *storeMetrics // nil unless Options.Metrics was set

	hits, misses, puts atomic.Int64

	mu          sync.RWMutex
	index       map[string]*indexEntry
	segs        map[int]int64 // segment seq -> current size on disk
	readers     map[int]*os.File
	active      *os.File
	activeSize  int64
	activeSeq   int
	replayed    int
	indexLoaded int
	skipped     int
	indexDirty  bool
	closed      bool
	writeErr    error

	// compactFail, when non-nil, is a test failpoint invoked between
	// compaction stages to simulate a crash mid-swap.
	compactFail func(stage string) error
}

// Open creates or reopens the store rooted at dir with default options.
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions creates or reopens the store rooted at dir. When the
// persisted index covers the segments on disk, Open loads it and
// replays only bytes appended after it was written (zero after a clean
// Close); otherwise it rebuilds the index by replaying every segment.
func OpenOptions(dir string, o Options) (*Store, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		segLimit: o.SegmentBytes,
		index:    make(map[string]*indexEntry),
		readers:  make(map[int]*os.File),
	}
	if o.Metrics != nil {
		s.met = newStoreMetrics(o.Metrics)
	}
	seqs, sizes, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	s.segs = sizes

	idx, err := readIndexFile(dir)
	if err != nil {
		return nil, err
	}
	var covered map[int]int64
	if idx != nil {
		var ok bool
		if covered, ok = s.loadIndex(idx, sizes); !ok {
			// Stale index: forget everything it loaded and rebuild.
			s.index = make(map[string]*indexEntry)
			s.indexLoaded = 0
			covered = nil
		}
	}
	for _, seq := range seqs {
		from := covered[seq] // zero for uncovered segments: full replay
		if from >= sizes[seq] {
			continue
		}
		if err := s.replay(seq, from); err != nil {
			return nil, err
		}
		s.indexDirty = true
	}

	if len(seqs) > 0 {
		last := seqs[len(seqs)-1]
		s.activeSeq = last
		if sizes[last] < s.segLimit {
			if err := s.openActive(last, sizes[last]); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// replay loads one segment's entries (from the byte offset from) into
// the index, recording their locations. Later entries shadow earlier
// ones — last write wins — which is what makes an interrupted
// compaction harmless: the rewritten copies live in higher segments.
func (s *Store) replay(seq int, from int64) error {
	skipped, err := scanSegment(filepath.Join(s.dir, segName(seq)), from, func(e entry, off, n int64) {
		s.index[e.Key] = &indexEntry{seg: seq, off: off, length: n, engine: e.Engine}
		s.replayed++
	})
	s.skipped += skipped
	return err
}

// openActive opens segment seq for appending and repairs a torn tail:
// a crash mid-append leaves the segment without a final newline, so
// terminate it to keep the next entry on its own line instead of
// merging into the garbage.
func (s *Store) openActive(seq int, size int64) error {
	f, err := os.OpenFile(filepath.Join(s.dir, segName(seq)), os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.active = f
	s.activeSize = size
	if size > 0 {
		tail := make([]byte, 1)
		if _, err := f.ReadAt(tail, size-1); err != nil {
			f.Close()
			s.active = nil
			return fmt.Errorf("store: %w", err)
		}
		if tail[0] != '\n' {
			n, err := f.Write([]byte{'\n'})
			if err != nil {
				f.Close()
				s.active = nil
				return fmt.Errorf("store: %w", err)
			}
			s.activeSize += int64(n)
			s.segs[seq] = s.activeSize
			s.indexDirty = true
		}
	}
	return nil
}

// Get returns the record stored under key, faulting it in from its
// segment on first access. It implements sweep.Cache.
func (s *Store) Get(key string) (sweep.Record, bool) {
	if s.met != nil {
		start := time.Now()
		rec, ok := s.get(key)
		s.met.observeGet(time.Since(start), ok)
		return rec, ok
	}
	return s.get(key)
}

func (s *Store) get(key string) (sweep.Record, bool) {
	s.mu.RLock()
	e, ok := s.index[key]
	var rec sweep.Record
	resident := false
	if ok && e.rec != nil {
		rec = *e.rec
		resident = true
	}
	s.mu.RUnlock()
	if !ok {
		s.misses.Add(1)
		return sweep.Record{}, false
	}
	if resident {
		s.hits.Add(1)
		return rec, true
	}
	rec, ok = s.fault(key)
	if !ok {
		s.misses.Add(1)
		return sweep.Record{}, false
	}
	s.hits.Add(1)
	return rec, true
}

// fault reads a non-resident entry's line from its segment, decodes
// the record and caches it. A line that cannot be read back — torn by
// a concurrent crash, or clobbered by manual surgery — deletes the
// entry so the caller's recompute can be stored in its place.
func (s *Store) fault(key string) (sweep.Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		return sweep.Record{}, false
	}
	if e.rec != nil {
		return *e.rec, true
	}
	line, err := s.readLineLocked(e)
	var ent entry
	if err == nil {
		err = json.Unmarshal(line, &ent)
	}
	var rec sweep.Record
	if err == nil && ent.Key == key {
		err = json.Unmarshal(ent.Record, &rec)
	} else if err == nil {
		err = fmt.Errorf("store: entry at seg %d off %d holds key %s, want %s", e.seg, e.off, ent.Key, key)
	}
	if err != nil {
		delete(s.index, key)
		s.skipped++
		return sweep.Record{}, false
	}
	e.rec = &rec
	return rec, true
}

// readLineLocked reads the raw bytes of one entry line (without the
// trailing newline). Callers hold s.mu.
func (s *Store) readLineLocked(e *indexEntry) ([]byte, error) {
	r, err := s.readerLocked(e.seg)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, e.length)
	if _, err := r.ReadAt(buf, e.off); err != nil {
		return nil, err
	}
	if buf[len(buf)-1] != '\n' {
		return nil, fmt.Errorf("store: entry at seg %d off %d is not newline-terminated", e.seg, e.off)
	}
	return buf[:len(buf)-1], nil
}

// readerLocked returns a cached read handle for segment seq.
func (s *Store) readerLocked(seq int) (*os.File, error) {
	if r, ok := s.readers[seq]; ok {
		return r, nil
	}
	r, err := os.Open(filepath.Join(s.dir, segName(seq)))
	if err != nil {
		return nil, err
	}
	s.readers[seq] = r
	return r, nil
}

// Put appends the record under key, deduplicating: a key already in the
// index is left untouched, so re-putting an identical point is free and
// writes nothing to disk. The distributed worker tier leans on this: a
// chunk completed twice — once under an expired lease, once by its
// re-lease — is persisted exactly once, because both completions carry
// the same content-addressed keys. Put implements sweep.Cache.
// Persistence errors cannot be surfaced through the Cache interface;
// the entry stays served from memory and the error is reported by the
// next Close.
func (s *Store) Put(key string, rec sweep.Record) {
	if s.met != nil {
		start := time.Now()
		if s.put(key, rec) {
			s.met.puts.Inc()
		}
		s.met.putSeconds.Observe(time.Since(start).Seconds())
		return
	}
	s.put(key, rec)
}

// put appends the record, reporting whether a new entry was added
// (false on dedup).
func (s *Store) put(key string, rec sweep.Record) bool {
	// Dedup before encoding anything: a warm sweep re-puts every cached
	// point, and marshaling records only to discard them under the lock
	// was the dominant allocation in the sweep-warm-store profile. The
	// pre-check races with concurrent putters of the same key, so the
	// insert below re-checks under the write lock.
	s.mu.RLock()
	_, dup := s.index[key]
	s.mu.RUnlock()
	if dup {
		return false
	}
	// Encode outside the lock: encoding is the expensive part of a
	// Put, and holding the mutex across it would serialize every sweep
	// worker behind one encoder. The columnar record writer emits the
	// exact bytes the old json.Marshal(entry{...}) pair produced —
	// segment_test pins that — in a single buffer instead of two
	// reflective marshals.
	line := make([]byte, 0, 512)
	line = append(line, `{"key":`...)
	line = sweep.AppendJSONString(line, key)
	if sweep.EngineVersion != 0 {
		line = append(line, `,"engine":`...)
		line = strconv.AppendInt(line, int64(sweep.EngineVersion), 10)
	}
	line = append(line, `,"record":`...)
	var merr error
	if line, merr = sweep.AppendRecordJSON(line, rec); merr == nil {
		line = append(line, '}', '\n')
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.index[key]; dup {
		return false
	}
	e := &indexEntry{engine: sweep.EngineVersion, rec: &rec}
	s.index[key] = e
	s.puts.Add(1)
	s.indexDirty = true
	if s.closed {
		return true
	}
	if merr != nil {
		s.writeErr = merr
		return true
	}
	if s.active == nil || s.activeSize >= s.segLimit {
		if err := s.rotateLocked(); err != nil {
			s.writeErr = err
			return true
		}
	}
	e.seg, e.off, e.length = s.activeSeq, s.activeSize, int64(len(line))
	n, err := s.active.Write(line)
	s.activeSize += int64(n)
	s.segs[s.activeSeq] = s.activeSize
	if err != nil {
		s.writeErr = err
	}
	return true
}

// rotateLocked closes the active segment and opens the next one,
// fsyncing the directory so the rotation itself is durable.
func (s *Store) rotateLocked() error {
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	s.activeSeq++
	f, err := createSegment(s.dir, s.activeSeq)
	if err != nil {
		return err
	}
	s.active = f
	s.activeSize = 0
	s.segs[s.activeSeq] = 0
	return nil
}

// segSeqsLocked returns the live segment sequence numbers in ascending
// order. Callers hold s.mu.
func (s *Store) segSeqsLocked() []int {
	seqs := make([]int, 0, len(s.segs))
	for seq := range s.segs {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs
}

// Len returns the number of distinct keys in the index.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Entries:     len(s.index),
		Segments:    len(s.segs),
		Shards:      1,
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		Replayed:    s.replayed,
		IndexLoaded: s.indexLoaded,
		Skipped:     s.skipped,
	}
}

// Close flushes and closes the active segment, persists the index (so
// the next Open skips segment replay entirely) and returns any write
// error deferred by Put. The store keeps serving Gets from memory and
// segments afterwards; further Puts become memory-only.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	alreadyClosed := s.closed
	s.closed = true
	err := s.writeErr
	if s.active != nil {
		if serr := s.active.Sync(); err == nil {
			err = serr
		}
		if cerr := s.active.Close(); err == nil {
			err = cerr
		}
		s.active = nil
	}
	// Only persist the index over segments in a known-good state: after
	// a deferred write error the recorded offsets may point into a torn
	// line, and the segments themselves (minus that line) are still
	// recoverable by replay.
	if err == nil && s.indexDirty && !alreadyClosed {
		if werr := s.writeIndexLocked(); werr == nil {
			s.indexDirty = false
		} else {
			err = werr
		}
	}
	if err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}
