package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"repro/internal/sweep"
)

// SchemaVersion numbers the BENCH_<n>.json layout. It bumps on any
// change that would make an older reader misinterpret a newer file
// (renamed keys, changed units); adding fields is backwards compatible
// and does not bump it — readers tolerate unknown fields.
const SchemaVersion = 1

// File is one BENCH_<n>.json performance baseline. Marshalled with
// encoding/json the key order is fixed by field declaration order, so
// two baselines diff cleanly line by line.
type File struct {
	// SchemaVersion is the BENCH layout version; Decode rejects files
	// whose version it does not speak.
	SchemaVersion int `json:"schema_version"`
	// EngineVersion is sweep.EngineVersion at measurement time: a bumped
	// engine evaluates different work, so Diff flags cross-engine
	// comparisons. Regressions still gate — the PR that bumps the
	// engine records a fresh baseline instead of inheriting numbers
	// measured under different semantics.
	EngineVersion int `json:"engine_version"`
	// GoVersion, GOOS and GOARCH identify the toolchain and platform the
	// numbers were taken on.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GitCommit and GitDirty locate the measured tree (empty when the
	// producer ran outside a git checkout).
	GitCommit string `json:"git_commit,omitempty"`
	GitDirty  bool   `json:"git_dirty,omitempty"`
	// Budget and Seed reproduce the measurement.
	Budget string `json:"budget"`
	Seed   uint64 `json:"seed"`
	// Workloads holds one Measurement per catalog workload, in catalog
	// (sorted name) order.
	Workloads []Measurement `json:"workloads"`
}

// NewFile returns a File stamped with the current engine, toolchain and
// platform metadata; the caller fills git metadata and Workloads.
func NewFile(budget Budget, seed uint64) *File {
	return &File{
		SchemaVersion: SchemaVersion,
		EngineVersion: sweep.EngineVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Budget:        budget.Name,
		Seed:          seed,
	}
}

// Encode writes the file as indented JSON with stable key order.
func (f *File) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Decode reads a BENCH file. Unknown fields are tolerated — newer
// producers may add metadata — but a schema version this reader does
// not speak is rejected outright: silently misreading a renamed key
// would turn the CI gate into noise.
func Decode(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("perf: decode bench file: %w", err)
	}
	if f.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("perf: bench schema version %d, this reader speaks %d",
			f.SchemaVersion, SchemaVersion)
	}
	return &f, nil
}

// Find returns the measurement for the named workload.
func (f *File) Find(name string) (Measurement, bool) {
	for _, m := range f.Workloads {
		if m.Name == name {
			return m, true
		}
	}
	return Measurement{}, false
}
