// Package core composes the paper's four building blocks into its actual
// proposal: a multi-board electronic system whose backplane is replaced
// by direct wireless board-to-board links between 3D chip-stacks.
//
//   - Sec. II  (channel + link budget)  -> link planning and TX power
//   - Sec. III (1-bit oversampling)     -> energy-efficient PHY choice
//   - Sec. IV  (3D NiCS)                -> the network inside each stack
//   - Sec. V   (LDPC-CC window decoder) -> latency-constrained coding
//
// DesignSystem takes a system specification (boards, nodes, traffic,
// latency budget) and returns a complete, explainable design: per-link
// transmit powers, the receiver architecture, the code and window size,
// and the intra-stack NoC topology with its predicted latency.
package core

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/channel"
	"repro/internal/ldpc"
	"repro/internal/linkbudget"
	"repro/internal/noc"
	"repro/internal/noc/analytic"
	"repro/internal/units"
)

// SystemSpec describes the system to interconnect.
type SystemSpec struct {
	// Boards is the number of parallel boards in the box (the paper
	// pictures 4-5 boards per litre).
	Boards int
	// BoardSpacingM separates adjacent boards (0.1 m in Table I).
	BoardSpacingM float64
	// BoardEdgeM is the square board edge (0.1 m, "10cm x 10cm").
	BoardEdgeM float64
	// NodesPerBoard is the number of chip-stack nodes per board; nodes
	// are assumed spread over the board, so the worst diagonal link
	// spans the full board edge.
	NodesPerBoard int
	// LinkRateGbps is the target data rate per wireless link
	// (100 Gbit/s in the paper).
	LinkRateGbps float64
	// LatencyBudgetBits bounds the structural decoding latency of the
	// error-correction stage in information bits (Eq. 4).
	LatencyBudgetBits int
	// StackModules is the number of processing modules inside each 3D
	// chip-stack's NiCS.
	StackModules int
	// StackInjectionRate is the per-module NoC load in
	// flits/cycle/module used to evaluate topologies.
	StackInjectionRate float64
	// Butler selects the Butler-matrix beamforming realisation (cheaper
	// hardware, 5 dB worst-case direction mismatch) over full beam
	// steering.
	Butler bool
	// SNRMarginDB is added on top of the Shannon-derived SNR requirement
	// to cover coding gap and ageing (default 3 dB).
	SNRMarginDB float64
}

// Validate checks the specification for contradictions.
func (s SystemSpec) Validate() error {
	switch {
	case s.Boards < 1:
		return fmt.Errorf("core: need at least one board, got %d", s.Boards)
	case s.BoardSpacingM <= 0:
		return fmt.Errorf("core: board spacing %g m must be positive", s.BoardSpacingM)
	case s.BoardEdgeM <= 0:
		return fmt.Errorf("core: board edge %g m must be positive", s.BoardEdgeM)
	case s.NodesPerBoard < 1:
		return fmt.Errorf("core: need at least one node per board, got %d", s.NodesPerBoard)
	case s.LinkRateGbps <= 0:
		return fmt.Errorf("core: link rate %g Gbit/s must be positive", s.LinkRateGbps)
	case s.LatencyBudgetBits < 75:
		return fmt.Errorf("core: latency budget %d bits below the smallest window decoder (75)", s.LatencyBudgetBits)
	case s.StackModules < 2:
		return fmt.Errorf("core: a NiCS needs at least 2 modules, got %d", s.StackModules)
	case s.StackInjectionRate <= 0:
		return fmt.Errorf("core: stack injection rate must be positive")
	}
	return nil
}

// DefaultSpec returns the paper's running example: 4 boards of
// 10cm x 10cm at 100 mm spacing, 100 Gbit/s links, 64-module stacks.
func DefaultSpec() SystemSpec {
	return SystemSpec{
		Boards:             4,
		BoardSpacingM:      0.1,
		BoardEdgeM:         0.1,
		NodesPerBoard:      9,
		LinkRateGbps:       100,
		LatencyBudgetBits:  200,
		StackModules:       64,
		StackInjectionRate: 0.1,
		Butler:             true,
		SNRMarginDB:        3,
	}
}

// LinkPlan is the wireless plan for one link class.
type LinkPlan struct {
	// Name labels the class ("ahead", "diagonal").
	Name string
	// DistanceM is the link length.
	DistanceM float64
	// TargetSNRdB at the receiver.
	TargetSNRdB float64
	// TxPowerDBm required to close the link.
	TxPowerDBm float64
	// Butler reports whether the Butler penalty applies.
	Butler bool
}

// CodePlan is the chosen error-correction configuration.
type CodePlan struct {
	// Lifting N and Window W of the LDPC-CC.
	Lifting, Window int
	// LatencyBits is TWD of Eq. 4.
	LatencyBits float64
	// Rate is the asymptotic code rate.
	Rate float64
	// BlockCodeLatencyBits is what an LDPC-BC would need for comparable
	// strength (the Fig. 10 trade), taken as 2x the window latency per
	// the paper's 3 dB operating example.
	BlockCodeLatencyBits float64
}

// StackPlan is the chosen intra-stack network.
type StackPlan struct {
	// Topology is the winning NiCS mesh.
	Topology *noc.Mesh
	// LatencyCycles is the analytic mean packet latency at the specified
	// injection rate.
	LatencyCycles float64
	// SaturationRate is the topology's throughput limit.
	SaturationRate float64
	// Alternatives lists the evaluated contenders for the report.
	Alternatives []StackAlternative
}

// StackAlternative records one evaluated topology.
type StackAlternative struct {
	Name           string
	LatencyCycles  float64
	SaturationRate float64
	Feasible       bool
}

// Design is the complete system design.
type Design struct {
	Spec   SystemSpec
	Budget linkbudget.Budget
	// SpectralEfficiency is the required bit/s/Hz per polarisation.
	SpectralEfficiency float64
	Links              []LinkPlan
	Code               CodePlan
	Stack              StackPlan
}

// DesignSystem runs the full design pipeline.
func DesignSystem(spec SystemSpec) (*Design, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.SNRMarginDB == 0 {
		spec.SNRMarginDB = 3
	}
	d := &Design{Spec: spec, Budget: linkbudget.TableI()}
	d.Budget.ShortestLinkM = spec.BoardSpacingM
	longest := math.Sqrt(spec.BoardSpacingM*spec.BoardSpacingM + 2*spec.BoardEdgeM*spec.BoardEdgeM)
	d.Budget.LongestLinkM = longest

	// Required SNR from the rate target: dual polarisation over the
	// Table I bandwidth, Shannon plus margin.
	perPol := spec.LinkRateGbps * 1e9 / 2 / d.Budget.BandwidthHz
	d.SpectralEfficiency = perPol
	targetSNR := units.DB(math.Pow(2, perPol)-1) + spec.SNRMarginDB

	d.Links = []LinkPlan{
		{
			Name:        "ahead",
			DistanceM:   spec.BoardSpacingM,
			TargetSNRdB: targetSNR,
			TxPowerDBm:  d.Budget.RequiredTxPowerDBm(spec.BoardSpacingM, targetSNR, false),
		},
		{
			Name:        "diagonal",
			DistanceM:   longest,
			TargetSNRdB: targetSNR,
			Butler:      spec.Butler,
			TxPowerDBm:  d.Budget.RequiredTxPowerDBm(longest, targetSNR, spec.Butler),
		},
	}

	var err error
	d.Code, err = chooseCode(spec.LatencyBudgetBits)
	if err != nil {
		return nil, err
	}
	d.Stack, err = chooseStack(spec.StackModules, spec.StackInjectionRate)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// chooseCode picks the (N, W) pair of the paper's code family whose
// structural latency fits the budget, following the shape of Fig. 10:
// performance improves with the spent latency W*N, the minimum window
// W = mcc+1 is a last resort (its curves sit far right of the others),
// and at equal spent latency a larger lifting factor (longer constraint
// length) wins.
func chooseCode(budgetBits int) (CodePlan, error) {
	spreading := ldpc.PaperSpreading()
	rate := 0.5
	nv := 2
	minW := spreading.Memory() + 1

	type cand struct {
		n, w int
		lat  float64
	}
	better := func(a, b cand) bool { // is a better than b
		aHealthy, bHealthy := a.w > minW, b.w > minW
		if aHealthy != bHealthy {
			return aHealthy
		}
		if a.lat != b.lat {
			return a.lat > b.lat // spend the budget
		}
		return a.n > b.n // longer constraint length
	}

	var best cand
	found := false
	for _, n := range []int{25, 40, 60} {
		for w := minW; w <= 8; w++ {
			lat := ldpc.WindowLatencyBits(w, n, nv, rate)
			if lat > float64(budgetBits) {
				break
			}
			c := cand{n: n, w: w, lat: lat}
			if !found || better(c, best) {
				best = c
				found = true
			}
		}
	}
	if !found {
		return CodePlan{}, fmt.Errorf("core: no LDPC-CC configuration fits %d bits (minimum is W=3, N=25: 75 bits)", budgetBits)
	}
	return CodePlan{
		Lifting: best.n, Window: best.w,
		LatencyBits:          best.lat,
		Rate:                 rate,
		BlockCodeLatencyBits: 2 * best.lat,
	}, nil
}

// stackCandidate is one compiled topology contender: the mesh, its
// frozen evaluator and its (injection-independent) saturation rate.
type stackCandidate struct {
	topo  *noc.Mesh
	model *analytic.Compiled
	sat   float64
}

// stackCache memoises compiled candidate topologies per module count.
// Compiling a mesh costs O(routers^2 x hops) — profiles put it at
// essentially 100% of an analytic sweep — while a design point only
// needs one O(channels) latency evaluation per candidate, and sweep
// grids revisit the same handful of module counts for every point.
// Mesh and Compiled are immutable and safe to share across sweep
// workers, and candidate construction is deterministic, so cached and
// freshly built candidates are indistinguishable; a bounded FIFO keeps
// an optimizer walking a wide StackModules range from pinning hundreds
// of large compiled meshes in memory.
var stackCache = struct {
	sync.Mutex
	entries map[int][]stackCandidate
	order   []int
}{entries: map[int][]stackCandidate{}}

// stackCacheCap bounds the cached module counts; scenario grids use a
// handful, and one 512-module entry is a few MB.
const stackCacheCap = 32

// compiledCandidates returns the compiled topology contenders for the
// module count, building and caching them on first request.
func compiledCandidates(modules int) []stackCandidate {
	stackCache.Lock()
	if c, ok := stackCache.entries[modules]; ok {
		stackCache.Unlock()
		return c
	}
	stackCache.Unlock()

	// Build outside the lock: compilation is the expensive part, and two
	// workers racing on the same module count produce identical
	// candidates, so the second insert is a harmless overwrite.
	var cands []stackCandidate
	for _, topo := range candidateTopologies(modules) {
		model := analytic.Model{Topo: topo, Traffic: noc.Uniform{}}.Compile()
		cands = append(cands, stackCandidate{topo: topo, model: model, sat: model.SaturationRate()})
	}

	stackCache.Lock()
	if _, dup := stackCache.entries[modules]; !dup {
		stackCache.entries[modules] = cands
		stackCache.order = append(stackCache.order, modules)
		if len(stackCache.order) > stackCacheCap {
			evict := stackCache.order[0]
			stackCache.order = stackCache.order[1:]
			delete(stackCache.entries, evict)
		}
	}
	stackCache.Unlock()
	return cands
}

// chooseStack evaluates the Fig. 7 topology types for the module count
// and picks the lowest-latency feasible one at the given load.
func chooseStack(modules int, injection float64) (StackPlan, error) {
	var alts []StackAlternative
	var bestMesh *noc.Mesh
	bestLat := math.Inf(1)
	var bestSat float64

	for _, cand := range compiledCandidates(modules) {
		lat, ok := cand.model.AvgLatency(injection)
		alts = append(alts, StackAlternative{
			Name:           cand.topo.Name(),
			LatencyCycles:  lat,
			SaturationRate: cand.sat,
			Feasible:       ok,
		})
		if ok && lat < bestLat {
			bestMesh, bestLat, bestSat = cand.topo, lat, cand.sat
		}
	}
	if bestMesh == nil {
		return StackPlan{Alternatives: alts},
			fmt.Errorf("core: no topology sustains %.2f flits/cycle/module for %d modules", injection, modules)
	}
	return StackPlan{
		Topology:       bestMesh,
		LatencyCycles:  bestLat,
		SaturationRate: bestSat,
		Alternatives:   alts,
	}, nil
}

// candidateTopologies proposes meshes of the Fig. 7 types with module
// counts matching the request (rounding the grid up where needed).
func candidateTopologies(modules int) []*noc.Mesh {
	var out []*noc.Mesh
	// 2D mesh, near-square.
	w := int(math.Ceil(math.Sqrt(float64(modules))))
	h := (modules + w - 1) / w
	out = append(out, noc.NewMesh2D(w, h))
	// Star-mesh with concentration 4.
	if modules >= 4 {
		sw := int(math.Ceil(math.Sqrt(float64(modules) / 4)))
		sh := (modules/4 + sw - 1) / sw
		if sw >= 1 && sh >= 1 {
			out = append(out, noc.NewStarMesh(sw, sh, 4))
		}
	}
	// 3D mesh, near-cubic.
	c := int(math.Ceil(math.Cbrt(float64(modules))))
	cz := (modules + c*c - 1) / (c * c)
	if cz >= 2 {
		out = append(out, noc.NewMesh3D(c, c, cz))
		// Ciliated 3D mesh with concentration 2.
		if modules >= 8 && modules%2 == 0 {
			h := int(math.Ceil(math.Cbrt(float64(modules) / 2)))
			hz := (modules/2 + h*h - 1) / (h * h)
			if hz >= 2 {
				out = append(out, noc.NewCiliated3D(h, h, hz, 2))
			}
		}
	}
	return out
}

// TotalNodes returns the number of wireless nodes in the system.
func (d *Design) TotalNodes() int { return d.Spec.Boards * d.Spec.NodesPerBoard }

// WorstTxPowerDBm returns the largest required transmit power.
func (d *Design) WorstTxPowerDBm() float64 {
	worst := math.Inf(-1)
	for _, l := range d.Links {
		if l.TxPowerDBm > worst {
			worst = l.TxPowerDBm
		}
	}
	return worst
}

// Report renders a human-readable design summary.
func (d *Design) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Wireless backplane design (%d boards x %d nodes, %g Gbit/s links)\n",
		d.Spec.Boards, d.Spec.NodesPerBoard, d.Spec.LinkRateGbps)
	fmt.Fprintf(&sb, "  carrier %s, bandwidth %s, dual polarisation, %.2f bit/s/Hz/pol\n",
		units.FormatHz(d.Budget.FreqHz), units.FormatHz(d.Budget.BandwidthHz), d.SpectralEfficiency)
	for _, l := range d.Links {
		flag := ""
		if l.Butler {
			flag = " (butler worst case)"
		}
		fmt.Fprintf(&sb, "  link %-9s %.0f mm: target SNR %5.1f dB -> PTX %6.1f dBm%s\n",
			l.Name, l.DistanceM*1e3, l.TargetSNRdB, l.TxPowerDBm, flag)
	}
	fmt.Fprintf(&sb, "  code: (4,8) LDPC-CC N=%d W=%d, latency %.0f info bits (block code: %.0f)\n",
		d.Code.Lifting, d.Code.Window, d.Code.LatencyBits, d.Code.BlockCodeLatencyBits)
	fmt.Fprintf(&sb, "  stack NoC: %s, mean latency %.1f cycles, saturation %.2f flits/cycle/module\n",
		d.Stack.Topology.Name(), d.Stack.LatencyCycles, d.Stack.SaturationRate)
	for _, a := range d.Stack.Alternatives {
		status := "ok"
		if !a.Feasible {
			status = "saturated"
		}
		fmt.Fprintf(&sb, "    candidate %-30s latency %6.1f  sat %.2f  [%s]\n",
			a.Name, a.LatencyCycles, a.SaturationRate, status)
	}
	return sb.String()
}

// PathlossModelForSpec returns the measured-channel pathloss model used
// by the design, for callers that want raw channel numbers.
func PathlossModelForSpec(spec SystemSpec) channel.Pathloss {
	return channel.NewFreespacePathloss(232.5e9, 0.1)
}
