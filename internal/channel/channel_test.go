package channel

import (
	"math"
	"testing"
	"testing/quick"
)

const (
	carrierHz = 232.5e9 // centre of the 220-245 GHz measurement band
	bandLoHz  = 220e9
	bandHiHz  = 245e9
)

func TestFreespacePathlossMatchesTableI(t *testing.T) {
	pl := NewFreespacePathloss(carrierHz, 0.1)
	// Table I: 59.8 dB at 0.1 m, 69.3 dB at 0.3 m (232.5 GHz).
	if got := pl.LossDB(0.1); math.Abs(got-59.8) > 0.05 {
		t.Errorf("PL(0.1 m) = %.2f dB, want 59.8", got)
	}
	if got := pl.LossDB(0.3); math.Abs(got-69.3) > 0.05 {
		t.Errorf("PL(0.3 m) = %.2f dB, want 69.3", got)
	}
}

func TestPathlossExponentScaling(t *testing.T) {
	pl := Pathloss{RefDistM: 1, RefLossDB: 60, Exponent: 2}
	// Doubling distance with n=2 adds 6.02 dB.
	if diff := pl.LossDB(2) - pl.LossDB(1); math.Abs(diff-6.0206) > 1e-3 {
		t.Errorf("doubling added %.3f dB, want 6.02", diff)
	}
	pl.Exponent = 3
	if diff := pl.LossDB(2) - pl.LossDB(1); math.Abs(diff-9.031) > 1e-3 {
		t.Errorf("n=3 doubling added %.3f dB, want 9.03", diff)
	}
}

func TestAmplitudeGainConsistent(t *testing.T) {
	pl := NewFreespacePathloss(carrierHz, 0.1)
	a := pl.AmplitudeGain(0.2)
	back := -20 * math.Log10(a)
	if math.Abs(back-pl.LossDB(0.2)) > 1e-9 {
		t.Errorf("amplitude gain inconsistent with loss: %g vs %g", back, pl.LossDB(0.2))
	}
}

func TestPathlossPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zeroDist":  func() { NewFreespacePathloss(carrierHz, 0.1).LossDB(0) },
		"badFreq":   func() { NewFreespacePathloss(0, 0.1) },
		"badRef":    func() { NewFreespacePathloss(carrierHz, 0) },
		"fitLenMis": func() { FitPathloss([]float64{1}, []float64{1, 2}, 1) },
		"fitShort":  func() { FitPathloss([]float64{1}, []float64{1}, 1) },
		"fitNegDis": func() { FitPathloss([]float64{1, -1}, []float64{1, 2}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFitPathlossRecoversExactModel(t *testing.T) {
	truth := Pathloss{RefDistM: 0.1, RefLossDB: 59.8, Exponent: 2.0454}
	ds := []float64{0.05, 0.08, 0.1, 0.15, 0.2, 0.25, 0.3}
	ls := make([]float64, len(ds))
	for i, d := range ds {
		ls[i] = truth.LossDB(d)
	}
	fit, r2 := FitPathloss(ds, ls, 0.1)
	if math.Abs(fit.Exponent-2.0454) > 1e-9 {
		t.Errorf("fitted n = %g, want 2.0454", fit.Exponent)
	}
	if math.Abs(fit.RefLossDB-59.8) > 1e-9 {
		t.Errorf("fitted PL(d0) = %g, want 59.8", fit.RefLossDB)
	}
	if r2 < 1-1e-12 {
		t.Errorf("R^2 = %g, want 1 for noiseless fit", r2)
	}
}

func freespaceScenario(d float64) Scenario {
	return Scenario{LinkDistM: d, TXGainDB: HornGainDB, RXGainDB: HornGainDB}
}

func boardScenario(d float64) Scenario {
	return Scenario{LinkDistM: d, CopperBoards: true, TXGainDB: HornGainDB, RXGainDB: HornGainDB}
}

func TestRaysLoSFirstAndDelay(t *testing.T) {
	rays := boardScenario(0.05).Rays()
	if rays[0].Label != "line of sight" {
		t.Fatalf("first ray is %q, want line of sight", rays[0].Label)
	}
	wantDelay := 0.05 / 299792458.0
	if math.Abs(rays[0].DelayS()-wantDelay) > 1e-15 {
		t.Errorf("LoS delay = %g, want %g", rays[0].DelayS(), wantDelay)
	}
}

func TestFreespaceHasNoBoardEchoes(t *testing.T) {
	for _, r := range freespaceScenario(0.05).Rays() {
		if r.Label == "copper boards" {
			t.Error("freespace scenario produced a copper-board ray")
		}
	}
}

func TestBoardScenarioEchoFamilies(t *testing.T) {
	rays := boardScenario(0.05).Rays()
	counts := map[string]int{}
	for _, r := range rays {
		counts[r.Label]++
	}
	if counts["line of sight"] != 1 {
		t.Errorf("LoS rays = %d, want 1", counts["line of sight"])
	}
	if counts["copper boards"] != 3 { // default MaxRoundTrips
		t.Errorf("copper-board echoes = %d, want 3", counts["copper boards"])
	}
	if counts["horn antennas"] != 3 {
		t.Errorf("horn echoes = %d, want 3", counts["horn antennas"])
	}
	if counts["antenna ports"] != 2 {
		t.Errorf("port echoes = %d, want 2", counts["antenna ports"])
	}
}

func TestEchoDelaysAreOddTransitMultiples(t *testing.T) {
	const d = 0.05
	for _, r := range boardScenario(d).Rays() {
		if r.Label == "copper boards" || r.Label == "horn antennas" {
			ratio := r.LengthM / d
			k := math.Round(ratio)
			if math.Abs(ratio-k) > 1e-9 || int(k)%2 == 0 {
				t.Errorf("%s echo length %.3g m is not an odd multiple of d", r.Label, r.LengthM)
			}
			if int(k) != r.Transits {
				t.Errorf("transits %d disagrees with length ratio %g", r.Transits, ratio)
			}
		}
	}
}

func TestEchoesAtLeast15dBBelowLoS(t *testing.T) {
	// The paper's central measurement conclusion (Figs. 2-3): reflections
	// are always at least 15 dB below the main signal path.
	for _, d := range []float64{0.05, 0.1, 0.15, 0.3} {
		rel := boardScenario(d).WorstEchoRelativeDB(carrierHz)
		if rel > -15 {
			t.Errorf("d=%.2f m: worst echo %.1f dB relative to LoS, want <= -15", d, rel)
		}
		if rel < -40 {
			t.Errorf("d=%.2f m: worst echo %.1f dB — echoes unrealistically absent", d, rel)
		}
	}
}

func TestDiagonalEchoesWeakerThanAhead(t *testing.T) {
	// Rotating the boards steers the specular board echo away from the
	// return path, so the diagonal link's echoes are further suppressed
	// (compare Figs. 2 and 3).
	ahead := boardScenario(0.05).WorstEchoRelativeDB(carrierHz)
	diag := DiagonalScenario(0.15, 0.05, true).WorstEchoRelativeDB(carrierHz)
	if diag >= ahead {
		t.Errorf("diagonal worst echo %.1f dB not below ahead %.1f dB", diag, ahead)
	}
}

func TestChannelLargelyFrequencyFlat(t *testing.T) {
	// Paper Sec. VI: "the channel can be assumed to be static and largely
	// frequency flat". Across 220-245 GHz the board channel magnitude
	// should vary by only a few dB around its mean.
	sc := boardScenario(0.1)
	freqs := make([]float64, 256)
	for i := range freqs {
		freqs[i] = bandLoHz + (bandHiHz-bandLoHz)*float64(i)/255
	}
	h := sc.FrequencyResponse(freqs)
	minDB, maxDB := math.Inf(1), math.Inf(-1)
	for _, v := range h {
		db := 20 * math.Log10(cmplxAbs(v))
		minDB = math.Min(minDB, db)
		maxDB = math.Max(maxDB, db)
	}
	if ripple := maxDB - minDB; ripple > 6 {
		t.Errorf("in-band ripple %.1f dB, want < 6 (largely flat)", ripple)
	}
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

func TestFrequencyResponseLevelMatchesLinkBudget(t *testing.T) {
	// |S21| at the centre frequency should approximate
	// -(pathloss) + TX gain + RX gain for the dominant LoS ray.
	sc := freespaceScenario(0.1)
	sc.HornReflLossDB = 100 // suppress echoes for the level check
	sc.PortReflLossDB = 100
	h := sc.FrequencyResponse([]float64{carrierHz})
	gotDB := 20 * math.Log10(cmplxAbs(h[0]))
	wantDB := -59.8 + 9.5 + 9.5
	if math.Abs(gotDB-wantDB) > 0.1 {
		t.Errorf("|S21| = %.2f dB, want %.2f", gotDB, wantDB)
	}
}

func TestFittedExponentFreespace(t *testing.T) {
	// Sweeping the freespace scenario must recover n very close to 2.000.
	ds := []float64{0.05, 0.075, 0.1, 0.125, 0.15, 0.2, 0.25, 0.3}
	ls := make([]float64, len(ds))
	for i, d := range ds {
		g := freespaceScenario(d).BandAveragedGainDB(bandLoHz, bandHiHz, 128)
		ls[i] = -(g - 2*HornGainDB) // remove antenna gains
	}
	fit, r2 := FitPathloss(ds, ls, 0.1)
	if math.Abs(fit.Exponent-2.0) > 0.01 {
		t.Errorf("freespace fitted n = %.4f, want 2.000", fit.Exponent)
	}
	if r2 < 0.999 {
		t.Errorf("freespace fit R^2 = %g", r2)
	}
}

func TestFittedExponentCopperBoards(t *testing.T) {
	// With boards and the diagonal-link misalignment model, the fitted
	// exponent should land near the paper's 2.0454.
	ds := []float64{0.05, 0.075, 0.1, 0.125, 0.15, 0.2, 0.25, 0.3}
	ls := make([]float64, len(ds))
	for i, d := range ds {
		g := DiagonalScenario(d, 0.05, true).BandAveragedGainDB(bandLoHz, bandHiHz, 128)
		ls[i] = -(g - 2*HornGainDB)
	}
	fit, r2 := FitPathloss(ds, ls, 0.1)
	if fit.Exponent < 2.01 || fit.Exponent > 2.09 {
		t.Errorf("board fitted n = %.4f, want ~2.0454 (range [2.01, 2.09])", fit.Exponent)
	}
	if r2 < 0.995 {
		t.Errorf("board fit R^2 = %g", r2)
	}
}

func TestRaysPanicsOnBadDistance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rays with zero distance did not panic")
		}
	}()
	Scenario{LinkDistM: 0}.Rays()
}

func TestKrausHPBW(t *testing.T) {
	// A 9.5 dB horn has roughly a 68 degree beamwidth.
	hpbw := KrausHPBW(9.5) * 180 / math.Pi
	if hpbw < 55 || hpbw > 80 {
		t.Errorf("HPBW(9.5 dB) = %.1f deg, want ~68", hpbw)
	}
	// Higher gain means narrower beam.
	if KrausHPBW(20) >= KrausHPBW(10) {
		t.Error("HPBW must shrink with gain")
	}
}

func TestScenarioDefaults(t *testing.T) {
	sc := Scenario{LinkDistM: 0.1, CopperBoards: true, TXGainDB: 9.5}.Defaults()
	if sc.MaxRoundTrips != 3 || sc.BoardReflLossDB != 3.5 || sc.WaveguideLenM != 0.045 {
		t.Errorf("defaults not applied: %+v", sc)
	}
	if sc.HPBWRad == 0 {
		t.Error("default HPBW not derived from gain")
	}
}

func TestDiagonalScenarioGeometry(t *testing.T) {
	sc := DiagonalScenario(0.1, 0.05, true)
	// cos(rot) = ahead/dist.
	if math.Abs(math.Cos(sc.RotationRad)-0.5) > 1e-12 {
		t.Errorf("rotation = %g rad, want acos(0.5)", sc.RotationRad)
	}
	// Clamps distances below the ahead distance.
	sc = DiagonalScenario(0.01, 0.05, false)
	if sc.LinkDistM != 0.05 || sc.RotationRad != 0 {
		t.Errorf("clamped scenario = %+v", sc)
	}
}

// Property: rays are sorted by delay and the LoS is the shortest.
func TestPropertyRaysSorted(t *testing.T) {
	f := func(rawD float64, copper bool) bool {
		d := 0.03 + math.Mod(math.Abs(rawD), 0.3)
		rays := Scenario{
			LinkDistM: d, CopperBoards: copper,
			TXGainDB: 9.5, RXGainDB: 9.5,
		}.Rays()
		for i := 1; i < len(rays); i++ {
			if rays[i].LengthM < rays[i-1].LengthM {
				return false
			}
		}
		return rays[0].Label == "line of sight"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: pathloss is monotone increasing in distance.
func TestPropertyPathlossMonotone(t *testing.T) {
	pl := NewFreespacePathloss(carrierHz, 0.1)
	f := func(a, b float64) bool {
		d1 := 0.01 + math.Mod(math.Abs(a), 10)
		d2 := d1 + 0.01 + math.Mod(math.Abs(b), 10)
		return pl.LossDB(d2) > pl.LossDB(d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every echo is below the line of sight for any geometry.
func TestPropertyEchoesBelowLoS(t *testing.T) {
	f := func(rawD float64) bool {
		d := 0.05 + math.Mod(math.Abs(rawD), 0.25)
		return boardScenario(d).WorstEchoRelativeDB(carrierHz) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
