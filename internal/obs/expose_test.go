package obs

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sampleLine matches one exposition sample: name, optional label set,
// value. Label values are quoted strings with \\, \" and \n escapes.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

// parseExposition validates every line of a rendered registry and
// returns the samples keyed by "name{labels}".
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	typed := map[string]string{}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown TYPE %q in %q", parts[3], line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("line is not a valid Prometheus sample: %q", line)
		}
		space := strings.LastIndexByte(line, ' ')
		key, valStr := line[:space], line[space+1:]
		var v float64
		switch valStr {
		case "+Inf", "-Inf", "NaN":
			// Parsed by the regexp; fine as-is for presence checks.
		default:
			var err error
			if v, err = strconv.ParseFloat(valStr, 64); err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
		}
		// Every sample must belong to a family announced by a TYPE line
		// above it.
		base := key
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		family := base
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam, ok := typed[strings.TrimSuffix(base, suffix)]; ok && fam == "histogram" {
				family = strings.TrimSuffix(base, suffix)
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("sample %q has no preceding TYPE line", line)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = v
	}
	return samples
}

func TestExpositionParsesBack(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("app_ops_total", "ops by kind", "kind").With("read").Add(7)
	reg.Counter("app_ops_total", "ops by kind", "kind").With("write").Add(2)
	reg.Gauge("app_depth", "queue depth").With().Set(3)
	h := reg.Histogram("app_latency_seconds", "latency", []float64{0.1, 1}, "route")
	h.With("GET /x").Observe(0.05)
	h.With("GET /x").Observe(0.5)
	h.With("GET /x").Observe(2)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, sb.String())

	if samples[`app_ops_total{kind="read"}`] != 7 || samples[`app_ops_total{kind="write"}`] != 2 {
		t.Fatalf("counter samples wrong: %v", samples)
	}
	if samples[`app_depth`] != 3 {
		t.Fatalf("gauge sample wrong: %v", samples)
	}

	// Histogram invariants: buckets are cumulative, +Inf equals _count,
	// and _sum is the observation total.
	b1 := samples[`app_latency_seconds_bucket{route="GET /x",le="0.1"}`]
	b2 := samples[`app_latency_seconds_bucket{route="GET /x",le="1"}`]
	binf := samples[`app_latency_seconds_bucket{route="GET /x",le="+Inf"}`]
	count := samples[`app_latency_seconds_count{route="GET /x"}`]
	sum := samples[`app_latency_seconds_sum{route="GET /x"}`]
	if b1 != 1 || b2 != 2 || binf != 3 {
		t.Fatalf("buckets not cumulative: le0.1=%v le1=%v leInf=%v", b1, b2, binf)
	}
	if count != binf {
		t.Fatalf("_count %v != +Inf bucket %v", count, binf)
	}
	if sum != 0.05+0.5+2 {
		t.Fatalf("_sum = %v", sum)
	}
}

func TestExpositionDeterministicOrder(t *testing.T) {
	render := func() string {
		reg := NewRegistry()
		reg.Counter("z_total", "z").With().Inc()
		reg.Counter("a_total", "a", "k").With("b").Inc()
		reg.Counter("a_total", "a", "k").With("a").Inc()
		reg.Gauge("m_depth", "m").With().Set(1)
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if render() != first {
			t.Fatal("exposition order is not deterministic")
		}
	}
	// Families sorted by name, series by label value.
	aIdx := strings.Index(first, "a_total{")
	zIdx := strings.Index(first, "z_total")
	if aIdx < 0 || zIdx < 0 || aIdx > zIdx {
		t.Fatalf("families out of order:\n%s", first)
	}
	if strings.Index(first, `a_total{k="a"}`) > strings.Index(first, `a_total{k="b"}`) {
		t.Fatalf("series out of order:\n%s", first)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	weird := "quote\" backslash\\ newline\n end"
	reg.Counter("esc_total", "escapes", "v").With(weird).Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `esc_total{v="quote\" backslash\\ newline\n end"} 1`
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("escaped sample missing; got:\n%s", out)
	}
	// And the escaped form still parses as a single valid sample line.
	parseExposition(t, out)
}

func TestHandlerServesExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served_total", "served").With().Add(4)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q, want %q", ct, ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if samples := parseExposition(t, string(body)); samples["served_total"] != 4 {
		t.Fatalf("served_total = %v", samples["served_total"])
	}
}
