package ldpc

import "fmt"

// frozenLLR caps the magnitude of the soft decision feedback for decided
// blocks during window decoding.
const frozenLLR = 60.0

func clampLLR(x, lim float64) float64 {
	if x > lim {
		return lim
	}
	if x < -lim {
		return -lim
	}
	return x
}

// WindowDecoder implements the sliding window decoder of Fig. 9: a
// window of W consecutive coupled code blocks is decoded with belief
// propagation, the oldest (target) block is decided and frozen, and the
// window slides one position. The decoder also reads the mcc previously
// decided blocks, exactly as the schematic shows; its structural latency
// is W*N*nv*R information bits (Eq. 4), independent of the termination
// length L.
type WindowDecoder struct {
	code *Code
	// W is the window size in blocks, between mcc+1 and L.
	W   int
	dec *Decoder
	llr []float64
	// batch serves DecodeBatch (created lazily, sized to the first
	// batch and regrown on demand).
	batch *BatchDecoder
	out   [][]uint8
}

// NewWindowDecoder wraps a terminated convolutional code. maxIter bounds
// the BP iterations per window position.
func NewWindowDecoder(code *Code, w int, alg Algorithm, maxIter int) *WindowDecoder {
	if code.Positions < 2 || code.Memory < 1 {
		panic("ldpc: window decoding needs a coupled (convolutional) code")
	}
	if w < code.Memory+1 || w > code.Positions {
		panic(fmt.Sprintf("ldpc: window size %d outside [mcc+1=%d, L=%d]",
			w, code.Memory+1, code.Positions))
	}
	return &WindowDecoder{
		code: code,
		W:    w,
		dec:  NewDecoder(code, alg, maxIter),
		llr:  make([]float64, code.NumVars),
	}
}

// Code returns the underlying terminated convolutional code.
func (w *WindowDecoder) Code() *Code { return w.code }

// SetSchedule selects the message-passing schedule of the per-window BP.
func (w *WindowDecoder) SetSchedule(s Schedule) { w.dec.Sched = s }

// Decode runs the sliding window over the received channel LLRs and
// returns hard decisions for all code bits. The input is not modified.
func (w *WindowDecoder) Decode(channelLLR []float64) []uint8 {
	c := w.code
	if len(channelLLR) != c.NumVars {
		panic(fmt.Sprintf("ldpc: LLR length %d, want %d", len(channelLLR), c.NumVars))
	}
	copy(w.llr, channelLLR)
	out := make([]uint8, c.NumVars)

	L := c.Positions
	for t := 0; t < L; t++ {
		chkHi := t + w.W
		if chkHi > L+c.Memory {
			chkHi = L + c.Memory
		}
		varLo := t - c.Memory
		if varLo < 0 {
			varLo = 0
		}
		varHi := t + w.W
		if varHi > L {
			varHi = L
		}
		res := w.dec.decodeRange(w.llr,
			t*c.CheckBlockLen, chkHi*c.CheckBlockLen,
			varLo*c.BlockLen, varHi*c.BlockLen)

		// Decide the target block t and feed its posterior back as the
		// effective channel information for the read-back region of the
		// following windows. Soft feedback (rather than a hard +-inf
		// freeze) keeps a wrong decision weak enough for later windows
		// to resist it, which truncates error-propagation bursts.
		post := w.dec.Posterior()
		for v := t * c.BlockLen; v < (t+1)*c.BlockLen; v++ {
			out[v] = res.Hard[v]
			w.llr[v] = clampLLR(post[v], frozenLLR)
		}
	}
	return out
}

// DecodeBatch runs the sliding window over a batch of received channel
// LLR vectors in lockstep, one BatchDecoder lane per codeword, and
// returns per-lane hard decisions (row l for llrs[l]). Each lane's
// result is bit-identical to Decode(llrs[l]): every window position
// decodes all lanes with the same schedule, freezes the target block
// per lane from that lane's own posterior, and feeds the soft decision
// back into that lane's channel column. len(llrs) must be in
// [1, MaxBatchLanes]. The returned rows are owned by the decoder and
// valid until its next DecodeBatch call; the inputs are not modified.
func (w *WindowDecoder) DecodeBatch(llrs [][]float64) [][]uint8 {
	c := w.code
	n := len(llrs)
	if n < 1 || n > MaxBatchLanes {
		panic(fmt.Sprintf("ldpc: batch size %d outside [1, %d]", n, MaxBatchLanes))
	}
	if w.batch == nil || w.batch.lanes < n {
		w.batch = NewBatchDecoder(c, w.dec.Alg, w.dec.MaxIter, n)
	}
	b := w.batch
	b.Alg, b.Sched, b.MaxIter = w.dec.Alg, w.dec.Sched, w.dec.MaxIter
	for l, llr := range llrs {
		if len(llr) != c.NumVars {
			panic(fmt.Sprintf("ldpc: lane %d LLR length %d, want %d", l, len(llr), c.NumVars))
		}
		b.SetChannelLLR(l, llr)
	}
	if cap(w.out) < n {
		w.out = append(w.out[:cap(w.out)], make([][]uint8, n-cap(w.out))...)
	}
	w.out = w.out[:n]
	for l := range w.out {
		if w.out[l] == nil {
			w.out[l] = make([]uint8, c.NumVars)
		}
	}

	s := b.stride
	L := c.Positions
	for t := 0; t < L; t++ {
		chkHi := t + w.W
		if chkHi > L+c.Memory {
			chkHi = L + c.Memory
		}
		varLo := t - c.Memory
		if varLo < 0 {
			varLo = 0
		}
		varHi := t + w.W
		if varHi > L {
			varHi = L
		}
		b.decodeRangeBatch(
			t*c.CheckBlockLen, chkHi*c.CheckBlockLen,
			varLo*c.BlockLen, varHi*c.BlockLen, n)

		// Decide the target block t per lane and feed each lane's
		// posterior back as its effective channel information, exactly
		// as the scalar path does.
		for v := t * c.BlockLen; v < (t+1)*c.BlockLen; v++ {
			bits := b.hardBits[v]
			row := b.posterior[v*s : v*s+n]
			ch := b.chLLR[v*s : v*s+n]
			for l := 0; l < n; l++ {
				w.out[l][v] = uint8(bits >> uint(l) & 1)
				ch[l] = clampLLR(row[l], frozenLLR)
			}
		}
	}
	return w.out
}

// WindowLatencyBits is the structural latency of the window decoder in
// information bits (Eq. 4): TWD = W * N * nv * R.
func WindowLatencyBits(w, n, nv int, rate float64) float64 {
	return float64(w) * float64(n) * float64(nv) * rate
}

// BlockLatencyBits is the structural latency of a block code in
// information bits (Eq. 5): TB = N * nv * R.
func BlockLatencyBits(n, nv int, rate float64) float64 {
	return float64(n) * float64(nv) * rate
}
