// Package fsio holds the small filesystem idioms every command-line
// tool in this repository shares — atomic output-file writes and
// directory fsyncs. Results files (sweep outputs, BENCH_*.json
// baselines) gate CI jobs and downstream tooling, and store index and
// manifest files decide what the storage engine replays on reopen, so
// a crashed or out-of-space run must never leave a truncated file
// behind and a rename must never evaporate in a power cut; every
// writer goes through WriteFileAtomic instead of hand-rolling
// os.Create.
package fsio

import (
	"os"
	"path/filepath"
	"runtime"
)

// WriteFileAtomic streams emit into a temp file next to path and renames
// it into place only after a successful write, sync and close — readers
// never observe a partial file and every emitter or flush error reaches
// the caller (and so the exit code) instead of being lost in a deferred
// Close. After the rename the parent directory is fsynced: on
// journaling filesystems a rename lives in the directory, and a crash
// right after Rename returns can otherwise lose the new name entirely.
func WriteFileAtomic(path string, emit func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	// CreateTemp makes 0600 files; match what os.Create would have
	// produced so other readers keep working.
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := emit(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making the file creations, renames and
// removals inside it durable. POSIX persists directory entries
// independently of file contents: a freshly created or renamed file
// whose directory was never synced can vanish after a crash even
// though its own bytes were fsynced. Callers that rotate segment
// files, rename index or manifest files, or delete compacted segments
// follow the metadata operation with a SyncDir on the parent.
//
// On platforms whose directory handles do not support fsync (Windows)
// it is a no-op, keeping callers portable.
func SyncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
