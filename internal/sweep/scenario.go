package sweep

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Point is one cell of a scenario's design grid.
type Point struct {
	Index int             `json:"index"`
	Label string          `json:"label"`
	Spec  core.SystemSpec `json:"spec"`
}

// Scenario is a named generator of design points. Points must be a pure
// function: the executor calls it once per sweep and derives per-point
// randomness from the sweep seed, never from the scenario.
type Scenario struct {
	Name        string
	Description string
	Points      func() []Point
}

var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a scenario to the catalog; it panics on a duplicate or
// empty name, since both are programming errors.
func Register(s Scenario) {
	if s.Name == "" || s.Points == nil {
		panic("sweep: scenario needs a name and a point generator")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("sweep: duplicate scenario %q", s.Name))
	}
	registry[s.Name] = s
}

// Get returns the named scenario.
func Get(name string) (Scenario, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return Scenario{}, fmt.Errorf("sweep: unknown scenario %q (have %v)", name, namesLocked())
	}
	return s, nil
}

// Names lists the registered scenarios in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// grid appends one point per spec produced by the label/spec pairs,
// numbering them in generation order.
type grid struct {
	pts []Point
}

func (g *grid) add(label string, spec core.SystemSpec) {
	g.pts = append(g.pts, Point{Index: len(g.pts), Label: label, Spec: spec})
}

func init() {
	Register(Scenario{
		Name:        "paper-baseline",
		Description: "the paper's 4-board box: latency budget x beamforming realisation",
		Points: func() []Point {
			var g grid
			for _, butler := range []bool{true, false} {
				for _, lat := range []int{100, 200, 300, 400} {
					spec := core.DefaultSpec()
					spec.LatencyBudgetBits = lat
					spec.Butler = butler
					g.add(fmt.Sprintf("latency=%db butler=%v", lat, butler), spec)
				}
			}
			return g.pts
		},
	})

	Register(Scenario{
		Name:        "dense-rack",
		Description: "datacenter rack density: many tightly packed boards at high link rates",
		Points: func() []Point {
			var g grid
			for _, boards := range []int{8, 16} {
				for _, rate := range []float64{50, 100, 200} {
					spec := core.DefaultSpec()
					spec.Boards = boards
					spec.NodesPerBoard = 16
					spec.BoardSpacingM = 0.05
					spec.LinkRateGbps = rate
					spec.StackInjectionRate = 0.15
					g.add(fmt.Sprintf("boards=%d rate=%.0fG", boards, rate), spec)
				}
			}
			return g.pts
		},
	})

	Register(Scenario{
		Name:        "embedded-box",
		Description: "small sealed enclosure: two or three boards, modest rates, small stacks",
		Points: func() []Point {
			var g grid
			for _, boards := range []int{2, 3} {
				for _, rate := range []float64{10, 25, 50} {
					spec := core.DefaultSpec()
					spec.Boards = boards
					spec.BoardSpacingM = 0.05
					spec.BoardEdgeM = 0.05
					spec.NodesPerBoard = 4
					spec.LinkRateGbps = rate
					spec.LatencyBudgetBits = 100
					spec.StackModules = 16
					spec.StackInjectionRate = 0.05
					g.add(fmt.Sprintf("boards=%d rate=%.0fG", boards, rate), spec)
				}
			}
			return g.pts
		},
	})

	Register(Scenario{
		Name:        "manycore",
		Description: "many-stack manycore: NiCS module count against injection load",
		Points: func() []Point {
			var g grid
			for _, modules := range []int{64, 128, 256, 512} {
				for _, inj := range []float64{0.05, 0.1, 0.15} {
					spec := core.DefaultSpec()
					spec.StackModules = modules
					spec.StackInjectionRate = inj
					g.add(fmt.Sprintf("modules=%d inj=%.2f", modules, inj), spec)
				}
			}
			return g.pts
		},
	})

	Register(Scenario{
		Name:        "butler-vs-steered",
		Description: "beamforming realisation against board spacing: the Butler 5 dB penalty in TX power",
		Points: func() []Point {
			var g grid
			for _, butler := range []bool{true, false} {
				for _, spacing := range []float64{0.05, 0.1, 0.15, 0.2} {
					spec := core.DefaultSpec()
					spec.Butler = butler
					spec.BoardSpacingM = spacing
					g.add(fmt.Sprintf("butler=%v spacing=%.0fmm", butler, spacing*1e3), spec)
				}
			}
			return g.pts
		},
	})
}
