package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareCountsAndTimes(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, nil)
	mux := http.NewServeMux()
	mux.Handle("GET /ok", hm.Wrap("GET /ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})))
	mux.Handle("GET /missing", hm.Wrap("GET /missing", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/ok")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if got := hm.requests.With("GET /ok", "2xx").Value(); got != 3 {
		t.Fatalf("2xx count = %v, want 3", got)
	}
	if got := hm.requests.With("GET /missing", "4xx").Value(); got != 1 {
		t.Fatalf("4xx count = %v, want 1", got)
	}
	if got := hm.duration.With("GET /ok").Count(); got != 3 {
		t.Fatalf("duration observations = %v, want 3", got)
	}
	if got := hm.inFlight.Value(); got != 0 {
		t.Fatalf("in-flight after requests = %v, want 0", got)
	}
}

func TestMiddlewareRequestID(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, nil)
	var seen string
	h := hm.Wrap("GET /", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	// A client-supplied ID is propagated to the handler context and
	// echoed in the response.
	req, _ := http.NewRequest("GET", srv.URL, nil)
	req.Header.Set(RequestIDHeader, "client-id-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if seen != "client-id-7" {
		t.Fatalf("handler saw request ID %q, want client-id-7", seen)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "client-id-7" {
		t.Fatalf("echoed request ID = %q", got)
	}

	// Absent IDs are minted and still echoed.
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if minted := resp.Header.Get(RequestIDHeader); len(minted) != 16 || seen != minted {
		t.Fatalf("minted ID %q (handler saw %q)", minted, seen)
	}
}

func TestMiddlewarePreservesFlusher(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, nil)
	flushed := false
	h := hm.Wrap("GET /stream", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("wrapped writer lost http.Flusher")
			return
		}
		io.WriteString(w, "line\n")
		f.Flush()
		flushed = true
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stream", nil))
	if !flushed {
		t.Fatal("handler never flushed")
	}
	if !rec.Flushed {
		t.Fatal("flush did not reach the underlying writer")
	}
	if !strings.Contains(rec.Body.String(), "line") {
		t.Fatal("body lost")
	}
}
