package sweep

import (
	"context"
	"fmt"

	"repro/internal/rng"
)

// Chunk is a half-open range [Start, End) of grid indices — the unit of
// work a distributed sweep hands to one worker. Because every point's
// random sub-stream is a pure function of (sweep seed, point index), a
// chunk is independently evaluable: any process holding the scenario
// name, the seed and the budget reproduces exactly the records a
// single-node Run would have produced for those indices.
type Chunk struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len returns the number of points in the chunk.
func (c Chunk) Len() int { return c.End - c.Start }

func (c Chunk) String() string { return fmt.Sprintf("[%d,%d)", c.Start, c.End) }

// Chunks partitions n grid points into contiguous chunks of at most
// size points each (size <= 0 selects one chunk per point). The
// partition is deterministic: the same (n, size) always yields the same
// chunks, so daemon and workers agree on work-unit boundaries without
// negotiation.
func Chunks(n, size int) []Chunk {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = 1
	}
	out := make([]Chunk, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Chunk{Start: lo, End: hi})
	}
	return out
}

// EvaluateChunk evaluates the scenario's points in [c.Start, c.End) and
// returns their records in index order (slot k holds point c.Start+k).
// Each point gets the same rng sub-stream — root.Split(index+1) off
// rng.New(cfg.Seed) — that a full Run of the scenario would give it, so
// concatenating the chunks of any partition reproduces Run's records
// byte for byte. This is the determinism contract the distributed
// worker tier is built on.
//
// cfg.Workers bounds the local pool, cfg.Cache and cfg.OnPoint are
// honoured per point exactly as in Run. Records are returned with
// Pareto unset: the front is a property of the whole sweep and is
// marked by whoever merges the chunks.
func EvaluateChunk(ctx context.Context, sc Scenario, c Chunk, cfg Config) ([]Record, error) {
	pts := sc.Points()
	if c.Start < 0 || c.End > len(pts) || c.Start > c.End {
		return nil, fmt.Errorf("sweep: chunk %v out of range for scenario %q (%d points)", c, sc.Name, len(pts))
	}
	if c.Len() == 0 {
		return nil, ctx.Err()
	}
	eval := pointEvaluator(sc.Name, pts, cfg, rng.New(cfg.Seed), nil)
	return Map(ctx, c.Len(), cfg.Workers, func(k int) Record {
		return eval(c.Start + k)
	})
}
