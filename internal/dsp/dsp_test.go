package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func complexClose(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for i := 0; i < n; i++ {
			ang := -2 * math.Pi * float64(k) * float64(i) / float64(n)
			sum += x[i] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

func rampSignal(n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i%7)-3, float64((i*i)%5)-2)
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 12, 16, 17, 30, 64, 100} {
		x := rampSignal(n)
		got := FFT(x)
		want := naiveDFT(x)
		for k := range want {
			if !complexClose(got[k], want[k], 1e-8*float64(n)) {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33, 128, 4096} {
		x := rampSignal(n)
		rt := IFFT(FFT(x))
		for i := range x {
			if !complexClose(rt[i], x[i], 1e-8*float64(n)) {
				t.Fatalf("n=%d: IFFT(FFT(x))[%d] = %v, want %v", n, i, rt[i], x[i])
			}
		}
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	x := rampSignal(16)
	orig := append([]complex128(nil), x...)
	FFT(x)
	IFFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("FFT/IFFT modified the input slice")
		}
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	x := make([]complex128, 64)
	x[0] = 1
	X := FFT(x)
	for k, v := range X {
		if !complexClose(v, 1, 1e-10) {
			t.Fatalf("FFT of impulse not flat at bin %d: %v", k, v)
		}
	}
}

func TestFFTSingleToneLandsInOneBin(t *testing.T) {
	const n, bin = 256, 19
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * bin * float64(i) / n
		x[i] = cmplx.Exp(complex(0, ang))
	}
	X := FFT(x)
	for k := range X {
		want := complex(0, 0)
		if k == bin {
			want = complex(n, 0)
		}
		if !complexClose(X[k], want, 1e-7) {
			t.Fatalf("tone leakage at bin %d: %v", k, X[k])
		}
	}
}

func TestFFTRealMatchesComplex(t *testing.T) {
	x := []float64{1, 2, -1, 0.5, 3, -2, 0, 1}
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	a, b := FFTReal(x), FFT(c)
	for i := range a {
		if !complexClose(a[i], b[i], 1e-10) {
			t.Fatal("FFTReal disagrees with FFT")
		}
	}
}

// Property: Parseval's theorem, sum|x|^2 = (1/N) sum|X|^2.
func TestPropertyParseval(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 200 {
			return true
		}
		x := make([]complex128, len(raw))
		var tx float64
		for i, v := range raw {
			v = math.Mod(v, 1e3)
			if math.IsNaN(v) {
				v = 0
			}
			x[i] = complex(v, 0)
			tx += v * v
		}
		X := FFT(x)
		var fx float64
		for _, v := range X {
			fx += real(v)*real(v) + imag(v)*imag(v)
		}
		fx /= float64(len(x))
		return math.Abs(tx-fx) <= 1e-6*(1+tx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: FFT is linear.
func TestPropertyFFTLinearity(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed)%60 + 4
		a, b := rampSignal(n), make([]complex128, n)
		for i := range b {
			b[i] = complex(float64((i*3)%11)-5, float64(i%4))
		}
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = 2*a[i] + 3*b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for i := range fs {
			if !complexClose(fs[i], 2*fa[i]+3*fb[i], 1e-7*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWindowCoefficients(t *testing.T) {
	hann := Hann.Coefficients(5)
	want := []float64{0, 0.5, 1, 0.5, 0}
	for i := range want {
		if math.Abs(hann[i]-want[i]) > 1e-12 {
			t.Errorf("hann[%d] = %g, want %g", i, hann[i], want[i])
		}
	}
	rect := Rectangular.Coefficients(4)
	for _, v := range rect {
		if v != 1 {
			t.Error("rectangular window must be all ones")
		}
	}
	// Hamming endpoints are 0.08; Blackman endpoints ~0.
	if h := Hamming.Coefficients(11); math.Abs(h[0]-0.08) > 1e-12 {
		t.Errorf("hamming[0] = %g, want 0.08", h[0])
	}
	if bl := Blackman.Coefficients(11); math.Abs(bl[0]) > 1e-12 {
		t.Errorf("blackman[0] = %g, want ~0", bl[0])
	}
}

func TestWindowSingleSample(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		if c := w.Coefficients(1); len(c) != 1 || c[0] != 1 {
			t.Errorf("%v.Coefficients(1) = %v, want [1]", w, c)
		}
	}
}

func TestWindowPanicsOnNonPositiveLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Coefficients(0) did not panic")
		}
	}()
	Hann.Coefficients(0)
}

func TestWindowCoherentGain(t *testing.T) {
	// Rectangular coherent gain is exactly 1; Hann approaches 0.5.
	if g := Rectangular.CoherentGain(64); math.Abs(g-1) > 1e-12 {
		t.Errorf("rect gain = %g", g)
	}
	if g := Hann.CoherentGain(4096); math.Abs(g-0.5) > 1e-3 {
		t.Errorf("hann gain = %g, want ~0.5", g)
	}
}

func TestWindowStrings(t *testing.T) {
	if Rectangular.String() != "rectangular" || Hann.String() != "hann" ||
		Hamming.String() != "hamming" || Blackman.String() != "blackman" {
		t.Error("window String() values wrong")
	}
	if Window(99).String() != "unknown" {
		t.Error("unknown window String() wrong")
	}
}

func TestConvolveKnown(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{0, 1, 0.5})
	want := []float64{0, 1, 2.5, 4, 1.5}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Error("empty convolution should be nil")
	}
}

func TestCrossCorrelateFindsLag(t *testing.T) {
	a := []float64{0, 0, 0, 1, 2, 1, 0, 0}
	b := []float64{1, 2, 1}
	r := CrossCorrelate(a, b)
	// Peak should be where b aligns with a's bump.
	peak := ArgMax(r)
	lag := peak - (len(b) - 1) // convert index to lag
	if lag != 3 {
		t.Errorf("correlation peak lag = %d, want 3", lag)
	}
}

func TestUpsample(t *testing.T) {
	got := Upsample([]float64{1, 2}, 3)
	want := []float64{1, 0, 0, 2, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Upsample = %v, want %v", got, want)
		}
	}
}

func TestUpsamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Upsample factor 0 did not panic")
		}
	}()
	Upsample([]float64{1}, 0)
}

func TestEnergyAndNormalize(t *testing.T) {
	x := []float64{3, 4}
	if e := Energy(x); e != 25 {
		t.Errorf("Energy = %g, want 25", e)
	}
	NormalizeEnergy(x)
	if e := Energy(x); math.Abs(e-1) > 1e-12 {
		t.Errorf("normalised energy = %g, want 1", e)
	}
	zero := []float64{0, 0}
	if s := NormalizeEnergy(zero); s != 0 {
		t.Errorf("zero-signal normalisation factor = %g, want 0", s)
	}
}

func TestSinc(t *testing.T) {
	if Sinc(0) != 1 {
		t.Error("Sinc(0) != 1")
	}
	for k := 1; k <= 5; k++ {
		if v := Sinc(float64(k)); math.Abs(v) > 1e-15 {
			t.Errorf("Sinc(%d) = %g, want 0", k, v)
		}
	}
}

func TestRaisedCosine(t *testing.T) {
	// At t=0 the pulse is 1 for any roll-off.
	for _, beta := range []float64{0, 0.35, 1} {
		if v := RaisedCosine(0, beta); math.Abs(v-1) > 1e-12 {
			t.Errorf("RC(0, %g) = %g, want 1", beta, v)
		}
	}
	// Nyquist zero crossings at integer t.
	for k := 1; k <= 4; k++ {
		if v := RaisedCosine(float64(k), 0.35); math.Abs(v) > 1e-12 {
			t.Errorf("RC(%d) = %g, want 0", k, v)
		}
	}
	// Removable singularity at t = 1/(2 beta).
	v := RaisedCosine(1/(2*0.5), 0.5)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("RC singularity not handled: %g", v)
	}
}

func TestRaisedCosinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RaisedCosine with beta > 1 did not panic")
		}
	}()
	RaisedCosine(0, 2)
}

func TestMaxAbsArgMax(t *testing.T) {
	x := []float64{1, -5, 3}
	if MaxAbs(x) != 5 {
		t.Error("MaxAbs wrong")
	}
	if ArgMax(x) != 2 {
		t.Error("ArgMax wrong")
	}
	if ArgMax(nil) != -1 || MaxAbs(nil) != 0 {
		t.Error("empty-input conventions violated")
	}
}

func TestMagnitudeDB(t *testing.T) {
	db := MagnitudeDB([]complex128{10, 0})
	if math.Abs(db[0]-20) > 1e-12 {
		t.Errorf("MagnitudeDB(10) = %g, want 20", db[0])
	}
	if math.IsInf(db[1], -1) {
		t.Error("MagnitudeDB(0) must be floored, not -Inf")
	}
}

func BenchmarkFFT4096(b *testing.B) {
	x := rampSignal(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein4095(b *testing.B) {
	x := rampSignal(4095)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
