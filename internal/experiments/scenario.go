package experiments

import (
	"context"

	"repro/internal/sweep"
)

// ScenarioReport renders a registered sweep scenario as a report table:
// every grid point with its three system objectives, then the Pareto
// front. A non-nil cache (typically a *store.Store shared with
// cmd/sweepd and cmd/sweep) makes the grid read-through: points already
// evaluated anywhere — a figure run, a CLI sweep, a service job — are
// reused instead of recomputed, and the report says how many were.
func ScenarioReport(ctx context.Context, name, budget string, seed uint64, cache sweep.Cache) (string, error) {
	sc, err := sweep.Get(name)
	if err != nil {
		return "", err
	}
	b, err := sweep.ParseBudget(budget)
	if err != nil {
		return "", err
	}
	res, err := sweep.Run(ctx, sc, sweep.Config{Seed: seed, Budget: b, Cache: cache})
	if err != nil {
		return "", err
	}

	var t table
	t.title("Scenario %s — %s", res.Scenario, res.Description)
	t.title("budget %s, seed %d, %d points (%d cached, %d computed)",
		res.Budget, res.Seed, len(res.Records), res.CachedPoints, res.ComputedPoints)
	t.blank()
	for _, r := range res.Records {
		t.row("%s", r.Summary())
	}
	t.blank()
	t.title("Pareto front (TX power min, decode latency min, NoC saturation max): %d of %d",
		len(res.ParetoIndices), len(res.Records))
	for _, i := range res.ParetoIndices {
		t.row("%s", res.Records[i].Summary())
	}
	return t.String(), nil
}

// ScenarioNames lists the sweep scenarios a report can be built for.
func ScenarioNames() []string { return sweep.Names() }
