package store

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/sweep"
)

// BenchmarkStoreGetPut times the store's two hot operations: appending a
// fresh entry and serving an indexed one.
func BenchmarkStoreGetPut(b *testing.B) {
	b.Run("put", func(b *testing.B) {
		s, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		rec := testRecord(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Put(fmt.Sprintf("bench-%d", i), rec)
		}
	})
	b.Run("get", func(b *testing.B) {
		s, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		const n = 1024
		for i := 0; i < n; i++ {
			s.Put(fmt.Sprintf("bench-%d", i), testRecord(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := s.Get(fmt.Sprintf("bench-%d", i%n)); !ok {
				b.Fatal("indexed key missed")
			}
		}
	})
}

// BenchmarkSweepWarmVsCold contrasts a paper-baseline sweep that misses
// the store on every point (cold) with one that hits on every point
// (warm) — the cache-hit speedup the serving layer is built around.
func BenchmarkSweepWarmVsCold(b *testing.B) {
	sc, err := sweep.Get("paper-baseline")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		s, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh seed per iteration changes every point key, so
			// each sweep evaluates the full grid.
			res, err := sweep.Run(context.Background(), sc,
				sweep.Config{Seed: uint64(i) + 1000, Budget: sweep.AnalyticBudget(), Cache: s})
			if err != nil {
				b.Fatal(err)
			}
			if res.CachedPoints != 0 {
				b.Fatal("cold sweep hit the cache")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		cfg := sweep.Config{Seed: 1, Budget: sweep.AnalyticBudget(), Cache: s}
		if _, err := sweep.Run(context.Background(), sc, cfg); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sweep.Run(context.Background(), sc, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.ComputedPoints != 0 {
				b.Fatal("warm sweep recomputed points")
			}
		}
	})
}
