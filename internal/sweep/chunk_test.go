package sweep

import (
	"context"
	"encoding/json"
	"testing"
)

func TestChunksPartition(t *testing.T) {
	cases := []struct {
		n, size int
		want    []Chunk
	}{
		{0, 4, nil},
		{-3, 4, nil},
		{1, 4, []Chunk{{0, 1}}},
		{4, 4, []Chunk{{0, 4}}},
		{5, 4, []Chunk{{0, 4}, {4, 5}}},
		{8, 3, []Chunk{{0, 3}, {3, 6}, {6, 8}}},
		{3, 0, []Chunk{{0, 1}, {1, 2}, {2, 3}}},
	}
	for _, c := range cases {
		got := Chunks(c.n, c.size)
		if len(got) != len(c.want) {
			t.Errorf("Chunks(%d, %d) = %v, want %v", c.n, c.size, got, c.want)
			continue
		}
		total := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Chunks(%d, %d)[%d] = %v, want %v", c.n, c.size, i, got[i], c.want[i])
			}
			total += got[i].Len()
		}
		if c.n > 0 && total != c.n {
			t.Errorf("Chunks(%d, %d) covers %d points", c.n, c.size, total)
		}
	}
}

// TestEvaluateChunkMatchesRun is the determinism contract of the
// distributed tier: concatenating the chunk records of any partition
// must reproduce a single-node Run byte for byte.
func TestEvaluateChunkMatchesRun(t *testing.T) {
	sc, err := Get("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 2, Seed: 7, Budget: AnalyticBudget()}
	full, err := Run(context.Background(), sc, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, size := range []int{1, 3, len(full.Records)} {
		var merged []Record
		for _, c := range Chunks(len(full.Records), size) {
			recs, err := EvaluateChunk(context.Background(), sc, c, cfg)
			if err != nil {
				t.Fatalf("chunk %v: %v", c, err)
			}
			if len(recs) != c.Len() {
				t.Fatalf("chunk %v returned %d records", c, len(recs))
			}
			merged = append(merged, recs...)
		}
		// Chunk records carry Pareto unset; the merger marks the front.
		MarkPareto(merged)
		a, _ := json.Marshal(full.Records)
		b, _ := json.Marshal(merged)
		if string(a) != string(b) {
			t.Fatalf("chunk size %d: merged records differ from single-node run", size)
		}
	}
}

func TestEvaluateChunkOutOfRange(t *testing.T) {
	sc, err := Get("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Chunk{{-1, 2}, {0, 1000}, {5, 3}} {
		if _, err := EvaluateChunk(context.Background(), sc, c, Config{Budget: AnalyticBudget()}); err == nil {
			t.Errorf("chunk %v: want range error", c)
		}
	}
	if recs, err := EvaluateChunk(context.Background(), sc, Chunk{2, 2}, Config{Budget: AnalyticBudget()}); err != nil || len(recs) != 0 {
		t.Errorf("empty chunk = (%v, %v), want no records, no error", recs, err)
	}
}
