package noc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeshCounts(t *testing.T) {
	cases := []struct {
		m        *Mesh
		routers  int
		modules  int
		channels int
	}{
		// 8x8 2D mesh: 2*2*(7*8) = 224 directed channels.
		{NewMesh2D(8, 8), 64, 64, 224},
		// 4x4 star-mesh c=4: 64 modules on 16 routers, 2*2*(3*4) = 48.
		{NewStarMesh(4, 4, 4), 16, 64, 48},
		// 4x4x4 3D mesh: 3 dims * 2 dirs * 3*4*4 = 288.
		{NewMesh3D(4, 4, 4), 64, 64, 288},
		// 32x16 2D mesh (512 modules).
		{NewMesh2D(32, 16), 512, 512, 2*31*16 + 2*15*32},
		// 8x8x8 3D mesh.
		{NewMesh3D(8, 8, 8), 512, 512, 3 * 2 * 7 * 64},
		// Ciliated 3D mesh: 4x4x2 with c=2 = 64 modules.
		{NewCiliated3D(4, 4, 2, 2), 32, 64, 2*2*3*4*2 + 2*16},
	}
	for _, c := range cases {
		if got := c.m.NumRouters(); got != c.routers {
			t.Errorf("%s: routers = %d, want %d", c.m.Name(), got, c.routers)
		}
		if got := c.m.NumModules(); got != c.modules {
			t.Errorf("%s: modules = %d, want %d", c.m.Name(), got, c.modules)
		}
		if got := c.m.NumChannels(); got != c.channels {
			t.Errorf("%s: channels = %d, want %d", c.m.Name(), got, c.channels)
		}
	}
}

func TestMeshPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zeroDim":    func() { NewMesh2D(0, 4) },
		"zeroConc":   func() { NewStarMesh(4, 4, 0) },
		"zeroPillar": func() { NewPillarMesh3D(4, 4, 2, 0) },
		"routeOOR":   func() { NewMesh2D(2, 2).Route(0, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	m := NewMesh3D(3, 4, 5)
	for r := 0; r < m.NumRouters(); r++ {
		x, y, z := m.Coords(r)
		if m.RouterAt(x, y, z) != r {
			t.Fatalf("coords round trip failed for router %d", r)
		}
	}
}

func TestRouterOf(t *testing.T) {
	m := NewStarMesh(4, 4, 4)
	if m.RouterOf(0) != 0 || m.RouterOf(3) != 0 || m.RouterOf(4) != 1 || m.RouterOf(63) != 15 {
		t.Error("module-to-router attachment wrong")
	}
}

func TestDimensionOrderRoute(t *testing.T) {
	m := NewMesh3D(4, 4, 4)
	src := m.RouterAt(0, 0, 0)
	dst := m.RouterAt(2, 3, 1)
	path := m.Route(src, dst)
	// X first (2 hops), then Y (3), then Z (1): 7 channels, 8 routers.
	if len(path) != 7 {
		t.Fatalf("path length = %d, want 7", len(path))
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatal("path endpoints wrong")
	}
	// Verify X-then-Y-then-Z order... wait: Z is routed before the final
	// XY walk only when a pillar detour applies; with pillars everywhere
	// the order is X, Y after Z? Check monotone per-dimension progress.
	for i := 1; i < len(path); i++ {
		if m.ChannelID(path[i-1], path[i]) < 0 {
			t.Fatalf("non-adjacent step %d -> %d", path[i-1], path[i])
		}
	}
	if m.Hops(src, dst) != 6 {
		t.Errorf("hops = %d, want 6 (Manhattan distance)", m.Hops(src, dst))
	}
}

func TestRouteSelfIsSingleton(t *testing.T) {
	m := NewMesh2D(4, 4)
	if p := m.Route(5, 5); len(p) != 1 || p[0] != 5 {
		t.Errorf("self route = %v", p)
	}
	if len(m.RouteChannels(5, 5)) != 0 {
		t.Error("self route has channels")
	}
}

func TestRouteHopsEqualManhattan(t *testing.T) {
	m := NewMesh3D(4, 4, 4)
	for s := 0; s < m.NumRouters(); s += 7 {
		for d := 0; d < m.NumRouters(); d += 5 {
			sx, sy, sz := m.Coords(s)
			dx, dy, dz := m.Coords(d)
			want := abs(sx-dx) + abs(sy-dy) + abs(sz-dz)
			if got := m.Hops(s, d); got != want {
				t.Fatalf("hops(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestPillarMeshRouting(t *testing.T) {
	// Pillars every 2: router (1,1,0) has no vertical link; a layer
	// change detours via pillar (0,0).
	m := NewPillarMesh3D(4, 4, 2, 2)
	src := m.RouterAt(1, 1, 0)
	dst := m.RouterAt(1, 1, 1)
	path := m.Route(src, dst)
	// Detour: (1,1,0)->(0,1,0)->(0,0,0)->(0,0,1)->(0,1,1)->(1,1,1).
	if len(path) != 6 {
		t.Fatalf("pillar route length = %d, want 6: %v", len(path), path)
	}
	// Every step must be a real channel (vertical only at pillars).
	for i := 1; i < len(path); i++ {
		if m.ChannelID(path[i-1], path[i]) < 0 {
			t.Fatalf("pillar route uses missing channel %d -> %d", path[i-1], path[i])
		}
	}
	// Fewer vertical channels than the full mesh.
	full := NewMesh3D(4, 4, 2).ComputeMetrics().VerticalChannels
	sparse := m.ComputeMetrics().VerticalChannels
	if sparse >= full {
		t.Errorf("pillar mesh vertical channels %d not below full %d", sparse, full)
	}
}

func TestMetricsFig7(t *testing.T) {
	// Structural comparison behind Fig. 7 at 64 modules.
	mesh2d := NewMesh2D(8, 8).ComputeMetrics()
	star := NewStarMesh(4, 4, 4).ComputeMetrics()
	mesh3d := NewMesh3D(4, 4, 4).ComputeMetrics()

	// Diameters: 14 (8x8), 6 (4x4), 9 (4x4x4).
	if mesh2d.Diameter != 14 || star.Diameter != 6 || mesh3d.Diameter != 9 {
		t.Errorf("diameters = %d/%d/%d, want 14/6/9",
			mesh2d.Diameter, star.Diameter, mesh3d.Diameter)
	}
	// Average hops over distinct module pairs: 8x8 mesh 16/3; 4x4x4 mesh
	// 3.75 * 4096/4032; star-mesh a bit above 2.5 (same-router module
	// pairs count zero hops but so do fewer of them than self-pairs
	// would).
	if math.Abs(mesh2d.AvgHops-16.0/3) > 1e-9 {
		t.Errorf("2D avg hops = %g, want %g", mesh2d.AvgHops, 16.0/3)
	}
	if math.Abs(mesh3d.AvgHops-3.75*4096/4032) > 1e-9 {
		t.Errorf("3D avg hops = %g, want %g", mesh3d.AvgHops, 3.75*4096/4032)
	}
	if star.AvgHops >= 2.6 || star.AvgHops <= 2.0 {
		t.Errorf("star-mesh avg hops = %g, want in (2.0, 2.6)", star.AvgHops)
	}
	// Bisection: 3D mesh has twice the 2D mesh's cut (32 vs 16 directed),
	// star-mesh only 8.
	if mesh2d.BisectionChannels != 16 || mesh3d.BisectionChannels != 32 || star.BisectionChannels != 8 {
		t.Errorf("bisections = %d/%d/%d, want 16/32/8",
			mesh2d.BisectionChannels, mesh3d.BisectionChannels, star.BisectionChannels)
	}
	// The 3D mesh has only vertical channels between layers.
	if mesh3d.VerticalChannels != 2*3*16 {
		t.Errorf("3D vertical channels = %d, want 96", mesh3d.VerticalChannels)
	}
	if mesh2d.VerticalChannels != 0 {
		t.Error("2D mesh reports vertical channels")
	}
}

func TestUniformTrafficShares(t *testing.T) {
	u := Uniform{}
	n := 64
	var sum float64
	for d := 0; d < n; d++ {
		sum += u.Share(5, d, n)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("uniform shares sum to %g", sum)
	}
	if u.Share(5, 5, n) != 0 {
		t.Error("self-traffic nonzero")
	}
}

func TestHotspotTrafficShares(t *testing.T) {
	h := Hotspot{Module: 0, Fraction: 0.5}
	n := 16
	for _, src := range []int{0, 3, 7} {
		var sum float64
		for d := 0; d < n; d++ {
			sum += h.Share(src, d, n)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("hotspot shares from %d sum to %g", src, sum)
		}
	}
	// Hot destination receives more than a uniform share.
	if h.Share(3, 0, n) <= 1.0/15 {
		t.Error("hotspot share not elevated")
	}
}

func TestHotspotPanicsOnBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad hotspot fraction did not panic")
		}
	}()
	Hotspot{Module: 0, Fraction: 1.5}.Share(1, 0, 4)
}

func TestBitComplementShares(t *testing.T) {
	b := BitComplement{}
	n := 8
	for src := 0; src < n; src++ {
		var sum float64
		for d := 0; d < n; d++ {
			sum += b.Share(src, d, n)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("bit-complement shares from %d sum to %g", src, sum)
		}
	}
}

// Property: routes are always valid channel sequences of Manhattan length
// on full meshes.
func TestPropertyRoutesValid(t *testing.T) {
	m := NewMesh3D(3, 3, 3)
	f := func(a, b uint8) bool {
		s := int(a) % m.NumRouters()
		d := int(b) % m.NumRouters()
		chans := m.RouteChannels(s, d)
		sx, sy, sz := m.Coords(s)
		dx, dy, dz := m.Coords(d)
		return len(chans) == abs(sx-dx)+abs(sy-dy)+abs(sz-dz)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: traffic shares are a probability distribution for any source.
func TestPropertyTrafficNormalised(t *testing.T) {
	patterns := []TrafficPattern{Uniform{}, Hotspot{Module: 2, Fraction: 0.3}, BitComplement{}}
	f := func(rawSrc uint8) bool {
		n := 32
		src := int(rawSrc) % n
		for _, p := range patterns {
			var sum float64
			for d := 0; d < n; d++ {
				s := p.Share(src, d, n)
				if s < 0 {
					return false
				}
				sum += s
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
