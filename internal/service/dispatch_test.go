package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
	"repro/internal/sweep/store"
)

func TestChunkRuns(t *testing.T) {
	cases := []struct {
		todo []int
		size int
		want []sweep.Chunk
	}{
		{nil, 4, nil},
		{[]int{0, 1, 2, 3, 4}, 3, []sweep.Chunk{{Start: 0, End: 3}, {Start: 3, End: 5}}},
		// Cache hits punch holes: runs on either side chunk independently.
		{[]int{0, 1, 4, 5, 6}, 4, []sweep.Chunk{{Start: 0, End: 2}, {Start: 4, End: 7}}},
		{[]int{2}, 4, []sweep.Chunk{{Start: 2, End: 3}}},
	}
	for _, c := range cases {
		got := chunkRuns(c.todo, c.size)
		if len(got) != len(c.want) {
			t.Errorf("chunkRuns(%v, %d) = %v, want %v", c.todo, c.size, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("chunkRuns(%v, %d)[%d] = %v, want %v", c.todo, c.size, i, got[i], c.want[i])
			}
		}
	}
}

// TestDistributedLifecycle is the acceptance test of the worker tier:
// an httptest sweepd in distributed mode, two HTTP workers leasing
// chunks of one job, a third "worker" that dies mid-lease, and the
// assertion that the merged result is byte-identical to a single-node
// run of the same scenario, budget and seed.
func TestDistributedLifecycle(t *testing.T) {
	const (
		scenario = "paper-baseline"
		seed     = 11
	)
	sc, err := sweep.Get(scenario)
	if err != nil {
		t.Fatal(err)
	}
	single, err := sweep.Run(context.Background(), sc, sweep.Config{
		Workers: 1, Seed: seed, Budget: sweep.AnalyticBudget(),
	})
	if err != nil {
		t.Fatal(err)
	}
	total := len(single.Records)

	m := New(Options{
		JobWorkers:  1,
		Distributed: true,
		ChunkPoints: 3,
		LeaseTTL:    200 * time.Millisecond,
	})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	v := submit(t, srv, Request{Scenario: scenario, Budget: "analytic", Seed: seed}, http.StatusAccepted)

	// A worker leases the first chunk and dies without ever heartbeating
	// or completing: its chunk must be re-leased after the TTL and the
	// job must still finish.
	zombie := NewClient(srv.URL)
	var zombieLease Lease
	deadline := time.Now().Add(10 * time.Second)
	for {
		l, ok, err := zombie.Lease("zombie")
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			zombieLease = l
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never produced a leasable chunk")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if zombieLease.Scenario != scenario || zombieLease.Seed != seed ||
		zombieLease.Engine != sweep.EngineVersion || zombieLease.End <= zombieLease.Start {
		t.Fatalf("lease malformed: %+v", zombieLease)
	}

	// Two live workers drain the queue over HTTP — the same RunWorker
	// loop cmd/sweepworker runs.
	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunWorker(wctx, NewClient(srv.URL), WorkerOptions{
				Name: name, Poll: 10 * time.Millisecond, Workers: 1,
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker %s: %v", name, err)
			}
		}()
	}

	done := pollDone(t, srv, v.ID)
	if done.Progress.Done != total || done.Progress.Pending != 0 || done.Progress.Cached != 0 {
		t.Fatalf("completed progress = %+v, want %d done", done.Progress, total)
	}

	// Byte-identity with the single-node run: the determinism contract.
	fleet, err := m.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var fleetJSON, singleJSON bytes.Buffer
	if err := sweep.WriteJSON(&fleetJSON, fleet); err != nil {
		t.Fatal(err)
	}
	if err := sweep.WriteJSON(&singleJSON, single); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fleetJSON.Bytes(), singleJSON.Bytes()) {
		t.Fatalf("fleet result differs from single-node run:\nfleet:  %s\nsingle: %s",
			fleetJSON.Bytes(), singleJSON.Bytes())
	}

	// The zombie's lease is dead: its chunk was re-queued and served by
	// a live worker, and its late messages answer gone.
	if _, err := zombie.Heartbeat(zombieLease.ID); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("zombie heartbeat error = %v, want ErrLeaseGone", err)
	}
	if err := zombie.Complete(zombieLease.ID, nil); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("zombie complete error = %v, want ErrLeaseGone", err)
	}

	// Fleet view: the zombie contributed nothing; w1+w2 computed the
	// whole grid.
	var fleetView []WorkerView
	getJSON(t, srv, "/api/v1/workers", &fleetView)
	points := map[string]int{}
	for _, wv := range fleetView {
		points[wv.Name] = wv.PointsDone
	}
	if points["zombie"] != 0 {
		t.Fatalf("zombie completed %d points", points["zombie"])
	}
	if points["w1"]+points["w2"] != total {
		t.Fatalf("fleet view: w1+w2 = %d points, want %d (%+v)", points["w1"]+points["w2"], total, fleetView)
	}

	stopWorkers()
	wg.Wait()
}

// TestDistributedCacheReuse proves the daemon-side store integration:
// records posted by workers are persisted, and an identical resubmission
// is served entirely from cache without a single lease.
func TestDistributedCacheReuse(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := New(Options{
		JobWorkers:  1,
		Distributed: true,
		ChunkPoints: 2,
		LeaseTTL:    time.Second,
		Cache:       st,
	})
	defer m.Shutdown(context.Background())

	// The in-process worker drives Manager's WorkerAPI directly — the
	// same loop, no HTTP — exercising sweepd's local-workers fallback.
	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		RunWorker(wctx, m, WorkerOptions{Name: "local-0", Poll: 5 * time.Millisecond, Workers: 1})
	}()

	req := Request{Scenario: "embedded-box", Budget: "analytic", Seed: 5}
	first, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	fv := waitState(t, m, first.ID, StateDone)
	if fv.Progress.Cached != 0 {
		t.Fatalf("cold job cached %d points", fv.Progress.Cached)
	}
	if st.Len() != fv.Progress.Total {
		t.Fatalf("store holds %d points after first job, want %d", st.Len(), fv.Progress.Total)
	}

	// No workers for the second job: every point must come from the
	// store, so it completes without any leasing at all.
	stopWorkers()
	<-workerDone
	second, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	sv := waitState(t, m, second.ID, StateDone)
	if sv.Progress.Cached != sv.Progress.Total {
		t.Fatalf("resubmission cached %d of %d points", sv.Progress.Cached, sv.Progress.Total)
	}

	r1, err := m.Result(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Result(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(r1.Records)
	b, _ := json.Marshal(r2.Records)
	if !bytes.Equal(a, b) {
		t.Fatal("cached resubmission records differ from computed records")
	}
}

// TestLeaseValidationAndIdempotency drives the worker API by hand:
// wrong-shaped completions are rejected 422-style, correct completions
// land, and duplicates are no-ops.
func TestLeaseValidationAndIdempotency(t *testing.T) {
	m := New(Options{
		JobWorkers:  1,
		Distributed: true,
		ChunkPoints: 100, // one chunk per job
		LeaseTTL:    time.Minute,
	})
	defer m.Shutdown(context.Background())

	v, err := m.Submit(Request{Scenario: "paper-baseline", Budget: "analytic", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	l := leaseEventually(t, m, "hand")
	sc, _ := sweep.Get(l.Scenario)
	budget, _ := sweep.ParseBudget(l.Budget)
	recs, err := sweep.EvaluateChunk(context.Background(), sc, sweep.Chunk{Start: l.Start, End: l.End},
		sweep.Config{Workers: 1, Seed: l.Seed, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}

	// Wrong count, wrong index, wrong scenario: all rejected.
	if err := m.Complete(l.ID, recs[:1]); !errors.Is(err, ErrBadRecords) {
		t.Fatalf("short completion error = %v, want ErrBadRecords", err)
	}
	mangled := append([]sweep.Record(nil), recs...)
	mangled[0].Index = 99
	if err := m.Complete(l.ID, mangled); !errors.Is(err, ErrBadRecords) {
		t.Fatalf("mangled-index completion error = %v, want ErrBadRecords", err)
	}

	// The rejected attempts must not have consumed the lease.
	if _, err := m.Heartbeat(l.ID); err != nil {
		t.Fatalf("heartbeat after rejected completion: %v", err)
	}
	if err := m.Complete(l.ID, recs); err != nil {
		t.Fatalf("valid completion: %v", err)
	}
	if err := m.Complete(l.ID, recs); err != nil {
		t.Fatalf("duplicate completion not idempotent: %v", err)
	}
	waitState(t, m, v.ID, StateDone)

	// Unknown lease ids answer gone.
	if _, err := m.Heartbeat("lease-999999"); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("unknown heartbeat error = %v, want ErrLeaseGone", err)
	}
}

// TestLateCompletionCreditsOriginalWorker: a completion under an
// expired, re-leased lease is accepted, but the fleet view must credit
// the worker that did the work — not the chunk's new holder.
func TestLateCompletionCreditsOriginalWorker(t *testing.T) {
	m := New(Options{
		JobWorkers:  1,
		Distributed: true,
		ChunkPoints: 100, // one chunk per job
		LeaseTTL:    30 * time.Millisecond,
	})
	defer m.Shutdown(context.Background())
	v, err := m.Submit(Request{Scenario: "paper-baseline", Budget: "analytic", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	slow := leaseEventually(t, m, "slow")
	sc, _ := sweep.Get(slow.Scenario)
	budget, _ := sweep.ParseBudget(slow.Budget)
	recs, err := sweep.EvaluateChunk(context.Background(), sc, sweep.Chunk{Start: slow.Start, End: slow.End},
		sweep.Config{Workers: 1, Seed: slow.Seed, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}

	// The lease expires and the chunk is re-leased to another worker.
	time.Sleep(50 * time.Millisecond)
	fast := leaseEventually(t, m, "fast")
	if fast.Start != slow.Start || fast.End != slow.End {
		t.Fatalf("re-lease got chunk [%d,%d), want [%d,%d)", fast.Start, fast.End, slow.Start, slow.End)
	}

	// The slow worker's late completion lands first and wins.
	if err := m.Complete(slow.ID, recs); err != nil {
		t.Fatalf("late completion rejected: %v", err)
	}
	waitState(t, m, v.ID, StateDone)
	// The re-lease's duplicate completion is a no-op either way: an
	// idempotent OK if it races in before the finished job's lease table
	// is torn down, gone afterwards. It must never be credited.
	if err := m.Complete(fast.ID, recs); err != nil && !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("re-lease duplicate completion: %v", err)
	}

	points := map[string]int{}
	for _, wv := range m.WorkerFleet() {
		points[wv.Name] = wv.PointsDone
	}
	if points["slow"] != len(recs) || points["fast"] != 0 {
		t.Fatalf("fleet credit slow=%d fast=%d, want %d and 0", points["slow"], points["fast"], len(recs))
	}
}

// TestWorkerReportsPanickingEvaluation: a panic inside chunk evaluation
// must reach FailLease (failing the job) rather than being mistaken for
// a lost lease and silently retried forever.
func TestWorkerReportsPanickingEvaluation(t *testing.T) {
	orig := evalChunk
	evalChunk = func(context.Context, sweep.Scenario, sweep.Chunk, sweep.Config) ([]sweep.Record, error) {
		panic("synthetic evaluation panic")
	}

	m := New(Options{
		JobWorkers:  1,
		Distributed: true,
		ChunkPoints: 100,
		LeaseTTL:    time.Minute,
	})
	defer m.Shutdown(context.Background())
	wctx, stopWorker := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		RunWorker(wctx, m, WorkerOptions{Name: "panicky", Poll: 5 * time.Millisecond})
	}()
	defer func() {
		// The worker goroutine must be gone before the patched hook is
		// restored, or the restore races its reads.
		stopWorker()
		<-workerDone
		evalChunk = orig
	}()

	v, err := m.Submit(Request{Scenario: "paper-baseline", Budget: "analytic", Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, v.ID, StateFailed)
	if !strings.Contains(got.Error, "synthetic evaluation panic") {
		t.Fatalf("job error = %q, want the panic message", got.Error)
	}
}

// TestWorkerEscalatesRejectedRecords: when the daemon rejects a
// completion as ErrBadRecords (grid skew between binaries), the
// rejection is deterministic — the worker must fail the job rather than
// let the chunk bounce between leases forever.
func TestWorkerEscalatesRejectedRecords(t *testing.T) {
	orig := evalChunk
	evalChunk = func(ctx context.Context, sc sweep.Scenario, c sweep.Chunk, cfg sweep.Config) ([]sweep.Record, error) {
		recs, err := orig(ctx, sc, c, cfg)
		for i := range recs {
			recs[i].Index += 1000 // a grid the daemon does not recognise
		}
		return recs, err
	}

	m := New(Options{
		JobWorkers:  1,
		Distributed: true,
		ChunkPoints: 100,
		LeaseTTL:    time.Minute,
	})
	defer m.Shutdown(context.Background())
	wctx, stopWorker := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		RunWorker(wctx, m, WorkerOptions{Name: "skewed", Poll: 5 * time.Millisecond, Workers: 1})
	}()
	defer func() {
		stopWorker()
		<-workerDone
		evalChunk = orig
	}()

	v, err := m.Submit(Request{Scenario: "paper-baseline", Budget: "analytic", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, v.ID, StateFailed)
	if !strings.Contains(got.Error, "records do not match") {
		t.Fatalf("job error = %q, want the record-mismatch reason", got.Error)
	}
}

// TestFailLeaseFailsJob mirrors the in-process panic containment: a
// worker reporting an unevaluable chunk fails the whole job.
func TestFailLeaseFailsJob(t *testing.T) {
	m := New(Options{
		JobWorkers:  1,
		Distributed: true,
		ChunkPoints: 2,
		LeaseTTL:    time.Minute,
	})
	defer m.Shutdown(context.Background())
	v, err := m.Submit(Request{Scenario: "paper-baseline", Budget: "analytic", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	l := leaseEventually(t, m, "sick")
	if err := m.FailLease(l.ID, "synthetic failure"); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, v.ID, StateFailed)
	if got.Error == "" {
		t.Fatal("failed job carries no error message")
	}
}

// TestWorkerEndpointsHTTPStatus pins the wire contract of the worker
// endpoints: 204 on no work, 400 on bad bodies, 410 on dead leases.
func TestWorkerEndpointsHTTPStatus(t *testing.T) {
	m := New(Options{JobWorkers: 1, Distributed: true, LeaseTTL: time.Minute})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	post := func(path, body string) int {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/api/v1/workers/lease", `{"worker":"idle"}`); code != http.StatusNoContent {
		t.Fatalf("idle lease = %d, want 204", code)
	}
	if code := post("/api/v1/workers/lease", `{}`); code != http.StatusBadRequest {
		t.Fatalf("nameless lease = %d, want 400", code)
	}
	if code := post("/api/v1/workers/leases/lease-000042/heartbeat", ``); code != http.StatusGone {
		t.Fatalf("dead heartbeat = %d, want 410", code)
	}
	if code := post("/api/v1/workers/leases/lease-000042/complete", `{"records":[]}`); code != http.StatusGone {
		t.Fatalf("dead complete = %d, want 410", code)
	}
	if code := post("/api/v1/workers/leases/lease-000042/fail", `{"error":"x"}`); code != http.StatusGone {
		t.Fatalf("dead fail = %d, want 410", code)
	}
}

// leaseEventually polls Manager.Lease until the scheduler has enqueued
// chunks for a just-submitted job.
func leaseEventually(t *testing.T, m *Manager, worker string) Lease {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		l, ok, err := m.Lease(worker)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			return l
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no chunk became leasable")
	return Lease{}
}
