package search

import (
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/sweep"
)

// indiv is one evaluated individual: its genome, the record the sweep
// evaluator produced for it, and the NSGA-II bookkeeping. idx is the
// global evaluation index (generation*population + position), which
// doubles as the deterministic tie-break everywhere an ordering would
// otherwise depend on sort instability or map iteration.
type indiv struct {
	genome   []float64
	rec      sweep.Record
	cost     []float64
	feasible bool
	idx      int

	rank  int
	crowd float64
}

// newIndiv builds one individual. feasible, when non-nil, is the user
// constraint predicate: individuals failing it rank like evaluation
// failures — their costs park at +Inf and any feasible individual
// dominates them — so the search is steered away from, but can still
// traverse, constraint-violating regions.
func newIndiv(genome []float64, rec sweep.Record, objs []Objective, idx int, feasible func(sweep.Record) bool) *indiv {
	ind := &indiv{genome: genome, rec: rec, idx: idx,
		feasible: rec.Err == "" && (feasible == nil || feasible(rec))}
	ind.cost = make([]float64, len(objs))
	for k, o := range objs {
		if ind.feasible {
			ind.cost[k] = o.cost(rec)
		} else {
			// Infeasible designs carry zeroed metrics; park them at +Inf
			// so they can never shadow a feasible point.
			ind.cost[k] = math.Inf(1)
		}
	}
	return ind
}

// dominates implements constrained Pareto domination in minimisation
// form: a feasible individual dominates any infeasible one, two
// infeasible individuals never dominate each other, and two feasible
// ones compare objective-wise (no worse everywhere, strictly better
// somewhere).
func dominates(a, b *indiv) bool {
	if a.feasible != b.feasible {
		return a.feasible
	}
	if !a.feasible {
		return false
	}
	better := false
	for k := range a.cost {
		if a.cost[k] > b.cost[k] {
			return false
		}
		if a.cost[k] < b.cost[k] {
			better = true
		}
	}
	return better
}

// sortFronts performs the fast non-dominated sort: it partitions pop
// into Pareto fronts, sets each individual's rank, and returns the
// fronts in rank order. Within a front the original (idx) order is
// preserved, so the result is deterministic.
func sortFronts(pop []*indiv) [][]*indiv {
	n := len(pop)
	domCount := make([]int, n)    // how many individuals dominate i
	dominated := make([][]int, n) // whom i dominates
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dominates(pop[i], pop[j]) {
				dominated[i] = append(dominated[i], j)
			} else if dominates(pop[j], pop[i]) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			first = append(first, i)
		}
	}
	var fronts [][]*indiv
	for rank := 0; len(first) > 0; rank++ {
		front := make([]*indiv, 0, len(first))
		var next []int
		for _, i := range first {
			pop[i].rank = rank
			front = append(front, pop[i])
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		// next accumulates in domination order; restore idx order so the
		// front layout never depends on who dominated whom first.
		sort.Ints(next)
		fronts = append(fronts, front)
		first = next
	}
	return fronts
}

// setCrowding computes the crowding distance of every individual in one
// front: the normalised side length of the cuboid its neighbours span
// on each objective, boundary points at +Inf. Ties in an objective are
// broken by idx, so equal-cost individuals still get a deterministic
// (and equal-opportunity) ordering.
func setCrowding(front []*indiv) {
	for _, ind := range front {
		ind.crowd = 0
	}
	if len(front) <= 2 {
		for _, ind := range front {
			ind.crowd = math.Inf(1)
		}
		return
	}
	order := make([]*indiv, len(front))
	copy(order, front)
	for k := range front[0].cost {
		sort.SliceStable(order, func(i, j int) bool {
			if order[i].cost[k] != order[j].cost[k] {
				return order[i].cost[k] < order[j].cost[k]
			}
			return order[i].idx < order[j].idx
		})
		lo, hi := order[0].cost[k], order[len(order)-1].cost[k]
		order[0].crowd = math.Inf(1)
		order[len(order)-1].crowd = math.Inf(1)
		span := hi - lo
		if span == 0 || math.IsInf(span, 1) || math.IsNaN(span) {
			continue
		}
		for i := 1; i < len(order)-1; i++ {
			order[i].crowd += (order[i+1].cost[k] - order[i-1].cost[k]) / span
		}
	}
}

// crowdedLess is NSGA-II's total order: lower rank first, then larger
// crowding distance, then lower evaluation index. The idx tie-break
// makes selection a pure function of the population.
func crowdedLess(a, b *indiv) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	if a.crowd != b.crowd {
		return a.crowd > b.crowd
	}
	return a.idx < b.idx
}

// environmentalSelect ranks the merged parent+offspring population and
// keeps the best n: whole fronts while they fit, the last partial front
// by crowding distance.
func environmentalSelect(pop []*indiv, n int) []*indiv {
	fronts := sortFronts(pop)
	next := make([]*indiv, 0, n)
	for _, front := range fronts {
		setCrowding(front)
		if len(next)+len(front) <= n {
			next = append(next, front...)
			continue
		}
		rest := make([]*indiv, len(front))
		copy(rest, front)
		sort.SliceStable(rest, func(i, j int) bool { return crowdedLess(rest[i], rest[j]) })
		next = append(next, rest[:n-len(next)]...)
		break
	}
	return next
}

// tournament picks one parent by binary crowded tournament: two
// uniform draws, the crowded-comparison winner.
func tournament(stream *rng.Stream, pop []*indiv) *indiv {
	a := pop[stream.Intn(len(pop))]
	b := pop[stream.Intn(len(pop))]
	if crowdedLess(b, a) {
		return b
	}
	return a
}

// blendAlpha is the BLX-alpha crossover expansion: children are drawn
// uniformly from the parents' per-gene interval extended by alpha times
// its width on both sides, so offspring can explore slightly beyond the
// parents before the bound clamp.
const blendAlpha = 0.5

// crossover produces two children by blend (BLX-alpha) crossover,
// clamped to the parameter bounds.
func crossover(stream *rng.Stream, space Space, p1, p2 *indiv) ([]float64, []float64) {
	n := len(space.Params)
	c1 := make([]float64, n)
	c2 := make([]float64, n)
	for g, p := range space.Params {
		lo, hi := p1.genome[g], p2.genome[g]
		if lo > hi {
			lo, hi = hi, lo
		}
		span := hi - lo
		a := lo - blendAlpha*span
		b := hi + blendAlpha*span
		c1[g] = clampGene(a+stream.Float64()*(b-a), p)
		c2[g] = clampGene(a+stream.Float64()*(b-a), p)
	}
	return c1, c2
}

// mutate perturbs each gene with probability 1/len(genes) by a bounded
// Gaussian step of 10% of the parameter range.
func mutate(stream *rng.Stream, space Space, genome []float64) {
	pm := 1.0 / float64(len(genome))
	for g, p := range space.Params {
		if stream.Float64() >= pm {
			continue
		}
		genome[g] = clampGene(genome[g]+stream.Norm()*0.1*(p.Max-p.Min), p)
	}
}

func clampGene(v float64, p Param) float64 {
	return math.Min(math.Max(v, p.Min), p.Max)
}

// initialGenome samples one uniform genome from the space's box.
func initialGenome(stream *rng.Stream, space Space) []float64 {
	genome := make([]float64, len(space.Params))
	for g, p := range space.Params {
		genome[g] = p.Min + stream.Float64()*(p.Max-p.Min)
	}
	return genome
}

// offspringGenomes breeds one generation: population/2 crossover pairs,
// each child mutated. Pair k draws every random decision from
// genStream.Split(k+1) — a pure function of (seed, generation, pair) —
// so breeding is independent of evaluation order and worker count.
func offspringGenomes(genStream *rng.Stream, space Space, pop []*indiv, population int) [][]float64 {
	out := make([][]float64, 0, population)
	for k := 0; len(out) < population; k++ {
		s := genStream.Split(uint64(k) + 1)
		p1 := tournament(s, pop)
		p2 := tournament(s, pop)
		c1, c2 := crossover(s, space, p1, p2)
		mutate(s, space, c1)
		mutate(s, space, c2)
		out = append(out, c1)
		if len(out) < population {
			out = append(out, c2)
		}
	}
	return out
}
