package inforate

import (
	"fmt"
	"math"

	"repro/internal/modem"
	"repro/internal/numeric"
	"repro/internal/rng"
)

// SequenceDetector is a maximum-likelihood (Viterbi) sequence estimator
// for the 1-bit oversampled ISI channel — the receiver whose achievable
// rate SequenceRate computes. Branch metrics are the exact log-
// likelihoods of the quantised observations given the trellis branch at
// the configured SNR.
type SequenceDetector struct {
	t *Trellis
	// lpPlus/lpMinus[b*osf+k] = log P(y_k = +-1 | branch b sample k).
	lpPlus, lpMinus []float64
}

// NewSequenceDetector prepares the branch-metric tables for the SNR
// (dB, matched-filter convention of package modem).
func NewSequenceDetector(t *Trellis, snrDB float64) *SequenceDetector {
	sigma := modem.NoiseSigmaForSNR(snrDB)
	branches := t.NumBranches()
	d := &SequenceDetector{
		t:       t,
		lpPlus:  make([]float64, branches*t.osf),
		lpMinus: make([]float64, branches*t.osf),
	}
	for b := 0; b < branches; b++ {
		for k := 0; k < t.osf; k++ {
			v := t.amps[b*t.osf+k]
			d.lpPlus[b*t.osf+k] = numeric.LogQ(-v / sigma)
			d.lpMinus[b*t.osf+k] = numeric.LogQ(v / sigma)
		}
	}
	return d
}

// Detect returns the maximum-likelihood symbol indices for a sequence of
// quantised blocks: bits holds n*OSF one-bit samples (+1/-1), block
// t being bits[t*OSF:(t+1)*OSF]. The initial channel state is unknown
// (uniform prior).
func (d *SequenceDetector) Detect(bits []int8) []int {
	t := d.t
	if len(bits)%t.osf != 0 {
		panic(fmt.Sprintf("inforate: %d samples is not a multiple of OSF %d", len(bits), t.osf))
	}
	n := len(bits) / t.osf
	if n == 0 {
		return nil
	}
	m, states := t.m, t.numStates

	metric := make([]float64, states)
	next := make([]float64, states)
	// back[t*states+s] encodes the winning (prevState*m + input).
	back := make([]int32, n*states)

	for step := 0; step < n; step++ {
		for s := range next {
			next[s] = math.Inf(-1)
		}
		yOff := step * t.osf
		for s := 0; s < states; s++ {
			base := metric[s]
			if math.IsInf(base, -1) {
				continue
			}
			for u := 0; u < m; u++ {
				b := s*m + u
				ll := base
				off := b * t.osf
				for k := 0; k < t.osf; k++ {
					if bits[yOff+k] > 0 {
						ll += d.lpPlus[off+k]
					} else {
						ll += d.lpMinus[off+k]
					}
				}
				ns := t.next[b]
				if ll > next[ns] {
					next[ns] = ll
					back[step*states+ns] = int32(b)
				}
			}
		}
		metric, next = next, metric
	}

	// Traceback from the best final state.
	best := 0
	for s := 1; s < states; s++ {
		if metric[s] > metric[best] {
			best = s
		}
	}
	out := make([]int, n)
	state := best
	for step := n - 1; step >= 0; step-- {
		b := int(back[step*states+state])
		out[step] = b % m
		state = b / m
	}
	return out
}

// SimulateSER measures the symbol error rate of maximum-likelihood
// sequence detection over nSymbols random symbols at the given SNR,
// using the same finite-state channel as SequenceRate. Deterministic
// for a fixed seed.
func SimulateSER(t *Trellis, snrDB float64, nSymbols int, seed uint64) float64 {
	if nSymbols < 1 {
		panic("inforate: SimulateSER needs nSymbols >= 1")
	}
	det := NewSequenceDetector(t, snrDB)
	sigma := modem.NoiseSigmaForSNR(snrDB)
	stream := rng.New(seed)

	m := t.m
	state := stream.Intn(t.numStates)
	tx := make([]int, nSymbols)
	bits := make([]int8, nSymbols*t.osf)
	for step := 0; step < nSymbols; step++ {
		u := stream.Intn(m)
		tx[step] = u
		b := state*m + u
		for k := 0; k < t.osf; k++ {
			if t.amps[b*t.osf+k]+sigma*stream.Norm() >= 0 {
				bits[step*t.osf+k] = 1
			} else {
				bits[step*t.osf+k] = -1
			}
		}
		state = t.next[b]
	}
	rx := det.Detect(bits)
	errs := 0
	for i := range tx {
		if rx[i] != tx[i] {
			errs++
		}
	}
	return float64(errs) / float64(nSymbols)
}
