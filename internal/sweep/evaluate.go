package sweep

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ldpc"
	"repro/internal/noc/sim"
	"repro/internal/rng"
)

// Budget controls the Monte-Carlo effort spent on one design point.
// The zero value (name "analytic") runs the analytic pipeline only.
type Budget struct {
	Name string

	// BERSim enables a bit-error-rate measurement of the chosen
	// LDPC-CC at BEREbN0DB, stopped adaptively at BERRelCI.
	BERSim          bool
	BEREbN0DB       float64
	BERRelCI        float64
	BERMaxCodewords int
	BERMaxIter      int
	// TermLength is the termination length of the simulated
	// convolutional code.
	TermLength int

	// NoCSim enables event-simulator validation of the chosen stack
	// topology, replicated adaptively until the mean-latency confidence
	// interval shrinks to NoCRelCI.
	NoCSim           bool
	NoCMinReps       int
	NoCMaxReps       int
	NoCRelCI         float64
	NoCMeasureCycles float64
}

// AnalyticBudget evaluates points through the analytic models only —
// microseconds per point, the right default for wide grids.
func AnalyticBudget() Budget { return Budget{Name: "analytic"} }

// SmokeBudget adds seconds-scale Monte-Carlo per sweep: a coarse BER
// point and a short simulator cross-check, both adaptively stopped.
func SmokeBudget() Budget {
	return Budget{
		Name:   "smoke",
		BERSim: true, BEREbN0DB: 3, BERRelCI: 0.3, BERMaxCodewords: 256, BERMaxIter: 20, TermLength: 16,
		NoCSim: true, NoCMinReps: 2, NoCMaxReps: 4, NoCRelCI: 0.05, NoCMeasureCycles: 2000,
	}
}

// StandardBudget is the recording fidelity: tighter confidence targets
// and room for the controller to spend where the variance demands it.
func StandardBudget() Budget {
	return Budget{
		Name:   "standard",
		BERSim: true, BEREbN0DB: 3, BERRelCI: 0.1, BERMaxCodewords: 6000, BERMaxIter: 50, TermLength: 30,
		NoCSim: true, NoCMinReps: 3, NoCMaxReps: 10, NoCRelCI: 0.02, NoCMeasureCycles: 6000,
	}
}

// ParseBudget maps a CLI string to a Budget.
func ParseBudget(s string) (Budget, error) {
	switch strings.ToLower(s) {
	case "", "analytic":
		return AnalyticBudget(), nil
	case "smoke":
		return SmokeBudget(), nil
	case "standard":
		return StandardBudget(), nil
	default:
		return Budget{}, fmt.Errorf("sweep: unknown budget %q (analytic|smoke|standard)", s)
	}
}

// Evaluate runs one grid point through the design pipeline and the
// budgeted Monte-Carlo stages. stream must be the point's private
// deterministic sub-stream; Evaluate is safe to call concurrently for
// distinct points.
func Evaluate(scenario string, pt Point, stream *rng.Stream, b Budget) Record {
	rec := Record{Scenario: scenario, Index: pt.Index, Label: pt.Label, Spec: pt.Spec}

	des, err := core.DesignSystem(pt.Spec)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	rec.TxPowerDBm = des.WorstTxPowerDBm()
	rec.SpectralEfficiency = des.SpectralEfficiency
	rec.CodeLifting = des.Code.Lifting
	rec.CodeWindow = des.Code.Window
	rec.DecodeLatencyBits = des.Code.LatencyBits
	rec.Topology = des.Stack.Topology.Name()
	rec.NoCLatencyCycles = des.Stack.LatencyCycles
	rec.NoCSaturation = des.Stack.SaturationRate

	if b.BERSim {
		code := ldpc.LiftConvolutional(ldpc.PaperSpreading(), b.TermLength, des.Code.Lifting, 3)
		r := ldpc.SimulateBER(ldpc.BERParams{
			Code: code, Alg: ldpc.SumProduct, MaxIter: b.BERMaxIter,
			Window: des.Code.Window, Rate: des.Code.Rate,
			EbN0DB:       b.BEREbN0DB,
			MaxCodewords: b.BERMaxCodewords,
			RelCI:        b.BERRelCI,
			Seed:         stream.Split(1).Uint64(),
			// The executor already parallelizes across points; a full
			// inner decode pool per point would oversubscribe ~NCPU^2.
			Workers: 1,
		})
		rec.BEREbN0DB = b.BEREbN0DB
		rec.BER = r.BER
		rec.BERCodewords = r.Codewords
	}

	if b.NoCSim {
		simStream := stream.Split(2)
		est := AdaptiveMean(b.NoCMinReps, b.NoCMaxReps, b.NoCRelCI, func(i int) float64 {
			res := sim.Run(sim.Config{
				Topo: des.Stack.Topology,
				// The simulator offers the same pattern the analytic
				// chooser planned for (uniform when the spec has no
				// traffic section).
				Traffic:       pt.Spec.Traffic.NoCPattern(),
				InjectionRate: pt.Spec.StackInjectionRate,
				MeasureCycles: b.NoCMeasureCycles,
				Seed:          simStream.Split(uint64(i) + 1).Uint64(),
			})
			return res.MeanLatencyCycles
		})
		rec.SimLatencyCycles = est.Mean()
		rec.SimLatencyCI95 = est.HalfWidth95()
		rec.SimReplications = est.N()
	}
	return rec
}
