// Command covercheck fails (exit 1) when a coverage profile's total
// statement coverage is below its pinned minimum. It is the CI
// coverage gate for the packages whose correctness the repository
// leans on hardest — the LDPC decoder kernels and the sweep engine —
// so a future edit cannot land untested code in them unnoticed.
//
// Usage:
//
//	go run ./tools/covercheck profile.out=MIN [profile2.out=MIN ...]
//
// Each argument names a profile written by `go test -coverprofile`
// and the minimum total statement coverage (percent) it must reach.
// The total is computed from the profile itself — covered statements
// over all statements, matching `go tool cover -func`'s "total:" line
// — so the tool needs no toolchain invocation. The pins are set to
// the measured coverage at merge time, rounded down a point for
// refactoring slack; raise them when coverage rises, never lower them
// to make a red build green.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: covercheck profile.out=MIN [profile2.out=MIN ...]")
		os.Exit(2)
	}
	failed := false
	for _, arg := range os.Args[1:] {
		path, minStr, ok := strings.Cut(arg, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "covercheck: argument %q is not profile=MIN\n", arg)
			os.Exit(2)
		}
		minPct, err := strconv.ParseFloat(minStr, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "covercheck: bad minimum %q: %v\n", minStr, err)
			os.Exit(2)
		}
		pct, err := profileCoverage(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "covercheck:", err)
			os.Exit(2)
		}
		status := "ok"
		if pct < minPct {
			status = "BELOW MINIMUM"
			failed = true
		}
		fmt.Printf("%-24s %6.1f%% of statements (min %.1f%%)  %s\n", path, pct, minPct, status)
	}
	if failed {
		os.Exit(1)
	}
}

// profileCoverage computes total statement coverage (percent) from a
// coverprofile: each body line is
//
//	file.go:startLine.startCol,endLine.endCol numStatements hitCount
//
// and the total weighs blocks by statement count, exactly like the
// "total:" row of `go tool cover -func`.
func profileCoverage(path string) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	var total, covered int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 {
			if !strings.HasPrefix(text, "mode:") {
				return 0, fmt.Errorf("%s: not a coverage profile (missing mode: header)", path)
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return 0, fmt.Errorf("%s:%d: malformed profile line %q", path, line, text)
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%s:%d: bad statement count: %v", path, line, err)
		}
		count, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%s:%d: bad hit count: %v", path, line, err)
		}
		total += stmts
		if count > 0 {
			covered += stmts
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	if total == 0 {
		return 0, fmt.Errorf("%s: profile covers no statements", path)
	}
	return 100 * float64(covered) / float64(total), nil
}
