package ldpc

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/rng"
)

// BERParams configures a Monte-Carlo bit-error-rate measurement over
// BPSK/AWGN (the board-to-board channel of Sec. II reduced to its AWGN
// core, as Sec. V assumes).
type BERParams struct {
	// Code under test (shared read-only across workers).
	Code *Code
	// Alg selects the BP variant.
	Alg Algorithm
	// Sched selects the message-passing schedule.
	Sched Schedule
	// MaxIter bounds BP iterations (per window position if windowed).
	MaxIter int
	// Window selects sliding-window decoding with that size; 0 decodes
	// the full code at once.
	Window int
	// EbN0DB is the operating point.
	EbN0DB float64
	// Rate used for the Eb/N0-to-noise conversion. Zero means the code's
	// design rate.
	Rate float64
	// TargetBitErrors is the bit-error stopping target (0 = 50).
	TargetBitErrors int
	// TargetFrameErrors is the frame-error stopping target (0 = 25).
	// Window-decoded convolutional codes fail in bursts, so a sound BER
	// estimate must accumulate enough independent frame events — the
	// simulation stops early only once BOTH error targets are reached.
	TargetFrameErrors int
	// MaxCodewords bounds the simulation (0 = 4000).
	MaxCodewords int
	// Seed makes the run reproducible independent of worker count.
	Seed uint64
	// Workers sets the parallelism (0 = GOMAXPROCS).
	Workers int
	// RelCI, when positive, selects adaptive stopping: the simulation
	// ends once the 95% confidence half-width of the BER estimate
	// (from the per-frame bit-error variance, since window-decoded
	// errors burst per frame) falls below RelCI times the estimate,
	// and the fixed error targets are ignored (MaxCodewords still
	// caps the spend). The check runs at fixed batch boundaries, so
	// the stopping point does not depend on Workers.
	RelCI float64
	// DecisiveBER, when positive, stops the simulation early once the
	// 95% confidence interval of the BER estimate lies entirely above
	// or entirely below this threshold — enough evidence for a
	// threshold search to classify the operating point without running
	// the full codeword budget.
	DecisiveBER float64
}

func (p BERParams) defaults() BERParams {
	if p.MaxIter == 0 {
		p.MaxIter = 50
	}
	if p.Rate == 0 {
		p.Rate = p.Code.Rate()
	}
	if p.TargetBitErrors == 0 {
		p.TargetBitErrors = 50
	}
	if p.TargetFrameErrors == 0 {
		p.TargetFrameErrors = 25
	}
	if p.MaxCodewords == 0 {
		p.MaxCodewords = 4000
	}
	if p.Workers == 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return p
}

// BERResult summarises a measurement.
type BERResult struct {
	BitErrors   int
	Bits        int
	Codewords   int
	FrameErrors int
	// BER is BitErrors/Bits (0 when no bits were simulated).
	BER float64
}

// NoiseSigma returns the AWGN standard deviation for BPSK at the given
// Eb/N0 (dB) and code rate: sigma^2 = 1 / (2 R Eb/N0).
func NoiseSigma(ebN0DB, rate float64) float64 {
	if rate <= 0 || rate >= 1 {
		panic(fmt.Sprintf("ldpc: rate %g outside (0,1)", rate))
	}
	ebN0 := math.Pow(10, ebN0DB/10)
	return math.Sqrt(1 / (2 * rate * ebN0))
}

// berBatch is the codeword batch between stopping checks. It is a fixed
// constant — not a function of Workers — so the simulated codeword count
// at every early stop is identical for any worker count.
const berBatch = 64

// SimulateBER transmits all-zero codewords (valid for any linear code on
// the output-symmetric BPSK/AWGN channel) and counts post-decoding bit
// errors. The run is deterministic for a fixed Seed regardless of
// Workers: codewords carry per-index random streams, workers own fixed
// contiguous sub-batches, and every stopping rule is evaluated only at
// batch boundaries. Decoding runs through the lockstep BatchDecoder —
// each worker decodes its sub-batch in one DecodeBatch/Decode call —
// which is bit-exact with the scalar per-codeword path.
func SimulateBER(p BERParams) BERResult {
	p = p.defaults()
	if p.Workers > berBatch {
		p.Workers = berBatch
	}
	sigma := NoiseSigma(p.EbN0DB, p.Rate)
	llrScale := 2 / (sigma * sigma)
	n := p.Code.NumVars

	var res BERResult
	var errsSumSq float64 // sum of squared per-frame bit errors

	results := make([]int, berBatch)
	var wg sync.WaitGroup

	// Each worker owns the contiguous codeword lanes
	// [worker*per, worker*per+per) of every batch, so its decoder and
	// staging buffers are sized once and reused across batches.
	per := (berBatch + p.Workers - 1) / p.Workers
	batches := make([]*BatchDecoder, p.Workers)
	windows := make([]*WindowDecoder, p.Workers)
	lanes := make([][][]float64, p.Workers)
	for w := 0; w < p.Workers; w++ {
		if p.Window > 0 {
			windows[w] = NewWindowDecoder(p.Code, p.Window, p.Alg, p.MaxIter)
			windows[w].SetSchedule(p.Sched)
		} else {
			batches[w] = NewBatchDecoder(p.Code, p.Alg, p.MaxIter, per)
			batches[w].Sched = p.Sched
		}
		buf := make([]float64, per*n)
		rows := make([][]float64, per)
		for k := range rows {
			rows[k] = buf[k*n : (k+1)*n]
		}
		lanes[w] = rows
	}

	for start := 0; start < p.MaxCodewords && !berDone(p, res, errsSumSq); start += berBatch {
		count := berBatch
		if start+count > p.MaxCodewords {
			count = p.MaxCodewords - start
		}
		wg.Add(p.Workers)
		for w := 0; w < p.Workers; w++ {
			go func(worker int) {
				defer wg.Done()
				lo := worker * per
				hi := lo + per
				if hi > count {
					hi = count
				}
				if lo >= hi {
					return
				}
				rows := lanes[worker][:hi-lo]
				for i := lo; i < hi; i++ {
					stream := rng.New(p.Seed).Split(uint64(start+i) + 1)
					row := rows[i-lo]
					for v := range row {
						row[v] = llrScale * (1 + sigma*stream.Norm())
					}
				}
				var hards [][]uint8
				if p.Window > 0 {
					hards = windows[worker].DecodeBatch(rows)
				} else {
					hards = batches[worker].Decode(rows).Hard
				}
				for k, hard := range hards {
					errs := 0
					for _, b := range hard {
						if b != 0 {
							errs++
						}
					}
					results[lo+k] = errs
				}
			}(w)
		}
		wg.Wait()
		for i := 0; i < count; i++ {
			res.Codewords++
			res.Bits += n
			res.BitErrors += results[i]
			errsSumSq += float64(results[i]) * float64(results[i])
			if results[i] > 0 {
				res.FrameErrors++
			}
		}
	}
	if res.Bits > 0 {
		res.BER = float64(res.BitErrors) / float64(res.Bits)
	}
	return res
}

// berHalfWidth returns the 95% confidence half-width of the BER estimate
// from the per-frame bit-error variance (frames are the independent
// unit; bit errors within a frame are bursty and correlated). Returns
// +Inf until two frames exist.
func berHalfWidth(res BERResult, errsSumSq float64, bitsPerFrame int) float64 {
	f := float64(res.Codewords)
	if res.Codewords < 2 {
		return math.Inf(1)
	}
	mean := float64(res.BitErrors) / f
	variance := (errsSumSq - f*mean*mean) / (f - 1)
	if variance < 0 {
		variance = 0
	}
	return 1.96 * math.Sqrt(variance/f) / float64(bitsPerFrame)
}

// berDone evaluates the stopping rules on the accumulated statistics.
func berDone(p BERParams, res BERResult, errsSumSq float64) bool {
	if res.Bits == 0 {
		return false
	}
	ber := float64(res.BitErrors) / float64(res.Bits)
	hw := berHalfWidth(res, errsSumSq, p.Code.NumVars)
	// minAdaptiveFrameErrors guards the adaptive rules against variance
	// estimates built from too few error events.
	const minAdaptiveFrameErrors = 8

	if p.RelCI > 0 {
		// Adaptive mode: the confidence target is the stopping rule and
		// the fixed error targets are ignored (MaxCodewords still caps
		// the spend) — otherwise the legacy targets would always fire
		// first and the requested precision would never be delivered.
		if res.FrameErrors >= minAdaptiveFrameErrors && ber > 0 && hw <= p.RelCI*ber {
			return true
		}
		// Error-free early out: after a quarter of the budget with zero
		// error frames, the remaining spend cannot produce the error
		// events the CI rule needs — report BER ~ 0 and stop.
		if res.FrameErrors == 0 && res.Codewords >= (p.MaxCodewords+3)/4 {
			return true
		}
	} else if res.BitErrors >= p.TargetBitErrors && res.FrameErrors >= p.TargetFrameErrors {
		return true
	}

	if p.DecisiveBER > 0 {
		if res.FrameErrors >= minAdaptiveFrameErrors && ber-hw > p.DecisiveBER {
			return true // decisively above the threshold
		}
		// The below-threshold call needs the zero/low error count to be
		// informative. Errors arrive in multi-bit frame bursts, so "a
		// few expected bit errors" is not evidence — demand the same 3x
		// bit-error budget the search's conclusive cap uses, which at
		// the threshold BER corresponds to several expected error
		// frames even for bursty window decoding.
		if p.DecisiveBER*float64(res.Bits) >= 3*float64(p.TargetBitErrors) && ber+hw < p.DecisiveBER {
			return true // decisively below the threshold
		}
	}
	return false
}

// SearchParams configures a required-Eb/N0 search (the y-axis of
// Fig. 10).
type SearchParams struct {
	BERParams
	// TargetBER is the quality target (1e-5 in Fig. 10).
	TargetBER float64
	// LoDB and HiDB bracket the search (defaults 1 and 8 dB).
	LoDB, HiDB float64
	// TolDB is the search resolution (default 0.1 dB).
	TolDB float64
}

// RequiredEbN0 returns the smallest Eb/N0 (dB) at which the measured BER
// is at or below the target, found by bisection on the monotone BER
// curve. Returns NaN when even HiDB misses the target.
func RequiredEbN0(p SearchParams) float64 {
	if p.TargetBER <= 0 {
		panic("ldpc: target BER must be positive")
	}
	if p.LoDB == 0 && p.HiDB == 0 {
		p.LoDB, p.HiDB = 1, 8
	}
	if p.TolDB == 0 {
		p.TolDB = 0.1
	}
	measure := func(db float64) float64 {
		bp := p.BERParams.defaults()
		bp.EbN0DB = db
		// The search only needs to classify the point against the target,
		// so let the simulation stop as soon as its confidence interval
		// excludes the target BER.
		bp.DecisiveBER = p.TargetBER
		// Conclusive-evidence cap: once enough bits have been simulated
		// that a true BER at the target would have produced ~3x the bit
		// error budget, the point is decisively below target — no need
		// to run to the configured codeword cap.
		conclusive := int(3*float64(bp.TargetBitErrors)/(p.TargetBER*float64(bp.Code.NumVars))) + 1
		if conclusive < bp.MaxCodewords {
			bp.MaxCodewords = conclusive
		}
		r := SimulateBER(bp)
		return r.BER
	}
	if measure(p.HiDB) > p.TargetBER {
		return math.NaN()
	}
	lo, hi := p.LoDB, p.HiDB
	if measure(lo) <= p.TargetBER {
		return lo
	}
	for hi-lo > p.TolDB {
		mid := 0.5 * (lo + hi)
		if measure(mid) <= p.TargetBER {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
