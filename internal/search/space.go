package search

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
)

// Kind classifies a searchable parameter.
type Kind string

const (
	// Continuous parameters take any value in [Min, Max].
	Continuous Kind = "continuous"
	// Integer parameters are rounded to the nearest whole value.
	Integer Kind = "integer"
	// Bool parameters threshold the gene at 0.5 (Min 0, Max 1).
	Bool Kind = "bool"
)

// Param declares one searchable dimension of a core.SystemSpec. The
// optimizer works on raw float64 genes in [Min, Max]; Decode snaps a
// gene to the parameter's kind (rounding integers, thresholding bools)
// and Apply writes the decoded value into a spec.
type Param struct {
	Name string  `json:"name"`
	Kind Kind    `json:"kind"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// apply writes the decoded value (for Bool: 0 or 1) into the spec.
	apply func(*core.SystemSpec, float64)
}

// NewParam constructs a parameter for dynamically compiled spaces (the
// spec package builds them from user-submitted axis declarations).
// apply receives the decoded value — for Bool parameters 0 or 1 — and
// writes it into the spec being materialised.
func NewParam(name string, kind Kind, min, max float64, apply func(*core.SystemSpec, float64)) Param {
	return Param{Name: name, Kind: kind, Min: min, Max: max, apply: apply}
}

// Decode snaps a raw gene to the parameter's domain: clamped to
// [Min, Max], rounded for Integer, thresholded at 0.5 for Bool.
func (p Param) Decode(gene float64) float64 {
	if math.IsNaN(gene) {
		gene = p.Min
	}
	gene = math.Min(math.Max(gene, p.Min), p.Max)
	switch p.Kind {
	case Integer:
		return math.Round(gene)
	case Bool:
		if gene >= 0.5 {
			return 1
		}
		return 0
	}
	return gene
}

// Space is a named, bounded region of the SystemSpec design space: a
// base specification plus the parameters the optimizer may vary. Spaces
// are immutable after registration and safe for concurrent use.
type Space struct {
	Name        string
	Description string
	// Base returns the spec the parameters are applied onto; fields no
	// Param covers keep the base value for every individual.
	Base   func() core.SystemSpec
	Params []Param
}

// Decode materialises a genome (one raw gene per Param, in Params
// order) into a concrete SystemSpec.
func (s Space) Decode(genome []float64) core.SystemSpec {
	spec := s.Base()
	for i, p := range s.Params {
		p.apply(&spec, p.Decode(genome[i]))
	}
	return spec
}

// ScenarioName is the scenario string optimizer evaluations carry in
// records and cache keys. The "optimize/" prefix keeps them disjoint
// from grid-scenario keys in a shared result store.
func (s Space) ScenarioName() string { return "optimize/" + s.Name }

// Validate checks the space invariants. Register calls it (and panics)
// for compiled-in spaces; dynamically compiled spaces that never enter
// the registry call it directly and surface the error to the user.
func (s Space) Validate() error { return s.validate() }

func (s Space) validate() error {
	if s.Name == "" || s.Base == nil || len(s.Params) == 0 {
		return fmt.Errorf("search: space needs a name, a base spec and at least one parameter")
	}
	seen := map[string]bool{}
	for _, p := range s.Params {
		switch {
		case p.Name == "" || p.apply == nil:
			return fmt.Errorf("search: space %q has a parameter without name or setter", s.Name)
		case seen[p.Name]:
			return fmt.Errorf("search: space %q declares parameter %q twice", s.Name, p.Name)
		case !(p.Min < p.Max):
			return fmt.Errorf("search: space %q parameter %q has empty bounds [%g, %g]", s.Name, p.Name, p.Min, p.Max)
		case p.Kind == Bool && (p.Min != 0 || p.Max != 1):
			return fmt.Errorf("search: space %q bool parameter %q must span [0, 1]", s.Name, p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

var (
	regMu    sync.RWMutex
	registry = map[string]Space{}
)

// Register adds a space to the catalog; it panics on an invalid or
// duplicate space, since both are programming errors.
func Register(s Space) {
	if err := s.validate(); err != nil {
		panic(err.Error())
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("search: duplicate space %q", s.Name))
	}
	registry[s.Name] = s
}

// Get returns the named space.
func Get(name string) (Space, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return Space{}, fmt.Errorf("search: unknown space %q (have %v)", name, namesLocked())
	}
	return s, nil
}

// Names lists the registered spaces in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Shared parameter constructors: each names one SystemSpec knob with
// the widest bounds any space uses; narrower spaces restrict them.

func pBoards(lo, hi float64) Param {
	return Param{Name: "boards", Kind: Integer, Min: lo, Max: hi,
		apply: func(s *core.SystemSpec, v float64) { s.Boards = int(v) }}
}

func pNodesPerBoard(lo, hi float64) Param {
	return Param{Name: "nodes-per-board", Kind: Integer, Min: lo, Max: hi,
		apply: func(s *core.SystemSpec, v float64) { s.NodesPerBoard = int(v) }}
}

func pBoardSpacing(lo, hi float64) Param {
	return Param{Name: "board-spacing-m", Kind: Continuous, Min: lo, Max: hi,
		apply: func(s *core.SystemSpec, v float64) { s.BoardSpacingM = v }}
}

func pLinkRate(lo, hi float64) Param {
	return Param{Name: "link-rate-gbps", Kind: Continuous, Min: lo, Max: hi,
		apply: func(s *core.SystemSpec, v float64) { s.LinkRateGbps = v }}
}

func pLatencyBudget(lo, hi float64) Param {
	return Param{Name: "latency-budget-bits", Kind: Integer, Min: lo, Max: hi,
		apply: func(s *core.SystemSpec, v float64) { s.LatencyBudgetBits = int(v) }}
}

func pStackModules(lo, hi float64) Param {
	return Param{Name: "stack-modules", Kind: Integer, Min: lo, Max: hi,
		apply: func(s *core.SystemSpec, v float64) { s.StackModules = int(v) }}
}

func pInjection(lo, hi float64) Param {
	return Param{Name: "stack-injection-rate", Kind: Continuous, Min: lo, Max: hi,
		apply: func(s *core.SystemSpec, v float64) { s.StackInjectionRate = v }}
}

func pButler() Param {
	return Param{Name: "butler", Kind: Bool, Min: 0, Max: 1,
		apply: func(s *core.SystemSpec, v float64) { s.Butler = v != 0 }}
}

// The ready-made spaces mirror the registered sweep scenarios: each one
// relaxes the dimensions its namesake grid enumerates into continuous
// bounds (so the optimizer can land between the grid's cells), keeping
// the same base spec. full-design opens every knob at once.
func init() {
	Register(Space{
		Name:        "paper-baseline",
		Description: "the paper's 4-board box: decode-latency budget and beamforming realisation",
		Base:        core.DefaultSpec,
		Params:      []Param{pLatencyBudget(100, 400), pButler()},
	})

	Register(Space{
		Name:        "dense-rack",
		Description: "datacenter rack density: board count against per-link rate",
		Base: func() core.SystemSpec {
			spec := core.DefaultSpec()
			spec.NodesPerBoard = 16
			spec.BoardSpacingM = 0.05
			spec.StackInjectionRate = 0.15
			return spec
		},
		Params: []Param{pBoards(8, 16), pLinkRate(50, 200)},
	})

	Register(Space{
		Name:        "embedded-box",
		Description: "small sealed enclosure: board count against modest link rates",
		Base: func() core.SystemSpec {
			spec := core.DefaultSpec()
			spec.BoardSpacingM = 0.05
			spec.BoardEdgeM = 0.05
			spec.NodesPerBoard = 4
			spec.LatencyBudgetBits = 100
			spec.StackModules = 16
			spec.StackInjectionRate = 0.05
			return spec
		},
		Params: []Param{pBoards(2, 3), pLinkRate(10, 50)},
	})

	Register(Space{
		Name:        "manycore",
		Description: "many-stack manycore: NiCS module count against injection load",
		Base:        core.DefaultSpec,
		Params:      []Param{pStackModules(64, 512), pInjection(0.05, 0.15)},
	})

	Register(Space{
		Name:        "butler-vs-steered",
		Description: "beamforming realisation against board spacing",
		Base:        core.DefaultSpec,
		Params:      []Param{pButler(), pBoardSpacing(0.05, 0.2)},
	})

	Register(Space{
		Name:        "full-design",
		Description: "every SystemSpec knob at once: the widest search the evaluator supports",
		Base:        core.DefaultSpec,
		Params: []Param{
			pBoards(2, 16),
			pNodesPerBoard(4, 16),
			pBoardSpacing(0.05, 0.2),
			pLinkRate(10, 200),
			pLatencyBudget(100, 400),
			pStackModules(16, 512),
			pInjection(0.05, 0.15),
			pButler(),
		},
	})
}
