package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/sweep"
)

// Client implements WorkerAPI over sweepd's HTTP worker endpoints, so a
// cmd/sweepworker process anywhere on the network runs the same
// RunWorker loop as the daemon's in-process fallback workers.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a worker client for the daemon at base
// (e.g. "http://sweepd:8080").
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// Lease implements WorkerAPI.
func (c *Client) Lease(worker string) (Lease, bool, error) {
	body, _ := json.Marshal(map[string]string{"worker": worker})
	resp, err := c.hc.Post(c.base+"/api/v1/workers/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		return Lease{}, false, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var l Lease
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			return Lease{}, false, fmt.Errorf("service: lease response: %w", err)
		}
		return l, true, nil
	case http.StatusNoContent:
		return Lease{}, false, nil
	default:
		return Lease{}, false, httpError("lease", resp)
	}
}

// Heartbeat implements WorkerAPI.
func (c *Client) Heartbeat(leaseID string) (time.Duration, error) {
	resp, err := c.hc.Post(c.base+"/api/v1/workers/leases/"+leaseID+"/heartbeat", "application/json", nil)
	if err != nil {
		return 0, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var v struct {
			TTLSeconds float64 `json:"ttl_seconds"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return 0, fmt.Errorf("service: heartbeat response: %w", err)
		}
		return time.Duration(v.TTLSeconds * float64(time.Second)), nil
	case http.StatusGone:
		return 0, ErrLeaseGone
	default:
		return 0, httpError("heartbeat", resp)
	}
}

// Complete implements WorkerAPI.
func (c *Client) Complete(leaseID string, recs []sweep.Record) error {
	// Chunk completions are the fattest bodies on the worker wire; the
	// columnar block encoder builds one in a single buffer, emitting the
	// same bytes json.Marshal would per record.
	body := make([]byte, 0, 128+256*len(recs))
	body = append(body, `{"records":`...)
	body, err := sweep.BlockRecords(recs).AppendRecordsJSON(body)
	if err != nil {
		return fmt.Errorf("service: encode records: %w", err)
	}
	body = append(body, '}')
	resp, err := c.hc.Post(c.base+"/api/v1/workers/leases/"+leaseID+"/complete", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusGone:
		return ErrLeaseGone
	case http.StatusUnprocessableEntity:
		return fmt.Errorf("%w: %s", ErrBadRecords, bodyError(resp))
	default:
		return httpError("complete", resp)
	}
}

// FailLease implements WorkerAPI.
func (c *Client) FailLease(leaseID, reason string) error {
	body, _ := json.Marshal(map[string]string{"error": reason})
	resp, err := c.hc.Post(c.base+"/api/v1/workers/leases/"+leaseID+"/fail", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusGone:
		return ErrLeaseGone
	default:
		return httpError("fail", resp)
	}
}

// drain finishes and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// bodyError extracts the {"error": "..."} payload, falling back to the
// raw body.
func bodyError(resp *http.Response) string {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var v struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &v) == nil && v.Error != "" {
		return v.Error
	}
	return strings.TrimSpace(string(raw))
}

func httpError(op string, resp *http.Response) error {
	return fmt.Errorf("service: %s: %s: %s", op, resp.Status, bodyError(resp))
}
