package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"repro/internal/ldpc"
	"repro/internal/sweep"
)

// fig10Config maps quality to Monte-Carlo effort for the Fig. 10 study.
type fig10Config struct {
	targetBER    float64
	targetErrors int
	maxCodewords int
	ccConfigs    []struct{ n, w int }
	bcLiftings   []int
	l            int // termination length
	maxIter      int
}

func fig10For(q Quality) fig10Config {
	switch q {
	case Full:
		return fig10Config{
			targetBER:    1e-5,
			targetErrors: 80,
			maxCodewords: 200000,
			ccConfigs: []struct{ n, w int }{
				{25, 3}, {25, 4}, {25, 5}, {25, 6}, {25, 7}, {25, 8},
				{40, 3}, {40, 4}, {40, 5}, {40, 6}, {40, 7}, {40, 8},
				{60, 4}, {60, 5}, {60, 6},
			},
			bcLiftings: []int{50, 75, 100, 150, 200, 300, 400},
			l:          50,
			maxIter:    100,
		}
	case Standard:
		return fig10Config{
			targetBER:    1e-4,
			targetErrors: 60,
			maxCodewords: 20000,
			ccConfigs: []struct{ n, w int }{
				{25, 3}, {25, 5}, {25, 8},
				{40, 3}, {40, 5}, {40, 8},
				{60, 4}, {60, 6},
			},
			bcLiftings: []int{75, 150, 200, 300, 400},
			l:          50,
			maxIter:    60,
		}
	default:
		return fig10Config{
			targetBER:    1e-3,
			targetErrors: 30,
			maxCodewords: 1500,
			ccConfigs: []struct{ n, w int }{
				{25, 3}, {25, 6}, {40, 5},
			},
			bcLiftings: []int{75, 200},
			l:          30,
			maxIter:    30,
		}
	}
}

// Fig10 reproduces the latency-performance trade-off: required Eb/N0 to
// reach the target BER versus structural decoding latency, for the
// paper's (4,8)-regular LDPC-CC family (B0=[2,2], B1=B2=[1,1]) under
// window decoding and the LDPC-BC baseline (B=[4,4]).
func Fig10(q Quality) string {
	cfg := fig10For(q)
	const nv, rate = 2, 0.5

	var t table
	t.title("Fig. 10 — required Eb/N0 for BER %.0e vs decoding latency (quality %s)", cfg.targetBER, q)
	t.row("%-14s %6s %6s %14s %16s", "code", "N", "W", "latency[bits]", "req Eb/N0 [dB]")

	// One grid point per code configuration, fanned out over the sweep
	// executor; each point builds its own code, so workers share nothing.
	type fig10Point struct {
		cc   bool
		n, w int
		seed uint64
	}
	var points []fig10Point
	for i, cc := range cfg.ccConfigs {
		points = append(points, fig10Point{cc: true, n: cc.n, w: cc.w, seed: uint64(40 + i)})
	}
	for i, n := range cfg.bcLiftings {
		points = append(points, fig10Point{n: n, seed: uint64(90 + i)})
	}

	// Split the decode pool between the outer fan-out and the inner BER
	// workers so the two levels multiply to ~NumCPU instead of NCPU^2.
	innerWorkers := (runtime.NumCPU() + len(points) - 1) / len(points)
	search := func(code *ldpc.Code, window int, seed uint64) float64 {
		return ldpc.RequiredEbN0(ldpc.SearchParams{
			BERParams: ldpc.BERParams{
				Code: code, Alg: ldpc.SumProduct, MaxIter: cfg.maxIter,
				Window: window, Rate: rate,
				TargetBitErrors: cfg.targetErrors, MaxCodewords: cfg.maxCodewords,
				Seed: seed, Workers: innerWorkers,
			},
			TargetBER: cfg.targetBER, LoDB: 1, HiDB: 7, TolDB: 0.2,
		})
	}
	reqs, _ := sweep.Map(context.Background(), len(points), 0, func(i int) float64 {
		p := points[i]
		if p.cc {
			return search(ldpc.LiftConvolutional(ldpc.PaperSpreading(), cfg.l, p.n, 3), p.w, p.seed)
		}
		return search(ldpc.Lift(ldpc.Regular48(), p.n, 3), 0, p.seed)
	})
	for i, p := range points {
		if p.cc {
			t.row("%-14s %6d %6d %14.0f %16s", "LDPC-CC", p.n, p.w,
				ldpc.WindowLatencyBits(p.w, p.n, nv, rate), fmtDB(reqs[i]))
		} else {
			t.row("%-14s %6d %6s %14.0f %16s", "LDPC-BC", p.n, "-",
				ldpc.BlockLatencyBits(p.n, nv, rate), fmtDB(reqs[i]))
		}
	}
	t.blank()
	t.row("paper headline: at Eb/N0 = 3 dB the LDPC-CC reaches BER 1e-5 with")
	t.row("TWD = 200 info bits where the LDPC-BC needs TB = 400 — a 200-bit gain.")
	return t.String()
}

func fmtDB(v float64) string {
	if math.IsNaN(v) {
		return "unreached"
	}
	return fmt.Sprintf("%.2f", v)
}

// AblationDecoderAlgo compares sum-product and normalised min-sum on the
// same code and operating point (DESIGN.md ablation).
func AblationDecoderAlgo(q Quality) string {
	cfg := fig10For(q)
	code := ldpc.Lift(ldpc.Regular48(), 150, 3)
	var t table
	t.title("Ablation — BP check-node rule at BER target %.0e (quality %s)", cfg.targetBER, q)
	t.row("%-22s %16s", "algorithm", "req Eb/N0 [dB]")
	for _, alg := range []ldpc.Algorithm{ldpc.SumProduct, ldpc.MinSum} {
		req := ldpc.RequiredEbN0(ldpc.SearchParams{
			BERParams: ldpc.BERParams{
				Code: code, Alg: alg, MaxIter: cfg.maxIter,
				TargetBitErrors: cfg.targetErrors, MaxCodewords: cfg.maxCodewords,
				Seed: 17,
			},
			TargetBER: cfg.targetBER, LoDB: 1, HiDB: 7, TolDB: 0.2,
		})
		t.row("%-22s %16s", alg, fmtDB(req))
	}
	return t.String()
}

// AblationWindowIterations sweeps the per-position BP iteration budget of
// the window decoder (a latency/complexity knob the paper's structural
// metric deliberately excludes).
func AblationWindowIterations(q Quality) string {
	cfg := fig10For(q)
	code := ldpc.LiftConvolutional(ldpc.PaperSpreading(), cfg.l, 40, 3)
	var t table
	t.title("Ablation — window-decoder iteration budget, N=40 W=5 (quality %s)", q)
	t.row("%10s %12s", "max iter", "BER at 3 dB")
	for _, it := range []int{5, 10, 20, 40} {
		r := ldpc.SimulateBER(ldpc.BERParams{
			Code: code, Alg: ldpc.SumProduct, MaxIter: it, Window: 5, Rate: 0.5,
			EbN0DB: 3, TargetBitErrors: cfg.targetErrors, MaxCodewords: cfg.maxCodewords / 4,
			Seed: 19,
		})
		t.row("%10d %12.2e", it, r.BER)
	}
	return t.String()
}

// AblationBPSchedule compares flooding and layered message passing at a
// fixed iteration budget — the schedule is a latency lever orthogonal to
// the window size (DESIGN.md ablation).
func AblationBPSchedule(q Quality) string {
	cfg := fig10For(q)
	code := ldpc.LiftConvolutional(ldpc.PaperSpreading(), cfg.l, 40, 3)
	var t table
	t.title("Ablation — BP schedule in the window decoder, N=40 W=5 at 3.5 dB (quality %s)", q)
	t.row("%-10s %10s %14s", "schedule", "max iter", "BER")
	for _, sched := range []ldpc.Schedule{ldpc.Flooding, ldpc.Layered} {
		for _, it := range []int{5, 15, 40} {
			r := ldpc.SimulateBER(ldpc.BERParams{
				Code: code, Alg: ldpc.SumProduct, Sched: sched,
				MaxIter: it, Window: 5, Rate: 0.5,
				EbN0DB:          3.5,
				TargetBitErrors: cfg.targetErrors, TargetFrameErrors: 20,
				MaxCodewords: cfg.maxCodewords / 4, Seed: 23,
			})
			t.row("%-10s %10d %14.2e", sched, it, r.BER)
		}
	}
	return t.String()
}
