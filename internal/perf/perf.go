// Package perf is the repository's deterministic performance harness:
// a curated catalog of named workloads that exercise the hot paths of
// the design-space engine (LDPC window decoding, compiled NoC
// evaluation, sweep execution cold and warm, the adaptive optimizer and
// the HTTP service), each a pure function of (workload, seed, budget).
//
// The harness exists so that throughput is a first-class, versioned
// artifact instead of a scattering of one-off benchmark runs: cmd/perf
// measures the catalog into a BENCH_<n>.json baseline (see bench.go for
// the schema), CI re-measures every push and diffs against the
// committed baseline, and the same workload bodies back the root
// bench_test.go Benchmark* functions so `go test -bench` and
// `cmd/perf run` time identical code paths.
//
// Regression thresholds live here — DefaultRegressFrac plus the
// optional per-workload Workload.Threshold — and nowhere else; cmd/perf
// and CI both inherit them.
package perf

import (
	"context"
	"fmt"
	"runtime"
	"time"
)

// DefaultRegressFrac is the fractional ns/op slowdown tolerated before
// Diff flags a workload as regressed (0.25 = fail past a 25% slowdown).
// It is deliberately loose: shared CI runners jitter, and the gate is
// meant to catch the order-of-magnitude accidents — a lost cache, an
// accidental O(n^2) — not 5% noise.
const DefaultRegressFrac = 0.25

// Workload is one named entry of the performance catalog. Run must be a
// pure function of (seed, iteration state prepared by Setup): it may
// not read clocks, environment or global mutable state, so two
// measurements of the same workload at the same seed execute identical
// work and any wall-time difference is a property of the code, not the
// workload.
type Workload struct {
	// Name identifies the workload in BENCH files and CLI filters.
	Name string
	// Description is one line for `perf list`.
	Description string
	// Units names the domain quantity Run returns per iteration
	// (codewords, points, requests): BENCH files report both ns/op and
	// units/s so a regression is readable in domain terms.
	Units string
	// Threshold overrides DefaultRegressFrac when positive.
	Threshold float64
	// MaxAllocsPerOp, when positive, is the workload's allocation
	// budget: cmd/perf run fails a measurement that exceeds it. Budgets
	// are pinned from measured values with headroom, so an accidental
	// per-item allocation on a hot path (the failure mode behind the
	// historical ~19k allocs/op of metrics-overhead) trips the gate
	// even when wall time hides it on a fast machine.
	MaxAllocsPerOp float64
	// Setup, when non-nil, prepares per-measurement state (a warm
	// store, a running server) before the first Run and returns its
	// cleanup. Setup time is never measured.
	Setup func(ctx context.Context, seed uint64) (cleanup func(), err error)
	// Run executes one iteration and reports how many domain units it
	// processed.
	Run func(ctx context.Context, seed uint64) (units float64, err error)
}

// CheckAllocs validates a measurement against the workload's
// MaxAllocsPerOp budget; workloads without a budget always pass.
func (w Workload) CheckAllocs(m Measurement) error {
	if w.MaxAllocsPerOp > 0 && m.AllocsPerOp > w.MaxAllocsPerOp {
		return fmt.Errorf("perf: %s allocates %.1f allocs/op, over its budget of %.0f",
			w.Name, m.AllocsPerOp, w.MaxAllocsPerOp)
	}
	return nil
}

// RegressFrac returns the workload's regression threshold.
func (w Workload) RegressFrac() float64 {
	if w.Threshold > 0 {
		return w.Threshold
	}
	return DefaultRegressFrac
}

// Budget bounds the measurement effort spent per workload.
type Budget struct {
	Name string
	// MinTime is the minimum measured wall time per workload; iterations
	// repeat until it is reached.
	MinTime time.Duration
	// MaxIters caps the iterations regardless of MinTime.
	MaxIters int
}

// CIBudget is the small fixed budget the CI perf job runs on: enough
// iterations to average scheduler noise, small enough to stay in the
// seconds range for the whole catalog.
func CIBudget() Budget { return Budget{Name: "ci", MinTime: 300 * time.Millisecond, MaxIters: 64} }

// FullBudget is the recording fidelity used for committed BENCH_<n>.json
// baselines.
func FullBudget() Budget { return Budget{Name: "full", MinTime: time.Second, MaxIters: 256} }

// ParseBudget maps a CLI string to a Budget.
func ParseBudget(s string) (Budget, error) {
	switch s {
	case "", "ci":
		return CIBudget(), nil
	case "full":
		return FullBudget(), nil
	default:
		return Budget{}, fmt.Errorf("perf: unknown budget %q (ci|full)", s)
	}
}

// Measurement is the measured outcome of one workload at one budget.
// Field order is the BENCH file key order; see bench.go.
type Measurement struct {
	Name        string  `json:"name"`
	Units       string  `json:"units"`
	Iters       int     `json:"iters"`
	WallNs      int64   `json:"wall_ns"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	UnitsPerOp  float64 `json:"units_per_op"`
	UnitsPerSec float64 `json:"units_per_sec"`
}

// Measure runs the workload under the budget: Setup (unmeasured), one
// warmup iteration (unmeasured — it fills lazy caches so the steady
// state is what gets timed), then iterations until both MinTime is
// reached or MaxIters spent, whichever first.
func (w Workload) Measure(ctx context.Context, seed uint64, b Budget) (Measurement, error) {
	if b.MaxIters <= 0 {
		b.MaxIters = 1
	}
	if w.Setup != nil {
		cleanup, err := w.Setup(ctx, seed)
		if err != nil {
			return Measurement{}, fmt.Errorf("perf: %s setup: %w", w.Name, err)
		}
		if cleanup != nil {
			defer cleanup()
		}
	}
	if _, err := w.Run(ctx, seed); err != nil {
		return Measurement{}, fmt.Errorf("perf: %s warmup: %w", w.Name, err)
	}

	// Allocation counters are process-global; a GC cycle between the
	// snapshots only adds noise, so settle the heap first.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)

	var (
		iters int
		units float64
		start = time.Now()
	)
	for iters < b.MaxIters && (iters == 0 || time.Since(start) < b.MinTime) {
		u, err := w.Run(ctx, seed)
		if err != nil {
			return Measurement{}, fmt.Errorf("perf: %s iteration %d: %w", w.Name, iters, err)
		}
		units += u
		iters++
		if ctx.Err() != nil {
			return Measurement{}, ctx.Err()
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)

	res := Measurement{
		Name:        w.Name,
		Units:       w.Units,
		Iters:       iters,
		WallNs:      wall.Nanoseconds(),
		NsPerOp:     float64(wall.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters),
		UnitsPerOp:  units / float64(iters),
	}
	if wall > 0 {
		res.UnitsPerSec = units / wall.Seconds()
	}
	return res, nil
}
