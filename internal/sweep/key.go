package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// EngineVersion names the evaluation semantics of this package. Any
// change that alters the records produced for a fixed (scenario, point,
// budget, seed) — a new pipeline stage, a different sub-stream layout, a
// model fix — must bump it, so stale store entries miss instead of
// silently serving results the current engine would not reproduce.
const EngineVersion = 2

// keyEnvelope is the canonical content of a point's address. Marshalled
// with encoding/json the field order is fixed by declaration order, so
// equal inputs hash identically across processes and platforms.
type keyEnvelope struct {
	Engine   int    `json:"engine"`
	Scenario string `json:"scenario"`
	Point    Point  `json:"point"`
	Budget   Budget `json:"budget"`
	Seed     uint64 `json:"seed"`
}

// PointKey returns the content address of one evaluated design point:
// the hex SHA-256 of the canonical JSON of (engine version, scenario,
// point, budget, sweep seed). Everything Evaluate's output depends on is
// in the envelope — the point's sub-stream is a pure function of (seed,
// point index) — so a key collision means the records are identical and
// a key change means the point must be recomputed.
func PointKey(scenario string, pt Point, b Budget, seed uint64) string {
	env, err := json.Marshal(keyEnvelope{
		Engine:   EngineVersion,
		Scenario: scenario,
		Point:    pt,
		Budget:   b,
		Seed:     seed,
	})
	if err != nil {
		// Point and Budget are plain data; Marshal cannot fail on them.
		panic("sweep: point key envelope: " + err.Error())
	}
	sum := sha256.Sum256(env)
	return hex.EncodeToString(sum[:])
}
