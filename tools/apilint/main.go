// Command apilint fails (exit 1) if any handler in internal/service
// writes a non-2xx response outside the error-envelope helper. It is
// the CI contract gate for the API's error surface: every non-2xx body
// must be the unified envelope
// {"error":{"code":...,"message":...,"details":...}}, and the only
// function allowed to hand a non-2xx status to the response writer is
// writeAPIErrorAs (writeAPIError delegates to it). A handler calling
// writeJSON(w, http.StatusBadRequest, ...) or w.WriteHeader(500)
// directly would ship an un-enveloped error, and fails the build.
//
// Usage:
//
//	go run ./tools/apilint [dir]
//
// dir defaults to "internal/service". Like routelint, the check is
// purely syntactic so it needs no type information or build cache: a
// violation is a call to writeJSON or .WriteHeader whose status
// argument is a non-2xx http.Status* selector or a non-2xx integer
// literal, outside the function declarations of writeAPIErrorAs and
// the writeJSON transport it bottoms out in (whose internal
// WriteHeader only forwards a status already linted at the call
// site). Statuses computed at runtime escape the lint by
// construction — handlers have none, and classify() keeps it that way
// by being the only error-to-status decision table. Test files are
// ignored.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// allowedFunc is the one function allowed to write non-2xx statuses.
const allowedFunc = "writeAPIErrorAs"

// transportFunc is the shared JSON writer both helpers bottom out in.
// Its body forwards whatever status its caller passed — and every
// caller's status argument is linted at the call site — so its internal
// WriteHeader is excused alongside the helper.
const transportFunc = "writeJSON"

// okStatuses are the http.Status* selector names a handler may pass
// directly: the 2xx family the envelope contract does not cover.
var okStatuses = map[string]bool{
	"StatusOK":        true,
	"StatusCreated":   true,
	"StatusAccepted":  true,
	"StatusNoContent": true,
}

func main() {
	root := "internal/service"
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations, err := lint(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apilint:", err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "apilint: %d non-2xx response(s) bypass the error envelope (use writeAPIError / %s):\n",
			len(violations), allowedFunc)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("apilint: every non-2xx response in %s goes through %s\n", root, allowedFunc)
}

// lint walks root's non-test Go files and returns every non-2xx status
// write outside the allowed helper, as "file:line: call" strings in
// sorted order.
func lint(root string) ([]string, error) {
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		violations = append(violations, lintFile(fset, f)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(violations)
	return violations, nil
}

// lintFile reports the offending status writes in one parsed file. Each
// top-level declaration is walked separately so a call can be excused
// by the function declaration it lives in.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && (fd.Name.Name == allowedFunc || fd.Name.Name == transportFunc) {
			continue
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var status ast.Expr
			var what string
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "writeJSON" && len(call.Args) >= 2 {
					status, what = call.Args[1], "writeJSON"
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "WriteHeader" && len(call.Args) == 1 {
					status, what = call.Args[0], "WriteHeader"
				}
			}
			if status == nil || statusIs2xx(status) {
				return true
			}
			pos := fset.Position(call.Pos())
			out = append(out, fmt.Sprintf("%s:%d: %s with non-2xx status %s outside %s",
				pos.Filename, pos.Line, what, exprString(status), allowedFunc))
			return true
		})
	}
	return out
}

// statusIs2xx reports whether the status expression is a whitelisted
// 2xx http.Status* selector or a 2xx integer literal. Anything else —
// a non-2xx constant, a literal like 500, or a runtime value — counts
// as a potential envelope bypass.
func statusIs2xx(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.SelectorExpr:
		return okStatuses[v.Sel.Name]
	case *ast.BasicLit:
		if v.Kind != token.INT {
			return false
		}
		n, err := strconv.Atoi(v.Value)
		return err == nil && n >= 200 && n < 300
	default:
		return false
	}
}

// exprString renders the status argument for the violation message.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.SelectorExpr:
		if x, ok := v.X.(*ast.Ident); ok {
			return x.Name + "." + v.Sel.Name
		}
		return v.Sel.Name
	case *ast.BasicLit:
		return v.Value
	case *ast.Ident:
		return v.Name
	default:
		return "?"
	}
}
