package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds coincided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1, c2 := parent.Split(1), parent.Split(2)
	c1again := New(7).Split(1)
	// Same (seed, index) -> identical stream.
	for i := 0; i < 100; i++ {
		if c1.Float64() != c1again.Float64() {
			t.Fatal("Split is not deterministic")
		}
	}
	// Distinct indices -> decorrelated streams.
	c1 = New(7).Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("sibling streams coincided %d/100 times", same)
	}
}

func TestNextAdvances(t *testing.T) {
	parent := New(9)
	s1, s2 := parent.Next(), parent.Next()
	if s1.Float64() == s2.Float64() {
		// A single coincidence is astronomically unlikely.
		t.Error("successive Next() streams look identical")
	}
}

func TestNormMoments(t *testing.T) {
	s := New(1234)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %g, want ~1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	s := New(5)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.NormScaled(3, 0.5)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.02 {
		t.Errorf("NormScaled mean = %g, want ~3", mean)
	}
}

func TestFillNorm(t *testing.T) {
	s := New(6)
	buf := make([]float64, 50000)
	s.FillNorm(buf, 2)
	var sumSq float64
	for _, x := range buf {
		sumSq += x * x
	}
	if v := sumSq / float64(len(buf)); math.Abs(v-4) > 0.2 {
		t.Errorf("FillNorm variance = %g, want ~4", v)
	}
}

func TestExpMean(t *testing.T) {
	s := New(8)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(4)
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.01 {
		t.Errorf("Exp(4) mean = %g, want 0.25", mean)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMean(t *testing.T) {
	s := New(11)
	for _, mean := range []float64{0.1, 1, 10, 600} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		tol := 0.05*mean + 0.02
		if math.Abs(got-mean) > tol {
			t.Errorf("Poisson(%g) mean = %g", mean, got)
		}
	}
	if New(1).Poisson(0) != 0 || New(1).Poisson(-3) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestBernoulli(t *testing.T) {
	s := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %g", p)
	}
}

func TestIntnAndPermCoverRange(t *testing.T) {
	s := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered only %d values", len(seen))
	}
	p := s.Perm(16)
	mark := make([]bool, 16)
	for _, v := range p {
		if mark[v] {
			t.Fatalf("Perm repeated %d", v)
		}
		mark[v] = true
	}
}
