package vna

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
)

func TestFrequencyGridMatchesPaper(t *testing.T) {
	a := New(1)
	freqs := a.Frequencies()
	if len(freqs) != 4096 {
		t.Fatalf("points = %d, want 4096", len(freqs))
	}
	if freqs[0] != 220e9 || freqs[len(freqs)-1] != 245e9 {
		t.Errorf("band = [%g, %g], want [220e9, 245e9]", freqs[0], freqs[len(freqs)-1])
	}
	if got := a.CentreHz(); got != 232.5e9 {
		t.Errorf("centre = %g, want 232.5 GHz", got)
	}
	if got := a.Bandwidth(); got != 25e9 {
		t.Errorf("bandwidth = %g, want 25 GHz", got)
	}
}

func TestCalibratedThruIsFlat(t *testing.T) {
	a := New(2)
	thru := a.MeasureThru()
	for i, v := range thru {
		db := 20 * math.Log10(cmplx.Abs(v))
		if math.Abs(db) > 0.1 {
			t.Fatalf("calibrated thru bin %d = %.3f dB, want ~0", i, db)
		}
	}
}

func TestUncalibratedThruShowsSystematics(t *testing.T) {
	a := NewUncalibrated(2)
	if a.Calibrated() {
		t.Fatal("NewUncalibrated returned a calibrated instrument")
	}
	thru := a.MeasureThru()
	var minDB, maxDB = math.Inf(1), math.Inf(-1)
	for _, v := range thru {
		db := 20 * math.Log10(cmplx.Abs(v))
		minDB = math.Min(minDB, db)
		maxDB = math.Max(maxDB, db)
	}
	if maxDB-minDB < 0.5 {
		t.Errorf("uncalibrated thru ripple %.2f dB, expected visible systematics", maxDB-minDB)
	}
	a.Calibrate()
	if !a.Calibrated() {
		t.Error("Calibrate did not take effect")
	}
}

func TestMeasurementReproducible(t *testing.T) {
	sc := channel.Scenario{LinkDistM: 0.05, TXGainDB: 9.5, RXGainDB: 9.5}
	a1, a2 := New(7), New(7)
	m1, m2 := a1.MeasureS21(sc), a2.MeasureS21(sc)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("same seed produced different measurements")
		}
	}
}

func TestImpulseResponsePeakAtLoSDelay(t *testing.T) {
	// Fig. 2 setup: 50 mm antenna distance. LoS delay = 0.167 ns.
	a := New(3)
	sc := channel.Scenario{
		LinkDistM: 0.05, CopperBoards: true,
		TXGainDB: channel.HornGainDB, RXGainDB: channel.HornGainDB,
	}
	ir := a.ImpulseResponse(a.MeasureS21(sc), dsp.Hann)
	wantDelay := 0.05 / 299792458.0
	if got := ir.PeakDelayS(); math.Abs(got-wantDelay) > 1.5/a.Bandwidth() {
		t.Errorf("peak delay = %g s, want %g within resolution", got, wantDelay)
	}
	// Peak level should be near the LoS budget: -(PL at 50mm) + 19 dB.
	pl := channel.NewFreespacePathloss(a.CentreHz(), 0.1).LossDB(0.05)
	want := -pl + 19
	if math.Abs(ir.PeakDB()-want) > 2 {
		t.Errorf("peak level = %.1f dB, want ~%.1f", ir.PeakDB(), want)
	}
}

func TestImpulseResponseEchoes15dBDown(t *testing.T) {
	// The paper's conclusion from Figs. 2-3, now verified through the
	// full instrument chain (sweep, window, IDFT).
	a := New(4)
	for _, d := range []float64{0.05, 0.15} {
		sc := channel.Scenario{
			LinkDistM: d, CopperBoards: true,
			TXGainDB: channel.HornGainDB, RXGainDB: channel.HornGainDB,
		}
		ir := a.ImpulseResponse(a.MeasureS21(sc), dsp.Hann)
		guard := 3 / a.Bandwidth() // main-lobe guard of the Hann window
		rel := ir.WorstEchoRelativeDB(guard, 2e-9)
		if rel > -15 {
			t.Errorf("d=%.2f: worst in-window echo %.1f dB, want <= -15", d, rel)
		}
		if rel < -45 {
			t.Errorf("d=%.2f: echoes %.1f dB — lost in the floor, model broken?", d, rel)
		}
	}
}

func TestImpulseResponseEchoDelays(t *testing.T) {
	// The first reverberation arrives at 3x the LoS delay.
	a := New(5)
	sc := channel.Scenario{
		LinkDistM: 0.05, CopperBoards: true,
		TXGainDB: channel.HornGainDB, RXGainDB: channel.HornGainDB,
	}
	ir := a.ImpulseResponse(a.MeasureS21(sc), dsp.Hann)
	losDelay := 0.05 / 299792458.0
	// Find the strongest tap within +-60 ps of 3x LoS delay.
	target := 3 * losDelay
	best := math.Inf(-1)
	for i, tt := range ir.TimeS {
		if math.Abs(tt-target) < 60e-12 && ir.MagDB[i] > best {
			best = ir.MagDB[i]
		}
	}
	if best-ir.PeakDB() < -30 || best-ir.PeakDB() > -10 {
		t.Errorf("first reverberation at 3x delay is %.1f dB relative, want in (-30, -10)", best-ir.PeakDB())
	}
}

func TestImpulseResponsePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	New(1).ImpulseResponse(make([]complex128, 7), dsp.Hann)
}

func TestFreespaceSweepFitsN2(t *testing.T) {
	// Fig. 1: computed pathloss (n=2.000) matches the freespace
	// measurement after phase-centre correction.
	a := New(11)
	sweep := a.PathlossSweep(SweepConfig{
		Distances:          []float64{0.02, 0.04, 0.06, 0.08, 0.1, 0.13, 0.16, 0.2},
		PhaseCenterOffsetM: 0.008,
	})
	if math.Abs(sweep.Fit.Exponent-2.0) > 0.01 {
		t.Errorf("freespace fitted n = %.4f, want 2.000", sweep.Fit.Exponent)
	}
	if sweep.R2 < 0.999 {
		t.Errorf("fit R^2 = %g", sweep.R2)
	}
	// Reference loss at 0.1 m should be near Table I's 59.8 dB.
	if math.Abs(sweep.Fit.RefLossDB-59.8) > 1.0 {
		t.Errorf("fitted PL(0.1 m) = %.2f dB, want ~59.8", sweep.Fit.RefLossDB)
	}
}

func TestCopperBoardSweepFitsPaperExponent(t *testing.T) {
	// Fig. 1: parallel copper boards with diagonal links fit n = 2.0454.
	a := New(12)
	sweep := a.PathlossSweep(SweepConfig{
		Distances: []float64{0.05, 0.075, 0.1, 0.125, 0.15, 0.2, 0.25, 0.3},
		Copper:    true,
		Diagonal:  true,
	})
	if sweep.Fit.Exponent < 2.01 || sweep.Fit.Exponent > 2.09 {
		t.Errorf("board fitted n = %.4f, want ~2.0454", sweep.Fit.Exponent)
	}
}

func TestSweepMonotoneLoss(t *testing.T) {
	a := New(13)
	sweep := a.PathlossSweep(SweepConfig{
		Distances: []float64{0.05, 0.1, 0.15, 0.2},
	})
	for i := 1; i < len(sweep.Points); i++ {
		if sweep.Points[i].PathlossDB <= sweep.Points[i-1].PathlossDB {
			t.Errorf("pathloss not increasing at %g m", sweep.Points[i].DistM)
		}
	}
}

func TestSweepPanicsOnTooFewDistances(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single-distance sweep did not panic")
		}
	}()
	New(1).PathlossSweep(SweepConfig{Distances: []float64{0.1}})
}
