package antenna

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPlanarArrayGain(t *testing.T) {
	a := NewHalfWave4x4()
	if a.Elements() != 16 {
		t.Fatalf("elements = %d, want 16", a.Elements())
	}
	// Table I: 4x4 array gain = 12 dB.
	if g := a.GainDB(); math.Abs(g-12.04) > 0.01 {
		t.Errorf("array gain = %g dB, want ~12.04", g)
	}
}

func TestApertureFitsInterposer(t *testing.T) {
	// Paper: "a 4x4 antenna array can be realized in a 2mm x 2mm real
	// estate" at carriers beyond 200 GHz.
	a := NewHalfWave4x4()
	x, y := a.ApertureMM(232.5e9)
	if x > 2.8 || y > 2.8 {
		t.Errorf("aperture %.2f x %.2f mm, want ~2 mm class", x, y)
	}
	if x < 1 || y < 1 {
		t.Errorf("aperture %.2f x %.2f mm implausibly small", x, y)
	}
}

func TestSteeredBeamAchievesFullGain(t *testing.T) {
	a := NewHalfWave4x4()
	for _, dir := range []struct{ theta, phi float64 }{
		{0, 0},
		{0.3, 0.2},
		{0.6, -1.0},
		{-0.4, 2.5},
	} {
		w := a.SteeringVector(dir.theta, dir.phi)
		got := a.GainTowardDB(w, dir.theta, dir.phi)
		if math.Abs(got-a.GainDB()) > 1e-9 {
			t.Errorf("steered gain at (%.2f, %.2f) = %g, want %g",
				dir.theta, dir.phi, got, a.GainDB())
		}
	}
}

func TestOffBeamGainIsLower(t *testing.T) {
	a := NewHalfWave4x4()
	w := a.SteeringVector(0, 0)
	on := a.GainTowardDB(w, 0, 0)
	off := a.GainTowardDB(w, 0.5, 0)
	if off >= on {
		t.Errorf("off-boresight gain %g >= boresight %g", off, on)
	}
}

func TestArrayFactorPanicsOnBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ArrayFactor with wrong weight count did not panic")
		}
	}()
	NewHalfWave4x4().ArrayFactor(make([]complex128, 3), 0, 0)
}

func TestSteeringLossNonNegative(t *testing.T) {
	a := NewHalfWave4x4()
	w := a.SteeringVector(0.2, 0.3)
	for _, th := range []float64{0, 0.1, 0.2, 0.5} {
		if l := a.SteeringLossDB(w, th, 0.3); l < -1e-9 {
			t.Errorf("steering loss %g < 0 at theta=%g", l, th)
		}
	}
}

func TestButlerBeamDirectionsSymmetric(t *testing.T) {
	b := NewButlerMatrix(4, 0.5)
	dirs := b.BeamDirections()
	want := []float64{-0.75, -0.25, 0.25, 0.75}
	for i := range want {
		if math.Abs(dirs[i]-want[i]) > 1e-12 {
			t.Errorf("beam %d direction = %g, want %g", i, dirs[i], want[i])
		}
	}
}

func TestButlerOnGridBeamHasNoLoss(t *testing.T) {
	b := NewButlerMatrix(4, 0.5)
	for _, u := range b.BeamDirections() {
		if l := b.MismatchLossDB(u); math.Abs(l) > 1e-9 {
			t.Errorf("on-grid loss at u=%g is %g dB, want 0", u, l)
		}
	}
}

func TestButlerMidpointLossPositive(t *testing.T) {
	b := NewButlerMatrix(4, 0.5)
	// Worst case is halfway between adjacent beams.
	l := b.MismatchLossDB(0.0) // 0 lies between beams at -0.25 and 0.25
	if l <= 0.5 {
		t.Errorf("midpoint scalloping loss = %g dB, want clearly positive", l)
	}
	if l > 6 {
		t.Errorf("midpoint scalloping loss = %g dB, implausibly high for n=4", l)
	}
}

func TestButlerWorstCaseNearBudget(t *testing.T) {
	// Table I budgets 5 dB for Butler-matrix inaccuracy across the link
	// (both ends). One end's worst-case scalloping within the usable
	// steering range should be roughly half that (~2-4 dB).
	b := NewButlerMatrix(4, 0.5)
	worst := b.WorstCaseMismatchLossDB(0.8, 400)
	if worst < 1.5 || worst > 5 {
		t.Errorf("worst-case scalloping = %g dB, want within [1.5, 5]", worst)
	}
}

func TestButlerBestPort(t *testing.T) {
	b := NewButlerMatrix(4, 0.5)
	if got := b.BestPort(0.26); got != 2 {
		t.Errorf("BestPort(0.26) = %d, want 2", got)
	}
	if got := b.BestPort(-0.9); got != 0 {
		t.Errorf("BestPort(-0.9) = %d, want 0", got)
	}
}

func TestButlerPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"size3":    func() { NewButlerMatrix(3, 0.5) },
		"size0":    func() { NewButlerMatrix(0, 0.5) },
		"spacing0": func() { NewButlerMatrix(4, 0) },
		"portOOR":  func() { NewButlerMatrix(4, 0.5).Weights(7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: for any direction, serving it with the best Butler beam never
// loses more than the half-beam scalloping bound and never gains.
func TestPropertyButlerLossBounded(t *testing.T) {
	b := NewButlerMatrix(8, 0.5)
	f := func(raw float64) bool {
		u := math.Mod(math.Abs(raw), 0.9)
		l := b.MismatchLossDB(u)
		return l >= -1e-9 && l < 5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: steering reciprocity — the gain achieved by steering to a
// direction equals the array gain independent of direction.
func TestPropertySteeringReciprocity(t *testing.T) {
	a := NewHalfWave4x4()
	f := func(rawTheta, rawPhi float64) bool {
		theta := math.Mod(rawTheta, 1.2)
		phi := math.Mod(rawPhi, math.Pi)
		if math.IsNaN(theta) || math.IsNaN(phi) {
			return true
		}
		w := a.SteeringVector(theta, phi)
		return math.Abs(a.GainTowardDB(w, theta, phi)-a.GainDB()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
