// Package ldpc implements the low-latency error-correction study of the
// paper's Sec. V: protograph-based LDPC block and convolutional codes
// (LDPC-CC), quasi-cyclic lifting, belief-propagation decoding, the
// sliding window decoder of Fig. 9, and the Monte-Carlo harness behind
// Fig. 10 (required Eb/N0 at a target BER versus structural decoding
// latency).
package ldpc

import "fmt"

// BaseMatrix is a protograph bi-adjacency matrix: entry (c, v) counts the
// edges between check type c and variable type v.
type BaseMatrix [][]int

// NewBaseMatrix validates and wraps a rectangular non-negative matrix.
func NewBaseMatrix(rows [][]int) BaseMatrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("ldpc: empty base matrix")
	}
	nv := len(rows[0])
	for r, row := range rows {
		if len(row) != nv {
			panic(fmt.Sprintf("ldpc: ragged base matrix at row %d", r))
		}
		for _, e := range row {
			if e < 0 {
				panic("ldpc: negative edge multiplicity")
			}
		}
	}
	return BaseMatrix(rows)
}

// NumChecks returns nc, the number of check-node types.
func (b BaseMatrix) NumChecks() int { return len(b) }

// NumVars returns nv, the number of variable-node types.
func (b BaseMatrix) NumVars() int { return len(b[0]) }

// Rate returns the design rate 1 - nc/nv of the protograph.
func (b BaseMatrix) Rate() float64 {
	return 1 - float64(b.NumChecks())/float64(b.NumVars())
}

// VarDegrees returns the column sums (variable-node degrees).
func (b BaseMatrix) VarDegrees() []int {
	out := make([]int, b.NumVars())
	for _, row := range b {
		for v, e := range row {
			out[v] += e
		}
	}
	return out
}

// CheckDegrees returns the row sums (check-node degrees).
func (b BaseMatrix) CheckDegrees() []int {
	out := make([]int, b.NumChecks())
	for c, row := range b {
		for _, e := range row {
			out[c] += e
		}
	}
	return out
}

// Regular48 is the paper's (4,8)-regular block-code protograph B = [4 4].
func Regular48() BaseMatrix { return NewBaseMatrix([][]int{{4, 4}}) }

// EdgeSpreading is a decomposition B = sum_i B_i of a protograph into
// component matrices B_0..B_mcc that couple consecutive codewords of an
// LDPC convolutional code (Eq. 2); mcc is the coupling memory.
type EdgeSpreading struct {
	Components []BaseMatrix
}

// PaperSpreading is the edge spreading used in Fig. 10:
// B0 = [2 2], B1 = B2 = [1 1] (mcc = 2), a valid spreading of [4 4].
func PaperSpreading() EdgeSpreading {
	return EdgeSpreading{Components: []BaseMatrix{
		NewBaseMatrix([][]int{{2, 2}}),
		NewBaseMatrix([][]int{{1, 1}}),
		NewBaseMatrix([][]int{{1, 1}}),
	}}
}

// Memory returns mcc, the maximal coupling distance.
func (s EdgeSpreading) Memory() int { return len(s.Components) - 1 }

// Sum returns the recombined protograph sum_i B_i.
func (s EdgeSpreading) Sum() BaseMatrix {
	if len(s.Components) == 0 {
		panic("ldpc: empty edge spreading")
	}
	nc, nv := s.Components[0].NumChecks(), s.Components[0].NumVars()
	sum := make([][]int, nc)
	for c := range sum {
		sum[c] = make([]int, nv)
	}
	for _, comp := range s.Components {
		if comp.NumChecks() != nc || comp.NumVars() != nv {
			panic("ldpc: edge-spreading component shape mismatch")
		}
		for c := 0; c < nc; c++ {
			for v := 0; v < nv; v++ {
				sum[c][v] += comp[c][v]
			}
		}
	}
	return BaseMatrix(sum)
}

// Validate checks the edge-spreading condition sum_i B_i = B (Eq. 2).
func (s EdgeSpreading) Validate(b BaseMatrix) error {
	sum := s.Sum()
	if sum.NumChecks() != b.NumChecks() || sum.NumVars() != b.NumVars() {
		return fmt.Errorf("ldpc: spreading shape %dx%d does not match base %dx%d",
			sum.NumChecks(), sum.NumVars(), b.NumChecks(), b.NumVars())
	}
	for c := range sum {
		for v := range sum[c] {
			if sum[c][v] != b[c][v] {
				return fmt.Errorf("ldpc: spreading sum %d != base %d at (%d,%d)",
					sum[c][v], b[c][v], c, v)
			}
		}
	}
	return nil
}

// ConvProtograph builds the terminated convolutional protograph B[1,L] of
// Eq. 3: L coupled codeword positions give an ((L+mcc)*nc) x (L*nv)
// protograph whose last mcc check rows cause the termination rate loss.
func (s EdgeSpreading) ConvProtograph(L int) BaseMatrix {
	if L < 1 {
		panic(fmt.Sprintf("ldpc: termination length %d < 1", L))
	}
	mcc := s.Memory()
	nc := s.Components[0].NumChecks()
	nv := s.Components[0].NumVars()
	rows := make([][]int, (L+mcc)*nc)
	for r := range rows {
		rows[r] = make([]int, L*nv)
	}
	for t := 0; t < L; t++ { // codeword position (column block)
		for i, comp := range s.Components {
			rBlock := t + i
			for c := 0; c < nc; c++ {
				for v := 0; v < nv; v++ {
					rows[rBlock*nc+c][t*nv+v] = comp[c][v]
				}
			}
		}
	}
	return BaseMatrix(rows)
}

// TerminatedRate returns the design rate of the terminated LDPC-CC with
// L coupled blocks: (L*nv - (L+mcc)*nc) / (L*nv), which approaches the
// uncoupled rate as L grows (the termination rate loss of Sec. V-A).
func (s EdgeSpreading) TerminatedRate(L int) float64 {
	mcc := s.Memory()
	nc := s.Components[0].NumChecks()
	nv := s.Components[0].NumVars()
	return float64(L*nv-(L+mcc)*nc) / float64(L*nv)
}
