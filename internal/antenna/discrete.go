package antenna

import (
	"fmt"
	"math"
	"math/cmplx"
)

// QuantizedSteeringVector returns the steering weights of the array with
// every element phase rounded to a B-bit phase shifter (2^B uniform
// phase states) — the discrete receive beamforming of the paper's
// ref. [4]. bits must be >= 1.
func (a PlanarArray) QuantizedSteeringVector(theta, phi float64, bits int) []complex128 {
	if bits < 1 {
		panic(fmt.Sprintf("antenna: phase shifter needs >= 1 bit, got %d", bits))
	}
	ideal := a.SteeringVector(theta, phi)
	states := float64(int(1) << uint(bits))
	step := 2 * math.Pi / states
	out := make([]complex128, len(ideal))
	for i, w := range ideal {
		ph := cmplx.Phase(w)
		q := math.Round(ph/step) * step
		out[i] = cmplx.Exp(complex(0, q))
	}
	return out
}

// QuantizationLossDB returns the gain shortfall (dB, >= 0) of B-bit
// discrete beamforming relative to ideal steering in direction
// (theta, phi). The classic small-error approximation predicts
// 10 log10(sinc^2(1/2^B)) — about 0.22 dB at 3 bits and 0.06 dB at
// 4 bits — and the exact array computation here matches it closely.
func (a PlanarArray) QuantizationLossDB(theta, phi float64, bits int) float64 {
	w := a.QuantizedSteeringVector(theta, phi, bits)
	return a.SteeringLossDB(w, theta, phi)
}

// WorstQuantizationLossDB scans steering directions up to maxTheta and
// returns the largest quantisation loss, the number a link budget should
// carry for a discrete beamforming implementation.
func (a PlanarArray) WorstQuantizationLossDB(maxTheta float64, steps, bits int) float64 {
	if steps < 2 {
		steps = 2
	}
	worst := 0.0
	for i := 0; i <= steps; i++ {
		theta := maxTheta * float64(i) / float64(steps)
		for j := 0; j < 8; j++ {
			phi := 2 * math.Pi * float64(j) / 8
			if l := a.QuantizationLossDB(theta, phi, bits); l > worst {
				worst = l
			}
		}
	}
	return worst
}
