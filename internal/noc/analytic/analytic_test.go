package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/noc"
)

func model(m *noc.Mesh) Model {
	return Model{Topo: m, Traffic: noc.Uniform{}}
}

func TestZeroLoadLatenciesMatchFig8a(t *testing.T) {
	// Paper, 64 modules: 2D mesh ~13 cycles, star-mesh ~7, 3D mesh ~10.
	cases := []struct {
		m    *noc.Mesh
		want float64
		tol  float64
	}{
		{noc.NewMesh2D(8, 8), 13, 0.7},
		{noc.NewStarMesh(4, 4, 4), 7, 0.5},
		{noc.NewMesh3D(4, 4, 4), 10, 0.7},
	}
	for _, c := range cases {
		got := model(c.m).ZeroLoadLatency()
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s: zero-load latency = %.1f, want %.0f +- %.1f",
				c.m.Name(), got, c.want, c.tol)
		}
	}
}

func TestSaturationMatchesFig8a(t *testing.T) {
	// Paper, 64 modules: 2D mesh 0.41, star-mesh 0.19, 3D mesh 0.75
	// flits/cycle/module.
	cases := []struct {
		m    *noc.Mesh
		want float64
		tol  float64
	}{
		{noc.NewMesh2D(8, 8), 0.41, 0.04},
		{noc.NewStarMesh(4, 4, 4), 0.19, 0.02},
		{noc.NewMesh3D(4, 4, 4), 0.75, 0.06},
	}
	for _, c := range cases {
		got := model(c.m).SaturationRate()
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s: saturation = %.3f, want %.2f +- %.2f",
				c.m.Name(), got, c.want, c.tol)
		}
	}
}

func TestFig8aOrdering(t *testing.T) {
	// The qualitative story of Fig. 8a: star-mesh has the best latency
	// floor but the worst throughput; the 3D mesh combines good latency
	// with the highest throughput; the 2D mesh is worst in latency.
	mesh2d := model(noc.NewMesh2D(8, 8))
	star := model(noc.NewStarMesh(4, 4, 4))
	mesh3d := model(noc.NewMesh3D(4, 4, 4))

	if !(star.ZeroLoadLatency() < mesh3d.ZeroLoadLatency() &&
		mesh3d.ZeroLoadLatency() < mesh2d.ZeroLoadLatency()) {
		t.Error("latency-floor ordering star < 3D < 2D violated")
	}
	if !(star.SaturationRate() < mesh2d.SaturationRate() &&
		mesh2d.SaturationRate() < mesh3d.SaturationRate()) {
		t.Error("throughput ordering star < 2D < 3D violated")
	}
}

func TestFig8bGapWidensAt512(t *testing.T) {
	// Fig. 8b: at 512 modules the 2D/3D latency gap grows significantly.
	gap64 := model(noc.NewMesh2D(8, 8)).ZeroLoadLatency() -
		model(noc.NewMesh3D(4, 4, 4)).ZeroLoadLatency()
	gap512 := model(noc.NewMesh2D(32, 16)).ZeroLoadLatency() -
		model(noc.NewMesh3D(8, 8, 8)).ZeroLoadLatency()
	if gap512 <= 2*gap64 {
		t.Errorf("512-module latency gap %.1f not much larger than 64-module gap %.1f",
			gap512, gap64)
	}
	// And the 3D mesh keeps a large throughput advantage.
	sat2d := model(noc.NewMesh2D(32, 16)).SaturationRate()
	sat3d := model(noc.NewMesh3D(8, 8, 8)).SaturationRate()
	if sat3d < 3*sat2d {
		t.Errorf("3D saturation %.3f not >= 3x 2D %.3f at 512 modules", sat3d, sat2d)
	}
}

func TestLatencyMonotoneInInjection(t *testing.T) {
	m := model(noc.NewMesh3D(4, 4, 4))
	prev := 0.0
	for _, r := range []float64{0.01, 0.1, 0.2, 0.4, 0.6, 0.7} {
		lat, ok := m.AvgLatency(r)
		if !ok {
			t.Fatalf("saturated below the saturation point at %g", r)
		}
		if lat <= prev {
			t.Fatalf("latency not increasing at %g: %g <= %g", r, lat, prev)
		}
		prev = lat
	}
}

func TestLatencyDivergesAtSaturation(t *testing.T) {
	m := model(noc.NewMesh2D(8, 8))
	sat := m.SaturationRate()
	if _, ok := m.AvgLatency(sat * 1.01); ok {
		t.Error("model reports finite latency above saturation")
	}
	lat, ok := m.AvgLatency(sat * 0.98)
	if !ok {
		t.Error("model saturated below the saturation point")
	}
	if lat < 3*m.ZeroLoadLatency() {
		t.Errorf("latency near saturation (%.1f) not clearly diverging", lat)
	}
}

func TestLatencyCurve(t *testing.T) {
	m := model(noc.NewStarMesh(4, 4, 4))
	rates := []float64{0.01, 0.1, 0.18, 0.25}
	curve := m.LatencyCurve(rates)
	if len(curve) != 4 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[3].Saturated != true || curve[0].Saturated {
		t.Error("saturation flags wrong on curve")
	}
	if curve[0].InjectionRate != 0.01 {
		t.Error("rates not preserved")
	}
}

func TestMD1WaitsLessThanMM1(t *testing.T) {
	mm1 := model(noc.NewMesh2D(8, 8))
	md1 := mm1
	md1.Service = MD1
	rate := 0.3
	lmm, _ := mm1.AvgLatency(rate)
	lmd, _ := md1.AvgLatency(rate)
	if lmd >= lmm {
		t.Errorf("M/D/1 latency %.2f not below M/M/1 %.2f", lmd, lmm)
	}
	// Both share the zero-load floor.
	if math.Abs(mm1.ZeroLoadLatency()-md1.ZeroLoadLatency()) > 1e-9 {
		t.Error("service model changed the zero-load latency")
	}
}

func TestServiceModelStrings(t *testing.T) {
	if MM1.String() != "M/M/1" || MD1.String() != "M/D/1" {
		t.Error("service model names wrong")
	}
	if ServiceModel(9).String() != "unknown" {
		t.Error("unknown service model name wrong")
	}
}

func TestChannelLoadsSymmetricOnUniform(t *testing.T) {
	m := model(noc.NewMesh2D(4, 4))
	loads := m.ChannelLoadsPerUnit()
	// Uniform traffic on a symmetric mesh: the load on a->b equals b->a.
	topo := m.Topo
	for _, c := range topo.Channels() {
		fwd := topo.ChannelID(c.From, c.To)
		rev := topo.ChannelID(c.To, c.From)
		if math.Abs(loads[fwd]-loads[rev]) > 1e-12 {
			t.Fatalf("asymmetric loads on symmetric mesh: %g vs %g", loads[fwd], loads[rev])
		}
	}
}

func TestHigherEfficiencyRaisesSaturation(t *testing.T) {
	lo := Model{Topo: noc.NewMesh2D(8, 8), Traffic: noc.Uniform{}, ChannelEfficiency: 0.6}
	hi := Model{Topo: noc.NewMesh2D(8, 8), Traffic: noc.Uniform{}, ChannelEfficiency: 1.0}
	if hi.SaturationRate() <= lo.SaturationRate() {
		t.Error("efficiency does not raise saturation")
	}
}

func TestPillarMeshTradesSaturationForTSVs(t *testing.T) {
	// Future-work scenario: TSV pillars every 2 routers concentrate the
	// vertical traffic, lowering saturation versus the full 3D mesh.
	full := model(noc.NewMesh3D(4, 4, 4)).SaturationRate()
	sparse := model(noc.NewPillarMesh3D(4, 4, 4, 2)).SaturationRate()
	if sparse >= full {
		t.Errorf("pillar mesh saturation %.3f not below full 3D %.3f", sparse, full)
	}
}

func TestHotspotLowersSaturation(t *testing.T) {
	base := model(noc.NewMesh2D(8, 8))
	hot := Model{Topo: noc.NewMesh2D(8, 8), Traffic: noc.Hotspot{Module: 0, Fraction: 0.3}}
	if hot.SaturationRate() >= base.SaturationRate() {
		t.Error("hotspot traffic does not lower saturation")
	}
}

func TestAvgLatencyPanicsOnNegativeRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative rate did not panic")
		}
	}()
	model(noc.NewMesh2D(2, 2)).AvgLatency(-1)
}

// Property: below saturation the latency is finite and above the
// zero-load floor.
func TestPropertyLatencyAboveFloor(t *testing.T) {
	m := model(noc.NewMesh3D(3, 3, 3))
	floor := m.ZeroLoadLatency()
	sat := m.SaturationRate()
	f := func(raw float64) bool {
		r := math.Mod(math.Abs(raw), sat*0.95)
		lat, ok := m.AvgLatency(r)
		return ok && lat >= floor-1e-9 && !math.IsInf(lat, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
