package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintFindsBypassingRegistrations(t *testing.T) {
	dir := t.TempDir()
	// The blessed shape: registrations only inside instrument, and the
	// helper routes the handler through the middleware's Wrap.
	write(t, filepath.Join(dir, "good.go"), `package svc

import "net/http"

type mw struct{}

func (mw) Wrap(pattern string, fn http.HandlerFunc) http.Handler { return fn }

func instrument(mux *http.ServeMux, hm mw, pattern string, fn http.HandlerFunc) {
	mux.Handle(pattern, hm.Wrap(pattern, fn))
}

func handlers() *http.ServeMux {
	mux := http.NewServeMux()
	instrument(mux, mw{}, "GET /x", func(w http.ResponseWriter, r *http.Request) {})
	return mux
}
`)
	// Two bypasses: a direct HandleFunc, and a Handle through an alias —
	// the syntactic check catches both, and reports the line.
	write(t, filepath.Join(dir, "bad.go"), `package svc

import "net/http"

func sneaky() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /hidden", func(w http.ResponseWriter, r *http.Request) {})
	alias := mux
	alias.Handle("GET /aliased", http.NotFoundHandler())
	return mux
}
`)
	// Tests may wire throwaway muxes freely.
	write(t, filepath.Join(dir, "bad_test.go"), `package svc

import "net/http"

func testMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /scratch", func(w http.ResponseWriter, r *http.Request) {})
	return mux
}
`)

	violations, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want exactly the two bypasses in bad.go", violations)
	}
	for _, v := range violations {
		if !strings.Contains(v, "bad.go") {
			t.Fatalf("violation %q not attributed to bad.go", v)
		}
	}
}

func TestLintFindsHollowedOutHelper(t *testing.T) {
	dir := t.TempDir()
	// The chokepoint exists but registers the raw handler: every route
	// would silently lose the middleware, so the helper itself fails.
	write(t, filepath.Join(dir, "hollow.go"), `package svc

import "net/http"

func instrument(mux *http.ServeMux, pattern string, fn http.HandlerFunc) {
	mux.Handle(pattern, fn)
}
`)

	violations, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "Wrap") {
		t.Fatalf("violations = %v, want one un-wrapped registration inside instrument", violations)
	}
}

func TestLintCleanOnThisModule(t *testing.T) {
	// The repository's own invariant: every internal/service route is
	// registered through instrument, hence wrapped by the middleware.
	violations, err := lint(filepath.Join("..", "..", "internal", "service"))
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("routes bypassing the metrics middleware: %v", violations)
	}
}
