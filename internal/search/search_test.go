package search

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/sweep"
	"repro/internal/sweep/store"
)

func TestParamDecode(t *testing.T) {
	cont := Param{Name: "c", Kind: Continuous, Min: 1, Max: 3}
	integer := Param{Name: "i", Kind: Integer, Min: 2, Max: 9}
	boolean := Param{Name: "b", Kind: Bool, Min: 0, Max: 1}
	cases := []struct {
		p    Param
		in   float64
		want float64
	}{
		{cont, 2.5, 2.5},
		{cont, -10, 1}, // clamp low
		{cont, 100, 3}, // clamp high
		{cont, math.NaN(), 1},
		{integer, 4.4, 4},
		{integer, 4.6, 5},
		{integer, 100, 9},
		{boolean, 0.49, 0},
		{boolean, 0.5, 1},
		{boolean, 2, 1},
	}
	for _, c := range cases {
		if got := c.p.Decode(c.in); got != c.want {
			t.Errorf("%s.Decode(%v) = %v, want %v", c.p.Name, c.in, got, c.want)
		}
	}
}

func TestRegistryMirrorsScenariosPlusFullDesign(t *testing.T) {
	// Every registered grid scenario has a same-named search space, and
	// the wide full-design space exists on top.
	names := map[string]bool{}
	for _, n := range Names() {
		names[n] = true
	}
	for _, sc := range sweep.Names() {
		if !names[sc] {
			t.Errorf("scenario %q has no mirroring search space", sc)
		}
	}
	if !names["full-design"] {
		t.Error("full-design space missing")
	}
}

func TestSpaceCornersDecodeToValidSpecs(t *testing.T) {
	// Both corners of every space's box must pass SystemSpec validation:
	// the optimizer may propose any point in between, and a spec-level
	// rejection there would be a bounds bug, not a design trade-off.
	for _, name := range Names() {
		sp, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		lo := make([]float64, len(sp.Params))
		hi := make([]float64, len(sp.Params))
		for i, p := range sp.Params {
			lo[i], hi[i] = p.Min, p.Max
		}
		for _, genome := range [][]float64{lo, hi} {
			spec := sp.Decode(genome)
			if err := spec.Validate(); err != nil {
				t.Errorf("space %q corner %v decodes to invalid spec: %v", name, genome, err)
			}
		}
	}
}

func TestGetUnknownSpace(t *testing.T) {
	if _, err := Get("no-such-space"); err == nil {
		t.Fatal("Get(no-such-space) did not fail")
	}
}

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 || objs[0].Name != "tx-power" {
		t.Fatalf("default objectives = %v", objectiveNames(objs))
	}
	if _, err := ParseObjectives([]string{"tx-power", "warp-drive"}); err == nil {
		t.Error("unknown objective accepted")
	}
	if _, err := ParseObjectives([]string{"ber", "ber"}); err == nil {
		t.Error("duplicate objective accepted")
	}
	if _, err := ParseObjectives([]string{"ber"}); err == nil {
		t.Error("single objective accepted")
	}
	objs, err = ParseObjectives([]string{" NOC-Latency ", "spectral-efficiency"})
	if err != nil {
		t.Fatal(err)
	}
	if objs[0].Name != "noc-latency" || !objs[1].Maximize {
		t.Fatalf("normalised parse = %+v", objs)
	}
}

// mkIndiv builds a feasible individual with the given cost vector.
func mkIndiv(idx int, cost ...float64) *indiv {
	return &indiv{cost: cost, feasible: true, idx: idx}
}

func TestDominatesConstrained(t *testing.T) {
	feasible := mkIndiv(0, 1, 1)
	worse := mkIndiv(1, 2, 2)
	tied := mkIndiv(2, 1, 1)
	infeasible := &indiv{cost: []float64{math.Inf(1), math.Inf(1)}, idx: 3}

	if !dominates(feasible, worse) {
		t.Error("strictly better point does not dominate")
	}
	if dominates(worse, feasible) {
		t.Error("strictly worse point dominates")
	}
	if dominates(feasible, tied) || dominates(tied, feasible) {
		t.Error("exact ties dominate each other")
	}
	if !dominates(feasible, infeasible) {
		t.Error("feasible does not dominate infeasible")
	}
	if dominates(infeasible, feasible) {
		t.Error("infeasible dominates feasible")
	}
	other := &indiv{cost: []float64{math.Inf(1), math.Inf(1)}, idx: 4}
	if dominates(infeasible, other) || dominates(other, infeasible) {
		t.Error("two infeasible points dominate each other")
	}
}

func TestSortFrontsAndCrowding(t *testing.T) {
	// Two clear fronts: {0,1} trade off against each other, {2} is
	// dominated by both.
	a := mkIndiv(0, 1, 3)
	b := mkIndiv(1, 3, 1)
	c := mkIndiv(2, 4, 4)
	fronts := sortFronts([]*indiv{a, b, c})
	if len(fronts) != 2 || len(fronts[0]) != 2 || len(fronts[1]) != 1 {
		t.Fatalf("front sizes = %v", fronts)
	}
	if a.rank != 0 || b.rank != 0 || c.rank != 1 {
		t.Fatalf("ranks = %d %d %d", a.rank, b.rank, c.rank)
	}
	// Boundary individuals of a 3+ front get infinite crowding.
	d := mkIndiv(3, 2, 2)
	front := []*indiv{a, b, d}
	for _, ind := range front {
		ind.rank = 0
	}
	setCrowding(front)
	if !math.IsInf(a.crowd, 1) || !math.IsInf(b.crowd, 1) {
		t.Errorf("boundary crowding = %v, %v", a.crowd, b.crowd)
	}
	if math.IsInf(d.crowd, 1) || d.crowd <= 0 {
		t.Errorf("interior crowding = %v", d.crowd)
	}
}

func TestEnvironmentalSelectElitist(t *testing.T) {
	// Selection must keep every first-front member before any
	// second-front one.
	a := mkIndiv(0, 1, 3)
	b := mkIndiv(1, 3, 1)
	c := mkIndiv(2, 4, 4)
	d := mkIndiv(3, 5, 5)
	next := environmentalSelect([]*indiv{d, c, b, a}, 2)
	if len(next) != 2 {
		t.Fatalf("selected %d individuals", len(next))
	}
	got := map[int]bool{next[0].idx: true, next[1].idx: true}
	if !got[0] || !got[1] {
		t.Fatalf("selection kept %v, want the first front {0, 1}", got)
	}
}

func optsFor(t *testing.T, workers int) Options {
	t.Helper()
	sp, err := Get("butler-vs-steered")
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Space:       sp,
		Seed:        7,
		Generations: 4,
		Population:  8,
		Workers:     workers,
	}
}

func TestOptimizeShape(t *testing.T) {
	res, err := Optimize(context.Background(), optsFor(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4*8 {
		t.Fatalf("evaluated %d records, want 32", len(res.Records))
	}
	if len(res.History) != 4 {
		t.Fatalf("history has %d generations, want 4", len(res.History))
	}
	if len(res.FrontIndices) == 0 {
		t.Fatal("empty final front")
	}
	for i, rec := range res.Records {
		if rec.Index != i {
			t.Fatalf("record %d carries global index %d", i, rec.Index)
		}
		if rec.Scenario != "optimize/butler-vs-steered" {
			t.Fatalf("record scenario = %q", rec.Scenario)
		}
	}
	onFront := map[int]bool{}
	for _, i := range res.FrontIndices {
		onFront[i] = true
	}
	for i, rec := range res.Records {
		if rec.Pareto != onFront[i] {
			t.Fatalf("record %d Pareto=%v but front membership=%v", i, rec.Pareto, onFront[i])
		}
	}
	if res.CachedPoints != 0 || res.ComputedPoints != 32 {
		t.Fatalf("cached/computed = %d/%d, want 0/32", res.CachedPoints, res.ComputedPoints)
	}
}

func TestOptimizeDeterministicAcrossWorkerCounts(t *testing.T) {
	// The acceptance bar: the same (space, objectives, seed,
	// generations, population) yields byte-identical results no matter
	// how the evaluation is parallelised.
	one, err := Optimize(context.Background(), optsFor(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Optimize(context.Background(), optsFor(t, 16))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(one)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(many)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatal("1-worker and 16-worker runs differ byte-for-byte")
	}
}

func TestOptimizeSeedMatters(t *testing.T) {
	a, err := Optimize(context.Background(), optsFor(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	opts := optsFor(t, 0)
	opts.Seed = 8
	b, err := Optimize(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a.Records)
	jb, _ := json.Marshal(b.Records)
	if string(ja) == string(jb) {
		t.Fatal("different seeds evaluated identical individuals")
	}
}

func TestOptimizeWarmStoreRerunComputesNothing(t *testing.T) {
	// The second acceptance bar: a re-run against a warm store
	// re-evaluates zero points and still produces a byte-identical
	// front.
	dir := t.TempDir()
	run := func() *Result {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		opts := optsFor(t, 0)
		opts.Cache = st
		res, err := Optimize(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run()
	if cold.ComputedPoints != len(cold.Records) || cold.CachedPoints != 0 {
		t.Fatalf("cold run cached/computed = %d/%d", cold.CachedPoints, cold.ComputedPoints)
	}
	warm := run()
	if warm.ComputedPoints != 0 || warm.CachedPoints != len(warm.Records) {
		t.Fatalf("warm run cached/computed = %d/%d, want %d/0",
			warm.CachedPoints, warm.ComputedPoints, len(warm.Records))
	}
	jc, _ := json.Marshal(cold.Front())
	jw, _ := json.Marshal(warm.Front())
	if string(jc) != string(jw) {
		t.Fatal("warm front differs from cold front byte-for-byte")
	}
}

func TestOptimizeOnGenerationStreamsInOrder(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	opts := optsFor(t, 0)
	opts.OnGeneration = func(g Generation) {
		mu.Lock()
		seen = append(seen, g.Gen)
		mu.Unlock()
	}
	res, err := Optimize(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.History) {
		t.Fatalf("OnGeneration fired %d times for %d generations", len(seen), len(res.History))
	}
	for i, g := range seen {
		if g != i {
			t.Fatalf("generation callbacks out of order: %v", seen)
		}
	}
	for i, g := range res.History {
		if g.Gen != i {
			t.Fatalf("history out of order at %d: %+v", i, g)
		}
		if g.Evaluated != 8 {
			t.Fatalf("generation %d evaluated %d points, want 8", i, g.Evaluated)
		}
		if g.FrontSize != len(g.Front) {
			t.Fatalf("generation %d front_size %d != len(front) %d", i, g.FrontSize, len(g.Front))
		}
	}
}

func TestOptimizeFrontNeverRegresses(t *testing.T) {
	// Elitism: the final front must be at least as good as generation
	// zero's on every objective's best value.
	res, err := Optimize(context.Background(), optsFor(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 || len(res.History[0].Best) == 0 {
		t.Fatal("no generation-zero best values")
	}
	last := res.History[len(res.History)-1]
	for k, first := range res.History[0].Best {
		lastBest := last.Best[k]
		if lastBest.Objective != first.Objective {
			t.Fatalf("objective order changed: %q vs %q", lastBest.Objective, first.Objective)
		}
		// All catalog objectives here are min (tx-power, decode-latency)
		// or max (noc-saturation); compare accordingly.
		maximize := first.Objective == "noc-saturation"
		if maximize && lastBest.Value < first.Value {
			t.Errorf("%s regressed: %g -> %g", first.Objective, first.Value, lastBest.Value)
		}
		if !maximize && lastBest.Value > first.Value {
			t.Errorf("%s regressed: %g -> %g", first.Objective, first.Value, lastBest.Value)
		}
	}
}

func TestOptimizeValidatesShape(t *testing.T) {
	base := optsFor(t, 0)
	for _, tc := range []struct {
		name   string
		mutate func(*Options)
	}{
		{"odd population", func(o *Options) { o.Population = 7 }},
		{"tiny population", func(o *Options) { o.Population = 2 }},
		{"negative generations", func(o *Options) { o.Generations = -1 }},
		{"empty space", func(o *Options) { o.Space = Space{} }},
	} {
		opts := base
		tc.mutate(&opts)
		if _, err := Optimize(context.Background(), opts); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestOptimizeEvaluatorLengthMismatch(t *testing.T) {
	opts := optsFor(t, 0)
	opts.Evaluate = func(ctx context.Context, gen int, pts []sweep.Point) ([]sweep.Record, int, error) {
		return nil, 0, nil
	}
	if _, err := Optimize(context.Background(), opts); err == nil {
		t.Fatal("short evaluator result accepted")
	}
}

func TestOptimizeEvaluatorSeesGlobalIndices(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	opts := optsFor(t, 0)
	inner := InProcessEvaluator(opts.Space, opts.Seed, sweep.AnalyticBudget(), 0, nil, nil)
	opts.Evaluate = func(ctx context.Context, gen int, pts []sweep.Point) ([]sweep.Record, int, error) {
		mu.Lock()
		for i, pt := range pts {
			if pt.Index != gen*8+i {
				t.Errorf("generation %d point %d carries index %d", gen, i, pt.Index)
			}
			if seen[pt.Index] {
				t.Errorf("index %d evaluated twice", pt.Index)
			}
			seen[pt.Index] = true
		}
		mu.Unlock()
		return inner(ctx, gen, pts)
	}
	if _, err := Optimize(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Optimize(ctx, optsFor(t, 0)); err == nil {
		t.Fatal("cancelled context did not abort the run")
	}
}

func ExampleOptimize() {
	sp, _ := Get("paper-baseline")
	res, _ := Optimize(context.Background(), Options{
		Space:       sp,
		Seed:        1,
		Generations: 3,
		Population:  8,
	})
	fmt.Printf("%s: %d evaluations, front of %d\n",
		res.Space, len(res.Records), len(res.FrontIndices))
	// Output: paper-baseline: 24 evaluations, front of 1
}
