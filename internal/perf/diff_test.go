package perf

import (
	"strings"
	"testing"
)

func fileWith(ms ...Measurement) *File {
	f := NewFile(CIBudget(), DefaultSeed)
	f.Workloads = ms
	return f
}

// TestDiffTable pins the regression/improvement/boundary behavior of
// the gate. The workload name is deliberately not in the catalog, so
// the threshold is DefaultRegressFrac.
func TestDiffTable(t *testing.T) {
	const base = 1_000_000.0
	cases := []struct {
		name       string
		newNs      float64
		wantStatus DeltaStatus
		wantFail   bool
	}{
		{"unchanged", base, StatusOK, false},
		{"slightly slower", base * 1.10, StatusOK, false},
		{"exactly at threshold", base * (1 + DefaultRegressFrac), StatusOK, false},
		{"just past threshold", base * (1 + DefaultRegressFrac + 0.001), StatusRegressed, true},
		{"way past threshold", base * 3, StatusRegressed, true},
		{"slightly faster", base * 0.95, StatusOK, false},
		{"exactly at inverse threshold", base / (1 + DefaultRegressFrac), StatusOK, false},
		{"clearly faster", base / 2, StatusImproved, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := fileWith(Measurement{Name: "not-in-catalog", Units: "points", NsPerOp: base})
			cur := fileWith(Measurement{Name: "not-in-catalog", Units: "points", NsPerOp: tc.newNs})
			res := Diff(old, cur)
			if len(res.Deltas) != 1 {
				t.Fatalf("deltas = %+v, want one", res.Deltas)
			}
			if res.Deltas[0].Status != tc.wantStatus {
				t.Fatalf("status = %s, want %s (ratio %.4f)",
					res.Deltas[0].Status, tc.wantStatus, res.Deltas[0].Ratio)
			}
			if res.Failed() != tc.wantFail {
				t.Fatalf("Failed() = %v, want %v", res.Failed(), tc.wantFail)
			}
		})
	}
}

func TestDiffAddedAndRemoved(t *testing.T) {
	old := fileWith(
		Measurement{Name: "kept", Units: "points", NsPerOp: 100},
		Measurement{Name: "dropped", Units: "points", NsPerOp: 100},
	)
	cur := fileWith(
		Measurement{Name: "kept", Units: "points", NsPerOp: 100},
		Measurement{Name: "brand-new", Units: "points", NsPerOp: 100},
	)
	res := Diff(old, cur)
	if !res.Failed() {
		t.Fatal("a removed workload must gate the diff")
	}
	status := map[string]DeltaStatus{}
	for _, d := range res.Deltas {
		status[d.Name] = d.Status
	}
	if status["kept"] != StatusOK || status["dropped"] != StatusRemoved || status["brand-new"] != StatusAdded {
		t.Fatalf("statuses = %v", status)
	}
}

func TestDiffUsesCatalogThreshold(t *testing.T) {
	// Catalog workloads take their threshold from the catalog entry, so
	// the policy lives in internal/perf only.
	w, ok := Lookup("ldpc-decode-paper")
	if !ok {
		t.Fatal("catalog workload missing")
	}
	old := fileWith(Measurement{Name: w.Name, Units: w.Units, NsPerOp: 100})
	cur := fileWith(Measurement{Name: w.Name, Units: w.Units, NsPerOp: 100})
	res := Diff(old, cur)
	if res.Deltas[0].Threshold != w.RegressFrac() {
		t.Fatalf("threshold = %v, want catalog %v", res.Deltas[0].Threshold, w.RegressFrac())
	}
}

func TestDiffEngineMismatchFlagged(t *testing.T) {
	old := fileWith(Measurement{Name: "x", Units: "points", NsPerOp: 100})
	cur := fileWith(Measurement{Name: "x", Units: "points", NsPerOp: 100})
	cur.EngineVersion = old.EngineVersion + 1
	res := Diff(old, cur)
	if !res.EngineMismatch {
		t.Fatal("engine mismatch not flagged")
	}
	if res.Failed() {
		t.Fatal("a mismatch without regressions must not gate")
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "engine versions differ") {
		t.Fatalf("render does not surface the mismatch:\n%s", sb.String())
	}

	// A regression still gates across engines: the fix is a fresh
	// baseline, not a waved-through slowdown.
	cur.Workloads[0].NsPerOp = 1000
	if res := Diff(old, cur); !res.Failed() || !res.EngineMismatch {
		t.Fatalf("cross-engine regression must still gate: %+v", res)
	}
}

// TestDiffAllocRegression: an allocation blow-up gates like a time
// regression, improvements and steady states pass, and the two ratio
// channels never double-count one workload.
func TestDiffAllocRegression(t *testing.T) {
	cases := []struct {
		name           string
		newNs, newAllo float64
		wantStatus     DeltaStatus
		wantRegress    int
	}{
		{"allocs steady", 100, 1000, StatusOK, 0},
		{"allocs within threshold", 100, 1000 * (1 + DefaultRegressFrac), StatusOK, 0},
		{"allocs past threshold", 100, 1000 * (1 + DefaultRegressFrac + 0.001), StatusRegressed, 1},
		{"allocs way up", 100, 19000, StatusRegressed, 1},
		{"allocs down", 100, 50, StatusOK, 0},
		{"time and allocs both up", 1000, 19000, StatusRegressed, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := fileWith(Measurement{Name: "not-in-catalog", Units: "points", NsPerOp: 100, AllocsPerOp: 1000})
			cur := fileWith(Measurement{Name: "not-in-catalog", Units: "points", NsPerOp: tc.newNs, AllocsPerOp: tc.newAllo})
			res := Diff(old, cur)
			if res.Deltas[0].Status != tc.wantStatus {
				t.Fatalf("status = %s, want %s (alloc ratio %.4f)",
					res.Deltas[0].Status, tc.wantStatus, res.Deltas[0].AllocRatio)
			}
			if res.Regressions != tc.wantRegress {
				t.Fatalf("regressions = %d, want %d", res.Regressions, tc.wantRegress)
			}
		})
	}
}

// TestCheckAllocs pins the alloc-budget gate of cmd/perf run.
func TestCheckAllocs(t *testing.T) {
	w := Workload{Name: "w", MaxAllocsPerOp: 100}
	if err := w.CheckAllocs(Measurement{AllocsPerOp: 100}); err != nil {
		t.Fatalf("at budget: %v", err)
	}
	if err := w.CheckAllocs(Measurement{AllocsPerOp: 100.5}); err == nil {
		t.Fatal("over budget not flagged")
	}
	unbudgeted := Workload{Name: "w2"}
	if err := unbudgeted.CheckAllocs(Measurement{AllocsPerOp: 1e9}); err != nil {
		t.Fatalf("workload without budget must always pass: %v", err)
	}
}

// TestCatalogAllocBudgets: every catalog workload carries an explicit
// allocation budget, so new workloads cannot join unbudgeted.
func TestCatalogAllocBudgets(t *testing.T) {
	for _, w := range Catalog() {
		if w.MaxAllocsPerOp <= 0 {
			t.Errorf("workload %s has no MaxAllocsPerOp budget", w.Name)
		}
	}
}
