package noc

import "fmt"

// Route returns the router sequence from src to dst under deterministic
// dimension-order (X, then Y, then Z) routing. On pillar-constrained
// meshes, packets needing a layer change first detour in-plane to the
// pillar of the source's block. The result includes both endpoints;
// src == dst yields a single-element path.
func (m *Mesh) Route(src, dst int) []int {
	if src < 0 || src >= m.NumRouters() || dst < 0 || dst >= m.NumRouters() {
		panic(fmt.Sprintf("noc: route endpoints (%d, %d) out of range", src, dst))
	}
	x, y, z := m.Coords(src)
	dx, dy, dz := m.Coords(dst)

	// The hop count is known up front (dimension-order walk plus the
	// optional pillar detour), so the path is built in one allocation —
	// route compilation visits every router pair and repeated append
	// growth dominated its profile.
	px, py := x, y
	hops := 0
	if z != dz && !m.hasPillar(x, y) {
		px, py = x-x%m.verticalEvery, y-y%m.verticalEvery
		hops += absInt(x-px) + absInt(y-py)
	}
	hops += absInt(z-dz) + absInt(px-dx) + absInt(py-dy)
	path := make([]int, 1, hops+1)
	path[0] = src

	step := func(nx, ny, nz int) {
		x, y, z = nx, ny, nz
		path = append(path, m.RouterAt(x, y, z))
	}
	walkXY := func(tx, ty int) {
		for x != tx {
			if x < tx {
				step(x+1, y, z)
			} else {
				step(x-1, y, z)
			}
		}
		for y != ty {
			if y < ty {
				step(x, y+1, z)
			} else {
				step(x, y-1, z)
			}
		}
	}

	if px != x || py != y {
		// Detour to the source block's TSV pillar first (the target was
		// computed with the hop count above).
		walkXY(px, py)
	}
	if z != dz {
		for z != dz {
			if z < dz {
				step(x, y, z+1)
			} else {
				step(x, y, z-1)
			}
		}
	}
	walkXY(dx, dy)
	return path
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// RouteChannels returns the channel ids traversed from src to dst.
func (m *Mesh) RouteChannels(src, dst int) []int {
	path := m.Route(src, dst)
	out := make([]int, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		id := m.ChannelID(path[i-1], path[i])
		if id < 0 {
			panic(fmt.Sprintf("noc: route step %d -> %d has no channel", path[i-1], path[i]))
		}
		out = append(out, id)
	}
	return out
}

// Hops returns the channel count of the route from src to dst.
func (m *Mesh) Hops(src, dst int) int { return len(m.Route(src, dst)) - 1 }

// Metrics summarises a topology's structural properties (the Fig. 7
// comparison).
type Metrics struct {
	Name              string
	Routers           int
	Modules           int
	Channels          int
	VerticalChannels  int
	Diameter          int     // max router hops over module pairs
	AvgHops           float64 // mean router hops over distinct module pairs
	BisectionChannels int     // directed channels cut by the widest-dimension bisection
}

// ComputeMetrics evaluates the structural metrics.
func (m *Mesh) ComputeMetrics() Metrics {
	mt := Metrics{
		Name:     m.name,
		Routers:  m.NumRouters(),
		Modules:  m.NumModules(),
		Channels: m.NumChannels(),
	}
	for _, c := range m.channels {
		if c.Vertical {
			mt.VerticalChannels++
		}
	}

	// Hop statistics over router pairs, weighted by module count: with
	// concentration c, each router pair corresponds to c*c module pairs
	// and same-router pairs to c*(c-1).
	n := m.NumRouters()
	conc := float64(m.concentration)
	var sum, pairs float64
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				pairs += conc * (conc - 1)
				continue // zero hops between co-located modules
			}
			h := m.Hops(s, d)
			if h > mt.Diameter {
				mt.Diameter = h
			}
			sum += float64(h) * conc * conc
			pairs += conc * conc
		}
	}
	if pairs > 0 {
		mt.AvgHops = sum / pairs
	}

	// Bisection across the largest dimension.
	bestDim, bestExt := 0, 0
	for i, e := range m.dims {
		if e > bestExt {
			bestDim, bestExt = i, e
		}
	}
	cut := bestExt / 2
	for _, c := range m.channels {
		var a, b [3]int
		a[0], a[1], a[2] = m.Coords(c.From)
		b[0], b[1], b[2] = m.Coords(c.To)
		if (a[bestDim] < cut) != (b[bestDim] < cut) {
			mt.BisectionChannels++
		}
	}
	return mt
}
